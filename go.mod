module mfup

go 1.22
