package mfup

import (
	"mfup/internal/asm"
	"mfup/internal/emu"
	"mfup/internal/isa"
	"mfup/internal/sched"
	"mfup/internal/tables"
)

// Program is an assembled CRAY-like program.
type Program = isa.Program

// EmuMachine is the architectural emulator state: registers and
// word-addressed memory. Use it to lay out input data before tracing
// a custom program and to inspect results afterwards.
type EmuMachine = emu.Machine

// Assemble translates CRAY-like assembly source (see internal/asm for
// the syntax) into a program.
func Assemble(name, source string) (*Program, error) {
	return asm.Assemble(name, source)
}

// NewEmuMachine returns an emulator machine with the given number of
// 64-bit memory words (<= 0 selects the 1 Mi-word default).
func NewEmuMachine(words int) *EmuMachine { return emu.New(words) }

// TraceProgram architecturally executes p on m and returns the
// dynamic instruction trace, which can then drive any Machine. The
// machine's memory and registers reflect the completed execution.
func TraceProgram(m *EmuMachine, p *Program) (*Trace, error) { return m.Run(p) }

// ScheduleProgram returns a copy of p with each basic block
// list-scheduled for the given configuration's latencies — the
// "software code scheduling" route to fewer issue-stage blockages
// that §6 of the paper points at. Semantics are preserved; only the
// order of independent instructions changes.
func ScheduleProgram(p *Program, cfg Config) *Program {
	return sched.Schedule(p, cfg.Latencies())
}

// Table is one regenerated paper table.
type Table = tables.Table

// GenerateTable regenerates paper table n (1-8), running all the
// simulations behind it.
func GenerateTable(n int) (*Table, error) { return tables.Get(n) }

// GenerateAllTables regenerates Tables 1-8 in order.
func GenerateAllTables() []*Table { return tables.All() }

// GenerateSection33 regenerates the supplementary comparison of
// single-issue dependency-resolution schemes whose endpoints §3.3 of
// the paper quotes in prose.
func GenerateSection33() *Table { return tables.SectionThreeThree() }
