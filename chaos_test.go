package mfup_test

// Chaos-matrix tests: seeded fault injection swept across every
// machine model and loop class, holding the whole stack to its
// robustness contract — no hang, no bare panic, structured errors
// with intact coordinates, retries that heal what is transient, and
// checkpoint resumes that reproduce the uninterrupted output byte for
// byte. Everything here is deterministic: fault placement, retry
// jitter, and trace mutations all derive from fixed seeds.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mfup/internal/bus"
	"mfup/internal/core"
	"mfup/internal/faultinject"
	"mfup/internal/loops"
	"mfup/internal/runner"
	"mfup/internal/simerr"
	"mfup/internal/tables"
	"mfup/internal/trace"
)

// chaosSeed fixes every randomized choice in the matrix.
const chaosSeed = 1988

// chaosMachine is one machine model under chaos: a constructor and
// the trace it runs (the vector machine needs a vectorized coding).
type chaosMachine struct {
	name string
	mk   func() core.Machine
	tr   *trace.Trace

	// livelocks marks the dynamically-scheduled models that carry a
	// forward-progress watchdog (Tomasulo, out-of-order multi-issue,
	// RUU). The statically-timed models compute issue times directly
	// and cannot livelock, so an injected stall is a documented no-op
	// there.
	livelocks bool
}

// chaosMachines returns all ten machine models with a representative
// loop each: a scalar loop for the scalar-issue models, a vector
// coding for the vector machine.
func chaosMachines(t *testing.T) []chaosMachine {
	t.Helper()
	scalar := func(n int) *trace.Trace {
		k, err := loops.Get(n)
		if err != nil {
			t.Fatal(err)
		}
		return k.SharedTrace()
	}
	vk, err := loops.VectorKernel(1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{MemLatency: 11, BranchLatency: 5}
	multi := cfg.WithIssue(4, bus.BusN)
	ruu := cfg.WithIssue(2, bus.BusN).WithRUU(30)
	return []chaosMachine{
		{name: "Simple", mk: func() core.Machine { return core.NewBasic(core.Simple, cfg) }, tr: scalar(5)},
		{name: "SerialMemory", mk: func() core.Machine { return core.NewBasic(core.SerialMemory, cfg) }, tr: scalar(6)},
		{name: "NonSegmented", mk: func() core.Machine { return core.NewBasic(core.NonSegmented, cfg) }, tr: scalar(11)},
		{name: "CRAY-like", mk: func() core.Machine { return core.NewBasic(core.CRAYLike, cfg) }, tr: scalar(13)},
		{name: "Scoreboard", mk: func() core.Machine { return core.NewScoreboard(cfg) }, tr: scalar(5)},
		{name: "Tomasulo", mk: func() core.Machine { return core.NewTomasulo(cfg.WithRUU(4)) }, tr: scalar(14), livelocks: true},
		{name: "MultiIssue", mk: func() core.Machine { return core.NewMultiIssue(multi) }, tr: scalar(5)},
		{name: "MultiIssueOOO", mk: func() core.Machine { return core.NewMultiIssueOOO(multi) }, tr: scalar(13), livelocks: true},
		{name: "RUU", mk: func() core.Machine { return core.NewRUU(ruu) }, tr: scalar(11), livelocks: true},
		{name: "Vector", mk: func() core.Machine { return core.NewVector(cfg) }, tr: vk.SharedTrace()},
	}
}

// chaosRun executes one (machine, trace) cell through the runner —
// the same per-cell recover/retry path the table sweeps use — with
// watchdogs armed so an injected stall can never hang the test.
func chaosRun(t *testing.T, m chaosMachine, opts runner.Options) (core.Result, []*runner.CellError) {
	t.Helper()
	if opts.Limits == (core.Limits{}) {
		opts.Limits = core.Limits{MaxCycles: 1 << 22, StallCycles: 4096}
	}
	if opts.Parallel == 0 {
		opts.Parallel = 1
	}
	task := runner.Task{New: m.mk, Traces: []*trace.Trace{m.tr}}
	out, _, errs := runner.RunCheckedStats(context.Background(), opts, []runner.Task{task})
	return out[0][0], errs
}

// arm activates a fault plan for the duration of the subtest.
func arm(t *testing.T, spec string) *faultinject.Injector {
	t.Helper()
	plan, err := faultinject.ParsePlan(spec, chaosSeed)
	if err != nil {
		t.Fatal(err)
	}
	in := faultinject.New(plan)
	faultinject.Activate(in)
	t.Cleanup(faultinject.Deactivate)
	return in
}

// simError digs the structured simulation error out of a cell failure.
func simError(t *testing.T, errs []*runner.CellError) *simerr.SimError {
	t.Helper()
	if len(errs) != 1 {
		t.Fatalf("cell errors = %v, want exactly one", errs)
	}
	var se *simerr.SimError
	if !errors.As(errs[0].Err, &se) {
		t.Fatalf("cell error %v is not a structured SimError", errs[0].Err)
	}
	return se
}

// TestChaosMatrix sweeps the injected fault kinds across every
// machine model: panics are recovered with stacks, injected errors
// and stalls surface as structured kinds, transient faults heal
// within the retry budget, and once a fault's window passes the cell
// reproduces the healthy baseline exactly.
func TestChaosMatrix(t *testing.T) {
	for _, m := range chaosMachines(t) {
		m := m
		t.Run(m.name, func(t *testing.T) {
			faultinject.Deactivate()
			baseline, errs := chaosRun(t, m, runner.Options{})
			if len(errs) != 0 {
				t.Fatalf("healthy baseline failed: %v", errs)
			}

			t.Run("panic", func(t *testing.T) {
				arm(t, "sim:panic:at=7")
				_, errs := chaosRun(t, m, runner.Options{})
				if len(errs) != 1 {
					t.Fatalf("errs = %v, want one recovered panic", errs)
				}
				e := errs[0]
				if e.Stack == nil {
					t.Error("recovered panic lost its stack")
				}
				if !strings.Contains(e.Err.Error(), "injected panic") {
					t.Errorf("err %v does not identify the injected panic", e.Err)
				}
				if e.TraceName != m.tr.Name {
					t.Errorf("failure names trace %q, want %q", e.TraceName, m.tr.Name)
				}
			})

			t.Run("error", func(t *testing.T) {
				arm(t, "sim:err:at=3")
				_, errs := chaosRun(t, m, runner.Options{})
				se := simError(t, errs)
				if se.Kind != simerr.KindInjected || se.Transient {
					t.Errorf("kind = %v transient = %v, want permanent KindInjected", se.Kind, se.Transient)
				}
				if se.Machine == "" || se.Trace != m.tr.Name {
					t.Errorf("error coordinates broken: machine %q trace %q", se.Machine, se.Trace)
				}
			})

			t.Run("stall", func(t *testing.T) {
				// The injected stall suppresses forward-progress recording,
				// so on the dynamically-scheduled models the stall watchdog
				// must fire — for real, with a cycle snapshot, not a hang.
				// The statically-timed models have no livelock to watch
				// for; there the injection is a documented no-op and the
				// run must complete identical to the baseline.
				arm(t, "sim:stall:at=5")
				r, errs := chaosRun(t, m, runner.Options{
					Limits: core.Limits{MaxCycles: 1 << 22, StallCycles: 512},
				})
				if !m.livelocks {
					if len(errs) != 0 {
						t.Fatalf("stall injection failed a statically-timed machine: %v", errs)
					}
					if r != baseline {
						t.Errorf("stall injection changed the result: %+v vs %+v", r, baseline)
					}
					return
				}
				se := simError(t, errs)
				if se.Kind != simerr.KindStall {
					t.Errorf("kind = %v, want KindStall (the watchdog, not a hang)", se.Kind)
				}
				if se.Cycle <= 0 {
					t.Errorf("stall snapshot has no cycle: %+v", se)
				}
			})

			t.Run("transient heals", func(t *testing.T) {
				arm(t, "sim:err:at=2:times=2:transient")
				r, errs := chaosRun(t, m, runner.Options{
					Retries: 3, RetrySeed: chaosSeed,
					Sleep: func(time.Duration) {},
				})
				if len(errs) != 0 {
					t.Fatalf("transient fault did not heal within the retry budget: %v", errs)
				}
				if r != baseline {
					t.Errorf("healed result %+v differs from baseline %+v", r, baseline)
				}
			})

			t.Run("window passes", func(t *testing.T) {
				// times=1 arms the fault for the first run of this cell
				// only; the second run must reproduce the baseline exactly.
				arm(t, "sim:err:at=1:times=1")
				if _, errs := chaosRun(t, m, runner.Options{}); len(errs) != 1 {
					t.Fatalf("first run: errs = %v, want one", errs)
				}
				r, errs := chaosRun(t, m, runner.Options{})
				if len(errs) != 0 {
					t.Fatalf("second run still failing: %v", errs)
				}
				if r != baseline {
					t.Errorf("post-window result %+v differs from baseline %+v", r, baseline)
				}
			})

			t.Run("filtered plan is inert", func(t *testing.T) {
				// A plan whose machine filter matches nothing must leave
				// the healthy path bit-identical to the seed behavior.
				arm(t, "sim:panic:at=1:machine=no-such-machine")
				r, errs := chaosRun(t, m, runner.Options{})
				if len(errs) != 0 {
					t.Fatalf("inert plan failed the cell: %v", errs)
				}
				if r != baseline {
					t.Errorf("inert plan changed the result: %+v vs %+v", r, baseline)
				}
			})
		})
	}
}

// TestChaosMutatedTraces feeds seed-corrupted traces to every machine
// model: each corruption class must surface as a structured
// KindBadTrace diagnostic naming the damaged op — or, when the damage
// leaves the trace well-formed (truncation), run to completion —
// never a panic, never a hang.
func TestChaosMutatedTraces(t *testing.T) {
	for _, m := range chaosMachines(t) {
		m := m
		t.Run(m.name, func(t *testing.T) {
			for mut := faultinject.Mutation(0); int(mut) < faultinject.NumMutations; mut++ {
				mut := mut
				t.Run(mut.String(), func(t *testing.T) {
					mt := faultinject.MutateTrace(m.tr, mut, chaosSeed)
					cell := chaosMachine{name: m.name, mk: m.mk, tr: mt}
					_, errs := chaosRun(t, cell, runner.Options{})
					if mut == faultinject.MutTruncate {
						// Truncation yields a shorter but well-formed trace;
						// termination (no panic, no hang) is the contract.
						for _, e := range errs {
							if e.Stack != nil {
								t.Fatalf("truncated trace panicked the model:\n%s", e.Stack)
							}
						}
						return
					}
					se := simError(t, errs)
					if se.Kind != simerr.KindBadTrace {
						t.Errorf("kind = %v, want KindBadTrace", se.Kind)
					}
					if !strings.Contains(se.Error(), mut.String()) {
						t.Errorf("diagnostic %q does not name the mutated trace", se.Error())
					}
				})
			}
		})
	}
}

// TestChaosTableResume holds the checkpoint journal to the
// acceptance bar: for every table, a journal holding an arbitrary
// half of the cells plus a regeneration against it must render byte
// for byte what the uninterrupted run renders. Under -short only the
// first three tables run; the full sweep covers Tables 1-8 and the
// section 3.3 supplement.
func TestChaosTableResume(t *testing.T) {
	type gen struct {
		name string
		get  func() *tables.Table
	}
	gens := []gen{
		{"table1", func() *tables.Table { return tables.Table1() }},
		{"table2", func() *tables.Table { return tables.Table2() }},
		{"table3", func() *tables.Table { return tables.Table3() }},
		{"table4", func() *tables.Table { return tables.Table4() }},
		{"table5", func() *tables.Table { return tables.Table5() }},
		{"table6", func() *tables.Table { return tables.Table6() }},
		{"table7", func() *tables.Table { return tables.Table7() }},
		{"table8", func() *tables.Table { return tables.Table8() }},
		{"supplement", func() *tables.Table { return tables.SectionThreeThree() }},
	}
	if testing.Short() {
		gens = gens[:3]
	}
	for _, g := range gens {
		g := g
		t.Run(g.name, func(t *testing.T) {
			ref := g.get()
			if len(ref.Errors) != 0 {
				t.Fatalf("baseline has errors: %v", ref.Errors)
			}
			path := filepath.Join(t.TempDir(), "ckpt.jsonl")
			ck, err := tables.OpenCheckpoint(path, tables.JournalSignature())
			if err != nil {
				t.Fatal(err)
			}
			// Journal a deterministic, seed-chosen half of the cells —
			// the shape an interrupted run leaves behind.
			i := 0
			for _, row := range ref.Rows {
				for _, v := range row.Rates {
					if !math.IsNaN(v) && faultinject.Rand(chaosSeed, uint64(ref.Number), uint64(i))%2 == 0 {
						ck.Record(ref.Number, i, v)
					}
					i++
				}
			}
			if err := ck.Close(); err != nil {
				t.Fatal(err)
			}

			ck, err = tables.OpenCheckpoint(path, tables.JournalSignature())
			if err != nil {
				t.Fatal(err)
			}
			tables.SetCheckpoint(ck)
			defer tables.SetCheckpoint(nil)
			got := g.get()
			if err := ck.Close(); err != nil {
				t.Fatal(err)
			}
			if got.Render() != ref.Render() {
				t.Errorf("resumed render differs from the uninterrupted baseline:\n--- want\n%s--- got\n%s",
					ref.Render(), got.Render())
			}
			if want := fmt.Sprint(ref.Columns); fmt.Sprint(got.Columns) != want {
				t.Errorf("columns drifted on resume: %v vs %v", got.Columns, want)
			}
		})
	}
}
