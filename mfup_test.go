package mfup_test

import (
	"fmt"
	"strings"
	"testing"

	"mfup"
)

func TestPublicKernelAccess(t *testing.T) {
	if got := len(mfup.Kernels()); got != 14 {
		t.Fatalf("Kernels() returned %d, want 14", got)
	}
	if got := len(mfup.KernelsByClass(mfup.Scalar)); got != 5 {
		t.Errorf("scalar kernels = %d, want 5", got)
	}
	if got := len(mfup.KernelsByClass(mfup.Vectorizable)); got != 9 {
		t.Errorf("vectorizable kernels = %d, want 9", got)
	}
	if _, err := mfup.GetKernel(99); err == nil {
		t.Error("GetKernel(99) did not fail")
	}
	k := mfup.MustKernel(5)
	if k.Number != 5 {
		t.Errorf("MustKernel(5).Number = %d", k.Number)
	}
}

func TestMustKernelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustKernel(0) did not panic")
		}
	}()
	mfup.MustKernel(0)
}

func TestEndToEndSimulation(t *testing.T) {
	k := mfup.MustKernel(1)
	tr := k.SharedTrace()
	for _, cfg := range mfup.BaseConfigs() {
		var prev float64
		for _, org := range mfup.Organizations() {
			r := mfup.NewBasic(org, cfg).Run(tr)
			rate := r.IssueRate()
			if rate <= 0 || rate >= 1 {
				t.Errorf("%s %s: rate %.3f outside (0,1)", org, cfg.Name(), rate)
			}
			if rate < prev-1e-12 {
				t.Errorf("%s %s: organization ordering violated", org, cfg.Name())
			}
			prev = rate
		}
	}
}

func TestAdvancedMachinesViaFacade(t *testing.T) {
	tr := mfup.MustKernel(7).SharedTrace()
	cray := mfup.NewBasic(mfup.CRAYLike, mfup.M11BR5).Run(tr).IssueRate()
	multi := mfup.NewMultiIssue(mfup.M11BR5.WithIssue(4, mfup.BusN)).Run(tr).IssueRate()
	ooo := mfup.NewMultiIssueOOO(mfup.M11BR5.WithIssue(4, mfup.BusN)).Run(tr).IssueRate()
	ruu := mfup.NewRUU(mfup.M11BR5.WithIssue(4, mfup.BusN).WithRUU(50)).Run(tr).IssueRate()
	if !(cray <= multi+1e-9 && multi <= ooo+1e-9 && ooo < ruu) {
		t.Errorf("machine sophistication ordering violated: cray=%.3f multi=%.3f ooo=%.3f ruu=%.3f",
			cray, multi, ooo, ruu)
	}
}

func TestLimitsViaFacade(t *testing.T) {
	tr := mfup.MustKernel(12).SharedTrace()
	pure := mfup.ComputeLimits(tr, mfup.M11BR2, mfup.Pure)
	serial := mfup.ComputeLimits(tr, mfup.M11BR2, mfup.Serial)
	if pure.Actual <= serial.Actual {
		t.Errorf("pure limit %.3f should exceed serial %.3f on an independent-iteration loop",
			pure.Actual, serial.Actual)
	}
}

func TestCustomProgramWorkflow(t *testing.T) {
	prog, err := mfup.Assemble("triple", `
    A1 = 64
    S1 = [A1]
    S2 = S1 +F S1
    S2 = S2 +F S1
    [A1 + 1] = S2
`)
	if err != nil {
		t.Fatal(err)
	}
	m := mfup.NewEmuMachine(128)
	m.SetFloat(64, 1.5)
	tr, err := mfup.TraceProgram(m, prog)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Float(65); got != 4.5 {
		t.Errorf("program computed %v, want 4.5", got)
	}
	r := mfup.NewBasic(mfup.CRAYLike, mfup.M5BR2).Run(tr)
	if r.Instructions != 5 || r.Cycles == 0 {
		t.Errorf("simulation result %+v", r)
	}
}

func TestAssembleErrorSurface(t *testing.T) {
	_, err := mfup.Assemble("bad", "J nowhere")
	if err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Errorf("Assemble error = %v", err)
	}
}

func TestGenerateTable(t *testing.T) {
	tb, err := mfup.GenerateTable(1)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Number != 1 || len(tb.Rows) == 0 {
		t.Errorf("table = %+v", tb)
	}
	if _, err := mfup.GenerateTable(0); err == nil {
		t.Error("GenerateTable(0) did not fail")
	}
}

// ExampleNewBasic is the README quick start.
func ExampleNewBasic() {
	k := mfup.MustKernel(1)
	m := mfup.NewBasic(mfup.CRAYLike, mfup.M11BR5)
	r := m.Run(k.SharedTrace())
	fmt.Printf("%s: %.2f instructions/cycle\n", k, r.IssueRate())
	// Output: LFK 1 (hydro fragment): 0.29 instructions/cycle
}

// ExampleComputeLimits shows the §4 bound for the same kernel.
func ExampleComputeLimits() {
	k := mfup.MustKernel(1)
	l := mfup.ComputeLimits(k.SharedTrace(), mfup.M11BR5, mfup.Pure)
	fmt.Printf("dataflow limit %.2f instructions/cycle\n", l.Actual)
	// Output: dataflow limit 1.90 instructions/cycle
}

func TestVectorFacade(t *testing.T) {
	vks := mfup.VectorKernels()
	if len(vks) != 9 {
		t.Fatalf("VectorKernels returned %d, want 9", len(vks))
	}
	vk, err := mfup.VectorKernel(7)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := vk.Trace()
	if err != nil {
		t.Fatal(err)
	}
	vec := mfup.NewVector(mfup.M11BR5).Run(tr)
	sk := mfup.MustKernel(7)
	cray := mfup.NewBasic(mfup.CRAYLike, mfup.M11BR5).Run(sk.SharedTrace())
	if vec.Cycles*3 > cray.Cycles {
		t.Errorf("vector LFK 7 (%d cycles) not clearly faster than scalar (%d)", vec.Cycles, cray.Cycles)
	}
	if _, err := mfup.VectorKernel(5); err == nil {
		t.Error("VectorKernel(5) should fail: a recurrence has no vector coding")
	}
}

func TestDependencyResolutionFacade(t *testing.T) {
	tr := mfup.MustKernel(5).SharedTrace()
	cray := mfup.NewBasic(mfup.CRAYLike, mfup.M11BR5).Run(tr).IssueRate()
	sb := mfup.NewScoreboard(mfup.M11BR5).Run(tr).IssueRate()
	tom := mfup.NewTomasulo(mfup.M11BR5).Run(tr).IssueRate()
	if !(cray <= sb && sb <= tom) {
		t.Errorf("dependency-resolution ordering violated: %.3f, %.3f, %.3f", cray, sb, tom)
	}
}

func TestScheduleProgramFacade(t *testing.T) {
	k := mfup.MustKernel(7)
	s := mfup.ScheduleProgram(k.Program(), mfup.M11BR5)
	m := k.NewMachine()
	tr, err := mfup.TraceProgram(m, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Validate(m); err != nil {
		t.Fatalf("scheduled program invalid: %v", err)
	}
	base := mfup.NewBasic(mfup.CRAYLike, mfup.M11BR5).Run(k.SharedTrace()).IssueRate()
	sched := mfup.NewBasic(mfup.CRAYLike, mfup.M11BR5).Run(tr).IssueRate()
	if sched <= base {
		t.Errorf("scheduling did not help LFK 7: %.3f -> %.3f", base, sched)
	}
}

func TestScaledKernelFacade(t *testing.T) {
	k, err := mfup.ScaledKernel(1, 500)
	if err != nil {
		t.Fatal(err)
	}
	if k.N != 500 {
		t.Errorf("scaled N = %d", k.N)
	}
	if _, err := mfup.ScaledKernel(2, 99); err == nil {
		t.Error("non-power-of-two kernel 2 length accepted")
	}
}

func TestPerfectBranchesFacade(t *testing.T) {
	tr := mfup.MustKernel(12).SharedTrace()
	base := mfup.NewBasic(mfup.CRAYLike, mfup.M11BR5).Run(tr).Cycles
	ideal := mfup.NewBasic(mfup.CRAYLike, mfup.M11BR5.WithPerfectBranches()).Run(tr).Cycles
	if ideal >= base {
		t.Errorf("perfect branches did not help: %d -> %d", base, ideal)
	}
}

func TestSection33Facade(t *testing.T) {
	tb := mfup.GenerateSection33()
	if len(tb.Rows) != 8 {
		t.Errorf("supplement has %d rows, want 8", len(tb.Rows))
	}
}
