// Package mfup is a reproduction of Pleszkun & Sohi, "The Performance
// Potential of Multiple Functional Unit Processors" (UW-Madison CS TR
// #752 / ISCA 1988): a trace-driven simulator suite for CRAY-like
// single processors that measures how instruction issue rate responds
// to pipelining, multiple functional units, multiple issue units, and
// RUU-style dependency resolution.
//
// The package is a facade over the internal substrates:
//
//   - Machines: the paper's machine models (§3 basic organizations,
//     §5.1 in-order multiple issue, §5.2 out-of-order issue, §5.3 RUU).
//   - Kernels: the first 14 Lawrence Livermore Loops, hand-compiled
//     to the CRAY-like ISA, with validated execution.
//   - Limits: the §4 dataflow and resource bounds.
//   - Tables: regeneration of the paper's Tables 1-8.
//   - Assemble/TraceProgram: the custom-kernel workflow — write
//     assembly, trace it, simulate it on any machine.
//
// Quick start:
//
//	k := mfup.MustKernel(1)                     // LFK 1, hydro fragment
//	m := mfup.NewBasic(mfup.CRAYLike, mfup.M11BR5)
//	r := m.Run(k.SharedTrace())
//	fmt.Printf("%.2f instructions/cycle\n", r.IssueRate())
package mfup

import (
	"mfup/internal/bus"
	"mfup/internal/core"
	"mfup/internal/limits"
	"mfup/internal/loops"
	"mfup/internal/trace"
)

// Re-exported core types. These aliases are the public names; see the
// internal packages for full documentation.
type (
	// Config selects memory latency, branch latency, and the
	// multiple-issue parameters of a machine.
	Config = core.Config

	// Machine is a timing model that runs traces.
	Machine = core.Machine

	// Result is one simulation outcome; IssueRate() is the paper's
	// metric.
	Result = core.Result

	// Organization selects one of the four §3 single-issue machines.
	Organization = core.Organization

	// BusKind selects the result-bus interconnect of §5.
	BusKind = bus.Kind

	// Trace is a dynamic instruction stream.
	Trace = trace.Trace

	// Kernel is one Livermore loop benchmark.
	Kernel = loops.Kernel

	// KernelClass partitions kernels into scalar and vectorizable.
	KernelClass = loops.Class

	// LimitMode selects Pure or Serial WAW treatment in §4 bounds.
	LimitMode = limits.Mode

	// Limits carries the §4 bounds for one trace.
	Limits = limits.Limits

	// SimLimits bounds a checked simulation run: a simulated-cycle
	// budget, a no-forward-progress watchdog, and a wall-clock
	// deadline. The zero value checks nothing; DefaultSimLimits
	// returns production-safe bounds.
	SimLimits = core.Limits

	// SimError is the structured failure a checked run returns: it
	// names the machine, the trace, the failure kind, and the cycle at
	// which the run was cut off, plus — for stalls — a snapshot of the
	// stuck in-flight instructions.
	SimError = core.SimError
)

// DefaultSimLimits returns the production-safe run bounds: a large
// cycle budget and the stall watchdog, no wall-clock deadline.
func DefaultSimLimits() SimLimits { return core.DefaultLimits() }

// The paper's four machine variations (memory latency x branch
// latency).
var (
	M11BR5 = core.M11BR5
	M11BR2 = core.M11BR2
	M5BR5  = core.M5BR5
	M5BR2  = core.M5BR2
)

// BaseConfigs returns the four variations in table order.
func BaseConfigs() []Config { return core.BaseConfigs() }

// The §3 single-issue machine organizations.
const (
	Simple       = core.Simple
	SerialMemory = core.SerialMemory
	NonSegmented = core.NonSegmented
	CRAYLike     = core.CRAYLike
)

// Organizations returns the §3 machines in Table 1 order.
func Organizations() []Organization { return core.Organizations() }

// Result-bus interconnects (§5.1).
const (
	XBar = bus.XBar
	BusN = bus.BusN
	Bus1 = bus.Bus1
)

// Kernel classes.
const (
	Scalar       = loops.Scalar
	Vectorizable = loops.Vectorizable
)

// Limit modes (§4).
const (
	Pure   = limits.Pure
	Serial = limits.Serial
)

// NewBasic builds one of the four basic single-issue machines of §3.
func NewBasic(o Organization, cfg Config) Machine { return core.NewBasic(o, cfg) }

// NewMultiIssue builds the §5.1 machine: cfg.IssueUnits stations with
// strictly in-order issue. Use Config.WithIssue to set the width and
// bus kind.
func NewMultiIssue(cfg Config) Machine { return core.NewMultiIssue(cfg) }

// NewMultiIssueOOO builds the §5.2 machine: out-of-order issue within
// the instruction buffer.
func NewMultiIssueOOO(cfg Config) Machine { return core.NewMultiIssueOOO(cfg) }

// NewRUU builds the §5.3 machine: multiple issue units with RUU
// dependency resolution. Use Config.WithIssue and Config.WithRUU.
func NewRUU(cfg Config) Machine { return core.NewRUU(cfg) }

// NewScoreboard builds the CDC-6600-style single-issue dependency-
// resolution machine referenced in §3.3: instructions issue past RAW
// hazards (waiting at their functional units) but WAW hazards still
// block issue.
func NewScoreboard(cfg Config) Machine { return core.NewScoreboard(cfg) }

// NewTomasulo builds the IBM 360/91-style single-issue machine
// referenced in §3.3: per-unit reservation stations, tag-based
// renaming (no WAW or WAR stalls), and a single common data bus.
// cfg.RUUSize, when positive, sets the stations per unit.
func NewTomasulo(cfg Config) Machine { return core.NewTomasulo(cfg) }

// NewVector builds the vector-extension machine: the CRAY-like
// scalar machine plus a CRAY-1-style vector unit with chaining (§3.2
// discusses exactly this sharing of functional units between scalar
// and vector operations). It is the only machine that accepts vector
// traces; the scalar machines reject them.
func NewVector(cfg Config) Machine { return core.NewVector(cfg) }

// Checked constructors: each validates its configuration and returns
// an error instead of panicking. The unchecked constructors above are
// thin wrappers that panic on the same errors. Machines from either
// family offer both Run (panics on failure) and RunChecked (returns a
// *SimError and honors SimLimits).

// NewBasicChecked is NewBasic with configuration validation.
func NewBasicChecked(o Organization, cfg Config) (Machine, error) {
	return core.NewBasicChecked(o, cfg)
}

// NewMultiIssueChecked is NewMultiIssue with configuration validation.
func NewMultiIssueChecked(cfg Config) (Machine, error) { return core.NewMultiIssueChecked(cfg) }

// NewMultiIssueOOOChecked is NewMultiIssueOOO with configuration
// validation.
func NewMultiIssueOOOChecked(cfg Config) (Machine, error) { return core.NewMultiIssueOOOChecked(cfg) }

// NewRUUChecked is NewRUU with configuration validation.
func NewRUUChecked(cfg Config) (Machine, error) { return core.NewRUUChecked(cfg) }

// NewScoreboardChecked is NewScoreboard with configuration validation.
func NewScoreboardChecked(cfg Config) (Machine, error) { return core.NewScoreboardChecked(cfg) }

// NewTomasuloChecked is NewTomasulo with configuration validation.
func NewTomasuloChecked(cfg Config) (Machine, error) { return core.NewTomasuloChecked(cfg) }

// NewVectorChecked is NewVector with configuration validation.
func NewVectorChecked(cfg Config) (Machine, error) { return core.NewVectorChecked(cfg) }

// Kernels returns all 14 Livermore loops in kernel order.
func Kernels() []*Kernel { return loops.All() }

// KernelsByClass returns the loops of one class: the paper's scalar
// set is LFK {5, 6, 11, 13, 14}, the vectorizable set LFK {1, 2, 3,
// 4, 7, 8, 9, 10, 12}.
func KernelsByClass(c KernelClass) []*Kernel { return loops.ByClass(c) }

// GetKernel returns Livermore kernel n (1-14).
func GetKernel(n int) (*Kernel, error) { return loops.Get(n) }

// MustKernel is GetKernel for known-valid numbers; it panics
// otherwise.
func MustKernel(n int) *Kernel {
	k, err := loops.Get(n)
	if err != nil {
		panic(err)
	}
	return k
}

// VectorKernels returns the hand-vectorized codings of the
// representative vectorizable kernels (all nine vectorizable kernels), for use with
// NewVector.
func VectorKernels() []*Kernel { return loops.VectorKernels() }

// VectorKernel returns the vectorized coding of kernel n, if one
// exists.
func VectorKernel(n int) (*Kernel, error) { return loops.VectorKernel(n) }

// ScaledKernel builds a fresh instance of Livermore kernel number
// with loop length n instead of the paper default. Kernel 2 requires
// a power-of-two length and kernel 4 a multiple of five; each kernel
// documents a maximum tied to its memory layout.
func ScaledKernel(number, n int) (*Kernel, error) { return loops.Scaled(number, n) }

// ComputeLimits derives the §4 dataflow and resource bounds of a
// trace under configuration cfg.
func ComputeLimits(t *Trace, cfg Config, mode LimitMode) Limits {
	return limits.Compute(t, cfg.Latencies(), mode)
}

// Steady-state extrapolation: per-loop simulation in O(1) of the
// iteration count. See internal/core for the engine's contract.
type (
	// Extrapolator wraps any Machine with the steady-state
	// extrapolation engine: results stay bit-identical to full
	// simulation whenever the engine engages, and runs it cannot
	// close analytically fall back to a plain delegated run.
	Extrapolator = core.Extrapolator

	// ExtrapolationStats reports what the engine did on the most
	// recent run of an Extrapolator.
	ExtrapolationStats = core.ExtrapolationStats
)

// Extrapolate wraps m with the steady-state extrapolation engine.
//
//	m := mfup.Extrapolate(mfup.NewBasic(mfup.CRAYLike, mfup.M11BR5))
//	r := m.Run(k.SharedTrace())   // same Result, O(1) in iterations
func Extrapolate(m Machine) *Extrapolator { return core.Extrapolate(m) }

// CanExtrapolate reports whether t satisfies the machine-independent
// prerequisites of the extrapolation engine (a detectable steady-state
// period, enough iterations for the reference ladder, tail address
// identity under reduction). A nil return does not guarantee
// engagement — machine-dependent reasons can still force a fallback.
func CanExtrapolate(t *Trace) error { return core.CanExtrapolate(t) }

// KernelForScale builds kernel number at the largest buildable loop
// length not above n, returning the kernel and the count of virtual
// iterations left over (zero when n itself is buildable). Feed the
// remainder to Extrapolator.WithVirtual via VirtualWindows to account
// for the full n analytically.
func KernelForScale(number, n int) (*Kernel, int64, error) { return loops.ForScale(number, n) }

// VirtualWindows converts extra un-materialized loop iterations of k
// into the body-window count the extrapolation engine must bridge.
func VirtualWindows(k *Kernel, extra int64) (int64, error) { return loops.VirtualWindows(k, extra) }
