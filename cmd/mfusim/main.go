// Command mfusim runs one machine configuration over a set of
// Livermore loops and reports per-loop and harmonic-mean issue rates.
//
// Usage examples:
//
//	mfusim -machine cray -mem 11 -br 5 -loops scalar
//	mfusim -machine multi -units 4 -bus nbus -loops all
//	mfusim -machine ruu -units 3 -ruu 40 -bus 1bus -loops vector
//	mfusim -machine ooo -units 8 -loops 1,5,13
//
// An invalid configuration (e.g. -units 0) or a simulation that
// exceeds -maxcycles, -stallcycles, or -timeout produces a one-line
// diagnostic on standard error and exit status 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mfup/internal/cli"
	"mfup/internal/core"
	"mfup/internal/loops"
	"mfup/internal/stats"
)

func main() {
	var (
		machine     = flag.String("machine", "cray", "simple | serialmem | nonseg | cray | scoreboard | tomasulo | multi | ooo | ruu | vector")
		mem         = flag.Int("mem", 11, "memory access time in cycles (paper: 11 or 5)")
		br          = flag.Int("br", 5, "branch execution time in cycles (paper: 5 or 2)")
		units       = flag.Int("units", 1, "issue units/stations (multi, ooo, ruu)")
		busKind     = flag.String("bus", "nbus", "result-bus interconnect: nbus | 1bus | xbar")
		ruuSize     = flag.Int("ruu", 50, "RUU entries (ruu machine)")
		stations    = flag.Int("stations", 4, "reservation stations per unit (tomasulo machine)")
		which       = flag.String("loops", "all", `"all", "scalar", "vector", or comma-separated kernel numbers`)
		maxCycles   = flag.Int64("maxcycles", 0, "simulated-cycle budget per loop; 0 = unlimited")
		stallCycles = flag.Int64("stallcycles", 0, "cycles without forward progress before the run is declared stalled; 0 = off")
		timeout     = flag.Duration("timeout", 0, "wall-clock deadline per loop (e.g. 30s); 0 = none")
	)
	flag.Parse()

	kernels, err := cli.SelectLoops(*which)
	if err != nil {
		fail(err)
	}
	cfg := core.Config{MemLatency: *mem, BranchLatency: *br, IssueUnits: *units, RUUSize: *ruuSize}
	cfg.Bus, err = cli.ParseBusKind(*busKind)
	if err != nil {
		fail(err)
	}

	var m core.Machine
	switch strings.ToLower(*machine) {
	case "simple":
		m, err = core.NewBasicChecked(core.Simple, cfg)
	case "serialmem":
		m, err = core.NewBasicChecked(core.SerialMemory, cfg)
	case "nonseg":
		m, err = core.NewBasicChecked(core.NonSegmented, cfg)
	case "cray":
		m, err = core.NewBasicChecked(core.CRAYLike, cfg)
	case "scoreboard":
		m, err = core.NewScoreboardChecked(cfg)
	case "tomasulo":
		m, err = core.NewTomasuloChecked(cfg.WithRUU(*stations))
	case "multi":
		m, err = core.NewMultiIssueChecked(cfg)
	case "ooo":
		m, err = core.NewMultiIssueOOOChecked(cfg)
	case "ruu":
		m, err = core.NewRUUChecked(cfg)
	case "vector":
		m, err = core.NewVectorChecked(cfg)
	default:
		fail(fmt.Errorf("unknown machine %q", *machine))
	}
	if err != nil {
		fail(err)
	}

	if strings.ToLower(*machine) == "vector" {
		// The vector machine runs the vectorized codings.
		var vks []*loops.Kernel
		for _, k := range kernels {
			vk, err := loops.VectorKernel(k.Number)
			if err != nil {
				continue // no vector coding for this kernel
			}
			vks = append(vks, vk)
		}
		if len(vks) == 0 {
			fail(fmt.Errorf("no vector codings among the selected loops (have 1, 3, 7, 12)"))
		}
		kernels = vks
	}

	fmt.Printf("%s, %s\n", m.Name(), cfg.Name())
	var rates []float64
	for _, k := range kernels {
		lim := core.Limits{MaxCycles: *maxCycles, StallCycles: *stallCycles}
		if *timeout > 0 {
			lim.Deadline = time.Now().Add(*timeout)
		}
		r, err := m.RunChecked(k.SharedTrace(), lim)
		if err != nil {
			fail(err)
		}
		rates = append(rates, r.IssueRate())
		fmt.Printf("  %-38s %8d instr %9d cycles  %.3f/cycle\n",
			k.String(), r.Instructions, r.Cycles, r.IssueRate())
	}
	fmt.Printf("harmonic mean issue rate: %.3f instructions/cycle\n", stats.HarmonicMean(rates))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mfusim:", err)
	os.Exit(1)
}
