// Command mfusim runs one machine configuration over a set of
// Livermore loops and reports per-loop and harmonic-mean issue rates.
//
// Usage examples:
//
//	mfusim -machine cray -mem 11 -br 5 -loops scalar
//	mfusim -machine multi -units 4 -bus nbus -loops all
//	mfusim -machine ruu -units 3 -ruu 40 -bus 1bus -loops vector
//	mfusim -machine ooo -units 8 -loops 1,5,13
//	mfusim -machine cray -loops scalar -stats
//
// -stats attaches a stall-attribution probe and, after the rates,
// prints a per-loop breakdown of where the machine's issue slots
// went: one column per stall reason (RAW, WAW, structural, result
// bus, memory bank, branch, buffer, issue width, drain). The probe
// observes without perturbing — rates are identical with and without
// it.
//
// An invalid configuration (e.g. -units 0) or a simulation that
// exceeds -maxcycles, -stallcycles, or -timeout produces a one-line
// diagnostic on standard error and exit status 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mfup/internal/cli"
	"mfup/internal/core"
	"mfup/internal/loops"
	"mfup/internal/probe"
	"mfup/internal/stats"
)

func main() {
	var (
		machine     = flag.String("machine", "cray", "simple | serialmem | nonseg | cray | scoreboard | tomasulo | multi | ooo | ruu | vector")
		mem         = flag.Int("mem", 11, "memory access time in cycles (paper: 11 or 5)")
		br          = flag.Int("br", 5, "branch execution time in cycles (paper: 5 or 2)")
		units       = flag.Int("units", 1, "issue units/stations (multi, ooo, ruu)")
		busKind     = flag.String("bus", "nbus", "result-bus interconnect: nbus | 1bus | xbar")
		ruuSize     = flag.Int("ruu", 50, "RUU entries (ruu machine)")
		stations    = flag.Int("stations", 4, "reservation stations per unit (tomasulo machine)")
		which       = flag.String("loops", "all", `"all", "scalar", "vector", or comma-separated kernel numbers`)
		showStats   = flag.Bool("stats", false, "print a per-loop stall-reason breakdown after the rates")
		maxCycles   = flag.Int64("maxcycles", 0, "simulated-cycle budget per loop; 0 = unlimited")
		stallCycles = flag.Int64("stallcycles", 0, "cycles without forward progress before the run is declared stalled; 0 = off")
		timeout     = flag.Duration("timeout", 0, "wall-clock deadline per loop (e.g. 30s); 0 = none")
	)
	flag.Parse()

	switch {
	case *maxCycles < 0:
		fail(fmt.Errorf("-maxcycles %d is negative (0 = unlimited)", *maxCycles))
	case *stallCycles < 0:
		fail(fmt.Errorf("-stallcycles %d is negative (0 = off)", *stallCycles))
	case *timeout < 0:
		fail(fmt.Errorf("-timeout %v is negative (0 = none)", *timeout))
	case strings.ToLower(*machine) == "tomasulo" && *stations < 1:
		fail(fmt.Errorf("-stations %d: the Tomasulo machine needs at least one reservation station per unit", *stations))
	}

	kernels, err := cli.SelectLoops(*which)
	if err != nil {
		fail(err)
	}
	cfg := core.Config{MemLatency: *mem, BranchLatency: *br, IssueUnits: *units, RUUSize: *ruuSize}
	cfg.Bus, err = cli.ParseBusKind(*busKind)
	if err != nil {
		fail(err)
	}

	var m core.Machine
	switch strings.ToLower(*machine) {
	case "simple":
		m, err = core.NewBasicChecked(core.Simple, cfg)
	case "serialmem":
		m, err = core.NewBasicChecked(core.SerialMemory, cfg)
	case "nonseg":
		m, err = core.NewBasicChecked(core.NonSegmented, cfg)
	case "cray":
		m, err = core.NewBasicChecked(core.CRAYLike, cfg)
	case "scoreboard":
		m, err = core.NewScoreboardChecked(cfg)
	case "tomasulo":
		m, err = core.NewTomasuloChecked(cfg.WithRUU(*stations))
	case "multi":
		m, err = core.NewMultiIssueChecked(cfg)
	case "ooo":
		m, err = core.NewMultiIssueOOOChecked(cfg)
	case "ruu":
		m, err = core.NewRUUChecked(cfg)
	case "vector":
		m, err = core.NewVectorChecked(cfg)
	default:
		fail(fmt.Errorf("unknown machine %q", *machine))
	}
	if err != nil {
		fail(err)
	}

	if strings.ToLower(*machine) == "vector" {
		// The vector machine runs the vectorized codings.
		var vks []*loops.Kernel
		for _, k := range kernels {
			vk, err := loops.VectorKernel(k.Number)
			if err != nil {
				continue // no vector coding for this kernel
			}
			vks = append(vks, vk)
		}
		if len(vks) == 0 {
			fail(fmt.Errorf("no vector codings among the selected loops (have 1, 3, 7, 12)"))
		}
		kernels = vks
	}

	fmt.Printf("%s, %s\n", m.Name(), cfg.Name())
	var rates []float64
	var breakdowns []*probe.Counters
	for _, k := range kernels {
		lim := core.Limits{MaxCycles: *maxCycles, StallCycles: *stallCycles}
		if *timeout > 0 {
			lim.Deadline = time.Now().Add(*timeout)
		}
		var c *probe.Counters
		if *showStats {
			c = new(probe.Counters)
			m.SetProbe(c)
		}
		r, err := m.RunChecked(k.SharedTrace(), lim)
		if c != nil {
			m.SetProbe(nil)
		}
		if err != nil {
			fail(err)
		}
		if rate := r.IssueRate(); !(rate > 0) {
			// A non-positive rate would poison the harmonic mean (NaN);
			// report it as the failure it is rather than printing NaN.
			fail(fmt.Errorf("%s: non-positive issue rate %g (%d instructions in %d cycles)",
				k.String(), rate, r.Instructions, r.Cycles))
		}
		rates = append(rates, r.IssueRate())
		breakdowns = append(breakdowns, c)
		fmt.Printf("  %-38s %8d instr %9d cycles  %.3f/cycle\n",
			k.String(), r.Instructions, r.Cycles, r.IssueRate())
	}
	fmt.Printf("harmonic mean issue rate: %.3f instructions/cycle\n", stats.HarmonicMean(rates))

	if *showStats {
		fmt.Printf("\nstall-reason breakdown (issue slots):\n")
		fmt.Printf("  %-12s %9s %9s", "loop", "issued", "slots")
		for _, r := range probe.Reasons() {
			fmt.Printf(" %*s", colWidth(r), r)
		}
		fmt.Println()
		for i, k := range kernels {
			c := breakdowns[i]
			fmt.Printf("  %-12s %9d %9d", k.SharedTrace().Name, c.Issued, c.Slots)
			for _, r := range probe.Reasons() {
				fmt.Printf(" %*d", colWidth(r), c.Stalls[r])
			}
			fmt.Println()
		}
	}
}

// colWidth sizes a breakdown column to its reason-name header.
func colWidth(r probe.Reason) int {
	if n := len(r.String()); n > 7 {
		return n
	}
	return 7
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mfusim:", err)
	os.Exit(1)
}
