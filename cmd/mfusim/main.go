// Command mfusim runs one machine configuration over a set of
// Livermore loops and reports per-loop and harmonic-mean issue rates.
//
// Usage examples:
//
//	mfusim -machine cray -mem 11 -br 5 -loops scalar
//	mfusim -machine multi -units 4 -bus nbus -loops all
//	mfusim -machine ruu -units 3 -ruu 40 -bus 1bus -loops vector
//	mfusim -machine ooo -units 8 -loops 1,5,13
//	mfusim -machine cray -loops scalar -stats
//	mfusim -machine cray -loops 1 -scale 1000000000 -extrapolate
//
// -scale n rebuilds every selected kernel at loop length n instead of
// the paper defaults. -extrapolate enables the steady-state
// extrapolation engine: each loop's repetitive middle is closed
// analytically from a short ladder of reference runs, making the cost
// of a loop independent of its iteration count while producing cycle
// counts, issue rates, and stall breakdowns bit-identical to full
// simulation. Loops with no detectable steady state fall back to full
// simulation automatically. A -scale beyond what a kernel's memory
// layout can materialize requires -extrapolate, which accounts for
// the surplus iterations analytically.
//
// -stats attaches a stall-attribution probe and, after the rates,
// prints a per-loop breakdown of where the machine's issue slots
// went: one column per stall reason (RAW, WAW, structural, result
// bus, memory bank, branch, buffer, issue width, drain). The probe
// observes without perturbing — rates are identical with and without
// it.
//
// -trace FILE records every instruction's pipeline lifecycle — fetch,
// issue, functional-unit occupancy, result-bus acquisition,
// writeback, branch resolution, commit — and writes the runs as
// Chrome trace-event JSON, loadable directly in ui.perfetto.dev or
// chrome://tracing. -timeline prints the same record as a plain-text
// Gantt chart per loop. -trace-events caps the events kept per loop
// (the overflow is counted and reported, never accumulated);
// -timeline-window widens the timeline's cycle window. Like the
// probe, the recorder observes without perturbing: rates are
// identical with and without it.
//
// -tracein FILE runs a binary .mfutrace file (produced by mfuasm
// -traceout) instead of the built-in loops; -faults PLAN arms the
// deterministic fault-injection layer (internal/faultinject), with
// placement seeded by -fault-seed.
//
// An invalid configuration (e.g. -units 0) or a simulation that
// exceeds -maxcycles, -stallcycles, or -timeout produces a one-line
// diagnostic on standard error and exit status 1.
//
// Diagnostics go through a shared logger: -v lowers its level to
// debug, and MFU_LOG (debug | info | warn | error) overrides it.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mfup/internal/atomicio"
	"mfup/internal/cli"
	"mfup/internal/core"
	"mfup/internal/events"
	"mfup/internal/faultinject"
	"mfup/internal/loops"
	"mfup/internal/probe"
	"mfup/internal/stats"
	"mfup/internal/trace"
)

// log is the shared tool logger; main wires it up before first use.
var log = cli.NewLogger("mfusim", false)

func main() {
	var (
		machine     = flag.String("machine", "cray", "simple | serialmem | nonseg | cray | scoreboard | tomasulo | multi | ooo | ruu | vector")
		mem         = flag.Int("mem", 11, "memory access time in cycles (paper: 11 or 5)")
		br          = flag.Int("br", 5, "branch execution time in cycles (paper: 5 or 2)")
		units       = flag.Int("units", 1, "issue units/stations (multi, ooo, ruu)")
		busKind     = flag.String("bus", "nbus", "result-bus interconnect: nbus | 1bus | xbar")
		ruuSize     = flag.Int("ruu", 50, "RUU entries (ruu machine)")
		stations    = flag.Int("stations", 4, "reservation stations per unit (tomasulo machine)")
		which       = flag.String("loops", "all", `"all", "scalar", "vector", or comma-separated kernel numbers`)
		scale       = flag.Int("scale", 0, "loop length for every selected kernel (0 = paper defaults); lengths beyond a kernel's memory layout need -extrapolate")
		extrap      = flag.Bool("extrapolate", false, "close each loop's steady-state middle analytically instead of simulating every iteration")
		showStats   = flag.Bool("stats", false, "print a per-loop stall-reason breakdown after the rates")
		maxCycles   = flag.Int64("maxcycles", 0, "simulated-cycle budget per loop; 0 = unlimited")
		stallCycles = flag.Int64("stallcycles", 0, "cycles without forward progress before the run is declared stalled; 0 = off")
		timeout     = flag.Duration("timeout", 0, "wall-clock deadline per loop (e.g. 30s); 0 = none")

		traceFile      = flag.String("trace", "", "write per-instruction pipeline events to this file as Chrome trace-event JSON (Perfetto)")
		timeline       = flag.Bool("timeline", false, "print a per-loop plain-text pipeline timeline after the rates")
		timelineWindow = flag.Int("timeline-window", 0, "cycle columns in the -timeline rendering; 0 = 120")
		traceEvents    = flag.Int("trace-events", 0, "events kept per loop for -trace/-timeline; 0 = 65536, overflow is dropped and counted")
		traceIn        = flag.String("tracein", "", "run a binary .mfutrace file (see mfuasm -traceout) instead of built-in loops")
		faults         = flag.String("faults", "", "fault-injection plan, e.g. 'sim:panic:at=1000' (chaos testing)")
		faultSeed      = flag.Int64("fault-seed", 1, "seed for fault placement")
		verbose        = flag.Bool("v", false, "verbose logging (debug level) on standard error")
	)
	flag.Parse()
	log = cli.NewLogger("mfusim", *verbose)
	loopsSet, seedSet, scaleSet := false, false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "loops":
			loopsSet = true
		case "fault-seed":
			seedSet = true
		case "scale":
			scaleSet = true
		}
	})

	tracing := *traceFile != "" || *timeline
	switch {
	case *maxCycles < 0:
		fail(fmt.Errorf("-maxcycles %d is negative (0 = unlimited)", *maxCycles))
	case *stallCycles < 0:
		fail(fmt.Errorf("-stallcycles %d is negative (0 = off)", *stallCycles))
	case *timeout < 0:
		fail(fmt.Errorf("-timeout %v is negative (0 = none)", *timeout))
	case strings.ToLower(*machine) == "tomasulo" && *stations < 1:
		fail(fmt.Errorf("-stations %d: the Tomasulo machine needs at least one reservation station per unit", *stations))
	case *traceEvents < 0:
		fail(fmt.Errorf("-trace-events %d is negative (0 = default cap)", *traceEvents))
	case *traceEvents > 0 && !tracing:
		fail(fmt.Errorf("-trace-events needs -trace or -timeline"))
	case *timelineWindow < 0:
		fail(fmt.Errorf("-timeline-window %d is negative (0 = default width)", *timelineWindow))
	case *timelineWindow > 0 && !*timeline:
		fail(fmt.Errorf("-timeline-window needs -timeline"))
	case *traceIn != "" && loopsSet:
		fail(fmt.Errorf("-tracein conflicts with -loops: the trace file is the workload"))
	case seedSet && *faults == "":
		fail(fmt.Errorf("-fault-seed needs -faults"))
	case scaleSet && *scale < 1:
		fail(fmt.Errorf("-scale %d: loop length must be at least 1", *scale))
	case scaleSet && *traceIn != "":
		fail(fmt.Errorf("-scale conflicts with -tracein: the trace file fixes the workload"))
	case scaleSet && strings.ToLower(*machine) == "vector":
		fail(fmt.Errorf("-scale does not apply to the vector machine: the vector codings are fixed at the paper lengths"))
	}

	if *faults != "" {
		plan, err := faultinject.ParsePlan(*faults, *faultSeed)
		if err != nil {
			fail(err)
		}
		faultinject.Activate(faultinject.New(plan))
		defer faultinject.Deactivate()
		log.Warn("fault injection active; failures below may be deliberate", "plan", *faults, "seed", *faultSeed)
	}

	kernels, err := cli.SelectLoops(*which)
	if err != nil {
		fail(err)
	}
	cfg := core.Config{MemLatency: *mem, BranchLatency: *br, IssueUnits: *units, RUUSize: *ruuSize}
	cfg.Bus, err = cli.ParseBusKind(*busKind)
	if err != nil {
		fail(err)
	}

	var m core.Machine
	switch strings.ToLower(*machine) {
	case "simple":
		m, err = core.NewBasicChecked(core.Simple, cfg)
	case "serialmem":
		m, err = core.NewBasicChecked(core.SerialMemory, cfg)
	case "nonseg":
		m, err = core.NewBasicChecked(core.NonSegmented, cfg)
	case "cray":
		m, err = core.NewBasicChecked(core.CRAYLike, cfg)
	case "scoreboard":
		m, err = core.NewScoreboardChecked(cfg)
	case "tomasulo":
		m, err = core.NewTomasuloChecked(cfg.WithRUU(*stations))
	case "multi":
		m, err = core.NewMultiIssueChecked(cfg)
	case "ooo":
		m, err = core.NewMultiIssueOOOChecked(cfg)
	case "ruu":
		m, err = core.NewRUUChecked(cfg)
	case "vector":
		m, err = core.NewVectorChecked(cfg)
	default:
		fail(fmt.Errorf("unknown machine %q", *machine))
	}
	if err != nil {
		fail(err)
	}

	if strings.ToLower(*machine) == "vector" && *traceIn == "" {
		// The vector machine runs the vectorized codings.
		var vks []*loops.Kernel
		for _, k := range kernels {
			vk, err := loops.VectorKernel(k.Number)
			if err != nil {
				continue // no vector coding for this kernel
			}
			vks = append(vks, vk)
		}
		if len(vks) == 0 {
			fail(fmt.Errorf("no vector codings among the selected loops (have 1, 3, 7, 12)"))
		}
		kernels = vks
	}

	// -scale rebuilds the selected kernels at the requested loop
	// length. A length past a kernel's memory layout materializes the
	// layout maximum; the remainder becomes virtual iterations for the
	// extrapolation engine to account for analytically.
	virtual := map[string]int64{}
	if scaleSet {
		scaledKs := make([]*loops.Kernel, 0, len(kernels))
		for _, k := range kernels {
			sk, extra, err := loops.ForScale(k.Number, *scale)
			if err != nil {
				fail(err)
			}
			if extra > 0 {
				if !*extrap {
					fail(fmt.Errorf("%s: -scale %d exceeds the %d iterations the memory layout supports; -extrapolate can extend it analytically",
						sk, *scale, sk.N))
				}
				if err := core.CanExtrapolate(sk.SharedTrace()); err != nil {
					fail(fmt.Errorf("%s: -scale %d needs analytic extension past %d iterations, but %v", sk, *scale, sk.N, err))
				}
				v, err := loops.VirtualWindows(sk, extra)
				if err != nil {
					fail(err)
				}
				virtual[sk.SharedTrace().Name] = v
			}
			scaledKs = append(scaledKs, sk)
		}
		kernels = scaledKs
	}

	// The workload: the built-in loops, or one externally assembled
	// binary trace.
	type workItem struct {
		label string
		tr    *trace.Trace
	}
	var work []workItem
	if *traceIn != "" {
		tr, err := readTraceFile(*traceIn)
		if err != nil {
			fail(err)
		}
		work = append(work, workItem{label: fmt.Sprintf("%s (%s)", tr.Name, *traceIn), tr: tr})
	} else {
		for _, k := range kernels {
			work = append(work, workItem{label: k.String(), tr: k.SharedTrace()})
		}
	}

	var engine *core.Extrapolator
	if *extrap {
		engine = core.Extrapolate(m).WithVirtual(virtual)
		m = engine
	}

	var rec *events.Recorder
	if tracing {
		rec = events.NewRecorder(*traceEvents)
		m.SetRecorder(rec)
	}

	// SIGINT/SIGTERM stops cleanly between loops: the current loop
	// finishes, the rest are skipped, and the exit status is nonzero.
	// A second signal gets the default kill behavior.
	intr := cli.NotifyInterrupt(context.Background(), log,
		"interrupted; stopping after the current loop (signal again to kill)")
	defer intr.Stop()

	fmt.Printf("%s, %s\n", m.Name(), cfg.Name())
	var rates []float64
	var breakdowns []*probe.Counters
	for _, w := range work {
		if intr.Interrupted() {
			os.Exit(1)
		}
		lim := core.Limits{MaxCycles: *maxCycles, StallCycles: *stallCycles}
		if *timeout > 0 {
			lim.Deadline = time.Now().Add(*timeout)
		}
		var c *probe.Counters
		if *showStats {
			c = new(probe.Counters)
			m.SetProbe(c)
		}
		r, err := m.RunChecked(w.tr, lim)
		if c != nil {
			m.SetProbe(nil)
		}
		if err != nil {
			fail(err)
		}
		if rate := r.IssueRate(); !(rate > 0) {
			// A non-positive rate would poison the harmonic mean (NaN);
			// report it as the failure it is rather than printing NaN.
			fail(fmt.Errorf("%s: non-positive issue rate %g (%d instructions in %d cycles)",
				w.label, rate, r.Instructions, r.Cycles))
		}
		rates = append(rates, r.IssueRate())
		breakdowns = append(breakdowns, c)
		fmt.Printf("  %-38s %8d instr %9d cycles  %.3f/cycle\n",
			w.label, r.Instructions, r.Cycles, r.IssueRate())
		if engine != nil {
			if s := engine.Stats(); s.Engaged {
				fmt.Printf("    extrapolated: lag %d, %d of %d windows bridged analytically, %d ops simulated\n",
					s.Lag, s.Skipped, s.Windows, s.SimulatedOps)
			} else {
				fmt.Printf("    full simulation: %s\n", s.Reason)
			}
		}
	}
	fmt.Printf("harmonic mean issue rate: %.3f instructions/cycle\n", stats.HarmonicMean(rates))
	if rec != nil {
		fmt.Printf("trace: %d events recorded, %d dropped at the %d-event cap\n",
			rec.Events(), rec.Dropped(), cap0(*traceEvents))
	}

	if *timeline {
		opt := events.TimelineOptions{MaxCycles: *timelineWindow}
		for i := range rec.Runs() {
			fmt.Println()
			fmt.Print(events.Timeline(&rec.Runs()[i], opt))
		}
	}

	if *traceFile != "" {
		if err := writeTrace(*traceFile, rec); err != nil {
			fail(err)
		}
		log.Debug("trace written", "file", *traceFile, "events", rec.Events())
	}

	if *showStats {
		fmt.Printf("\nstall-reason breakdown (issue slots):\n")
		fmt.Printf("  %-12s %9s %9s", "loop", "issued", "slots")
		for _, r := range probe.Reasons() {
			fmt.Printf(" %*s", colWidth(r), r)
		}
		fmt.Println()
		for i, w := range work {
			c := breakdowns[i]
			fmt.Printf("  %-12s %9d %9d", w.tr.Name, c.Issued, c.Slots)
			for _, r := range probe.Reasons() {
				fmt.Printf(" %*d", colWidth(r), c.Stalls[r])
			}
			fmt.Println()
		}
	}
}

// cap0 maps the -trace-events zero default to the effective cap.
func cap0(n int) int {
	if n <= 0 {
		return events.DefaultCap
	}
	return n
}

// writeTrace writes the recorded runs as Chrome trace-event JSON. The
// write is atomic (temp+rename): a crash or injected fault mid-export
// never leaves a torn file at path.
func writeTrace(path string, rec *events.Recorder) error {
	f, err := atomicio.Create("write.trace", path)
	if err != nil {
		return err
	}
	defer f.Abort()
	if err := events.WriteChrome(f, rec); err != nil {
		return err
	}
	return f.Commit()
}

// readTraceFile decodes one binary .mfutrace file. Decode errors —
// truncation, corruption, out-of-range fields — come back as
// structured diagnostics, never panics; the mutation fuzzer holds the
// decoder to that.
func readTraceFile(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := trace.ReadBinary(bufio.NewReader(f))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}

// colWidth sizes a breakdown column to its reason-name header.
func colWidth(r probe.Reason) int {
	if n := len(r.String()); n > 7 {
		return n
	}
	return 7
}

// fail reports err through the shared logger and exits nonzero.
func fail(err error) {
	log.Error(err.Error())
	os.Exit(1)
}
