// Command mfuasm assembles, disassembles, traces, and profiles
// CRAY-like assembly programs.
//
// Usage examples:
//
//	mfuasm -file prog.cal                # assemble + disassemble
//	mfuasm -file prog.cal -run           # execute; print register state
//	mfuasm -file prog.cal -run -stats    # execute; print trace statistics
//	mfuasm -file prog.cal -run -trace    # execute; dump the dynamic trace
//	mfuasm -kernel 5                     # disassemble Livermore kernel 5
//	mfuasm -kernel 7 -vector             # its vectorized coding
//	mfuasm -kernel 7 -run -traceout k7.mfutrace  # export the binary trace
//
// Programs loaded from files start with zeroed registers and memory;
// they lay out their own constants with immediates and stores.
// Built-in kernels run with their benchmark data.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"

	"mfup/internal/asm"
	"mfup/internal/atomicio"
	"mfup/internal/cli"
	"mfup/internal/emu"
	"mfup/internal/faultinject"
	"mfup/internal/isa"
	"mfup/internal/loops"
	"mfup/internal/trace"
)

// log is the shared tool logger; main wires it up before first use.
var log = cli.NewLogger("mfuasm", false)

func main() {
	var (
		file      = flag.String("file", "", "assembly source file")
		kernel    = flag.Int("kernel", 0, "disassemble/run built-in Livermore kernel 1-14 instead of a file")
		vector    = flag.Bool("vector", false, "with -kernel: use the vectorized coding")
		run       = flag.Bool("run", false, "execute the program on the architectural emulator")
		dumpTrace = flag.Bool("trace", false, "with -run: dump the dynamic instruction trace")
		showStats = flag.Bool("stats", false, "with -run: print instruction-mix statistics")
		maxSteps  = flag.Int64("maxsteps", 0, "with -run: dynamic instruction budget; 0 = the emulator default")
		traceOut  = flag.String("traceout", "", "with -run: write the dynamic trace to this file in binary .mfutrace form")
		faults    = flag.String("faults", "", "fault-injection plan, e.g. 'write.tracebin:werr' (chaos testing)")
		faultSeed = flag.Int64("fault-seed", 1, "seed for fault placement")
		verbose   = flag.Bool("v", false, "verbose logging (debug level) on standard error")
	)
	flag.Parse()
	log = cli.NewLogger("mfuasm", *verbose)
	seedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "fault-seed" {
			seedSet = true
		}
	})

	switch {
	case *file != "" && *kernel != 0:
		fail(fmt.Errorf("-file conflicts with -kernel: give one program source"))
	case *vector && *kernel == 0:
		fail(fmt.Errorf("-vector only applies with -kernel (files carry their own coding)"))
	case *dumpTrace && !*run:
		fail(fmt.Errorf("-trace requires -run (the trace is the dynamic execution)"))
	case *showStats && !*run:
		fail(fmt.Errorf("-stats requires -run (statistics come from the dynamic trace)"))
	case *maxSteps != 0 && !*run:
		fail(fmt.Errorf("-maxsteps requires -run"))
	case *maxSteps < 0:
		fail(fmt.Errorf("-maxsteps %d is negative (0 = the emulator default)", *maxSteps))
	case *traceOut != "" && !*run:
		fail(fmt.Errorf("-traceout requires -run (the trace is the dynamic execution)"))
	case seedSet && *faults == "":
		fail(fmt.Errorf("-fault-seed needs -faults"))
	}

	if *faults != "" {
		plan, err := faultinject.ParsePlan(*faults, *faultSeed)
		if err != nil {
			fail(err)
		}
		faultinject.Activate(faultinject.New(plan))
		defer faultinject.Deactivate()
		log.Warn("fault injection active; failures below may be deliberate", "plan", *faults, "seed", *faultSeed)
	}

	var (
		p *isa.Program
		m = emu.New(0)
	)
	switch {
	case *kernel != 0:
		var k *loops.Kernel
		var err error
		if *vector {
			k, err = loops.VectorKernel(*kernel)
		} else {
			k, err = loops.Get(*kernel)
		}
		if err != nil {
			fail(err)
		}
		p = k.Program()
		m = k.NewMachine()
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			fail(err)
		}
		p, err = asm.Assemble(*file, string(src))
		if err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("either -file or -kernel is required"))
	}
	fmt.Printf("; %s: %d instructions\n%s", p.Name, len(p.Code), p.Disassemble())
	if !*run {
		return
	}

	// SIGINT/SIGTERM before the emulation starts aborts cleanly; a
	// second signal gets the default kill behavior.
	intr := cli.NotifyInterrupt(context.Background(), log,
		"interrupted; skipping the emulation run (signal again to kill)")
	defer intr.Stop()
	if intr.Interrupted() {
		os.Exit(1)
	}

	if *maxSteps > 0 {
		m.StepLimit = *maxSteps
	}
	t, err := m.Run(p)
	if err != nil {
		fail(err)
	}
	fmt.Printf("\nexecuted %d dynamic instructions\n", t.Len())
	if *traceOut != "" {
		if err := writeTraceFile(*traceOut, t); err != nil {
			fail(err)
		}
		log.Debug("binary trace written", "file", *traceOut, "ops", t.Len())
	}
	fmt.Println("final A registers:")
	for i, v := range m.A {
		fmt.Printf("  A%d = %d\n", i, v)
	}
	fmt.Println("final S registers:")
	for i := range m.S {
		fmt.Printf("  S%d = %#x (as float: %g)\n", i, m.S[i], m.SFloat(i))
	}

	if *showStats {
		mix := t.ComputeMix()
		fmt.Printf("\ninstruction mix (%s):\n", mix)
		for u := 0; u < isa.NumUnits; u++ {
			if mix.ByUnit[u] == 0 {
				continue
			}
			fmt.Printf("  %-14s %7d (%5.1f%%)\n", isa.Unit(u), mix.ByUnit[u], 100*mix.Fraction(isa.Unit(u)))
		}
	}
	if *dumpTrace {
		fmt.Println("\ndynamic trace:")
		for i := range t.Ops {
			fmt.Printf("  %s\n", &t.Ops[i])
		}
	}
}

// writeTraceFile encodes t in the binary .mfutrace form, atomically:
// a crash or injected write fault mid-export never leaves a torn file.
func writeTraceFile(path string, t *trace.Trace) error {
	f, err := atomicio.Create("write.tracebin", path)
	if err != nil {
		return err
	}
	defer f.Abort()
	w := bufio.NewWriter(f)
	if err := trace.WriteBinary(w, t); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Commit()
}

// fail reports err through the shared logger and exits nonzero.
func fail(err error) {
	log.Error(err.Error())
	os.Exit(1)
}
