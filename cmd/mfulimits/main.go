// Command mfulimits prints the §4 performance bounds — the
// pseudo-dataflow, resource, and actual limits — for the Livermore
// loops or a user-supplied assembly program.
//
// Usage examples:
//
//	mfulimits -mem 11 -br 5 -loops scalar
//	mfulimits -mode serial -loops all
//	mfulimits -file kernel.cal
//	mfulimits -file k7.mfutrace          # a binary trace (mfuasm -traceout)
//
// A -file ending in .mfutrace is decoded as a binary trace instead of
// assembled; -faults PLAN arms the fault-injection layer
// (internal/faultinject), with placement seeded by -fault-seed.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"mfup/internal/asm"
	"mfup/internal/cli"
	"mfup/internal/core"
	"mfup/internal/emu"
	"mfup/internal/faultinject"
	"mfup/internal/limits"
	"mfup/internal/stats"
	"mfup/internal/trace"
)

// log is the shared tool logger; main wires it up before first use.
var log = cli.NewLogger("mfulimits", false)

func main() {
	var (
		mem       = flag.Int("mem", 11, "memory access time in cycles")
		br        = flag.Int("br", 5, "branch execution time in cycles")
		mode      = flag.String("mode", "pure", "WAW treatment: pure | serial")
		which     = flag.String("loops", "all", `"all", "scalar", "vector", or comma-separated kernel numbers`)
		file      = flag.String("file", "", "assembly file to analyze instead of the Livermore loops")
		maxSteps  = flag.Int64("maxsteps", 0, "with -file: dynamic instruction budget for tracing; 0 = the emulator default")
		faults    = flag.String("faults", "", "fault-injection plan (chaos testing)")
		faultSeed = flag.Int64("fault-seed", 1, "seed for fault placement")
		verbose   = flag.Bool("v", false, "verbose logging (debug level) on standard error")
	)
	flag.Parse()
	log = cli.NewLogger("mfulimits", *verbose)

	loopsSet, seedSet := false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "loops":
			loopsSet = true
		case "fault-seed":
			seedSet = true
		}
	})
	binaryIn := strings.HasSuffix(strings.ToLower(*file), ".mfutrace")
	switch {
	case *file != "" && loopsSet:
		fail(fmt.Errorf("-file conflicts with -loops: a file is analyzed instead of the Livermore loops"))
	case *maxSteps != 0 && *file == "":
		fail(fmt.Errorf("-maxsteps only applies with -file (built-in loops trace under the emulator default)"))
	case *maxSteps != 0 && binaryIn:
		fail(fmt.Errorf("-maxsteps only applies to assembly sources (a .mfutrace file is already traced)"))
	case *maxSteps < 0:
		fail(fmt.Errorf("-maxsteps %d is negative (0 = the emulator default)", *maxSteps))
	case seedSet && *faults == "":
		fail(fmt.Errorf("-fault-seed needs -faults"))
	}

	if *faults != "" {
		plan, err := faultinject.ParsePlan(*faults, *faultSeed)
		if err != nil {
			fail(err)
		}
		faultinject.Activate(faultinject.New(plan))
		defer faultinject.Deactivate()
		log.Warn("fault injection active; failures below may be deliberate", "plan", *faults, "seed", *faultSeed)
	}

	cfg := core.Config{MemLatency: *mem, BranchLatency: *br}
	var lm limits.Mode
	switch strings.ToLower(*mode) {
	case "pure":
		lm = limits.Pure
	case "serial":
		lm = limits.Serial
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}

	var traces []*trace.Trace
	switch {
	case binaryIn:
		// A pre-traced binary workload: decode and validate; corrupted
		// files come back as structured diagnostics, never panics.
		f, err := os.Open(*file)
		if err != nil {
			fail(err)
		}
		t, err := trace.ReadBinary(bufio.NewReader(f))
		f.Close()
		if err != nil {
			fail(fmt.Errorf("%s: %w", *file, err))
		}
		traces = append(traces, t)
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			fail(err)
		}
		p, err := asm.Assemble(*file, string(src))
		if err != nil {
			fail(err)
		}
		m := emu.New(0)
		if *maxSteps > 0 {
			m.StepLimit = *maxSteps
		}
		t, err := m.Run(p)
		if err != nil {
			fail(err)
		}
		traces = append(traces, t)
	default:
		ks, err := cli.SelectLoops(*which)
		if err != nil {
			fail(err)
		}
		for _, k := range ks {
			traces = append(traces, k.SharedTrace())
		}
	}

	// SIGINT/SIGTERM stops cleanly between traces; a second signal
	// gets the default kill behavior.
	intr := cli.NotifyInterrupt(context.Background(), log,
		"interrupted; stopping after the current trace (signal again to kill)")
	defer intr.Stop()

	fmt.Printf("%s limits, %s\n", lm, cfg.Name())
	var pdf, res, act []float64
	for _, t := range traces {
		if intr.Interrupted() {
			os.Exit(1)
		}
		l := limits.Compute(t, cfg.Latencies(), lm)
		pdf = append(pdf, l.PseudoDataflow)
		res = append(res, l.Resource)
		act = append(act, l.Actual)
		fmt.Printf("  %-10s pseudo-dataflow %.3f  resource %.3f  actual %.3f  (critical path %d cycles)\n",
			t.Name, l.PseudoDataflow, l.Resource, l.Actual, l.CriticalPath)
	}
	if len(traces) > 1 {
		fmt.Printf("harmonic means: pseudo-dataflow %.3f  resource %.3f  actual %.3f\n",
			stats.HarmonicMean(pdf), stats.HarmonicMean(res), stats.HarmonicMean(act))
	}
}

// fail reports err through the shared logger and exits nonzero.
func fail(err error) {
	log.Error(err.Error())
	os.Exit(1)
}
