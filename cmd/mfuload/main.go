// Command mfuload is the deterministic load generator for mfud: it
// drives a seeded mix of job specs at a target rate, measures
// latency, classifies every response (completed, cached, shed,
// failed), and — the point of the exercise — verifies that the
// daemon never serves two different results for the same job: every
// response observed for a content key must be byte-identical to
// every other, across cache hits, concurrent duplicates, injected
// faults, and daemon restarts.
//
// -addr takes a comma-separated target list: requests round-robin
// across the fleet, and because results are content-addressed the
// byte-identity verdict spans processes — a cluster in which two
// workers (or a worker and a router) disagree about a key is
// corruption, exactly like one daemon disagreeing with itself.
// -sweeps N folds a design-space sweep submission into every Nth
// request, so the verdict also covers whole sweep reports.
//
// Usage examples:
//
//	mfuload -addr http://127.0.0.1:8080 -duration 30s -rate 40
//	mfuload -addr http://127.0.0.1:8080 -duration 60s -clients 16 -seed 7 -report soak.json
//	mfuload -addr http://127.0.0.1:8080,http://127.0.0.1:8081 -sweeps 10 -duration 30s
//
// The exit status is the verdict: 0 for a clean run, 1 for any
// corruption (byte-diverging results) or transport-level failure.
// Shed responses (429/503) are not failures — explicit load shedding
// is the daemon doing its job — but they are counted and reported.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"mfup/internal/cli"
	"mfup/internal/faultinject"
	"mfup/internal/stats"
)

// log is the shared tool logger; main wires it up before first use.
var log = cli.NewLogger("mfuload", false)

// jobMix is the seeded spec pool: small, fast jobs across machine
// kinds and loop selections, with deliberate respellings ("5,1" vs
// "1,5", defaults spelled vs omitted) so the run exercises the
// daemon's canonicalization and dedup as well as its scheduler.
var jobMix = []string{
	`{"machine":{"kind":"cray"},"workload":{"loops":"1"}}`,
	`{"machine":{"kind":"cray","mem":11,"br":5},"workload":{"loops":"1"}}`, // same job, spelled out
	`{"machine":{"kind":"simple"},"workload":{"loops":"2"}}`,
	`{"machine":{"kind":"serialmem"},"workload":{"loops":"3"}}`,
	`{"machine":{"kind":"scoreboard"},"workload":{"loops":"1,5"}}`,
	`{"machine":{"kind":"scoreboard"},"workload":{"loops":"5,1"}}`, // same job, reordered
	`{"machine":{"kind":"tomasulo"},"workload":{"loops":"4"}}`,
	`{"machine":{"kind":"multi","units":2},"workload":{"loops":"6"}}`,
	`{"machine":{"kind":"ooo","units":2},"workload":{"loops":"8"}}`,
	`{"machine":{"kind":"ruu","units":2,"ruu":20},"workload":{"loops":"9"}}`,
	`{"machine":{"kind":"vector"},"workload":{"loops":"vector"}}`,
	`{"machine":{"kind":"cray","mem":5,"br":2},"workload":{"loops":"10,11"}}`,
}

// sweepMix is the seeded sweep-spec pool for -sweeps: small sweeps,
// again with a deliberate respelling so repeated submissions hit the
// same content key from different spellings.
var sweepMix = []string{
	`{"base":{"kind":"ooo","mem":11,"br":5},"axes":{"width":[1,2]}}`,
	`{"base":{"kind":"ooo","br":5,"mem":11},"axes":{"width":[2,1]}}`, // same sweep, respelled
	`{"base":{"kind":"multi","mem":11,"br":5},"axes":{"width":[1,2]}}`,
	`{"base":{"kind":"cray"},"axes":{"mem":[5,11]}}`,
}

// verdict accumulates the run's observations under one lock.
type verdict struct {
	mu        sync.Mutex
	results   map[string][]byte // key -> first observed result bytes
	corrupt   []string          // keys with byte-diverging results
	latencies []time.Duration
	requests  int
	done      int
	cached    int
	accepted  int // 202: async accept (only when -wait=false)
	shed      int // 429/503: explicit load shedding
	faulted   int // 500s tolerated under -chaos
	failed    int // jobs the daemon reported as failed
	errors    int // transport errors, unexpected statuses, bad JSON
	sweeps    int // of the requests, sweep submissions
}

// Report is the -report JSON document.
type Report struct {
	Requests  int      `json:"requests"`
	Done      int      `json:"done"`
	Cached    int      `json:"cached"`
	Accepted  int      `json:"accepted"`
	Shed      int      `json:"shed"`
	Faulted   int      `json:"faulted"`
	Failed    int      `json:"failed"`
	Errors    int      `json:"errors"`
	Sweeps    int      `json:"sweeps"`
	Corrupt   []string `json:"corrupt_keys"`
	UniqueIDs int      `json:"unique_ids"`
	P50MS     float64  `json:"p50_ms"`
	P99MS     float64  `json:"p99_ms"`
}

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "base URL(s) of the target daemon(s), comma-separated; requests round-robin")
		sweeps   = flag.Int("sweeps", 0, "submit a design-space sweep every N requests; 0 = never")
		duration = flag.Duration("duration", 10*time.Second, "how long to generate load")
		rate     = flag.Float64("rate", 20, "target requests/second; 0 = as fast as the clients go")
		clients  = flag.Int("clients", 4, "concurrent client goroutines")
		seed     = flag.Int64("seed", 1, "seed for the deterministic job mix")
		wait     = flag.Bool("wait", true, "submit with ?wait=1 (block for results) instead of fire-and-poll")
		chaos    = flag.Bool("chaos", false, "target daemon has fault injection armed: tolerate 500s (count them as faulted, not errors)")
		report   = flag.String("report", "", "write the run's JSON report to this file")
		verbose  = flag.Bool("v", false, "verbose logging (debug level) on standard error")
	)
	flag.Parse()
	log = cli.NewLogger("mfuload", *verbose)
	switch {
	case *duration <= 0:
		fail(fmt.Errorf("-duration %v: the run needs positive length", *duration))
	case *rate < 0:
		fail(fmt.Errorf("-rate %g is negative (0 = unpaced)", *rate))
	case *clients < 1:
		fail(fmt.Errorf("-clients %d: need at least one client", *clients))
	case *sweeps < 0:
		fail(fmt.Errorf("-sweeps %d is negative (0 = never)", *sweeps))
	}

	v := &verdict{results: make(map[string][]byte)}
	var targets []string
	for _, a := range strings.Split(*addr, ",") {
		if a = strings.TrimRight(strings.TrimSpace(a), "/"); a != "" {
			targets = append(targets, a)
		}
	}
	if len(targets) == 0 {
		fail(fmt.Errorf("-addr %q names no targets", *addr))
	}
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	intr := cli.NotifyInterrupt(ctx, log,
		"interrupted; reporting on what has been observed so far (signal again to kill)")
	defer intr.Stop()

	// Pacing: one shared ticker; a slow daemon drops ticks rather than
	// banking a burst. rate 0 closes the throttle entirely (unpaced).
	var tick <-chan time.Time
	if *rate > 0 {
		tk := time.NewTicker(time.Duration(float64(time.Second) / *rate))
		defer tk.Stop()
		tick = tk.C
	}

	var wg sync.WaitGroup
	var n int
	var nmu sync.Mutex
	next := func() int { nmu.Lock(); defer nmu.Unlock(); n++; return n - 1 }
	wg.Add(*clients)
	for c := 0; c < *clients; c++ {
		go func() {
			defer wg.Done()
			hc := &http.Client{Timeout: 2 * time.Minute}
			for {
				if tick != nil {
					select {
					case <-tick:
					case <-intr.Context().Done():
						return
					}
				} else if intr.Context().Err() != nil {
					return
				}
				i := next()
				base := targets[i%len(targets)] // round-robin: the same mix lands on every target
				if *sweeps > 0 && i%*sweeps == *sweeps-1 {
					doc := sweepMix[faultinject.Rand(uint64(*seed)^0x5eed, uint64(i))%uint64(len(sweepMix))]
					o := oneRequest(hc, base, "/v1/sweeps", doc, *wait, *chaos)
					o.sweep = true
					v.observe(o)
					continue
				}
				doc := jobMix[faultinject.Rand(uint64(*seed), uint64(i))%uint64(len(jobMix))]
				v.observe(oneRequest(hc, base, "/v1/jobs", doc, *wait, *chaos))
			}
		}()
	}
	wg.Wait()

	rep := v.report()
	b, _ := json.MarshalIndent(rep, "", "  ")
	if *report != "" {
		if err := os.WriteFile(*report, append(b, '\n'), 0o644); err != nil {
			fail(err)
		}
	}
	fmt.Printf("%s\n", b)
	if len(rep.Corrupt) > 0 {
		fail(fmt.Errorf("CORRUPTION: %d keys served byte-diverging results: %v", len(rep.Corrupt), rep.Corrupt))
	}
	if rep.Errors > 0 {
		fail(fmt.Errorf("%d transport/protocol errors (see -v)", rep.Errors))
	}
	log.Info("clean run", "requests", rep.Requests, "done", rep.Done, "shed", rep.Shed)
}

// outcome is one request's classified result.
type outcome struct {
	latency time.Duration
	class   string // done | cached | accepted | shed | failed | error
	id      string
	result  []byte
	note    string
	sweep   bool
}

// oneRequest submits one document to path and classifies the
// response. The same verdict covers jobs and sweeps: both answer in
// the daemon's standard envelope, both are content-addressed, so
// byte-divergence means the same thing for either.
func oneRequest(hc *http.Client, base, path, doc string, wait, chaos bool) outcome {
	url := base + path
	if wait {
		url += "?wait=1"
	}
	start := time.Now()
	resp, err := hc.Post(url, "application/json", strings.NewReader(doc))
	if err != nil {
		return outcome{latency: time.Since(start), class: "error", note: err.Error()}
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	lat := time.Since(start)
	if rerr != nil {
		return outcome{latency: lat, class: "error", note: rerr.Error()}
	}
	switch resp.StatusCode {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		// Explicit shedding. The contract is a Retry-After to back off
		// by; shedding without one is a protocol error.
		if resp.Header.Get("Retry-After") == "" {
			return outcome{latency: lat, class: "error", note: fmt.Sprintf("%d without Retry-After", resp.StatusCode)}
		}
		return outcome{latency: lat, class: "shed"}
	case http.StatusInternalServerError:
		if chaos {
			// A fault-armed daemon returns deliberate 500s (e.g.
			// serve.accept:err); under -chaos they are data, not defects.
			return outcome{latency: lat, class: "faulted"}
		}
		return outcome{latency: lat, class: "error",
			note: fmt.Sprintf("status 500: %.120s", body)}
	case http.StatusOK, http.StatusAccepted:
	default:
		return outcome{latency: lat, class: "error",
			note: fmt.Sprintf("status %d: %.120s", resp.StatusCode, body)}
	}
	var jr struct {
		ID     string          `json:"id"`
		Status string          `json:"status"`
		Cached bool            `json:"cached"`
		Result json.RawMessage `json:"result"`
		Error  string          `json:"error"`
	}
	if err := json.Unmarshal(body, &jr); err != nil {
		return outcome{latency: lat, class: "error", note: fmt.Sprintf("bad response body: %v", err)}
	}
	switch jr.Status {
	case "done":
		class := "done"
		if jr.Cached {
			class = "cached"
		}
		return outcome{latency: lat, class: class, id: jr.ID, result: jr.Result}
	case "failed":
		return outcome{latency: lat, class: "failed", id: jr.ID, note: jr.Error}
	default: // queued / running on an async accept
		return outcome{latency: lat, class: "accepted", id: jr.ID}
	}
}

// observe folds one outcome into the verdict, checking every result
// against the first bytes seen for its key.
func (v *verdict) observe(o outcome) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.requests++
	if o.sweep {
		v.sweeps++
	}
	v.latencies = append(v.latencies, o.latency)
	switch o.class {
	case "done", "cached":
		if o.class == "cached" {
			v.cached++
		} else {
			v.done++
		}
		if prev, seen := v.results[o.id]; seen {
			if !bytes.Equal(prev, o.result) {
				v.corrupt = append(v.corrupt, o.id)
				log.Error("corruption: result bytes diverged", "id", o.id)
			}
		} else {
			v.results[o.id] = o.result
		}
	case "accepted":
		v.accepted++
	case "shed":
		v.shed++
	case "faulted":
		v.faulted++
	case "failed":
		v.failed++
		log.Debug("job failed", "id", o.id, "err", o.note)
	default:
		v.errors++
		log.Warn("request error", "note", o.note)
	}
}

func (v *verdict) report() Report {
	v.mu.Lock()
	defer v.mu.Unlock()
	sort.Slice(v.latencies, func(i, j int) bool { return v.latencies[i] < v.latencies[j] })
	// Nearest-rank percentiles (stats.Percentile): exact at the small
	// sample counts a short run produces — with two samples the p99 is
	// the larger latency, not the smaller, and n == 1 cannot index out
	// of range.
	ms := make([]float64, len(v.latencies))
	for i, d := range v.latencies {
		ms[i] = float64(d) / float64(time.Millisecond)
	}
	pct := func(p float64) float64 { return stats.Percentile(ms, p) }
	// Deduplicate corrupt keys for the report.
	seen := map[string]bool{}
	var corrupt []string
	for _, k := range v.corrupt {
		if !seen[k] {
			seen[k] = true
			corrupt = append(corrupt, k)
		}
	}
	sort.Strings(corrupt)
	return Report{
		Requests:  v.requests,
		Done:      v.done,
		Cached:    v.cached,
		Accepted:  v.accepted,
		Shed:      v.shed,
		Faulted:   v.faulted,
		Failed:    v.failed,
		Errors:    v.errors,
		Sweeps:    v.sweeps,
		Corrupt:   corrupt,
		UniqueIDs: len(v.results),
		P50MS:     pct(0.50),
		P99MS:     pct(0.99),
	}
}

// fail reports err through the shared logger and exits nonzero.
func fail(err error) {
	log.Error(err.Error())
	os.Exit(1)
}
