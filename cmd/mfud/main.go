// Command mfud is the simulation daemon: an HTTP/JSON job server over
// the simulator suite (internal/serve).
//
// Clients POST machine/workload specs to /v1/jobs (add ?wait=1 to
// block for the result) and poll GET /v1/jobs/{id}; /healthz and
// /readyz serve probes, /v1/stats the counters. Identical jobs are
// computed once ever: results are content-addressed (SHA-256 of the
// canonical spec) and journaled to -cache, so a restarted daemon
// serves warm results byte-identically.
//
// POST /v1/sweeps admits a whole design-space sweep (internal/dse): a
// base machine definition plus per-knob axes, expanded, pruned by the
// analytic queueing model, simulated across the worker pool, and
// cached as a Pareto-frontier report under the sweep spec's content
// key (GET /v1/sweeps/{id}). -sweep-journal makes the individual
// simulated points durable too: every sweep the daemon ever runs
// shares one content-addressed point journal, so an interrupted sweep
// resumes and overlapping sweeps share work.
//
// With -route, mfud is instead a cluster router (internal/cluster):
// it serves the same API but shards every job, sweep point, and poll
// across the -peers worker fleet by content key (rendezvous
// hashing), with health-checked membership, per-peer circuit
// breakers, hedged retries against slow peers, and crash-consistent
// reassignment of a dead worker's sweep points to the survivors.
//
// Usage examples:
//
//	mfud -addr :8080 -cache results.jsonl
//	mfud -addr :8080 -rate 50 -burst 100 -queue 256 -workers 8
//	mfud -addr :8080 -faults 'serve.accept:err:transient:times=3' -fault-seed 7
//	mfud -addr :8080 -route -peers 127.0.0.1:8081,127.0.0.1:8082,127.0.0.1:8083
//
// Overload is shed explicitly — 429 plus Retry-After from the token
// bucket and the bounded queue, 503 while draining or for a
// quarantined job — and SIGINT/SIGTERM drains gracefully: admission
// stops, in-flight jobs finish, the journal flushes, then the
// process exits. A second signal kills immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"mfup/internal/cli"
	"mfup/internal/cluster"
	"mfup/internal/faultinject"
	"mfup/internal/serve"
)

// log is the shared tool logger; main wires it up before first use.
var log = cli.NewLogger("mfud", false)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address")
		cache        = flag.String("cache", "", "result journal path; empty = memory-only (cold after restart)")
		sweepJournal = flag.String("sweep-journal", "", "design-space sweep point journal; empty = interrupted sweeps restart from scratch")
		workers      = flag.Int("workers", 0, "simulation workers; 0 = all cores")
		queue        = flag.Int("queue", 64, "job queue depth; overflow is shed with 429")
		rate         = flag.Float64("rate", 0, "admitted jobs/second; 0 = unlimited")
		burst        = flag.Int("burst", 0, "admission burst; 0 = queue depth")
		deadline     = flag.Duration("deadline", 2*time.Minute, "default per-job deadline, measured from admission")
		maxDeadline  = flag.Duration("max-deadline", 10*time.Minute, "cap on job-requested deadlines")
		retries      = flag.Int("retries", 2, "retries per transiently failed run")
		retryBackoff = flag.Duration("retry-backoff", 0, "base retry backoff; 0 = the runner default")
		retrySeed    = flag.Int64("retry-seed", 1, "seed for deterministic retry jitter")
		breakAfter   = flag.Int("breaker", 3, "consecutive permanent failures before a job is quarantined; -1 = off")
		breakFor     = flag.Duration("breaker-cooldown", 30*time.Second, "quarantine length")
		drainFor     = flag.Duration("drain-timeout", time.Minute, "grace for in-flight jobs on shutdown")
		faults       = flag.String("faults", "", "fault-injection plan, e.g. 'serve.accept:err:times=3' (chaos testing)")
		faultSeed    = flag.Int64("fault-seed", 1, "seed for fault placement")
		verbose      = flag.Bool("v", false, "verbose logging (debug level) on standard error")

		route         = flag.Bool("route", false, "run as a cluster router over -peers instead of a worker")
		peers         = flag.String("peers", "", "comma-separated worker base URLs (router mode)")
		probeEvery    = flag.Duration("probe-interval", time.Second, "router: peer /readyz probe interval")
		downAfter     = flag.Int("down-after", 3, "router: consecutive probe failures before a peer leaves the ranking")
		hedgeAfter    = flag.Duration("hedge-after", 2*time.Second, "router: dispatch a hedge to the next peer after this long without an answer")
		maxRetryAfter = flag.Duration("max-retry-after", time.Minute, "router: cap on the Retry-After forwarded when the whole fleet sheds")
	)
	flag.Parse()
	log = cli.NewLogger("mfud", *verbose)
	seedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "fault-seed" {
			seedSet = true
		}
	})
	switch {
	case *rate < 0:
		fail(fmt.Errorf("-rate %g is negative (0 = unlimited)", *rate))
	case *burst < 0:
		fail(fmt.Errorf("-burst %d is negative (0 = queue depth)", *burst))
	case *queue < 1:
		fail(fmt.Errorf("-queue %d: the job queue needs at least one slot", *queue))
	case *retries < 0:
		fail(fmt.Errorf("-retries %d is negative (0 = no retrying)", *retries))
	case *deadline <= 0:
		fail(fmt.Errorf("-deadline %v: jobs need a positive default deadline", *deadline))
	case *drainFor <= 0:
		fail(fmt.Errorf("-drain-timeout %v: shutdown needs a positive grace period", *drainFor))
	case seedSet && *faults == "":
		fail(fmt.Errorf("-fault-seed needs -faults"))
	case *route && *peers == "":
		fail(fmt.Errorf("-route needs -peers"))
	case !*route && *peers != "":
		fail(fmt.Errorf("-peers needs -route"))
	}

	if *faults != "" {
		plan, err := faultinject.ParsePlan(*faults, *faultSeed)
		if err != nil {
			fail(err)
		}
		faultinject.Activate(faultinject.New(plan))
		defer faultinject.Deactivate()
		log.Warn("fault injection active; failures below may be deliberate", "plan", *faults, "seed", *faultSeed)
	}

	threshold := *breakAfter
	if threshold < 0 {
		threshold = -1 // serve: negative disables, 0 means default
	}
	if *route {
		runRouter(*addr, *peers, threshold, *breakFor, *probeEvery, *downAfter, *hedgeAfter, *maxRetryAfter)
		return
	}
	s, err := serve.New(serve.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		Rate:             *rate,
		Burst:            *burst,
		DefaultTimeout:   *deadline,
		MaxTimeout:       *maxDeadline,
		Retries:          *retries,
		RetryBackoff:     *retryBackoff,
		RetrySeed:        *retrySeed,
		BreakerThreshold: threshold,
		BreakerCooldown:  *breakFor,
		CachePath:        *cache,
		SweepJournalPath: *sweepJournal,
		Log:              log,
	})
	if err != nil {
		fail(err)
	}

	hs := &http.Server{Addr: *addr, Handler: s.Handler()}

	// First SIGINT/SIGTERM starts the drain; a second one gets the
	// default kill behavior (cli.NotifyInterrupt re-arms it).
	intr := cli.NotifyInterrupt(context.Background(), log,
		"interrupted; draining: finishing in-flight jobs and flushing the cache journal (signal again to kill)")
	defer intr.Stop()

	drained := make(chan error, 1)
	go func() {
		<-intr.Context().Done()
		dctx, cancel := context.WithTimeout(context.Background(), *drainFor)
		defer cancel()
		derr := s.Drain(dctx)
		// Polling clients keep getting responses during the drain; only
		// once the journal is safe does the listener itself shut down.
		sctx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel2()
		hs.Shutdown(sctx)
		drained <- derr
	}()

	log.Info("listening", "addr", *addr)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fail(err)
	}
	if err := <-drained; err != nil {
		fail(err)
	}
}

// runRouter is the -route main: the same listen/serve/drain shape as
// the worker, but the engine is internal/cluster and there is
// nothing to flush on the way out — the router is stateless by
// design (results live in the workers' journals).
func runRouter(addr, peers string, breakThreshold int, breakFor, probeEvery time.Duration, downAfter int, hedgeAfter, maxRetryAfter time.Duration) {
	rt, err := cluster.New(cluster.Config{
		Peers:            strings.Split(peers, ","),
		ProbeInterval:    probeEvery,
		DownAfter:        downAfter,
		HedgeAfter:       hedgeAfter,
		MaxRetryAfter:    maxRetryAfter,
		BreakerThreshold: breakThreshold,
		BreakerCooldown:  breakFor,
		Log:              log,
	})
	if err != nil {
		fail(err)
	}

	hs := &http.Server{Addr: addr, Handler: rt.Handler()}
	intr := cli.NotifyInterrupt(context.Background(), log,
		"interrupted; shutting the router down (signal again to kill)")
	defer intr.Stop()

	stopped := make(chan struct{})
	go func() {
		<-intr.Context().Done()
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(sctx)
		rt.Close()
		close(stopped)
	}()

	log.Info("listening", "addr", addr, "mode", "router")
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fail(err)
	}
	<-stopped
}

// fail reports err through the shared logger and exits nonzero.
func fail(err error) {
	log.Error(err.Error())
	os.Exit(1)
}
