// Command mfutables regenerates the tables of Pleszkun & Sohi (1988).
//
// Usage:
//
//	mfutables                      # all eight tables
//	mfutables -table 7             # one table
//	mfutables -parallel 4          # four worker goroutines (default: all cores)
//	mfutables -metrics stalls.json # also write per-cell stall breakdowns
//
// Each table is produced by running the full set of simulations
// behind it (all loops, all machine variations), so the output is the
// reproduction of the paper's evaluation. The simulations fan out
// across a worker pool; the output is bit-identical at any -parallel
// value.
//
// -scale n regenerates every kernel at loop length n instead of the
// paper defaults; kernels that cannot reach n (memory-layout limits,
// no steady state to extend analytically) are clamped to their
// largest feasible length, with a note per clamped kernel on standard
// error. -extrapolate wraps every simulated cell in the steady-state
// extrapolation engine (core.Extrapolate): table values are
// bit-identical, but the repetitive middle of each loop is closed
// analytically, which makes huge -scale values affordable.
//
// -cpuprofile and -memprofile write pprof profiles of the run, for
// use with `go tool pprof`.
//
// -metrics FILE attaches a stall-attribution probe to every simulated
// cell and writes each cell's per-reason stall breakdown to FILE —
// JSON by default, CSV when FILE ends in ".csv". The probe observes
// without perturbing: table values are identical with and without it.
// The analytic Table 2 runs no machines and contributes no metrics.
//
// -trace-dir DIR attaches a per-instruction event recorder to every
// simulated cell and writes one Chrome trace-event JSON file per cell
// into DIR (created if absent), named table<N>_<row>_<column>.json —
// loadable directly in ui.perfetto.dev. Traces are written and
// released table by table, so peak memory stays bounded;
// -trace-events caps the events kept per loop run (default 4096,
// overflow counted, surfaced in -metrics as events_dropped). Like the
// probe, the recorder observes without perturbing.
//
// Cells that fail (a panic, an exhausted -maxcycles budget, a
// triggered -stallcycles watchdog, or a -timeout deadline) render as
// ERR; the rest of the table is still produced, a per-cell diagnostic
// summary goes to standard error, and the exit status is 1.
//
// -retries N re-attempts cells that fail transiently (a -timeout
// deadline, or an injected transient fault) up to N times, with
// exponential backoff from -retry-backoff (default 100ms) and
// deterministic jitter seeded by -fault-seed.
//
// -checkpoint FILE journals every completed cell to FILE (JSONL,
// append-only, crash-safe); a rerun against the same journal serves
// journaled cells without simulation, so an interrupted sweep resumes
// where it stopped and still renders byte-identical tables. SIGINT or
// SIGTERM cancels cleanly: in-flight cells finish, the journal is
// flushed, and a fault summary is printed (a second signal kills).
//
// -faults PLAN arms the deterministic fault-injection layer
// (internal/faultinject) for chaos testing: injected panics, stalls,
// transient errors, and export-write failures, placed by -fault-seed.
//
// -sweep FILE leaves the paper's tables behind entirely and runs a
// design-space sweep from the JSON spec in FILE (see internal/dse): a
// base machine definition plus per-knob axes, expanded into every
// combination, pruned by the analytic queueing model, simulated, and
// reported as a Pareto frontier of issue rate against hardware cost.
// -format selects the report form (text, csv, json), -parallel sizes
// the worker pool, -maxcycles/-stallcycles bound each point, and
// -checkpoint becomes the sweep's resume journal (content-addressed
// per point, so it needs no signature). The spec's own scale and
// extrapolate fields govern the workload, so the table-oriented
// -scale/-extrapolate flags conflict, as do the per-cell observers
// (-metrics, -trace-dir) and knobs the sweep runner does not thread
// (-timeout, -retries).
//
// Diagnostics go through a shared logger: -v lowers its level to
// debug (per-table wall-clock timings, trace-export notes), and
// MFU_LOG (debug | info | warn | error) overrides it.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"mfup/internal/atomicio"
	"mfup/internal/cli"
	"mfup/internal/core"
	"mfup/internal/dse"
	"mfup/internal/faultinject"
	"mfup/internal/tables"
)

func main() {
	os.Exit(run())
}

// run carries the real main so that deferred profile writers fire
// before the process exits.
func run() int {
	table := flag.Int("table", 0, "table number 1-8; 0 regenerates all")
	supplement := flag.Bool("supplement", false, "also print the section 3.3 dependency-resolution supplement")
	scale := flag.Int("scale", 0, "loop length for every kernel (0 = paper defaults); kernels that cannot reach it are clamped and noted")
	extrap := flag.Bool("extrapolate", false, "close each loop's steady-state middle analytically instead of simulating every iteration")
	format := flag.String("format", "text", "output format: text | csv | json")
	parallel := flag.Int("parallel", 0, "worker goroutines for the simulations; 0 = all cores")
	maxCycles := flag.Int64("maxcycles", 0, "per-cell simulated-cycle budget; 0 = unlimited")
	stallCycles := flag.Int64("stallcycles", 0, "cycles without forward progress before a cell is declared stalled; 0 = off")
	timeout := flag.Duration("timeout", 0, "per-cell wall-clock deadline (e.g. 30s); 0 = none")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	metrics := flag.String("metrics", "", "write per-cell stall breakdowns to this file (JSON, or CSV with a .csv suffix)")
	traceDir := flag.String("trace-dir", "", "write one Chrome trace-event JSON file per cell into this directory")
	traceEvents := flag.Int("trace-events", 0, "events kept per loop run for -trace-dir; 0 = 4096, overflow is dropped and counted")
	retries := flag.Int("retries", 0, "per-cell retries of transient failures (deadline, injected-transient); 0 = off")
	retryBackoff := flag.Duration("retry-backoff", 0, "base retry backoff, doubled per attempt with deterministic jitter; 0 = 100ms")
	checkpointPath := flag.String("checkpoint", "", "JSONL journal of completed cells; an interrupted run resumes from it without recomputation")
	sweepPath := flag.String("sweep", "", "run the design-space sweep defined by this JSON spec instead of the paper tables")
	faults := flag.String("faults", "", "fault-injection plan, e.g. 'sim:panic:at=1000,write.metrics:werr' (chaos testing)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for fault placement and retry jitter")
	verbose := flag.Bool("v", false, "verbose logging (debug level) on standard error")
	flag.Parse()
	log := cli.NewLogger("mfutables", *verbose)
	seedSet, scaleSet := false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "fault-seed":
			seedSet = true
		case "scale":
			scaleSet = true
		}
	})

	fail := func(err error) int {
		log.Error(err.Error())
		return 1
	}

	// Validate the flag set before any simulation runs, so a bad
	// combination fails immediately instead of after minutes of work
	// (or, for -format, after half the output is already printed).
	switch {
	case *format != "text" && *format != "csv" && *format != "json":
		return fail(fmt.Errorf("unknown format %q (want text, csv, or json)", *format))
	case *table < 0 || *table > 8:
		return fail(fmt.Errorf("-table %d out of range (the paper has tables 1-8; 0 = all)", *table))
	case *supplement && *table != 0:
		return fail(fmt.Errorf("-supplement conflicts with -table %d: the supplement only prints with the full set (-table 0)", *table))
	case *parallel < 0:
		return fail(fmt.Errorf("-parallel %d is negative (0 = all cores)", *parallel))
	case *maxCycles < 0:
		return fail(fmt.Errorf("-maxcycles %d is negative (0 = unlimited)", *maxCycles))
	case *stallCycles < 0:
		return fail(fmt.Errorf("-stallcycles %d is negative (0 = off)", *stallCycles))
	case *timeout < 0:
		return fail(fmt.Errorf("-timeout %v is negative (0 = none)", *timeout))
	case *traceEvents < 0:
		return fail(fmt.Errorf("-trace-events %d is negative (0 = default cap)", *traceEvents))
	case *traceEvents > 0 && *traceDir == "":
		return fail(fmt.Errorf("-trace-events needs -trace-dir"))
	case *retries < 0:
		return fail(fmt.Errorf("-retries %d is negative (0 = off)", *retries))
	case *retryBackoff < 0:
		return fail(fmt.Errorf("-retry-backoff %v is negative", *retryBackoff))
	case *retryBackoff != 0 && *retries == 0:
		return fail(fmt.Errorf("-retry-backoff needs -retries"))
	case *checkpointPath != "" && *metrics != "":
		return fail(fmt.Errorf("-checkpoint conflicts with -metrics: cells served from the journal are not re-simulated and would hole the metrics"))
	case *checkpointPath != "" && *traceDir != "":
		return fail(fmt.Errorf("-checkpoint conflicts with -trace-dir: cells served from the journal are not re-simulated and record no events"))
	case seedSet && *faults == "":
		return fail(fmt.Errorf("-fault-seed needs -faults"))
	case scaleSet && *scale < 1:
		return fail(fmt.Errorf("-scale %d: loop length must be at least 1", *scale))
	case *sweepPath != "" && *table != 0:
		return fail(fmt.Errorf("-sweep conflicts with -table: a sweep runs its own machine grid, not the paper's"))
	case *sweepPath != "" && *supplement:
		return fail(fmt.Errorf("-sweep conflicts with -supplement"))
	case *sweepPath != "" && (scaleSet || *extrap):
		return fail(fmt.Errorf("-sweep conflicts with -scale/-extrapolate: the sweep spec's own scale and extrapolate fields govern its workload"))
	case *sweepPath != "" && (*metrics != "" || *traceDir != ""):
		return fail(fmt.Errorf("-sweep conflicts with -metrics/-trace-dir: sweep points carry no per-cell observers"))
	case *sweepPath != "" && (*timeout != 0 || *retries != 0):
		return fail(fmt.Errorf("-sweep conflicts with -timeout/-retries: use -maxcycles/-stallcycles to bound sweep points"))
	}

	var injector *faultinject.Injector
	if *faults != "" {
		plan, err := faultinject.ParsePlan(*faults, *faultSeed)
		if err != nil {
			return fail(err)
		}
		injector = faultinject.New(plan)
		faultinject.Activate(injector)
		defer faultinject.Deactivate()
		log.Warn("fault injection active; failures below may be deliberate", "plan", *faults, "seed", *faultSeed)
	}

	tables.SetParallel(*parallel)
	tables.SetCollectMetrics(*metrics != "")
	tables.SetCollectTraces(*traceDir != "")
	tables.SetTraceEventCap(*traceEvents)
	tables.SetLimits(core.Limits{MaxCycles: *maxCycles, StallCycles: *stallCycles})
	if *timeout > 0 {
		tables.SetCellTimeout(*timeout)
	}
	tables.SetRetry(*retries, *retryBackoff, *faultSeed)
	tables.SetScale(*scale)
	tables.SetExtrapolate(*extrap)

	// SIGINT/SIGTERM cancels the generation context: in-flight cells
	// finish, unstarted cells are skipped, completed cells are already
	// journaled, and the run exits with a resume hint. A second signal
	// gets the default kill behavior.
	intr := cli.NotifyInterrupt(context.Background(), log,
		"interrupted; finishing in-flight cells and flushing the checkpoint (signal again to kill)")
	defer intr.Stop()
	ctx := intr.Context()
	tables.SetContext(ctx)

	var ckpt *tables.Checkpoint
	if *checkpointPath != "" && *sweepPath == "" {
		var err error
		// The signature binds the journal to this run's scale and machine
		// grid; SetScale has already run, so it is final here.
		ckpt, err = tables.OpenCheckpoint(*checkpointPath, tables.JournalSignature())
		if err != nil {
			return fail(err)
		}
		tables.SetCheckpoint(ckpt)
		if n := ckpt.Loaded(); n > 0 {
			log.Info("resuming from checkpoint", "path", *checkpointPath, "cells", n)
		}
	}

	if *traceDir != "" {
		// Probe the directory for writability up front: a sweep takes
		// minutes, and discovering an unwritable destination only at
		// export time would waste all of it.
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			return fail(err)
		}
		probeFile := filepath.Join(*traceDir, ".mfutables-write-check")
		if err := os.WriteFile(probeFile, nil, 0o644); err != nil {
			return fail(fmt.Errorf("trace dir %s is not writable: %w", *traceDir, err))
		}
		os.Remove(probeFile)
	}

	if *cpuprofile != "" {
		// The CPU profile streams for the whole run; the atomic file
		// publishes it (rename into place) only after StopCPUProfile
		// has flushed, so an interrupted run leaves no torn profile.
		f, err := atomicio.Create("write.profile", *cpuprofile)
		if err != nil {
			return fail(err)
		}
		defer f.Abort()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Commit(); err != nil {
				fmt.Fprintln(os.Stderr, "mfutables:", err)
			}
		}()
	}
	if *memprofile != "" {
		f, err := atomicio.Create("write.profile", *memprofile)
		if err != nil {
			return fail(err)
		}
		defer func() {
			runtime.GC()
			err := pprof.WriteHeapProfile(f)
			if err == nil {
				err = f.Commit()
			} else {
				f.Abort()
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "mfutables:", err)
			}
		}()
	}

	if *sweepPath != "" {
		return runSweep(ctx, log, sweepArgs{
			specPath:    *sweepPath,
			journalPath: *checkpointPath,
			format:      *format,
			parallel:    *parallel,
			limits:      core.Limits{MaxCycles: *maxCycles, StallCycles: *stallCycles},
			injector:    injector,
			intr:        intr,
		})
	}

	cellsFailed := false
	var emitted []*tables.Table
	emit := func(t *tables.Table) error {
		emitted = append(emitted, t)
		if *traceDir != "" {
			// Export and release per table, so a full sweep never holds
			// more than one table's event storage at once.
			n, err := tables.WriteTraces(*traceDir, t)
			if err != nil {
				return err
			}
			tables.ReleaseTraces(t)
			log.Debug("traces written", "table", t.Number, "files", n)
		}
		switch *format {
		case "text":
			fmt.Println(t.Render())
		case "csv":
			fmt.Print(t.CSV())
		case "json":
			b, err := t.MarshalJSON()
			if err != nil {
				return err
			}
			fmt.Println(string(b))
		}
		if s := t.ErrorSummary(); s != "" {
			cellsFailed = true
			fmt.Fprint(os.Stderr, "mfutables: ", s)
		}
		return nil
	}
	generate := func(get func() (*tables.Table, error)) error {
		start := time.Now()
		t, err := get()
		if err != nil {
			return err
		}
		log.Debug("table generated", "table", t.Number, "wall", time.Since(start).Round(time.Millisecond))
		return emit(t)
	}
	done := func() int {
		code := 0
		if scaleSet {
			for _, note := range tables.ScaleNotes() {
				log.Warn(note)
			}
		}
		if *metrics != "" {
			if err := writeMetrics(*metrics, emitted); err != nil {
				return fail(err)
			}
		}
		// End-of-run fault summary: what the injector did, what the
		// retry layer absorbed, what the journal holds.
		var totalRetries int64
		for _, t := range emitted {
			totalRetries += t.Retries
		}
		if totalRetries > 0 {
			log.Info("transient failures retried", "retries", totalRetries)
		}
		if injector != nil {
			for _, line := range injector.Summary() {
				fmt.Fprintln(os.Stderr, "mfutables: faultinject:", line)
			}
		}
		if ckpt != nil {
			log.Info("checkpoint", "loaded", ckpt.Loaded(), "saved", ckpt.Saved())
			if err := ckpt.Close(); err != nil {
				log.Error(err.Error())
				code = 1
			}
		}
		if intr.Interrupted() {
			if *checkpointPath != "" {
				log.Warn("run interrupted; rerun with the same -checkpoint to resume without recomputation")
			} else {
				log.Warn("run interrupted; completed work is lost without -checkpoint")
			}
			code = 1
		}
		if cellsFailed {
			log.Warn("some cells failed; their values render as ERR")
			code = 1
		}
		return code
	}

	if *table == 0 {
		for n := 1; n <= 8; n++ {
			n := n
			if err := generate(func() (*tables.Table, error) { return tables.Get(n) }); err != nil {
				return fail(err)
			}
			if ctx.Err() != nil {
				return done() // interrupted: stop generating, summarize
			}
		}
		if *supplement {
			if err := generate(func() (*tables.Table, error) { return tables.SectionThreeThree(), nil }); err != nil {
				return fail(err)
			}
		}
		return done()
	}
	if err := generate(func() (*tables.Table, error) { return tables.Get(*table) }); err != nil {
		return fail(err)
	}
	return done()
}

// sweepArgs carries the flag subset the sweep mode consumes.
type sweepArgs struct {
	specPath    string
	journalPath string
	format      string
	parallel    int
	limits      core.Limits
	injector    *faultinject.Injector
	intr        *cli.Interrupt
}

// runSweep is -sweep mode: parse the spec, run the design-space sweep
// through internal/dse, and report the Pareto frontier in the
// requested format. -checkpoint, when given, is the sweep's resume
// journal.
func runSweep(ctx context.Context, log *slog.Logger, a sweepArgs) int {
	fail := func(err error) int {
		log.Error(err.Error())
		return 1
	}
	spec, err := dse.ParseFile(a.specPath)
	if err != nil {
		return fail(err)
	}
	var j *dse.Journal
	if a.journalPath != "" {
		j, err = dse.OpenJournal(a.journalPath)
		if err != nil {
			return fail(err)
		}
		if n := j.Loaded(); n > 0 {
			log.Info("resuming from sweep journal", "path", a.journalPath, "points", n)
		}
	}
	start := time.Now()
	rep, err := dse.Run(ctx, spec, dse.Options{Parallel: a.parallel, Limits: a.limits, Journal: j})
	if err != nil {
		if j != nil {
			j.Close()
		}
		return fail(err)
	}
	log.Debug("sweep complete", "points", rep.Deduped, "simulated", rep.Simulated,
		"wall", time.Since(start).Round(time.Millisecond))

	code := 0
	switch a.format {
	case "text":
		fmt.Print(rep.Render())
	case "csv":
		out, err := rep.CSV()
		if err != nil {
			return fail(err)
		}
		fmt.Print(out)
	case "json":
		b, err := rep.JSON()
		if err != nil {
			return fail(err)
		}
		fmt.Println(string(b))
	}

	if a.injector != nil {
		for _, line := range a.injector.Summary() {
			fmt.Fprintln(os.Stderr, "mfutables: faultinject:", line)
		}
	}
	if j != nil {
		log.Info("sweep journal", "loaded", j.Loaded(), "saved", j.Saved())
		if err := j.Close(); err != nil {
			log.Error(err.Error())
			code = 1
		}
	}
	if a.intr.Interrupted() {
		if a.journalPath != "" {
			log.Warn("sweep interrupted; rerun with the same -checkpoint to resume without recomputation")
		} else {
			log.Warn("sweep interrupted; completed points are lost without -checkpoint")
		}
		code = 1
	}
	if rep.Failed > 0 {
		log.Warn("some sweep points failed; see their err fields", "failed", rep.Failed)
		code = 1
	}
	return code
}

// writeMetrics encodes the stall breakdowns of every emitted table to
// path: CSV when the filename says so, JSON otherwise.
func writeMetrics(path string, ts []*tables.Table) error {
	var data []byte
	if strings.HasSuffix(strings.ToLower(path), ".csv") {
		data = []byte(tables.MetricsCSV(ts))
	} else {
		b, err := tables.MetricsJSON(ts)
		if err != nil {
			return err
		}
		data = append(b, '\n')
	}
	return atomicio.WriteFile("write.metrics", path, data)
}
