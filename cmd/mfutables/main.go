// Command mfutables regenerates the tables of Pleszkun & Sohi (1988).
//
// Usage:
//
//	mfutables            # all eight tables
//	mfutables -table 7   # one table
//
// Each table is produced by running the full set of simulations
// behind it (all loops, all machine variations), so the output is the
// reproduction of the paper's evaluation.
package main

import (
	"flag"
	"fmt"
	"os"

	"mfup/internal/tables"
)

func main() {
	table := flag.Int("table", 0, "table number 1-8; 0 regenerates all")
	supplement := flag.Bool("supplement", false, "also print the section 3.3 dependency-resolution supplement")
	format := flag.String("format", "text", "output format: text | csv | json")
	flag.Parse()

	emit := func(t *tables.Table) {
		switch *format {
		case "text":
			fmt.Println(t.Render())
		case "csv":
			fmt.Print(t.CSV())
		case "json":
			b, err := t.MarshalJSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "mfutables:", err)
				os.Exit(1)
			}
			fmt.Println(string(b))
		default:
			fmt.Fprintf(os.Stderr, "mfutables: unknown format %q\n", *format)
			os.Exit(1)
		}
	}

	if *table == 0 {
		for _, t := range tables.All() {
			emit(t)
		}
		if *supplement {
			emit(tables.SectionThreeThree())
		}
		return
	}
	t, err := tables.Get(*table)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mfutables:", err)
		os.Exit(1)
	}
	emit(t)
}
