// Command mfutables regenerates the tables of Pleszkun & Sohi (1988).
//
// Usage:
//
//	mfutables                # all eight tables
//	mfutables -table 7       # one table
//	mfutables -parallel 4    # four worker goroutines (default: all cores)
//
// Each table is produced by running the full set of simulations
// behind it (all loops, all machine variations), so the output is the
// reproduction of the paper's evaluation. The simulations fan out
// across a worker pool; the output is bit-identical at any -parallel
// value.
//
// -cpuprofile and -memprofile write pprof profiles of the run, for
// use with `go tool pprof`.
//
// Cells that fail (a panic, an exhausted -maxcycles budget, a
// triggered -stallcycles watchdog, or a -timeout deadline) render as
// ERR; the rest of the table is still produced, a per-cell diagnostic
// summary goes to standard error, and the exit status is 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"mfup/internal/core"
	"mfup/internal/tables"
)

func main() {
	os.Exit(run())
}

// run carries the real main so that deferred profile writers fire
// before the process exits.
func run() int {
	table := flag.Int("table", 0, "table number 1-8; 0 regenerates all")
	supplement := flag.Bool("supplement", false, "also print the section 3.3 dependency-resolution supplement")
	format := flag.String("format", "text", "output format: text | csv | json")
	parallel := flag.Int("parallel", 0, "worker goroutines for the simulations; 0 = all cores")
	maxCycles := flag.Int64("maxcycles", 0, "per-cell simulated-cycle budget; 0 = unlimited")
	stallCycles := flag.Int64("stallcycles", 0, "cycles without forward progress before a cell is declared stalled; 0 = off")
	timeout := flag.Duration("timeout", 0, "per-cell wall-clock deadline (e.g. 30s); 0 = none")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "mfutables:", err)
		return 1
	}

	tables.SetParallel(*parallel)
	tables.SetLimits(core.Limits{MaxCycles: *maxCycles, StallCycles: *stallCycles})
	if *timeout > 0 {
		tables.SetCellTimeout(*timeout)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fail(err)
		}
		defer func() {
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mfutables:", err)
			}
			f.Close()
		}()
	}

	cellsFailed := false
	emit := func(t *tables.Table) error {
		switch *format {
		case "text":
			fmt.Println(t.Render())
		case "csv":
			fmt.Print(t.CSV())
		case "json":
			b, err := t.MarshalJSON()
			if err != nil {
				return err
			}
			fmt.Println(string(b))
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
		if s := t.ErrorSummary(); s != "" {
			cellsFailed = true
			fmt.Fprint(os.Stderr, "mfutables: ", s)
		}
		return nil
	}
	done := func() int {
		if cellsFailed {
			fmt.Fprintln(os.Stderr, "mfutables: some cells failed; their values render as ERR")
			return 1
		}
		return 0
	}

	if *table == 0 {
		for _, t := range tables.All() {
			if err := emit(t); err != nil {
				return fail(err)
			}
		}
		if *supplement {
			if err := emit(tables.SectionThreeThree()); err != nil {
				return fail(err)
			}
		}
		return done()
	}
	t, err := tables.Get(*table)
	if err != nil {
		return fail(err)
	}
	if err := emit(t); err != nil {
		return fail(err)
	}
	return done()
}
