// Command mfutables regenerates the tables of Pleszkun & Sohi (1988).
//
// Usage:
//
//	mfutables                      # all eight tables
//	mfutables -table 7             # one table
//	mfutables -parallel 4          # four worker goroutines (default: all cores)
//	mfutables -metrics stalls.json # also write per-cell stall breakdowns
//
// Each table is produced by running the full set of simulations
// behind it (all loops, all machine variations), so the output is the
// reproduction of the paper's evaluation. The simulations fan out
// across a worker pool; the output is bit-identical at any -parallel
// value.
//
// -cpuprofile and -memprofile write pprof profiles of the run, for
// use with `go tool pprof`.
//
// -metrics FILE attaches a stall-attribution probe to every simulated
// cell and writes each cell's per-reason stall breakdown to FILE —
// JSON by default, CSV when FILE ends in ".csv". The probe observes
// without perturbing: table values are identical with and without it.
// The analytic Table 2 runs no machines and contributes no metrics.
//
// Cells that fail (a panic, an exhausted -maxcycles budget, a
// triggered -stallcycles watchdog, or a -timeout deadline) render as
// ERR; the rest of the table is still produced, a per-cell diagnostic
// summary goes to standard error, and the exit status is 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"mfup/internal/core"
	"mfup/internal/tables"
)

func main() {
	os.Exit(run())
}

// run carries the real main so that deferred profile writers fire
// before the process exits.
func run() int {
	table := flag.Int("table", 0, "table number 1-8; 0 regenerates all")
	supplement := flag.Bool("supplement", false, "also print the section 3.3 dependency-resolution supplement")
	format := flag.String("format", "text", "output format: text | csv | json")
	parallel := flag.Int("parallel", 0, "worker goroutines for the simulations; 0 = all cores")
	maxCycles := flag.Int64("maxcycles", 0, "per-cell simulated-cycle budget; 0 = unlimited")
	stallCycles := flag.Int64("stallcycles", 0, "cycles without forward progress before a cell is declared stalled; 0 = off")
	timeout := flag.Duration("timeout", 0, "per-cell wall-clock deadline (e.g. 30s); 0 = none")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	metrics := flag.String("metrics", "", "write per-cell stall breakdowns to this file (JSON, or CSV with a .csv suffix)")
	flag.Parse()

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "mfutables:", err)
		return 1
	}

	// Validate the flag set before any simulation runs, so a bad
	// combination fails immediately instead of after minutes of work
	// (or, for -format, after half the output is already printed).
	switch {
	case *format != "text" && *format != "csv" && *format != "json":
		return fail(fmt.Errorf("unknown format %q (want text, csv, or json)", *format))
	case *table < 0 || *table > 8:
		return fail(fmt.Errorf("-table %d out of range (the paper has tables 1-8; 0 = all)", *table))
	case *supplement && *table != 0:
		return fail(fmt.Errorf("-supplement conflicts with -table %d: the supplement only prints with the full set (-table 0)", *table))
	case *parallel < 0:
		return fail(fmt.Errorf("-parallel %d is negative (0 = all cores)", *parallel))
	case *maxCycles < 0:
		return fail(fmt.Errorf("-maxcycles %d is negative (0 = unlimited)", *maxCycles))
	case *stallCycles < 0:
		return fail(fmt.Errorf("-stallcycles %d is negative (0 = off)", *stallCycles))
	case *timeout < 0:
		return fail(fmt.Errorf("-timeout %v is negative (0 = none)", *timeout))
	}

	tables.SetParallel(*parallel)
	tables.SetCollectMetrics(*metrics != "")
	tables.SetLimits(core.Limits{MaxCycles: *maxCycles, StallCycles: *stallCycles})
	if *timeout > 0 {
		tables.SetCellTimeout(*timeout)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fail(err)
		}
		defer func() {
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mfutables:", err)
			}
			f.Close()
		}()
	}

	cellsFailed := false
	var emitted []*tables.Table
	emit := func(t *tables.Table) error {
		emitted = append(emitted, t)
		switch *format {
		case "text":
			fmt.Println(t.Render())
		case "csv":
			fmt.Print(t.CSV())
		case "json":
			b, err := t.MarshalJSON()
			if err != nil {
				return err
			}
			fmt.Println(string(b))
		}
		if s := t.ErrorSummary(); s != "" {
			cellsFailed = true
			fmt.Fprint(os.Stderr, "mfutables: ", s)
		}
		return nil
	}
	done := func() int {
		if *metrics != "" {
			if err := writeMetrics(*metrics, emitted); err != nil {
				return fail(err)
			}
		}
		if cellsFailed {
			fmt.Fprintln(os.Stderr, "mfutables: some cells failed; their values render as ERR")
			return 1
		}
		return 0
	}

	if *table == 0 {
		for _, t := range tables.All() {
			if err := emit(t); err != nil {
				return fail(err)
			}
		}
		if *supplement {
			if err := emit(tables.SectionThreeThree()); err != nil {
				return fail(err)
			}
		}
		return done()
	}
	t, err := tables.Get(*table)
	if err != nil {
		return fail(err)
	}
	if err := emit(t); err != nil {
		return fail(err)
	}
	return done()
}

// writeMetrics encodes the stall breakdowns of every emitted table to
// path: CSV when the filename says so, JSON otherwise.
func writeMetrics(path string, ts []*tables.Table) error {
	var data []byte
	if strings.HasSuffix(strings.ToLower(path), ".csv") {
		data = []byte(tables.MetricsCSV(ts))
	} else {
		b, err := tables.MetricsJSON(ts)
		if err != nil {
			return err
		}
		data = append(b, '\n')
	}
	return os.WriteFile(path, data, 0o644)
}
