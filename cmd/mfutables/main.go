// Command mfutables regenerates the tables of Pleszkun & Sohi (1988).
//
// Usage:
//
//	mfutables                      # all eight tables
//	mfutables -table 7             # one table
//	mfutables -parallel 4          # four worker goroutines (default: all cores)
//	mfutables -metrics stalls.json # also write per-cell stall breakdowns
//
// Each table is produced by running the full set of simulations
// behind it (all loops, all machine variations), so the output is the
// reproduction of the paper's evaluation. The simulations fan out
// across a worker pool; the output is bit-identical at any -parallel
// value.
//
// -cpuprofile and -memprofile write pprof profiles of the run, for
// use with `go tool pprof`.
//
// -metrics FILE attaches a stall-attribution probe to every simulated
// cell and writes each cell's per-reason stall breakdown to FILE —
// JSON by default, CSV when FILE ends in ".csv". The probe observes
// without perturbing: table values are identical with and without it.
// The analytic Table 2 runs no machines and contributes no metrics.
//
// -trace-dir DIR attaches a per-instruction event recorder to every
// simulated cell and writes one Chrome trace-event JSON file per cell
// into DIR (created if absent), named table<N>_<row>_<column>.json —
// loadable directly in ui.perfetto.dev. Traces are written and
// released table by table, so peak memory stays bounded;
// -trace-events caps the events kept per loop run (default 4096,
// overflow counted, surfaced in -metrics as events_dropped). Like the
// probe, the recorder observes without perturbing.
//
// Cells that fail (a panic, an exhausted -maxcycles budget, a
// triggered -stallcycles watchdog, or a -timeout deadline) render as
// ERR; the rest of the table is still produced, a per-cell diagnostic
// summary goes to standard error, and the exit status is 1.
//
// Diagnostics go through a shared logger: -v lowers its level to
// debug (per-table wall-clock timings, trace-export notes), and
// MFU_LOG (debug | info | warn | error) overrides it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"mfup/internal/cli"
	"mfup/internal/core"
	"mfup/internal/tables"
)

func main() {
	os.Exit(run())
}

// run carries the real main so that deferred profile writers fire
// before the process exits.
func run() int {
	table := flag.Int("table", 0, "table number 1-8; 0 regenerates all")
	supplement := flag.Bool("supplement", false, "also print the section 3.3 dependency-resolution supplement")
	format := flag.String("format", "text", "output format: text | csv | json")
	parallel := flag.Int("parallel", 0, "worker goroutines for the simulations; 0 = all cores")
	maxCycles := flag.Int64("maxcycles", 0, "per-cell simulated-cycle budget; 0 = unlimited")
	stallCycles := flag.Int64("stallcycles", 0, "cycles without forward progress before a cell is declared stalled; 0 = off")
	timeout := flag.Duration("timeout", 0, "per-cell wall-clock deadline (e.g. 30s); 0 = none")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	metrics := flag.String("metrics", "", "write per-cell stall breakdowns to this file (JSON, or CSV with a .csv suffix)")
	traceDir := flag.String("trace-dir", "", "write one Chrome trace-event JSON file per cell into this directory")
	traceEvents := flag.Int("trace-events", 0, "events kept per loop run for -trace-dir; 0 = 4096, overflow is dropped and counted")
	verbose := flag.Bool("v", false, "verbose logging (debug level) on standard error")
	flag.Parse()
	log := cli.NewLogger("mfutables", *verbose)

	fail := func(err error) int {
		log.Error(err.Error())
		return 1
	}

	// Validate the flag set before any simulation runs, so a bad
	// combination fails immediately instead of after minutes of work
	// (or, for -format, after half the output is already printed).
	switch {
	case *format != "text" && *format != "csv" && *format != "json":
		return fail(fmt.Errorf("unknown format %q (want text, csv, or json)", *format))
	case *table < 0 || *table > 8:
		return fail(fmt.Errorf("-table %d out of range (the paper has tables 1-8; 0 = all)", *table))
	case *supplement && *table != 0:
		return fail(fmt.Errorf("-supplement conflicts with -table %d: the supplement only prints with the full set (-table 0)", *table))
	case *parallel < 0:
		return fail(fmt.Errorf("-parallel %d is negative (0 = all cores)", *parallel))
	case *maxCycles < 0:
		return fail(fmt.Errorf("-maxcycles %d is negative (0 = unlimited)", *maxCycles))
	case *stallCycles < 0:
		return fail(fmt.Errorf("-stallcycles %d is negative (0 = off)", *stallCycles))
	case *timeout < 0:
		return fail(fmt.Errorf("-timeout %v is negative (0 = none)", *timeout))
	case *traceEvents < 0:
		return fail(fmt.Errorf("-trace-events %d is negative (0 = default cap)", *traceEvents))
	case *traceEvents > 0 && *traceDir == "":
		return fail(fmt.Errorf("-trace-events needs -trace-dir"))
	}

	tables.SetParallel(*parallel)
	tables.SetCollectMetrics(*metrics != "")
	tables.SetCollectTraces(*traceDir != "")
	tables.SetTraceEventCap(*traceEvents)
	tables.SetLimits(core.Limits{MaxCycles: *maxCycles, StallCycles: *stallCycles})
	if *timeout > 0 {
		tables.SetCellTimeout(*timeout)
	}

	if *traceDir != "" {
		// Probe the directory for writability up front: a sweep takes
		// minutes, and discovering an unwritable destination only at
		// export time would waste all of it.
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			return fail(err)
		}
		probeFile := filepath.Join(*traceDir, ".mfutables-write-check")
		if err := os.WriteFile(probeFile, nil, 0o644); err != nil {
			return fail(fmt.Errorf("trace dir %s is not writable: %w", *traceDir, err))
		}
		os.Remove(probeFile)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fail(err)
		}
		defer func() {
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mfutables:", err)
			}
			f.Close()
		}()
	}

	cellsFailed := false
	var emitted []*tables.Table
	emit := func(t *tables.Table) error {
		emitted = append(emitted, t)
		if *traceDir != "" {
			// Export and release per table, so a full sweep never holds
			// more than one table's event storage at once.
			n, err := tables.WriteTraces(*traceDir, t)
			if err != nil {
				return err
			}
			tables.ReleaseTraces(t)
			log.Debug("traces written", "table", t.Number, "files", n)
		}
		switch *format {
		case "text":
			fmt.Println(t.Render())
		case "csv":
			fmt.Print(t.CSV())
		case "json":
			b, err := t.MarshalJSON()
			if err != nil {
				return err
			}
			fmt.Println(string(b))
		}
		if s := t.ErrorSummary(); s != "" {
			cellsFailed = true
			fmt.Fprint(os.Stderr, "mfutables: ", s)
		}
		return nil
	}
	generate := func(get func() (*tables.Table, error)) error {
		start := time.Now()
		t, err := get()
		if err != nil {
			return err
		}
		log.Debug("table generated", "table", t.Number, "wall", time.Since(start).Round(time.Millisecond))
		return emit(t)
	}
	done := func() int {
		if *metrics != "" {
			if err := writeMetrics(*metrics, emitted); err != nil {
				return fail(err)
			}
		}
		if cellsFailed {
			log.Warn("some cells failed; their values render as ERR")
			return 1
		}
		return 0
	}

	if *table == 0 {
		for n := 1; n <= 8; n++ {
			n := n
			if err := generate(func() (*tables.Table, error) { return tables.Get(n) }); err != nil {
				return fail(err)
			}
		}
		if *supplement {
			if err := generate(func() (*tables.Table, error) { return tables.SectionThreeThree(), nil }); err != nil {
				return fail(err)
			}
		}
		return done()
	}
	if err := generate(func() (*tables.Table, error) { return tables.Get(*table) }); err != nil {
		return fail(err)
	}
	return done()
}

// writeMetrics encodes the stall breakdowns of every emitted table to
// path: CSV when the filename says so, JSON otherwise.
func writeMetrics(path string, ts []*tables.Table) error {
	var data []byte
	if strings.HasSuffix(strings.ToLower(path), ".csv") {
		data = []byte(tables.MetricsCSV(ts))
	} else {
		b, err := tables.MetricsJSON(ts)
		if err != nil {
			return err
		}
		data = append(b, '\n')
	}
	return os.WriteFile(path, data, 0o644)
}
