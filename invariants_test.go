package mfup_test

import (
	"context"
	"testing"

	"mfup"
	"mfup/internal/bus"
	"mfup/internal/runner"
)

// invariantTask couples a machine constructor with the most
// instructions it may legally issue per cycle.
type invariantTask struct {
	name  string
	width float64
	mk    func(cfg mfup.Config) mfup.Machine
}

// invariantTasks covers every machine model. The multiple-issue
// machines run with two issue units, so their issue rate may reach —
// but never pass — 2.0.
func invariantTasks() []invariantTask {
	wide := func(cfg mfup.Config) mfup.Config { return cfg.WithIssue(2, bus.BusN) }
	return []invariantTask{
		{"Simple", 1, func(cfg mfup.Config) mfup.Machine { return mfup.NewBasic(mfup.Simple, cfg) }},
		{"SerialMemory", 1, func(cfg mfup.Config) mfup.Machine { return mfup.NewBasic(mfup.SerialMemory, cfg) }},
		{"NonSegmented", 1, func(cfg mfup.Config) mfup.Machine { return mfup.NewBasic(mfup.NonSegmented, cfg) }},
		{"CRAYLike", 1, func(cfg mfup.Config) mfup.Machine { return mfup.NewBasic(mfup.CRAYLike, cfg) }},
		{"Scoreboard", 1, func(cfg mfup.Config) mfup.Machine { return mfup.NewScoreboard(cfg) }},
		{"Tomasulo", 1, func(cfg mfup.Config) mfup.Machine { return mfup.NewTomasulo(cfg) }},
		{"MultiIssue", 2, func(cfg mfup.Config) mfup.Machine { return mfup.NewMultiIssue(wide(cfg)) }},
		{"MultiIssueOOO", 2, func(cfg mfup.Config) mfup.Machine { return mfup.NewMultiIssueOOO(wide(cfg)) }},
		{"RUU", 2, func(cfg mfup.Config) mfup.Machine { return mfup.NewRUU(wide(cfg).WithRUU(20)) }},
		{"Vector", 1, func(cfg mfup.Config) mfup.Machine { return mfup.NewVector(cfg) }},
	}
}

// TestCrossModelInvariants checks, for every machine model on every
// scalar loop under every paper configuration:
//
//   - every run terminates under the production default limits,
//   - cycles and instructions are positive,
//   - the issue rate never exceeds the machine's issue width,
//   - the Simple machine is never faster than the CRAY-like machine
//     (each relaxation in §3 only removes stalls).
//
// The grid runs through the parallel runner with several workers, so
// `go test -race` exercises the machines' data-sharing discipline.
func TestCrossModelInvariants(t *testing.T) {
	var traces []*mfup.Trace
	for _, k := range mfup.KernelsByClass(mfup.Scalar) {
		traces = append(traces, k.SharedTrace())
	}
	models := invariantTasks()

	for _, cfg := range mfup.BaseConfigs() {
		var tasks []runner.Task
		for _, im := range models {
			mk := im.mk
			tasks = append(tasks, runner.Task{
				New:    func() mfup.Machine { return mk(cfg) },
				Traces: traces,
			})
		}
		out, errs := runner.RunChecked(context.Background(),
			runner.Options{Parallel: 8, Limits: mfup.DefaultSimLimits()}, tasks)
		for _, e := range errs {
			t.Errorf("%s: cell (%d,%d) failed: %v", cfg.Name(), e.Task, e.Trace, e)
		}
		if len(errs) > 0 {
			continue
		}

		const eps = 1e-9
		for i, im := range models {
			for j, tr := range traces {
				r := out[i][j]
				if r.Cycles <= 0 || r.Instructions <= 0 {
					t.Errorf("%s/%s on %q: non-positive result %+v", cfg.Name(), im.name, tr.Name, r)
				}
				if rate := r.IssueRate(); rate > im.width+eps {
					t.Errorf("%s/%s on %q: issue rate %.4f exceeds width %.0f",
						cfg.Name(), im.name, tr.Name, rate, im.width)
				}
			}
		}

		// Simple (fully serial) can never beat CRAY-like (fully
		// pipelined, overlapped): on every trace it takes at least as
		// many cycles.
		simple, cray := out[0], out[3]
		for j, tr := range traces {
			if simple[j].Cycles < cray[j].Cycles {
				t.Errorf("%s on %q: Simple (%d cycles) beat CRAY-like (%d cycles)",
					cfg.Name(), tr.Name, simple[j].Cycles, cray[j].Cycles)
			}
		}
	}
}
