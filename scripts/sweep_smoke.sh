#!/usr/bin/env bash
# Smoke drill for the design-space sweep layer: run a ~200-point
# sweep through a race-built mfutables and demand the contract that
# makes sweeps affordable and trustworthy:
#
#   1. pruning budget — the queueing model must rule out at least
#      half of the distinct machines before simulation (the whole
#      point of the analytic bound), with zero failed points;
#   2. cross-check — the model must order the simulated frontier the
#      same way the simulator does (agreement >= 0.90), and the
#      frontier must be non-empty;
#   3. resumability — a re-run against the same point journal must
#      simulate nothing and serve every point from the journal, with
#      a byte-identical frontier.
#
# Tunables (environment): SWEEP_OUT (artifact directory, default
# artifacts/sweep).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${SWEEP_OUT:-artifacts/sweep}"
mkdir -p "$OUT"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

say() { printf '== %s\n' "$*"; }

say "building mfutables with the race detector"
go build -race -o "$workdir/mfutables" ./cmd/mfutables

# 192 grid points; the ruu axis is a no-op for the multi/ooo kinds,
# so canonicalization collapses them to 128 distinct machines.
cat > "$workdir/sweep.json" <<'JSON'
{
  "base": {"kind": "ooo", "mem": 11, "br": 5},
  "axes": {
    "kind": ["multi", "ooo", "ruu"],
    "width": [1, 2, 3, 4],
    "bus": ["nbus", "1bus"],
    "mem": [5, 11],
    "br": [2, 5],
    "ruu": [25, 50]
  },
  "prune": {"margin": 0.15, "keep": 8}
}
JSON

say "cold sweep"
"$workdir/mfutables" -sweep "$workdir/sweep.json" \
  -checkpoint "$workdir/points.jsonl" -format json > "$OUT/sweep.json"

say "warm sweep (same journal)"
"$workdir/mfutables" -sweep "$workdir/sweep.json" \
  -checkpoint "$workdir/points.jsonl" -format json > "$OUT/sweep-warm.json"

say "verdict"
python3 - "$OUT/sweep.json" "$OUT/sweep-warm.json" <<'PY'
import json, sys

cold = json.load(open(sys.argv[1]))
warm = json.load(open(sys.argv[2]))
fail = []

def check(ok, msg):
    print(("   ok  " if ok else " FAIL  ") + msg)
    if not ok:
        fail.append(msg)

# 1. pruning budget.
deduped, pruned = cold["deduped"], cold["pruned"]
check(deduped >= 100, f"distinct machines: {deduped} (want >= 100)")
check(pruned >= deduped // 2,
      f"prune budget: {pruned}/{deduped} pruned (want >= half)")
check(cold["failed"] == 0, f"failed points: {cold['failed']}")
check(cold["simulated"] == deduped - pruned,
      f"cold run simulated {cold['simulated']} of {deduped - pruned} survivors")

# 2. cross-check.
model = cold["model"]
check(len(cold["frontier"]) > 0, f"frontier points: {len(cold['frontier'])}")
check(model["frontieragreement"] >= 0.90,
      f"frontier agreement: {model['frontieragreement']:.2f} over "
      f"{model['pairs']} pairs (want >= 0.90)")

# 3. resumability.
check(warm["simulated"] == 0 and warm["fromjournal"] == deduped - pruned,
      f"warm run: simulated {warm['simulated']}, journal {warm['fromjournal']} "
      f"(want 0 and {deduped - pruned})")
check(warm["frontier"] == cold["frontier"]
      and all(warm["points"][i]["rate"] == cold["points"][i]["rate"]
              for i in warm["frontier"]),
      "warm frontier identical to cold")

if fail:
    sys.exit("sweep smoke FAILED: " + "; ".join(fail))
print(f"sweep smoke ok: {deduped} machines, {pruned} pruned, "
      f"{cold['simulated']} simulated, agreement "
      f"{model['frontieragreement']:.2f}/{model['pairs']} pairs")
PY
