#!/usr/bin/env bash
# Chaos drill for the mfud cluster: a router sharding a real sweep
# across three workers, one of which is SIGKILLed mid-sweep. The drill
# demands the full fault-tolerance contract:
#
#   1. byte-identity under faults — the routed sweep report must be
#      cmp-identical to the one an unfaulted single worker produces,
#      dead peer or not, because every point is content-addressed and
#      deterministic;
#   2. provable reassignment — the router's /v1/stats must show at
#      least one point served by a peer that is not its rendezvous
#      owner, i.e. the dead worker's share actually moved;
#   3. zero corruption — a mixed job/sweep load round-robined across
#      the router and a surviving worker must byte-agree on every
#      content key, and every complete line of every surviving cache
#      journal must still parse (the kill may tear at most the line
#      being appended).
#
# Tunables (environment): CLUSTER_PORT (base port, default 8941),
# CLUSTER_OUT (artifact directory, default artifacts/cluster).
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${CLUSTER_PORT:-8941}"
OUT="${CLUSTER_OUT:-artifacts/cluster}"

# 32 points: enough runway that a kill landing after the first
# completion still finds undone work on every peer.
SWEEP='{"base":{"kind":"ooo"},"axes":{"width":[1,2,4,8],"bus":["nbus","1bus"],"mem":[5,11],"br":[2,5]}}'

mkdir -p "$OUT"
workdir="$(mktemp -d)"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    [ -n "$pid" ] && kill -KILL "$pid" 2>/dev/null || true
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

say() { printf '== %s\n' "$*"; }

# start_mfud PORT LOG ARGS... — boots one process, waits for health,
# and leaves its pid in LAST_PID.
start_mfud() {
  local port="$1" log="$2"
  shift 2
  "$workdir/mfud" -addr "127.0.0.1:$port" "$@" >>"$OUT/$log" 2>&1 &
  LAST_PID=$!
  PIDS+=("$LAST_PID")
  for _ in $(seq 1 100); do
    curl -fsS "http://127.0.0.1:$port/healthz" >/dev/null 2>&1 && return 0
    kill -0 "$LAST_PID" 2>/dev/null || break
    sleep 0.1
  done
  say "FAIL: mfud on port $port never became healthy (see $OUT/$log)"
  exit 1
}

say "building mfud and mfuload (race detector on)"
go build -race -o "$workdir/mfud" ./cmd/mfud
go build -race -o "$workdir/mfuload" ./cmd/mfuload

say "baseline: one unfaulted worker computes the drill sweep"
BASE_PORT=$((PORT))
start_mfud "$BASE_PORT" baseline.log \
  -cache "$workdir/base-cache.jsonl" -sweep-journal "$workdir/base-points.jsonl"
curl -fsS -X POST -d "$SWEEP" "http://127.0.0.1:$BASE_PORT/v1/sweeps?wait=1" >/dev/null
# The second submission replays from the registry: a cached envelope,
# the exact bytes the routed run must reproduce.
curl -fsS -X POST -d "$SWEEP" "http://127.0.0.1:$BASE_PORT/v1/sweeps?wait=1" >"$workdir/baseline.json"

say "starting 3 workers (own journals each) and the router"
PEERS=""
WORKER_PIDS=()
for i in 1 2 3; do
  wport=$((PORT + i))
  start_mfud "$wport" "worker$i.log" \
    -cache "$workdir/w$i-cache.jsonl" -sweep-journal "$workdir/w$i-points.jsonl" -workers 2
  WORKER_PIDS+=("$LAST_PID")
  PEERS="${PEERS:+$PEERS,}127.0.0.1:$wport"
done
RPORT=$((PORT + 4))
start_mfud "$RPORT" router.log -route -peers "$PEERS"
ROUTER="http://127.0.0.1:$RPORT"

say "submitting the sweep asynchronously, then killing worker 2 mid-sweep"
curl -fsS -X POST -d "$SWEEP" "$ROUTER/v1/sweeps" >/dev/null
for _ in $(seq 1 200); do
  done_pts="$(curl -fsS "$ROUTER/v1/stats" | python3 -c 'import json,sys; print(json.load(sys.stdin)["points_done"])')"
  [ "$done_pts" -ge 1 ] && break
  sleep 0.05
done
if [ "${done_pts:-0}" -lt 1 ]; then
  say "FAIL: no point completed within 10s (see $OUT/router.log)"
  exit 1
fi
kill -KILL "${WORKER_PIDS[1]}"
say "   worker 2 SIGKILLed at points_done=$done_pts"

say "waiting for the routed sweep to finish despite the dead worker"
curl -fsS -X POST -d "$SWEEP" "$ROUTER/v1/sweeps?wait=1" >"$workdir/routed.json"

say "drill 1: routed report must be byte-identical to the baseline"
# The report is the envelope's trailing "result" field; the envelopes
# differ only in the cached marker (the baseline replay is a registry
# hit, the routed response a fresh completion), so compare the raw
# report bytes.
python3 - "$workdir/baseline.json" "$workdir/routed.json" <<'PY'
import sys
base = open(sys.argv[1], "rb").read().split(b'"result":', 1)[1]
routed = open(sys.argv[2], "rb").read().split(b'"result":', 1)[1]
assert base == routed, "routed sweep report diverged from the unfaulted baseline:\n%s\nvs\n%s" % (base[:300], routed[:300])
print(f"   byte-identical report ({len(routed)} bytes)")
PY

say "drill 2: the dead worker's points must be provably reassigned"
curl -fsS "$ROUTER/v1/stats" >"$OUT/router-stats.json"
python3 - "$OUT/router-stats.json" <<'PY'
import json, sys
st = json.load(open(sys.argv[1]))
done, moved = st["points_done"], st["points_reassigned"]
assert done == 32, f"points_done = {done}, want 32"
assert moved >= 1, f"points_reassigned = {moved}, want >= 1: the kill moved nothing"
down = [p["url"] for p in st["peers"] if not p["healthy"]]
print(f"   {moved} of {done} points reassigned; down peers: {down or 'none yet'}")
PY

say "drill 3a: mixed job/sweep load across router + a cold worker, corruption fatal"
# The byte-identity verdict spans processes, so the second target must
# recompute from scratch: a survivor's warm point journal would
# (honestly) change its sweep reports' provenance counts, which is not
# corruption. A cold standalone worker recomputing everything and
# byte-agreeing with the router fleet is the strong form of the check.
COLD_PORT=$((PORT + 5))
start_mfud "$COLD_PORT" cold.log -workers 2
"$workdir/mfuload" -addr "$ROUTER,http://127.0.0.1:$COLD_PORT" \
  -duration 3s -rate 30 -clients 4 -sweeps 5 -report "$OUT/load-report.json"
python3 - "$OUT/load-report.json" <<'PY'
import json, sys
rep = json.load(open(sys.argv[1]))
assert not rep["corrupt_keys"], f"corruption across the fleet: {rep['corrupt_keys']}"
assert rep["done"] + rep["cached"] > 0, f"load pass did no useful work: {rep}"
assert rep["sweeps"] > 0, f"no sweeps in the mix: {rep}"
print(f"   {rep['requests']} requests ({rep['sweeps']} sweeps), 0 corrupt keys")
PY

say "drill 3b: every complete line of every cache journal still parses"
python3 - "$workdir" <<'PY'
import glob, json, sys
total = 0
for path in sorted(glob.glob(sys.argv[1] + "/*-cache.jsonl")):
    data = open(path, "rb").read()
    lines = data.split(b"\n")
    torn = lines[-1]  # bytes after the last newline: torn tail, tolerated
    for i, line in enumerate(l for l in lines[:-1] if l.strip()):
        rec = json.loads(line)
        assert rec.get("key") and rec.get("result") is not None, f"{path} line {i+1}: bad record"
        total += 1
    if torn.strip():
        print(f"   {path}: torn tail of {len(torn)} bytes (expected after kill -9)")
print(f"   {total} complete journal lines, all parse")
PY

say "cluster chaos drill PASSED"
