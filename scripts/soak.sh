#!/usr/bin/env bash
# Soak drill for the mfud daemon: run the deterministic load generator
# against a fault-armed daemon for a while, then demand the full
# robustness contract:
#
#   1. zero corruption — mfuload byte-compares every result per
#      content key and exits nonzero on divergence;
#   2. clean drain — SIGTERM must finish in-flight jobs, flush the
#      journal, and exit 0;
#   3. byte-identical warm replay — a restarted daemon over the same
#      journal must serve a previously computed job with exactly the
#      same bytes, without admitting any new work for it;
#   4. warm efficiency — a second load pass over the same job mix must
#      be served overwhelmingly from the cache.
#
# Tunables (environment): SOAK_DURATION (60s), SOAK_RATE (40),
# SOAK_CLIENTS (8), SOAK_FAULTS (a faultinject plan), SOAK_PORT,
# SOAK_OUT (artifact directory, default artifacts/soak).
set -euo pipefail
cd "$(dirname "$0")/.."

DURATION="${SOAK_DURATION:-60s}"
RATE="${SOAK_RATE:-40}"
CLIENTS="${SOAK_CLIENTS:-8}"
# The default plan injects transient accept faults periodically: the
# first 20 submissions are clean (so the cold probe below completes),
# then 5 injected failures, repeating nothing after — enough chaos to
# prove the verdict is measured under fire, not in calm.
FAULTS="${SOAK_FAULTS:-serve.accept:err:transient:after=20:times=5}"
PORT="${SOAK_PORT:-8931}"
OUT="${SOAK_OUT:-artifacts/soak}"

ADDR="127.0.0.1:$PORT"
BASE="http://$ADDR"
mkdir -p "$OUT"
workdir="$(mktemp -d)"
CACHE="$workdir/cache.jsonl"
DAEMON=""

cleanup() {
  [ -n "$DAEMON" ] && kill -KILL "$DAEMON" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

say() { printf '== %s\n' "$*"; }

start_daemon() {
  "$workdir/mfud" -addr "$ADDR" -cache "$CACHE" "$@" >>"$OUT/mfud.log" 2>&1 &
  DAEMON=$!
  for _ in $(seq 1 100); do
    curl -fsS "$BASE/healthz" >/dev/null 2>&1 && return 0
    kill -0 "$DAEMON" 2>/dev/null || break
    sleep 0.1
  done
  say "FAIL: daemon never became healthy (see $OUT/mfud.log)"
  exit 1
}

# stop_daemon enforces drill 2: SIGTERM, drain, exit status 0.
stop_daemon() {
  kill -TERM "$DAEMON"
  local status=0
  wait "$DAEMON" || status=$?
  DAEMON=""
  if [ "$status" -ne 0 ]; then
    say "FAIL: SIGTERM drain exited with status $status (see $OUT/mfud.log)"
    exit 1
  fi
}

say "building mfud and mfuload"
go build -o "$workdir/mfud" ./cmd/mfud
go build -o "$workdir/mfuload" ./cmd/mfuload

say "starting fault-armed daemon on $ADDR (plan: $FAULTS)"
start_daemon -faults "$FAULTS" -fault-seed 7

say "probing one cold job and recording its exact response bytes"
PROBE='{"machine":{"kind":"cray"},"workload":{"loops":"1,2"}}'
curl -fsS -X POST -d "$PROBE" "$BASE/v1/jobs?wait=1" >"$workdir/probe.json"
ID="$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["id"])' "$workdir/probe.json")"
# GET the completed job: handleGet serves it from the cache, which is
# the same path a restarted daemon will take — byte-comparable.
curl -fsS "$BASE/v1/jobs/$ID" >"$workdir/cold.json"

say "soaking for $DURATION at ${RATE} req/s x $CLIENTS clients (chaos tolerated, corruption fatal)"
"$workdir/mfuload" -addr "$BASE" -duration "$DURATION" -rate "$RATE" \
  -clients "$CLIENTS" -chaos -report "$OUT/soak-report.json"

say "draining under SIGTERM"
stop_daemon

say "restarting over the same journal; demanding byte-identical replay"
start_daemon
curl -fsS "$BASE/v1/jobs/$ID" >"$workdir/warm.json"
if ! cmp -s "$workdir/cold.json" "$workdir/warm.json"; then
  say "FAIL: warm replay diverged from the cold result"
  diff "$workdir/cold.json" "$workdir/warm.json" || true
  exit 1
fi
curl -fsS "$BASE/v1/stats" >"$OUT/warm-stats.json"
python3 - "$OUT/warm-stats.json" <<'PY'
import json, sys
st = json.load(open(sys.argv[1]))
loaded, admitted = st.get("cache_loaded", 0), st.get("admitted", 0)
assert loaded >= 1, f"restarted daemon loaded {loaded} journal entries, want >= 1"
assert admitted == 0, f"warm replay admitted {admitted} jobs, want 0"
print(f"   journal replayed {loaded} results; 0 jobs re-admitted")
PY

say "warm load pass: the same mix must be served from the cache"
"$workdir/mfuload" -addr "$BASE" -duration 5s -rate "$RATE" \
  -clients "$CLIENTS" -report "$OUT/warm-report.json"
python3 - "$OUT/warm-report.json" <<'PY'
import json, sys
rep = json.load(open(sys.argv[1]))
done, cached = rep["done"], rep["cached"]
assert cached > done, f"warm pass computed {done} cold vs {cached} cached; the journal is not doing its job"
print(f"   warm pass: {cached} cached vs {done} cold, p99 {rep['p99_ms']:.1f} ms")
PY

say "final drain"
stop_daemon

say "soak verdict: clean (reports in $OUT)"
