package mfup_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCommandLineTools builds and exercises the four binaries end to
// end: the deliverable the README's quick-start commands promise.
// Skipped under -short (it shells out to the Go toolchain).
func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end CLI test skipped in -short mode")
	}
	bindir := t.TempDir()
	build := func(name string) string {
		t.Helper()
		bin := filepath.Join(bindir, name)
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+name).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
		return bin
	}
	runBin := func(bin string, args ...string) string {
		t.Helper()
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
		}
		return string(out)
	}

	mfusim := build("mfusim")
	out := runBin(mfusim, "-machine", "cray", "-loops", "5,12")
	if !strings.Contains(out, "LFK 5") || !strings.Contains(out, "harmonic mean") {
		t.Errorf("mfusim output unexpected:\n%s", out)
	}
	out = runBin(mfusim, "-machine", "ruu", "-units", "2", "-ruu", "30", "-bus", "1bus", "-loops", "scalar")
	if !strings.Contains(out, "RUU(2 units, 30 entries, 1-Bus)") {
		t.Errorf("mfusim ruu output unexpected:\n%s", out)
	}
	out = runBin(mfusim, "-machine", "vector", "-loops", "vector")
	if !strings.Contains(out, "Vector, M11BR5") {
		t.Errorf("mfusim vector output unexpected:\n%s", out)
	}

	mfutables := build("mfutables")
	out = runBin(mfutables, "-table", "1")
	if !strings.Contains(out, "Table 1.") || !strings.Contains(out, "CRAY-like") {
		t.Errorf("mfutables output unexpected:\n%s", out)
	}
	out = runBin(mfutables, "-table", "2", "-format", "csv")
	if !strings.HasPrefix(out, "Table 2:") || strings.Count(out, "\n") < 16 {
		t.Errorf("mfutables csv output unexpected:\n%s", out)
	}
	out = runBin(mfutables, "-table", "2", "-format", "json")
	if !strings.Contains(out, `"number":2`) {
		t.Errorf("mfutables json output unexpected:\n%s", out)
	}

	mfulimits := build("mfulimits")
	out = runBin(mfulimits, "-loops", "5,12", "-mode", "pure")
	if !strings.Contains(out, "pseudo-dataflow") || !strings.Contains(out, "harmonic means") {
		t.Errorf("mfulimits output unexpected:\n%s", out)
	}

	mfuasm := build("mfuasm")
	// A user source file, assembled, run, with stats.
	srcFile := filepath.Join(bindir, "prog.cal")
	prog := `
    A1 = 10
    S1 = 2.5
    [A1] = S1
    S2 = [A1]
    S3 = S2 +F S2
`
	if err := os.WriteFile(srcFile, []byte(prog), 0o644); err != nil {
		t.Fatal(err)
	}
	out = runBin(mfuasm, "-file", srcFile, "-run", "-stats")
	if !strings.Contains(out, "executed 5 dynamic instructions") ||
		!strings.Contains(out, "S3 = ") || !strings.Contains(out, "instruction mix") {
		t.Errorf("mfuasm output unexpected:\n%s", out)
	}
	// Built-in kernel dump (vector coding).
	out = runBin(mfuasm, "-kernel", "12", "-vector", "-run")
	if !strings.Contains(out, "lfk12v") {
		t.Errorf("mfuasm kernel output unexpected:\n%s", out)
	}
}
