package mfup_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCommandLineTools builds and exercises the four binaries end to
// end: the deliverable the README's quick-start commands promise.
// Skipped under -short (it shells out to the Go toolchain).
func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end CLI test skipped in -short mode")
	}
	bindir := t.TempDir()
	build := func(name string) string {
		t.Helper()
		bin := filepath.Join(bindir, name)
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+name).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
		return bin
	}
	runBin := func(bin string, args ...string) string {
		t.Helper()
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
		}
		return string(out)
	}

	mfusim := build("mfusim")
	out := runBin(mfusim, "-machine", "cray", "-loops", "5,12")
	if !strings.Contains(out, "LFK 5") || !strings.Contains(out, "harmonic mean") {
		t.Errorf("mfusim output unexpected:\n%s", out)
	}
	out = runBin(mfusim, "-machine", "ruu", "-units", "2", "-ruu", "30", "-bus", "1bus", "-loops", "scalar")
	if !strings.Contains(out, "RUU(2 units, 30 entries, 1-Bus)") {
		t.Errorf("mfusim ruu output unexpected:\n%s", out)
	}
	out = runBin(mfusim, "-machine", "vector", "-loops", "vector")
	if !strings.Contains(out, "Vector, M11BR5") {
		t.Errorf("mfusim vector output unexpected:\n%s", out)
	}
	out = runBin(mfusim, "-machine", "cray", "-loops", "5", "-stats")
	if !strings.Contains(out, "stall-reason breakdown") ||
		!strings.Contains(out, "result-bus") || !strings.Contains(out, "drain") {
		t.Errorf("mfusim -stats breakdown missing:\n%s", out)
	}
	// Attaching the probe must not change the simulated rate.
	plain := runBin(mfusim, "-machine", "cray", "-loops", "5")
	if !strings.Contains(out, strings.TrimSpace(strings.Split(plain, "\n")[1])) {
		t.Errorf("mfusim -stats changed the per-loop line:\nwith: %s\nwithout: %s", out, plain)
	}

	// Steady-state extrapolation: a billion-iteration loop closes
	// analytically, reporting how much of it was bridged; -scale at a
	// materializable length gives the same numbers with or without the
	// engine; a loop with no steady state reports its fallback.
	out = runBin(mfusim, "-machine", "cray", "-loops", "1", "-scale", "1000000000", "-extrapolate")
	if !strings.Contains(out, "windows bridged analytically") || !strings.Contains(out, "extrapolated: lag") {
		t.Errorf("mfusim -extrapolate missing engine stats:\n%s", out)
	}
	scaled := runBin(mfusim, "-machine", "cray", "-loops", "1", "-scale", "1000")
	scaledE := runBin(mfusim, "-machine", "cray", "-loops", "1", "-scale", "1000", "-extrapolate")
	line := func(s string) string { return strings.Split(s, "\n")[1] }
	if line(scaled) != line(scaledE) {
		t.Errorf("-extrapolate changed a materializable run:\nwith:    %s\nwithout: %s",
			line(scaledE), line(scaled))
	}
	out = runBin(mfusim, "-machine", "cray", "-loops", "13", "-extrapolate")
	if !strings.Contains(out, "full simulation:") {
		t.Errorf("mfusim -extrapolate on LFK 13 missing fallback note:\n%s", out)
	}

	mfutables := build("mfutables")
	out = runBin(mfutables, "-table", "1")
	if !strings.Contains(out, "Table 1.") || !strings.Contains(out, "CRAY-like") {
		t.Errorf("mfutables output unexpected:\n%s", out)
	}
	out = runBin(mfutables, "-table", "2", "-format", "csv")
	if !strings.HasPrefix(out, "Table 2:") || strings.Count(out, "\n") < 16 {
		t.Errorf("mfutables csv output unexpected:\n%s", out)
	}
	out = runBin(mfutables, "-table", "2", "-format", "json")
	if !strings.Contains(out, `"number":2`) {
		t.Errorf("mfutables json output unexpected:\n%s", out)
	}
	// -metrics writes a stall-breakdown sidecar without disturbing the
	// table itself.
	metricsFile := filepath.Join(bindir, "stalls.json")
	out = runBin(mfutables, "-table", "3", "-metrics", metricsFile)
	if out != runBin(mfutables, "-table", "3") {
		t.Error("mfutables -metrics changed the rendered table")
	}
	raw, err := os.ReadFile(metricsFile)
	if err != nil {
		t.Fatalf("reading -metrics output: %v", err)
	}
	var cells []struct {
		Table  int              `json:"table"`
		Slots  int64            `json:"slots"`
		Issued int64            `json:"issued"`
		Stalls map[string]int64 `json:"stalls"`
	}
	if err := json.Unmarshal(raw, &cells); err != nil {
		t.Fatalf("decoding -metrics JSON: %v", err)
	}
	if len(cells) != 64 { // 8 station counts x 4 variations x 2 interconnects
		t.Errorf("metrics file has %d cells, want 64", len(cells))
	}
	for _, c := range cells {
		var stalls int64
		for _, n := range c.Stalls {
			stalls += n
		}
		if c.Table != 3 || c.Issued+stalls != c.Slots {
			t.Errorf("metrics cell ledger broken: %+v (issued+stalls = %d, slots = %d)",
				c, c.Issued+stalls, c.Slots)
		}
	}
	// CSV form, selected by suffix.
	metricsCSV := filepath.Join(bindir, "stalls.csv")
	runBin(mfutables, "-table", "1", "-metrics", metricsCSV)
	if b, err := os.ReadFile(metricsCSV); err != nil || !strings.HasPrefix(string(b), "table,row,column,machine,") {
		t.Errorf("metrics CSV missing or malformed (err %v):\n%.200s", err, b)
	}
	// Scaled, extrapolated table regeneration: kernels that cannot
	// reach the requested length are clamped with a note, the rest
	// extend analytically, and the table still renders every cell.
	out = runBin(mfutables, "-table", "1", "-scale", "100000", "-extrapolate")
	if !strings.Contains(out, "Table 1.") || strings.Contains(out, "ERR") {
		t.Errorf("scaled extrapolated table unexpected:\n%s", out)
	}
	if !strings.Contains(out, "clamped") {
		t.Errorf("scaled run missing clamp notes for the fixed-length kernels:\n%s", out)
	}

	mfulimits := build("mfulimits")
	out = runBin(mfulimits, "-loops", "5,12", "-mode", "pure")
	if !strings.Contains(out, "pseudo-dataflow") || !strings.Contains(out, "harmonic means") {
		t.Errorf("mfulimits output unexpected:\n%s", out)
	}

	mfuasm := build("mfuasm")
	// A user source file, assembled, run, with stats.
	srcFile := filepath.Join(bindir, "prog.cal")
	prog := `
    A1 = 10
    S1 = 2.5
    [A1] = S1
    S2 = [A1]
    S3 = S2 +F S2
`
	if err := os.WriteFile(srcFile, []byte(prog), 0o644); err != nil {
		t.Fatal(err)
	}
	out = runBin(mfuasm, "-file", srcFile, "-run", "-stats")
	if !strings.Contains(out, "executed 5 dynamic instructions") ||
		!strings.Contains(out, "S3 = ") || !strings.Contains(out, "instruction mix") {
		t.Errorf("mfuasm output unexpected:\n%s", out)
	}
	// Built-in kernel dump (vector coding).
	out = runBin(mfuasm, "-kernel", "12", "-vector", "-run")
	if !strings.Contains(out, "lfk12v") {
		t.Errorf("mfuasm kernel output unexpected:\n%s", out)
	}
}

// TestTraceExportE2E exercises the pipeline-event observability
// surface end to end: mfusim -trace/-timeline and mfutables
// -trace-dir, including the unwritable-destination error paths.
func TestTraceExportE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end CLI test skipped in -short mode")
	}
	bindir := t.TempDir()
	build := func(name string) string {
		t.Helper()
		bin := filepath.Join(bindir, name)
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+name).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
		return bin
	}
	runBin := func(bin string, args ...string) string {
		t.Helper()
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
		}
		return string(out)
	}
	mfusim := build("mfusim")
	mfutables := build("mfutables")

	// chromeDoc is the trace-event envelope every export must decode as.
	type chromeDoc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			PID   int64  `json:"pid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	decode := func(path string) chromeDoc {
		t.Helper()
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var doc chromeDoc
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("%s is not valid Chrome trace-event JSON: %v", path, err)
		}
		if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) == 0 {
			t.Fatalf("%s malformed: unit %q, %d events", path, doc.DisplayTimeUnit, len(doc.TraceEvents))
		}
		return doc
	}

	// mfusim -trace: one process per loop, identical rates to a bare run.
	traceFile := filepath.Join(bindir, "cray.json")
	traced := runBin(mfusim, "-machine", "cray", "-loops", "5,12", "-trace", traceFile)
	plain := runBin(mfusim, "-machine", "cray", "-loops", "5,12")
	if !strings.Contains(traced, strings.TrimSpace(strings.Split(plain, "\n")[1])) {
		t.Errorf("-trace changed the per-loop line:\nwith: %s\nwithout: %s", traced, plain)
	}
	if !strings.Contains(traced, "trace:") || !strings.Contains(traced, "events recorded") {
		t.Errorf("-trace run missing the event census line:\n%s", traced)
	}
	doc := decode(traceFile)
	pids := map[int64]bool{}
	for _, ev := range doc.TraceEvents {
		pids[ev.PID] = true
	}
	if len(pids) != 2 {
		t.Errorf("trace file has %d processes, want 2 (one per loop)", len(pids))
	}

	// mfusim -timeline: a Gantt excerpt with ruler, lanes, and legend.
	out := runBin(mfusim, "-machine", "cray", "-loops", "3", "-timeline", "-timeline-window", "60", "-trace-events", "500")
	for _, want := range []string{"cycle", "legend:", "=", "W", "dropped at the 500-event cap"} {
		if !strings.Contains(out, want) {
			t.Errorf("-timeline output missing %q:\n%s", want, out)
		}
	}

	// The recorder also composes with -stats (probe + recorder at once).
	out = runBin(mfusim, "-machine", "ooo", "-units", "4", "-loops", "5", "-stats", "-timeline")
	if !strings.Contains(out, "stall-reason breakdown") || !strings.Contains(out, "legend:") {
		t.Errorf("-stats with -timeline lost a section:\n%s", out)
	}

	// mfutables -trace-dir: one well-formed file per cell, values intact.
	traceDir := filepath.Join(bindir, "traces")
	withTraces := runBin(mfutables, "-table", "1", "-trace-dir", traceDir, "-trace-events", "256")
	if withTraces != runBin(mfutables, "-table", "1") {
		t.Error("mfutables -trace-dir changed the rendered table")
	}
	files, err := filepath.Glob(filepath.Join(traceDir, "table1_*.json"))
	if err != nil || len(files) != 32 {
		t.Fatalf("trace dir holds %d table1 files (err %v), want 32 (8 rows x 4 columns)", len(files), err)
	}
	decode(files[0])

	// -metrics alongside -trace-dir surfaces the drop telemetry.
	metricsCSV := filepath.Join(bindir, "cells.csv")
	runBin(mfutables, "-table", "1", "-trace-dir", traceDir, "-trace-events", "64", "-metrics", metricsCSV)
	raw, err := os.ReadFile(metricsCSV)
	if err != nil {
		t.Fatal(err)
	}
	head := strings.SplitN(string(raw), "\n", 2)[0]
	if !strings.HasPrefix(head, "table,row,column,machine,") || !strings.Contains(head, "events_dropped") {
		t.Errorf("metrics CSV header missing telemetry columns: %q", head)
	}

	// Error paths: unwritable destinations fail fast with a diagnostic.
	roDir := filepath.Join(bindir, "ro")
	if err := os.Mkdir(roDir, 0o555); err != nil {
		t.Fatal(err)
	}
	if os.Getuid() != 0 { // root ignores mode bits; skip the unwritable cases
		out, err := exec.Command(mfusim, "-machine", "cray", "-loops", "5",
			"-trace", filepath.Join(roDir, "t.json")).CombinedOutput()
		if err == nil || !strings.Contains(string(out), "mfusim:") {
			t.Errorf("unwritable -trace exited %v:\n%s", err, out)
		}
		out, err = exec.Command(mfutables, "-table", "1",
			"-trace-dir", filepath.Join(roDir, "sub")).CombinedOutput()
		if err == nil || !strings.Contains(string(out), "mfutables:") {
			t.Errorf("unwritable -trace-dir exited %v:\n%s", err, out)
		}
	}
}

// TestKillAndResumeE2E is the robustness acceptance test for the
// checkpoint journal: a full mfutables sweep is killed mid-run with
// SIGINT, then rerun against the same -checkpoint journal, and the
// resumed stdout must reproduce the uninterrupted run's stdout byte
// for byte.
func TestKillAndResumeE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end CLI test skipped in -short mode")
	}
	bindir := t.TempDir()
	bin := filepath.Join(bindir, "mfutables")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/mfutables").CombinedOutput(); err != nil {
		t.Fatalf("building mfutables: %v\n%s", err, out)
	}

	// The uninterrupted reference, at a different worker count so the
	// comparison also reasserts worker-count independence.
	ref, err := exec.Command(bin, "-parallel", "2").Output()
	if err != nil {
		t.Fatalf("baseline run failed: %v", err)
	}

	ck := filepath.Join(bindir, "ck.jsonl")
	args := []string{"-parallel", "1", "-checkpoint", ck}

	// Land a SIGINT mid-sweep. If a machine is so fast the run finishes
	// before the signal, shrink the delay and try again with a fresh
	// journal (a completed journal would make the resume vacuous).
	interrupted := false
	delay := 300 * time.Millisecond
	for attempt := 0; attempt < 6 && !interrupted; attempt++ {
		os.Remove(ck)
		cmd := exec.Command(bin, args...)
		var stderr strings.Builder
		cmd.Stderr = &stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(delay)
		if err := cmd.Process.Signal(os.Interrupt); err != nil {
			t.Fatal(err)
		}
		err := cmd.Wait()
		if err == nil {
			delay /= 2 // finished before the signal landed; aim earlier
			continue
		}
		interrupted = true
		if ee, ok := err.(*exec.ExitError); ok && ee.ExitCode() == 1 {
			// The handler caught the signal (rather than the default
			// action killing the process before it was installed): the
			// summary must carry the resume hint.
			if !strings.Contains(stderr.String(), "resume") {
				t.Errorf("interrupted run's stderr lacks the resume hint:\n%s", stderr.String())
			}
		}
	}
	if !interrupted {
		t.Skip("could not interrupt mfutables mid-run (machine too fast)")
	}

	// Resume against the journal: stdout must be byte-identical to the
	// uninterrupted reference.
	cmd := exec.Command(bin, append(args, "-v")...)
	var stdout, stderr strings.Builder
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("resumed run failed: %v\n%s", err, stderr.String())
	}
	if stdout.String() != string(ref) {
		t.Errorf("resumed output differs from the uninterrupted run (%d vs %d bytes)",
			stdout.Len(), len(ref))
	}
	if info, err := os.Stat(ck); err == nil && info.Size() > 0 &&
		!strings.Contains(stderr.String(), "resuming from checkpoint") {
		t.Errorf("resume did not report the loaded journal:\n%s", stderr.String())
	}

	// A third run serves every cell from the journal and must still
	// render the same bytes.
	out, err := exec.Command(bin, args...).Output()
	if err != nil {
		t.Fatalf("fully-cached run failed: %v", err)
	}
	if string(out) != string(ref) {
		t.Error("fully-cached output differs from the uninterrupted run")
	}
}

// TestCommandLineErrorPaths exercises the failure modes of all four
// binaries: malformed input, unknown flags, nonexistent files, and
// over-budget simulations must each produce a diagnostic on standard
// error and a nonzero exit status — never a panic, never a zero exit.
func TestCommandLineErrorPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end CLI test skipped in -short mode")
	}
	bindir := t.TempDir()
	build := func(name string) string {
		t.Helper()
		bin := filepath.Join(bindir, name)
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+name).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
		return bin
	}
	mfusim := build("mfusim")
	mfutables := build("mfutables")
	mfulimits := build("mfulimits")
	mfuasm := build("mfuasm")

	badSrc := filepath.Join(bindir, "bad.cal")
	if err := os.WriteFile(badSrc, []byte("S1 = utter garbage !!\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	livelock, err := filepath.Abs("testdata/livelock.cal")
	if err != nil {
		t.Fatal(err)
	}
	corruptTrace, err := filepath.Abs("testdata/corrupt_opcode.mfutrace")
	if err != nil {
		t.Fatal(err)
	}
	truncatedTrace, err := filepath.Abs("testdata/corrupt_truncated.mfutrace")
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		bin  string
		args []string
		want string // substring of combined output; "" = any
	}{
		{"mfusim unknown flag", mfusim, []string{"-bogus"}, "flag provided but not defined"},
		{"mfusim unknown machine", mfusim, []string{"-machine", "hal9000"}, `unknown machine "hal9000"`},
		{"mfusim bad config", mfusim, []string{"-machine", "multi", "-units", "0"}, "mfusim:"},
		{"mfusim bad loop list", mfusim, []string{"-loops", "banana"}, "mfusim:"},
		{"mfusim empty loop segment", mfusim, []string{"-loops", "1,,2"}, "empty segment"},
		{"mfusim empty loop spec", mfusim, []string{"-loops", ""}, "empty loop spec"},
		{"mfusim negative budget", mfusim, []string{"-maxcycles", "-1"}, "negative"},
		{"mfusim negative stations", mfusim, []string{"-machine", "tomasulo", "-stations", "0"}, "reservation station"},
		{"mfusim over budget", mfusim, []string{"-machine", "tomasulo", "-loops", "5", "-maxcycles", "10"}, "cycle budget exceeded"},
		{"mfusim expired timeout", mfusim, []string{"-machine", "cray", "-loops", "5", "-timeout", "1ns"}, "deadline exceeded"},

		{"mfuasm unknown flag", mfuasm, []string{"-bogus"}, "flag provided but not defined"},
		{"mfuasm file and kernel", mfuasm, []string{"-file", "x.cal", "-kernel", "5"}, "conflicts"},
		{"mfuasm vector without kernel", mfuasm, []string{"-file", "x.cal", "-vector"}, "-vector only applies with -kernel"},
		{"mfuasm stats without run", mfuasm, []string{"-kernel", "5", "-stats"}, "-stats requires -run"},
		{"mfuasm trace without run", mfuasm, []string{"-kernel", "5", "-trace"}, "-trace requires -run"},
		{"mfuasm maxsteps without run", mfuasm, []string{"-kernel", "5", "-maxsteps", "10"}, "-maxsteps requires -run"},
		{"mfuasm nonexistent file", mfuasm, []string{"-file", filepath.Join(bindir, "no-such.cal")}, "mfuasm:"},
		{"mfuasm malformed assembly", mfuasm, []string{"-file", badSrc}, "mfuasm:"},
		{"mfuasm bad kernel", mfuasm, []string{"-kernel", "99"}, "mfuasm:"},
		{"mfuasm over budget", mfuasm, []string{"-file", livelock, "-run", "-maxsteps", "10"}, "step limit exceeded"},

		{"mfulimits unknown flag", mfulimits, []string{"-bogus"}, "flag provided but not defined"},
		{"mfulimits nonexistent file", mfulimits, []string{"-file", filepath.Join(bindir, "no-such.cal")}, "mfulimits:"},
		{"mfulimits bad mode", mfulimits, []string{"-mode", "chaotic"}, "mfulimits:"},
		{"mfulimits file and loops", mfulimits, []string{"-file", livelock, "-loops", "5"}, "conflicts"},
		{"mfulimits maxsteps without file", mfulimits, []string{"-maxsteps", "10"}, "-maxsteps only applies with -file"},
		{"mfulimits over budget", mfulimits, []string{"-file", livelock, "-maxsteps", "10"}, "step limit exceeded"},

		{"mfutables unknown flag", mfutables, []string{"-bogus"}, "flag provided but not defined"},
		{"mfutables bad table", mfutables, []string{"-table", "99"}, "out of range"},
		{"mfutables bad format", mfutables, []string{"-table", "1", "-format", "xml"}, "unknown format"},
		{"mfutables negative parallel", mfutables, []string{"-parallel", "-2"}, "negative"},
		{"mfutables supplement with table", mfutables, []string{"-table", "3", "-supplement"}, "conflicts"},
		{"mfutables over budget", mfutables, []string{"-table", "1", "-maxcycles", "50"}, "ERR"},

		{"mfusim tracein nonexistent", mfusim, []string{"-tracein", filepath.Join(bindir, "no-such.mfutrace")}, "mfusim:"},
		{"mfusim tracein corrupt opcode", mfusim, []string{"-tracein", corruptTrace}, "undefined opcode"},
		{"mfusim tracein truncated", mfusim, []string{"-tracein", truncatedTrace}, "mfusim:"},
		{"mfusim tracein with loops", mfusim, []string{"-tracein", corruptTrace, "-loops", "5"}, "conflicts"},
		{"mfusim fault-seed without faults", mfusim, []string{"-fault-seed", "7"}, "-fault-seed needs -faults"},
		{"mfusim bad fault plan", mfusim, []string{"-faults", "sim:frobnicate"}, "unknown fault kind"},
		{"mfusim injected error", mfusim, []string{"-machine", "cray", "-loops", "5", "-faults", "sim:err:at=3"}, "injected fault"},

		{"mfuasm traceout without run", mfuasm, []string{"-kernel", "5", "-traceout", "x.mfutrace"}, "-traceout requires -run"},
		{"mfuasm bad fault plan", mfuasm, []string{"-kernel", "5", "-faults", "nowhere:panic"}, "unknown site"},

		{"mfulimits corrupt trace file", mfulimits, []string{"-file", corruptTrace}, "undefined opcode"},
		{"mfulimits maxsteps with binary trace", mfulimits, []string{"-file", corruptTrace, "-maxsteps", "10"}, "already traced"},

		{"mfutables retry-backoff without retries", mfutables, []string{"-retry-backoff", "1s"}, "-retry-backoff needs -retries"},
		{"mfutables negative retries", mfutables, []string{"-retries", "-1"}, "negative"},
		{"mfutables checkpoint with metrics", mfutables, []string{"-checkpoint", "c.jsonl", "-metrics", "m.json"}, "conflicts"},
		{"mfutables checkpoint with trace-dir", mfutables, []string{"-checkpoint", "c.jsonl", "-trace-dir", "d"}, "conflicts"},
		{"mfutables fault-seed without faults", mfutables, []string{"-fault-seed", "7"}, "-fault-seed needs -faults"},
		{"mfutables sweep with table", mfutables, []string{"-sweep", "s.json", "-table", "1"}, "conflicts"},
		{"mfutables sweep with scale", mfutables, []string{"-sweep", "s.json", "-scale", "100"}, "conflicts"},
		{"mfutables sweep with extrapolate", mfutables, []string{"-sweep", "s.json", "-extrapolate"}, "conflicts"},
		{"mfutables sweep with metrics", mfutables, []string{"-sweep", "s.json", "-metrics", "m.json"}, "conflicts"},
		{"mfutables sweep with timeout", mfutables, []string{"-sweep", "s.json", "-timeout", "1s"}, "conflicts"},
		{"mfutables sweep nonexistent spec", mfutables, []string{"-sweep", filepath.Join(bindir, "no-such.json")}, "mfutables:"},
		{"mfutables bad fault plan", mfutables, []string{"-faults", "sim:err:at=zero"}, "positive count"},
		{"mfutables injected write fault", mfutables, []string{"-table", "2", "-format", "csv", "-metrics", filepath.Join(bindir, "m2.json"), "-faults", "write.metrics:werr"}, "injected permanent failure"},

		{"mfusim zero scale", mfusim, []string{"-machine", "cray", "-loops", "1", "-scale", "0"}, "at least 1"},
		{"mfusim scale with tracein", mfusim, []string{"-tracein", corruptTrace, "-scale", "10"}, "conflicts"},
		{"mfusim scale on vector machine", mfusim, []string{"-machine", "vector", "-scale", "10"}, "does not apply"},
		{"mfusim scale needs extrapolate", mfusim, []string{"-machine", "cray", "-loops", "1", "-scale", "100000"}, "-extrapolate"},
		{"mfusim scale unreachable", mfusim, []string{"-machine", "cray", "-loops", "13", "-scale", "100000", "-extrapolate"}, "analytic extension"},
		{"mfutables zero scale", mfutables, []string{"-scale", "0"}, "at least 1"},

		{"mfusim timeline-window without timeline", mfusim, []string{"-timeline-window", "40"}, "-timeline-window needs -timeline"},
		{"mfusim trace-events without trace", mfusim, []string{"-trace-events", "100"}, "-trace-events needs -trace or -timeline"},
		{"mfusim negative trace-events", mfusim, []string{"-trace", "x.json", "-trace-events", "-1"}, "negative"},
		{"mfutables trace-events without trace-dir", mfutables, []string{"-trace-events", "100"}, "-trace-events needs -trace-dir"},
		{"mfutables negative trace-events", mfutables, []string{"-trace-dir", "d", "-trace-events", "-1"}, "negative"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out, err := exec.Command(c.bin, c.args...).CombinedOutput()
			if err == nil {
				t.Fatalf("%s %v exited 0; output:\n%s", filepath.Base(c.bin), c.args, out)
			}
			if _, ok := err.(*exec.ExitError); !ok {
				t.Fatalf("%s %v did not run: %v", filepath.Base(c.bin), c.args, err)
			}
			if !strings.Contains(string(out), c.want) {
				t.Errorf("%s %v output missing %q:\n%s", filepath.Base(c.bin), c.args, c.want, out)
			}
		})
	}

	// An over-budget table run still renders every healthy value: the
	// diagnostic summary goes to stderr and names the failed cells.
	t.Run("mfutables degrades gracefully", func(t *testing.T) {
		cmd := exec.Command(mfutables, "-table", "1", "-maxcycles", "50")
		var stdout, stderr strings.Builder
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		if err := cmd.Run(); err == nil {
			t.Fatal("over-budget mfutables exited 0")
		}
		if !strings.Contains(stdout.String(), "Table 1.") {
			t.Errorf("table skeleton missing from stdout:\n%s", stdout.String())
		}
		if !strings.Contains(stderr.String(), "cell(s) failed") ||
			!strings.Contains(stderr.String(), "some cells failed") {
			t.Errorf("stderr missing diagnostic summary:\n%s", stderr.String())
		}
	})

	// And a generous budget must not disturb the healthy path.
	t.Run("mfutables healthy under budget", func(t *testing.T) {
		out, err := exec.Command(mfutables, "-table", "1", "-maxcycles", "100000000", "-stallcycles", "1000000").CombinedOutput()
		if err != nil {
			t.Fatalf("healthy guarded run failed: %v\n%s", err, out)
		}
		if strings.Contains(string(out), "ERR") {
			t.Errorf("healthy guarded run rendered ERR cells:\n%s", out)
		}
	})
}

// TestSweepE2E drives mfutables -sweep end to end: a small extrapolated
// design-space sweep renders a Pareto frontier in every format, and a
// second run against the same -checkpoint journal simulates nothing.
func TestSweepE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end CLI test skipped in -short mode")
	}
	bindir := t.TempDir()
	bin := filepath.Join(bindir, "mfutables")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/mfutables").CombinedOutput(); err != nil {
		t.Fatalf("building mfutables: %v\n%s", err, out)
	}
	spec := filepath.Join(bindir, "sweep.json")
	if err := os.WriteFile(spec, []byte(`{
		"base": {"kind": "ooo", "mem": 11, "br": 5},
		"axes": {"width": [1, 2, 4], "bus": ["nbus", "1bus"]},
		"scale": 50000, "extrapolate": true
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	journal := filepath.Join(bindir, "points.jsonl")

	run := func(args ...string) string {
		t.Helper()
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err != nil {
			t.Fatalf("mfutables %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	out := run("-sweep", spec, "-checkpoint", journal)
	if !strings.Contains(out, "Pareto frontier") || !strings.Contains(out, "frontier agreement") {
		t.Fatalf("sweep text report missing sections:\n%s", out)
	}

	// JSON form decodes into the report document, and the journal
	// resume serves every point without simulation.
	out = run("-sweep", spec, "-checkpoint", journal, "-format", "json")
	var rep struct {
		Deduped     int   `json:"deduped"`
		Simulated   int   `json:"simulated"`
		FromJournal int   `json:"fromjournal"`
		FrontierIdx []int `json:"frontier"`
		Points      []struct {
			Rate float64 `json:"rate"`
		} `json:"points"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("decoding sweep JSON: %v\n%.400s", err, out)
	}
	if rep.Simulated != 0 || rep.FromJournal != rep.Deduped || rep.Deduped != 6 {
		t.Fatalf("resume tallies wrong: %+v", rep)
	}

	// CSV: one row per point plus the header.
	out = run("-sweep", spec, "-checkpoint", journal, "-format", "csv")
	if !strings.HasPrefix(out, "cost,rate,model,") || strings.Count(out, "\n") != 7 {
		t.Fatalf("sweep CSV unexpected:\n%s", out)
	}
}
