package mfup_test

import (
	"testing"
	"time"

	"mfup"
	"mfup/internal/core"
	"mfup/internal/loops"
	"mfup/internal/stats"
	"mfup/internal/tables"
	"mfup/internal/trace"
)

// The benchmarks regenerate each paper table (BenchmarkTable1-8),
// reporting the table's headline issue rate as a custom metric, and
// additionally measure raw simulator throughput and the ablations
// called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// The printable tables themselves come from cmd/mfutables.

// reportHeadline attaches a table's most representative cell as a
// custom benchmark metric so regressions in *results* (not just
// speed) are visible in benchmark diffs.
func reportHeadline(b *testing.B, t *tables.Table, row, col int, name string) {
	b.Helper()
	b.ReportMetric(t.Rows[row].Rates[col], name)
}

func BenchmarkTable1(b *testing.B) {
	var t *tables.Table
	for i := 0; i < b.N; i++ {
		t = tables.Table1()
	}
	// Scalar CRAY-like on M11BR5: the base machine of the study.
	reportHeadline(b, t, 3, 0, "scalar-cray-M11BR5")
}

func BenchmarkTable2(b *testing.B) {
	var t *tables.Table
	for i := 0; i < b.N; i++ {
		t = tables.Table2()
	}
	// Scalar Pure actual limit on M11BR5 (the paper's 1.29 analogue).
	reportHeadline(b, t, 0, 2, "scalar-pure-actual-M11BR5")
}

func BenchmarkTable3(b *testing.B) {
	var t *tables.Table
	for i := 0; i < b.N; i++ {
		t = tables.Table3()
	}
	reportHeadline(b, t, 7, 0, "scalar-8stations-M11BR5-NBus")
}

func BenchmarkTable4(b *testing.B) {
	var t *tables.Table
	for i := 0; i < b.N; i++ {
		t = tables.Table4()
	}
	reportHeadline(b, t, 7, 0, "vector-8stations-M11BR5-NBus")
}

func BenchmarkTable5(b *testing.B) {
	var t *tables.Table
	for i := 0; i < b.N; i++ {
		t = tables.Table5()
	}
	reportHeadline(b, t, 7, 0, "scalar-ooo-8stations-M11BR5-NBus")
}

func BenchmarkTable6(b *testing.B) {
	var t *tables.Table
	for i := 0; i < b.N; i++ {
		t = tables.Table6()
	}
	reportHeadline(b, t, 7, 0, "vector-ooo-8stations-M11BR5-NBus")
}

func BenchmarkTable7(b *testing.B) {
	var t *tables.Table
	for i := 0; i < b.N; i++ {
		t = tables.Table7()
	}
	// 4 units, RUU 40, N-Bus on M11BR5 (the paper's 0.83 analogue).
	reportHeadline(b, t, 3, 6, "scalar-ruu40-4units-M11BR5-NBus")
}

func BenchmarkTable8(b *testing.B) {
	var t *tables.Table
	for i := 0; i < b.N; i++ {
		t = tables.Table8()
	}
	reportHeadline(b, t, 5, 6, "vector-ruu100-4units-M11BR5-NBus")
}

// ---------------------------------------------------------------------
// Simulator throughput: dynamic instructions simulated per second for
// each machine family, over the full 14-loop suite.

func allTraces() []*trace.Trace {
	var ts []*trace.Trace
	for _, k := range loops.All() {
		ts = append(ts, k.SharedTrace())
	}
	return ts
}

func benchMachine(b *testing.B, m core.Machine) {
	b.Helper()
	ts := allTraces()
	var ops int64
	for _, t := range ts {
		ops += int64(t.Len())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range ts {
			m.Run(t)
		}
	}
	b.ReportMetric(float64(ops*int64(b.N))/b.Elapsed().Seconds(), "instrs/s")
}

func BenchmarkSimulatorSimple(b *testing.B) {
	benchMachine(b, core.NewBasic(core.Simple, core.M11BR5))
}

func BenchmarkSimulatorCRAYLike(b *testing.B) {
	benchMachine(b, core.NewBasic(core.CRAYLike, core.M11BR5))
}

func BenchmarkSimulatorMultiIssue(b *testing.B) {
	benchMachine(b, core.NewMultiIssue(core.M11BR5.WithIssue(4, mfup.BusN)))
}

func BenchmarkSimulatorOOO(b *testing.B) {
	benchMachine(b, core.NewMultiIssueOOO(core.M11BR5.WithIssue(4, mfup.BusN)))
}

func BenchmarkSimulatorRUU(b *testing.B) {
	benchMachine(b, core.NewRUU(core.M11BR5.WithIssue(4, mfup.BusN).WithRUU(50)))
}

func BenchmarkTraceGeneration(b *testing.B) {
	ks := loops.All()
	for i := 0; i < b.N; i++ {
		for _, k := range ks {
			if _, err := k.Trace(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkDataflowLimits(b *testing.B) {
	ts := allTraces()
	lat := core.M11BR5.Latencies()
	var v float64
	for i := 0; i < b.N; i++ {
		for _, t := range ts {
			v = mfup.ComputeLimits(t, core.M11BR5, mfup.Pure).Actual
		}
	}
	_ = lat
	b.ReportMetric(v, "last-actual-limit")
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §5).

// BenchmarkAblationXBarVsNBus quantifies the paper's remark that the
// full-crossbar results are "essentially the same" as N-Bus.
func BenchmarkAblationXBarVsNBus(b *testing.B) {
	ts := allTraces()
	var xbar, nbus float64
	for i := 0; i < b.N; i++ {
		var rx, rn []float64
		mx := core.NewMultiIssue(core.M11BR5.WithIssue(4, mfup.XBar))
		mn := core.NewMultiIssue(core.M11BR5.WithIssue(4, mfup.BusN))
		for _, t := range ts {
			rx = append(rx, mx.Run(t).IssueRate())
			rn = append(rn, mn.Run(t).IssueRate())
		}
		xbar, nbus = stats.HarmonicMean(rx), stats.HarmonicMean(rn)
	}
	b.ReportMetric(xbar, "xbar-rate")
	b.ReportMetric(nbus, "nbus-rate")
}

// BenchmarkAblationMemoryVsPipelining separates the two §3 levers:
// interleaving memory alone (NonSegmented over SerialMemory) vs
// pipelining the functional units alone (CRAYLike over NonSegmented).
func BenchmarkAblationMemoryVsPipelining(b *testing.B) {
	ts := allTraces()
	var serial, interleaved, pipelined float64
	for i := 0; i < b.N; i++ {
		rate := func(o core.Organization) float64 {
			m := core.NewBasic(o, core.M11BR5)
			var rs []float64
			for _, t := range ts {
				rs = append(rs, m.Run(t).IssueRate())
			}
			return stats.HarmonicMean(rs)
		}
		serial = rate(core.SerialMemory)
		interleaved = rate(core.NonSegmented)
		pipelined = rate(core.CRAYLike)
	}
	b.ReportMetric(interleaved/serial, "interleave-speedup")
	b.ReportMetric(pipelined/interleaved, "pipeline-speedup")
}

// BenchmarkAblationRUUBankPartitioning contrasts the restricted
// N-Bus RUU (paper) with the single shared pool of the 1-Bus design
// at equal total size.
func BenchmarkAblationRUUBankPartitioning(b *testing.B) {
	ts := allTraces()
	var banked, shared float64
	for i := 0; i < b.N; i++ {
		mb := core.NewRUU(core.M11BR5.WithIssue(4, mfup.BusN).WithRUU(40))
		ms := core.NewRUU(core.M11BR5.WithIssue(4, mfup.Bus1).WithRUU(40))
		var rb, rs []float64
		for _, t := range ts {
			rb = append(rb, mb.Run(t).IssueRate())
			rs = append(rs, ms.Run(t).IssueRate())
		}
		banked, shared = stats.HarmonicMean(rb), stats.HarmonicMean(rs)
	}
	b.ReportMetric(banked, "nbus-banked-rate")
	b.ReportMetric(shared, "1bus-shared-rate")
}

// BenchmarkAblationMemoryBanks quantifies what the ideal interleaved
// memory assumes: with 16 banks (the CRAY-1's configuration) rates
// are near-ideal; with 4 banks conflicts bite.
func BenchmarkAblationMemoryBanks(b *testing.B) {
	ts := allTraces()
	rates := map[int]float64{}
	for i := 0; i < b.N; i++ {
		for _, banks := range []int{0, 16, 4} {
			m := core.NewBasic(core.CRAYLike, core.M11BR5.WithMemBanks(banks))
			var rs []float64
			for _, t := range ts {
				rs = append(rs, m.Run(t).IssueRate())
			}
			rates[banks] = stats.HarmonicMean(rs)
		}
	}
	b.ReportMetric(rates[0], "ideal-rate")
	b.ReportMetric(rates[16], "banks16-rate")
	b.ReportMetric(rates[4], "banks4-rate")
}

// BenchmarkAblationSoftwareScheduling measures the §6 "software code
// scheduling" lever: static list scheduling of the kernels vs. the
// original codings, on the single-issue CRAY-like machine (where it
// pays) and on an RUU machine (where hardware dependency resolution
// has already claimed most of it).
func BenchmarkAblationSoftwareScheduling(b *testing.B) {
	type variant struct{ base, scheduled []*trace.Trace }
	var v variant
	for _, k := range loops.All() {
		v.base = append(v.base, k.SharedTrace())
		s := mfup.ScheduleProgram(k.Program(), core.M11BR5)
		m := k.NewMachine()
		tr, err := mfup.TraceProgram(m, s)
		if err != nil {
			b.Fatal(err)
		}
		if err := k.Validate(m); err != nil {
			b.Fatal(err)
		}
		v.scheduled = append(v.scheduled, tr)
	}
	hm := func(m core.Machine, ts []*trace.Trace) float64 {
		var rs []float64
		for _, t := range ts {
			rs = append(rs, m.Run(t).IssueRate())
		}
		return stats.HarmonicMean(rs)
	}
	var crayBase, craySched, ruuBase, ruuSched float64
	for i := 0; i < b.N; i++ {
		cray := core.NewBasic(core.CRAYLike, core.M11BR5)
		ruu := core.NewRUU(core.M11BR5.WithIssue(2, mfup.BusN).WithRUU(40))
		crayBase, craySched = hm(cray, v.base), hm(cray, v.scheduled)
		ruuBase, ruuSched = hm(ruu, v.base), hm(ruu, v.scheduled)
	}
	b.ReportMetric(craySched/crayBase, "cray-sched-speedup")
	b.ReportMetric(ruuSched/ruuBase, "ruu-sched-speedup")
}

// BenchmarkAblationPerfectBranches measures how much of the remaining
// blockage is control dependences: the same machines with ideal
// branch prediction (an upper bound the paper deliberately does not
// assume).
func BenchmarkAblationPerfectBranches(b *testing.B) {
	ts := allTraces()
	hm := func(m core.Machine) float64 {
		var rs []float64
		for _, t := range ts {
			rs = append(rs, m.Run(t).IssueRate())
		}
		return stats.HarmonicMean(rs)
	}
	var crayGain, ruuGain float64
	for i := 0; i < b.N; i++ {
		crayGain = hm(core.NewBasic(core.CRAYLike, core.M11BR5.WithPerfectBranches())) /
			hm(core.NewBasic(core.CRAYLike, core.M11BR5))
		ruuGain = hm(core.NewRUU(core.M11BR5.WithIssue(4, mfup.BusN).WithRUU(50).WithPerfectBranches())) /
			hm(core.NewRUU(core.M11BR5.WithIssue(4, mfup.BusN).WithRUU(50)))
	}
	b.ReportMetric(crayGain, "cray-speedup")
	b.ReportMetric(ruuGain, "ruu-speedup")
}

// BenchmarkSection33 regenerates the supplementary dependency-
// resolution comparison (§3.3 of the paper, quoted in prose there).
func BenchmarkSection33(b *testing.B) {
	var t *tables.Table
	for i := 0; i < b.N; i++ {
		t = tables.SectionThreeThree()
	}
	reportHeadline(b, t, 3, 0, "scalar-ruu1-M11BR5")
}

// BenchmarkAblationVectorVsSuperscalar measures the extension
// comparison: the vectorized kernels on the vector-unit machine vs.
// the same computations as scalar code on the paper's strongest
// multiple-issue machine. Reported metrics are mean cycle ratios.
func BenchmarkAblationVectorVsSuperscalar(b *testing.B) {
	vec := core.NewVector(core.M11BR5)
	ruu := core.NewRUU(core.M11BR5.WithIssue(4, mfup.BusN).WithRUU(100))
	cray := core.NewBasic(core.CRAYLike, core.M11BR5)
	var vsCray, vsRUU float64
	for i := 0; i < b.N; i++ {
		vsCray, vsRUU = 0, 0
		vks := loops.VectorKernels()
		for _, vk := range vks {
			sk, err := loops.Get(vk.Number)
			if err != nil {
				b.Fatal(err)
			}
			vtr := vk.MustTrace()
			v := float64(vec.Run(vtr).Cycles)
			vsCray += float64(cray.Run(sk.SharedTrace()).Cycles) / v
			vsRUU += float64(ruu.Run(sk.SharedTrace()).Cycles) / v
		}
		vsCray /= float64(len(vks))
		vsRUU /= float64(len(vks))
	}
	b.ReportMetric(vsCray, "vector-speedup-vs-cray")
	b.ReportMetric(vsRUU, "vector-speedup-vs-ruu")
}

// BenchmarkTablesParallel measures the worker-pool scheduler: each
// iteration regenerates all eight tables once serially and once with
// all cores, and reports the wall-clock ratio as "speedup". On a
// single-core host the ratio is ~1.0 (the pool adds no overhead); it
// approaches the core count on multicore hosts, since every
// (machine, configuration, trace) cell is independent.
func BenchmarkTablesParallel(b *testing.B) {
	defer tables.SetParallel(0)
	var serial, parallel time.Duration
	for i := 0; i < b.N; i++ {
		tables.SetParallel(1)
		start := time.Now()
		tables.All()
		serial += time.Since(start)

		tables.SetParallel(0)
		start = time.Now()
		tables.All()
		parallel += time.Since(start)
	}
	b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup")
}

// Steady-state extrapolation: the engine's O(1)-in-iterations claim,
// and the cost of the always-safe wrapper when it cannot engage.

// BenchmarkExtrapolation simulates LFK 1 at one billion iterations
// through the extrapolation engine (4000 materialized + ~1e9 virtual).
// "speedup" is the ratio against full simulation at the same length,
// estimated from measured full-simulation throughput on the largest
// materializable trace — running 1e9 iterations directly would take
// hours, which is precisely the point.
func BenchmarkExtrapolation(b *testing.B) {
	const n = 1_000_000_000
	k, extra, err := loops.ForScale(1, n)
	if err != nil {
		b.Fatal(err)
	}
	vw, err := loops.VirtualWindows(k, extra)
	if err != nil {
		b.Fatal(err)
	}
	tr := k.SharedTrace()
	full := core.NewBasic(core.CRAYLike, core.M11BR5)
	const fullRuns = 3
	var fullInstr int64
	start := time.Now()
	for i := 0; i < fullRuns; i++ {
		fullInstr = full.Run(tr).Instructions
	}
	fullPerInstr := time.Since(start).Seconds() / float64(fullRuns) / float64(fullInstr)

	var last core.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := core.Extrapolate(core.NewBasic(core.CRAYLike, core.M11BR5)).
			WithVirtual(map[string]int64{tr.Name: vw})
		r, err := e.RunChecked(tr, core.DefaultLimits())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.Instructions), "instrs")
	fullEstimate := fullPerInstr * float64(last.Instructions)
	b.ReportMetric(fullEstimate/(b.Elapsed().Seconds()/float64(b.N)), "speedup")
}

// BenchmarkExtrapolationOverhead measures the wrapper on a trace it
// can never extrapolate (LFK 13, data-dependent control flow), against
// the bare machine. "overhead" is the wrapped/bare time ratio: the
// fallback path must stay at seed speed (~1.0), since the engine
// decides from the cached period analysis before simulating anything.
func BenchmarkExtrapolationOverhead(b *testing.B) {
	k, err := loops.Get(13)
	if err != nil {
		b.Fatal(err)
	}
	tr := k.SharedTrace()
	tr.Prepared() // charge the one-time decode to neither side
	var bare, wrapped time.Duration
	m := core.NewBasic(core.CRAYLike, core.M11BR5)
	e := core.Extrapolate(core.NewBasic(core.CRAYLike, core.M11BR5))
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := m.RunChecked(tr, core.Limits{}); err != nil {
			b.Fatal(err)
		}
		bare += time.Since(start)

		start = time.Now()
		if _, err := e.RunChecked(tr, core.Limits{}); err != nil {
			b.Fatal(err)
		}
		wrapped += time.Since(start)
	}
	b.ReportMetric(wrapped.Seconds()/bare.Seconds(), "overhead")
}
