package mfup_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeDaemonEndToEnd drives the mfud daemon as real processes
// through the acceptance drills: kill -9 and warm restart with
// byte-identical replay, overload shedding with Retry-After, graceful
// SIGTERM drain, and a short chaos soak with the load generator.
// Skipped under -short (it shells out to the Go toolchain and runs
// real daemons).
func TestServeDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon end-to-end test skipped in -short mode")
	}
	bindir := t.TempDir()
	build := func(name string) string {
		t.Helper()
		bin := filepath.Join(bindir, name)
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+name).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
		return bin
	}
	mfud := build("mfud")
	mfuload := build("mfuload")

	t.Run("KillRestartRepliesByteIdentically", func(t *testing.T) {
		cache := filepath.Join(t.TempDir(), "cache.jsonl")
		d := startDaemon(t, mfud, "-cache", cache)

		// Complete one job cold and keep its exact bytes.
		spec := `{"machine":{"kind":"cray"},"workload":{"loops":"1,2"}}`
		id, cold := submitWait(t, d.url, spec)
		if len(cold) == 0 {
			t.Fatal("cold run returned no result")
		}
		// Queue slower work so the kill lands mid-simulation, then
		// SIGKILL: no drain, no flush beyond completed appends, the
		// worst crash there is.
		for _, loops := range []string{"all", "scalar"} {
			postAsync(t, d.url, fmt.Sprintf(`{"machine":{"kind":"ruu","units":4,"ruu":40},"workload":{"loops":"%s"}}`, loops))
		}
		d.kill(t)

		// A fresh daemon over the same journal: the completed job must
		// replay from the journal, byte-identically, without admission.
		d2 := startDaemon(t, mfud, "-cache", cache)
		warm := getJob(t, d2.url, id)
		if warm.Status != "done" || !warm.Cached {
			t.Fatalf("warm GET after kill -9: %+v", warm)
		}
		if !bytes.Equal(cold, warm.Result) {
			t.Errorf("restart changed result bytes:\ncold: %s\nwarm: %s", cold, warm.Result)
		}
		var st struct {
			Admitted    int64 `json:"admitted"`
			CacheLoaded int   `json:"cache_loaded"`
		}
		getJSON(t, d2.url+"/v1/stats", &st)
		if st.CacheLoaded < 1 {
			t.Errorf("cache_loaded = %d after restart, want >= 1", st.CacheLoaded)
		}
		if st.Admitted != 0 {
			t.Errorf("warm replay admitted %d jobs", st.Admitted)
		}
		// Resubmitting the same spec — respelled — also hits the journal.
		_, warm2 := submitWait(t, d2.url, `{"workload":{"loops":"2,1"},"machine":{"kind":"CRAY","mem":11,"br":5}}`)
		if !bytes.Equal(cold, warm2) {
			t.Errorf("respelled resubmit diverged:\ncold: %s\nwarm: %s", cold, warm2)
		}
		d2.terminate(t) // clean SIGTERM drain must exit 0
	})

	t.Run("OverloadShedsWithRetryAfter", func(t *testing.T) {
		d := startDaemon(t, mfud, "-rate", "2", "-burst", "1", "-queue", "2", "-workers", "1")
		shed := 0
		for i := 0; i < 20; i++ {
			spec := fmt.Sprintf(`{"machine":{"kind":"simple"},"workload":{"loops":"%d"}}`, 1+i%14)
			resp, err := http.Post(d.url+"/v1/jobs", "application/json", strings.NewReader(spec))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusAccepted:
			case http.StatusTooManyRequests:
				shed++
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
			default:
				t.Errorf("request %d: status %d", i, resp.StatusCode)
			}
		}
		if shed == 0 {
			t.Error("20 rapid submissions at rate 2 shed nothing")
		}
		// The daemon survived its own overload: health stays green.
		resp, err := http.Get(d.url + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("healthz after overload: %d", resp.StatusCode)
		}
		d.terminate(t)
	})

	t.Run("ChaosSoakVerdictClean", func(t *testing.T) {
		cache := filepath.Join(t.TempDir(), "cache.jsonl")
		d := startDaemon(t, mfud, "-cache", cache,
			"-faults", "serve.accept:err:transient:after=5:times=3", "-fault-seed", "7")
		report := filepath.Join(t.TempDir(), "report.json")
		out, err := exec.Command(mfuload, "-addr", d.url, "-duration", "3s",
			"-rate", "40", "-clients", "4", "-chaos", "-report", report).CombinedOutput()
		if err != nil {
			t.Fatalf("mfuload: %v\n%s", err, out)
		}
		var rep struct {
			Requests int      `json:"requests"`
			Done     int      `json:"done"`
			Cached   int      `json:"cached"`
			Faulted  int      `json:"faulted"`
			Corrupt  []string `json:"corrupt_keys"`
		}
		b, err := os.ReadFile(report)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(b, &rep); err != nil {
			t.Fatalf("report %s: %v", b, err)
		}
		if rep.Requests == 0 || rep.Done+rep.Cached == 0 {
			t.Errorf("soak did no useful work: %+v", rep)
		}
		if rep.Faulted == 0 {
			t.Errorf("fault plan armed but no injected faults observed: %+v", rep)
		}
		if len(rep.Corrupt) != 0 {
			t.Errorf("corruption under chaos: %v", rep.Corrupt)
		}
		// The mix resubmits identical jobs, so the cache must have hits.
		if rep.Cached == 0 {
			t.Errorf("no cache hits across a repeated job mix: %+v", rep)
		}
		d.terminate(t)
	})
}

// daemon is one running mfud process.
type daemon struct {
	cmd *exec.Cmd
	url string
	out *bytes.Buffer
}

// startDaemon launches mfud on a free port and waits for /healthz.
func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	var out bytes.Buffer
	cmd := exec.Command(bin, append([]string{"-addr", addr}, args...)...)
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, url: "http://" + addr, out: &out}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(d.url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return d
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became healthy\n%s", out.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// kill sends SIGKILL — the crash drill — and reaps the process.
func (d *daemon) kill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d.cmd.Wait()
}

// terminate sends SIGTERM and requires a clean drain: exit status 0.
func (d *daemon) terminate(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("SIGTERM drain exited uncleanly: %v\n%s", err, d.out.String())
		}
	case <-time.After(30 * time.Second):
		d.cmd.Process.Kill()
		t.Errorf("daemon did not drain within 30s of SIGTERM\n%s", d.out.String())
	}
}

type jobReply struct {
	ID     string          `json:"id"`
	Status string          `json:"status"`
	Cached bool            `json:"cached"`
	Result json.RawMessage `json:"result"`
	Error  string          `json:"error"`
}

// submitWait posts a job with ?wait=1 and returns its id and result
// bytes, failing the test on anything but a completed job.
func submitWait(t *testing.T, base, spec string) (string, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs?wait=1", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr jobReply
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || jr.Status != "done" {
		t.Fatalf("submit %s: %d %+v", spec, resp.StatusCode, jr)
	}
	return jr.ID, jr.Result
}

// postAsync fires a job without waiting.
func postAsync(t *testing.T, base, spec string) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit %s: %d", spec, resp.StatusCode)
	}
}

// getJob fetches one job document.
func getJob(t *testing.T, base, id string) jobReply {
	t.Helper()
	var jr jobReply
	getJSON(t, base+"/v1/jobs/"+id, &jr)
	return jr
}

// getJSON fetches and decodes one endpoint.
func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}
