package machdef

import (
	"path/filepath"
	"strings"
	"testing"

	"mfup/internal/bus"
	"mfup/internal/core"
	"mfup/internal/loops"
)

// TestGoldenSpecsCompile parses each of the ten golden testdata specs
// and checks it compiles to the machine it names.
func TestGoldenSpecsCompile(t *testing.T) {
	wantName := map[string]string{
		"simple":     "Simple",
		"serialmem":  "SerialMemory",
		"nonseg":     "NonSegmented",
		"cray":       "CRAY-like",
		"scoreboard": "Scoreboard",
		"tomasulo":   "Tomasulo(4 stations/unit)",
		"multi":      "MultiIssue(4,N-Bus)",
		"ooo":        "MultiIssueOOO(4,N-Bus)",
		"ruu":        "RUU(2 units, 50 entries, N-Bus)",
		"vector":     "Vector",
	}
	for kind, want := range wantName {
		s, err := ParseFile(filepath.Join("testdata", kind+".json"))
		if err != nil {
			t.Fatalf("%s.json: %v", kind, err)
		}
		m, err := s.New()
		if err != nil {
			t.Fatalf("%s.json: New: %v", kind, err)
		}
		if m.Name() != want {
			t.Errorf("%s.json: built %q, want %q", kind, m.Name(), want)
		}
	}
}

// TestDifferentialAgainstDirectConstructors runs each golden kind,
// across the paper's four machine variations, both ways — via machdef
// and via the direct core constructor — and demands identical cycle
// counts. This is the proof that the declarative layer is a faithful
// re-expression of the hand-built configurations.
func TestDifferentialAgainstDirectConstructors(t *testing.T) {
	if testing.Short() {
		t.Skip("differential matrix is not short")
	}
	k, err := loops.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	tr := k.SharedTrace()
	vk, err := loops.VectorKernel(1)
	if err != nil {
		t.Fatal(err)
	}
	vtr := vk.SharedTrace()

	direct := map[string]func(core.Config) (core.Machine, error){
		"simple":     func(c core.Config) (core.Machine, error) { return core.NewBasicChecked(core.Simple, c) },
		"serialmem":  func(c core.Config) (core.Machine, error) { return core.NewBasicChecked(core.SerialMemory, c) },
		"nonseg":     func(c core.Config) (core.Machine, error) { return core.NewBasicChecked(core.NonSegmented, c) },
		"cray":       func(c core.Config) (core.Machine, error) { return core.NewBasicChecked(core.CRAYLike, c) },
		"scoreboard": core.NewScoreboardChecked,
		"tomasulo": func(c core.Config) (core.Machine, error) {
			return core.NewTomasuloChecked(c.WithRUU(4))
		},
		"multi": func(c core.Config) (core.Machine, error) {
			return core.NewMultiIssueChecked(c.WithIssue(4, bus.BusN))
		},
		"ooo": func(c core.Config) (core.Machine, error) {
			return core.NewMultiIssueOOOChecked(c.WithIssue(4, bus.BusN))
		},
		"ruu": func(c core.Config) (core.Machine, error) {
			return core.NewRUUChecked(c.WithIssue(2, bus.BusN).WithRUU(50))
		},
		"vector": core.NewVectorChecked,
	}
	for kind, mk := range direct {
		for _, base := range core.BaseConfigs() {
			s, err := ParseFile(filepath.Join("testdata", kind+".json"))
			if err != nil {
				t.Fatal(err)
			}
			s.Mem, s.Br = base.MemLatency, base.BranchLatency
			if s, err = Canonicalize(s); err != nil {
				t.Fatalf("%s %s: %v", kind, base.Name(), err)
			}
			declared, err := s.New()
			if err != nil {
				t.Fatalf("%s %s: declarative: %v", kind, base.Name(), err)
			}
			reference, err := mk(base)
			if err != nil {
				t.Fatalf("%s %s: direct: %v", kind, base.Name(), err)
			}
			workload := tr
			if kind == "vector" {
				workload = vtr
			}
			got := declared.Run(workload)
			want := reference.Run(workload)
			if got.Cycles != want.Cycles || got.Instructions != want.Instructions {
				t.Errorf("%s %s: declarative %d cycles / %d instrs, direct %d / %d",
					kind, base.Name(), got.Cycles, got.Instructions, want.Cycles, want.Instructions)
			}
		}
	}
}

// TestCanonicalizeDefaults checks defaults are spelled out and
// ignored knobs zeroed, so equivalent specs share one key.
func TestCanonicalizeDefaults(t *testing.T) {
	terse, err := Canonicalize(Spec{Kind: "CRAY "})
	if err != nil {
		t.Fatal(err)
	}
	spelled, err := Canonicalize(Spec{Kind: "cray", Mem: 11, Br: 5, RUU: 50, Stations: 4, Width: 1})
	if err != nil {
		t.Fatal(err)
	}
	if terse.Key() != spelled.Key() {
		t.Errorf("equivalent specs canonicalize apart:\n  %+v\n  %+v", terse, spelled)
	}
	if terse.Mem != 11 || terse.Br != 5 || terse.RUU != 0 || terse.Width != 0 {
		t.Errorf("canonical cray = %+v", terse)
	}

	// A no-op override and a single-copy replication vanish.
	noop, err := Canonicalize(Spec{Kind: "cray", FULat: map[string]int{"FloatMul": 7}, FUCount: map[string]int{"FloatAdd": 1}})
	if err != nil {
		t.Fatal(err)
	}
	if noop.FULat != nil || noop.FUCount != nil {
		t.Errorf("no-op unit maps survived canonicalization: %+v", noop)
	}
	if noop.Key() != terse.Key() {
		t.Error("no-op unit maps changed the content key")
	}

	// A crossbar with one bus per station is spelled without Buses.
	xb, err := Canonicalize(Spec{Kind: "multi", Width: 4, Bus: "xbar", Buses: 4})
	if err != nil {
		t.Fatal(err)
	}
	if xb.Buses != 0 {
		t.Errorf("default-width crossbar kept buses = %d", xb.Buses)
	}
}

// TestRejectionTable exercises every out-of-range knob and checks for
// a one-line diagnostic naming it.
func TestRejectionTable(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string // substring of the one-line diagnostic
	}{
		{"unknown kind", Spec{Kind: "quantum"}, `unknown machine kind "quantum"`},
		{"empty kind", Spec{}, "unknown machine kind"},
		{"mem zero", Spec{Kind: "cray", Mem: -1}, "memory access time"},
		{"br negative", Spec{Kind: "cray", Br: -2}, "branch execution time"},
		{"width zero", Spec{Kind: "multi", Width: -1}, "need at least one issue station"},
		{"width on single-issue", Spec{Kind: "cray", Width: 2}, "single-issue"},
		{"bad bus", Spec{Kind: "multi", Bus: "tokenring"}, "unknown bus kind"},
		{"xbar on ruu", Spec{Kind: "ruu", Bus: "xbar"}, "nbus or 1bus"},
		{"buses negative", Spec{Kind: "multi", Bus: "xbar", Buses: -1}, "cannot be negative"},
		{"buses on nbus", Spec{Kind: "multi", Bus: "nbus", Buses: 2}, "only the xbar"},
		{"ruu zero entries", Spec{Kind: "ruu", RUU: -1}, "at least one RUU entry"},
		{"ruu below width", Spec{Kind: "ruu", Width: 4, RUU: 2}, "at least as many RUU entries"},
		{"stations zero", Spec{Kind: "tomasulo", Stations: -1}, "at least one reservation station"},
		{"banks negative", Spec{Kind: "cray", MemBanks: -3}, "bank count cannot be negative"},
		{"fulat unknown unit", Spec{Kind: "cray", FULat: map[string]int{"Warp": 3}}, `unknown functional-unit class "Warp"`},
		{"fulat zero", Spec{Kind: "cray", FULat: map[string]int{"FloatMul": 0}}, "at least 1 cycle"},
		{"fulat memory", Spec{Kind: "cray", FULat: map[string]int{"Memory": 3}}, "machine parameter"},
		{"fulat branch", Spec{Kind: "cray", FULat: map[string]int{"Branch": 1}}, "machine parameter"},
		{"fucount zero", Spec{Kind: "cray", FUCount: map[string]int{"FloatMul": 0}}, "at least 1"},
		{"fucount negative", Spec{Kind: "cray", FUCount: map[string]int{"FloatMul": -2}}, "at least 1"},
		{"fucount unknown unit", Spec{Kind: "cray", FUCount: map[string]int{"Blender": 2}}, `unknown functional-unit class "Blender"`},
		{"fucount on vector", Spec{Kind: "vector", FUCount: map[string]int{"FloatMul": 2}}, "no functional-unit replication"},
	}
	for _, tc := range cases {
		_, err := Canonicalize(tc.spec)
		if err == nil {
			t.Errorf("%s: accepted %+v", tc.name, tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: diagnostic %q does not mention %q", tc.name, err, tc.want)
		}
		if strings.Contains(err.Error(), "\n") {
			t.Errorf("%s: diagnostic spans lines: %q", tc.name, err)
		}
	}
}

// TestParseRejectsUnknownFields: typos must not silently vanish.
func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"kind": "cray", "wdith": 4}`)); err == nil {
		t.Error("unknown JSON field accepted")
	}
}

// TestKeyDiscriminates: every knob that can change a result must
// change the key.
func TestKeyDiscriminates(t *testing.T) {
	base := Spec{Kind: "multi", Width: 4, Bus: "xbar"}
	variants := []Spec{
		{Kind: "ooo", Width: 4, Bus: "xbar"},
		{Kind: "multi", Width: 8, Bus: "xbar"},
		{Kind: "multi", Width: 4, Bus: "nbus"},
		{Kind: "multi", Width: 4, Bus: "xbar", Buses: 2},
		{Kind: "multi", Width: 4, Bus: "xbar", Mem: 5},
		{Kind: "multi", Width: 4, Bus: "xbar", Br: 2},
		{Kind: "multi", Width: 4, Bus: "xbar", MemBanks: 8},
		{Kind: "multi", Width: 4, Bus: "xbar", FULat: map[string]int{"FloatMul": 4}},
		{Kind: "multi", Width: 4, Bus: "xbar", FUCount: map[string]int{"FloatMul": 2}},
		{Kind: "multi", Width: 4, Bus: "xbar", PerfectBranches: true},
	}
	b, err := Canonicalize(base)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{b.Key(): "base"}
	for i, v := range variants {
		c, err := Canonicalize(v)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if prev, dup := seen[c.Key()]; dup {
			t.Errorf("variant %d collides with %s", i, prev)
		}
		seen[c.Key()] = c.Kind
	}
}

// TestCostMonotonicity: more hardware must cost more, identical specs
// identically.
func TestCostMonotonicity(t *testing.T) {
	c := func(s Spec) float64 {
		cs, err := Canonicalize(s)
		if err != nil {
			t.Fatal(err)
		}
		return cs.Cost()
	}
	narrow := c(Spec{Kind: "multi", Width: 2})
	wide := c(Spec{Kind: "multi", Width: 8})
	if wide <= narrow {
		t.Errorf("8-wide (%g) not dearer than 2-wide (%g)", wide, narrow)
	}
	one := c(Spec{Kind: "cray"})
	two := c(Spec{Kind: "cray", FUCount: map[string]int{"FloatMul": 2}})
	if two <= one {
		t.Errorf("replicated multiplier (%g) not dearer than base (%g)", two, one)
	}
	smallRUU := c(Spec{Kind: "ruu", Width: 2, RUU: 10})
	bigRUU := c(Spec{Kind: "ruu", Width: 2, RUU: 100})
	if bigRUU <= smallRUU {
		t.Errorf("RUU 100 (%g) not dearer than RUU 10 (%g)", bigRUU, smallRUU)
	}
	starved := c(Spec{Kind: "multi", Width: 8, Bus: "xbar", Buses: 2})
	full := c(Spec{Kind: "multi", Width: 8, Bus: "xbar"})
	if starved >= full {
		t.Errorf("2-bus crossbar (%g) not cheaper than 8-bus (%g)", starved, full)
	}
}

// TestNewKnobsChangeTiming: the new design-space knobs must actually
// reach the timing model — a starved crossbar or a slower multiplier
// cannot simulate identically to the base machine.
func TestNewKnobsChangeTiming(t *testing.T) {
	k, err := loops.Get(9) // FloatMul-heavy inner product
	if err != nil {
		t.Fatal(err)
	}
	tr := k.SharedTrace()
	run := func(s Spec) core.Result {
		t.Helper()
		c, err := Canonicalize(s)
		if err != nil {
			t.Fatal(err)
		}
		m, err := c.New()
		if err != nil {
			t.Fatal(err)
		}
		return m.Run(tr)
	}
	base := run(Spec{Kind: "ooo", Width: 8, Bus: "xbar"})
	starved := run(Spec{Kind: "ooo", Width: 8, Bus: "xbar", Buses: 1})
	if starved.Cycles <= base.Cycles {
		t.Errorf("1-bus crossbar (%d cycles) not slower than 8-bus (%d)", starved.Cycles, base.Cycles)
	}
	slowMul := run(Spec{Kind: "cray", FULat: map[string]int{"FloatMul": 20}})
	craybase := run(Spec{Kind: "cray"})
	if slowMul.Cycles <= craybase.Cycles {
		t.Errorf("20-cycle multiplier (%d cycles) not slower than 7-cycle (%d)", slowMul.Cycles, craybase.Cycles)
	}
}
