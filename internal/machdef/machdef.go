// Package machdef is the declarative machine-definition layer: one
// JSON-settable Spec that names any machine the suite can simulate —
// organization kind, memory and branch times, issue width, result-bus
// interconnect and count, RUU/reservation-station buffering, memory
// banking, and per-class functional-unit latency overrides and
// replication — validated with one-line diagnostics, canonicalized to
// a single normal form, content-addressed, priced by a deterministic
// hardware-cost function, and compiled into the concrete constructor
// in internal/core.
//
// The paper's 4x10 machine grid is the degenerate corner of this
// space: the ten golden specs under testdata/ reproduce Tables 1-8 of
// the seed byte-identically, which is the regression proof that the
// declarative layer is a faithful re-expression, not a fork, of the
// hand-built configurations. Everything beyond the grid — wider
// machines, replicated multipliers, starved crossbars — is reached by
// varying Spec fields, which is what the design-space sweep driver
// (internal/dse) enumerates.
package machdef

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"mfup/internal/bus"
	"mfup/internal/cli"
	"mfup/internal/core"
	"mfup/internal/isa"
)

// Spec is the wire form of one machine definition. The zero value of
// every field means "the paper's default"; a canonical Spec (from
// Canonicalize) has defaults spelled out and ignored knobs zeroed.
type Spec struct {
	// Kind: simple | serialmem | nonseg | cray | scoreboard |
	// tomasulo | multi | ooo | ruu | vector.
	Kind string `json:"kind"`

	Mem int `json:"mem,omitempty"` // memory access cycles; default 11
	Br  int `json:"br,omitempty"`  // branch execution cycles; default 5

	// Width is the number of issue stations/units for the
	// multiple-issue kinds (multi, ooo, ruu); default 1.
	Width int `json:"width,omitempty"`

	// Bus: nbus | 1bus | xbar (multi, ooo; ruu takes nbus or 1bus).
	// Default nbus.
	Bus string `json:"bus,omitempty"`

	// Buses sizes the crossbar's shared result-bus capacity
	// independently of Width; 0 = one bus per station. Only the xbar
	// interconnect can have it.
	Buses int `json:"buses,omitempty"`

	// RUU is the Register Update Unit entry count (ruu); default 50.
	RUU int `json:"ruu,omitempty"`

	// Stations is the reservation stations per functional unit
	// (tomasulo); default 4.
	Stations int `json:"stations,omitempty"`

	// MemBanks models B address-interleaved memory banks on the
	// machines with interleaved memory (nonseg, cray, multi, ooo,
	// ruu); 0 = the paper's ideal interleaved memory.
	MemBanks int `json:"membanks,omitempty"`

	// FULat overrides per-class functional-unit latencies by unit
	// name ("FloatMul": 4). Memory and Branch are machine parameters:
	// set Mem/Br instead.
	FULat map[string]int `json:"fulat,omitempty"`

	// FUCount replicates functional-unit classes by unit name
	// ("FloatMul": 2 gives two multipliers). The vector machine has
	// its own datapath and takes no replication.
	FUCount map[string]int `json:"fucount,omitempty"`

	// PerfectBranches is the ideal-prediction ablation.
	PerfectBranches bool `json:"perfectbranches,omitempty"`
}

// kindInfo declares which knobs each machine kind consumes; the rest
// are zeroed by canonicalization so equivalent specs collide.
type kindInfo struct {
	multi    bool // Width/Bus (and Buses under xbar)
	banks    bool // MemBanks
	pool     bool // FUCount (every pool-based machine)
	ruu      bool // RUU size
	stations bool // Tomasulo stations
	xbar     bool // may take the crossbar interconnect
}

var kinds = map[string]kindInfo{
	"simple":     {pool: true},
	"serialmem":  {pool: true},
	"nonseg":     {banks: true, pool: true},
	"cray":       {banks: true, pool: true},
	"scoreboard": {pool: true},
	"tomasulo":   {pool: true, stations: true},
	"multi":      {multi: true, banks: true, pool: true, xbar: true},
	"ooo":        {multi: true, banks: true, pool: true, xbar: true},
	"ruu":        {multi: true, banks: true, pool: true, ruu: true},
	"vector":     {},
}

// Kinds returns the valid Spec.Kind values, sorted.
func Kinds() []string {
	ks := make([]string, 0, len(kinds))
	for k := range kinds {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Error is a structurally invalid machine definition. Each message is
// a single line naming the offending knob and its value.
type Error struct{ Msg string }

func (e *Error) Error() string { return "machdef: " + e.Msg }

func errf(format string, args ...any) error {
	return &Error{Msg: fmt.Sprintf(format, args...)}
}

// Canonicalize validates s and rewrites it into the one normal form
// two equivalent definitions share: kind names lowercased, defaults
// spelled out, knobs the kind ignores zeroed, no-op latency overrides
// and single-copy replications dropped. The canonical form is what
// Key hashes and Config compiles.
func Canonicalize(s Spec) (Spec, error) {
	c := s
	c.Kind = strings.ToLower(strings.TrimSpace(c.Kind))
	info, ok := kinds[c.Kind]
	if !ok {
		return c, errf("unknown machine kind %q (want one of %s)", s.Kind, strings.Join(Kinds(), ", "))
	}

	if c.Mem == 0 {
		c.Mem = 11
	}
	if c.Br == 0 {
		c.Br = 5
	}
	if c.Mem < 1 {
		return c, errf("mem %d: memory access time must be at least 1 cycle", c.Mem)
	}
	if c.Br < 1 {
		return c, errf("br %d: branch execution time must be at least 1 cycle", c.Br)
	}

	if info.multi {
		if c.Width == 0 {
			c.Width = 1
		}
		if c.Width < 1 {
			return c, errf("width %d: need at least one issue station", c.Width)
		}
		if c.Bus == "" {
			c.Bus = "nbus"
		}
		kind, err := cli.ParseBusKind(c.Bus)
		if err != nil {
			return c, &Error{Msg: err.Error()}
		}
		if kind == bus.XBar && !info.xbar {
			return c, errf("bus %q: the %s machine takes nbus or 1bus, not a crossbar", s.Bus, c.Kind)
		}
		c.Bus = canonicalBusName(kind)
		switch {
		case c.Buses < 0:
			return c, errf("buses %d: result-bus count cannot be negative", c.Buses)
		case c.Buses > 0 && kind != bus.XBar:
			return c, errf("buses %d: only the xbar interconnect takes an explicit bus count (%s implies its own)", c.Buses, c.Bus)
		case c.Buses == c.Width && kind == bus.XBar:
			c.Buses = 0 // one bus per station is the default; spell it one way
		}
	} else {
		if c.Width > 1 {
			return c, errf("width %d: the %s machine is single-issue", c.Width, c.Kind)
		}
		c.Width, c.Bus, c.Buses = 0, "", 0
	}

	if info.ruu {
		if c.RUU == 0 {
			c.RUU = 50
		}
		if c.RUU < 1 {
			return c, errf("ruu %d: need at least one RUU entry", c.RUU)
		}
		if c.RUU < c.Width {
			return c, errf("ruu %d: need at least as many RUU entries as issue units (%d)", c.RUU, c.Width)
		}
	} else {
		c.RUU = 0
	}

	if info.stations {
		if c.Stations == 0 {
			c.Stations = 4
		}
		if c.Stations < 1 {
			return c, errf("stations %d: need at least one reservation station per unit", c.Stations)
		}
	} else {
		c.Stations = 0
	}

	if c.MemBanks < 0 {
		return c, errf("membanks %d: bank count cannot be negative", c.MemBanks)
	}
	if !info.banks {
		c.MemBanks = 0
	}

	var err error
	if c.FULat, err = canonicalUnitMap(c.FULat, "fulat", func(u isa.Unit, v int) error {
		if u == isa.Memory || u == isa.Branch {
			return errf("fulat %s: %s latency is the mem/br machine parameter, not an override", u, u)
		}
		if v < 1 {
			return errf("fulat %s: latency %d must be at least 1 cycle", u, v)
		}
		if v == isa.DefaultLatency(u) {
			return errDropEntry // restating the default is a no-op
		}
		return nil
	}); err != nil {
		return c, err
	}
	if !info.pool {
		if len(c.FUCount) > 0 {
			return c, errf("fucount: the %s machine has its own datapath and takes no functional-unit replication", c.Kind)
		}
		c.FUCount = nil
	}
	if c.FUCount, err = canonicalUnitMap(c.FUCount, "fucount", func(u isa.Unit, v int) error {
		if v < 1 {
			return errf("fucount %s: copy count %d must be at least 1", u, v)
		}
		if v == 1 {
			return errDropEntry // one copy is the base architecture
		}
		return nil
	}); err != nil {
		return c, err
	}
	return c, nil
}

// errDropEntry is the sentinel a canonicalUnitMap check returns for a
// well-formed entry that restates a default and must be dropped.
var errDropEntry = fmt.Errorf("machdef: drop entry")

// canonicalUnitMap validates a unit-name-keyed map and rewrites it
// with canonical unit names, dropping entries check marks as no-ops.
// An empty result is nil so equivalent specs hash identically.
func canonicalUnitMap(m map[string]int, field string, check func(isa.Unit, int) error) (map[string]int, error) {
	if len(m) == 0 {
		return nil, nil
	}
	out := make(map[string]int, len(m))
	for name, v := range m {
		u, err := isa.ParseUnit(strings.TrimSpace(name))
		if err != nil {
			return nil, errf("%s: unknown functional-unit class %q", field, name)
		}
		switch err := check(u, v); err {
		case nil:
			out[u.String()] = v
		case errDropEntry:
		default:
			return nil, err
		}
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// canonicalBusName renders a parsed bus kind in the spelling the
// canonical spec uses.
func canonicalBusName(k bus.Kind) string {
	switch k {
	case bus.Bus1:
		return "1bus"
	case bus.XBar:
		return "xbar"
	default:
		return "nbus"
	}
}

// Parse strictly decodes a JSON machine definition — unknown fields
// are errors, not typos to ignore — and canonicalizes it.
func Parse(data []byte) (Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, errf("parsing machine definition: %v", err)
	}
	return Canonicalize(s)
}

// ParseFile reads and parses the machine definition at path.
func ParseFile(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("machdef: %w", err)
	}
	return Parse(data)
}

// Config compiles a canonical spec into the core configuration its
// constructor takes. Call Canonicalize first; a non-canonical spec's
// unit names may not resolve.
func (s Spec) Config() (core.Config, error) {
	cfg := core.Config{
		MemLatency:      s.Mem,
		BranchLatency:   s.Br,
		MemBanks:        s.MemBanks,
		BusCount:        s.Buses,
		PerfectBranches: s.PerfectBranches,
	}
	info, ok := kinds[s.Kind]
	if !ok {
		return cfg, errf("unknown machine kind %q", s.Kind)
	}
	if info.multi {
		kind, err := cli.ParseBusKind(s.Bus)
		if err != nil {
			return cfg, &Error{Msg: err.Error()}
		}
		cfg = cfg.WithIssue(s.Width, kind)
	}
	if info.ruu {
		cfg = cfg.WithRUU(s.RUU)
	}
	if info.stations {
		cfg = cfg.WithRUU(s.Stations) // the tomasulo constructor reads stations from RUUSize
	}
	for name, v := range s.FULat {
		u, err := isa.ParseUnit(name)
		if err != nil {
			return cfg, errf("fulat: %v", err)
		}
		cfg.FULat[u] = v
	}
	for name, v := range s.FUCount {
		u, err := isa.ParseUnit(name)
		if err != nil {
			return cfg, errf("fucount: %v", err)
		}
		cfg.FUCount[u] = v
	}
	return cfg, nil
}

// New compiles a canonical spec into a concrete machine. Construction
// errors surface as structured errors, never panics.
func (s Spec) New() (core.Machine, error) {
	cfg, err := s.Config()
	if err != nil {
		return nil, err
	}
	switch s.Kind {
	case "simple":
		return core.NewBasicChecked(core.Simple, cfg)
	case "serialmem":
		return core.NewBasicChecked(core.SerialMemory, cfg)
	case "nonseg":
		return core.NewBasicChecked(core.NonSegmented, cfg)
	case "cray":
		return core.NewBasicChecked(core.CRAYLike, cfg)
	case "scoreboard":
		return core.NewScoreboardChecked(cfg)
	case "tomasulo":
		return core.NewTomasuloChecked(cfg)
	case "multi":
		return core.NewMultiIssueChecked(cfg)
	case "ooo":
		return core.NewMultiIssueOOOChecked(cfg)
	case "ruu":
		return core.NewRUUChecked(cfg)
	case "vector":
		return core.NewVectorChecked(cfg)
	}
	return nil, errf("unknown machine kind %q", s.Kind)
}

// Key returns the content address of a canonical spec: the SHA-256,
// in hex, of its versioned canonical JSON. json.Marshal renders map
// keys sorted, so the preimage is deterministic. The version prefix
// makes any change to the Spec encoding invalidate old keys loudly
// instead of colliding with them.
func (s Spec) Key() string {
	b, err := json.Marshal(s)
	if err != nil {
		// A struct of strings, ints, and string-keyed int maps cannot
		// fail to marshal.
		panic(fmt.Sprintf("machdef: marshaling spec: %v", err))
	}
	sum := sha256.Sum256(append([]byte("machdef/v1:"), b...))
	return hex.EncodeToString(sum[:])
}

// Cost prices a canonical spec in abstract area units. It is a
// deterministic proxy, not a die-area model: the sweep's Pareto
// frontier only needs a consistent ordering in which more hardware —
// wider issue, more buses, replicated or deeper units, more buffering,
// more banks — costs more.
//
//	each functional-unit copy   2 + its latency (pipeline depth)
//	each issue station          8
//	each result bus             4
//	each RUU entry              2
//	each reservation station    2 (per unit class)
//	each memory bank            1
func (s Spec) Cost() float64 {
	lat := func(u isa.Unit) int {
		if v, ok := s.FULat[u.String()]; ok {
			return v
		}
		switch u {
		case isa.Memory:
			return s.Mem
		case isa.Branch:
			return s.Br
		}
		return isa.DefaultLatency(u)
	}
	count := func(u isa.Unit) int {
		if v, ok := s.FUCount[u.String()]; ok {
			return v
		}
		return 1
	}
	cost := 0
	for u := 0; u < isa.NumUnits; u++ {
		cost += count(isa.Unit(u)) * (2 + lat(isa.Unit(u)))
	}
	width := s.Width
	if width < 1 {
		width = 1
	}
	cost += 8 * width
	buses := 1
	switch s.Bus {
	case "nbus":
		buses = width
	case "xbar":
		buses = s.Buses
		if buses == 0 {
			buses = width
		}
	}
	cost += 4 * buses
	cost += 2 * s.RUU
	cost += 2 * s.Stations * isa.NumUnits
	cost += s.MemBanks
	return float64(cost)
}
