package asm

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mfup/internal/isa"
)

func mustAssemble(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := Assemble("test", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func TestAllInstructionForms(t *testing.T) {
	src := `
; every instruction form once
    PASS
    A1 = 100
    A1 = A2 + A3
    A1 = A2 - A3
    A1 = A2 * A3
    A1 = A2 + 5
    A1 = A2 - 5
    S1 = 42
    S1 = 2.5
    S1 = S2 + S3
    S1 = S2 - S3
    S1 = S2 & S3
    S1 = S2 | S3
    S1 = S2 ^ S3
    S1 = S2 << 3
    S1 = S2 >> 4
    S1 = S2 +F S3
    S1 = S2 -F S3
    S1 = S2 *F S3
    S1 = 1 / S2
    S1 = POP S2
    S1 = LZ S2
    A1 = FIX S2
    S1 = FLOAT A2
    A1 = S2
    S1 = A2
    A1 = B5
    B5 = A1
    S1 = T9
    T9 = S1
    S1 = [A2]
    S1 = [A2 + 10]
    S1 = [A2 - 3]
    A1 = [A2 + 1]
    [A2 + 4] = S1
    [A2] = A3
loop:
    J loop
    JAZ loop
    JAN loop
    JAP loop
    JAM loop
`
	p := mustAssemble(t, src)
	wantOps := []isa.Opcode{
		isa.OpPass,
		isa.OpAImm, isa.OpAAdd, isa.OpASub, isa.OpAMul, isa.OpAAddImm, isa.OpAAddImm,
		isa.OpSImm, isa.OpSImm,
		isa.OpSAdd, isa.OpSSub, isa.OpSAnd, isa.OpSOr, isa.OpSXor,
		isa.OpSShiftL, isa.OpSShiftR,
		isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpRecip,
		isa.OpSPop, isa.OpSLZ, isa.OpFix, isa.OpFloat,
		isa.OpMoveAS, isa.OpMoveSA, isa.OpMoveAB, isa.OpMoveBA, isa.OpMoveST, isa.OpMoveTS,
		isa.OpLoadS, isa.OpLoadS, isa.OpLoadS, isa.OpLoadA,
		isa.OpStoreS, isa.OpStoreA,
		isa.OpJ, isa.OpJAZ, isa.OpJAN, isa.OpJAP, isa.OpJAM,
	}
	if len(p.Code) != len(wantOps) {
		t.Fatalf("got %d instructions, want %d", len(p.Code), len(wantOps))
	}
	for i, w := range wantOps {
		if p.Code[i].Op != w {
			t.Errorf("instruction %d: opcode %s, want %s", i, p.Code[i].Op, w)
		}
	}
}

func TestImmediateEncodings(t *testing.T) {
	p := mustAssemble(t, `
    A1 = -7
    A2 = 0x10
    S1 = 42
    S2 = 2.5
    A3 = A4 - 9
    S3 = [A1 - 3]
`)
	if got := p.Code[0].Imm; got != -7 {
		t.Errorf("A1 = -7: imm = %d", got)
	}
	if got := p.Code[1].Imm; got != 16 {
		t.Errorf("A2 = 0x10: imm = %d", got)
	}
	if got := p.Code[2].Imm; got != 42 {
		t.Errorf("S1 = 42: imm = %d (integer literal should be integer bits)", got)
	}
	if got := math.Float64frombits(uint64(p.Code[3].Imm)); got != 2.5 {
		t.Errorf("S2 = 2.5: decoded float = %v", got)
	}
	if got := p.Code[4].Imm; got != -9 {
		t.Errorf("A3 = A4 - 9: imm = %d", got)
	}
	if got := p.Code[5].Imm; got != -3 {
		t.Errorf("[A1 - 3]: offset = %d", got)
	}
}

func TestStoreOperands(t *testing.T) {
	p := mustAssemble(t, `[A2 + 4] = S1`)
	in := p.Code[0]
	if in.Src1 != isa.A(2) || in.Src2 != isa.S(1) || in.Imm != 4 || in.Dst != isa.NoReg {
		t.Errorf("store parsed as %+v", in)
	}
}

func TestForwardAndBackwardBranches(t *testing.T) {
	p := mustAssemble(t, `
    J fwd
back:
    PASS
fwd:
    JAZ back
`)
	if p.Code[0].Target != 2 {
		t.Errorf("forward branch target = %d, want 2", p.Code[0].Target)
	}
	if p.Code[2].Target != 1 {
		t.Errorf("backward branch target = %d, want 1", p.Code[2].Target)
	}
}

func TestLabelOnSameLine(t *testing.T) {
	p := mustAssemble(t, `
top: A1 = A1 + 1
    JAN top
`)
	if p.Labels["top"] != 0 || p.Code[1].Target != 0 {
		t.Errorf("inline label mishandled: labels=%v target=%d", p.Labels, p.Code[1].Target)
	}
}

func TestLabelAtEnd(t *testing.T) {
	p := mustAssemble(t, `
    JAZ done
    PASS
done:
`)
	if p.Code[0].Target != 2 {
		t.Errorf("end label target = %d, want 2 (one past last instruction)", p.Code[0].Target)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	p := mustAssemble(t, `
; full-line comment
# hash comment

    PASS    ; trailing comment
    PASS    # other trailing comment
`)
	if len(p.Code) != 2 {
		t.Errorf("got %d instructions, want 2", len(p.Code))
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"undefined label", "J nowhere", "undefined label"},
		{"duplicate label", "x:\nPASS\nx:\nPASS", "duplicate label"},
		{"register as label", "A1: PASS", "cannot parse"},
		{"bad register index", "A9 = 1", "bad destination"},
		{"bad store source", "[A1] = T3", "can only store"},
		{"bad load destination", "B2 = [A1]", "can only load"},
		{"no transfer path", "B1 = S2", "no transfer path"},
		{"mixed class arithmetic", "A1 = S1 + S2", "unsupported operation"},
		{"float on A regs", "A1 = A2 +F A3", "unsupported operation"},
		{"shift count too big", "S1 = S2 << 64", "bad shift count"},
		{"recip wrong class", "A1 = 1 / S2", "reciprocal requires"},
		{"non-A memory base", "S1 = [S2 + 1]", "base must be an A register"},
		{"pass with operands", "PASS now", "no operands"},
		{"branch with two targets", "J a b", "exactly one target"},
		{"gibberish", "florp glorp", "cannot parse"},
		{"bad scalar immediate", "S1 = banana", "bad scalar immediate"},
		{"immediate into B", "B1 = 5", "immediates can target only A or S"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble("e", c.src)
			if err == nil {
				t.Fatalf("assembled %q without error", c.src)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestErrorHasPosition(t *testing.T) {
	_, err := Assemble("prog", "PASS\nPASS\nA9 = 1\n")
	if err == nil {
		t.Fatal("expected error")
	}
	var ae *Error
	if !asError(err, &ae) {
		t.Fatalf("error type %T, want *asm.Error", err)
	}
	if ae.Line != 3 || ae.File != "prog" {
		t.Errorf("error position %s:%d, want prog:3", ae.File, ae.Line)
	}
}

func asError(err error, target **Error) bool {
	e, ok := err.(*Error)
	if ok {
		*target = e
	}
	return ok
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic on bad source")
		}
	}()
	MustAssemble("bad", "J nowhere")
}

// TestDisassembleRoundTrip checks that disassembled output assembles
// back to an identical program, for randomly generated programs.
// This is the assembler's core correctness property: String/
// Disassemble and Assemble are inverses.
func TestDisassembleRoundTrip(t *testing.T) {
	gen := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProgram(rng)
		src := p.Disassemble()
		q, err := Assemble(p.Name, src)
		if err != nil {
			t.Logf("source:\n%s", src)
			t.Errorf("round trip failed to assemble: %v", err)
			return false
		}
		if len(q.Code) != len(p.Code) {
			t.Errorf("round trip length %d, want %d", len(q.Code), len(p.Code))
			return false
		}
		for i := range p.Code {
			if p.Code[i] != q.Code[i] {
				t.Logf("source:\n%s", src)
				t.Errorf("instruction %d: %+v != %+v", i, q.Code[i], p.Code[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(gen, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// randomProgram builds a structurally valid random program whose
// instruction fields all survive textual round-tripping.
func randomProgram(rng *rand.Rand) *isa.Program {
	n := 1 + rng.Intn(30)
	p := &isa.Program{Name: "rand", Labels: map[string]int{}}
	aReg := func() isa.Reg { return isa.A(rng.Intn(isa.NumA)) }
	sReg := func() isa.Reg { return isa.S(rng.Intn(isa.NumS)) }
	for i := 0; i < n; i++ {
		var in isa.Instruction
		switch rng.Intn(13) {
		case 0:
			in = isa.Instruction{Op: isa.OpAAdd, Dst: aReg(), Src1: aReg(), Src2: aReg()}
		case 1:
			in = isa.Instruction{Op: isa.OpSSub, Dst: sReg(), Src1: sReg(), Src2: sReg()}
		case 2:
			in = isa.Instruction{Op: isa.OpFMul, Dst: sReg(), Src1: sReg(), Src2: sReg()}
		case 3:
			in = isa.Instruction{Op: isa.OpAImm, Dst: aReg(), Src1: isa.NoReg, Src2: isa.NoReg, Imm: int64(rng.Intn(2000) - 1000)}
		case 4:
			in = isa.Instruction{Op: isa.OpSImm, Dst: sReg(), Src1: isa.NoReg, Src2: isa.NoReg, Imm: int64(rng.Intn(2000) - 1000)}
		case 5:
			in = isa.Instruction{Op: isa.OpLoadS, Dst: sReg(), Src1: aReg(), Src2: isa.NoReg, Imm: int64(rng.Intn(64))}
		case 6:
			in = isa.Instruction{Op: isa.OpStoreS, Dst: isa.NoReg, Src1: aReg(), Src2: sReg(), Imm: int64(rng.Intn(64))}
		case 7:
			in = isa.Instruction{Op: isa.OpSShiftL, Dst: sReg(), Src1: sReg(), Src2: isa.NoReg, Imm: int64(rng.Intn(64))}
		case 8:
			in = isa.Instruction{Op: isa.OpMoveBA, Dst: isa.B(rng.Intn(isa.NumB)), Src1: aReg(), Src2: isa.NoReg}
		case 9:
			in = isa.Instruction{Op: isa.OpRecip, Dst: sReg(), Src1: sReg(), Src2: isa.NoReg}
		case 10:
			if rng.Intn(2) == 0 {
				in = isa.Instruction{Op: isa.OpPass, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg}
			} else {
				// Negative immediates must survive the "+ -5" form.
				in = isa.Instruction{Op: isa.OpAAddImm, Dst: aReg(), Src1: aReg(), Src2: isa.NoReg, Imm: int64(rng.Intn(200) - 100)}
			}
		case 11:
			switch rng.Intn(4) {
			case 0:
				in = isa.Instruction{Op: isa.OpVLSet, Dst: isa.VL, Src1: aReg(), Src2: isa.NoReg}
			case 1:
				in = isa.Instruction{Op: isa.OpVLoad, Dst: isa.V(rng.Intn(isa.NumV)), Src1: aReg(), Src2: isa.NoReg, Imm: int64(1 + rng.Intn(8))}
			case 2:
				in = isa.Instruction{Op: isa.OpVFMul, Dst: isa.V(rng.Intn(isa.NumV)), Src1: isa.V(rng.Intn(isa.NumV)), Src2: isa.V(rng.Intn(isa.NumV))}
			case 3:
				in = isa.Instruction{Op: isa.OpMoveSV, Dst: sReg(), Src1: isa.V(rng.Intn(isa.NumV)), Src2: aReg()}
			}
			p.Code = append(p.Code, in)
			continue
		case 12:
			// Branch to a random already-emitted location (backward),
			// ensuring the label exists.
			tgt := 0
			if i > 0 {
				tgt = rng.Intn(i)
			}
			label := fmt.Sprintf("l%d", tgt)
			if _, ok := p.Labels[label]; !ok {
				p.Labels[label] = tgt
			}
			in = isa.Instruction{Op: isa.OpJAN, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg, Target: tgt}
		}
		p.Code = append(p.Code, in)
	}
	return p
}

func TestVectorForms(t *testing.T) {
	p := mustAssemble(t, `
    VL = A1
    V1 = [A2 : 5]
    [A2 : 1] = V1
    V1 = V2 +F V3
    V1 = V2 -F V3
    V1 = V2 *F V3
    V1 = S2 +F V3
    V1 = S2 *F V3
    S1 = V2 [ A3 ]
`)
	wantOps := []isa.Opcode{
		isa.OpVLSet, isa.OpVLoad, isa.OpVStore,
		isa.OpVFAdd, isa.OpVFSub, isa.OpVFMul,
		isa.OpVSFAdd, isa.OpVSFMul, isa.OpMoveSV,
	}
	if len(p.Code) != len(wantOps) {
		t.Fatalf("got %d instructions, want %d", len(p.Code), len(wantOps))
	}
	for i, w := range wantOps {
		if p.Code[i].Op != w {
			t.Errorf("instruction %d: opcode %s, want %s", i, p.Code[i].Op, w)
		}
	}
	if p.Code[1].Imm != 5 {
		t.Errorf("vector load stride = %d, want 5", p.Code[1].Imm)
	}
	if p.Code[2].Src2 != isa.V(1) {
		t.Errorf("vector store data register = %s, want V1", p.Code[2].Src2)
	}
}

func TestVectorErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"stride into scalar", "S1 = [A2 : 5]", "strided loads target V"},
		{"vector store scalar", "[A2 : 1] = S1", "strided stores take a V"},
		{"zero stride", "V1 = [A2 : 0]", "bad stride"},
		{"non-A base", "V1 = [S2 : 1]", "base must be an A register"},
		{"vector minus scalar", "V1 = V2 -F S3", "unsupported operation"},
		{"element read wrong class", "A1 = V2 [ A3 ]", "element read requires"},
		{"vl from scalar", "VL = S1", "no transfer path"},
		{"v register out of range", "V9 = V1 +F V2", "bad destination"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble("e", c.src)
			if err == nil {
				t.Fatalf("assembled %q without error", c.src)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}
