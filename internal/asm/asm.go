// Package asm assembles a textual CRAY-like assembly language into an
// isa.Program.
//
// The syntax is line oriented. ";" and "#" start comments. A line of
// the form "name:" binds a label to the next instruction. Instruction
// forms:
//
//	PASS
//	A1 = 100            ; address immediate
//	A1 = A2 + A3        ; also -, * (address add / multiply)
//	A1 = A2 + 5         ; address add immediate (also - 5)
//	S1 = 42             ; scalar immediate, integer bits
//	S1 = 2.5            ; scalar immediate, IEEE double bits
//	S1 = S2 + S3        ; scalar integer add (also -)
//	S1 = S2 & S3        ; logical (also |, ^)
//	S1 = S2 << 3        ; shift (also >>)
//	S1 = S2 +F S3       ; floating add (also -F, *F)
//	S1 = 1 / S2         ; reciprocal approximation
//	S1 = POP S2         ; population count (also LZ)
//	A1 = FIX S2         ; float -> integer
//	S1 = FLOAT A2       ; integer -> float
//	A1 = S2             ; transfers: any of A<->S, A<->B, S<->T
//	S1 = [A2 + 10]      ; load (offset optional; also negative)
//	[A2 + 10] = S1      ; store
//	J  loop             ; unconditional jump
//	JAZ done            ; jump if A0 == 0 (also JAN, JAP, JAM)
//
// Vector extension forms:
//
//	VL = A1             ; set vector length
//	V1 = [A2 : 5]       ; strided vector load (stride 5)
//	[A2 : 1] = V1       ; strided vector store
//	V1 = V2 +F V3       ; elementwise (also -F, *F)
//	V1 = S2 +F V3       ; scalar broadcast (also *F)
//	S1 = V2 [ A3 ]      ; read vector element A3 into a scalar
//
// Branch decisions are made on A0, per the base architecture.
package asm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"mfup/internal/isa"
)

// Error describes an assembly failure with source position.
type Error struct {
	File string // program name
	Line int    // 1-based source line
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

// Assemble translates source text into a validated program. name is
// used in error messages and becomes the program name.
func Assemble(name, source string) (*isa.Program, error) {
	a := &assembler{
		prog: &isa.Program{Name: name, Labels: make(map[string]int)},
		name: name,
	}
	if err := a.run(source); err != nil {
		return nil, err
	}
	if err := a.prog.Validate(); err != nil {
		return nil, err
	}
	return a.prog, nil
}

// MustAssemble is Assemble for statically known-good sources such as
// the built-in Livermore kernels; it panics on error.
func MustAssemble(name, source string) *isa.Program {
	p, err := Assemble(name, source)
	if err != nil {
		panic(err)
	}
	return p
}

type assembler struct {
	prog *isa.Program
	name string

	// fixups are branch sites waiting for a label definition.
	fixups []fixup
}

type fixup struct {
	instr int    // index of branch instruction
	label string // referenced label
	line  int
}

func (a *assembler) run(source string) error {
	for i, raw := range strings.Split(source, "\n") {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		if err := a.line(i+1, line); err != nil {
			return err
		}
	}
	// Resolve forward references.
	for _, f := range a.fixups {
		idx, ok := a.prog.Labels[f.label]
		if !ok {
			return a.errorf(f.line, "undefined label %q", f.label)
		}
		a.prog.Code[f.instr].Target = idx
	}
	return nil
}

func stripComment(s string) string {
	if i := strings.IndexAny(s, ";#"); i >= 0 {
		s = s[:i]
	}
	return strings.TrimSpace(s)
}

func (a *assembler) errorf(line int, format string, args ...any) error {
	return &Error{File: a.name, Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (a *assembler) emit(in isa.Instruction) {
	a.prog.Code = append(a.prog.Code, in)
}

// line assembles one non-empty source line.
func (a *assembler) line(lineNo int, s string) error {
	// Label definition: "name:" possibly followed by an instruction.
	if i := strings.Index(s, ":"); i >= 0 && isIdent(s[:i]) {
		label := s[:i]
		if _, dup := a.prog.Labels[label]; dup {
			return a.errorf(lineNo, "duplicate label %q", label)
		}
		a.prog.Labels[label] = len(a.prog.Code)
		rest := strings.TrimSpace(s[i+1:])
		if rest == "" {
			return nil
		}
		return a.line(lineNo, rest)
	}

	fields := strings.Fields(s)
	switch strings.ToUpper(fields[0]) {
	case "PASS":
		if len(fields) != 1 {
			return a.errorf(lineNo, "PASS takes no operands")
		}
		a.emit(isa.Instruction{Op: isa.OpPass, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg})
		return nil
	case "J", "JAZ", "JAN", "JAP", "JAM":
		return a.branch(lineNo, fields)
	}

	// Everything else is "<lhs> = <rhs>".
	eq := strings.Index(s, "=")
	if eq < 0 {
		return a.errorf(lineNo, "cannot parse %q", s)
	}
	lhs := strings.TrimSpace(s[:eq])
	rhs := strings.TrimSpace(s[eq+1:])
	if lhs == "" || rhs == "" {
		return a.errorf(lineNo, "malformed assignment %q", s)
	}
	if strings.HasPrefix(lhs, "[") {
		return a.store(lineNo, lhs, rhs)
	}
	dst, err := parseReg(lhs)
	if err != nil {
		return a.errorf(lineNo, "bad destination %q: %v", lhs, err)
	}
	return a.assign(lineNo, dst, rhs)
}

func (a *assembler) branch(lineNo int, fields []string) error {
	if len(fields) != 2 {
		return a.errorf(lineNo, "%s needs exactly one target label", fields[0])
	}
	var op isa.Opcode
	switch strings.ToUpper(fields[0]) {
	case "J":
		op = isa.OpJ
	case "JAZ":
		op = isa.OpJAZ
	case "JAN":
		op = isa.OpJAN
	case "JAP":
		op = isa.OpJAP
	case "JAM":
		op = isa.OpJAM
	}
	label := fields[1]
	if !isIdent(label) {
		return a.errorf(lineNo, "bad label %q", label)
	}
	in := isa.Instruction{Op: op, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg}
	if idx, ok := a.prog.Labels[label]; ok {
		in.Target = idx
	} else {
		in.Target = -1 // patched by fixup
		a.fixups = append(a.fixups, fixup{instr: len(a.prog.Code), label: label, line: lineNo})
	}
	a.emit(in)
	return nil
}

// store assembles "[Ax + off] = reg" and "[Ax : s] = Vi".
func (a *assembler) store(lineNo int, lhs, rhs string) error {
	src, err := parseReg(rhs)
	if err != nil {
		return a.errorf(lineNo, "bad store source %q: %v", rhs, err)
	}
	if base, stride, ok, err := parseVecRef(lhs); ok {
		if err != nil {
			return a.errorf(lineNo, "bad vector reference %q: %v", lhs, err)
		}
		if src.Class() != isa.ClassV {
			return a.errorf(lineNo, "strided stores take a V register, not %s", src)
		}
		a.emit(isa.Instruction{Op: isa.OpVStore, Dst: isa.NoReg, Src1: base, Src2: src, Imm: stride})
		return nil
	}
	base, off, err := parseMemRef(lhs)
	if err != nil {
		return a.errorf(lineNo, "bad memory reference %q: %v", lhs, err)
	}
	var op isa.Opcode
	switch src.Class() {
	case isa.ClassS:
		op = isa.OpStoreS
	case isa.ClassA:
		op = isa.OpStoreA
	default:
		return a.errorf(lineNo, "can only store A or S registers, not %s", src)
	}
	a.emit(isa.Instruction{Op: op, Dst: isa.NoReg, Src1: base, Src2: src, Imm: off})
	return nil
}

// parseVecRef parses "[Ax : s]"; ok reports whether the form is a
// strided (vector) reference at all.
func parseVecRef(s string) (base isa.Reg, stride int64, ok bool, err error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") || !strings.Contains(s, ":") {
		return isa.NoReg, 0, false, nil
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	parts := strings.Fields(inner)
	if len(parts) != 3 || parts[1] != ":" {
		return isa.NoReg, 0, true, fmt.Errorf("malformed strided reference")
	}
	base, err = parseReg(parts[0])
	if err != nil {
		return isa.NoReg, 0, true, err
	}
	if base.Class() != isa.ClassA {
		return isa.NoReg, 0, true, fmt.Errorf("base must be an A register, got %s", base)
	}
	stride, err = strconv.ParseInt(parts[2], 0, 64)
	if err != nil || stride == 0 {
		return isa.NoReg, 0, true, fmt.Errorf("bad stride %q", parts[2])
	}
	return base, stride, true, nil
}

// assign assembles "dst = rhs" for every non-store form.
func (a *assembler) assign(lineNo int, dst isa.Reg, rhs string) error {
	// Strided vector load: "Vi = [Ax : s]".
	if base, stride, ok, err := parseVecRef(rhs); ok {
		if err != nil {
			return a.errorf(lineNo, "bad vector reference %q: %v", rhs, err)
		}
		if dst.Class() != isa.ClassV {
			return a.errorf(lineNo, "strided loads target V registers, not %s", dst)
		}
		a.emit(isa.Instruction{Op: isa.OpVLoad, Dst: dst, Src1: base, Src2: isa.NoReg, Imm: stride})
		return nil
	}

	// Load: "dst = [Ax + off]".
	if strings.HasPrefix(rhs, "[") {
		base, off, err := parseMemRef(rhs)
		if err != nil {
			return a.errorf(lineNo, "bad memory reference %q: %v", rhs, err)
		}
		var op isa.Opcode
		switch dst.Class() {
		case isa.ClassS:
			op = isa.OpLoadS
		case isa.ClassA:
			op = isa.OpLoadA
		default:
			return a.errorf(lineNo, "can only load into A or S registers, not %s", dst)
		}
		a.emit(isa.Instruction{Op: op, Dst: dst, Src1: base, Src2: isa.NoReg, Imm: off})
		return nil
	}

	fields := strings.Fields(rhs)
	switch len(fields) {
	case 1:
		return a.assignSimple(lineNo, dst, fields[0])
	case 2:
		return a.assignUnary(lineNo, dst, fields[0], fields[1])
	case 3:
		return a.assignBinary(lineNo, dst, fields[0], fields[1], fields[2])
	case 4:
		// Vector element read: "S1 = V2 [ A3 ]".
		if fields[1] == "[" && fields[3] == "]" {
			vsrc, err1 := parseReg(fields[0])
			idx, err2 := parseReg(fields[2])
			if err1 != nil || err2 != nil ||
				dst.Class() != isa.ClassS || vsrc.Class() != isa.ClassV || idx.Class() != isa.ClassA {
				return a.errorf(lineNo, "element read requires S = V [ A ]")
			}
			a.emit(isa.Instruction{Op: isa.OpMoveSV, Dst: dst, Src1: vsrc, Src2: idx})
			return nil
		}
	}
	return a.errorf(lineNo, "cannot parse right-hand side %q", rhs)
}

// assignSimple handles "dst = reg" and "dst = literal".
func (a *assembler) assignSimple(lineNo int, dst isa.Reg, operand string) error {
	if src, err := parseReg(operand); err == nil {
		op, ok := moveOpcode(dst, src)
		if !ok {
			return a.errorf(lineNo, "no transfer path %s = %s", dst, src)
		}
		a.emit(isa.Instruction{Op: op, Dst: dst, Src1: src, Src2: isa.NoReg})
		return nil
	}
	switch dst.Class() {
	case isa.ClassA:
		v, err := strconv.ParseInt(operand, 0, 64)
		if err != nil {
			return a.errorf(lineNo, "bad address immediate %q", operand)
		}
		a.emit(isa.Instruction{Op: isa.OpAImm, Dst: dst, Src1: isa.NoReg, Src2: isa.NoReg, Imm: v})
		return nil
	case isa.ClassS:
		imm, err := parseScalarLiteral(operand)
		if err != nil {
			return a.errorf(lineNo, "bad scalar immediate %q", operand)
		}
		a.emit(isa.Instruction{Op: isa.OpSImm, Dst: dst, Src1: isa.NoReg, Src2: isa.NoReg, Imm: imm})
		return nil
	}
	return a.errorf(lineNo, "immediates can target only A or S registers, not %s", dst)
}

// assignUnary handles "dst = POP Sx", "LZ", "FIX", "FLOAT".
func (a *assembler) assignUnary(lineNo int, dst isa.Reg, mnemonic, operand string) error {
	src, err := parseReg(operand)
	if err != nil {
		return a.errorf(lineNo, "bad operand %q: %v", operand, err)
	}
	type shape struct {
		op       isa.Opcode
		dstClass isa.RegClass
		srcClass isa.RegClass
	}
	var sh shape
	switch strings.ToUpper(mnemonic) {
	case "POP":
		sh = shape{isa.OpSPop, isa.ClassS, isa.ClassS}
	case "LZ":
		sh = shape{isa.OpSLZ, isa.ClassS, isa.ClassS}
	case "FIX":
		sh = shape{isa.OpFix, isa.ClassA, isa.ClassS}
	case "FLOAT":
		sh = shape{isa.OpFloat, isa.ClassS, isa.ClassA}
	default:
		return a.errorf(lineNo, "unknown operation %q", mnemonic)
	}
	if dst.Class() != sh.dstClass || src.Class() != sh.srcClass {
		return a.errorf(lineNo, "%s requires %s = %s %s-register, got %s = %s %s",
			mnemonic, sh.dstClass, mnemonic, sh.srcClass, dst, mnemonic, src)
	}
	a.emit(isa.Instruction{Op: sh.op, Dst: dst, Src1: src, Src2: isa.NoReg})
	return nil
}

// assignBinary handles "dst = a OP b".
func (a *assembler) assignBinary(lineNo int, dst isa.Reg, left, oper, right string) error {
	// Reciprocal: "S1 = 1 / S2".
	if left == "1" && oper == "/" {
		src, err := parseReg(right)
		if err != nil || src.Class() != isa.ClassS || dst.Class() != isa.ClassS {
			return a.errorf(lineNo, "reciprocal requires S = 1 / S")
		}
		a.emit(isa.Instruction{Op: isa.OpRecip, Dst: dst, Src1: src, Src2: isa.NoReg})
		return nil
	}

	src1, err := parseReg(left)
	if err != nil {
		return a.errorf(lineNo, "bad operand %q: %v", left, err)
	}

	// Shift: "S1 = S2 << n".
	if oper == "<<" || oper == ">>" {
		if dst.Class() != isa.ClassS || src1.Class() != isa.ClassS {
			return a.errorf(lineNo, "shifts require S registers")
		}
		n, err := strconv.ParseInt(right, 0, 64)
		if err != nil || n < 0 || n > 63 {
			return a.errorf(lineNo, "bad shift count %q", right)
		}
		op := isa.OpSShiftL
		if oper == ">>" {
			op = isa.OpSShiftR
		}
		a.emit(isa.Instruction{Op: op, Dst: dst, Src1: src1, Src2: isa.NoReg, Imm: n})
		return nil
	}

	// Address add immediate: "A1 = A2 + 5" / "A1 = A2 - 5".
	if (oper == "+" || oper == "-") && dst.Class() == isa.ClassA {
		if v, err := strconv.ParseInt(right, 0, 64); err == nil {
			if src1.Class() != isa.ClassA {
				return a.errorf(lineNo, "address immediate add requires an A source, got %s", src1)
			}
			if oper == "-" {
				v = -v
			}
			a.emit(isa.Instruction{Op: isa.OpAAddImm, Dst: dst, Src1: src1, Src2: isa.NoReg, Imm: v})
			return nil
		}
	}

	src2, err := parseReg(right)
	if err != nil {
		return a.errorf(lineNo, "bad operand %q: %v", right, err)
	}
	op, ok := binaryOpcode(dst, src1, src2, oper)
	if !ok {
		return a.errorf(lineNo, "unsupported operation %s = %s %s %s", dst, src1, oper, src2)
	}
	a.emit(isa.Instruction{Op: op, Dst: dst, Src1: src1, Src2: src2})
	return nil
}

// binaryOpcode maps an operator and register classes to an opcode.
func binaryOpcode(dst, src1, src2 isa.Reg, oper string) (isa.Opcode, bool) {
	allA := dst.Class() == isa.ClassA && src1.Class() == isa.ClassA && src2.Class() == isa.ClassA
	allS := dst.Class() == isa.ClassS && src1.Class() == isa.ClassS && src2.Class() == isa.ClassS
	switch {
	case allA && oper == "+":
		return isa.OpAAdd, true
	case allA && oper == "-":
		return isa.OpASub, true
	case allA && oper == "*":
		return isa.OpAMul, true
	case allS && oper == "+":
		return isa.OpSAdd, true
	case allS && oper == "-":
		return isa.OpSSub, true
	case allS && oper == "&":
		return isa.OpSAnd, true
	case allS && oper == "|":
		return isa.OpSOr, true
	case allS && oper == "^":
		return isa.OpSXor, true
	case allS && oper == "+F":
		return isa.OpFAdd, true
	case allS && oper == "-F":
		return isa.OpFSub, true
	case allS && oper == "*F":
		return isa.OpFMul, true
	}
	vvv := dst.Class() == isa.ClassV && src1.Class() == isa.ClassV && src2.Class() == isa.ClassV
	svv := dst.Class() == isa.ClassV && src1.Class() == isa.ClassS && src2.Class() == isa.ClassV
	switch {
	case vvv && oper == "+F":
		return isa.OpVFAdd, true
	case vvv && oper == "-F":
		return isa.OpVFSub, true
	case vvv && oper == "*F":
		return isa.OpVFMul, true
	case svv && oper == "+F":
		return isa.OpVSFAdd, true
	case svv && oper == "*F":
		return isa.OpVSFMul, true
	}
	return 0, false
}

// moveOpcode maps a register-to-register copy to its transfer opcode.
func moveOpcode(dst, src isa.Reg) (isa.Opcode, bool) {
	switch {
	case dst.Class() == isa.ClassA && src.Class() == isa.ClassS:
		return isa.OpMoveAS, true
	case dst.Class() == isa.ClassS && src.Class() == isa.ClassA:
		return isa.OpMoveSA, true
	case dst.Class() == isa.ClassA && src.Class() == isa.ClassB:
		return isa.OpMoveAB, true
	case dst.Class() == isa.ClassB && src.Class() == isa.ClassA:
		return isa.OpMoveBA, true
	case dst.Class() == isa.ClassS && src.Class() == isa.ClassT:
		return isa.OpMoveST, true
	case dst.Class() == isa.ClassT && src.Class() == isa.ClassS:
		return isa.OpMoveTS, true
	case dst.Class() == isa.ClassVL && src.Class() == isa.ClassA:
		return isa.OpVLSet, true
	}
	return 0, false
}

// parseMemRef parses "[Ax]", "[Ax + n]" or "[Ax - n]".
func parseMemRef(s string) (base isa.Reg, off int64, err error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return isa.NoReg, 0, fmt.Errorf("not bracketed")
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	parts := strings.Fields(inner)
	switch len(parts) {
	case 1:
		base, err = parseReg(parts[0])
	case 3:
		base, err = parseReg(parts[0])
		if err != nil {
			return isa.NoReg, 0, err
		}
		off, err = strconv.ParseInt(parts[2], 0, 64)
		if err != nil {
			return isa.NoReg, 0, fmt.Errorf("bad offset %q", parts[2])
		}
		switch parts[1] {
		case "+":
		case "-":
			off = -off
		default:
			return isa.NoReg, 0, fmt.Errorf("bad operator %q", parts[1])
		}
	default:
		return isa.NoReg, 0, fmt.Errorf("malformed")
	}
	if err != nil {
		return isa.NoReg, 0, err
	}
	if base.Class() != isa.ClassA {
		return isa.NoReg, 0, fmt.Errorf("base must be an A register, got %s", base)
	}
	return base, off, nil
}

// parseReg parses a register name such as "A3", "S0", "B12", "T63",
// "V5", or "VL".
func parseReg(s string) (isa.Reg, error) {
	if s == "VL" || s == "vl" {
		return isa.VL, nil
	}
	if len(s) < 2 {
		return isa.NoReg, fmt.Errorf("not a register")
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 {
		return isa.NoReg, fmt.Errorf("not a register")
	}
	switch s[0] {
	case 'A', 'a':
		if n >= isa.NumA {
			return isa.NoReg, fmt.Errorf("A register index %d out of range", n)
		}
		return isa.A(n), nil
	case 'S', 's':
		if n >= isa.NumS {
			return isa.NoReg, fmt.Errorf("S register index %d out of range", n)
		}
		return isa.S(n), nil
	case 'B', 'b':
		if n >= isa.NumB {
			return isa.NoReg, fmt.Errorf("B register index %d out of range", n)
		}
		return isa.B(n), nil
	case 'T', 't':
		if n >= isa.NumT {
			return isa.NoReg, fmt.Errorf("T register index %d out of range", n)
		}
		return isa.T(n), nil
	case 'V', 'v':
		if n >= isa.NumV {
			return isa.NoReg, fmt.Errorf("V register index %d out of range", n)
		}
		return isa.V(n), nil
	}
	return isa.NoReg, fmt.Errorf("not a register")
}

// parseScalarLiteral parses an S-register immediate: an integer is
// stored as integer bits; anything else must parse as a float and is
// stored as IEEE-754 double bits.
func parseScalarLiteral(s string) (int64, error) {
	if v, err := strconv.ParseInt(s, 0, 64); err == nil {
		return v, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	return int64(math.Float64bits(f)), nil
}

// isIdent reports whether s is a valid label identifier: a letter or
// underscore followed by letters, digits, or underscores. Register
// names are syntactically identifiers too; labels that collide with
// register names are rejected.
func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_', r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	if _, err := parseReg(s); err == nil {
		return false
	}
	return true
}
