package asm

import (
	"testing"

	"mfup/internal/emu"
)

// FuzzAssemble: the assembler must never panic on arbitrary source —
// it either produces a program that passes structural validation or
// returns a positioned error.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"",
		"PASS",
		"A1 = 100\nS1 = [A1]\n[A1 + 1] = S1",
		"loop:\n    A0 = A0 - A7\n    JAN loop",
		"V1 = [A2 : 5]\nVL = A1\nS1 = V2 [ A3 ]",
		"S1 = S2 +F S3 ; comment",
		"x: J x",
		"A1 = A2 +",
		"[A1 : ] = V1",
		"S1 = 1 / S2\nS1 = POP S2",
		"= =",
		"label_only:",
		"A1 = -9223372036854775808",
		"S1 = 1e308\nS2 = 0.5",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble("fuzz", src)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("assembled program fails validation: %v\nsource:\n%s", verr, src)
		}
		// Disassembly of anything we assembled must not panic either.
		_ = p.Disassemble()
	})
}

// FuzzAssembleAndRun: any program the assembler accepts must execute
// on the emulator without panicking — termination is enforced by the
// step limit, faults surface as errors.
func FuzzAssembleAndRun(f *testing.F) {
	seeds := []string{
		"A1 = 3\nA7 = 1\nloop:\nA1 = A1 - A7\nA0 = A1 + 0\nJAN loop",
		"A1 = 10\nS1 = 2.5\n[A1] = S1\nS2 = [A1]",
		"A1 = 4\nVL = A1\nA2 = 16\nV1 = [A2 : 1]\nV2 = V1 +F V1\n[A2 : 1] = V2",
		"S1 = 0\nS2 = 1 / S1", // inf, not a fault
		"A1 = -1\n[A1] = A1",  // memory fault
		"loop: J loop",        // step limit
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble("fuzz", src)
		if err != nil {
			return
		}
		m := emu.New(1 << 10)
		m.StepLimit = 10_000
		_, _ = m.Run(p) // must not panic; errors are fine
	})
}
