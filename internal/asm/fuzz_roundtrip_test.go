package asm_test

import (
	"testing"

	"mfup/internal/asm"
	"mfup/internal/loops"
)

// kernelSources collects the disassembly of every built-in kernel
// (scalar and vector codings) — real, full-size programs exercising
// the whole instruction set — as fuzz seeds.
func kernelSources() []string {
	var srcs []string
	for _, k := range append(loops.All(), loops.VectorKernels()...) {
		srcs = append(srcs, k.Program().Disassemble())
	}
	return srcs
}

// FuzzAssembleRoundTrip: any source the assembler accepts must
// disassemble to source that reassembles to the identical encoding.
// This pins the assembler and disassembler as exact inverses on the
// accepted language (the property TestRoundTrip checks on the fixed
// kernels, extended to arbitrary accepted inputs) and doubles as a
// no-panic harness for both directions.
func FuzzAssembleRoundTrip(f *testing.F) {
	for _, src := range kernelSources() {
		f.Add(src)
	}
	for _, src := range []string{
		"",
		"A1 = 100\nS1 = [A1]\n[A1 + 1] = S1",
		"loop:\n    A0 = A0 - A7\n    JAN loop",
		"VL = A1\nV1 = [A2 : 5]\nV2 = V1 +F V1\n[A3 : 1] = V2",
		"S1 = S2 +F S3 ; comment",
		"S1 = 1 / S2\nS1 = POP S2",
	} {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := asm.Assemble("fuzz", src)
		if err != nil {
			return // rejected input; FuzzAssemble covers no-panic on reject
		}
		dis := p.Disassemble()
		p2, err := asm.Assemble("fuzz-rt", dis)
		if err != nil {
			t.Fatalf("disassembly does not reassemble: %v\noriginal:\n%s\ndisassembly:\n%s", err, src, dis)
		}
		if len(p2.Code) != len(p.Code) {
			t.Fatalf("round trip changed code length: %d -> %d\nsource:\n%s", len(p.Code), len(p2.Code), src)
		}
		for i := range p.Code {
			if p.Code[i] != p2.Code[i] {
				t.Fatalf("round trip changed instruction %d: %+v -> %+v\nsource:\n%s", i, p.Code[i], p2.Code[i], src)
			}
		}
	})
}

// TestKernelRoundTrip runs the round-trip property over every
// built-in kernel directly (no fuzzing), so plain `go test` covers
// the full instruction set emitted by the hand compilations.
func TestKernelRoundTrip(t *testing.T) {
	for _, k := range append(loops.All(), loops.VectorKernels()...) {
		p := k.Program()
		p2, err := asm.Assemble(p.Name, p.Disassemble())
		if err != nil {
			t.Errorf("%s: reassemble: %v", p.Name, err)
			continue
		}
		if len(p2.Code) != len(p.Code) {
			t.Errorf("%s: code length %d -> %d", p.Name, len(p.Code), len(p2.Code))
			continue
		}
		for i := range p.Code {
			if p.Code[i] != p2.Code[i] {
				t.Errorf("%s: instruction %d: %+v -> %+v", p.Name, i, p.Code[i], p2.Code[i])
				break
			}
		}
	}
}
