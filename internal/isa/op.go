package isa

import "fmt"

// Opcode enumerates the operations of the base architecture. The set
// is a reduced CRAY-1S repertoire: everything the scalar portions of
// the Livermore loops need, plus the transfer paths between the
// primary (A/S) and backup (B/T) register files.
type Opcode uint8

// Opcodes. Naming: leading A = address-register op, S = scalar-
// register integer/logical op, F = floating op, J = jump.
const (
	OpPass Opcode = iota // no-operation

	// Address (integer) arithmetic.
	OpAAdd    // Ai = Aj + Ak
	OpASub    // Ai = Aj - Ak
	OpAMul    // Ai = Aj * Ak
	OpAImm    // Ai = imm
	OpAAddImm // Ai = Aj + imm

	// Scalar integer/logical/shift.
	OpSAdd    // Si = Sj + Sk (integer)
	OpSSub    // Si = Sj - Sk (integer)
	OpSAnd    // Si = Sj & Sk
	OpSOr     // Si = Sj | Sk
	OpSXor    // Si = Sj ^ Sk
	OpSShiftL // Si = Sj << imm
	OpSShiftR // Si = Sj >> imm (logical)
	OpSImm    // Si = imm
	OpSPop    // Si = popcount(Sj)
	OpSLZ     // Si = leading-zero-count(Sj)

	// Floating point (S registers hold IEEE-754 doubles).
	OpFAdd  // Si = Sj +f Sk
	OpFSub  // Si = Sj -f Sk
	OpFMul  // Si = Sj *f Sk
	OpRecip // Si = reciprocal approximation of Sj

	// Inter-file transfers.
	OpMoveAS // Ai = Sj (truncating float-to-int is NOT implied; raw bits' low half as integer index use is via OpFix)
	OpMoveSA // Si = Aj (integer value into S as integer bits)
	OpMoveAB // Ai = Bj
	OpMoveBA // Bi = Aj
	OpMoveST // Si = Tj
	OpMoveTS // Ti = Sj

	// Float/int conversion (CRAY code does this with add/shift tricks;
	// we expose it as explicit transfer-unit ops to keep kernels
	// readable, particularly the particle-in-cell loops 13 and 14).
	OpFix   // Ai = int(Sj) truncated toward zero
	OpFloat // Si = float(Aj)

	// Memory (word addressed). Effective address is Aj + imm.
	OpLoadS  // Si = M[Aj + imm]
	OpStoreS // M[Aj + imm] = Si
	OpLoadA  // Ai = M[Aj + imm]
	OpStoreA // M[Aj + imm] = Ai

	// Branches. Conditional branches decide on A0 (the paper's model).
	OpJ   // jump always
	OpJAZ // jump if A0 == 0
	OpJAN // jump if A0 != 0
	OpJAP // jump if A0 >= 0
	OpJAM // jump if A0 < 0

	numOpcodes = int(OpJAM) + 1
)

// opInfo captures static per-opcode properties.
type opInfo struct {
	name    string
	unit    Unit
	parcels int
}

var opTable = [numOpcodes]opInfo{
	OpPass: {"PASS", Transfer, 1},

	OpAAdd:    {"A+", AddrAdd, 1},
	OpASub:    {"A-", AddrAdd, 1},
	OpAMul:    {"A*", AddrMul, 1},
	OpAImm:    {"A=", Transfer, 2},
	OpAAddImm: {"A+imm", AddrAdd, 2},

	OpSAdd:    {"S+", ScalarAdd, 1},
	OpSSub:    {"S-", ScalarAdd, 1},
	OpSAnd:    {"S&", ScalarLogical, 1},
	OpSOr:     {"S|", ScalarLogical, 1},
	OpSXor:    {"S^", ScalarLogical, 1},
	OpSShiftL: {"S<<", ScalarShift, 2},
	OpSShiftR: {"S>>", ScalarShift, 2},
	OpSImm:    {"S=", Transfer, 2},
	OpSPop:    {"POP", PopLZ, 1},
	OpSLZ:     {"LZ", PopLZ, 1},

	OpFAdd:  {"F+", FloatAdd, 1},
	OpFSub:  {"F-", FloatAdd, 1},
	OpFMul:  {"F*", FloatMul, 1},
	OpRecip: {"1/", Recip, 1},

	OpMoveAS: {"A<-S", Transfer, 1},
	OpMoveSA: {"S<-A", Transfer, 1},
	OpMoveAB: {"A<-B", Transfer, 1},
	OpMoveBA: {"B<-A", Transfer, 1},
	OpMoveST: {"S<-T", Transfer, 1},
	OpMoveTS: {"T<-S", Transfer, 1},

	OpFix:   {"FIX", Transfer, 1},
	OpFloat: {"FLOAT", Transfer, 1},

	OpLoadS:  {"LDS", Memory, 2},
	OpStoreS: {"STS", Memory, 2},
	OpLoadA:  {"LDA", Memory, 2},
	OpStoreA: {"STA", Memory, 2},

	OpJ:   {"J", Branch, 2},
	OpJAZ: {"JAZ", Branch, 2},
	OpJAN: {"JAN", Branch, 2},
	OpJAP: {"JAP", Branch, 2},
	OpJAM: {"JAM", Branch, 2},
}

// info returns the static properties of any opcode, scalar or vector.
func (o Opcode) info() opInfo {
	if int(o) < numOpcodes {
		return opTable[o]
	}
	if int(o) < numAllOpcodes {
		return vectorOpTable[int(o)-numOpcodes]
	}
	return opInfo{name: fmt.Sprintf("Opcode(%d)", uint8(o))}
}

// Valid reports whether o names a defined operation, scalar or
// vector. Trace validation uses it to reject corrupted streams before
// they reach a timing model.
func (o Opcode) Valid() bool { return int(o) < numAllOpcodes }

// String returns the opcode mnemonic root.
func (o Opcode) String() string {
	n := o.info().name
	if n == "" {
		return fmt.Sprintf("Opcode(%d)", uint8(o))
	}
	return n
}

// Unit reports the functional unit class the opcode executes in.
func (o Opcode) Unit() Unit { return o.info().unit }

// Parcels reports the instruction size: 1 parcel (16 bits) or 2
// parcels (32 bits). Two-parcel instructions hold the issue stage an
// extra cycle, per the CRAY-1S model.
func (o Opcode) Parcels() int { return o.info().parcels }

// IsBranch reports whether the opcode is a control transfer.
func (o Opcode) IsBranch() bool { return o.Unit() == Branch }

// IsConditional reports whether the opcode is a conditional branch
// (i.e. reads A0 to decide).
func (o Opcode) IsConditional() bool {
	switch o {
	case OpJAZ, OpJAN, OpJAP, OpJAM:
		return true
	}
	return false
}

// IsLoad reports whether the opcode reads memory.
func (o Opcode) IsLoad() bool { return o == OpLoadS || o == OpLoadA }

// IsStore reports whether the opcode writes memory.
func (o Opcode) IsStore() bool { return o == OpStoreS || o == OpStoreA }

// IsMemory reports whether the opcode uses the memory unit.
func (o Opcode) IsMemory() bool { return o.Unit() == Memory }
