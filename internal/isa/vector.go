package isa

// Vector extension. The paper studies the *scalar* units of CRAY-like
// machines and discusses in §3.2 how the same functional units serve
// vector operations ("clearly the functional units should be highly
// pipelined to allow for maximum overlap in the processing of
// successive elements of a vector"). This extension adds the CRAY-1's
// vector architecture so the vectorizable loops can also be run the
// way the CRAY would actually run them: V0-V7 (64 elements each), the
// VL vector-length register, strided vector memory references, and
// elementwise vector arithmetic. Chaining is a property of the vector
// machine model (internal/core), not of the ISA.

// VecLen is the number of elements in a vector register, as on the
// CRAY-1. Vector operations process min(VL, VecLen) elements.
const VecLen = 64

// Vector opcodes. Operand interpretation:
//
//   - OpVLSet: Dst=VL, Src1=Ak.
//   - OpVLoad: Dst=Vi, Src1=Aj (base register); Imm is the stride.
//   - OpVStore: Src1=Aj (base), Src2=Vi (data); Imm is the stride.
//   - OpMoveSV: Si = element Ak of Vj (Dst=Si, Src1=Vj, Src2=Ak), the
//     CRAY-1's 076 instruction, used to read back reduction results.
//   - Arithmetic: Dst=Vi, sources per the form; the "VS" forms
//     broadcast a scalar against a vector.
//
// Every vector opcode except OpVLSet implicitly reads VL.
const (
	OpVLSet  = Opcode(numOpcodes + iota) // VL = Ak
	OpVLoad                              // Vi = [Aj : s]
	OpVStore                             // [Aj : s] = Vi
	OpVFAdd                              // Vi = Vj +F Vk
	OpVFSub                              // Vi = Vj -F Vk
	OpVFMul                              // Vi = Vj *F Vk
	OpVSFAdd                             // Vi = Sj +F Vk (broadcast)
	OpVSFMul                             // Vi = Sj *F Vk (broadcast)
	OpMoveSV                             // Si = Vj[Ak]

	numAllOpcodes = numOpcodes + iota
)

var vectorOpTable = [numAllOpcodes - numOpcodes]opInfo{
	{"VL=", Transfer, 1},
	{"VLD", Memory, 1},
	{"VST", Memory, 1},
	{"V+F", FloatAdd, 1},
	{"V-F", FloatAdd, 1},
	{"V*F", FloatMul, 1},
	{"VS+F", FloatAdd, 1},
	{"VS*F", FloatMul, 1},
	{"S<-V", Transfer, 1},
}

// IsVector reports whether the opcode belongs to the vector
// extension. Note that OpMoveSV (an S-register result) counts: it
// reads a vector register and VL-independent element state.
func (o Opcode) IsVector() bool {
	return int(o) >= numOpcodes && int(o) < numAllOpcodes
}

// IsVectorMemory reports whether the opcode is a strided vector
// memory reference.
func (o Opcode) IsVectorMemory() bool { return o == OpVLoad || o == OpVStore }
