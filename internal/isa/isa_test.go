package isa

import (
	"strings"
	"testing"
)

func TestRegConstructors(t *testing.T) {
	cases := []struct {
		reg   Reg
		class RegClass
		index int
		str   string
	}{
		{A(0), ClassA, 0, "A0"},
		{A(7), ClassA, 7, "A7"},
		{S(0), ClassS, 0, "S0"},
		{S(7), ClassS, 7, "S7"},
		{B(0), ClassB, 0, "B0"},
		{B(63), ClassB, 63, "B63"},
		{T(0), ClassT, 0, "T0"},
		{T(63), ClassT, 63, "T63"},
	}
	for _, c := range cases {
		if got := c.reg.Class(); got != c.class {
			t.Errorf("%s: class = %v, want %v", c.str, got, c.class)
		}
		if got := c.reg.Index(); got != c.index {
			t.Errorf("%s: index = %d, want %d", c.str, got, c.index)
		}
		if got := c.reg.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
		if !c.reg.Valid() {
			t.Errorf("%s: Valid() = false", c.str)
		}
	}
}

func TestRegDistinct(t *testing.T) {
	seen := make(map[Reg]string)
	add := func(r Reg, name string) {
		if prev, dup := seen[r]; dup {
			t.Fatalf("register collision: %s and %s share value %d", prev, name, r)
		}
		seen[r] = name
	}
	for i := 0; i < NumA; i++ {
		add(A(i), A(i).String())
	}
	for i := 0; i < NumS; i++ {
		add(S(i), S(i).String())
	}
	for i := 0; i < NumB; i++ {
		add(B(i), B(i).String())
	}
	for i := 0; i < NumT; i++ {
		add(T(i), T(i).String())
	}
	for i := 0; i < NumV; i++ {
		add(V(i), V(i).String())
	}
	add(VL, "VL")
	if len(seen) != NumRegs {
		t.Fatalf("got %d distinct registers, want %d", len(seen), NumRegs)
	}
}

func TestRegOutOfRangePanics(t *testing.T) {
	for _, f := range []func(){
		func() { A(8) }, func() { A(-1) },
		func() { S(8) }, func() { B(64) }, func() { T(64) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range register constructor did not panic")
				}
			}()
			f()
		}()
	}
}

func TestNoReg(t *testing.T) {
	if NoReg.Valid() {
		t.Error("NoReg.Valid() = true")
	}
	if got := NoReg.String(); got != "-" {
		t.Errorf("NoReg.String() = %q, want -", got)
	}
}

func TestA0IsBranchRegister(t *testing.T) {
	if A0 != A(0) {
		t.Errorf("A0 = %v, want A(0)", A0)
	}
}

func TestLatencies(t *testing.T) {
	lat := NewLatencies(11, 5)
	want := map[Unit]int{
		AddrAdd: 2, AddrMul: 6, ScalarAdd: 3, ScalarShift: 2,
		ScalarLogical: 1, PopLZ: 3, FloatAdd: 6, FloatMul: 7,
		Recip: 14, Transfer: 1, Memory: 11, Branch: 5,
	}
	for u, w := range want {
		if got := lat.Of(u); got != w {
			t.Errorf("latency of %s = %d, want %d", u, got, w)
		}
	}
	fast := NewLatencies(5, 2)
	if fast.Of(Memory) != 5 || fast.Of(Branch) != 2 {
		t.Errorf("fast config: memory=%d branch=%d, want 5/2", fast.Of(Memory), fast.Of(Branch))
	}
	// Fixed latencies must not vary across configurations.
	if lat.Of(FloatMul) != fast.Of(FloatMul) {
		t.Error("FloatMul latency changed with configuration")
	}
}

func TestLatenciesPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewLatencies(0, 5) did not panic")
		}
	}()
	NewLatencies(0, 5)
}

func TestOpcodeProperties(t *testing.T) {
	cases := []struct {
		op      Opcode
		unit    Unit
		parcels int
	}{
		{OpPass, Transfer, 1},
		{OpAAdd, AddrAdd, 1},
		{OpAMul, AddrMul, 1},
		{OpAImm, Transfer, 2},
		{OpAAddImm, AddrAdd, 2},
		{OpSAdd, ScalarAdd, 1},
		{OpSAnd, ScalarLogical, 1},
		{OpSShiftL, ScalarShift, 2},
		{OpSPop, PopLZ, 1},
		{OpFAdd, FloatAdd, 1},
		{OpFMul, FloatMul, 1},
		{OpRecip, Recip, 1},
		{OpMoveST, Transfer, 1},
		{OpLoadS, Memory, 2},
		{OpStoreA, Memory, 2},
		{OpJ, Branch, 2},
		{OpJAZ, Branch, 2},
	}
	for _, c := range cases {
		if got := c.op.Unit(); got != c.unit {
			t.Errorf("%s: unit = %s, want %s", c.op, got, c.unit)
		}
		if got := c.op.Parcels(); got != c.parcels {
			t.Errorf("%s: parcels = %d, want %d", c.op, got, c.parcels)
		}
	}
}

func TestOpcodePredicates(t *testing.T) {
	if !OpJ.IsBranch() || !OpJAZ.IsBranch() || OpFAdd.IsBranch() {
		t.Error("IsBranch misclassifies")
	}
	if OpJ.IsConditional() || !OpJAN.IsConditional() {
		t.Error("IsConditional misclassifies")
	}
	if !OpLoadS.IsLoad() || !OpLoadA.IsLoad() || OpStoreS.IsLoad() {
		t.Error("IsLoad misclassifies")
	}
	if !OpStoreS.IsStore() || !OpStoreA.IsStore() || OpLoadA.IsStore() {
		t.Error("IsStore misclassifies")
	}
	if !OpLoadS.IsMemory() || !OpStoreA.IsMemory() || OpFMul.IsMemory() {
		t.Error("IsMemory misclassifies")
	}
}

func TestInstructionReads(t *testing.T) {
	var buf []Reg

	add := Instruction{Op: OpSAdd, Dst: S(1), Src1: S(2), Src2: S(3)}
	got := add.Reads(buf[:0])
	if len(got) != 2 || got[0] != S(2) || got[1] != S(3) {
		t.Errorf("SAdd reads = %v, want [S2 S3]", got)
	}

	// Conditional branches read A0 implicitly.
	jan := Instruction{Op: OpJAN, Dst: NoReg, Src1: NoReg, Src2: NoReg}
	got = jan.Reads(buf[:0])
	if len(got) != 1 || got[0] != A0 {
		t.Errorf("JAN reads = %v, want [A0]", got)
	}

	// Unconditional jump reads nothing.
	j := Instruction{Op: OpJ, Dst: NoReg, Src1: NoReg, Src2: NoReg}
	if got = j.Reads(buf[:0]); len(got) != 0 {
		t.Errorf("J reads = %v, want []", got)
	}

	// Stores read base and data registers.
	st := Instruction{Op: OpStoreS, Dst: NoReg, Src1: A(2), Src2: S(1)}
	got = st.Reads(buf[:0])
	if len(got) != 2 || got[0] != A(2) || got[1] != S(1) {
		t.Errorf("StoreS reads = %v, want [A2 S1]", got)
	}
}

func TestProgramValidate(t *testing.T) {
	good := &Program{
		Name: "good",
		Code: []Instruction{
			{Op: OpAImm, Dst: A(1), Src1: NoReg, Src2: NoReg, Imm: 1},
			{Op: OpJ, Dst: NoReg, Src1: NoReg, Src2: NoReg, Target: 0},
		},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}

	cases := []struct {
		name string
		in   Instruction
		want string
	}{
		{"branch target out of range", Instruction{Op: OpJ, Dst: NoReg, Src1: NoReg, Src2: NoReg, Target: 99}, "target"},
		{"missing destination", Instruction{Op: OpSAdd, Dst: NoReg, Src1: S(1), Src2: S(2)}, "destination"},
		{"missing first source", Instruction{Op: OpSAdd, Dst: S(1), Src1: NoReg, Src2: S(2)}, "first source"},
		{"missing second source", Instruction{Op: OpSAdd, Dst: S(1), Src1: S(2), Src2: NoReg}, "second source"},
		{"store missing data", Instruction{Op: OpStoreS, Dst: NoReg, Src1: A(1), Src2: NoReg}, "second source"},
	}
	for _, c := range cases {
		p := &Program{Name: c.name, Code: []Instruction{c.in}}
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted bad program", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestDisassembleLabels(t *testing.T) {
	p := &Program{
		Name: "p",
		Code: []Instruction{
			{Op: OpAImm, Dst: A(1), Src1: NoReg, Src2: NoReg, Imm: 3},
			{Op: OpJAN, Dst: NoReg, Src1: NoReg, Src2: NoReg, Target: 0},
		},
		Labels: map[string]int{"top": 0},
	}
	dis := p.Disassemble()
	if !strings.Contains(dis, "top:") {
		t.Errorf("disassembly lost label:\n%s", dis)
	}
	if !strings.Contains(dis, "JAN top") {
		t.Errorf("disassembly did not symbolize branch target:\n%s", dis)
	}
}

func TestUnitString(t *testing.T) {
	for u := 0; u < NumUnits; u++ {
		s := Unit(u).String()
		if s == "" || strings.HasPrefix(s, "Unit(") {
			t.Errorf("unit %d has no name", u)
		}
	}
}

func TestVectorRegisters(t *testing.T) {
	if V(0).Class() != ClassV || V(7).Index() != 7 || V(3).String() != "V3" {
		t.Error("vector register properties wrong")
	}
	if VL.Class() != ClassVL || VL.String() != "VL" || !VL.Valid() {
		t.Error("VL register properties wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("V(8) did not panic")
		}
	}()
	V(8)
}

func TestVectorOpcodes(t *testing.T) {
	cases := []struct {
		op   Opcode
		unit Unit
	}{
		{OpVLSet, Transfer}, {OpVLoad, Memory}, {OpVStore, Memory},
		{OpVFAdd, FloatAdd}, {OpVFSub, FloatAdd}, {OpVFMul, FloatMul},
		{OpVSFAdd, FloatAdd}, {OpVSFMul, FloatMul}, {OpMoveSV, Transfer},
	}
	for _, c := range cases {
		if !c.op.IsVector() {
			t.Errorf("%s: IsVector() = false", c.op)
		}
		if c.op.Unit() != c.unit {
			t.Errorf("%s: unit %s, want %s", c.op, c.op.Unit(), c.unit)
		}
		if c.op.Parcels() != 1 {
			t.Errorf("%s: parcels != 1", c.op)
		}
	}
	if OpFAdd.IsVector() || OpJ.IsVector() {
		t.Error("scalar opcode classified as vector")
	}
	if !OpVLoad.IsVectorMemory() || !OpVStore.IsVectorMemory() || OpVFAdd.IsVectorMemory() {
		t.Error("IsVectorMemory misclassifies")
	}
}

func TestVectorReadsIncludeVL(t *testing.T) {
	var buf []Reg
	add := Instruction{Op: OpVFAdd, Dst: V(1), Src1: V(2), Src2: V(3)}
	got := add.Reads(buf[:0])
	if len(got) != 3 || got[2] != VL {
		t.Errorf("vector add reads %v, want [V2 V3 VL]", got)
	}
	vlset := Instruction{Op: OpVLSet, Dst: VL, Src1: A(4), Src2: NoReg}
	got = vlset.Reads(buf[:0])
	if len(got) != 1 || got[0] != A(4) {
		t.Errorf("VLSet reads %v, want [A4]", got)
	}
}

func TestInstructionStringAllOpcodes(t *testing.T) {
	// Every opcode renders without the "?" fallback (full String
	// coverage also guards against forgetting a case when opcodes are
	// added).
	for op := Opcode(0); int(op) < numAllOpcodes; op++ {
		in := Instruction{Op: op, Dst: S(1), Src1: S(2), Src2: S(3)}
		switch op {
		case OpVLSet:
			in = Instruction{Op: op, Dst: VL, Src1: A(1), Src2: NoReg}
		case OpVLoad:
			in = Instruction{Op: op, Dst: V(1), Src1: A(1), Src2: NoReg, Imm: 2}
		case OpVStore:
			in = Instruction{Op: op, Dst: NoReg, Src1: A(1), Src2: V(1), Imm: 2}
		}
		if s := in.String(); strings.Contains(s, "?") {
			t.Errorf("opcode %d (%s) renders as %q", op, op, s)
		}
	}
}

func TestLatencyOverride(t *testing.T) {
	base := NewLatencies(11, 5)
	l := base.WithOverride(FloatMul, 4)
	if l.Of(FloatMul) != 4 {
		t.Errorf("override: FloatMul = %d, want 4", l.Of(FloatMul))
	}
	if base.Of(FloatMul) != 7 {
		t.Errorf("WithOverride mutated the receiver: FloatMul = %d", base.Of(FloatMul))
	}
	if l.Of(FloatAdd) != 6 || l.Of(Memory) != 11 {
		t.Error("override touched unrelated units")
	}
	defer func() {
		if recover() == nil {
			t.Error("WithOverride(0) did not panic")
		}
	}()
	base.WithOverride(FloatAdd, 0)
}

func TestParseUnit(t *testing.T) {
	for u := 0; u < NumUnits; u++ {
		got, err := ParseUnit(Unit(u).String())
		if err != nil || got != Unit(u) {
			t.Errorf("ParseUnit(%q) = %v, %v", Unit(u).String(), got, err)
		}
	}
	if _, err := ParseUnit("Teleport"); err == nil {
		t.Error("unknown unit name accepted")
	}
}

func TestDefaultLatency(t *testing.T) {
	if DefaultLatency(FloatMul) != 7 || DefaultLatency(Recip) != 14 {
		t.Error("fixed latencies wrong")
	}
	if DefaultLatency(Memory) != 0 || DefaultLatency(Branch) != 0 {
		t.Error("machine-parameter units must report 0")
	}
}
