package isa

import "fmt"

// Unit identifies a hardware functional-unit class. The base machine
// has exactly one unit of each class; whether a unit is segmented
// (pipelined) and whether the memory "unit" is interleaved are
// properties of the machine organization, not of the ISA, and live in
// the timing models.
type Unit uint8

// Functional-unit classes of the base architecture. Latencies follow
// the CRAY-1 hardware reference manual; Memory and Branch latencies
// are machine parameters (11/5 and 5/2 cycles) and therefore have no
// fixed entry here.
const (
	AddrAdd       Unit = iota // address add/subtract, 2 cycles
	AddrMul                   // address multiply, 6 cycles
	ScalarAdd                 // scalar integer add/subtract, 3 cycles
	ScalarShift               // scalar shift, 2 cycles
	ScalarLogical             // scalar mask/merge/boolean, 1 cycle
	PopLZ                     // population / leading-zero count, 3 cycles
	FloatAdd                  // floating add/subtract, 6 cycles
	FloatMul                  // floating multiply, 7 cycles
	Recip                     // reciprocal approximation, 14 cycles
	Transfer                  // immediates, A<->S and B/T moves, 1 cycle
	Memory                    // loads and stores, 11 or 5 cycles
	Branch                    // jumps, 5 or 2 cycles

	// NumUnits is the number of functional-unit classes.
	NumUnits = int(Branch) + 1
)

var unitNames = [NumUnits]string{
	"AddrAdd", "AddrMul", "ScalarAdd", "ScalarShift", "ScalarLogical",
	"PopLZ", "FloatAdd", "FloatMul", "Recip", "Transfer", "Memory",
	"Branch",
}

// String returns the unit class name.
func (u Unit) String() string {
	if int(u) < NumUnits {
		return unitNames[u]
	}
	return fmt.Sprintf("Unit(%d)", uint8(u))
}

// fixedLatency holds the cycle counts of the units whose timing does
// not vary across the machine organizations studied in the paper.
var fixedLatency = [NumUnits]int{
	AddrAdd:       2,
	AddrMul:       6,
	ScalarAdd:     3,
	ScalarShift:   2,
	ScalarLogical: 1,
	PopLZ:         3,
	FloatAdd:      6,
	FloatMul:      7,
	Recip:         14,
	Transfer:      1,
	Memory:        0, // machine parameter
	Branch:        0, // machine parameter
}

// Latencies maps every functional-unit class to its latency in clock
// cycles for one machine variation. The paper's four variations are
// the cross product of memory access time (11 or 5) and branch
// execution time (5 or 2).
type Latencies struct {
	table [NumUnits]int
}

// NewLatencies builds the latency table for a machine with the given
// memory access time and branch execution time.
func NewLatencies(memory, branch int) Latencies {
	if memory <= 0 || branch <= 0 {
		panic(fmt.Sprintf("isa: non-positive latency (memory=%d, branch=%d)", memory, branch))
	}
	l := Latencies{table: fixedLatency}
	l.table[Memory] = memory
	l.table[Branch] = branch
	return l
}

// Of returns the latency of unit u: the number of cycles from the
// cycle an operation enters the unit until its result is available.
func (l Latencies) Of(u Unit) int { return l.table[u] }

// DefaultLatency returns the fixed base-architecture latency of unit
// u, or 0 for the machine-parameter units (Memory, Branch), whose
// timing is set per machine via NewLatencies.
func DefaultLatency(u Unit) int { return fixedLatency[u] }

// ParseUnit resolves a functional-unit class by its String name
// ("FloatAdd", "Memory", ...).
func ParseUnit(name string) (Unit, error) {
	for i, n := range unitNames {
		if n == name {
			return Unit(i), nil
		}
	}
	return 0, fmt.Errorf("isa: unknown functional-unit class %q", name)
}

// WithOverride returns a copy of l with unit u's latency replaced by
// cycles. It is the design-space knob behind core.Config.FULat: the
// base table stays the CRAY-1 reference, and a study that asks "what
// if the floating multiplier took 4 cycles" overrides exactly that
// entry. Non-positive cycles panic, like NewLatencies.
func (l Latencies) WithOverride(u Unit, cycles int) Latencies {
	if cycles <= 0 {
		panic(fmt.Sprintf("isa: non-positive latency override for %s: %d", u, cycles))
	}
	l.table[u] = cycles
	return l
}
