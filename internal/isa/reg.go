// Package isa defines the CRAY-like instruction set architecture used
// throughout the simulator suite: register classes, opcodes, functional
// units and their latencies, and the static program representation.
//
// The architecture follows the base machine of Pleszkun & Sohi (1988):
// the CRAY-1S instruction set with 1-parcel (16-bit) and 2-parcel
// (32-bit) instructions, eight address registers (A0-A7), eight scalar
// registers (S0-S7), and the B/T backup register files (B0-B63,
// T0-T63). Branch decisions are made on register A0, as in the paper.
package isa

import "fmt"

// Reg identifies an architectural register. Registers from all
// classes share one flat namespace so that scoreboards and renaming
// tables can be simple dense arrays indexed by Reg.
//
// Layout: A0-A7 occupy 0-7, S0-S7 occupy 8-15, B0-B63 occupy 16-79,
// T0-T63 occupy 80-143, the vector extension's V0-V7 occupy 144-151,
// and VL occupies 152. NoReg (-1) marks an absent operand.
type Reg int16

// NoReg marks an unused operand slot (e.g. the destination of a store).
const NoReg Reg = -1

// Register file geometry.
const (
	NumA = 8  // address registers A0-A7
	NumS = 8  // scalar registers S0-S7
	NumB = 64 // address backup registers B0-B63
	NumT = 64 // scalar backup registers T0-T63
	NumV = 8  // vector registers V0-V7 (extension)

	baseA = 0
	baseS = baseA + NumA
	baseB = baseS + NumS
	baseT = baseB + NumB
	baseV = baseT + NumT
	vlIdx = baseV + NumV

	// NumRegs is the total number of architectural registers
	// (including the vector extension); every Reg other than NoReg
	// satisfies 0 <= r < NumRegs.
	NumRegs = vlIdx + 1
)

// A returns the Reg for address register Ai. It panics if i is out of
// range; register construction happens at assembly time, where a
// malformed index is a programming error in the assembler itself.
func A(i int) Reg {
	mustRange("A", i, NumA)
	return Reg(baseA + i)
}

// S returns the Reg for scalar register Si.
func S(i int) Reg {
	mustRange("S", i, NumS)
	return Reg(baseS + i)
}

// B returns the Reg for backup address register Bi.
func B(i int) Reg {
	mustRange("B", i, NumB)
	return Reg(baseB + i)
}

// T returns the Reg for backup scalar register Ti.
func T(i int) Reg {
	mustRange("T", i, NumT)
	return Reg(baseT + i)
}

func mustRange(class string, i, n int) {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("isa: register %s%d out of range [0,%d)", class, i, n))
	}
}

// RegClass distinguishes the four architectural register files.
type RegClass uint8

// Register classes.
const (
	ClassA  RegClass = iota // address registers
	ClassS                  // scalar registers
	ClassB                  // address backup registers
	ClassT                  // scalar backup registers
	ClassV                  // vector registers (extension)
	ClassVL                 // the vector-length register (extension)
)

// String returns the conventional single-letter class name.
func (c RegClass) String() string {
	switch c {
	case ClassA:
		return "A"
	case ClassS:
		return "S"
	case ClassB:
		return "B"
	case ClassT:
		return "T"
	case ClassV:
		return "V"
	case ClassVL:
		return "VL"
	}
	return fmt.Sprintf("RegClass(%d)", uint8(c))
}

// Class reports which register file r belongs to.
func (r Reg) Class() RegClass {
	switch {
	case r < baseS:
		return ClassA
	case r < baseB:
		return ClassS
	case r < baseT:
		return ClassB
	case r < baseV:
		return ClassT
	case r < vlIdx:
		return ClassV
	default:
		return ClassVL
	}
}

// Index returns r's index within its register file (e.g. 3 for S3).
func (r Reg) Index() int {
	switch r.Class() {
	case ClassA:
		return int(r) - baseA
	case ClassS:
		return int(r) - baseS
	case ClassB:
		return int(r) - baseB
	case ClassT:
		return int(r) - baseT
	case ClassV:
		return int(r) - baseV
	default:
		return 0
	}
}

// Valid reports whether r names an actual register (not NoReg and in
// range).
func (r Reg) Valid() bool { return r >= 0 && int(r) < NumRegs }

// String renders the register in assembly syntax, e.g. "A0", "S7",
// "B12", "T63", "V3", "VL". NoReg renders as "-".
func (r Reg) String() string {
	if !r.Valid() {
		return "-"
	}
	if r.Class() == ClassVL {
		return "VL"
	}
	return fmt.Sprintf("%s%d", r.Class(), r.Index())
}

// A0 is the branch decision register of the architecture; conditional
// branches test its value, as in the CRAY-1S model of the paper.
var A0 = A(0)

// V returns the Reg for vector register Vi (extension).
func V(i int) Reg {
	mustRange("V", i, NumV)
	return Reg(baseV + i)
}

// VL is the vector-length register (extension): every vector
// operation processes VL elements. Written by OpVLSet, implicitly
// read by every other vector instruction.
var VL = Reg(vlIdx)
