package isa

import (
	"fmt"
	"strings"
)

// Instruction is one static instruction of a Program.
//
// The operand fields are interpreted per opcode:
//
//   - Dst: destination register (NoReg for stores, branches, PASS).
//   - Src1, Src2: source registers (NoReg when unused). For memory
//     operations Src1 is the base address register; for stores Src2 is
//     the data register.
//   - Imm: immediate constant, shift count, or address offset.
//   - Target: branch target as an instruction index within the
//     program, resolved by the assembler.
type Instruction struct {
	Op     Opcode
	Dst    Reg
	Src1   Reg
	Src2   Reg
	Imm    int64
	Target int
}

// Unit reports the functional unit the instruction executes in.
func (in Instruction) Unit() Unit { return in.Op.Unit() }

// Parcels reports the instruction's size in 16-bit parcels.
func (in Instruction) Parcels() int { return in.Op.Parcels() }

// Reads appends the registers the instruction reads to dst and
// returns the extended slice. Conditional branches read A0.
func (in Instruction) Reads(dst []Reg) []Reg {
	if in.Src1.Valid() {
		dst = append(dst, in.Src1)
	}
	if in.Src2.Valid() {
		dst = append(dst, in.Src2)
	}
	if in.Op.IsConditional() {
		dst = append(dst, A0)
	}
	if in.Op.IsVector() && in.Op != OpVLSet {
		dst = append(dst, VL)
	}
	return dst
}

// Writes returns the register the instruction writes, or NoReg.
func (in Instruction) Writes() Reg { return in.Dst }

// String renders the instruction in the assembly syntax accepted by
// internal/asm.
func (in Instruction) String() string {
	switch in.Op {
	case OpPass:
		return "PASS"
	case OpAAdd, OpSAdd:
		return fmt.Sprintf("%s = %s + %s", in.Dst, in.Src1, in.Src2)
	case OpASub, OpSSub:
		return fmt.Sprintf("%s = %s - %s", in.Dst, in.Src1, in.Src2)
	case OpAMul:
		return fmt.Sprintf("%s = %s * %s", in.Dst, in.Src1, in.Src2)
	case OpAImm, OpSImm:
		return fmt.Sprintf("%s = %d", in.Dst, in.Imm)
	case OpAAddImm:
		return fmt.Sprintf("%s = %s + %d", in.Dst, in.Src1, in.Imm)
	case OpSAnd:
		return fmt.Sprintf("%s = %s & %s", in.Dst, in.Src1, in.Src2)
	case OpSOr:
		return fmt.Sprintf("%s = %s | %s", in.Dst, in.Src1, in.Src2)
	case OpSXor:
		return fmt.Sprintf("%s = %s ^ %s", in.Dst, in.Src1, in.Src2)
	case OpSShiftL:
		return fmt.Sprintf("%s = %s << %d", in.Dst, in.Src1, in.Imm)
	case OpSShiftR:
		return fmt.Sprintf("%s = %s >> %d", in.Dst, in.Src1, in.Imm)
	case OpSPop:
		return fmt.Sprintf("%s = POP %s", in.Dst, in.Src1)
	case OpSLZ:
		return fmt.Sprintf("%s = LZ %s", in.Dst, in.Src1)
	case OpFAdd:
		return fmt.Sprintf("%s = %s +F %s", in.Dst, in.Src1, in.Src2)
	case OpFSub:
		return fmt.Sprintf("%s = %s -F %s", in.Dst, in.Src1, in.Src2)
	case OpFMul:
		return fmt.Sprintf("%s = %s *F %s", in.Dst, in.Src1, in.Src2)
	case OpRecip:
		return fmt.Sprintf("%s = 1 / %s", in.Dst, in.Src1)
	case OpMoveAS, OpMoveSA, OpMoveAB, OpMoveBA, OpMoveST, OpMoveTS:
		return fmt.Sprintf("%s = %s", in.Dst, in.Src1)
	case OpFix:
		return fmt.Sprintf("%s = FIX %s", in.Dst, in.Src1)
	case OpFloat:
		return fmt.Sprintf("%s = FLOAT %s", in.Dst, in.Src1)
	case OpLoadS, OpLoadA:
		return fmt.Sprintf("%s = [%s + %d]", in.Dst, in.Src1, in.Imm)
	case OpStoreS, OpStoreA:
		return fmt.Sprintf("[%s + %d] = %s", in.Src1, in.Imm, in.Src2)
	case OpJ, OpJAZ, OpJAN, OpJAP, OpJAM:
		return fmt.Sprintf("%s @%d", in.Op, in.Target)
	case OpVLSet:
		return fmt.Sprintf("VL = %s", in.Src1)
	case OpVLoad:
		return fmt.Sprintf("%s = [%s : %d]", in.Dst, in.Src1, in.Imm)
	case OpVStore:
		return fmt.Sprintf("[%s : %d] = %s", in.Src1, in.Imm, in.Src2)
	case OpVFAdd, OpVSFAdd:
		return fmt.Sprintf("%s = %s +F %s", in.Dst, in.Src1, in.Src2)
	case OpVFSub:
		return fmt.Sprintf("%s = %s -F %s", in.Dst, in.Src1, in.Src2)
	case OpVFMul, OpVSFMul:
		return fmt.Sprintf("%s = %s *F %s", in.Dst, in.Src1, in.Src2)
	case OpMoveSV:
		return fmt.Sprintf("%s = %s [ %s ]", in.Dst, in.Src1, in.Src2)
	}
	return fmt.Sprintf("%s ?", in.Op)
}

// Program is an assembled program: a flat instruction sequence plus
// the label table that produced it (kept for disassembly and error
// reporting).
type Program struct {
	Name   string
	Code   []Instruction
	Labels map[string]int // label name -> instruction index
}

// LabelAt returns the name of a label bound to instruction index i,
// or "" if none.
func (p *Program) LabelAt(i int) string {
	for name, idx := range p.Labels {
		if idx == i {
			return name
		}
	}
	return ""
}

// Disassemble renders the program as assembly text, one instruction
// per line, with labels re-inserted and branch targets symbolic where
// possible.
func (p *Program) Disassemble() string {
	// Invert the label table deterministically: first label wins is
	// unacceptable for map iteration, so collect per index.
	byIndex := make(map[int]string, len(p.Labels))
	for name, idx := range p.Labels {
		if old, ok := byIndex[idx]; !ok || name < old {
			byIndex[idx] = name
		}
	}
	var b strings.Builder
	for i, in := range p.Code {
		if lbl, ok := byIndex[i]; ok {
			fmt.Fprintf(&b, "%s:\n", lbl)
		}
		if in.Op.IsBranch() {
			tgt := fmt.Sprintf("@%d", in.Target)
			if lbl, ok := byIndex[in.Target]; ok {
				tgt = lbl
			}
			if in.Op == OpJ {
				fmt.Fprintf(&b, "    J %s\n", tgt)
			} else {
				fmt.Fprintf(&b, "    %s %s\n", in.Op, tgt)
			}
			continue
		}
		fmt.Fprintf(&b, "    %s\n", in)
	}
	if lbl, ok := byIndex[len(p.Code)]; ok {
		fmt.Fprintf(&b, "%s:\n", lbl)
	}
	return b.String()
}

// Validate checks structural well-formedness: branch targets in
// range, operand registers present where the opcode requires them.
// It returns the first problem found.
func (p *Program) Validate() error {
	for i, in := range p.Code {
		if int(in.Op) >= numAllOpcodes {
			return fmt.Errorf("%s: instruction %d: invalid opcode %d", p.Name, i, in.Op)
		}
		if in.Op.IsBranch() {
			if in.Target < 0 || in.Target > len(p.Code) {
				return fmt.Errorf("%s: instruction %d: branch target %d out of range [0,%d]",
					p.Name, i, in.Target, len(p.Code))
			}
			continue
		}
		needDst, needSrc1, needSrc2 := operandShape(in.Op)
		if needDst && !in.Dst.Valid() {
			return fmt.Errorf("%s: instruction %d (%s): missing destination", p.Name, i, in.Op)
		}
		if needSrc1 && !in.Src1.Valid() {
			return fmt.Errorf("%s: instruction %d (%s): missing first source", p.Name, i, in.Op)
		}
		if needSrc2 && !in.Src2.Valid() {
			return fmt.Errorf("%s: instruction %d (%s): missing second source", p.Name, i, in.Op)
		}
	}
	return nil
}

// operandShape reports which operand fields an opcode requires.
func operandShape(op Opcode) (dst, src1, src2 bool) {
	switch op {
	case OpPass:
		return false, false, false
	case OpAImm, OpSImm:
		return true, false, false
	case OpAAddImm, OpSShiftL, OpSShiftR, OpSPop, OpSLZ, OpRecip,
		OpMoveAS, OpMoveSA, OpMoveAB, OpMoveBA, OpMoveST, OpMoveTS,
		OpFix, OpFloat, OpLoadS, OpLoadA:
		return true, true, false
	case OpStoreS, OpStoreA, OpVStore:
		return false, true, true
	case OpVLSet, OpVLoad:
		return true, true, false
	default: // three-operand register ops
		return true, true, true
	}
}
