// Package sched implements the "software code scheduling techniques"
// the paper's §6 names as one route to reducing instruction blockage
// at the issue stage: a static list scheduler that reorders the
// instructions of each basic block so that dependent instructions are
// separated by independent work.
//
// The scheduler preserves program semantics exactly:
//
//   - true (RAW), anti (WAR), and output (WAW) register dependences
//     are edges in the block's dependence DAG;
//   - memory is handled conservatively, since static addresses are
//     unknown: a store orders against every other memory operation,
//     while loads may reorder freely among themselves;
//   - a branch ends its block and stays last; instructions never move
//     across block boundaries, so branch targets (which are program
//     positions) remain valid because blocks keep their extents.
//
// Within those constraints, instructions are emitted greedily by
// descending critical-path priority (the longest latency-weighted
// path from the instruction to the end of its block), the classic
// list-scheduling heuristic compilers of the era used for the CRAY-1.
package sched

import (
	"sort"

	"mfup/internal/isa"
)

// Schedule returns a new program with each basic block list-scheduled
// under the given latency table. The input program is not modified.
// Scheduling never changes program length, block boundaries, or the
// label table.
func Schedule(p *isa.Program, lat isa.Latencies) *isa.Program {
	out := &isa.Program{
		Name:   p.Name + "+sched",
		Code:   make([]isa.Instruction, 0, len(p.Code)),
		Labels: make(map[string]int, len(p.Labels)),
	}
	for name, idx := range p.Labels {
		out.Labels[name] = idx
	}
	for _, block := range blocks(p) {
		out.Code = append(out.Code, scheduleBlock(p.Code[block.start:block.end], lat)...)
	}
	return out
}

// span is a half-open basic-block extent [start, end).
type span struct{ start, end int }

// blocks partitions the program into basic blocks. Leaders are the
// entry, every branch target, and every instruction after a branch.
func blocks(p *isa.Program) []span {
	if len(p.Code) == 0 {
		return nil
	}
	leader := make([]bool, len(p.Code)+1)
	leader[0] = true
	leader[len(p.Code)] = true
	for i, in := range p.Code {
		if in.Op.IsBranch() {
			if in.Target <= len(p.Code) {
				leader[in.Target] = true
			}
			if i+1 <= len(p.Code) {
				leader[i+1] = true
			}
		}
	}
	// Labels may be branched to from code we cannot see (none in
	// practice, but a label is an entry point by construction).
	for _, idx := range p.Labels {
		leader[idx] = true
	}
	var spans []span
	start := 0
	for i := 1; i <= len(p.Code); i++ {
		if leader[i] {
			spans = append(spans, span{start, i})
			start = i
		}
	}
	return spans
}

// depNode is one instruction in a block's dependence DAG.
type depNode struct {
	index    int   // position within the block (original order)
	preds    int   // unscheduled predecessors
	succs    []int // dependent successors
	priority int   // latency-weighted path to block end
}

// scheduleBlock list-schedules one block and returns the new order.
func scheduleBlock(code []isa.Instruction, lat isa.Latencies) []isa.Instruction {
	n := len(code)
	if n <= 2 {
		return append([]isa.Instruction(nil), code...)
	}

	nodes := make([]depNode, n)
	for i := range nodes {
		nodes[i].index = i
	}
	// addEdge orders i before j.
	edges := make(map[[2]int]bool, 4*n)
	addEdge := func(i, j int) {
		if i == j {
			return
		}
		key := [2]int{i, j}
		if edges[key] {
			return
		}
		edges[key] = true
		nodes[i].succs = append(nodes[i].succs, j)
		nodes[j].preds++
	}

	var (
		lastWriter  [isa.NumRegs]int // -1 = none
		lastReaders [isa.NumRegs][]int
		lastStore   = -1
		memOps      []int // loads and stores since the last store
		srcs        [3]isa.Reg
	)
	for r := range lastWriter {
		lastWriter[r] = -1
	}

	for j := 0; j < n; j++ {
		in := code[j]
		for _, r := range in.Reads(srcs[:0]) {
			if w := lastWriter[r]; w >= 0 {
				addEdge(w, j) // RAW
			}
			lastReaders[r] = append(lastReaders[r], j)
		}
		if d := in.Writes(); d.Valid() {
			if w := lastWriter[d]; w >= 0 {
				addEdge(w, j) // WAW
			}
			for _, r := range lastReaders[d] {
				addEdge(r, j) // WAR
			}
			lastWriter[d] = j
			lastReaders[d] = lastReaders[d][:0]
		}
		if in.Op.IsMemory() {
			if in.Op.IsStore() {
				// A store orders against every memory op since the
				// previous store, and against that store.
				if lastStore >= 0 {
					addEdge(lastStore, j)
				}
				for _, m := range memOps {
					addEdge(m, j)
				}
				lastStore = j
				memOps = memOps[:0]
			} else {
				if lastStore >= 0 {
					addEdge(lastStore, j) // load after store
				}
				memOps = append(memOps, j)
			}
		}
		if in.Op.IsBranch() {
			// The branch is the block terminator: everything precedes it.
			for i := 0; i < j; i++ {
				addEdge(i, j)
			}
		}
	}

	// Priorities: longest latency-weighted path to the block end,
	// computed backwards (successors are always later in original
	// order, so a reverse sweep sees them finished).
	for j := n - 1; j >= 0; j-- {
		best := 0
		for _, s := range nodes[j].succs {
			if nodes[s].priority > best {
				best = nodes[s].priority
			}
		}
		nodes[j].priority = best + lat.Of(code[j].Unit())
	}

	// Cycle-aware greedy emission against a one-instruction-per-cycle
	// issue model: at each slot prefer, among instructions whose
	// operands would already be available, the one with the highest
	// critical-path priority; if none is available yet, take the one
	// that becomes available soonest. This is what interleaves
	// independent work into the latency shadows of long operations.
	var (
		avail = make([]int64, n) // earliest cycle operands are ready
		out   = make([]isa.Instruction, 0, n)
		ready = make([]int, 0, n)
		clock int64
	)
	for j := range nodes {
		if nodes[j].preds == 0 {
			ready = append(ready, j)
		}
	}
	for len(ready) > 0 {
		sort.Slice(ready, func(a, b int) bool {
			na, nb := ready[a], ready[b]
			ra, rb := avail[na] <= clock, avail[nb] <= clock
			if ra != rb {
				return ra // available-now first
			}
			if !ra { // neither available: soonest first
				if avail[na] != avail[nb] {
					return avail[na] < avail[nb]
				}
			}
			if nodes[na].priority != nodes[nb].priority {
				return nodes[na].priority > nodes[nb].priority
			}
			return nodes[na].index < nodes[nb].index
		})
		pick := ready[0]
		ready = ready[1:]
		if avail[pick] > clock {
			clock = avail[pick]
		}
		out = append(out, code[pick])
		done := clock + int64(lat.Of(code[pick].Unit()))
		clock++
		for _, s := range nodes[pick].succs {
			if done > avail[s] {
				avail[s] = done
			}
			nodes[s].preds--
			if nodes[s].preds == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(out) != n {
		// A cycle in the DAG would be a construction bug.
		panic("sched: dependence graph did not drain")
	}
	return out
}
