package sched

import (
	"testing"

	"mfup/internal/asm"
	"mfup/internal/core"
	"mfup/internal/emu"
	"mfup/internal/isa"
	"mfup/internal/loops"
)

var lat115 = isa.NewLatencies(11, 5)

// TestPreservesKernelSemantics is the scheduler's load-bearing test:
// every Livermore kernel, after scheduling, still computes bit-exact
// results against its reference implementation.
func TestPreservesKernelSemantics(t *testing.T) {
	for _, k := range loops.All() {
		s := Schedule(k.Program(), lat115)
		if err := s.Validate(); err != nil {
			t.Errorf("%s: scheduled program invalid: %v", k, err)
			continue
		}
		m := k.NewMachine()
		if _, err := m.Run(s); err != nil {
			t.Errorf("%s: scheduled program failed: %v", k, err)
			continue
		}
		if err := k.Validate(m); err != nil {
			t.Errorf("%s: scheduled program computed wrong results: %v", k, err)
		}
	}
}

// TestSchedulingHelpsOrIsNeutral: on the single-issue CRAY-like
// machine, scheduled code should run at least as fast as the original
// on the suite aggregate, and never collapse on any single loop.
func TestSchedulingHelpsOrIsNeutral(t *testing.T) {
	machine := core.NewBasic(core.CRAYLike, core.M11BR5)
	var sumBase, sumSched float64
	for _, k := range loops.All() {
		base := machine.Run(k.SharedTrace()).IssueRate()

		s := Schedule(k.Program(), core.M11BR5.Latencies())
		m := k.NewMachine()
		tr, err := m.Run(s)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		sched := machine.Run(tr).IssueRate()

		if sched < 0.9*base {
			t.Errorf("%s: scheduling slowed the loop from %.4f to %.4f", k, base, sched)
		}
		sumBase += base
		sumSched += sched
	}
	if sumSched < sumBase {
		t.Errorf("scheduling hurt the aggregate: %.4f -> %.4f", sumBase, sumSched)
	}
}

func TestLengthAndLabelsUnchanged(t *testing.T) {
	for _, k := range loops.All() {
		p := k.Program()
		s := Schedule(p, lat115)
		if len(s.Code) != len(p.Code) {
			t.Errorf("%s: length changed %d -> %d", k, len(p.Code), len(s.Code))
		}
		for name, idx := range p.Labels {
			if s.Labels[name] != idx {
				t.Errorf("%s: label %q moved %d -> %d", k, name, idx, s.Labels[name])
			}
		}
	}
}

func TestOriginalProgramUntouched(t *testing.T) {
	k, _ := loops.Get(7)
	p := k.Program()
	before := append([]isa.Instruction(nil), p.Code...)
	Schedule(p, lat115)
	for i := range before {
		if p.Code[i] != before[i] {
			t.Fatalf("Schedule mutated its input at instruction %d", i)
		}
	}
}

// TestReordersIndependentWork: a block with a long-latency head and
// independent tail work should hoist the long-latency op's consumers
// apart — concretely, the load's dependent must no longer be adjacent
// to it.
func TestReordersIndependentWork(t *testing.T) {
	p, err := asm.Assemble("t", `
    A1 = 64
    S1 = [A1]        ; 11-cycle load
    S2 = S1 +F S1    ; dependent on the load
    S3 = 5
    S4 = 7
    S5 = S3 + S4     ; independent integer work
    [A1 + 1] = S2
    [A1 + 2] = S5
`)
	if err != nil {
		t.Fatal(err)
	}
	s := Schedule(p, lat115)

	// Find the load and its consumer in the scheduled order.
	loadAt, consumerAt := -1, -1
	for i, in := range s.Code {
		if in.Op == isa.OpLoadS {
			loadAt = i
		}
		if in.Op == isa.OpFAdd {
			consumerAt = i
		}
	}
	if loadAt < 0 || consumerAt < 0 {
		t.Fatal("scheduled program lost instructions")
	}
	if consumerAt-loadAt < 2 {
		t.Errorf("scheduler left load and consumer adjacent (positions %d, %d):\n%s",
			loadAt, consumerAt, s.Disassemble())
	}

	// Semantics must hold.
	m := emu.New(128)
	m.SetFloat(64, 2.0)
	if _, err := m.Run(s); err != nil {
		t.Fatal(err)
	}
	if m.Float(65) != 4.0 || m.Int(66) != 12 {
		t.Errorf("scheduled program computed %v, %v; want 4.0, 12", m.Float(65), m.Int(66))
	}
}

// TestRespectsWAR: a reader must not be overtaken by a later writer
// of the same register.
func TestRespectsWAR(t *testing.T) {
	p, err := asm.Assemble("t", `
    A1 = 64
    S1 = 10
    S2 = S1 + S1     ; reads S1 (old value)
    S1 = 99          ; writes S1 after the read
    [A1] = S2
    [A1 + 1] = S1
`)
	if err != nil {
		t.Fatal(err)
	}
	s := Schedule(p, lat115)
	m := emu.New(128)
	if _, err := m.Run(s); err != nil {
		t.Fatal(err)
	}
	if m.Int(64) != 20 || m.Int(65) != 99 {
		t.Errorf("WAR violated: memory = %d, %d; want 20, 99", m.Int(64), m.Int(65))
	}
}

// TestRespectsStoreLoadOrder: a load may not move above a store that
// might alias it.
func TestRespectsStoreLoadOrder(t *testing.T) {
	p, err := asm.Assemble("t", `
    A1 = 64
    S1 = 7
    [A1] = S1        ; store
    S2 = [A1]        ; load of the same location
    S3 = S2 + S2
    [A1 + 1] = S3
`)
	if err != nil {
		t.Fatal(err)
	}
	s := Schedule(p, lat115)
	m := emu.New(128)
	if _, err := m.Run(s); err != nil {
		t.Fatal(err)
	}
	if m.Int(65) != 14 {
		t.Errorf("store->load order violated: got %d, want 14", m.Int(65))
	}
}

// TestBranchStaysLast: the loop-closing branch must terminate its
// block after scheduling.
func TestBranchStaysLast(t *testing.T) {
	for _, k := range loops.All() {
		s := Schedule(k.Program(), lat115)
		for i, in := range s.Code {
			if in.Op.IsBranch() && i+1 < len(s.Code) {
				// The next instruction must begin a block: it is either
				// a branch target or simply the fall-through leader;
				// what must NOT happen is a non-branch instruction of
				// the same original block following the branch. Since
				// blocks keep their extents, it suffices that the
				// instruction count between branches matches the
				// original program's.
				continue
			}
		}
		// Structural check: branch positions are identical to the
		// original (branches terminate blocks, and blocks keep their
		// extents).
		p := k.Program()
		for i := range p.Code {
			if p.Code[i].Op.IsBranch() != s.Code[i].Op.IsBranch() {
				t.Errorf("%s: branch moved from/to position %d", k, i)
			}
		}
	}
}

func TestEmptyAndTinyPrograms(t *testing.T) {
	empty := &isa.Program{Name: "empty", Labels: map[string]int{}}
	if got := Schedule(empty, lat115); len(got.Code) != 0 {
		t.Error("empty program grew")
	}
	one, _ := asm.Assemble("one", "PASS")
	if got := Schedule(one, lat115); len(got.Code) != 1 {
		t.Error("single-instruction program changed length")
	}
}
