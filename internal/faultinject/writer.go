package faultinject

import (
	"io"
	"strings"
)

// Writer resolves the write-site faults for one opened export file
// and, when one is armed, wraps w so it fails on the chosen Write
// call. With no armed fault (or no active injector) it returns w
// unchanged — the export path pays one map lookup per opened file,
// nothing per write.
//
// The site name is matched against each fault's Site: an exact match
// ("write.metrics") or the catch-all "write." arms the fault. Hit
// counting is per fault site pattern, so "the third metrics file"
// means the same thing regardless of what other sites were exercised
// in between.
func (in *Injector) Writer(site string, w io.Writer) io.Writer {
	if in == nil {
		return w
	}
	for i := range in.plan.Faults {
		f := &in.plan.Faults[i]
		if f.Kind != KindWriteErr && f.Kind != KindShortWrite {
			continue
		}
		if f.Site != site && f.Site != "write." {
			continue
		}
		if !f.covers(in.hit(f.Site)) {
			continue
		}
		in.firedAt(site)
		if f.Kind == KindShortWrite {
			return &shortWriter{w: w, site: site, at: f.at()}
		}
		return &failWriter{site: site, at: f.at()}
	}
	return w
}

// WrapWriter is the hook-site convenience: it consults the active
// injector and returns w unchanged when fault injection is off.
func WrapWriter(site string, w io.Writer) io.Writer {
	return Active().Writer(site, w)
}

// failWriter returns an injected error on Write call number at (and,
// stickily, on every call after — a broken file stays broken).
type failWriter struct {
	site   string
	at     int64
	calls  int64
	broken bool
}

func (fw *failWriter) Write(p []byte) (int, error) {
	fw.calls++
	if fw.broken || fw.calls >= fw.at {
		fw.broken = true
		return 0, &Error{Site: fw.site}
	}
	return len(p), nil
}

// Note: failWriter deliberately swallows the bytes of calls before
// the failing one instead of forwarding to the destination — once a
// file is fated to fail, nothing it wrote may be observable, which is
// exactly the contract the atomic writer must uphold (and the chaos
// tests verify: no partial file survives an injected write fault).

// shortWriter forwards to the destination until Write call number at,
// which writes only the first half of its buffer and returns
// io.ErrShortWrite; every later call fails the same way.
type shortWriter struct {
	w      io.Writer
	site   string
	at     int64
	calls  int64
	broken bool
}

func (sw *shortWriter) Write(p []byte) (int, error) {
	sw.calls++
	if sw.broken || sw.calls >= sw.at {
		sw.broken = true
		n, err := sw.w.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, io.ErrShortWrite
	}
	return sw.w.Write(p)
}

// SiteName derives the canonical write-site name for a path-flavored
// export: "write." plus the last dot-suffix-free element the caller
// passes. The CLIs use fixed literal sites instead; this helper
// exists for tests that synthesize sites from file names.
func SiteName(name string) string {
	if i := strings.LastIndex(name, "."); i > 0 {
		name = name[:i]
	}
	return "write." + name
}
