package faultinject

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"mfup/internal/isa"
	"mfup/internal/loops"
	"mfup/internal/trace"
)

func TestParsePlan(t *testing.T) {
	cases := []struct {
		spec string
		want Fault
	}{
		{"sim:panic", Fault{Site: "sim", Kind: KindPanic}},
		{"sim:panic:at=1000", Fault{Site: "sim", Kind: KindPanic, At: 1000}},
		{"sim:stall:at=500:machine=RUU", Fault{Site: "sim", Kind: KindStall, At: 500, Machine: "RUU"}},
		{"sim:err:times=2:transient", Fault{Site: "sim", Kind: KindError, Times: 2, Transient: true}},
		{"sim:err:after=2:trace=loop01", Fault{Site: "sim", Kind: KindError, After: 2, Trace: "loop01"}},
		{"write.metrics:werr", Fault{Site: "write.metrics", Kind: KindWriteErr}},
		{"write.trace:short:after=3:times=1", Fault{Site: "write.trace", Kind: KindShortWrite, After: 3, Times: 1}},
	}
	for _, c := range cases {
		p, err := ParsePlan(c.spec, 7)
		if err != nil {
			t.Errorf("ParsePlan(%q): %v", c.spec, err)
			continue
		}
		if len(p.Faults) != 1 || p.Faults[0] != c.want {
			t.Errorf("ParsePlan(%q) = %+v, want %+v", c.spec, p.Faults, c.want)
		}
		if p.Seed != 7 {
			t.Errorf("ParsePlan(%q) seed = %d, want 7", c.spec, p.Seed)
		}
		// The String round trip re-parses to the same fault.
		rt, err := ParsePlan(p.Faults[0].String(), 7)
		if err != nil || rt.Faults[0] != c.want {
			t.Errorf("round trip of %q via %q = %+v, %v", c.spec, p.Faults[0].String(), rt, err)
		}
	}

	if p, err := ParsePlan("sim:panic:at=10, write.metrics:werr", 1); err != nil || len(p.Faults) != 2 {
		t.Errorf("two-item plan = %+v, %v", p, err)
	}

	bad := []string{
		"", "sim", "sim:explode", "bogus:panic", "sim:werr", "write.x:panic",
		"sim:panic:at=0", "sim:panic:at=-3", "sim:panic:frobnicate",
		"sim:panic:transient", "write.x:werr:transient", "sim:err:at",
	}
	for _, spec := range bad {
		if p, err := ParsePlan(spec, 1); err == nil {
			t.Errorf("ParsePlan(%q) = %+v, want error", spec, p)
		}
	}
}

func TestSimFaultSelection(t *testing.T) {
	plan, err := ParsePlan("sim:err:after=2:times=1:machine=RUU:trace=loop01:transient", 1)
	if err != nil {
		t.Fatal(err)
	}
	in := New(plan)

	// Wrong machine and wrong trace never arm.
	if _, _, _, _, armed := in.SimFault("Simple", "loop01"); armed {
		t.Error("armed for non-matching machine")
	}
	if _, _, _, _, armed := in.SimFault("RUU(16)", "loop05"); armed {
		t.Error("armed for non-matching trace")
	}

	// Matching cell: hit 1 is before After, hit 2 fires, hit 3 is past
	// the Times window — the flaky-then-healed shape retry relies on.
	if _, _, _, _, armed := in.SimFault("RUU(16)", "loop01"); armed {
		t.Error("hit 1 armed, want clean (after=2)")
	}
	_, _, errAt, transient, armed := in.SimFault("RUU(16)", "loop01")
	if !armed || errAt != 1 || !transient {
		t.Errorf("hit 2: errAt=%d transient=%v armed=%v, want 1 true true", errAt, transient, armed)
	}
	if _, _, _, _, armed := in.SimFault("RUU(16)", "loop01"); armed {
		t.Error("hit 3 armed, want healed (times=1)")
	}

	// The non-matching probes above must not have consumed hits.
	sum := strings.Join(in.Summary(), "\n")
	if !strings.Contains(sum, "site sim: 3 hits, 1 faults armed") {
		t.Errorf("summary = %q", sum)
	}
}

func TestSimFaultKinds(t *testing.T) {
	plan, err := ParsePlan("sim:panic:at=10,sim:stall:at=20,sim:err:at=30", 1)
	if err != nil {
		t.Fatal(err)
	}
	panicAt, stallAt, errAt, transient, armed := New(plan).SimFault("Simple", "loop01")
	if panicAt != 10 || stallAt != 20 || errAt != 30 || transient || !armed {
		t.Errorf("got panicAt=%d stallAt=%d errAt=%d transient=%v armed=%v",
			panicAt, stallAt, errAt, transient, armed)
	}

	// A nil injector (injection off) never arms.
	var off *Injector
	if _, _, _, _, armed := off.SimFault("Simple", "loop01"); armed {
		t.Error("nil injector armed a fault")
	}
}

func TestWriterFail(t *testing.T) {
	plan, err := ParsePlan("write.metrics:werr:at=2", 1)
	if err != nil {
		t.Fatal(err)
	}
	in := New(plan)

	var dst bytes.Buffer
	w := in.Writer("write.metrics", &dst)
	if _, err := w.Write([]byte("first")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	_, err = w.Write([]byte("second"))
	var ferr *Error
	if !errors.As(err, &ferr) || ferr.Site != "write.metrics" {
		t.Fatalf("write 2 err = %v, want *Error at write.metrics", err)
	}
	if _, err := w.Write([]byte("third")); err == nil {
		t.Fatal("write 3 succeeded after failure; fail writers must stay broken")
	}
	// Nothing may reach the destination of a failing site: a file fated
	// to fail leaves no partial bytes.
	if dst.Len() != 0 {
		t.Errorf("destination got %q, want nothing", dst.String())
	}

	// Other sites pass through untouched (same writer identity).
	var clean bytes.Buffer
	if w := in.Writer("write.trace", &clean); w != io.Writer(&clean) {
		t.Error("non-matching site was wrapped")
	}
}

func TestWriterShort(t *testing.T) {
	plan, err := ParsePlan("write.trace:short:at=2", 1)
	if err != nil {
		t.Fatal(err)
	}
	var dst bytes.Buffer
	w := New(plan).Writer("write.trace", &dst)
	if n, err := w.Write([]byte("full-")); err != nil || n != 5 {
		t.Fatalf("write 1 = %d, %v", n, err)
	}
	n, err := w.Write([]byte("truncated"))
	if err != io.ErrShortWrite || n != 4 {
		t.Fatalf("write 2 = %d, %v, want 4, ErrShortWrite", n, err)
	}
	if got := dst.String(); got != "full-trun" {
		t.Errorf("destination = %q, want %q", got, "full-trun")
	}
}

func TestWriterCatchAllAndWindow(t *testing.T) {
	// "write." matches every write site; after=2:times=1 breaks only
	// the second opened file.
	plan, err := ParsePlan("write.:werr:after=2:times=1", 1)
	if err != nil {
		t.Fatal(err)
	}
	in := New(plan)
	var a, b, c bytes.Buffer
	w1 := in.Writer("write.metrics", &a)
	w2 := in.Writer("write.trace", &b)
	w3 := in.Writer("write.checkpoint", &c)
	if _, err := w1.Write([]byte("x")); err != nil {
		t.Errorf("file 1: %v", err)
	}
	if _, err := w2.Write([]byte("x")); err == nil {
		t.Error("file 2 should fail")
	}
	if _, err := w3.Write([]byte("x")); err != nil {
		t.Errorf("file 3: %v", err)
	}
}

func TestActivation(t *testing.T) {
	if Active() != nil {
		t.Fatal("injection active at test start")
	}
	plan, err := ParsePlan("write.x:werr", 1)
	if err != nil {
		t.Fatal(err)
	}
	in := New(plan)
	Activate(in)
	defer Deactivate()
	if Active() != in {
		t.Fatal("Active() did not return the activated injector")
	}
	if _, err := WrapWriter("write.x", io.Discard).Write([]byte("x")); err == nil {
		t.Error("activated injector did not wrap the writer")
	}
	Deactivate()
	if Active() != nil {
		t.Error("Deactivate left an injector active")
	}
	if w := WrapWriter("write.x", io.Discard); w != io.Discard {
		t.Error("WrapWriter wrapped with injection off")
	}
}

func TestRandDeterminism(t *testing.T) {
	a := Rand(1, 2, 3)
	if b := Rand(1, 2, 3); a != b {
		t.Errorf("Rand not deterministic: %x vs %x", a, b)
	}
	if Rand(1, 2, 4) == a || Rand(2, 2, 3) == a || Rand(1, 2) == a {
		t.Error("Rand collisions across distinct keys (astronomically unlikely)")
	}
}

func TestMutateTrace(t *testing.T) {
	k, err := loops.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	orig := k.SharedTrace()
	origLen := orig.Len()
	snapshot := make([]trace.Op, origLen)
	copy(snapshot, orig.Ops)

	for m := 0; m < NumMutations; m++ {
		mut := Mutation(m)
		mt := MutateTrace(orig, mut, 42)
		if !strings.Contains(mt.Name, mut.String()) {
			t.Errorf("%v: name %q does not record the class", mut, mt.Name)
		}
		again := MutateTrace(orig, mut, 42)
		if len(again.Ops) != len(mt.Ops) {
			t.Errorf("%v: not deterministic", mut)
		}
		damaged := false
		switch mut {
		case MutTruncate:
			damaged = mt.Len() < origLen && mt.Ops[mt.Len()-1].Parcels == 0
		case MutBadOpcode:
			for i := range mt.Ops {
				damaged = damaged || !mt.Ops[i].Code.Valid()
			}
		case MutBadReg:
			for i := range mt.Ops {
				o := &mt.Ops[i]
				for _, r := range []isa.Reg{o.Dst, o.Src1, o.Src2} {
					damaged = damaged || (r != isa.NoReg && !r.Valid())
				}
			}
		case MutBadUnit:
			for i := range mt.Ops {
				damaged = damaged || int(mt.Ops[i].Unit) >= isa.NumUnits
			}
		case MutBadParcels:
			for i := range mt.Ops {
				damaged = damaged || mt.Ops[i].Parcels < 0
			}
		case MutBadVLen:
			for i := range mt.Ops {
				damaged = damaged || mt.Ops[i].VLen > isa.VecLen
			}
		}
		if !damaged {
			t.Errorf("%v: mutated trace shows no corruption of its class", mut)
		}
	}

	// The shared source trace must be untouched: machines share it.
	if orig.Len() != origLen {
		t.Fatal("mutation changed the source trace length")
	}
	for i := range snapshot {
		if orig.Ops[i] != snapshot[i] {
			t.Fatalf("mutation modified shared source op %d", i)
		}
	}
}
