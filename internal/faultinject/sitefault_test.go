package faultinject

import (
	"strings"
	"testing"
)

// The daemon's serve.* hook sites accept the sim-flavored kinds, and
// SiteFault resolves them with the same After/Times hit windows the
// sim site honors.
func TestSiteFaultResolution(t *testing.T) {
	plan, err := ParsePlan("serve.accept:err:after=2:times=2:transient", 1)
	if err != nil {
		t.Fatal(err)
	}
	in := New(plan)

	want := []bool{false, true, true, false, false}
	for i, armed := range want {
		kind, _, transient, got := in.SiteFault("serve.accept")
		if got != armed {
			t.Fatalf("hit %d: armed = %v, want %v", i+1, got, armed)
		}
		if got && (kind != KindError || !transient) {
			t.Fatalf("hit %d: (%v, transient=%v), want transient err", i+1, kind, transient)
		}
	}
	// A different serve site has its own hit counter and no faults.
	if _, _, _, armed := in.SiteFault("serve.other"); armed {
		t.Error("fault leaked to an unarmed site")
	}
}

func TestSiteFaultStallCarriesAt(t *testing.T) {
	plan, err := ParsePlan("serve.accept:stall:at=25", 1)
	if err != nil {
		t.Fatal(err)
	}
	in := New(plan)
	kind, at, _, armed := in.SiteFault("serve.accept")
	if !armed || kind != KindStall || at != 25 {
		t.Fatalf("got (%v, at=%d, armed=%v), want (stall, 25, true)", kind, at, armed)
	}
}

// The nil injector (injection off) must be a no-op, matching the
// other hook sites' contract.
func TestSiteFaultNilInjector(t *testing.T) {
	var in *Injector
	if _, _, _, armed := in.SiteFault("serve.accept"); armed {
		t.Error("nil injector armed a fault")
	}
}

// The plan grammar accepts serve sites for both kind families and
// still rejects sim-flavored kinds at write sites (and vice versa).
func TestParseServeSites(t *testing.T) {
	for _, ok := range []string{
		"serve.accept:panic",
		"serve.accept:err:transient",
		"serve.accept:stall:at=10",
		"serve.respond:werr",
		"serve.respond:short:after=2",
	} {
		if _, err := ParsePlan(ok, 1); err != nil {
			t.Errorf("ParsePlan(%q): %v", ok, err)
		}
	}
	for _, bad := range []string{
		"write.cache:panic",
		"sim:werr",
		"bogus.accept:err",
	} {
		if _, err := ParsePlan(bad, 1); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

// A serve.respond werr fault must reach the wrapped response writer
// through the same Writer hook the export sites use.
func TestServeRespondWriterFault(t *testing.T) {
	plan, err := ParsePlan("serve.respond:werr", 1)
	if err != nil {
		t.Fatal(err)
	}
	in := New(plan)
	var sink strings.Builder
	w := in.Writer("serve.respond", &sink)
	if _, err := w.Write([]byte("body")); err == nil {
		t.Fatal("injected write fault did not fire")
	}
	if sink.Len() != 0 {
		t.Errorf("failing writer leaked %d bytes to the destination", sink.Len())
	}
}
