// Package faultinject is the deterministic, seedable fault-injection
// layer of the simulator suite: the mechanism by which the chaos
// tests — and a user running the CLIs with -faults — exercise the
// failure paths that production runs must survive.
//
// A fault Plan names hook points ("sites") threaded through the
// stack and the deliberate failures armed at each:
//
//   - "sim": the per-run guard of every machine model
//     (internal/simerr.Guard). Faults here fire at a chosen guard
//     tick of a run — a panic (exercising the runner's per-cell
//     recover), an injected structured error (optionally transient,
//     exercising retry), or a progress stall (tripping the
//     no-forward-progress watchdog for real).
//   - "write.<name>": the export sites — every file the tools write
//     (metrics, traces, profiles, checkpoints, binary traces) goes
//     through internal/atomicio, which wraps the destination in a
//     failing or short-writing io.Writer when a fault is armed.
//   - "serve.<name>": the daemon's request-path sites
//     (internal/serve): "serve.accept" fires on job admission — a
//     panic (exercising the handler's recover), an injected error
//     (a 500 the client must absorb), or a stall (the handler sleeps
//     At milliseconds, exercising client timeouts and queue
//     backpressure) — and "serve.respond" wraps the HTTP response
//     body writer, so a werr/short fault tears the connection after
//     the status line, exactly the mid-response crash a client's
//     retry logic must survive. The daemon's cache journal writes go
//     through the ordinary "write.cache" site.
//   - "peer.<name>": the cluster router's forwarding path
//     (internal/cluster): "peer.dial" fires as the router is about to
//     dispatch a request to a worker — an err fault models a connect
//     refusal (the dispatch fails without touching the network), a
//     stall sleeps At milliseconds first (a slow link) — and
//     "peer.respond" fires after a worker has answered: an err fault
//     drops the response on the floor (the worker did the work, the
//     router never sees it — exactly the lost-reply case hedged
//     retries and content-addressed idempotency exist for), and a
//     stall delays its delivery by At milliseconds (a slow peer, the
//     hedging trigger).
//
// Injection is disabled by default and compiles down to one atomic
// pointer load at each hook: Active returns nil unless a plan has
// been activated, and the simulation hot path consults the injector
// only once per run (at guard construction), never per cycle.
//
// Determinism: which hits of a site fire is decided by per-site
// counters keyed by (site, machine, trace), so a fault lands on the
// same run of the same cell at any worker count. The plan's seed
// feeds the trace-mutation helpers (see mutate.go) and is recorded so
// chaos runs can be replayed exactly.
package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind enumerates the deliberate failures a fault can arm.
type Kind uint8

// The fault kinds.
const (
	// KindPanic panics at the chosen guard tick of a simulation run.
	KindPanic Kind = iota + 1
	// KindError returns an injected structured simulation error at the
	// chosen guard tick; with Transient set it is retryable.
	KindError
	// KindStall suppresses the guard's forward-progress recording from
	// the chosen tick on, so an armed watchdog (Limits.StallCycles)
	// fires exactly as it would for a genuine livelock.
	KindStall
	// KindWriteErr makes the wrapped writer of an export site return
	// an injected error on the chosen Write call.
	KindWriteErr
	// KindShortWrite makes the wrapped writer write only half of the
	// chosen Write call's bytes and return io.ErrShortWrite.
	KindShortWrite
)

// String names the kind as the -faults spec spells it.
func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindError:
		return "err"
	case KindStall:
		return "stall"
	case KindWriteErr:
		return "werr"
	case KindShortWrite:
		return "short"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Fault is one armed failure: where (Site, with optional
// machine/trace filters), what (Kind), and when — At selects the
// guard tick or Write call that fires within a hit, After/Times
// select which hits of the site arm the fault at all (a "hit" is one
// simulation run for the sim site, one opened file for a write site).
type Fault struct {
	Site string // "sim" or "write.<name>"
	Kind Kind

	// At is the 1-based guard tick (sim faults) or Write call (write
	// faults) that fires; 0 means 1 (immediately).
	At int64

	// After is the first 1-based site hit the fault arms on; 0 means 1.
	After int64

	// Times bounds how many consecutive hits arm the fault; 0 means
	// every hit from After on.
	Times int64

	// Machine and Trace, when non-empty, restrict a sim fault to
	// machines/traces whose name contains the substring.
	Machine string
	Trace   string

	// Transient marks an injected error as retryable: the batch
	// layer's transient-vs-permanent classification sends it through
	// the retry loop rather than failing the cell outright.
	Transient bool
}

// covers reports whether hit number n (1-based) arms the fault.
func (f *Fault) covers(n int64) bool {
	after := f.After
	if after <= 0 {
		after = 1
	}
	if n < after {
		return false
	}
	return f.Times <= 0 || n < after+f.Times
}

// at returns the effective 1-based firing ordinal.
func (f *Fault) at() int64 {
	if f.At <= 0 {
		return 1
	}
	return f.At
}

// String renders the fault in the -faults spec syntax.
func (f *Fault) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:%s", f.Site, f.Kind)
	if f.At > 0 {
		fmt.Fprintf(&b, ":at=%d", f.At)
	}
	if f.After > 0 {
		fmt.Fprintf(&b, ":after=%d", f.After)
	}
	if f.Times > 0 {
		fmt.Fprintf(&b, ":times=%d", f.Times)
	}
	if f.Machine != "" {
		fmt.Fprintf(&b, ":machine=%s", f.Machine)
	}
	if f.Trace != "" {
		fmt.Fprintf(&b, ":trace=%s", f.Trace)
	}
	if f.Transient {
		b.WriteString(":transient")
	}
	return b.String()
}

// Plan is a parsed fault plan: the armed faults plus the seed that
// makes any randomized choices (trace mutations) reproducible.
type Plan struct {
	Seed   int64
	Faults []Fault
}

// ParsePlan parses the -faults flag syntax: comma-separated fault
// items, each "<site>:<kind>[:opt]..." with options "at=N",
// "after=N", "times=N", "machine=SUBSTR", "trace=SUBSTR", and
// "transient". Examples:
//
//	sim:panic:at=1000
//	sim:stall:at=500:machine=RUU
//	sim:err:times=2:transient
//	write.metrics:werr
//	write.trace:short:after=3:times=1
func ParsePlan(spec string, seed int64) (*Plan, error) {
	p := &Plan{Seed: seed}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			return nil, fmt.Errorf("faultinject: empty fault item in %q", spec)
		}
		f, err := parseFault(item)
		if err != nil {
			return nil, err
		}
		p.Faults = append(p.Faults, f)
	}
	if len(p.Faults) == 0 {
		return nil, fmt.Errorf("faultinject: empty fault plan")
	}
	return p, nil
}

// parseFault parses one "<site>:<kind>[:opt]..." item.
func parseFault(item string) (Fault, error) {
	fields := strings.Split(item, ":")
	if len(fields) < 2 {
		return Fault{}, fmt.Errorf("faultinject: fault %q needs at least <site>:<kind>", item)
	}
	f := Fault{Site: fields[0]}
	serveSite := strings.HasPrefix(f.Site, "serve.")
	peerSite := strings.HasPrefix(f.Site, "peer.")
	if f.Site != "sim" && !serveSite && !peerSite && !strings.HasPrefix(f.Site, "write.") {
		return Fault{}, fmt.Errorf("faultinject: unknown site %q (want \"sim\", \"write.<name>\", \"serve.<name>\", or \"peer.<name>\")", f.Site)
	}
	switch fields[1] {
	case "panic":
		f.Kind = KindPanic
	case "err":
		f.Kind = KindError
	case "stall":
		f.Kind = KindStall
	case "werr":
		f.Kind = KindWriteErr
	case "short":
		f.Kind = KindShortWrite
	default:
		return Fault{}, fmt.Errorf("faultinject: unknown fault kind %q in %q (want panic, err, stall, werr, or short)", fields[1], item)
	}
	// The sim-flavored kinds (panic, err, stall) apply to the sim site,
	// the daemon's serve.* sites, and the router's peer.* sites; the
	// writer kinds (werr, short) apply to the export write.* sites and
	// to serve.* response bodies.
	simKind := f.Kind == KindPanic || f.Kind == KindError || f.Kind == KindStall
	var ok bool
	if simKind {
		ok = f.Site == "sim" || serveSite || peerSite
	} else {
		ok = strings.HasPrefix(f.Site, "write.") || serveSite
	}
	if !ok {
		return Fault{}, fmt.Errorf("faultinject: kind %q does not apply to site %q", f.Kind, f.Site)
	}
	for _, opt := range fields[2:] {
		key, val, hasVal := strings.Cut(opt, "=")
		var err error
		switch {
		case key == "transient" && !hasVal:
			if f.Kind != KindError {
				return Fault{}, fmt.Errorf("faultinject: transient only applies to err faults, not %q", f.Kind)
			}
			f.Transient = true
		case key == "at" && hasVal:
			f.At, err = parseCount(val)
		case key == "after" && hasVal:
			f.After, err = parseCount(val)
		case key == "times" && hasVal:
			f.Times, err = parseCount(val)
		case key == "machine" && hasVal:
			f.Machine = val
		case key == "trace" && hasVal:
			f.Trace = val
		default:
			return Fault{}, fmt.Errorf("faultinject: unknown option %q in %q", opt, item)
		}
		if err != nil {
			return Fault{}, fmt.Errorf("faultinject: option %q in %q: %v", opt, item, err)
		}
	}
	return f, nil
}

func parseCount(s string) (int64, error) {
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("want a positive count, got %q", s)
	}
	return n, nil
}

// Error is the failure value of injected write faults. Injected
// simulation faults surface as *simerr.SimError with KindInjected
// instead, so that they flow through the same structured-error path
// as genuine watchdog failures.
type Error struct {
	Site      string
	Transient bool
}

// Error renders the injected failure with its site.
func (e *Error) Error() string {
	kind := "permanent"
	if e.Transient {
		kind = "transient"
	}
	return fmt.Sprintf("faultinject: injected %s failure at site %q", kind, e.Site)
}

// Injector evaluates a plan's faults against site hits. One injector
// serves any number of goroutines: hit counting is serialized on an
// internal mutex (injection sites are off the hot path — once per
// run, once per file — so the lock is uncontended in practice).
type Injector struct {
	plan *Plan

	mu    sync.Mutex
	hits  map[string]int64 // per (site, machine, trace) resolution count
	fired map[string]int64 // per site: faults actually armed
}

// New builds an injector for plan. A nil plan yields an injector that
// never fires (useful to exercise the plumbing itself).
func New(plan *Plan) *Injector {
	if plan == nil {
		plan = &Plan{}
	}
	return &Injector{
		plan:  plan,
		hits:  make(map[string]int64),
		fired: make(map[string]int64),
	}
}

// Plan returns the injector's plan (never nil).
func (in *Injector) Plan() *Plan { return in.plan }

// hit bumps and returns the 1-based hit counter for key.
func (in *Injector) hit(key string) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.hits[key]++
	return in.hits[key]
}

// firedAt records that a fault armed at site, for the summary.
func (in *Injector) firedAt(site string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.fired[site]++
}

// SimFault resolves the sim-site faults for one run of machine over
// trc. It is called once per run, at guard construction; the returned
// values are the guard's injection schedule (tick ordinals for panic,
// stall, and error injection — zero when not armed). Hit counting is
// per (machine, trace), so "the second attempt of this cell" means
// the same thing at any worker count.
func (in *Injector) SimFault(machine, trc string) (panicAt, stallAt, errAt int64, transient, armed bool) {
	if in == nil {
		return 0, 0, 0, false, false
	}
	var n int64 = -1
	for i := range in.plan.Faults {
		f := &in.plan.Faults[i]
		if f.Site != "sim" ||
			!strings.Contains(machine, f.Machine) ||
			!strings.Contains(trc, f.Trace) {
			continue
		}
		if n < 0 {
			n = in.hit("sim|" + machine + "|" + trc)
		}
		if !f.covers(n) {
			continue
		}
		switch f.Kind {
		case KindPanic:
			if panicAt == 0 {
				panicAt = f.at()
			}
		case KindStall:
			if stallAt == 0 {
				stallAt = f.at()
			}
		case KindError:
			if errAt == 0 {
				errAt = f.at()
				transient = f.Transient
			}
		}
		armed = true
		in.firedAt("sim")
	}
	return panicAt, stallAt, errAt, transient, armed
}

// SiteFault resolves the sim-flavored faults (panic, err, stall)
// armed at an arbitrary named hook site — the daemon's serve.* points
// and the cluster router's peer.* points. One call is one hit of the
// site; the first armed fault in plan order wins. For a stall fault,
// at is the fault's At field, which serve and peer sites interpret as
// milliseconds to sleep (the sim site interprets At as a guard tick
// instead).
func (in *Injector) SiteFault(site string) (kind Kind, at int64, transient, armed bool) {
	if in == nil {
		return 0, 0, false, false
	}
	var n int64 = -1
	for i := range in.plan.Faults {
		f := &in.plan.Faults[i]
		if f.Site != site || (f.Kind != KindPanic && f.Kind != KindError && f.Kind != KindStall) {
			continue
		}
		if n < 0 {
			n = in.hit(site)
		}
		if !f.covers(n) {
			continue
		}
		in.firedAt(site)
		return f.Kind, f.at(), f.Transient, true
	}
	return 0, 0, false, false
}

// Summary renders per-site hit and fired counts, one line per site in
// sorted order, for the CLIs' end-of-run fault summaries.
func (in *Injector) Summary() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	perSite := make(map[string]int64)
	for key, n := range in.hits {
		site, _, _ := strings.Cut(key, "|")
		perSite[site] += n
	}
	sites := make([]string, 0, len(perSite))
	for s := range perSite {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	var lines []string
	for _, s := range sites {
		lines = append(lines, fmt.Sprintf("site %s: %d hits, %d faults armed", s, perSite[s], in.fired[s]))
	}
	return lines
}

// active is the globally activated injector; nil (the default) means
// fault injection is off and every hook site takes its no-op path.
var active atomic.Pointer[Injector]

// Activate installs in as the process-wide injector consulted by the
// hook sites. Pass the result of New; Activate(nil) is Deactivate.
func Activate(in *Injector) {
	active.Store(in)
}

// Deactivate turns fault injection off.
func Deactivate() {
	active.Store(nil)
}

// Active returns the activated injector, or nil when fault injection
// is off. Hook sites call this and skip all work on nil.
func Active() *Injector {
	return active.Load()
}
