package faultinject

import (
	"mfup/internal/isa"
	"mfup/internal/trace"
)

// Mutation selects a corruption class for MutateTrace. Each class
// models one way a trace can arrive damaged — a truncated parcel
// stream, an undefined opcode, a register or unit index that would
// send a timing model out of its dense arrays — which are exactly the
// crashes the decode path must turn into structured errors.
type Mutation uint8

// The corruption classes.
const (
	// MutTruncate cuts the op stream short and leaves the final op with
	// a zeroed parcel count — the shape of a parcel stream that ends
	// mid-instruction.
	MutTruncate Mutation = iota
	// MutBadOpcode replaces an opcode with an undefined encoding.
	MutBadOpcode
	// MutBadReg replaces a register operand with an index past NumRegs.
	MutBadReg
	// MutBadUnit replaces a functional-unit index with one past
	// NumUnits — the classic "index out of range" panic in any model
	// that keys its unit pool by Op.Unit.
	MutBadUnit
	// MutBadParcels gives an op a negative parcel count.
	MutBadParcels
	// MutBadVLen gives an op a vector length past isa.VecLen.
	MutBadVLen
	// NumMutations counts the classes, for sweeping all of them.
	NumMutations = int(MutBadVLen) + 1
)

// String names the mutation class.
func (m Mutation) String() string {
	switch m {
	case MutTruncate:
		return "truncate"
	case MutBadOpcode:
		return "bad-opcode"
	case MutBadReg:
		return "bad-reg"
	case MutBadUnit:
		return "bad-unit"
	case MutBadParcels:
		return "bad-parcels"
	case MutBadVLen:
		return "bad-vlen"
	}
	return "Mutation(?)"
}

// splitmix64 advances and mixes a 64-bit state — the standard
// splitmix64 finalizer. It is the only randomness source of the
// package: all fault placement derives deterministically from seeds
// through it.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Rand folds an arbitrary key sequence into one deterministic 64-bit
// value. The runner derives retry jitter from (seed, task, trace,
// attempt) through it, so a re-run with the same seed backs off
// identically.
func Rand(keys ...uint64) uint64 {
	x := uint64(0x6d667570) // "mfup"
	for _, k := range keys {
		x = splitmix64(x ^ k)
	}
	return x
}

// MutateTrace returns a corrupted deep copy of t: mutation class m
// applied at a seed-chosen position. The input trace is never
// modified (traces are shared read-only across machines). The
// returned trace's name records the class for error attribution.
func MutateTrace(t *trace.Trace, m Mutation, seed int64) *trace.Trace {
	ops := make([]trace.Op, len(t.Ops))
	copy(ops, t.Ops)
	mt := &trace.Trace{Name: t.Name + "+" + m.String(), Ops: ops}
	if len(ops) == 0 {
		return mt
	}
	r := Rand(uint64(seed), uint64(m))
	i := int(r % uint64(len(ops)))
	switch m {
	case MutTruncate:
		if i == 0 {
			i = 1
		}
		mt.Ops = ops[:i]
		mt.Ops[i-1].Parcels = 0
	case MutBadOpcode:
		ops[i].Code = isa.Opcode(200 + r%50)
	case MutBadReg:
		bad := isa.Reg(isa.NumRegs) + isa.Reg(r%100)
		switch (r >> 8) % 3 {
		case 0:
			ops[i].Dst = bad
		case 1:
			ops[i].Src1 = bad
		default:
			ops[i].Src2 = bad
		}
	case MutBadUnit:
		ops[i].Unit = isa.Unit(isa.NumUnits + int(r%8))
	case MutBadParcels:
		ops[i].Parcels = -1
	case MutBadVLen:
		ops[i].VLen = isa.VecLen + 1 + int16(r%100)
	}
	return mt
}
