package tables

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mfup/internal/atomicio"
	"mfup/internal/faultinject"
)

// testSig is the journal signature the unit tests open with; any
// non-empty string works, since OpenCheckpoint only compares it
// against the journal's header.
const testSig = "test-signature"

// A journal already held by one writer must refuse a second opener
// with the structured lock error: two processes interleaving appends
// would corrupt lines the torn-tail recovery cannot repair.
func TestCheckpointSecondOpenerLockedOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	c, err := OpenCheckpoint(path, testSig)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = OpenCheckpoint(path, testSig)
	if err == nil {
		t.Fatal("second opener succeeded; journal writes could interleave")
	}
	var le *atomicio.LockError
	if !errors.As(err, &le) {
		t.Fatalf("second open error = %v (%T), want *atomicio.LockError", err, err)
	}

	// Closing the first writer releases the lock; reopening resumes.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenCheckpoint(path, testSig)
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	c2.Close()
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	c, err := OpenCheckpoint(path, testSig)
	if err != nil {
		t.Fatal(err)
	}
	// Awkward floats must round-trip exactly — that is the whole point
	// of the hex encoding.
	vals := map[checkpointKey]float64{
		{1, 0}:  1.0 / 3.0,
		{1, 1}:  0.7224082934609726,
		{3, 17}: math.Nextafter(1, 2),
		{0, 2}:  2.5e-300,
	}
	for k, v := range vals {
		c.Record(k.Table, k.Cell, v)
	}
	if c.Saved() != len(vals) {
		t.Errorf("saved = %d, want %d", c.Saved(), len(vals))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenCheckpoint(path, testSig)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Loaded() != len(vals) {
		t.Errorf("loaded = %d, want %d", c2.Loaded(), len(vals))
	}
	for k, v := range vals {
		got, ok := c2.Lookup(k.Table, k.Cell)
		if !ok || got != v {
			t.Errorf("Lookup(%d,%d) = %v,%v, want exactly %v", k.Table, k.Cell, got, ok, v)
		}
	}
	if _, ok := c2.Lookup(9, 9); ok {
		t.Error("phantom cell found")
	}
}

func TestCheckpointSkipsDegenerateAndDuplicate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	c, err := OpenCheckpoint(path, testSig)
	if err != nil {
		t.Fatal(err)
	}
	c.Record(1, 0, math.NaN()) // failed cell: must be re-attempted on resume
	c.Record(1, 1, 0)          // degenerate
	c.Record(1, 2, 0.5)
	c.Record(1, 2, 0.9) // duplicate: first write wins
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenCheckpoint(path, testSig)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Loaded() != 1 {
		t.Fatalf("loaded = %d, want 1", c2.Loaded())
	}
	if v, ok := c2.Lookup(1, 2); !ok || v != 0.5 {
		t.Errorf("Lookup(1,2) = %v,%v, want 0.5", v, ok)
	}
}

func TestCheckpointTornFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	c, err := OpenCheckpoint(path, testSig)
	if err != nil {
		t.Fatal(err)
	}
	c.Record(2, 0, 0.25)
	c.Record(2, 1, 0.75)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a kill mid-append: a partial third record, no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"table":2,"ce`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c2, err := OpenCheckpoint(path, testSig)
	if err != nil {
		t.Fatalf("torn final line must be tolerated: %v", err)
	}
	if c2.Loaded() != 2 {
		t.Errorf("loaded = %d, want 2 (the torn line is dropped)", c2.Loaded())
	}
	// Appending after the torn tail must leave a journal every later
	// resume can still read in full.
	c2.Record(2, 2, 0.125)
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	c3, err := OpenCheckpoint(path, testSig)
	if err != nil {
		t.Fatalf("journal unreadable after append-over-torn-tail: %v", err)
	}
	defer c3.Close()
	if c3.Loaded() != 3 {
		t.Errorf("loaded = %d, want 3", c3.Loaded())
	}
	if v, ok := c3.Lookup(2, 2); !ok || v != 0.125 {
		t.Errorf("Lookup(2,2) = %v,%v, want 0.125", v, ok)
	}
}

func TestCheckpointRejectsCorruptMiddle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	content := "{\"signature\":\"" + testSig + "\"}\n" +
		"{\"table\":1,\"cell\":0,\"rate\":\"0x1p-01\"}\nnot json at all\n{\"table\":1,\"cell\":1,\"rate\":\"0x1p-02\"}\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCheckpoint(path, testSig); err == nil {
		t.Fatal("corrupt complete line accepted")
	} else if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %v does not name the corrupt line", err)
	}
}

// A journal stamped under one signature must refuse to resume under
// another: its (table, cell) keys describe a different grid, and
// replaying them would silently put rates in the wrong cells.
func TestCheckpointSignatureMismatchFailsClosed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	c, err := OpenCheckpoint(path, testSig)
	if err != nil {
		t.Fatal(err)
	}
	c.Record(1, 0, 0.5)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = OpenCheckpoint(path, "another-signature")
	if err == nil {
		t.Fatal("journal with a different signature resumed")
	}
	if !strings.Contains(err.Error(), "signature") {
		t.Errorf("error %v does not explain the signature mismatch", err)
	}
	// The matching signature still resumes.
	c2, err := OpenCheckpoint(path, testSig)
	if err != nil {
		t.Fatalf("matching signature refused: %v", err)
	}
	defer c2.Close()
	if v, ok := c2.Lookup(1, 0); !ok || v != 0.5 {
		t.Errorf("Lookup(1,0) = %v,%v, want 0.5", v, ok)
	}
}

// A journal that predates the signature header — its first line is a
// cell record — must be refused, not silently adopted.
func TestCheckpointUnsignedJournalRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	content := "{\"table\":1,\"cell\":0,\"rate\":\"0x1p-01\"}\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCheckpoint(path, testSig); err == nil {
		t.Fatal("unsigned legacy journal accepted")
	} else if !strings.Contains(err.Error(), "no signature header") {
		t.Errorf("error %v does not explain the missing header", err)
	}
}

// An empty signature is a caller bug, not a wildcard.
func TestCheckpointEmptySignatureRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	if _, err := OpenCheckpoint(path, ""); err == nil {
		t.Fatal("empty signature accepted")
	}
}

// The grid signature must move when the loop scale does — that is the
// exact mismatched-resume scenario the header exists to catch: a
// journal written at one -scale replayed into a run at another.
func TestJournalSignatureTracksScale(t *testing.T) {
	defer SetScale(Scale())
	SetScale(0)
	base := JournalSignature()
	if base != JournalSignature() {
		t.Fatal("signature not deterministic")
	}
	SetScale(100000)
	scaled := JournalSignature()
	if scaled == base {
		t.Fatal("signature unchanged by -scale; a journal from another scale would resume")
	}

	// End to end: a journal stamped at the default scale must fail
	// closed when reopened after the scale changes.
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	SetScale(0)
	c, err := OpenCheckpoint(path, JournalSignature())
	if err != nil {
		t.Fatal(err)
	}
	c.Record(1, 0, 0.5)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	SetScale(100000)
	if _, err := OpenCheckpoint(path, JournalSignature()); err == nil {
		t.Fatal("journal written at scale 0 resumed at scale 100000")
	}
}

func TestCheckpointInjectedWriteFailure(t *testing.T) {
	// Open before arming the plan: the signature header is written at
	// open through the same fault site, and the target here is the
	// sticky Record-failure path.
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	c, err := OpenCheckpoint(path, testSig)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := faultinject.ParsePlan("write.checkpoint:werr", 1)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Activate(faultinject.New(plan))
	defer faultinject.Deactivate()

	c.Record(1, 0, 0.5)
	err = c.Close()
	if err == nil {
		t.Fatal("injected write failure not reported at Close")
	}
	var fe *faultinject.Error
	if !errors.As(err, &fe) {
		t.Errorf("Close error %v does not wrap the injected fault", err)
	}
}

func TestCheckpointServesCachedCells(t *testing.T) {
	// A batch with a fully-journaled grid must not run any simulation;
	// we verify by journaling sentinel rates and checking they surface
	// verbatim in the table.
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	c, err := OpenCheckpoint(path, testSig)
	if err != nil {
		t.Fatal(err)
	}
	ref := Table1() // healthy baseline, no checkpoint
	cells := 0
	for _, row := range ref.Rows {
		cells += len(row.Rates)
	}
	for i := 0; i < cells; i++ {
		c.Record(1, i, float64(i)+0.5) // sentinels, not real rates
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c, err = OpenCheckpoint(path, testSig)
	if err != nil {
		t.Fatal(err)
	}
	SetCheckpoint(c)
	defer SetCheckpoint(nil)
	got := Table1()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if c.Saved() != 0 {
		t.Errorf("fully cached run appended %d cells", c.Saved())
	}
	i := 0
	for _, row := range got.Rows {
		for _, v := range row.Rates {
			if want := float64(i) + 0.5; v != want {
				t.Fatalf("cell %d = %v, want journaled sentinel %v", i, v, want)
			}
			i++
		}
	}
}

func TestCheckpointPartialResumeMatchesBaseline(t *testing.T) {
	// Journal half of Table 1's cells from a real run, then regenerate
	// with the journal installed: the rendered table must be
	// byte-identical to the uncheckpointed baseline.
	ref := Table1()
	if len(ref.Errors) != 0 {
		t.Fatalf("baseline has errors: %v", ref.Errors)
	}
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	c, err := OpenCheckpoint(path, testSig)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for _, row := range ref.Rows {
		for _, v := range row.Rates {
			if i%2 == 0 {
				c.Record(1, i, v)
			}
			i++
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenCheckpoint(path, testSig)
	if err != nil {
		t.Fatal(err)
	}
	SetCheckpoint(c2)
	defer SetCheckpoint(nil)
	got := Table1()
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	if got.Render() != ref.Render() {
		t.Errorf("resumed table differs from baseline:\n--- want\n%s\n--- got\n%s", ref.Render(), got.Render())
	}
	if c2.Saved() != i/2 {
		t.Errorf("resume appended %d cells, want %d", c2.Saved(), i/2)
	}
}
