package tables

import (
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"mfup/internal/core"
	"mfup/internal/events"
	"mfup/internal/loops"
	"mfup/internal/probe"
	"mfup/internal/runner"
	"mfup/internal/trace"
)

// explodingMachine panics mid-simulation on every trace.
type explodingMachine struct{ inner core.Machine }

func (m *explodingMachine) Name() string                   { return "Exploding" }
func (m *explodingMachine) Run(t *trace.Trace) core.Result { panic("injected table-cell panic") }
func (m *explodingMachine) SetProbe(p probe.Probe)         {}
func (m *explodingMachine) SetRecorder(r *events.Recorder) {}
func (m *explodingMachine) RunChecked(t *trace.Trace, lim core.Limits) (core.Result, error) {
	panic("injected table-cell panic")
}

// TestBatchIsolatesPanickingCell: one exploding cell in a grid yields
// NaN for that cell, a CellError with a stack, and the exact correct
// values everywhere else.
func TestBatchIsolatesPanickingCell(t *testing.T) {
	ts := classTraces(loops.Scalar)
	healthy := func() core.Machine { return core.NewBasic(core.CRAYLike, core.M11BR5) }

	var ref batch
	ref.cell(healthy, ts)
	ref.cell(healthy, ts)
	refRates, refErrs := ref.rates()
	if len(refErrs) != 0 {
		t.Fatalf("reference batch failed: %v", refErrs)
	}

	var b batch
	b.cell(healthy, ts)
	b.cell(func() core.Machine { return &explodingMachine{} }, ts)
	b.cell(healthy, ts)
	rates, errs := b.rates()

	if len(rates) != 3 {
		t.Fatalf("got %d rates, want 3", len(rates))
	}
	if rates[0] != refRates[0] || rates[2] != refRates[1] {
		t.Errorf("healthy cells disturbed: %v vs reference %v", rates, refRates)
	}
	if !math.IsNaN(rates[1]) {
		t.Errorf("exploding cell rate = %v, want NaN", rates[1])
	}
	if len(errs) == 0 {
		t.Fatal("no CellErrors reported for the exploding cell")
	}
	for _, e := range errs {
		if e.Task != 1 {
			t.Errorf("error attributed to task %d, want 1: %v", e.Task, e)
		}
		if len(e.Stack) == 0 {
			t.Errorf("cell panic carries no stack: %v", e)
		}
		if !strings.Contains(e.Error(), "injected table-cell panic") {
			t.Errorf("error %q does not name the panic", e)
		}
	}
}

// TestRenderMarksFailedCells: NaN cells render as ERR in text, CSV,
// and as null in JSON, and ErrorSummary names the failures.
func TestRenderMarksFailedCells(t *testing.T) {
	tb := &Table{
		Number:  0,
		Title:   "Fault rendering",
		Columns: []string{"A", "B"},
		Rows:    []Row{{Label: "row", Rates: []float64{1.25, math.NaN()}}},
		Errors: []*runner.CellError{{
			Task: 1, Trace: 0, Machine: "Exploding", TraceName: "lfk05",
			Err: errors.New("injected rendering failure"),
		}},
	}
	text := tb.Render()
	if !strings.Contains(text, "ERR") || !strings.Contains(text, "1.25") {
		t.Errorf("Render() = %q, want both 1.25 and ERR", text)
	}
	if !strings.Contains(tb.CSV(), "ERR") {
		t.Errorf("CSV() = %q, want ERR marker", tb.CSV())
	}
	raw, err := tb.MarshalJSON()
	if err != nil {
		t.Fatalf("MarshalJSON with NaN: %v", err)
	}
	var decoded struct {
		Rows []struct {
			Rates []*float64 `json:"rates"`
		} `json:"rows"`
		Errors []string `json:"errors"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("round-tripping JSON: %v", err)
	}
	if got := decoded.Rows[0].Rates; got[0] == nil || *got[0] != 1.25 || got[1] != nil {
		t.Errorf("JSON rates = %v, want [1.25, null]", got)
	}
	if len(decoded.Errors) != 1 {
		t.Errorf("JSON errors = %v, want one entry", decoded.Errors)
	}
	if tb.ErrorSummary() == "" {
		t.Error("ErrorSummary() empty with a failed cell")
	}
	clean := &Table{Number: 1, Title: "t", Columns: []string{"A"}, Rows: []Row{{Label: "r", Rates: []float64{1}}}}
	if clean.ErrorSummary() != "" {
		t.Errorf("ErrorSummary() of clean table = %q, want empty", clean.ErrorSummary())
	}
}

// TestLimitsDoNotDisturbHealthyTables: Table 1 must render
// identically with the production watchdog armed and a generous cell
// timeout — the guards are on the error path only.
func TestLimitsDoNotDisturbHealthyTables(t *testing.T) {
	base := Table1().Render()
	SetLimits(core.DefaultLimits())
	SetCellTimeout(10 * time.Minute)
	defer func() {
		SetLimits(core.Limits{})
		SetCellTimeout(0)
	}()
	guarded := Table1().Render()
	if base != guarded {
		t.Errorf("Table 1 changed under DefaultLimits:\n--- unguarded ---\n%s\n--- guarded ---\n%s", base, guarded)
	}
}
