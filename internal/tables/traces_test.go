package tables

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSanitizeLabel(t *testing.T) {
	cases := map[string]string{
		"Scalar CRAY-like": "Scalar-CRAY-like",
		"M11BR5 N-Bus":     "M11BR5-N-Bus",
		"a  b!!c":          "a-b-c",
		"  edges  ":        "edges",
		"plain":            "plain",
	}
	for in, want := range cases {
		if got := sanitizeLabel(in); got != want {
			t.Errorf("sanitizeLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTraceEventCap(t *testing.T) {
	if got := TraceEventCap(); got != DefaultTraceEventCap {
		t.Errorf("default cap %d, want %d", got, DefaultTraceEventCap)
	}
	SetTraceEventCap(128)
	defer SetTraceEventCap(0)
	if got := TraceEventCap(); got != 128 {
		t.Errorf("cap %d after SetTraceEventCap(128)", got)
	}
	SetTraceEventCap(-1)
	if got := TraceEventCap(); got != DefaultTraceEventCap {
		t.Errorf("negative cap maps to %d, want default %d", got, DefaultTraceEventCap)
	}
}

// TestCollectTracesTable generates Table 1 with tracing on and checks
// the full path: values undisturbed, per-cell recorders and telemetry
// attached, trace files written and well-formed, storage releasable.
func TestCollectTracesTable(t *testing.T) {
	bare := Table1()

	SetCollectTraces(true)
	SetTraceEventCap(64)
	defer func() {
		SetCollectTraces(false)
		SetTraceEventCap(0)
	}()
	traced := Table1()

	if bare.Render() != traced.Render() {
		t.Error("trace collection changed the rendered table")
	}
	cells := len(traced.Columns) * len(traced.Rows)
	if len(traced.Metrics) != cells {
		t.Fatalf("got %d metrics cells, want %d", len(traced.Metrics), cells)
	}
	for _, m := range traced.Metrics {
		if m.Recorder == nil {
			t.Fatalf("cell %s/%s has no recorder", m.Row, m.Column)
		}
		if m.Counters != nil {
			t.Errorf("cell %s/%s has counters without SetCollectMetrics", m.Row, m.Column)
		}
		if m.Cycles <= 0 || m.Events <= 0 {
			t.Errorf("cell %s/%s telemetry empty: cycles %d events %d", m.Row, m.Column, m.Cycles, m.Events)
		}
		if m.Events != m.Recorder.Events() || m.EventsDropped != m.Recorder.Dropped() {
			t.Errorf("cell %s/%s telemetry %d/%d disagrees with recorder %d/%d",
				m.Row, m.Column, m.Events, m.EventsDropped, m.Recorder.Events(), m.Recorder.Dropped())
		}
		if m.EventsDropped == 0 {
			t.Errorf("cell %s/%s dropped nothing under a 64-event cap", m.Row, m.Column)
		}
	}

	dir := t.TempDir()
	n, err := WriteTraces(dir, traced)
	if err != nil {
		t.Fatal(err)
	}
	if n != cells {
		t.Errorf("wrote %d trace files, want %d", n, cells)
	}
	names, err := filepath.Glob(filepath.Join(dir, "table1_*.json"))
	if err != nil || len(names) != cells {
		t.Fatalf("found %d table1_*.json files (err %v), want %d", len(names), err, cells)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	raw, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("%s is not valid trace-event JSON: %v", names[0], err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Errorf("%s has no trace events", names[0])
	}

	ReleaseTraces(traced)
	for _, m := range traced.Metrics {
		if m.Recorder.Events() != 0 {
			t.Fatal("ReleaseTraces left event storage behind")
		}
		if m.Events == 0 {
			t.Fatal("ReleaseTraces wiped the copied telemetry")
		}
	}

	// Released tables export nothing further.
	if n, err := WriteTraces(t.TempDir(), traced); err != nil || n != 0 {
		t.Errorf("released table wrote %d files (err %v), want 0", n, err)
	}
}

// TestMetricsEncodersCarryTelemetry: with both metrics and traces on,
// the JSON and CSV sidecars carry the wall/events telemetry columns.
func TestMetricsEncodersCarryTelemetry(t *testing.T) {
	SetCollectMetrics(true)
	SetCollectTraces(true)
	SetTraceEventCap(64)
	defer func() {
		SetCollectMetrics(false)
		SetCollectTraces(false)
		SetTraceEventCap(0)
	}()
	tb := Table1()

	csv := MetricsCSV([]*Table{tb})
	header := strings.SplitN(csv, "\n", 2)[0]
	if !strings.HasPrefix(header, "table,row,column,machine,") {
		t.Errorf("CSV header prefix changed: %q", header)
	}
	for _, col := range []string{"wall_ms", "events", "events_dropped"} {
		if !strings.Contains(header, col) {
			t.Errorf("CSV header missing %q: %q", col, header)
		}
	}

	raw, err := MetricsJSON([]*Table{tb})
	if err != nil {
		t.Fatal(err)
	}
	var cells []struct {
		Events        int64 `json:"events"`
		EventsDropped int64 `json:"events_dropped"`
	}
	if err := json.Unmarshal(raw, &cells); err != nil {
		t.Fatal(err)
	}
	if len(cells) == 0 {
		t.Fatal("no metrics cells encoded")
	}
	for _, c := range cells {
		if c.Events == 0 || c.EventsDropped == 0 {
			t.Errorf("cell telemetry missing from JSON: %+v", c)
		}
	}
}
