package tables

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"mfup/internal/core"
	"mfup/internal/events"
	"mfup/internal/loops"
	"mfup/internal/probe"
	"mfup/internal/trace"
)

// TestMetricsNilByDefault: without SetCollectMetrics, tables carry no
// metrics and machines run with a nil probe.
func TestMetricsNilByDefault(t *testing.T) {
	if tb := Table1(); tb.Metrics != nil {
		t.Errorf("Table1().Metrics = %d cells without collection enabled", len(tb.Metrics))
	}
}

// TestMetricsTable3vs4 collects stall breakdowns for the §5.1 tables
// and checks the properties the paper's discussion predicts: every
// cell's ledger balances (stall reasons sum to the cell's non-issuing
// slots), collection does not change the rates, and on every machine
// variation the 1-Bus cells attribute more result-bus stall cycles
// than their N-Bus counterparts — the contention that drags the
// 1-Bus columns down.
func TestMetricsTable3vs4(t *testing.T) {
	base3, base4 := Table3(), Table4()
	SetCollectMetrics(true)
	defer SetCollectMetrics(false)

	for _, tc := range []struct {
		name string
		mk   func() *Table
		base *Table
	}{
		{"Table3", Table3, base3},
		{"Table4", Table4, base4},
	} {
		tb := tc.mk()
		if len(tb.Errors) != 0 {
			t.Fatalf("%s with metrics: %d cell errors: %v", tc.name, len(tb.Errors), tb.Errors)
		}
		if want := len(tb.Rows) * len(tb.Columns); len(tb.Metrics) != want {
			t.Fatalf("%s: %d metrics cells, want %d", tc.name, len(tb.Metrics), want)
		}
		// Collection is observation-only: the rendered table is
		// identical to an uninstrumented run.
		if got, want := tb.Render(), tc.base.Render(); got != want {
			t.Errorf("%s changed under metrics collection:\n--- with ---\n%s--- without ---\n%s", tc.name, got, want)
		}

		// Per-variation result-bus attribution, summed over all
		// station counts.
		busStalls := make(map[string]int64) // column name -> result-bus slots
		for i, m := range tb.Metrics {
			if err := m.Counters.Check(); err != nil {
				t.Errorf("%s cell (%s, %s): %v", tc.name, m.Row, m.Column, err)
			}
			wantRow := tb.Rows[i/len(tb.Columns)].Label
			wantCol := tb.Columns[i%len(tb.Columns)]
			if m.Row != wantRow || m.Column != wantCol {
				t.Errorf("%s metrics cell %d labeled (%s, %s), want (%s, %s)",
					tc.name, i, m.Row, m.Column, wantRow, wantCol)
			}
			busStalls[m.Column] += m.Counters.Stalls[probe.ReasonResultBus]
		}
		for _, cfg := range core.BaseConfigs() {
			n, one := busStalls[cfg.Name()+" N-Bus"], busStalls[cfg.Name()+" 1-Bus"]
			if one <= n {
				t.Errorf("%s %s: 1-Bus attributes %d result-bus stall slots, N-Bus %d; want 1-Bus > N-Bus",
					tc.name, cfg.Name(), one, n)
			}
		}
	}
}

// TestMetricsTable2HasNone: the analytic table runs no machines.
func TestMetricsTable2HasNone(t *testing.T) {
	SetCollectMetrics(true)
	defer SetCollectMetrics(false)
	if tb := Table2(); tb.Metrics != nil {
		t.Errorf("analytic Table 2 carries %d metrics cells", len(tb.Metrics))
	}
}

// TestMetricsEncoders round-trips a synthetic table through both
// encoders.
func TestMetricsEncoders(t *testing.T) {
	c := &probe.Counters{Machine: "Fake", Trace: "lfk05", Runs: 2, Width: 4}
	c.Issued, c.Cycles, c.Slots = 10, 5, 20
	c.Stalls[probe.ReasonResultBus] = 6
	c.Stalls[probe.ReasonDrain] = 4
	tb := &Table{
		Number:  3,
		Columns: []string{"A"},
		Rows:    []Row{{Label: "r", Rates: []float64{1}}},
		Metrics: []CellMetrics{{Row: "r", Column: "A", Counters: c}},
	}

	raw, err := MetricsJSON([]*Table{tb})
	if err != nil {
		t.Fatal(err)
	}
	var decoded []struct {
		Table   int              `json:"table"`
		Row     string           `json:"row"`
		Column  string           `json:"column"`
		Machine string           `json:"machine"`
		Issued  int64            `json:"issued"`
		Slots   int64            `json:"slots"`
		Stalls  map[string]int64 `json:"stalls"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("round-tripping metrics JSON: %v", err)
	}
	if len(decoded) != 1 {
		t.Fatalf("JSON has %d records, want 1", len(decoded))
	}
	d := decoded[0]
	if d.Table != 3 || d.Row != "r" || d.Column != "A" || d.Machine != "Fake" ||
		d.Issued != 10 || d.Slots != 20 || d.Stalls["result-bus"] != 6 || d.Stalls["drain"] != 4 {
		t.Errorf("decoded record %+v does not match the counters", d)
	}
	if len(d.Stalls) != probe.NumReasons {
		t.Errorf("JSON stalls map has %d reasons, want %d", len(d.Stalls), probe.NumReasons)
	}

	csvText := MetricsCSV([]*Table{tb})
	lines := strings.Split(strings.TrimSpace(csvText), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want header + 1 record:\n%s", len(lines), csvText)
	}
	if !strings.Contains(lines[0], "result-bus") || !strings.Contains(lines[0], "drain") {
		t.Errorf("CSV header missing reason columns: %q", lines[0])
	}
	if !strings.Contains(lines[1], "Fake") || !strings.HasPrefix(lines[1], "3,r,A,") {
		t.Errorf("CSV record %q does not carry the cell identity", lines[1])
	}

	// Empty input encodes to an empty JSON array, not null.
	raw, err = MetricsJSON(nil)
	if err != nil || strings.TrimSpace(string(raw)) != "[]" {
		t.Errorf("MetricsJSON(nil) = %q, %v; want []", raw, err)
	}
}

// zeroRateMachine completes instantly: zero instructions, zero
// cycles — a degenerate but non-erroring run whose issue rate is 0.
type zeroRateMachine struct{}

func (zeroRateMachine) Name() string                   { return "ZeroRate" }
func (zeroRateMachine) SetProbe(p probe.Probe)         {}
func (zeroRateMachine) SetRecorder(r *events.Recorder) {}
func (zeroRateMachine) Run(t *trace.Trace) core.Result { return core.Result{Trace: t.Name} }
func (zeroRateMachine) RunChecked(t *trace.Trace, lim core.Limits) (core.Result, error) {
	return core.Result{Machine: "ZeroRate", Trace: t.Name}, nil
}

// TestBatchRejectsNonPositiveRate: a run that completes with a
// non-positive issue rate is a faulted cell — NaN (rendered ERR) plus
// a CellError naming the loop — instead of a literal NaN leaking into
// the table via the harmonic mean.
func TestBatchRejectsNonPositiveRate(t *testing.T) {
	ts := classTraces(loops.Scalar)
	var b batch
	b.cell(func() core.Machine { return core.NewBasic(core.CRAYLike, core.M11BR5) }, ts)
	b.cell(func() core.Machine { return zeroRateMachine{} }, ts)
	rates, errs := b.rates()

	if len(rates) != 2 {
		t.Fatalf("got %d rates, want 2", len(rates))
	}
	if !(rates[0] > 0) {
		t.Errorf("healthy cell rate = %v, want positive", rates[0])
	}
	if !math.IsNaN(rates[1]) {
		t.Errorf("zero-rate cell rate = %v, want NaN", rates[1])
	}
	if len(errs) != len(ts) {
		t.Fatalf("%d CellErrors, want one per trace (%d): %v", len(errs), len(ts), errs)
	}
	for j, e := range errs {
		if e.Task != 1 || e.Trace != j {
			t.Errorf("error %d attributed to cell (%d,%d), want (1,%d)", j, e.Task, e.Trace, j)
		}
		if !strings.Contains(e.Error(), "non-positive issue rate") {
			t.Errorf("error %q does not name the non-positive rate", e)
		}
		if e.TraceName == "" {
			t.Errorf("error %v does not name the loop", e)
		}
	}

	// The same failure surfaces through a rendered table: ERR cell,
	// non-empty summary.
	tb := &Table{Number: 0, Title: "zero", Columns: []string{"A"}}
	tb.fill([]string{"row"}, []float64{rates[1]})
	tb.Errors = errs
	if !strings.Contains(tb.Render(), "ERR") {
		t.Errorf("zero-rate cell renders as %q, want ERR", tb.Render())
	}
	if strings.Contains(tb.Render(), "NaN") {
		t.Errorf("literal NaN leaked into render:\n%s", tb.Render())
	}
	if tb.ErrorSummary() == "" {
		t.Error("no error summary for the zero-rate cell")
	}
}
