package tables

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"mfup/internal/probe"
)

// jsonRate encodes a rate cell, mapping a failed cell's NaN — which
// encoding/json rejects outright — to null.
type jsonRate float64

func (r jsonRate) MarshalJSON() ([]byte, error) {
	if math.IsNaN(float64(r)) {
		return []byte("null"), nil
	}
	return json.Marshal(float64(r))
}

// MarshalJSON renders the table as a JSON object with its caption,
// column headers, and rows, for downstream analysis tooling. Failed
// cells encode as null; any cell failures are summarized in an
// "errors" array.
func (t *Table) MarshalJSON() ([]byte, error) {
	type row struct {
		Label string     `json:"label"`
		Rates []jsonRate `json:"rates"`
	}
	out := struct {
		Number  int      `json:"number"`
		Title   string   `json:"title"`
		Columns []string `json:"columns"`
		Rows    []row    `json:"rows"`
		Errors  []string `json:"errors,omitempty"`
	}{Number: t.Number, Title: t.Title, Columns: t.Columns}
	for _, r := range t.Rows {
		jr := make([]jsonRate, len(r.Rates))
		for i, v := range r.Rates {
			jr[i] = jsonRate(v)
		}
		out.Rows = append(out.Rows, row{Label: r.Label, Rates: jr})
	}
	for _, e := range t.Errors {
		out.Errors = append(out.Errors, e.Error())
	}
	return json.Marshal(out)
}

// metricsRecord is one cell's stall breakdown in encoding form,
// shared by the JSON and CSV emitters.
type metricsRecord struct {
	Table   int              `json:"table"`
	Row     string           `json:"row"`
	Column  string           `json:"column"`
	Machine string           `json:"machine"`
	Width   int              `json:"width"`
	Runs    int              `json:"runs"`
	Cycles  int64            `json:"cycles"`
	Slots   int64            `json:"slots"`
	Issued  int64            `json:"issued"`
	Stalls  map[string]int64 `json:"stalls"`

	// Execution telemetry (PR 4): wall-clock per cell, plus the cell's
	// event-recorder volume when trace collection was on.
	WallMS        float64 `json:"wall_ms"`
	Events        int64   `json:"events"`
	EventsDropped int64   `json:"events_dropped"`
}

// metricsRecords flattens the Metrics of every table, in table order
// then row-major cell order.
func metricsRecords(ts []*Table) []metricsRecord {
	var recs []metricsRecord
	for _, t := range ts {
		for _, m := range t.Metrics {
			c := m.Counters
			if c == nil {
				// Trace collection without metrics collection: the cell
				// has a recorder but no stall ledger to flatten.
				continue
			}
			stalls := make(map[string]int64, probe.NumReasons)
			for _, r := range probe.Reasons() {
				stalls[r.String()] = c.Stalls[r]
			}
			recs = append(recs, metricsRecord{
				Table: t.Number, Row: m.Row, Column: m.Column,
				Machine: c.Machine, Width: c.Width, Runs: c.Runs,
				Cycles: c.Cycles, Slots: c.Slots, Issued: c.Issued,
				Stalls: stalls,
				WallMS: float64(m.Wall) / float64(time.Millisecond),
				Events: m.Events, EventsDropped: m.EventsDropped,
			})
		}
	}
	return recs
}

// MetricsJSON encodes every cell's stall breakdown across the given
// tables as a JSON array, one object per cell. Tables generated
// without SetCollectMetrics (or the analytic Table 2) contribute
// nothing.
func MetricsJSON(ts []*Table) ([]byte, error) {
	recs := metricsRecords(ts)
	if recs == nil {
		recs = []metricsRecord{}
	}
	return json.MarshalIndent(recs, "", "  ")
}

// MetricsCSV encodes the same breakdown as CSV: one line per cell, a
// column per stall reason.
func MetricsCSV(ts []*Table) string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	header := []string{"table", "row", "column", "machine", "width", "runs", "cycles", "slots", "issued"}
	for _, r := range probe.Reasons() {
		header = append(header, r.String())
	}
	header = append(header, "wall_ms", "events", "events_dropped")
	_ = w.Write(header)
	for _, rec := range metricsRecords(ts) {
		line := []string{
			strconv.Itoa(rec.Table), rec.Row, rec.Column, rec.Machine,
			strconv.Itoa(rec.Width), strconv.Itoa(rec.Runs),
			strconv.FormatInt(rec.Cycles, 10),
			strconv.FormatInt(rec.Slots, 10),
			strconv.FormatInt(rec.Issued, 10),
		}
		for _, r := range probe.Reasons() {
			line = append(line, strconv.FormatInt(rec.Stalls[r.String()], 10))
		}
		line = append(line,
			strconv.FormatFloat(rec.WallMS, 'g', -1, 64),
			strconv.FormatInt(rec.Events, 10),
			strconv.FormatInt(rec.EventsDropped, 10))
		_ = w.Write(line)
	}
	w.Flush()
	return b.String()
}

// CSV renders the table as comma-separated values: a header row with
// the caption in the first cell, then one line per row with full
// float precision (the text renderer rounds to the paper's two
// decimals; analysis wants the exact values). Failed cells render as
// ERR.
func (t *Table) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	header := append([]string{fmt.Sprintf("Table %d: %s", t.Number, t.Title)}, t.Columns...)
	_ = w.Write(header)
	for _, r := range t.Rows {
		rec := make([]string, 0, 1+len(r.Rates))
		rec = append(rec, r.Label)
		for _, v := range r.Rates {
			if math.IsNaN(v) {
				rec = append(rec, "ERR")
			} else {
				rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
		_ = w.Write(rec)
	}
	w.Flush()
	return b.String()
}
