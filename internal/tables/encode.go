package tables

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// jsonRate encodes a rate cell, mapping a failed cell's NaN — which
// encoding/json rejects outright — to null.
type jsonRate float64

func (r jsonRate) MarshalJSON() ([]byte, error) {
	if math.IsNaN(float64(r)) {
		return []byte("null"), nil
	}
	return json.Marshal(float64(r))
}

// MarshalJSON renders the table as a JSON object with its caption,
// column headers, and rows, for downstream analysis tooling. Failed
// cells encode as null; any cell failures are summarized in an
// "errors" array.
func (t *Table) MarshalJSON() ([]byte, error) {
	type row struct {
		Label string     `json:"label"`
		Rates []jsonRate `json:"rates"`
	}
	out := struct {
		Number  int      `json:"number"`
		Title   string   `json:"title"`
		Columns []string `json:"columns"`
		Rows    []row    `json:"rows"`
		Errors  []string `json:"errors,omitempty"`
	}{Number: t.Number, Title: t.Title, Columns: t.Columns}
	for _, r := range t.Rows {
		jr := make([]jsonRate, len(r.Rates))
		for i, v := range r.Rates {
			jr[i] = jsonRate(v)
		}
		out.Rows = append(out.Rows, row{Label: r.Label, Rates: jr})
	}
	for _, e := range t.Errors {
		out.Errors = append(out.Errors, e.Error())
	}
	return json.Marshal(out)
}

// CSV renders the table as comma-separated values: a header row with
// the caption in the first cell, then one line per row with full
// float precision (the text renderer rounds to the paper's two
// decimals; analysis wants the exact values). Failed cells render as
// ERR.
func (t *Table) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	header := append([]string{fmt.Sprintf("Table %d: %s", t.Number, t.Title)}, t.Columns...)
	_ = w.Write(header)
	for _, r := range t.Rows {
		rec := make([]string, 0, 1+len(r.Rates))
		rec = append(rec, r.Label)
		for _, v := range r.Rates {
			if math.IsNaN(v) {
				rec = append(rec, "ERR")
			} else {
				rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
		_ = w.Write(rec)
	}
	w.Flush()
	return b.String()
}
