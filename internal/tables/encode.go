package tables

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// MarshalJSON renders the table as a JSON object with its caption,
// column headers, and rows, for downstream analysis tooling.
func (t *Table) MarshalJSON() ([]byte, error) {
	type row struct {
		Label string    `json:"label"`
		Rates []float64 `json:"rates"`
	}
	out := struct {
		Number  int      `json:"number"`
		Title   string   `json:"title"`
		Columns []string `json:"columns"`
		Rows    []row    `json:"rows"`
	}{Number: t.Number, Title: t.Title, Columns: t.Columns}
	for _, r := range t.Rows {
		out.Rows = append(out.Rows, row{Label: r.Label, Rates: r.Rates})
	}
	return json.Marshal(out)
}

// CSV renders the table as comma-separated values: a header row with
// the caption in the first cell, then one line per row with full
// float precision (the text renderer rounds to the paper's two
// decimals; analysis wants the exact values).
func (t *Table) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	header := append([]string{fmt.Sprintf("Table %d: %s", t.Number, t.Title)}, t.Columns...)
	_ = w.Write(header)
	for _, r := range t.Rows {
		rec := make([]string, 0, 1+len(r.Rates))
		rec = append(rec, r.Label)
		for _, v := range r.Rates {
			rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
		}
		_ = w.Write(rec)
	}
	w.Flush()
	return b.String()
}
