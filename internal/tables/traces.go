package tables

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mfup/internal/atomicio"
	"mfup/internal/events"
)

// traceFileName builds the per-cell trace filename:
// table<N>_<row>_<column>.json with grid labels sanitized to a
// filesystem-safe alphabet.
func traceFileName(number int, row, column string) string {
	return fmt.Sprintf("table%d_%s_%s.json",
		number, sanitizeLabel(row), sanitizeLabel(column))
}

// sanitizeLabel maps a grid label to a filename component: runs of
// anything outside [A-Za-z0-9._-] collapse to a single dash.
func sanitizeLabel(s string) string {
	var b strings.Builder
	dash := false
	for _, r := range s {
		ok := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' ||
			r >= '0' && r <= '9' || r == '.' || r == '_' || r == '-'
		if ok {
			b.WriteRune(r)
			dash = false
		} else if !dash {
			b.WriteByte('-')
			dash = true
		}
	}
	return strings.Trim(b.String(), "-")
}

// WriteTraces writes one Chrome trace-event JSON file per traced cell
// of the table into dir (created if absent), named
// table<N>_<row>_<column>.json. Cells without a recorder — trace
// collection off, or the analytic Table 2 — are skipped. Call
// ReleaseTraces afterward to drop the event storage; a full table
// sweep holds hundreds of cells, so exporting and releasing per table
// bounds peak memory.
func WriteTraces(dir string, t *Table) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("tables: create trace dir: %w", err)
	}
	written := 0
	for i := range t.Metrics {
		m := &t.Metrics[i]
		if m.Recorder == nil || len(m.Recorder.Runs()) == 0 {
			continue
		}
		path := filepath.Join(dir, traceFileName(t.Number, m.Row, m.Column))
		f, err := atomicio.Create("write.trace", path)
		if err != nil {
			return written, fmt.Errorf("tables: trace export: %w", err)
		}
		werr := events.WriteChrome(f, m.Recorder)
		if werr == nil {
			werr = f.Commit()
		} else {
			f.Abort()
		}
		if werr != nil {
			return written, fmt.Errorf("tables: trace export %s: %w", path, werr)
		}
		written++
	}
	return written, nil
}

// ReleaseTraces drops every cell recorder's event storage, keeping
// the Events/EventsDropped telemetry already copied into the metrics.
func ReleaseTraces(t *Table) {
	for i := range t.Metrics {
		if r := t.Metrics[i].Recorder; r != nil {
			r.Reset()
		}
	}
}
