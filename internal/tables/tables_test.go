package tables

import (
	"encoding/json"
	"strings"
	"testing"
)

func jsonUnmarshal(b []byte, v any) error { return json.Unmarshal(b, v) }

// The table drivers run the full simulation sets, so each is
// generated once and shared across assertions.
var (
	t1 = Table1()
	t2 = Table2()
	t3 = Table3()
	t4 = Table4()
	t7 = Table7()
	t8 = Table8()
)

func TestTable1Shape(t *testing.T) {
	if len(t1.Rows) != 8 { // 2 classes x 4 organizations
		t.Fatalf("Table 1 has %d rows, want 8", len(t1.Rows))
	}
	if len(t1.Columns) != 4 {
		t.Fatalf("Table 1 has %d columns, want 4", len(t1.Columns))
	}
	for _, r := range t1.Rows {
		if len(r.Rates) != 4 {
			t.Fatalf("row %q has %d rates", r.Label, len(r.Rates))
		}
		for i, v := range r.Rates {
			if v <= 0 || v >= 1 {
				t.Errorf("row %q col %s: single-issue rate %.3f outside (0,1)", r.Label, t1.Columns[i], v)
			}
		}
	}
	// Within each class, organizations improve monotonically in every
	// column — the paper's §3 progression.
	for class := 0; class < 2; class++ {
		rows := t1.Rows[class*4 : class*4+4]
		for c := 0; c < 4; c++ {
			for i := 1; i < 4; i++ {
				if rows[i].Rates[c] < rows[i-1].Rates[c]-1e-9 {
					t.Errorf("Table 1 %q col %d: %f < %f (organizations out of order)",
						rows[i].Label, c, rows[i].Rates[c], rows[i-1].Rates[c])
				}
			}
		}
	}
}

func TestTable2Shape(t *testing.T) {
	if len(t2.Rows) != 16 { // 2 classes x 2 modes x 4 configs
		t.Fatalf("Table 2 has %d rows, want 16", len(t2.Rows))
	}
	for _, r := range t2.Rows {
		pdf, res, act := r.Rates[0], r.Rates[1], r.Rates[2]
		// The actual limit is a harmonic mean of per-loop minima: it
		// can be below both aggregates but never above either.
		if act > pdf+1e-9 || act > res+1e-9 {
			t.Errorf("row %q: actual %.3f above a component (pdf %.3f, res %.3f)", r.Label, act, pdf, res)
		}
		if strings.Contains(r.Label, "Pure") && act <= 1 {
			t.Errorf("row %q: pure actual limit %.3f should exceed 1 (the paper's motivation)", r.Label, act)
		}
		if strings.Contains(r.Label, "Serial") && act > 1.3 {
			t.Errorf("row %q: serial limit %.3f implausibly high", r.Label, act)
		}
	}
	// Pseudo-dataflow limits are insensitive to memory latency:
	// compare M11BR5 vs M5BR5 rows within each class and mode.
	for base := 0; base < 16; base += 4 {
		m11, m5 := t2.Rows[base].Rates[0], t2.Rows[base+2].Rates[0]
		if diff := m11 - m5; diff > 0.15 || diff < -0.15 {
			t.Errorf("pseudo-dataflow memory sensitivity too large: %q %.3f vs %q %.3f",
				t2.Rows[base].Label, m11, t2.Rows[base+2].Label, m5)
		}
	}
}

func TestTables3And4Shape(t *testing.T) {
	for _, tb := range []*Table{t3, t4} {
		if len(tb.Rows) != 8 || len(tb.Columns) != 8 {
			t.Fatalf("Table %d: %dx%d, want 8x8", tb.Number, len(tb.Rows), len(tb.Columns))
		}
		// Most of the multi-issue gain arrives by 3-4 stations: the
		// step from 4 to 8 stations is under 5%.
		for c := range tb.Columns {
			r4, r8 := tb.Rows[3].Rates[c], tb.Rows[7].Rates[c]
			if r8 > 1.05*r4 {
				t.Errorf("Table %d col %s: rate still climbing after 4 stations (%.3f -> %.3f)",
					tb.Number, tb.Columns[c], r4, r8)
			}
		}
		// N-Bus vs 1-Bus differ negligibly (columns come in pairs).
		for c := 0; c < len(tb.Columns); c += 2 {
			for r := range tb.Rows {
				n, one := tb.Rows[r].Rates[c], tb.Rows[r].Rates[c+1]
				if n < one-1e-9 {
					t.Errorf("Table %d row %d: N-Bus (%.3f) below 1-Bus (%.3f)", tb.Number, r, n, one)
				}
				if n > 1.05*one {
					t.Errorf("Table %d row %d: 1-Bus far behind N-Bus (%.3f vs %.3f)", tb.Number, r, one, n)
				}
			}
		}
	}
}

func TestTables7And8Shape(t *testing.T) {
	for _, tb := range []*Table{t7, t8} {
		if len(tb.Rows) != 24 || len(tb.Columns) != 8 { // 4 configs x 6 sizes; 4 widths x 2 buses
			t.Fatalf("Table %d: %dx%d, want 24x8", tb.Number, len(tb.Rows), len(tb.Columns))
		}
		for _, r := range tb.Rows {
			for _, v := range r.Rates {
				if v <= 0 {
					t.Errorf("Table %d row %q: nonpositive rate", tb.Number, r.Label)
				}
			}
		}
	}
	// Dependency resolution with one issue unit already beats every
	// Table 1 machine: compare column "1 N-Bus" at RUU 50 (row 4 of
	// the M11BR5 block) against Table 1's CRAY-like M11BR5.
	cray := t1.Rows[3].Rates[0] // Scalar CRAY-like, M11BR5
	ruu1 := t7.Rows[4].Rates[0] // M11BR5 RUU 50, 1 unit, N-Bus
	if ruu1 <= cray {
		t.Errorf("RUU single issue (%.3f) did not beat CRAY-like (%.3f)", ruu1, cray)
	}
	// Vectorizable code with 4 units and a large RUU exceeds 1
	// instruction per cycle — the paper's headline for Table 8.
	bestVec := t8.Rows[5].Rates[6] // M11BR5 RUU 100, 4 units, N-Bus
	if bestVec <= 1 {
		t.Errorf("Table 8 best N-Bus rate %.3f, want > 1", bestVec)
	}
	// The 1-Bus organization saturates near one instruction per cycle.
	for _, tb := range []*Table{t7, t8} {
		for _, r := range tb.Rows {
			for c := 1; c < len(r.Rates); c += 2 { // 1-Bus columns
				if r.Rates[c] > 1.15 {
					t.Errorf("Table %d row %q: 1-Bus rate %.3f far above saturation", tb.Number, r.Label, r.Rates[c])
				}
			}
		}
	}
}

func TestRenderLooksLikeATable(t *testing.T) {
	out := t1.Render()
	if !strings.Contains(out, "Table 1.") {
		t.Error("missing caption")
	}
	if !strings.Contains(out, "M11BR5") || !strings.Contains(out, "M5BR2") {
		t.Error("missing column headers")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2+len(t1.Rows) {
		t.Errorf("rendered %d lines, want %d", len(lines), 2+len(t1.Rows))
	}
}

func TestGetAndAll(t *testing.T) {
	for n := 1; n <= 8; n++ {
		tb, err := Get(n)
		if err != nil {
			t.Fatalf("Get(%d): %v", n, err)
		}
		if tb.Number != n {
			t.Errorf("Get(%d) returned table %d", n, tb.Number)
		}
	}
	if _, err := Get(9); err == nil {
		t.Error("Get(9) did not fail")
	}
	if got := len(All()); got != 8 {
		t.Errorf("All() returned %d tables, want 8", got)
	}
}

func TestSectionThreeThreeShape(t *testing.T) {
	tb := SectionThreeThree()
	if len(tb.Rows) != 8 || len(tb.Columns) != 4 {
		t.Fatalf("supplement table is %dx%d, want 8x4", len(tb.Rows), len(tb.Columns))
	}
	// Within each class, the schemes improve monotonically in every
	// column: blocking < scoreboard < Tomasulo <= RUU (aggregate).
	for class := 0; class < 2; class++ {
		rows := tb.Rows[class*4 : class*4+4]
		for c := 0; c < 4; c++ {
			for i := 1; i < 4; i++ {
				if rows[i].Rates[c] < rows[i-1].Rates[c]-0.02 {
					t.Errorf("supplement %q col %d: %.3f < %.3f",
						rows[i].Label, c, rows[i].Rates[c], rows[i-1].Rates[c])
				}
			}
		}
	}
}

func TestCSVAndJSONEncodings(t *testing.T) {
	out := t1.CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1+len(t1.Rows) {
		t.Fatalf("CSV has %d lines, want %d", len(lines), 1+len(t1.Rows))
	}
	if !strings.Contains(lines[0], "Table 1") || !strings.Contains(lines[0], "M11BR5") {
		t.Errorf("CSV header malformed: %q", lines[0])
	}
	// Every data line has label + one value per column.
	for _, l := range lines[1:] {
		if got := strings.Count(l, ","); got != len(t1.Columns) {
			t.Errorf("CSV line %q has %d commas, want %d", l, got, len(t1.Columns))
		}
	}

	js, err := t1.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Number  int      `json:"number"`
		Columns []string `json:"columns"`
		Rows    []struct {
			Label string    `json:"label"`
			Rates []float64 `json:"rates"`
		} `json:"rows"`
	}
	if err := jsonUnmarshal(js, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Number != 1 || len(decoded.Rows) != len(t1.Rows) || len(decoded.Columns) != 4 {
		t.Errorf("JSON round trip lost structure: %+v", decoded)
	}
	if decoded.Rows[0].Rates[0] != t1.Rows[0].Rates[0] {
		t.Error("JSON lost rate precision")
	}
}
