package tables

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"

	"mfup/internal/atomicio"
	"mfup/internal/faultinject"
)

// Checkpoint is a JSONL journal of completed table cells, the resume
// mechanism of interrupted sweeps: every healthy cell's harmonic-mean
// rate is appended as one line as soon as its batch resolves, and a
// later run against the same journal skips those cells entirely,
// producing byte-identical tables without recomputation.
//
// One line per cell:
//
//	{"table":3,"cell":17,"rate":"0x1.9c7ep-01"}
//
// Rates are recorded as Go hex floating-point literals, which round
// trip exactly — a resumed table must render the very same bytes, so
// "close to" is not close enough. Failed and non-finite cells are
// never journaled; a resumed run re-attempts them.
//
// Append + a torn-line-tolerant reader make the journal crash-safe:
// a process killed mid-append loses at most the line being written,
// which the next run simply recomputes. Lines are written through the
// "write.checkpoint" fault-injection site.
type Checkpoint struct {
	path string

	mu     sync.Mutex
	f      *os.File
	cells  map[checkpointKey]float64
	loaded int   // cells read from an existing journal
	saved  int   // cells appended by this process
	err    error // first write failure, sticky
}

type checkpointKey struct {
	Table int
	Cell  int
}

// checkpointLine is the JSONL wire form.
type checkpointLine struct {
	Table int    `json:"table"`
	Cell  int    `json:"cell"`
	Rate  string `json:"rate"`
}

// checkpointHeader is the journal's first line: the signature of the
// grid the rates were computed under.
type checkpointHeader struct {
	Signature string `json:"signature"`
}

// OpenCheckpoint opens (creating if absent) the journal at path and
// loads every complete line already in it. A torn final line — a line
// without its terminating newline, the signature of a kill mid-append
// — is dropped and truncated away so the next append starts on a
// clean line. Any complete line that does not parse is an error,
// because resuming from a journal that cannot be trusted would
// silently corrupt tables.
//
// The journal's first line is a signature header binding the rates to
// the grid that produced them (see JournalSignature): a fresh journal
// is stamped with signature, and an existing one must carry the very
// same stamp or the open fails closed. Cells are keyed (table, cell
// index), so a journal written at a different loop scale — or against
// a different set of machine definitions — holds rates whose keys
// alias cells that now mean something else; replaying them would
// corrupt the tables silently, which is worse than recomputing.
// Journals that predate the header are refused for the same reason.
func OpenCheckpoint(path, signature string) (*Checkpoint, error) {
	if signature == "" {
		return nil, fmt.Errorf("checkpoint: empty journal signature (use JournalSignature)")
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	// Exclusive advisory lock: the append-only crash-safety story
	// assumes a single writer, and a second process (say, a daemon
	// serving the same journal) interleaving appends would fuse
	// records into unparseable lines. The second opener gets a
	// structured *atomicio.LockError instead; the lock dies with the
	// descriptor, so even kill -9 cannot wedge a later resume.
	if err := atomicio.Lock(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	c := &Checkpoint{path: path, f: f, cells: make(map[checkpointKey]float64)}
	r := bufio.NewReader(f)
	var accepted int64 // offset past the last complete, valid line
	lineno := 0
	signed := false // a matching signature header has been read
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			// No newline: empty tail or a torn append. Drop it either way.
			break
		}
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("checkpoint %s: %w", path, err)
		}
		lineno++
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) != 0 {
			if !signed {
				// The first complete line must be the signature header.
				// A legacy cell line lands here too: it unmarshals with an
				// empty Signature and is refused as unsigned.
				var hdr checkpointHeader
				if err := json.Unmarshal(trimmed, &hdr); err != nil {
					f.Close()
					return nil, fmt.Errorf("checkpoint %s line %d: %v", path, lineno, err)
				}
				if hdr.Signature == "" {
					f.Close()
					return nil, fmt.Errorf("checkpoint %s: journal has no signature header (written by an incompatible run?); its cell keys cannot be trusted — delete it or start a fresh journal", path)
				}
				if hdr.Signature != signature {
					f.Close()
					return nil, fmt.Errorf("checkpoint %s: journal signature %.12s.. does not match this run's %.12s.. (different scale or machine grid); resuming would replay rates into the wrong cells — delete it or rerun with the journal's settings", path, hdr.Signature, signature)
				}
				signed = true
				accepted += int64(len(line))
				continue
			}
			var cl checkpointLine
			if err := json.Unmarshal(trimmed, &cl); err != nil {
				f.Close()
				return nil, fmt.Errorf("checkpoint %s line %d: %v", path, lineno, err)
			}
			rate, err := strconv.ParseFloat(cl.Rate, 64)
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("checkpoint %s line %d: rate %q: %v", path, lineno, cl.Rate, err)
			}
			c.cells[checkpointKey{cl.Table, cl.Cell}] = rate
		}
		accepted += int64(len(line))
	}
	// Truncate away any torn tail: appending straight after a partial
	// line would fuse it with the next record into one corrupt line
	// that a second resume could not skip.
	if err := f.Truncate(accepted); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	if _, err := f.Seek(accepted, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	if !signed {
		if accepted != 0 {
			// Complete-but-blank lines with no header: not a journal we
			// wrote; refuse rather than stamp a header after them.
			f.Close()
			return nil, fmt.Errorf("checkpoint %s: journal has no signature header (written by an incompatible run?); its cell keys cannot be trusted — delete it or start a fresh journal", path)
		}
		// A fresh (or fully torn) journal: stamp it before any cells.
		hdr, err := json.Marshal(checkpointHeader{Signature: signature})
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("checkpoint %s: %w", path, err)
		}
		w := faultinject.WrapWriter("write.checkpoint", f)
		if _, err := w.Write(append(hdr, '\n')); err != nil {
			f.Close()
			return nil, fmt.Errorf("checkpoint %s: %w", path, err)
		}
	}
	c.loaded = len(c.cells)
	return c, nil
}

// Lookup returns the journaled rate of (table, cell), if present.
func (c *Checkpoint) Lookup(table, cell int) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.cells[checkpointKey{table, cell}]
	return r, ok
}

// Record journals one completed cell. Non-finite rates are ignored
// (failed cells must be re-attempted on resume, not replayed). Write
// failures are sticky and reported by Close.
func (c *Checkpoint) Record(table, cell int, rate float64) {
	if rate != rate || rate == 0 { // NaN or degenerate
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := checkpointKey{table, cell}
	if _, dup := c.cells[key]; dup {
		return
	}
	c.cells[key] = rate
	if c.err != nil {
		return
	}
	line, err := json.Marshal(checkpointLine{
		Table: table, Cell: cell,
		Rate: strconv.FormatFloat(rate, 'x', -1, 64),
	})
	if err != nil {
		c.err = err
		return
	}
	w := faultinject.WrapWriter("write.checkpoint", c.f)
	if _, err := w.Write(append(line, '\n')); err != nil {
		c.err = fmt.Errorf("checkpoint %s: %w", c.path, err)
		return
	}
	c.saved++
}

// Loaded reports how many cells an existing journal contributed, and
// Saved how many this process appended.
func (c *Checkpoint) Loaded() int { return c.loaded }

// Saved reports how many cells this process appended to the journal.
func (c *Checkpoint) Saved() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.saved
}

// Flush makes the journal durable without closing it — the SIGINT
// path flushes before the process exits so every completed cell
// survives the kill.
func (c *Checkpoint) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.f.Sync(); err != nil && c.err == nil {
		c.err = fmt.Errorf("checkpoint %s: %w", c.path, err)
	}
	return c.err
}

// Close syncs and closes the journal, returning the first write
// failure encountered over its lifetime (injected or real).
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if serr := c.f.Sync(); serr != nil && c.err == nil {
		c.err = fmt.Errorf("checkpoint %s: %w", c.path, serr)
	}
	if cerr := c.f.Close(); cerr != nil && c.err == nil {
		c.err = cerr
	}
	return c.err
}
