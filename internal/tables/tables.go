// Package tables regenerates the eight tables of the paper's
// evaluation. Each TableN function runs the full set of simulations
// behind the corresponding table and returns the rows in the paper's
// layout; Render prints them in an aligned text form.
//
// Issue rates are harmonic means over the loops of a class, exactly
// as in the paper: the scalar loops are LFK {5, 6, 11, 13, 14}, the
// vectorizable loops LFK {1, 2, 3, 4, 7, 8, 9, 10, 12}.
//
// Table generation is parallel: every (machine, configuration, trace)
// cell of a table's grid is an independent simulation, so the cells
// fan out across a worker pool (internal/runner) bounded by
// SetParallel — GOMAXPROCS by default. Results are assembled by cell
// index, so a table's contents are bit-identical at any worker count.
package tables

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mfup/internal/core"
	"mfup/internal/events"
	"mfup/internal/limits"
	"mfup/internal/loops"
	"mfup/internal/machdef"
	"mfup/internal/probe"
	"mfup/internal/runner"
	"mfup/internal/stats"
	"mfup/internal/trace"
)

// parallel is the configured worker count; <= 0 means GOMAXPROCS.
var parallel atomic.Int64

// SetParallel sets the worker-goroutine count used to generate
// tables. n <= 0 restores the default (all cores). Table output is
// independent of this setting; only wall-clock time changes.
func SetParallel(n int) { parallel.Store(int64(n)) }

// Parallel returns the configured worker count: the last SetParallel
// value, or 0 meaning "all cores".
func Parallel() int { return int(parallel.Load()) }

// extrapolate toggles the steady-state extrapolation engine for every
// simulated cell.
var extrapolate atomic.Bool

// SetExtrapolate wraps every table cell's machine in the steady-state
// extrapolation engine (core.Extrapolate): runs the engine can close
// analytically skip the repetitive middle of each loop, and the rest
// fall back to full simulation. Table values are bit-identical either
// way; only the cost model changes — the engine's reference ladder
// makes it a net win for scaled-up loop lengths (SetScale), not for
// the paper defaults.
func SetExtrapolate(on bool) { extrapolate.Store(on) }

// Extrapolate reports whether the extrapolation engine is enabled.
func Extrapolate() bool { return extrapolate.Load() }

// scaleN is the requested per-kernel loop length; 0 means the paper
// defaults.
var scaleN atomic.Int64

// SetScale regenerates every kernel at loop length n instead of the
// paper defaults; n <= 0 restores the defaults. Each kernel
// materializes the largest buildable length <= n its memory layout
// supports; with SetExtrapolate(true), kernels with a detectable
// steady state account for the remaining iterations analytically, so
// n far beyond physical layouts stays affordable. Kernels that can do
// neither are clamped, and ScaleNotes reports them.
func SetScale(n int) {
	if n < 0 {
		n = 0
	}
	scaleN.Store(int64(n))
}

// Scale returns the requested loop length, or 0 for the paper
// defaults.
func Scale() int { return int(scaleN.Load()) }

// scaleState caches the kernels of the current scale: their traces by
// class, the virtual window counts for the extrapolation engine, and
// notes about kernels that could not reach the requested length.
var scaleState struct {
	sync.Mutex
	n       int
	extrap  bool
	byClass map[loops.Class][]*trace.Trace
	virtual map[string]int64
	notes   []string
}

// scaled resolves the current scale configuration, building and
// caching the kernel set on first use (and whenever the requested
// scale changes). It returns the traces of class c and the shared
// virtual-window map.
func scaled(c loops.Class) (ts []*trace.Trace, virtual map[string]int64, notes []string) {
	n, ex := Scale(), Extrapolate()
	scaleState.Lock()
	defer scaleState.Unlock()
	if scaleState.byClass == nil || scaleState.n != n || scaleState.extrap != ex {
		scaleState.n, scaleState.extrap = n, ex
		scaleState.byClass = map[loops.Class][]*trace.Trace{}
		scaleState.virtual = map[string]int64{}
		scaleState.notes = nil
		for _, base := range loops.All() {
			k, extra := base, int64(0)
			if n > 0 {
				var err error
				k, extra, err = loops.ForScale(base.Number, n)
				if err != nil {
					// Below the kernel's minimum: keep the default build.
					scaleState.notes = append(scaleState.notes,
						fmt.Sprintf("%s: %v; using default length %d", base, err, base.N))
					k, extra = base, 0
				}
			}
			if extra > 0 {
				v := int64(0)
				if ex {
					var err error
					if err = core.CanExtrapolate(k.SharedTrace()); err == nil {
						v, err = loops.VirtualWindows(k, extra)
					}
					if err != nil {
						scaleState.notes = append(scaleState.notes,
							fmt.Sprintf("%s: clamped to %d iterations: %v", k, k.N, err))
					}
				} else {
					scaleState.notes = append(scaleState.notes,
						fmt.Sprintf("%s: clamped to %d iterations (enable extrapolation to extend analytically)", k, k.N))
				}
				if v > 0 {
					scaleState.virtual[k.SharedTrace().Name] = v
				}
			}
			scaleState.byClass[k.Class] = append(scaleState.byClass[k.Class], k.SharedTrace())
		}
	}
	return scaleState.byClass[c], scaleState.virtual, scaleState.notes
}

// ScaleNotes reports, after table generation, which kernels could not
// reach the requested SetScale length and were clamped. Empty at the
// paper defaults.
func ScaleNotes() []string {
	_, _, notes := scaled(loops.Scalar)
	return notes
}

// collectMetrics toggles per-cell stall-breakdown collection.
var collectMetrics atomic.Bool

// SetCollectMetrics enables stall-reason metrics collection during
// table generation: every simulated cell gets a probe.Counters
// accumulator, exposed afterward as Table.Metrics. The default (off)
// runs every machine with a nil probe, so table values and timing are
// unaffected; collection never changes the rates either — the probe
// layer is observation-only.
func SetCollectMetrics(on bool) { collectMetrics.Store(on) }

// CollectMetrics reports whether metrics collection is enabled.
func CollectMetrics() bool { return collectMetrics.Load() }

// collectTraces toggles per-cell lifecycle-event recording.
var collectTraces atomic.Bool

// traceEventCap is the per-run event cap for cell recorders; 0 means
// DefaultTraceEventCap.
var traceEventCap atomic.Int64

// DefaultTraceEventCap is the per-run event cap used for table cells
// when SetTraceEventCap has not chosen one. Tables run hundreds of
// cells over fourteen loops each, so the per-run bound here is much
// tighter than events.DefaultCap; drops are counted and surfaced in
// the metrics rather than growing without limit.
const DefaultTraceEventCap = 4096

// SetCollectTraces enables per-cell event recording during table
// generation: every simulated cell gets an events.Recorder, exposed
// afterward as the Recorder field of Table.Metrics and exportable
// with Table.WriteTraces. Like the probe layer, recording is
// observation-only: table values are identical with and without it.
func SetCollectTraces(on bool) { collectTraces.Store(on) }

// CollectTraces reports whether event recording is enabled.
func CollectTraces() bool { return collectTraces.Load() }

// SetTraceEventCap bounds each cell run's recorded events; n <= 0
// restores DefaultTraceEventCap. Events beyond the cap are dropped
// and counted, never accumulated.
func SetTraceEventCap(n int) {
	if n < 0 {
		n = 0
	}
	traceEventCap.Store(int64(n))
}

// TraceEventCap returns the effective per-run event cap.
func TraceEventCap() int {
	if n := int(traceEventCap.Load()); n > 0 {
		return n
	}
	return DefaultTraceEventCap
}

// CellMetrics is one grid cell's observability record: which row and
// column of the table it belongs to, the accumulated stall counters
// over all of the cell's loop runs (nil unless SetCollectMetrics was
// on), the cell's event recorder (nil unless SetCollectTraces was
// on), and the cell's execution telemetry — wall-clock time,
// simulated cycles, and recorder drop counts.
type CellMetrics struct {
	Row      string
	Column   string
	Counters *probe.Counters
	Recorder *events.Recorder

	Wall          time.Duration // wall-clock time over the cell's runs
	Cycles        int64         // simulated cycles summed over the cell's runs
	Events        int64         // lifecycle events recorded
	EventsDropped int64         // events dropped at the recorder's cap
}

// guardCfg holds the per-cell execution bounds and resilience
// settings applied during table generation; the zero value (no
// bounds, no retries, no checkpoint) reproduces the tables with no
// guard overhead on the healthy path.
var guardCfg struct {
	sync.Mutex
	lim          core.Limits
	cellTimeout  time.Duration
	ctx          context.Context
	retries      int
	retryBackoff time.Duration
	retrySeed    int64
	ckpt         *Checkpoint
}

// SetLimits bounds every simulation cell run during table generation
// (cycle budget, stall watchdog, deadline). The zero Limits restores
// unbounded execution.
func SetLimits(lim core.Limits) {
	guardCfg.Lock()
	defer guardCfg.Unlock()
	guardCfg.lim = lim
}

// SetCellTimeout gives each simulation cell its own wall-clock
// deadline during table generation; d <= 0 disables it.
func SetCellTimeout(d time.Duration) {
	guardCfg.Lock()
	defer guardCfg.Unlock()
	guardCfg.cellTimeout = d
}

// SetContext installs the cancellation context observed by table
// generation: when it ends (SIGINT/SIGTERM in mfutables), in-flight
// cells finish, unstarted cells are skipped with runner.ErrSkipped,
// and the partial table still renders. nil restores Background.
func SetContext(ctx context.Context) {
	guardCfg.Lock()
	defer guardCfg.Unlock()
	guardCfg.ctx = ctx
}

// SetRetry configures per-cell retrying of transient failures during
// table generation: up to retries re-attempts with exponential
// backoff from base backoff (0 = the runner default) and
// deterministic jitter derived from seed. retries <= 0 disables.
func SetRetry(retries int, backoff time.Duration, seed int64) {
	guardCfg.Lock()
	defer guardCfg.Unlock()
	guardCfg.retries = retries
	guardCfg.retryBackoff = backoff
	guardCfg.retrySeed = seed
}

// SetCheckpoint installs a journal of completed cells: every healthy
// cell's rate is appended as soon as its batch resolves, and cells
// already in the journal are served from it without simulation. nil
// disables checkpointing.
func SetCheckpoint(c *Checkpoint) {
	guardCfg.Lock()
	defer guardCfg.Unlock()
	guardCfg.ckpt = c
}

// runnerOptions snapshots the configured worker count, bounds, and
// retry policy.
func runnerOptions() runner.Options {
	guardCfg.Lock()
	defer guardCfg.Unlock()
	return runner.Options{
		Parallel:     Parallel(),
		Limits:       guardCfg.lim,
		CellTimeout:  guardCfg.cellTimeout,
		Retries:      guardCfg.retries,
		RetryBackoff: guardCfg.retryBackoff,
		RetrySeed:    guardCfg.retrySeed,
	}
}

// batchContext returns the configured cancellation context.
func batchContext() context.Context {
	guardCfg.Lock()
	defer guardCfg.Unlock()
	if guardCfg.ctx != nil {
		return guardCfg.ctx
	}
	return context.Background()
}

// checkpoint returns the installed journal, or nil.
func checkpoint() *Checkpoint {
	guardCfg.Lock()
	defer guardCfg.Unlock()
	return guardCfg.ckpt
}

// Table is a rendered experiment: a grid of issue rates.
type Table struct {
	Number  int
	Title   string
	Columns []string // value column headers
	Rows    []Row

	// Errors collects the failures of cells that could not be
	// simulated (panic, watchdog, bad configuration). A failed cell's
	// rate is NaN and renders as ERR; every healthy cell still holds
	// its correct value.
	Errors []*runner.CellError

	// Metrics holds each simulated cell's stall breakdown, row-major in
	// the grid's layout, when SetCollectMetrics(true) was in effect.
	// Nil otherwise, and always nil for the analytic Table 2, which
	// runs no machines.
	Metrics []CellMetrics

	// Retries counts transient-failure re-attempts spent generating the
	// table (always 0 unless SetRetry enabled retrying).
	Retries int64
}

// ErrorSummary renders one line per failed cell, or "" when the whole
// table generated cleanly.
func (t *Table) ErrorSummary() string {
	if len(t.Errors) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "table %d: %d cell(s) failed:\n", t.Number, len(t.Errors))
	for _, e := range t.Errors {
		fmt.Fprintf(&b, "  %v\n", e)
	}
	return b.String()
}

// Row is one table line.
type Row struct {
	Label string
	Rates []float64
}

// Render formats the table as aligned text, rates with the paper's
// two-decimal precision.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table %d. %s\n", t.Number, t.Title)
	width := 10
	for _, c := range t.Columns {
		if len(c)+2 > width {
			width = len(c) + 2
		}
	}
	label := 14
	for _, r := range t.Rows {
		if len(r.Label)+2 > label {
			label = len(r.Label) + 2
		}
	}
	fmt.Fprintf(&b, "%-*s", label, "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%*s", width, c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", label, r.Label)
		for _, v := range r.Rates {
			if math.IsNaN(v) {
				fmt.Fprintf(&b, "%*s", width, "ERR")
			} else {
				fmt.Fprintf(&b, "%*s", width, stats.Rate2(v))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// fill populates t.Rows from cell rates produced in row-major order:
// len(t.Columns) consecutive rates per label.
func (t *Table) fill(labels []string, rates []float64) {
	w := len(t.Columns)
	for i, label := range labels {
		t.Rows = append(t.Rows, Row{Label: label, Rates: rates[i*w : (i+1)*w : (i+1)*w]})
	}
}

// attachMetrics records each cell's observability record — counters,
// recorder, telemetry — with its grid position, in the same row-major
// order as fill. A no-op when neither metrics nor trace collection
// was on for the batch.
func (t *Table) attachMetrics(labels []string, b *batch) {
	if !b.observed {
		return
	}
	w := len(t.Columns)
	for i := range b.tasks {
		m := CellMetrics{
			Row: labels[i/w], Column: t.Columns[i%w],
			Counters: b.probes[i], Recorder: b.recorders[i],
		}
		if b.stats != nil {
			st := b.stats[i]
			m.Wall, m.Cycles = st.Wall, st.Cycles
			m.Events, m.EventsDropped = st.Events, st.EventsDropped
		}
		t.Metrics = append(t.Metrics, m)
	}
}

// classTraces returns the cached traces of a loop class at the
// current scale.
func classTraces(c loops.Class) []*trace.Trace {
	ts, _, _ := scaled(c)
	return ts
}

// batch accumulates a table's grid of cells — each a (machine
// constructor, trace set) pair whose value is a harmonic-mean issue
// rate — and evaluates all of their simulations in one parallel
// fan-out. Cells resolve in the order they were added, so callers lay
// out a table by adding cells row-major and calling rates once.
type batch struct {
	table     int // table number, the checkpoint journal key
	tasks     []runner.Task
	probes    []*probe.Counters  // per cell; nil entries when collection is off
	recorders []*events.Recorder // per cell; nil entries when tracing is off
	stats     []runner.TaskStat  // per cell, filled by rates
	retries   int64              // transient-failure re-attempts, summed by rates
	observed  bool               // any cell carries a probe or recorder
}

// cell schedules one grid cell: one machine from mk over all traces.
func (b *batch) cell(mk func() core.Machine, ts []*trace.Trace) {
	if Extrapolate() {
		_, virtual, _ := scaled(loops.Scalar)
		inner := mk
		// Best effort: the rare machine/loop pair with no steady state
		// within the engine's sampled horizon falls back to its
		// materialized iterations rather than failing the cell.
		mk = func() core.Machine { return core.Extrapolate(inner()).WithVirtual(virtual).BestEffort() }
	}
	t := runner.Task{New: mk, Traces: ts}
	var c *probe.Counters
	if CollectMetrics() {
		c = new(probe.Counters)
		t.Probe = c
		b.observed = true
	}
	var r *events.Recorder
	if CollectTraces() {
		r = events.NewRecorder(TraceEventCap())
		t.Recorder = r
		b.observed = true
	}
	b.tasks = append(b.tasks, t)
	b.probes = append(b.probes, c)
	b.recorders = append(b.recorders, r)
}

// rates runs every scheduled simulation on the worker pool and
// returns each cell's harmonic-mean issue rate, in add order, plus
// the failures of any cells that could not be simulated. A failed
// cell's rate is NaN; healthy cells are unaffected. A run that
// completes but reports a non-positive issue rate is a failure too:
// the harmonic mean is undefined there (stats.HarmonicMean returns
// NaN), so the cell is marked ERR with a diagnostic naming the loop
// instead of leaking NaN into the rendered table.
func (b *batch) rates() ([]float64, []*runner.CellError) {
	// Partition against the checkpoint journal: cells already
	// completed by an earlier (interrupted) run are served from it and
	// never re-simulated; only the remainder goes to the worker pool.
	ckpt := checkpoint()
	cached := make([]float64, len(b.tasks))
	run := make([]runner.Task, 0, len(b.tasks))
	origIdx := make([]int, 0, len(b.tasks)) // run index -> cell index
	for i := range b.tasks {
		if ckpt != nil {
			if rate, ok := ckpt.Lookup(b.table, i); ok {
				cached[i] = rate
				continue
			}
		}
		run = append(run, b.tasks[i])
		origIdx = append(origIdx, i)
	}

	results, taskStats, errs := runner.RunCheckedStats(batchContext(), runnerOptions(), run)

	// Remap everything the runner reported from run order back to cell
	// order, so grid layout, metrics, and error coordinates are
	// identical with and without a checkpoint.
	b.stats = make([]runner.TaskStat, len(b.tasks))
	for ri, st := range taskStats {
		b.stats[origIdx[ri]] = st
		b.retries += st.Retries
	}
	for _, e := range errs {
		e.Task = origIdx[e.Task]
	}
	failed := make(map[int]bool, len(errs))
	for _, e := range errs {
		failed[e.Task] = true
	}
	out := make([]float64, 0, len(b.tasks))
	rs := make([]float64, 0, 16)
	resultAt := make(map[int][]core.Result, len(results))
	for ri, cell := range results {
		resultAt[origIdx[ri]] = cell
	}
	for i := range b.tasks {
		cell, ran := resultAt[i]
		if !ran {
			out = append(out, cached[i])
			continue
		}
		if failed[i] {
			out = append(out, math.NaN())
			continue
		}
		rs = rs[:0]
		bad := false
		for j, r := range cell {
			rate := r.IssueRate()
			if !(rate > 0) {
				errs = append(errs, &runner.CellError{
					Task: i, Trace: j, Machine: r.Machine, TraceName: r.Trace,
					Err: fmt.Errorf("non-positive issue rate %g (%d instructions in %d cycles)",
						rate, r.Instructions, r.Cycles),
				})
				bad = true
				continue
			}
			rs = append(rs, rate)
		}
		if bad {
			out = append(out, math.NaN())
			continue
		}
		hm := stats.HarmonicMean(rs)
		out = append(out, hm)
		if ckpt != nil {
			ckpt.Record(b.table, i, hm)
		}
	}
	sort.Slice(errs, func(a, b int) bool {
		if errs[a].Task != errs[b].Task {
			return errs[a].Task < errs[b].Task
		}
		return errs[a].Trace < errs[b].Trace
	})
	return out, errs
}

// ---- declarative cell construction ----------------------------------
//
// Every simulated machine in the grid is built through a declarative
// machine definition (internal/machdef) rather than a hand-assembled
// constructor call. The golden-table tests and the seed snapshot
// therefore double as a byte-identity proof that the spec→constructor
// mapping is faithful; the same spec helpers feed JournalSignature, so
// the checkpoint journal is keyed by the full machine grid.

// orgKinds names the machdef kind of each §3 single-issue
// organization.
var orgKinds = map[core.Organization]string{
	core.Simple:       "simple",
	core.SerialMemory: "serialmem",
	core.NonSegmented: "nonseg",
	core.CRAYLike:     "cray",
}

// baseSpec carries one M/BR variation into a machine definition of
// the given kind.
func baseSpec(kind string, cfg core.Config) machdef.Spec {
	return machdef.Spec{Kind: kind, Mem: cfg.MemLatency, Br: cfg.BranchLatency}
}

// multiSpec is the Tables 3-6 cell: a multi or ooo machine with n
// issue stations on the named interconnect ("nbus" or "1bus").
func multiSpec(kind string, cfg core.Config, n int, busName string) machdef.Spec {
	s := baseSpec(kind, cfg)
	s.Width, s.Bus = n, busName
	return s
}

// ruuSpec is the Tables 7-8 cell: n issue units over a size-entry
// Register Update Unit.
func ruuSpec(cfg core.Config, n int, busName string, size int) machdef.Spec {
	s := baseSpec("ruu", cfg)
	s.Width, s.Bus, s.RUU = n, busName, size
	return s
}

// defCell schedules one grid cell built from its declarative machine
// definition. The grid's specs are static and covered by the golden
// tests, so a spec that fails to canonicalize or compile is a
// programming error: the constructor panics, and the runner's
// per-cell recovery turns that into the cell's ERR entry.
func (b *batch) defCell(s machdef.Spec, ts []*trace.Trace) {
	b.cell(func() core.Machine {
		c, err := machdef.Canonicalize(s)
		if err == nil {
			var m core.Machine
			if m, err = c.New(); err == nil {
				return m
			}
		}
		panic(fmt.Sprintf("tables: grid spec: %v", err))
	}, ts)
}

// journalVersion names the checkpoint journal's grid layout. Bump it
// whenever the tables change shape — rows, columns, or cell order —
// so every older journal fails closed instead of replaying rates into
// cells that have moved.
const journalVersion = "mfup-tables/v1"

// gridSpecKeys enumerates the content key of every machine definition
// the full table grid simulates, in a fixed order mirroring the table
// layouts below. It exists so JournalSignature changes whenever the
// set of simulated machines does — including through changes to
// machdef's canonical encoding or defaults.
func gridSpecKeys() []string {
	var keys []string
	add := func(s machdef.Spec) {
		c, err := machdef.Canonicalize(s)
		if err != nil {
			panic(fmt.Sprintf("tables: grid spec: %v", err))
		}
		keys = append(keys, c.Key())
	}
	for _, cfg := range core.BaseConfigs() {
		for _, org := range core.Organizations() { // Table 1
			add(baseSpec(orgKinds[org], cfg))
		}
		for n := 1; n <= 8; n++ { // Tables 3-6
			for _, kind := range []string{"multi", "ooo"} {
				add(multiSpec(kind, cfg, n, "nbus"))
				add(multiSpec(kind, cfg, n, "1bus"))
			}
		}
		for _, size := range RUUSizes { // Tables 7-8
			for n := 1; n <= 4; n++ {
				add(ruuSpec(cfg, n, "nbus", size))
				add(ruuSpec(cfg, n, "1bus", size))
			}
		}
		// §3.3 supplement schemes not already enumerated above.
		add(baseSpec("scoreboard", cfg))
		add(baseSpec("tomasulo", cfg))
	}
	return keys
}

// JournalSignature fingerprints everything a checkpoint journal's
// cell rates depend on: the grid-layout version, the loop scale, and
// the content keys of every machine definition in the grid. Journal
// cells are keyed (table, cell index), so any change to what a cell
// index means — a different scale, a reshaped grid, a changed machine
// definition — makes old journals unresumable, and OpenCheckpoint
// fails closed on the mismatch.
//
// Extrapolation and parallelism are deliberately absent from the
// signature: both are bit-identical knobs, so a journal written with
// them off resumes cleanly with them on, and vice versa.
func JournalSignature() string {
	h := sha256.New()
	io.WriteString(h, journalVersion)
	fmt.Fprintf(h, "|scale=%d", Scale())
	for _, k := range gridSpecKeys() {
		io.WriteString(h, "|")
		io.WriteString(h, k)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// configColumns returns the paper's four machine-variation headers.
func configColumns() []string {
	var cols []string
	for _, cfg := range core.BaseConfigs() {
		cols = append(cols, cfg.Name())
	}
	return cols
}

// Table1 reproduces "Instruction Issue Rates for Different Basic
// Machine Organizations": the four single-issue machines of §3 over
// both loop classes and all four M/BR variations.
func Table1() *Table {
	t := &Table{
		Number:  1,
		Title:   "Instruction Issue Rates for Different Basic Machine Organizations",
		Columns: configColumns(),
	}
	b := batch{table: t.Number}
	var labels []string
	for _, class := range []loops.Class{loops.Scalar, loops.Vectorizable} {
		ts := classTraces(class)
		for _, org := range core.Organizations() {
			labels = append(labels, fmt.Sprintf("%s %s", class, org))
			for _, cfg := range core.BaseConfigs() {
				b.defCell(baseSpec(orgKinds[org], cfg), ts)
			}
		}
	}
	rates, errs := b.rates()
	t.fill(labels, rates)
	t.attachMetrics(labels, &b)
	t.Errors = errs
	t.Retries = b.retries
	return t
}

// Table2 reproduces "The Pseudo-Dataflow and Resource Limits for
// Vector and Scalar Loops": §4's bounds under unlimited ("Pure") and
// in-order-WAW ("Serial") buffering assumptions. Columns are the
// pseudo-dataflow limit, the resource limit, and the actual limit
// (harmonic mean of per-loop minima). The bounds are analytical, not
// machine runs, so the fan-out here is over limit computations.
func Table2() *Table {
	t := &Table{
		Number:  2,
		Title:   "The Pseudo-Dataflow and Resource Limits for Vector and Scalar Loops",
		Columns: []string{"Pseudo-DF", "Resource", "Actual"},
	}
	type job struct {
		tr   *trace.Trace
		cfg  core.Config
		mode limits.Mode
	}
	var (
		jobs   []job
		labels []string
		rows   [][2]int // [first, count) job range per row
	)
	for _, class := range []loops.Class{loops.Scalar, loops.Vectorizable} {
		ts := classTraces(class)
		for _, mode := range []limits.Mode{limits.Pure, limits.Serial} {
			for _, cfg := range core.BaseConfigs() {
				labels = append(labels, fmt.Sprintf("%s %s %s", class, mode, cfg.Name()))
				rows = append(rows, [2]int{len(jobs), len(ts)})
				for _, tr := range ts {
					jobs = append(jobs, job{tr: tr, cfg: cfg, mode: mode})
				}
			}
		}
	}
	results := make([]limits.Limits, len(jobs))
	jobErrs := make([]error, len(jobs))
	runner.Each(Parallel(), len(jobs), func(i int) {
		j := jobs[i]
		jobErrs[i] = runner.Safe(func() {
			results[i] = limits.Compute(j.tr, j.cfg.Latencies(), j.mode)
		})
		if jobErrs[i] != nil {
			nan := math.NaN()
			results[i] = limits.Limits{PseudoDataflow: nan, Resource: nan, Actual: nan}
		}
	})
	for i, err := range jobErrs {
		if err != nil {
			t.Errors = append(t.Errors, &runner.CellError{
				Task: i, Trace: -1, Machine: "limit computation",
				TraceName: jobs[i].tr.Name, Err: err,
			})
			continue
		}
		// A bound that is not strictly positive poisons its row's
		// harmonic mean (NaN); report it like any other failed cell so
		// the ERR rendering comes with a diagnostic and exit status 1.
		l := results[i]
		if !(l.PseudoDataflow > 0) || !(l.Resource > 0) || !(l.Actual > 0) {
			t.Errors = append(t.Errors, &runner.CellError{
				Task: i, Trace: -1, Machine: "limit computation",
				TraceName: jobs[i].tr.Name,
				Err: fmt.Errorf("non-positive limit (pseudo-dataflow %g, resource %g, actual %g)",
					l.PseudoDataflow, l.Resource, l.Actual),
			})
		}
	}
	for i, label := range labels {
		first, n := rows[i][0], rows[i][1]
		var pdf, res, act []float64
		for _, l := range results[first : first+n] {
			pdf = append(pdf, l.PseudoDataflow)
			res = append(res, l.Resource)
			act = append(act, l.Actual)
		}
		t.Rows = append(t.Rows, Row{
			Label: label,
			Rates: []float64{
				stats.HarmonicMean(pdf),
				stats.HarmonicMean(res),
				stats.HarmonicMean(act),
			},
		})
	}
	return t
}

// issueStationColumns builds the N-Bus/1-Bus column pairs used by
// Tables 3-6.
func issueStationColumns() []string {
	var cols []string
	for _, cfg := range core.BaseConfigs() {
		cols = append(cols, cfg.Name()+" N-Bus", cfg.Name()+" 1-Bus")
	}
	return cols
}

// multiIssueTable implements Tables 3-6: one row per issue-station
// count 1-8, N-Bus and 1-Bus columns for each machine variation. kind
// is the machdef kind simulated: "multi" (sequential issue) or "ooo"
// (out-of-order issue).
func multiIssueTable(number int, title string, class loops.Class, kind string) *Table {
	t := &Table{Number: number, Title: title, Columns: issueStationColumns()}
	ts := classTraces(class)
	b := batch{table: t.Number}
	var labels []string
	for n := 1; n <= 8; n++ {
		labels = append(labels, fmt.Sprintf("%d stations", n))
		for _, cfg := range core.BaseConfigs() {
			b.defCell(multiSpec(kind, cfg, n, "nbus"), ts)
			b.defCell(multiSpec(kind, cfg, n, "1bus"), ts)
		}
	}
	rates, errs := b.rates()
	t.fill(labels, rates)
	t.attachMetrics(labels, &b)
	t.Errors = errs
	t.Retries = b.retries
	return t
}

// Table3 reproduces "Multiple Issue Units, Sequential Issue of Scalar
// Code" (§5.1).
func Table3() *Table {
	return multiIssueTable(3, "Multiple Issue Units, Sequential Issue of Scalar Code",
		loops.Scalar, "multi")
}

// Table4 reproduces "Multiple Issue Units, Sequential Issue for
// Vectorizable Code" (§5.1).
func Table4() *Table {
	return multiIssueTable(4, "Multiple Issue Units, Sequential Issue for Vectorizable Code",
		loops.Vectorizable, "multi")
}

// Table5 reproduces "Multiple Issue Units, Out-of-Order Issue for
// Scalar Code" (§5.2).
func Table5() *Table {
	return multiIssueTable(5, "Multiple Issue Units, Out-of-Order Issue for Scalar Code",
		loops.Scalar, "ooo")
}

// Table6 reproduces "Multiple Issue Units, Out-of-Order Issue for
// Vectorizable Loops" (§5.2).
func Table6() *Table {
	return multiIssueTable(6, "Multiple Issue Units, Out-of-Order Issue for Vectorizable Loops",
		loops.Vectorizable, "ooo")
}

// RUUSizes are the Register Update Unit sizes of Tables 7 and 8.
var RUUSizes = []int{10, 20, 30, 40, 50, 100}

// ruuTable implements Tables 7 and 8: rows are machine variation x
// RUU size; columns are issue-unit counts 1-4, each with N-Bus and
// 1-Bus.
func ruuTable(number int, title string, class loops.Class) *Table {
	t := &Table{Number: number, Title: title}
	for n := 1; n <= 4; n++ {
		t.Columns = append(t.Columns,
			fmt.Sprintf("%d N-Bus", n), fmt.Sprintf("%d 1-Bus", n))
	}
	ts := classTraces(class)
	b := batch{table: t.Number}
	var labels []string
	for _, cfg := range core.BaseConfigs() {
		for _, size := range RUUSizes {
			labels = append(labels, fmt.Sprintf("%s RUU %d", cfg.Name(), size))
			for n := 1; n <= 4; n++ {
				b.defCell(ruuSpec(cfg, n, "nbus", size), ts)
				b.defCell(ruuSpec(cfg, n, "1bus", size), ts)
			}
		}
	}
	rates, errs := b.rates()
	t.fill(labels, rates)
	t.attachMetrics(labels, &b)
	t.Errors = errs
	t.Retries = b.retries
	return t
}

// Table7 reproduces "Multiple Issue Units with Dependency Resolution;
// Scalar Code" (§5.3).
func Table7() *Table {
	return ruuTable(7, "Multiple Issue Units with Dependency Resolution; Scalar Code", loops.Scalar)
}

// Table8 reproduces "Multiple Issue Units with Dependency Resolution;
// Vectorizable Code" (§5.3).
func Table8() *Table {
	return ruuTable(8, "Multiple Issue Units with Dependency Resolution; Vectorizable Code", loops.Vectorizable)
}

// All regenerates every table in paper order.
func All() []*Table {
	return []*Table{
		Table1(), Table2(), Table3(), Table4(),
		Table5(), Table6(), Table7(), Table8(),
	}
}

// Get returns table n (1-8).
func Get(n int) (*Table, error) {
	switch n {
	case 1:
		return Table1(), nil
	case 2:
		return Table2(), nil
	case 3:
		return Table3(), nil
	case 4:
		return Table4(), nil
	case 5:
		return Table5(), nil
	case 6:
		return Table6(), nil
	case 7:
		return Table7(), nil
	case 8:
		return Table8(), nil
	}
	return nil, fmt.Errorf("tables: no table %d (the paper has tables 1-8)", n)
}

// SectionThreeThree is a supplementary table (not printed in the
// paper, but §3.3 quotes its endpoints): single-issue dependency
// resolution schemes compared on the four machine variations. Rows
// are loop classes x schemes; columns are the M/BR variations. The
// schemes are the blocking CRAY-like issue, the CDC-6600 scoreboard
// (issues past RAW, blocks WAW), Tomasulo (renames; one common data
// bus), and the RUU with one issue unit and 50 entries (the paper's
// §3.3 configuration, quoted as ~0.72 scalar / ~0.81 vectorizable on
// M11BR5).
func SectionThreeThree() *Table {
	t := &Table{
		Number:  0,
		Title:   "Supplement: Single-Issue Dependency Resolution Schemes (paper section 3.3)",
		Columns: configColumns(),
	}
	schemes := []struct {
		name string
		spec func(core.Config) machdef.Spec
	}{
		{"CRAY-like (blocking)", func(c core.Config) machdef.Spec { return baseSpec("cray", c) }},
		{"Scoreboard (CDC 6600)", func(c core.Config) machdef.Spec { return baseSpec("scoreboard", c) }},
		{"Tomasulo (360/91)", func(c core.Config) machdef.Spec { return baseSpec("tomasulo", c) }},
		{"RUU 1 unit, 50 entries", func(c core.Config) machdef.Spec { return ruuSpec(c, 1, "nbus", 50) }},
	}
	b := batch{table: t.Number}
	var labels []string
	for _, class := range []loops.Class{loops.Scalar, loops.Vectorizable} {
		ts := classTraces(class)
		for _, s := range schemes {
			labels = append(labels, fmt.Sprintf("%s %s", class, s.name))
			for _, cfg := range core.BaseConfigs() {
				b.defCell(s.spec(cfg), ts)
			}
		}
	}
	rates, errs := b.rates()
	t.fill(labels, rates)
	t.attachMetrics(labels, &b)
	t.Errors = errs
	t.Retries = b.retries
	return t
}
