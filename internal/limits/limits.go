// Package limits computes the performance bounds of §4 of the paper:
// upper bounds on the instruction issue rate derived from the dynamic
// trace rather than from any particular issue mechanism.
//
// Three bounds are computed per trace:
//
//   - Pseudo-dataflow limit: the program executes as a dataflow
//     graph. An instruction starts as soon as its operands are
//     available; there are no resource constraints. The one
//     sequencing constraint is control: instructions from a later
//     portion of the dynamic graph (a later loop iteration) cannot
//     start until the preceding branch has resolved. The limit is
//     instructions divided by the dataflow-graph critical path.
//
//   - Resource limit: the base machine has one unit of each kind
//     accepting at most one operation per cycle, so a program that
//     sends C operations to the busiest unit needs at least C cycles
//     plus that unit's latency to drain.
//
//   - Actual limit: per trace, the smaller of the two rates; sets of
//     loops are combined with the harmonic mean of per-loop actual
//     limits (which is why the aggregate actual limit is not simply
//     the minimum of the aggregate pseudo-dataflow and resource
//     limits).
//
// The Serial variant additionally forces instructions that write the
// same register to finish in order — the behaviour of a machine with
// no buffering for WAW hazards — which the paper shows collapses the
// limit to about 1 instruction per cycle.
package limits

import (
	"mfup/internal/isa"
	"mfup/internal/trace"
)

// Mode selects how WAW hazards are treated in the dataflow bound.
type Mode uint8

// Modes.
const (
	// Pure assumes unlimited buffering: a later write to a register
	// may complete before an earlier one (Table 2's "Pure" rows).
	Pure Mode = iota

	// Serial forces writes to the same register to complete in
	// program order (Table 2's "Serial" rows).
	Serial
)

// String names the mode as Table 2 does.
func (m Mode) String() string {
	if m == Serial {
		return "Serial"
	}
	return "Pure"
}

// Limits reports the §4 bounds for one trace under one machine
// configuration, as issue rates (instructions per cycle).
type Limits struct {
	PseudoDataflow float64
	Resource       float64

	// Actual is the smaller of the two: the binding constraint.
	Actual float64

	// CriticalPath is the dataflow critical path in cycles, the
	// denominator of PseudoDataflow.
	CriticalPath int64
}

// Compute derives the bounds for t with the given latency table.
//
// The dataflow recurrence tracks, per architectural register, the
// completion time of its latest writer, and — through memory — the
// completion time of the latest store to each address, so loads honor
// true (store-to-load) memory dependences. Each branch's completion
// becomes the control frontier: no later instruction may start before
// it, which is the paper's "different loop iterations cannot start
// until the appropriate branch conditions have been resolved".
func Compute(t *trace.Trace, lat isa.Latencies, mode Mode) Limits {
	var (
		regDone  [isa.NumRegs]int64
		regChain [isa.NumRegs]int64      // vector chain points (first element + 1)
		memDone  = make(map[int64]int64) // store completion per address
		ctrl     int64                   // control frontier
		critical int64
		unitUse  [isa.NumUnits]int64
		srcs     [3]isa.Reg
	)
	for i := range t.Ops {
		op := &t.Ops[i]

		// A vector instruction occupies its unit for one cycle per
		// element and completes when its last element does; its
		// resource cost is element-cycles, not one slot.
		var vlen int64
		if op.Code.IsVector() && op.VLen > 0 {
			vlen = int64(op.VLen)
		}
		if vlen > 0 {
			unitUse[op.Unit] += vlen
		} else {
			unitUse[op.Unit]++
		}

		// Streaming vector instructions read their vector operands at
		// the chain point (one cycle after the first element), the way
		// chaining hardware does; everything else waits for complete
		// values.
		chains := vlen > 0
		start := ctrl
		for _, r := range op.Reads(srcs[:0]) {
			avail := regDone[r]
			if chains && r.Class() == isa.ClassV {
				avail = regChain[r]
			}
			if avail > start {
				start = avail
			}
		}
		if op.Code.IsLoad() {
			if d := memDone[op.Addr]; d > start {
				start = d
			}
		}
		done := start + int64(lat.Of(op.Unit)) + vlen

		if op.Dst.Valid() {
			if mode == Serial && done <= regDone[op.Dst] {
				// Writes to one register retire in order: this result
				// cannot appear before the previous write to the same
				// register has completed.
				done = regDone[op.Dst] + 1
			}
			regDone[op.Dst] = done
			if vlen > 0 {
				regChain[op.Dst] = start + int64(lat.Of(op.Unit)) + 1
			} else {
				regChain[op.Dst] = done
			}
		}
		if op.Code.IsStore() {
			memDone[op.Addr] = done
		}
		if op.IsBranch() {
			ctrl = done
		}
		if done > critical {
			critical = done
		}
	}

	n := int64(len(t.Ops))
	var l Limits
	l.CriticalPath = critical
	if critical > 0 {
		l.PseudoDataflow = float64(n) / float64(critical)
	}

	// Resource bound: the busiest unit needs its operation count plus
	// its latency in cycles.
	var resourceTime int64
	for u := 0; u < isa.NumUnits; u++ {
		if unitUse[u] == 0 {
			continue
		}
		if t := unitUse[u] + int64(lat.Of(isa.Unit(u))); t > resourceTime {
			resourceTime = t
		}
	}
	if resourceTime > 0 {
		l.Resource = float64(n) / float64(resourceTime)
	}

	l.Actual = l.PseudoDataflow
	if l.Resource < l.Actual {
		l.Actual = l.Resource
	}
	return l
}
