package limits

import (
	"math"
	"testing"

	"mfup/internal/isa"
	"mfup/internal/trace"
)

var lat115 = isa.NewLatencies(11, 5)

func op(code isa.Opcode, dst, s1, s2 isa.Reg) trace.Op {
	return trace.Op{Code: code, Unit: code.Unit(), Parcels: int8(code.Parcels()), Dst: dst, Src1: s1, Src2: s2}
}

func tr(ops ...trace.Op) *trace.Trace { return &trace.Trace{Name: "t", Ops: ops} }

func TestDependentChain(t *testing.T) {
	// S1 -> S2 -> S3 -> S4, each a 6-cycle FloatAdd: critical path 24.
	l := Compute(tr(
		op(isa.OpFAdd, isa.S(1), isa.S(0), isa.S(0)),
		op(isa.OpFAdd, isa.S(2), isa.S(1), isa.S(1)),
		op(isa.OpFAdd, isa.S(3), isa.S(2), isa.S(2)),
		op(isa.OpFAdd, isa.S(4), isa.S(3), isa.S(3)),
	), lat115, Pure)
	if l.CriticalPath != 24 {
		t.Errorf("critical path = %d, want 24", l.CriticalPath)
	}
	if want := 4.0 / 24; math.Abs(l.PseudoDataflow-want) > 1e-12 {
		t.Errorf("pseudo-dataflow = %v, want %v", l.PseudoDataflow, want)
	}
}

func TestIndependentOpsBoundByResources(t *testing.T) {
	// Six independent FloatAdds: the dataflow path is one latency (6
	// cycles, rate 1.0), but one float adder bounds the rate to
	// 6/(6+6) = 0.5, which becomes the actual limit.
	var ops []trace.Op
	for i := 0; i < 6; i++ {
		ops = append(ops, op(isa.OpFAdd, isa.S(i+1), isa.S(0), isa.S(0)))
	}
	l := Compute(tr(ops...), lat115, Pure)
	if l.CriticalPath != 6 {
		t.Errorf("critical path = %d, want 6", l.CriticalPath)
	}
	if want := 1.0; l.PseudoDataflow != want {
		t.Errorf("pseudo-dataflow = %v, want %v", l.PseudoDataflow, want)
	}
	if want := 0.5; l.Resource != want {
		t.Errorf("resource = %v, want %v", l.Resource, want)
	}
	if l.Actual != l.Resource {
		t.Errorf("actual = %v, want the resource bound %v", l.Actual, l.Resource)
	}
}

func TestResourceBoundUsesBusiestUnit(t *testing.T) {
	// Three memory ops (11-cycle unit) and one float add: memory
	// dominates: time = 3 + 11 = 14.
	l := Compute(tr(
		op(isa.OpLoadS, isa.S(1), isa.A(1), isa.NoReg),
		op(isa.OpLoadS, isa.S(2), isa.A(1), isa.NoReg),
		op(isa.OpLoadS, isa.S(3), isa.A(1), isa.NoReg),
		op(isa.OpFAdd, isa.S(4), isa.S(0), isa.S(0)),
	), lat115, Pure)
	if want := 4.0 / 14; math.Abs(l.Resource-want) > 1e-12 {
		t.Errorf("resource = %v, want %v", l.Resource, want)
	}
}

func TestBranchGatesLaterInstructions(t *testing.T) {
	// An independent FloatAdd after a branch cannot start until the
	// branch resolves: path = 5 (branch) + 6 = 11. Without the
	// control dependence it would be 6.
	br := op(isa.OpJ, isa.NoReg, isa.NoReg, isa.NoReg)
	br.Taken = true
	l := Compute(tr(
		br,
		op(isa.OpFAdd, isa.S(1), isa.S(0), isa.S(0)),
	), lat115, Pure)
	if l.CriticalPath != 11 {
		t.Errorf("critical path = %d, want 11", l.CriticalPath)
	}
}

func TestConditionalBranchWaitsForA0(t *testing.T) {
	// AddrAdd writes A0 (2 cycles), the branch reads it: resolution
	// at 2 + 5 = 7; a gated op after adds 6 -> path 13.
	l := Compute(tr(
		op(isa.OpAAdd, isa.A0, isa.A(1), isa.A(2)),
		op(isa.OpJAN, isa.NoReg, isa.NoReg, isa.NoReg),
		op(isa.OpFAdd, isa.S(1), isa.S(0), isa.S(0)),
	), lat115, Pure)
	if l.CriticalPath != 13 {
		t.Errorf("critical path = %d, want 13", l.CriticalPath)
	}
}

func TestStoreToLoadDependence(t *testing.T) {
	// Store to address 5 completes at 11; a load of the same address
	// starts there: path = 11 + 11 = 22. A load from a different
	// address is independent.
	st := op(isa.OpStoreS, isa.NoReg, isa.A(1), isa.S(1))
	st.Addr = 5
	ldSame := op(isa.OpLoadS, isa.S(2), isa.A(1), isa.NoReg)
	ldSame.Addr = 5
	ldOther := op(isa.OpLoadS, isa.S(3), isa.A(1), isa.NoReg)
	ldOther.Addr = 6

	l := Compute(tr(st, ldSame, ldOther), lat115, Pure)
	if l.CriticalPath != 22 {
		t.Errorf("critical path = %d, want 22", l.CriticalPath)
	}
}

func TestSerialWAWForcesInOrderCompletion(t *testing.T) {
	// A 14-cycle reciprocal writes S1; an independent 1-cycle
	// transfer also writes S1. Pure: the transfer completes at 1 and
	// its reader at 1+6. Serial: the transfer may not complete before
	// the reciprocal (14), so it finishes at 15 and the reader at 21.
	ops := func() []trace.Op {
		return []trace.Op{
			op(isa.OpRecip, isa.S(1), isa.S(2), isa.NoReg),
			op(isa.OpSImm, isa.S(1), isa.NoReg, isa.NoReg),
			op(isa.OpFAdd, isa.S(3), isa.S(1), isa.S(1)),
		}
	}
	pure := Compute(tr(ops()...), lat115, Pure)
	serial := Compute(tr(ops()...), lat115, Serial)
	if pure.CriticalPath != 14 { // the reciprocal itself is the longest
		t.Errorf("pure critical path = %d, want 14", pure.CriticalPath)
	}
	if serial.CriticalPath != 21 {
		t.Errorf("serial critical path = %d, want 21", serial.CriticalPath)
	}
}

func TestSerialNoEffectWithoutWAW(t *testing.T) {
	ops := func() []trace.Op {
		return []trace.Op{
			op(isa.OpFAdd, isa.S(1), isa.S(0), isa.S(0)),
			op(isa.OpFMul, isa.S(2), isa.S(1), isa.S(1)),
		}
	}
	pure := Compute(tr(ops()...), lat115, Pure)
	serial := Compute(tr(ops()...), lat115, Serial)
	if pure.CriticalPath != serial.CriticalPath {
		t.Errorf("serial changed a WAW-free trace: %d vs %d", serial.CriticalPath, pure.CriticalPath)
	}
}

func TestMemoryLatencySensitivity(t *testing.T) {
	// A load feeding an add: path = mem + 6.
	ld := op(isa.OpLoadS, isa.S(1), isa.A(1), isa.NoReg)
	ld.Addr = 3
	ops := []trace.Op{ld, op(isa.OpFAdd, isa.S(2), isa.S(1), isa.S(1))}
	slow := Compute(tr(ops...), isa.NewLatencies(11, 5), Pure)
	fast := Compute(tr(ops...), isa.NewLatencies(5, 5), Pure)
	if slow.CriticalPath != 17 || fast.CriticalPath != 11 {
		t.Errorf("paths = %d, %d, want 17, 11", slow.CriticalPath, fast.CriticalPath)
	}
}

func TestActualIsMinOfBounds(t *testing.T) {
	l := Limits{}
	if l.Actual != 0 {
		t.Skip("zero-value check only")
	}
}

func TestEmptyTrace(t *testing.T) {
	l := Compute(tr(), lat115, Pure)
	if l.PseudoDataflow != 0 || l.Resource != 0 || l.Actual != 0 || l.CriticalPath != 0 {
		t.Errorf("empty trace limits = %+v, want zeros", l)
	}
}

func TestModeString(t *testing.T) {
	if Pure.String() != "Pure" || Serial.String() != "Serial" {
		t.Error("mode names wrong")
	}
}

func TestVectorOpsInLimits(t *testing.T) {
	// A 64-element vector add: critical path latency + 64 elements;
	// resource use 64 element-cycles on the float adder.
	vadd := trace.Op{Code: isa.OpVFAdd, Unit: isa.FloatAdd, Parcels: 1,
		Dst: isa.V(1), Src1: isa.V(2), Src2: isa.V(3), VLen: 64}
	l := Compute(tr(vadd), lat115, Pure)
	if l.CriticalPath != 70 { // 6 + 64
		t.Errorf("vector critical path = %d, want 70", l.CriticalPath)
	}
	// Resource time = 64 element-cycles + 6 latency; 1 instruction.
	if want := 1.0 / 70; math.Abs(l.Resource-want) > 1e-12 {
		t.Errorf("vector resource = %v, want %v", l.Resource, want)
	}
}

func TestVectorMachineRespectsLimits(t *testing.T) {
	// This package cannot import internal/core (cycle via loops);
	// the cross-check lives in internal/core. Here: dependent vector
	// ops chain through regDone like scalars.
	v1 := trace.Op{Code: isa.OpVLoad, Unit: isa.Memory, Parcels: 1,
		Dst: isa.V(1), Src1: isa.A(1), Src2: isa.NoReg, Addr: 64, Stride: 1, VLen: 64}
	v2 := trace.Op{Code: isa.OpVFMul, Unit: isa.FloatMul, Parcels: 1,
		Dst: isa.V(2), Src1: isa.V(1), Src2: isa.V(1), VLen: 64}
	l := Compute(tr(v1, v2), lat115, Pure)
	// The load's chain point is 11+1 = 12; the multiply starts there
	// and completes at 12+7+64 = 83 — matching the chaining vector
	// machine, which this bound must not be beaten by.
	if l.CriticalPath != 83 {
		t.Errorf("chained vector path = %d, want 83", l.CriticalPath)
	}
}
