package probe

import (
	"testing"

	"mfup/internal/isa"
)

// runCounters drives c through one synthetic run via the Probe
// interface, so every total is derived exactly the way a machine
// would: issues, attributed stalls, unit work, occupancy, and the
// End-derived drain remainder.
func runCounters(width int, cycles, issued, raw int64, occ map[int]int64) *Counters {
	c := new(Counters)
	c.Begin("m", "t", width, 4)
	c.Issue(0, issued)
	c.Stall(0, ReasonRAW, raw)
	c.Writeback(0, isa.FloatAdd, 6)
	c.BranchResolve(0)
	for level, n := range occ {
		c.Occupancy(level, n)
	}
	c.End(cycles)
	return c
}

// TestAddExtrapolatedPreservesCheck verifies the core accounting
// property the extrapolation engine leans on: if the reference run and
// its one-period successor each satisfy the slot ledger, so does the
// linear combination ref + times*(next-ref), for small and enormous
// multipliers alike.
func TestAddExtrapolatedPreservesCheck(t *testing.T) {
	ref := runCounters(2, 100, 120, 50, map[int]int64{2: 90, 3: 10})
	next := runCounters(2, 103, 124, 52, map[int]int64{2: 92, 3: 11})
	for _, e := range []*Counters{ref, next} {
		if err := e.Check(); err != nil {
			t.Fatalf("reference counters unsound: %v", err)
		}
	}
	for _, times := range []int64{0, 1, 2, 1_000_000_000} {
		var c Counters
		c.AddExtrapolated(ref, next, times)
		if err := c.Check(); err != nil {
			t.Errorf("times=%d: Check failed: %v", times, err)
		}
		if want := ref.Cycles + times*(next.Cycles-ref.Cycles); c.Cycles != want {
			t.Errorf("times=%d: Cycles = %d, want %d", times, c.Cycles, want)
		}
		if want := ref.Issued + times*(next.Issued-ref.Issued); c.Issued != want {
			t.Errorf("times=%d: Issued = %d, want %d", times, c.Issued, want)
		}
		if want := ref.Stalls[ReasonRAW] + times*(next.Stalls[ReasonRAW]-ref.Stalls[ReasonRAW]); c.Stalls[ReasonRAW] != want {
			t.Errorf("times=%d: RAW stalls = %d, want %d", times, c.Stalls[ReasonRAW], want)
		}
		if c.Runs != 1 {
			t.Errorf("times=%d: Runs = %d, want 1", times, c.Runs)
		}
	}
}

// TestAddExtrapolatedSkippedRegion pins the skipped-region semantics:
// nothing is simulated between the reference runs, yet every additive
// total — unit work, branches, the occupancy histogram — lands exactly
// where a full simulation of times periods would put it.
func TestAddExtrapolatedSkippedRegion(t *testing.T) {
	ref := runCounters(1, 40, 30, 10, map[int]int64{1: 40})
	next := runCounters(1, 44, 33, 11, map[int]int64{1: 42, 5: 2})
	const times = 1000
	var c Counters
	c.AddExtrapolated(ref, next, times)
	if want := ref.Branches + times*(next.Branches-ref.Branches); c.Branches != want {
		t.Errorf("Branches = %d, want %d", c.Branches, want)
	}
	u := isa.FloatAdd
	if want := ref.FU[u].Busy + times*(next.FU[u].Busy-ref.FU[u].Busy); c.FU[u].Busy != want {
		t.Errorf("FU busy = %d, want %d", c.FU[u].Busy, want)
	}
	// Histogram level 5 exists only in next: the skipped region adds
	// times copies of its delta even though ref never saw the level.
	if want := times * 2; histAt(&c, 5) != int64(want) {
		t.Errorf("occupancy level 5 = %d, want %d", histAt(&c, 5), want)
	}
	if want := int64(40) + times*2; histAt(&c, 1) != want {
		t.Errorf("occupancy level 1 = %d, want %d", histAt(&c, 1), want)
	}
	// Accumulation: folding a second extrapolated run into the same
	// Counters adds on top, as one Counters observing two runs.
	c.AddExtrapolated(ref, next, 1)
	if err := c.Check(); err != nil {
		t.Errorf("after second fold: %v", err)
	}
	if c.Runs != 2 {
		t.Errorf("Runs = %d, want 2", c.Runs)
	}
}

// TestDeltaEqual exercises the steady-state fingerprint predicate on
// matching pairs, on every observable field that can break the match,
// and on histograms of unequal recorded length.
func TestDeltaEqual(t *testing.T) {
	mk := func() (*Counters, *Counters, *Counters, *Counters) {
		a0 := runCounters(2, 100, 120, 50, map[int]int64{2: 90})
		a1 := runCounters(2, 104, 125, 52, map[int]int64{2: 93})
		b0 := runCounters(2, 200, 240, 100, map[int]int64{2: 180})
		b1 := runCounters(2, 204, 245, 102, map[int]int64{2: 183})
		return a0, a1, b0, b1
	}
	a0, a1, b0, b1 := mk()
	if !DeltaEqual(a0, a1, b0, b1) {
		t.Fatal("identical deltas reported unequal")
	}
	perturb := []struct {
		name string
		mut  func(c *Counters)
	}{
		{"issued", func(c *Counters) { c.Issued++ }},
		{"cycles", func(c *Counters) { c.Cycles++ }},
		{"slots", func(c *Counters) { c.Slots++ }},
		{"branches", func(c *Counters) { c.Branches++ }},
		{"stall", func(c *Counters) { c.Stalls[ReasonRAW]++ }},
		{"fu-ops", func(c *Counters) { c.FU[isa.FloatAdd].Ops++ }},
		{"fu-busy", func(c *Counters) { c.FU[isa.FloatAdd].Busy++ }},
		{"width", func(c *Counters) { c.Width++ }},
		{"hist", func(c *Counters) { c.Occupancy(2, 1) }},
		{"hist-new-level", func(c *Counters) { c.Occupancy(7, 1) }},
	}
	for _, p := range perturb {
		a0, a1, b0, b1 := mk()
		p.mut(b1)
		if DeltaEqual(a0, a1, b0, b1) {
			t.Errorf("%s perturbation went undetected", p.name)
		}
	}
	// Length-mismatched histograms with identical implied deltas are
	// still equal: levels beyond the recorded range read as zero.
	a0, a1, b0, b1 = mk()
	b0.Occupancy(9, 0)
	if !DeltaEqual(a0, a1, b0, b1) {
		t.Error("zero-padded histogram broke equality")
	}
}
