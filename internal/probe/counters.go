package probe

import (
	"fmt"
	"strings"

	"mfup/internal/isa"
)

// FUStat aggregates one functional unit's work over the probed runs.
type FUStat struct {
	// Ops is the number of operations the unit executed.
	Ops int64

	// Busy is the total cycles the unit spent occupied by them.
	Busy int64
}

// Counters is the accumulating Probe: per-reason stall slots, per-FU
// busy totals, an in-flight-buffer occupancy histogram, and the slot
// arithmetic tying them together. One Counters may observe any number
// of consecutive runs (e.g. every loop of a harmonic-mean cell); the
// totals accumulate across them.
type Counters struct {
	// Machine and Trace name the most recent run observed.
	Machine string
	Trace   string

	// Runs counts completed runs.
	Runs int

	// Width is the issue width of the probed machine (slots per
	// cycle); Capacity its in-flight buffer size, 0 if bufferless.
	Width    int
	Capacity int

	// Issued is the total instructions issued; Cycles the total
	// simulated cycles; Slots the total issue slots (Cycles x Width,
	// summed per run).
	Issued int64
	Cycles int64
	Slots  int64

	// Stalls holds the per-reason stall slots. Stalls[ReasonDrain] is
	// derived at End: the slots neither issued nor attributed.
	Stalls [NumReasons]int64

	// FU aggregates per-functional-unit work.
	FU [isa.NumUnits]FUStat

	// OccupancyHist[level] is the number of cycles the machine spent
	// with level instructions in flight in its buffer (only
	// cycle-stepped buffer machines report it; empty otherwise).
	OccupancyHist []int64

	// Branches counts branch resolutions.
	Branches int64
}

var _ Probe = (*Counters)(nil)

// Begin records the run's identity and slot geometry.
func (c *Counters) Begin(machine, trace string, width, capacity int) {
	c.Machine = machine
	c.Trace = trace
	c.Width = width
	if capacity > c.Capacity {
		c.Capacity = capacity
	}
}

// Issue accumulates issued instructions.
func (c *Counters) Issue(cycle int64, n int64) { c.Issued += n }

// Stall accumulates slots against reason r.
func (c *Counters) Stall(cycle int64, r Reason, slots int64) { c.Stalls[r] += slots }

// Writeback accumulates unit work.
func (c *Counters) Writeback(cycle int64, u isa.Unit, busy int64) {
	c.FU[u].Ops++
	c.FU[u].Busy += busy
}

// BranchResolve counts the resolution.
func (c *Counters) BranchResolve(cycle int64) { c.Branches++ }

// Occupancy accumulates the occupancy histogram.
func (c *Counters) Occupancy(level int, cycles int64) {
	if level >= len(c.OccupancyHist) {
		grown := make([]int64, level+1)
		copy(grown, c.OccupancyHist)
		c.OccupancyHist = grown
	}
	c.OccupancyHist[level] += cycles
}

// End closes a run of the given cycle count and re-derives the drain
// remainder so that Issued + sum(Stalls) == Slots always holds.
func (c *Counters) End(cycles int64) {
	c.Runs++
	c.Cycles += cycles
	c.Slots += cycles * int64(c.Width)
	var attributed int64
	for r := ReasonRAW; r < ReasonDrain; r++ {
		attributed += c.Stalls[r]
	}
	c.Stalls[ReasonDrain] = c.Slots - c.Issued - attributed
}

// StallTotal returns the slots lost to all reasons, drain included.
func (c *Counters) StallTotal() int64 {
	var total int64
	for _, s := range c.Stalls {
		total += s
	}
	return total
}

// Check verifies the accounting invariant the machines guarantee:
// every issue slot is an issue or exactly one attributed stall —
// Issued + sum(Stalls) == Slots — and no counter has gone negative
// (a negative derived drain means a machine over-attributed).
func (c *Counters) Check() error {
	if c.Issued < 0 || c.Cycles < 0 || c.Slots < 0 {
		return fmt.Errorf("probe: negative totals (issued %d, cycles %d, slots %d)", c.Issued, c.Cycles, c.Slots)
	}
	for r, s := range c.Stalls {
		if s < 0 {
			return fmt.Errorf("probe: %s stall count is negative (%d): over-attributed slots", Reason(r), s)
		}
	}
	if got := c.Issued + c.StallTotal(); got != c.Slots {
		return fmt.Errorf("probe: issued %d + stalls %d = %d slots accounted, machine reported %d",
			c.Issued, c.StallTotal(), got, c.Slots)
	}
	return nil
}

// String renders a one-line breakdown, stall slots by reason.
func (c *Counters) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d issued / %d slots", c.Machine, c.Issued, c.Slots)
	for r, s := range c.Stalls {
		if s != 0 {
			fmt.Fprintf(&b, ", %s %d", Reason(r), s)
		}
	}
	return b.String()
}
