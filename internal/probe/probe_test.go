package probe

import (
	"strings"
	"testing"

	"mfup/internal/isa"
)

func TestReasonStrings(t *testing.T) {
	want := []string{
		"raw", "waw", "structural-fu", "result-bus", "memory-bank",
		"branch", "buffer-full", "issue-width", "drain",
	}
	rs := Reasons()
	if len(rs) != len(want) || len(rs) != NumReasons {
		t.Fatalf("Reasons() has %d entries, want %d", len(rs), len(want))
	}
	for i, r := range rs {
		if r.String() != want[i] {
			t.Errorf("Reason(%d).String() = %q, want %q", i, r, want[i])
		}
	}
	if s := Reason(250).String(); !strings.Contains(s, "250") {
		t.Errorf("out-of-range reason renders %q", s)
	}
}

func TestCountersSingleRun(t *testing.T) {
	var c Counters
	c.Begin("M", "t", 1, 0)
	// Issue at 0, RAW-stall cycles 1-5, issue at 6; run ends at 12.
	c.Issue(0, 1)
	c.Stall(1, ReasonRAW, 5)
	c.Issue(6, 1)
	c.Writeback(6, isa.FloatAdd, 6)
	c.Writeback(12, isa.FloatAdd, 6)
	c.End(12)

	if c.Issued != 2 || c.Cycles != 12 || c.Slots != 12 {
		t.Fatalf("totals: issued %d cycles %d slots %d, want 2/12/12", c.Issued, c.Cycles, c.Slots)
	}
	if c.Stalls[ReasonRAW] != 5 {
		t.Errorf("RAW stalls = %d, want 5", c.Stalls[ReasonRAW])
	}
	if c.Stalls[ReasonDrain] != 5 {
		t.Errorf("drain = %d, want 5 (12 slots - 2 issued - 5 RAW)", c.Stalls[ReasonDrain])
	}
	if c.FU[isa.FloatAdd].Ops != 2 || c.FU[isa.FloatAdd].Busy != 12 {
		t.Errorf("FU stat = %+v, want 2 ops / 12 busy", c.FU[isa.FloatAdd])
	}
	if err := c.Check(); err != nil {
		t.Errorf("Check() = %v", err)
	}
	if s := c.String(); !strings.Contains(s, "raw 5") || !strings.Contains(s, "drain 5") {
		t.Errorf("String() = %q, missing breakdown", s)
	}
}

func TestCountersAccumulatesAcrossRuns(t *testing.T) {
	var c Counters
	for run := 0; run < 3; run++ {
		c.Begin("M", "t", 2, 8)
		c.Issue(0, 2)
		c.Stall(1, ReasonBranch, 4)
		c.Occupancy(3, 2)
		c.End(4) // 8 slots/run: 2 issued + 4 branch + 2 drain
	}
	if c.Runs != 3 || c.Slots != 24 || c.Issued != 6 {
		t.Fatalf("runs %d slots %d issued %d, want 3/24/6", c.Runs, c.Slots, c.Issued)
	}
	if c.Stalls[ReasonBranch] != 12 || c.Stalls[ReasonDrain] != 6 {
		t.Errorf("branch %d drain %d, want 12/6", c.Stalls[ReasonBranch], c.Stalls[ReasonDrain])
	}
	if len(c.OccupancyHist) != 4 || c.OccupancyHist[3] != 6 {
		t.Errorf("occupancy histogram = %v, want level 3 -> 6", c.OccupancyHist)
	}
	if c.Capacity != 8 {
		t.Errorf("capacity = %d, want 8", c.Capacity)
	}
	if err := c.Check(); err != nil {
		t.Errorf("Check() = %v", err)
	}
}

func TestCheckCatchesOverAttribution(t *testing.T) {
	var c Counters
	c.Begin("M", "t", 1, 0)
	c.Issue(0, 1)
	c.Stall(1, ReasonWAW, 10) // more slots than the run has
	c.End(5)                  // derived drain goes negative
	if err := c.Check(); err == nil {
		t.Fatal("Check() accepted an over-attributed run")
	}
}

func TestBranchResolveCounts(t *testing.T) {
	var c Counters
	c.Begin("M", "t", 1, 0)
	c.BranchResolve(5)
	c.BranchResolve(9)
	c.End(10)
	if c.Branches != 2 {
		t.Errorf("branches = %d, want 2", c.Branches)
	}
}

// TestAccountWidthOne mirrors a single-issue machine: the gap before
// each issue carries the issuing instruction's binding reason.
func TestAccountWidthOne(t *testing.T) {
	var c Counters
	c.Begin("M", "t", 1, 0)
	a := NewAccount(&c, 1)
	a.Issue(0, ReasonRAW)   // no gap
	a.Issue(6, ReasonRAW)   // cycles 1-5 blamed RAW
	a.Advance(11, ReasonBranch) // cycles 7-10 blamed Branch (4 slots)
	a.Issue(13, ReasonStructFU) // cycles 11-12 blamed StructFU
	c.End(14)

	if c.Issued != 3 {
		t.Fatalf("issued %d, want 3", c.Issued)
	}
	wantStalls := map[Reason]int64{ReasonRAW: 5, ReasonBranch: 4, ReasonStructFU: 2, ReasonDrain: 0}
	for r, want := range wantStalls {
		if c.Stalls[r] != want {
			t.Errorf("%s stalls = %d, want %d", r, c.Stalls[r], want)
		}
	}
	if err := c.Check(); err != nil {
		t.Errorf("Check() = %v", err)
	}
}

// TestAccountMultiIssue mirrors a width-2 buffer machine: same-cycle
// issues share the cycle's slots; partial cycles blame the remainder.
func TestAccountMultiIssue(t *testing.T) {
	var c Counters
	c.Begin("M", "t", 2, 0)
	a := NewAccount(&c, 2)
	a.Issue(0, ReasonRAW)        // slot 1 of cycle 0
	a.Issue(0, ReasonRAW)        // slot 2 of cycle 0: full
	a.Issue(3, ReasonResultBus)  // cycles 1-2 idle (4 slots) + nothing extra
	a.Advance(4, ReasonIssueWidth) // rest of cycle 3 (1 slot) refill-blamed
	c.End(4)

	if c.Issued != 3 || c.Slots != 8 {
		t.Fatalf("issued %d slots %d, want 3/8", c.Issued, c.Slots)
	}
	if c.Stalls[ReasonResultBus] != 4 {
		t.Errorf("result-bus stalls = %d, want 4", c.Stalls[ReasonResultBus])
	}
	if c.Stalls[ReasonIssueWidth] != 1 {
		t.Errorf("issue-width stalls = %d, want 1", c.Stalls[ReasonIssueWidth])
	}
	if c.Stalls[ReasonDrain] != 0 {
		t.Errorf("drain = %d, want 0", c.Stalls[ReasonDrain])
	}
	if err := c.Check(); err != nil {
		t.Errorf("Check() = %v", err)
	}
}

func TestAccountAdvanceBackwardsIsNoop(t *testing.T) {
	var c Counters
	c.Begin("M", "t", 1, 0)
	a := NewAccount(&c, 1)
	a.Issue(5, ReasonRAW)
	a.Advance(5, ReasonBranch)
	a.Advance(2, ReasonBranch)
	c.End(6)
	if c.Stalls[ReasonBranch] != 0 {
		t.Errorf("backward advance attributed %d branch slots", c.Stalls[ReasonBranch])
	}
	if err := c.Check(); err != nil {
		t.Errorf("Check() = %v", err)
	}
}
