package probe

// Account converts an issue-time stream into slot accounting for
// machines that compute issue cycles directly instead of stepping
// cycle by cycle (the single-issue models, the in-order multi-issue
// model, the vector machine).
//
// The arithmetic: with width W, the cycles between two consecutive
// issue events e_prev and e hold (e - e_prev) * W slots minus the
// issues already recorded at e_prev. An in-order issue stage blames
// all of them on the oldest unissued instruction — the one issuing at
// e — so the whole gap carries that instruction's binding stall
// reason. Advance does the same for gaps the machine creates without
// an issue (a branch shadow, a buffer refill), and anything after the
// final event is left for Counters to derive as drain.
type Account struct {
	p     Probe
	width int64
	cur   int64 // cycle currently receiving issues
	n     int64 // issues recorded at cur
}

// NewAccount builds an accountant reporting to p (which must be
// non-nil; machines skip accounting entirely when unprobed) for a
// machine with the given issue width.
func NewAccount(p Probe, width int) *Account {
	return &Account{p: p, width: int64(width)}
}

// Issue records one instruction issuing at cycle e >= the previous
// event, blaming the idle slots since then on r — the binding reason
// the machine computed for this instruction's wait. Instructions
// issuing in the same cycle (multi-issue stations) pass the same e.
func (a *Account) Issue(e int64, r Reason) {
	if e > a.cur {
		if slots := (e-a.cur)*a.width - a.n; slots > 0 {
			a.p.Stall(a.cur, r, slots)
		}
		a.cur, a.n = e, 0
	}
	a.p.Issue(e, 1)
	a.n++
}

// Advance moves the issue stage to cycle `to` without an issue,
// blaming the skipped slots on r: the remaining slots of the current
// cycle plus every slot of the cycles strictly before `to`. Machines
// call it for branch shadows and end-of-buffer refills. A `to` at or
// before the current cycle is a no-op.
func (a *Account) Advance(to int64, r Reason) {
	if to <= a.cur {
		return
	}
	if slots := (to-a.cur)*a.width - a.n; slots > 0 {
		a.p.Stall(a.cur, r, slots)
	}
	a.cur, a.n = to, 0
}
