// Package probe is the cycle-level observability layer of the machine
// models: a set of per-cycle callbacks through which a timing model
// reports what its issue stage did — issued instructions, slots lost
// to a named stall reason, results written back, branches resolved,
// buffer occupancy — without perturbing the simulation itself.
//
// The paper's argument rests on *why* issue rates saturate: WAW
// serialization caps the §4 Serial bounds (Table 2), the 1-Bus
// interconnect drags Table 4 below Table 3, and finite instruction
// buffers shape Tables 5-8. The final harmonic-mean rates alone show
// none of that. A Probe attached to a machine makes the limiting
// resource visible: every issue slot of every cycle is either an
// issue or a stall attributed to one Reason, so the counts decompose
// a run's cycles into exactly the causes the paper discusses — and
// provide the per-resource occupancies a queuing-model treatment of
// functional-unit and issue-queue sizing needs as input.
//
// Zero-overhead contract: a machine holds a nil Probe by default and
// guards every callback behind a nil check, so the unprobed hot path
// costs one predictable branch per event and the timing math is
// untouched either way. Attaching a probe never changes simulated
// cycle counts; it only observes them.
package probe

import (
	"fmt"

	"mfup/internal/isa"
)

// Reason names why an issue slot went unused for one cycle. The
// taxonomy follows the paper's own explanations of its tables.
type Reason uint8

// Stall reasons.
const (
	// ReasonRAW: a true dependence — a source register (or the memory
	// word a load needs, in machines without store-to-load forwarding)
	// is still being produced.
	ReasonRAW Reason = iota

	// ReasonWAW: an output dependence — the destination register is
	// reserved by an earlier writer (includes the vector machine's
	// anti-dependence wait on in-flight readers, which the same
	// register-instance bookkeeping serializes).
	ReasonWAW

	// ReasonStructFU: the needed functional unit cannot accept a new
	// operation (non-segmented unit busy, vector reservation, or the
	// Simple machine's exclusive execution stage).
	ReasonStructFU

	// ReasonResultBus: the result-bus slot the instruction's result
	// would need is already reserved (§5's interconnect conflicts).
	ReasonResultBus

	// ReasonMemBank: the interleaved-memory bank holding the address
	// is busy (the banked-memory extension; never occurs with the
	// paper's ideal interleaved memory).
	ReasonMemBank

	// ReasonBranch: control dependence — a branch holds the issue
	// stage while it waits for its condition and resolves (the paper
	// models no prediction).
	ReasonBranch

	// ReasonBufferFull: an instruction buffer with no free slot — RUU
	// entries, a reservation-station pool — blocks in-order issue.
	ReasonBufferFull

	// ReasonIssueWidth: slots idle because the fetch/issue machinery
	// has nothing to offer them: an instruction buffer that refills
	// only when empty, or one cut short at a taken branch.
	ReasonIssueWidth

	// ReasonDrain: slots after the last instruction has issued, while
	// in-flight results drain. Counters derives this remainder itself;
	// machines never report it.
	ReasonDrain

	// NumReasons is the size of a per-reason array.
	NumReasons = int(ReasonDrain) + 1
)

// String names the reason as the metrics outputs spell it.
func (r Reason) String() string {
	switch r {
	case ReasonRAW:
		return "raw"
	case ReasonWAW:
		return "waw"
	case ReasonStructFU:
		return "structural-fu"
	case ReasonResultBus:
		return "result-bus"
	case ReasonMemBank:
		return "memory-bank"
	case ReasonBranch:
		return "branch"
	case ReasonBufferFull:
		return "buffer-full"
	case ReasonIssueWidth:
		return "issue-width"
	case ReasonDrain:
		return "drain"
	}
	return fmt.Sprintf("Reason(%d)", uint8(r))
}

// Reasons returns every reason in declaration order.
func Reasons() []Reason {
	rs := make([]Reason, NumReasons)
	for i := range rs {
		rs[i] = Reason(i)
	}
	return rs
}

// Probe observes one machine's issue stage. All callbacks are invoked
// from the goroutine running the simulation, in nondecreasing cycle
// order per run; implementations need no locking as long as one probe
// is attached to one machine at a time (the same contract machines
// themselves carry).
//
// The accounting model: a run of C cycles on a machine with W issue
// slots per cycle has C*W slots. Every slot is an Issue, a Stall with
// a Reason, or part of the post-issue drain. Machines report issues
// and stalls; the drain is the remainder.
type Probe interface {
	// Begin starts a run: the machine's name, the trace, the issue
	// width W (slots per cycle), and the in-flight buffer capacity
	// that Occupancy levels refer to (0 for machines with no buffer).
	Begin(machine, trace string, width, capacity int)

	// Issue reports n instructions issuing at the given cycle.
	Issue(cycle int64, n int64)

	// Stall reports slots issue slots lost to reason r, the first of
	// them at the given cycle.
	Stall(cycle int64, r Reason, slots int64)

	// Writeback reports a result (or a store's memory update)
	// completing at the given cycle on unit u, which the operation
	// kept busy for busy cycles.
	Writeback(cycle int64, u isa.Unit, busy int64)

	// BranchResolve reports a branch resolving at the given cycle.
	BranchResolve(cycle int64)

	// Occupancy reports the machine spending cycles cycles with level
	// instructions in its in-flight buffer.
	Occupancy(level int, cycles int64)

	// End finishes the run after cycles total simulated cycles.
	End(cycles int64)
}
