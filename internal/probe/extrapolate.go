package probe

// Steady-state extrapolation support. The extrapolation engine
// (internal/core) never lets a machine drive the attached Counters
// through a skipped region — nothing is simulated there. Instead it
// measures two short reference runs one steady-state period apart and
// folds their difference, scaled by the number of skipped periods,
// into the user's Counters. Every Counters total is additive across
// cycles (issued instructions, per-reason stall slots, per-unit work,
// occupancy cycles), so the linear combination below preserves the
// Check slot-ledger invariant exactly: if ref and next each satisfy
// Issued + sum(Stalls) == Slots, so does ref + times*(next-ref).

// AddExtrapolated folds an extrapolated run into c: the totals of a
// reference run ref plus times copies of the per-period difference
// (next - ref), counted as one completed run. ref and next must be
// single-run Counters observed on the same machine and trace, next
// exactly one steady-state period after ref; neither is modified.
func (c *Counters) AddExtrapolated(ref, next *Counters, times int64) {
	c.Machine = next.Machine
	c.Trace = next.Trace
	c.Runs++
	c.Width = next.Width
	if next.Capacity > c.Capacity {
		c.Capacity = next.Capacity
	}
	lerp := func(a, b int64) int64 { return a + times*(b-a) }
	c.Issued += lerp(ref.Issued, next.Issued)
	c.Cycles += lerp(ref.Cycles, next.Cycles)
	c.Slots += lerp(ref.Slots, next.Slots)
	c.Branches += lerp(ref.Branches, next.Branches)
	for r := range c.Stalls {
		c.Stalls[r] += lerp(ref.Stalls[r], next.Stalls[r])
	}
	for u := range c.FU {
		c.FU[u].Ops += lerp(ref.FU[u].Ops, next.FU[u].Ops)
		c.FU[u].Busy += lerp(ref.FU[u].Busy, next.FU[u].Busy)
	}
	n := len(ref.OccupancyHist)
	if len(next.OccupancyHist) > n {
		n = len(next.OccupancyHist)
	}
	if n > len(c.OccupancyHist) {
		grown := make([]int64, n)
		copy(grown, c.OccupancyHist)
		c.OccupancyHist = grown
	}
	for i := 0; i < n; i++ {
		c.OccupancyHist[i] += lerp(histAt(ref, i), histAt(next, i))
	}
}

// DeltaEqual reports whether two pairs of Counters have identical
// field-wise differences: (a1 - a0) == (b1 - b0). The extrapolation
// engine uses it to test that consecutive loop-length increments
// change every observable total by the same amount — the counter-side
// fingerprint of a machine in steady state.
func DeltaEqual(a0, a1, b0, b1 *Counters) bool {
	if a1.Issued-a0.Issued != b1.Issued-b0.Issued ||
		a1.Cycles-a0.Cycles != b1.Cycles-b0.Cycles ||
		a1.Slots-a0.Slots != b1.Slots-b0.Slots ||
		a1.Branches-a0.Branches != b1.Branches-b0.Branches {
		return false
	}
	if a0.Width != b0.Width || a1.Width != b1.Width {
		return false
	}
	for r := range a0.Stalls {
		if a1.Stalls[r]-a0.Stalls[r] != b1.Stalls[r]-b0.Stalls[r] {
			return false
		}
	}
	for u := range a0.FU {
		if a1.FU[u].Ops-a0.FU[u].Ops != b1.FU[u].Ops-b0.FU[u].Ops ||
			a1.FU[u].Busy-a0.FU[u].Busy != b1.FU[u].Busy-b0.FU[u].Busy {
			return false
		}
	}
	n := len(a0.OccupancyHist)
	for _, c := range []*Counters{a1, b0, b1} {
		if len(c.OccupancyHist) > n {
			n = len(c.OccupancyHist)
		}
	}
	for i := 0; i < n; i++ {
		if histAt(a1, i)-histAt(a0, i) != histAt(b1, i)-histAt(b0, i) {
			return false
		}
	}
	return true
}

// histAt reads an occupancy-histogram level, treating levels beyond
// the recorded range as zero (histograms grow only as levels occur).
func histAt(c *Counters, level int) int64 {
	if level < len(c.OccupancyHist) {
		return c.OccupancyHist[level]
	}
	return 0
}
