package events

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"mfup/internal/isa"
)

// Track layout inside one run's process: fixed thread ids so the
// Perfetto UI groups events the same way for every machine.
const (
	tidIssue     = 1 // issue-stage slices
	tidBuffer    = 2 // fetch / alloc / commit instants
	tidBranch    = 3 // branch-resolution instants
	tidUnitBase  = 10
	tidBusBase   = tidUnitBase + int64(isa.NumUnits)
	chromeBusCap = 64 // result-bus tracks clamp here; Slot is int16
)

// chromeEvent is one Chrome trace-event object. Field order is the
// struct order, so the output is deterministic and golden-testable.
type chromeEvent struct {
	Name  string          `json:"name"`
	Phase string          `json:"ph"`
	TS    int64           `json:"ts"`
	Dur   int64           `json:"dur,omitempty"`
	PID   int64           `json:"pid"`
	TID   int64           `json:"tid"`
	Scope string          `json:"s,omitempty"`    // instants: thread scope
	Args  json.RawMessage `json:"args,omitempty"` // metadata payload
}

// chromeTrack maps an event to its thread id within the run.
func chromeTrack(ev Event) int64 {
	switch ev.Kind {
	case Issue:
		return tidIssue
	case Fetch, Alloc, Commit:
		return tidBuffer
	case BranchResolve:
		return tidBranch
	case Exec, Writeback:
		return tidUnitBase + int64(ev.Unit)
	case ResultBus:
		slot := int64(ev.Slot)
		if slot < 0 {
			slot = 0
		}
		if slot >= chromeBusCap {
			slot = chromeBusCap - 1
		}
		return tidBusBase + slot
	}
	return tidBuffer
}

// chromeTrackName names a thread id for the track-name metadata.
func chromeTrackName(tid int64) string {
	switch {
	case tid == tidIssue:
		return "issue"
	case tid == tidBuffer:
		return "buffer"
	case tid == tidBranch:
		return "branch"
	case tid >= tidUnitBase && tid < tidBusBase:
		return "FU " + isa.Unit(tid-tidUnitBase).String()
	default:
		return fmt.Sprintf("result bus %d", tid-tidBusBase)
	}
}

// chromeName labels one event slice/instant.
func chromeName(ev Event) string {
	switch ev.Kind {
	case Exec:
		return fmt.Sprintf("#%d %s", ev.Seq, ev.Unit)
	case ResultBus, Issue:
		return fmt.Sprintf("#%d", ev.Seq)
	default:
		return fmt.Sprintf("#%d %s", ev.Seq, ev.Kind)
	}
}

// runEvents converts one run (process pid) to Chrome events: metadata
// naming the process and each used track, then the recorded events in
// order. Exec and the one-cycle issue/bus reservations become
// complete ("X") slices; the rest become thread-scoped instants.
func runEvents(pid int64, run *Run) []chromeEvent {
	out := make([]chromeEvent, 0, len(run.Events)+8)

	name, _ := json.Marshal(struct {
		Name string `json:"name"`
	}{fmt.Sprintf("%s on %s", run.Machine, run.Trace)})
	out = append(out, chromeEvent{
		Name: "process_name", Phase: "M", PID: pid, Args: name,
	})

	used := map[int64]bool{}
	for i := range run.Events {
		used[chromeTrack(run.Events[i])] = true
	}
	tids := make([]int64, 0, len(used))
	for tid := range used {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(a, b int) bool { return tids[a] < tids[b] })
	for _, tid := range tids {
		tname, _ := json.Marshal(struct {
			Name string `json:"name"`
		}{chromeTrackName(tid)})
		out = append(out, chromeEvent{
			Name: "thread_name", Phase: "M", PID: pid, TID: tid, Args: tname,
		})
	}

	for i := range run.Events {
		ev := &run.Events[i]
		ce := chromeEvent{
			Name: chromeName(*ev),
			TS:   ev.Cycle,
			PID:  pid,
			TID:  chromeTrack(*ev),
		}
		switch ev.Kind {
		case Exec:
			ce.Phase = "X"
			ce.Dur = ev.Dur
			if ce.Dur < 1 {
				ce.Dur = 1
			}
		case Issue, ResultBus:
			ce.Phase = "X"
			ce.Dur = 1
		default:
			ce.Phase = "i"
			ce.Scope = "t"
		}
		out = append(out, ce)
	}
	return out
}

// WriteChrome writes every recorded run as Chrome trace-event JSON —
// the format ui.perfetto.dev and chrome://tracing load directly. Each
// run becomes one process with a track per functional unit, plus
// issue, buffer, branch, and result-bus tracks; the time unit is one
// cycle per microsecond, so cycle numbers read directly off the
// Perfetto ruler. One event per line keeps the output diffable.
func WriteChrome(w io.Writer, r *Recorder) error {
	if _, err := io.WriteString(w, "{\"traceEvents\": [\n"); err != nil {
		return err
	}
	first := true
	runs := r.Runs()
	for i := range runs {
		for _, ce := range runEvents(int64(i+1), &runs[i]) {
			b, err := json.Marshal(ce)
			if err != nil {
				return err
			}
			sep := ",\n"
			if first {
				sep = ""
				first = false
			}
			if _, err := fmt.Fprintf(w, "%s%s", sep, b); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "\n], \"displayTimeUnit\": \"ms\"}\n")
	return err
}
