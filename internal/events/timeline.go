package events

import (
	"fmt"
	"strings"
)

// TimelineOptions bounds the text rendering: a window of instructions
// (by first-event order) and a maximum cycle width, so a long trace
// renders a readable excerpt instead of a wall of text.
type TimelineOptions struct {
	First     int // skip this many instructions; default 0
	Count     int // instructions shown; <= 0 selects 24
	MaxCycles int // cycle columns shown; <= 0 selects 120
}

// timeline glyphs, one per event kind, in paint order: the Exec span
// is laid down first and the point events overwrite it, so an issue
// or writeback landing on a busy cycle stays visible.
var timelineGlyph = [NumKinds]byte{
	Fetch:         'f',
	Alloc:         'a',
	Issue:         'I',
	Exec:          '=',
	ResultBus:     'R',
	Writeback:     'W',
	BranchResolve: 'B',
	Commit:        'C',
}

// timelineRow is one instruction's lane under construction.
type timelineRow struct {
	seq    int64
	label  string
	events []Event
}

// Timeline renders one run as a plain-text Gantt chart: one row per
// instruction in the window, one column per cycle, glyphs marking the
// lifecycle (f fetch, a alloc, I issue, = executing, R result bus,
// W writeback, B branch resolve, C commit). It is the terminal
// counterpart of WriteChrome for a quick look without Perfetto.
func Timeline(run *Run, opt TimelineOptions) string {
	if opt.Count <= 0 {
		opt.Count = 24
	}
	if opt.MaxCycles <= 0 {
		opt.MaxCycles = 120
	}

	// Group events by instruction, in order of first appearance —
	// issue order, which for every machine here is program order.
	index := map[int64]int{}
	var rows []*timelineRow
	for _, ev := range run.Events {
		i, ok := index[ev.Seq]
		if !ok {
			i = len(rows)
			index[ev.Seq] = i
			rows = append(rows, &timelineRow{seq: ev.Seq})
		}
		r := rows[i]
		r.events = append(r.events, ev)
		if r.label == "" && (ev.Kind == Exec || ev.Kind == Writeback) {
			r.label = ev.Unit.String()
		}
	}
	total := len(rows)
	if opt.First < 0 {
		opt.First = 0
	}
	if opt.First > total {
		opt.First = total
	}
	end := opt.First + opt.Count
	if end > total {
		end = total
	}
	rows = rows[opt.First:end]

	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s: %d cycles, %d instructions traced",
		run.Machine, run.Trace, run.Cycles, total)
	if run.Dropped > 0 {
		fmt.Fprintf(&b, " (%d events dropped at the cap)", run.Dropped)
	}
	b.WriteByte('\n')
	if len(rows) == 0 {
		b.WriteString("(no events in the selected window)\n")
		return b.String()
	}

	// The cycle range of the window, clipped to MaxCycles columns.
	lo, hi := rows[0].events[0].Cycle, int64(0)
	for _, r := range rows {
		for _, ev := range r.events {
			if ev.Cycle < lo {
				lo = ev.Cycle
			}
			last := ev.Cycle + ev.Dur
			if ev.Kind != Exec {
				last = ev.Cycle
			}
			if last > hi {
				hi = last
			}
		}
	}
	width := int(hi-lo) + 1
	clipped := false
	if width > opt.MaxCycles {
		width = opt.MaxCycles
		clipped = true
	}

	labelW := len("instruction")
	for _, r := range rows {
		l := len(fmt.Sprintf("#%d %s", r.seq, r.label))
		if l > labelW {
			labelW = l
		}
	}

	// Ruler: absolute cycle numbers every 10 columns.
	fmt.Fprintf(&b, "%-*s ", labelW, "cycle")
	ruler := make([]byte, width)
	for i := range ruler {
		switch {
		case (int64(i)+lo)%10 == 0:
			ruler[i] = '|'
		case (int64(i)+lo)%5 == 0:
			ruler[i] = ':'
		default:
			ruler[i] = '.'
		}
	}
	b.Write(ruler)
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-*s ", labelW, "")
	marks := make([]byte, width)
	for i := range marks {
		marks[i] = ' '
	}
	for i := 0; i < width; i++ {
		if c := int64(i) + lo; c%10 == 0 {
			s := fmt.Sprintf("%d", c)
			if i+len(s) <= width {
				copy(marks[i:], s)
			}
		}
	}
	b.Write(marks)
	b.WriteByte('\n')

	for _, r := range rows {
		lane := make([]byte, width)
		for i := range lane {
			lane[i] = ' '
		}
		paint := func(c int64, g byte) {
			if i := c - lo; i >= 0 && i < int64(width) {
				lane[i] = g
			}
		}
		for _, ev := range r.events { // spans first
			if ev.Kind == Exec {
				for c := ev.Cycle; c <= ev.Cycle+ev.Dur; c++ {
					paint(c, timelineGlyph[Exec])
				}
			}
		}
		for _, ev := range r.events { // then the point events on top
			if ev.Kind != Exec {
				paint(ev.Cycle, timelineGlyph[ev.Kind])
			} else {
				paint(ev.Cycle, timelineGlyph[Exec])
			}
		}
		fmt.Fprintf(&b, "%-*s ", labelW, fmt.Sprintf("#%d %s", r.seq, r.label))
		b.Write(lane)
		b.WriteByte('\n')
	}
	if clipped {
		fmt.Fprintf(&b, "(clipped to %d of %d cycles; raise -timeline-window or read the Perfetto export)\n",
			width, hi-lo+1)
	}
	if end < total || opt.First > 0 {
		fmt.Fprintf(&b, "(instructions %d-%d of %d)\n", opt.First, end-1, total)
	}
	b.WriteString("legend: f fetch  a alloc  I issue  = executing  R result bus  W writeback  B branch resolve  C commit\n")
	return b.String()
}
