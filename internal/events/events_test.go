package events

import (
	"encoding/json"
	"strings"
	"testing"

	"mfup/internal/isa"
)

func TestRecorderCapDropsAndCounts(t *testing.T) {
	r := NewRecorder(3)
	r.Begin("m", "t", 1)
	for i := int64(0); i < 10; i++ {
		r.RecordIssue(i, i)
	}
	r.End(10)
	runs := r.Runs()
	if len(runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(runs))
	}
	if len(runs[0].Events) != 3 || runs[0].Dropped != 7 {
		t.Fatalf("kept %d dropped %d, want 3/7", len(runs[0].Events), runs[0].Dropped)
	}
	if r.Events() != 3 || r.Dropped() != 7 {
		t.Fatalf("totals %d/%d, want 3/7", r.Events(), r.Dropped())
	}
	if runs[0].Cycles != 10 {
		t.Fatalf("cycles %d, want 10", runs[0].Cycles)
	}
}

func TestRecorderCapIsPerRun(t *testing.T) {
	r := NewRecorder(2)
	for run := 0; run < 3; run++ {
		r.Begin("m", "t", 1)
		for i := int64(0); i < 5; i++ {
			r.RecordIssue(i, i)
		}
		r.End(5)
	}
	if r.Events() != 6 || r.Dropped() != 9 {
		t.Fatalf("totals %d/%d, want 6 kept and 9 dropped over 3 runs", r.Events(), r.Dropped())
	}
}

func TestRecorderDefaultCap(t *testing.T) {
	for _, n := range []int{0, -5} {
		if r := NewRecorder(n); r.perRun != DefaultCap {
			t.Errorf("NewRecorder(%d).perRun = %d, want DefaultCap %d", n, r.perRun, DefaultCap)
		}
	}
}

func TestRecorderAnonymousRun(t *testing.T) {
	r := NewRecorder(0)
	r.RecordIssue(7, 3) // no Begin: must open an anonymous run, not vanish
	runs := r.Runs()
	if len(runs) != 1 || len(runs[0].Events) != 1 {
		t.Fatalf("anonymous run not recorded: %+v", runs)
	}
	if runs[0].Machine != "?" || runs[0].Trace != "?" {
		t.Fatalf("anonymous run labeled %q/%q, want ?/?", runs[0].Machine, runs[0].Trace)
	}
}

func TestRecorderReset(t *testing.T) {
	r := NewRecorder(0)
	r.Begin("m", "t", 1)
	r.RecordIssue(0, 0)
	r.End(1)
	r.Reset()
	if len(r.Runs()) != 0 || r.Events() != 0 || r.Dropped() != 0 {
		t.Fatal("Reset left state behind")
	}
	r.Begin("m", "t", 1)
	r.RecordIssue(0, 0)
	r.End(1)
	if r.Events() != 1 {
		t.Fatal("recorder unusable after Reset")
	}
}

func TestRecordExecClampsNegativeBusy(t *testing.T) {
	r := NewRecorder(0)
	r.Begin("m", "t", 1)
	r.RecordExec(0, 5, isa.FloatAdd, -3)
	if d := r.Runs()[0].Events[0].Dur; d != 0 {
		t.Fatalf("negative busy recorded as %d, want 0", d)
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); int(k) < NumKinds; k++ {
		if s := k.String(); s == "" || strings.Contains(s, "?") {
			t.Errorf("Kind(%d).String() = %q", k, s)
		}
	}
	if Kind(200).String() != "Kind(?)" {
		t.Error("out-of-range kind not flagged")
	}
}

// chromeDoc mirrors the trace-event JSON envelope for decoding.
type chromeDoc struct {
	TraceEvents []struct {
		Name  string          `json:"name"`
		Phase string          `json:"ph"`
		TS    *int64          `json:"ts"`
		Dur   int64           `json:"dur"`
		PID   int64           `json:"pid"`
		TID   int64           `json:"tid"`
		Scope string          `json:"s"`
		Args  json.RawMessage `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestWriteChromeStructure(t *testing.T) {
	r := NewRecorder(0)
	r.Begin("CRAY-like", "lfk01", 1)
	r.RecordIssue(0, 0)
	r.RecordExec(0, 0, isa.FloatAdd, 6)
	r.RecordResultBus(0, 6, 2)
	r.RecordWriteback(0, 6, isa.FloatAdd)
	r.RecordBranchResolve(1, 9)
	r.End(10)
	r.Begin("CRAY-like", "lfk02", 1)
	r.RecordFetch(0, 0, 1)
	r.End(4)

	var b strings.Builder
	if err := WriteChrome(&b, r); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, b.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q, want ms", doc.DisplayTimeUnit)
	}

	pids := map[int64]bool{}
	var processNames, threadNames, slices, instants int
	for _, ev := range doc.TraceEvents {
		pids[ev.PID] = true
		switch ev.Phase {
		case "M":
			if ev.Name == "process_name" {
				processNames++
			} else if ev.Name == "thread_name" {
				threadNames++
			} else {
				t.Errorf("unknown metadata record %q", ev.Name)
			}
			if len(ev.Args) == 0 {
				t.Errorf("metadata %q has no args", ev.Name)
			}
		case "X":
			slices++
			if ev.TS == nil || ev.Dur < 1 {
				t.Errorf("slice %q missing ts or zero dur", ev.Name)
			}
		case "i":
			instants++
			if ev.Scope != "t" {
				t.Errorf("instant %q scope %q, want t", ev.Name, ev.Scope)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Phase)
		}
	}
	if len(pids) != 2 || processNames != 2 {
		t.Errorf("got %d pids / %d process_name records, want 2/2 (one per run)", len(pids), processNames)
	}
	// Run 1: issue+exec+bus are slices; writeback+branch are instants.
	if slices != 3 || instants != 3 {
		t.Errorf("got %d slices / %d instants, want 3/3", slices, instants)
	}
	if threadNames == 0 {
		t.Error("no thread_name metadata emitted")
	}
}

func TestChromeTrackLayout(t *testing.T) {
	cases := []struct {
		ev   Event
		want int64
	}{
		{Event{Kind: Issue}, tidIssue},
		{Event{Kind: Fetch}, tidBuffer},
		{Event{Kind: Alloc}, tidBuffer},
		{Event{Kind: Commit}, tidBuffer},
		{Event{Kind: BranchResolve}, tidBranch},
		{Event{Kind: Exec, Unit: isa.FloatAdd}, tidUnitBase + int64(isa.FloatAdd)},
		{Event{Kind: Writeback, Unit: isa.Memory}, tidUnitBase + int64(isa.Memory)},
		{Event{Kind: ResultBus, Slot: 3}, tidBusBase + 3},
		{Event{Kind: ResultBus, Slot: -1}, tidBusBase},                     // clamped low
		{Event{Kind: ResultBus, Slot: 999}, tidBusBase + chromeBusCap - 1}, // clamped high
	}
	for _, c := range cases {
		if got := chromeTrack(c.ev); got != c.want {
			t.Errorf("chromeTrack(%+v) = %d, want %d", c.ev, got, c.want)
		}
	}
	// Every track must have a non-empty, distinct-enough name.
	seen := map[string]bool{}
	for _, tid := range []int64{tidIssue, tidBuffer, tidBranch, tidUnitBase, tidBusBase, tidBusBase + 1} {
		name := chromeTrackName(tid)
		if name == "" || seen[name] {
			t.Errorf("track %d name %q empty or duplicated", tid, name)
		}
		seen[name] = true
	}
}

func TestTimelineRendering(t *testing.T) {
	run := &Run{Machine: "CRAY-like", Trace: "micro", Cycles: 13}
	// #0: issue 0, exec 0..6, writeback 6. #1: issue 7, branch resolve 12.
	run.Events = []Event{
		{Seq: 0, Cycle: 0, Kind: Issue},
		{Seq: 0, Cycle: 0, Dur: 6, Kind: Exec, Unit: isa.FloatAdd},
		{Seq: 0, Cycle: 6, Kind: Writeback, Unit: isa.FloatAdd},
		{Seq: 1, Cycle: 7, Kind: Issue},
		{Seq: 1, Cycle: 12, Kind: BranchResolve},
	}
	out := Timeline(run, TimelineOptions{})
	for _, want := range []string{
		"CRAY-like on micro: 13 cycles, 2 instructions traced",
		"#0 FloatAdd",
		"#1",
		"legend:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	// Lane 0 paints the exec span and the writeback on top of its end.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "#0") {
			if !strings.Contains(line, "======W") {
				t.Errorf("lane #0 lacks exec span + writeback: %q", line)
			}
		}
		if strings.HasPrefix(line, "#1") {
			if !strings.Contains(line, "I") || !strings.Contains(line, "B") {
				t.Errorf("lane #1 lacks issue/branch glyphs: %q", line)
			}
		}
	}
}

func TestTimelineWindowAndClip(t *testing.T) {
	run := &Run{Machine: "m", Trace: "t", Cycles: 1000}
	for i := int64(0); i < 50; i++ {
		run.Events = append(run.Events,
			Event{Seq: i, Cycle: i * 10, Kind: Issue},
			Event{Seq: i, Cycle: i * 10, Dur: 5, Kind: Exec, Unit: isa.FloatAdd})
	}
	out := Timeline(run, TimelineOptions{First: 10, Count: 5, MaxCycles: 40})
	if !strings.Contains(out, "(instructions 10-14 of 50)") {
		t.Errorf("window note missing:\n%s", out)
	}
	if !strings.Contains(out, "(clipped to 40 of") {
		t.Errorf("clip note missing:\n%s", out)
	}
	if strings.Contains(out, "#9 ") || strings.Contains(out, "#15 ") {
		t.Errorf("instructions outside the window rendered:\n%s", out)
	}
	// Dropped-events note.
	run.Dropped = 3
	if out := Timeline(run, TimelineOptions{}); !strings.Contains(out, "(3 events dropped at the cap)") {
		t.Errorf("dropped note missing:\n%s", out)
	}
	// Empty window degrades gracefully.
	if out := Timeline(&Run{Machine: "m", Trace: "t"}, TimelineOptions{}); !strings.Contains(out, "no events") {
		t.Errorf("empty run not handled:\n%s", out)
	}
}
