// Package events records per-instruction pipeline lifecycle events
// from the machine models: when an instruction entered the
// instruction buffer, issued, occupied its functional unit, acquired
// a result bus, wrote back, resolved (branches), and — for the
// buffered machines — allocated and committed its buffer entry. Each
// event carries the instruction's dynamic sequence number
// (trace.Op.Seq) and a cycle timestamp, so a run becomes an
// inspectable timeline rather than a single cycle count.
//
// The Recorder is the sink the machines drive, one Begin/End bracket
// per simulated trace. It mirrors internal/probe's observation-only
// contract: recording never changes timing — simulated cycle counts
// are identical with and without a recorder — and the nil-recorder
// default costs only a predicted-not-taken branch per event site
// (BenchmarkTraceOverhead guards this next to BenchmarkProbeOverhead).
// Like a probe, a Recorder is driven from the running goroutine and
// must not be shared across concurrently running machines.
//
// Event storage is bounded: each run keeps at most a configured
// number of events and counts the overflow instead of growing without
// limit, so tracing a long M11BR5 sweep cannot exhaust memory. The
// renderers — WriteChrome (Perfetto/Chrome trace-event JSON) and
// Timeline (plain-text Gantt) — live in this package beside the data
// they render.
package events

import (
	"mfup/internal/isa"
)

// Kind classifies a lifecycle event.
type Kind uint8

// The event kinds, in rough pipeline order. Not every machine emits
// every kind: only the buffered machines (Tomasulo, RUU) allocate and
// commit entries, only the multiple-issue machines fetch into an
// instruction buffer distinct from the issue stage, and only machines
// with a modeled result-bus interconnect acquire bus slots.
const (
	Fetch         Kind = iota // instruction entered the fetch/instruction buffer
	Alloc                     // buffer entry allocated (reservation station, RUU slot)
	Issue                     // instruction left the issue stage
	Exec                      // functional-unit occupancy span (Cycle .. Cycle+Dur)
	ResultBus                 // result-bus slot acquired for the completion cycle
	Writeback                 // result written back (or store completed)
	BranchResolve             // branch outcome known; issue may resume
	Commit                    // buffer entry freed (in-order commit / station release)

	// NumKinds is the number of event kinds.
	NumKinds = int(Commit) + 1
)

var kindNames = [NumKinds]string{
	"fetch", "alloc", "issue", "exec", "result-bus", "writeback",
	"branch-resolve", "commit",
}

// String names the kind as the renderers do.
func (k Kind) String() string {
	if int(k) < NumKinds {
		return kindNames[k]
	}
	return "Kind(?)"
}

// Event is one recorded lifecycle point (or, for Exec, span) of one
// dynamic instruction.
type Event struct {
	Seq   int64 // trace.Op.Seq of the instruction; -1 for machine-level events
	Cycle int64 // cycle the event occurred (span start for Exec)
	Dur   int64 // Exec: busy cycles on the unit; 0 otherwise
	Kind  Kind
	Unit  isa.Unit // Exec/Writeback: the functional-unit class
	Slot  int16    // ResultBus: bus/bank index; Fetch/Issue: station; else 0
}

// Run is the event record of one simulated trace: everything between
// one Begin/End bracket.
type Run struct {
	Machine string
	Trace   string
	Width   int   // issue width (stations/issue units); 1 for single-issue
	Cycles  int64 // total cycle count reported at End

	// Events holds the recorded events in emission order — per
	// instruction that order follows the pipeline, but events of
	// different instructions interleave. At most the recorder's
	// per-run cap are kept; Dropped counts the rest.
	Events  []Event
	Dropped int64
}

// DefaultCap is the per-run event cap when the caller does not choose
// one. At 32 bytes an event, the worst-case run costs ~2 MiB.
const DefaultCap = 1 << 16

// Recorder accumulates event Runs. The zero value is not ready for
// use; construct with NewRecorder.
type Recorder struct {
	perRun int
	runs   []Run
	cur    *Run // run under construction; nil outside Begin/End
}

// NewRecorder returns a recorder keeping at most perRun events per
// Begin/End bracket; perRun <= 0 selects DefaultCap.
func NewRecorder(perRun int) *Recorder {
	if perRun <= 0 {
		perRun = DefaultCap
	}
	return &Recorder{perRun: perRun}
}

// Begin opens a new run. Machines call it once per simulated trace,
// before any event of that run.
func (r *Recorder) Begin(machine, trace string, width int) {
	r.runs = append(r.runs, Run{Machine: machine, Trace: trace, Width: width})
	r.cur = &r.runs[len(r.runs)-1]
}

// End closes the current run, recording its total cycle count.
func (r *Recorder) End(cycles int64) {
	if r.cur != nil {
		r.cur.Cycles = cycles
		r.cur = nil
	}
}

// Runs returns every recorded run, in Begin order. The slice aliases
// the recorder's storage; callers must not append to it while the
// recorder is still attached to a running machine.
func (r *Recorder) Runs() []Run { return r.runs }

// Events returns the total number of events kept across all runs.
func (r *Recorder) Events() int64 {
	var n int64
	for i := range r.runs {
		n += int64(len(r.runs[i].Events))
	}
	return n
}

// Dropped returns the total number of events discarded across all
// runs because the per-run cap was reached.
func (r *Recorder) Dropped() int64 {
	var n int64
	for i := range r.runs {
		n += r.runs[i].Dropped
	}
	return n
}

// Reset discards all recorded runs, keeping the cap.
func (r *Recorder) Reset() {
	r.runs = nil
	r.cur = nil
}

// add appends an event to the current run, honoring the per-run cap.
// An event emitted outside a Begin/End bracket (a machine driven
// without Begin — nothing in this repository does so) opens an
// anonymous run rather than being lost silently.
func (r *Recorder) add(ev Event) {
	if r.cur == nil {
		r.Begin("?", "?", 1)
	}
	if len(r.cur.Events) >= r.perRun {
		r.cur.Dropped++
		return
	}
	r.cur.Events = append(r.cur.Events, ev)
}

// RecordFetch records an instruction entering the instruction buffer
// at station slot.
func (r *Recorder) RecordFetch(seq, cycle int64, slot int) {
	r.add(Event{Seq: seq, Cycle: cycle, Kind: Fetch, Slot: int16(slot)})
}

// RecordAlloc records a buffer entry (reservation station, RUU slot)
// being allocated.
func (r *Recorder) RecordAlloc(seq, cycle int64) {
	r.add(Event{Seq: seq, Cycle: cycle, Kind: Alloc})
}

// RecordIssue records the instruction leaving the issue stage.
func (r *Recorder) RecordIssue(seq, cycle int64) {
	r.add(Event{Seq: seq, Cycle: cycle, Kind: Issue})
}

// RecordExec records the instruction occupying functional unit u for
// busy cycles starting at cycle.
func (r *Recorder) RecordExec(seq, cycle int64, u isa.Unit, busy int64) {
	if busy < 0 {
		busy = 0
	}
	r.add(Event{Seq: seq, Cycle: cycle, Dur: busy, Kind: Exec, Unit: u})
}

// RecordResultBus records the instruction acquiring result-bus slot
// (bank) for its completion cycle.
func (r *Recorder) RecordResultBus(seq, cycle int64, slot int) {
	r.add(Event{Seq: seq, Cycle: cycle, Kind: ResultBus, Slot: int16(slot)})
}

// RecordWriteback records the result of unit u being written back.
func (r *Recorder) RecordWriteback(seq, cycle int64, u isa.Unit) {
	r.add(Event{Seq: seq, Cycle: cycle, Kind: Writeback, Unit: u})
}

// RecordBranchResolve records a branch outcome becoming known.
func (r *Recorder) RecordBranchResolve(seq, cycle int64) {
	r.add(Event{Seq: seq, Cycle: cycle, Kind: BranchResolve})
}

// RecordCommit records the instruction's buffer entry being freed.
func (r *Recorder) RecordCommit(seq, cycle int64) {
	r.add(Event{Seq: seq, Cycle: cycle, Kind: Commit})
}
