package runner

import "fmt"

// OptionError reports one structurally invalid Options field. The
// sweep machinery historically papered over these — a negative
// Retries silently meant "no retries", a negative RetryBackoff
// silently became the default — which turned configuration bugs into
// quietly different behavior. Validate makes them loud instead.
type OptionError struct {
	Field  string // the Options field name
	Value  any    // the rejected value
	Reason string // why it is invalid
}

// Error renders the one-line diagnostic.
func (e *OptionError) Error() string {
	return fmt.Sprintf("runner: invalid Options.%s = %v: %s", e.Field, e.Value, e.Reason)
}

// Validate checks the Options for values that have no meaningful
// interpretation, returning a *OptionError for the first one found.
// Parallel <= 0 is NOT an error — "use all cores" is its documented
// meaning — and a nil Sleep with retries enabled simply uses the real
// clock.
func (o *Options) Validate() error {
	if o.Retries < 0 {
		return &OptionError{Field: "Retries", Value: o.Retries,
			Reason: "negative retry count (0 disables retrying)"}
	}
	if o.RetryBackoff < 0 {
		return &OptionError{Field: "RetryBackoff", Value: o.RetryBackoff,
			Reason: "negative backoff (0 means the default)"}
	}
	if o.RetryBackoff > 0 && o.Retries == 0 {
		return &OptionError{Field: "RetryBackoff", Value: o.RetryBackoff,
			Reason: "backoff without retries (set Retries, or drop the backoff)"}
	}
	if o.CellTimeout < 0 {
		return &OptionError{Field: "CellTimeout", Value: o.CellTimeout,
			Reason: "negative per-cell timeout (0 disables it)"}
	}
	if o.Sleep != nil && o.Retries == 0 {
		return &OptionError{Field: "Sleep", Value: "func",
			Reason: "injected retry clock with retries disabled: it could never tick, which almost certainly means Retries was forgotten"}
	}
	if o.Limits.MaxCycles < 0 {
		return &OptionError{Field: "Limits.MaxCycles", Value: o.Limits.MaxCycles,
			Reason: "negative cycle budget (0 disables it)"}
	}
	if o.Limits.StallCycles < 0 {
		return &OptionError{Field: "Limits.StallCycles", Value: o.Limits.StallCycles,
			Reason: "negative stall watchdog window (0 disables it)"}
	}
	return nil
}

// optionsError is the single CellError RunCheckedStats reports when
// the Options themselves are invalid: coordinates (-1, -1) mark a
// failure of the sweep configuration, not of any cell.
func optionsError(err error) *CellError {
	return &CellError{Task: -1, Trace: -1, Err: err}
}
