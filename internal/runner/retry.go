package runner

import (
	"context"
	"errors"
	"time"

	"mfup/internal/faultinject"
	"mfup/internal/simerr"
)

// Transient vs permanent classification, and the per-cell retry loop.
//
// The taxonomy mirrors what the failures mean, not how they surface:
//
//	transient — a re-run of the same cell may legitimately succeed:
//	  - KindDeadline: the cell ran out of wall clock. On a loaded
//	    machine the next attempt may fit (each attempt gets a fresh
//	    CellTimeout window).
//	  - KindInjected with Transient set: a deliberately flaky fault
//	    that heals after its Times window — the chaos tests' stand-in
//	    for any environmental blip.
//	  - An injected write failure marked transient.
//	permanent — re-running deterministically reproduces the failure:
//	  - KindCycleBudget and KindStall: the simulation itself diverges
//	    or livelocks; it will again.
//	  - KindBadTrace: the input is damaged; it stays damaged.
//	  - Panics: a model bug is not healed by repetition.
//	  - ErrSkipped / context.Canceled: the sweep is shutting down —
//	    retrying against a dead context only delays it.

// Transient reports whether err is worth retrying.
func Transient(err error) bool {
	if err == nil || errors.Is(err, ErrSkipped) || errors.Is(err, context.Canceled) {
		return false
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var se *simerr.SimError
	if errors.As(err, &se) {
		switch se.Kind {
		case simerr.KindDeadline:
			return true
		case simerr.KindInjected:
			return se.Transient
		}
		return false
	}
	var fe *faultinject.Error
	if errors.As(err, &fe) {
		return fe.Transient
	}
	return false
}

// maxBackoff caps the exponential growth of retry delays.
const maxBackoff = 30 * time.Second

// DefaultRetryBackoff is the base delay before the first retry when
// retries are enabled without an explicit backoff.
const DefaultRetryBackoff = 100 * time.Millisecond

// backoffDelay computes the delay before retry attempt number attempt
// (1-based: 1 precedes the first retry): the base doubled per attempt,
// capped, then jittered deterministically into [d/2, d) by hashing
// (seed, task, trace, attempt). Determinism matters more than true
// randomness here — a re-run with the same seed backs off identically,
// which the reproducibility contract of the whole suite demands.
func backoffDelay(base time.Duration, seed int64, task, trc, attempt int) time.Duration {
	if base <= 0 {
		base = DefaultRetryBackoff
	}
	d := base << (attempt - 1)
	if d > maxBackoff || d <= 0 { // <= 0: shift overflow
		d = maxBackoff
	}
	r := faultinject.Rand(uint64(seed), uint64(task), uint64(trc), uint64(attempt))
	half := uint64(d) / 2
	return time.Duration(half + r%(half+1))
}

// sleep waits for d or until ctx ends, through opts.Sleep when the
// caller injected a clock (tests replace real sleeps with a recorder).
func (o *Options) sleep(ctx context.Context, d time.Duration) {
	if o.Sleep != nil {
		o.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
