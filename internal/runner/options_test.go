package runner

import (
	"context"
	"errors"
	"testing"
	"time"

	"mfup/internal/core"
)

// Every structurally invalid Options value must be rejected with a
// *OptionError naming the offending field — never silently reinterpreted.
func TestOptionsValidateRejections(t *testing.T) {
	cases := []struct {
		name  string
		opts  Options
		field string
	}{
		{"negative retries", Options{Retries: -1}, "Retries"},
		{"negative backoff", Options{Retries: 2, RetryBackoff: -time.Second}, "RetryBackoff"},
		{"backoff without retries", Options{RetryBackoff: time.Second}, "RetryBackoff"},
		{"negative cell timeout", Options{CellTimeout: -time.Minute}, "CellTimeout"},
		{"sleep without retries", Options{Sleep: func(time.Duration) {}}, "Sleep"},
		{"negative cycle budget", Options{Limits: core.Limits{MaxCycles: -5}}, "Limits.MaxCycles"},
		{"negative stall window", Options{Limits: core.Limits{StallCycles: -5}}, "Limits.StallCycles"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate()
			if err == nil {
				t.Fatalf("Validate(%+v) = nil, want error", tc.opts)
			}
			var oe *OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("error %v (%T) is not a *OptionError", err, err)
			}
			if oe.Field != tc.field {
				t.Errorf("Field = %q, want %q", oe.Field, tc.field)
			}
			if oe.Error() == "" || oe.Reason == "" {
				t.Error("empty diagnostic")
			}
		})
	}
}

func TestOptionsValidateAccepts(t *testing.T) {
	for _, opts := range []Options{
		{},             // zero value: documented defaults
		{Parallel: -3}, // <= 0 means all cores, by contract
		{Retries: 3},   // nil Sleep = the real clock
		{Retries: 1, RetryBackoff: time.Millisecond, Sleep: func(time.Duration) {}},
		{CellTimeout: time.Second},
	} {
		if err := opts.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", opts, err)
		}
	}
}

// RunCheckedStats with invalid options must run nothing and report
// exactly one coordinates-(-1,-1) error that unwraps to the
// *OptionError.
func TestRunCheckedStatsRejectsInvalidOptions(t *testing.T) {
	task, _ := retryTestTask(t)
	ran := false
	task.New = func() core.Machine { ran = true; return nil }

	out, stats, errs := RunCheckedStats(context.Background(),
		Options{Retries: -2}, []Task{task})
	if ran {
		t.Error("a cell ran despite invalid options")
	}
	if len(errs) != 1 || errs[0].Task != -1 || errs[0].Trace != -1 {
		t.Fatalf("errs = %v, want one (-1,-1) options error", errs)
	}
	var oe *OptionError
	if !errors.As(errs[0], &oe) || oe.Field != "Retries" {
		t.Fatalf("error %v does not unwrap to the Retries OptionError", errs[0])
	}
	if len(out) != 1 || len(out[0]) != len(task.Traces) {
		t.Errorf("result shape broken: %d tasks, %d traces", len(out), len(out[0]))
	}
	if len(stats) != 1 || stats[0] != (TaskStat{}) {
		t.Errorf("stats = %+v, want zero", stats)
	}
}
