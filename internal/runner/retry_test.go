package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"mfup/internal/core"
	"mfup/internal/faultinject"
	"mfup/internal/loops"
	"mfup/internal/simerr"
	"mfup/internal/trace"
)

func TestTransientClassification(t *testing.T) {
	sim := func(k simerr.Kind, transient bool) error {
		return &simerr.SimError{Kind: k, Machine: "M", Trace: "t", Transient: transient}
	}
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"deadline", sim(simerr.KindDeadline, false), true},
		{"injected transient", sim(simerr.KindInjected, true), true},
		{"injected permanent", sim(simerr.KindInjected, false), false},
		{"cycle budget", sim(simerr.KindCycleBudget, false), false},
		{"stall", sim(simerr.KindStall, false), false},
		{"bad trace", sim(simerr.KindBadTrace, false), false},
		{"skipped", ErrSkipped, false},
		{"cancelled", context.Canceled, false},
		{"ctx deadline", context.DeadlineExceeded, true},
		{"write fault transient", &faultinject.Error{Site: "write.x", Transient: true}, true},
		{"write fault permanent", &faultinject.Error{Site: "write.x"}, false},
		{"panic", &panicError{value: "boom"}, false},
		{"panic wrapping deadline", &panicError{value: sim(simerr.KindDeadline, false)}, true},
		{"plain error", errors.New("mystery"), false},
		{"wrapped deadline", fmt.Errorf("cell: %w", sim(simerr.KindDeadline, false)), true},
	}
	for _, c := range cases {
		if got := Transient(c.err); got != c.want {
			t.Errorf("Transient(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestBackoffDelayShape(t *testing.T) {
	base := 100 * time.Millisecond
	for attempt := 1; attempt <= 6; attempt++ {
		nominal := base << (attempt - 1)
		d := backoffDelay(base, 1, 0, 0, attempt)
		if d < nominal/2 || d >= nominal {
			t.Errorf("attempt %d: delay %v outside [%v, %v)", attempt, d, nominal/2, nominal)
		}
	}
	// The cap holds even at absurd attempt counts (shift overflow).
	for _, attempt := range []int{10, 40, 63} {
		if d := backoffDelay(base, 1, 0, 0, attempt); d > maxBackoff {
			t.Errorf("attempt %d: delay %v exceeds the %v cap", attempt, d, maxBackoff)
		}
	}
	// Zero base falls back to the default.
	if d := backoffDelay(0, 1, 0, 0, 1); d < DefaultRetryBackoff/2 || d >= DefaultRetryBackoff {
		t.Errorf("zero base: delay %v outside the default window", d)
	}
}

func TestBackoffJitterDeterminism(t *testing.T) {
	a := backoffDelay(time.Second, 42, 3, 1, 2)
	if b := backoffDelay(time.Second, 42, 3, 1, 2); a != b {
		t.Errorf("same coordinates gave %v then %v", a, b)
	}
	// Different coordinates de-synchronize (the point of jitter).
	distinct := map[time.Duration]bool{a: true}
	distinct[backoffDelay(time.Second, 42, 4, 1, 2)] = true
	distinct[backoffDelay(time.Second, 42, 3, 2, 2)] = true
	distinct[backoffDelay(time.Second, 43, 3, 1, 2)] = true
	if len(distinct) < 3 {
		t.Errorf("jitter barely varies across cells: %v", distinct)
	}
}

// retryTestTask builds a single-trace task over kernel 1 on the
// simple machine.
func retryTestTask(t *testing.T) (Task, *trace.Trace) {
	t.Helper()
	k, err := loops.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	tr := k.SharedTrace()
	return Task{
		New: func() core.Machine {
			m, err := core.NewBasicChecked(core.Simple, core.Config{MemLatency: 11, BranchLatency: 5})
			if err != nil {
				t.Error(err)
			}
			return m
		},
		Traces: []*trace.Trace{tr},
	}, tr
}

// activateFaults installs a fault plan for the test and removes it on
// cleanup.
func activateFaults(t *testing.T, spec string) *faultinject.Injector {
	t.Helper()
	plan, err := faultinject.ParsePlan(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := faultinject.New(plan)
	faultinject.Activate(in)
	t.Cleanup(faultinject.Deactivate)
	return in
}

func TestRetryHealsTransientFault(t *testing.T) {
	// The fault fires on the first two runs of the cell and heals; with
	// two retries the cell must succeed, with the fake clock recording
	// the exact backoff schedule.
	activateFaults(t, "sim:err:times=2:transient")
	task, _ := retryTestTask(t)

	var slept []time.Duration
	opts := Options{
		Parallel: 1, Retries: 2, RetryBackoff: 100 * time.Millisecond, RetrySeed: 7,
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	}
	out, stats, errs := RunCheckedStats(context.Background(), opts, []Task{task})
	if len(errs) != 0 {
		t.Fatalf("errs = %v, want none (fault heals within the retry budget)", errs)
	}
	if out[0][0].Cycles <= 0 {
		t.Error("healed cell has no result")
	}
	if stats[0].Retries != 2 {
		t.Errorf("stats retries = %d, want 2", stats[0].Retries)
	}
	want := []time.Duration{
		backoffDelay(100*time.Millisecond, 7, 0, 0, 1),
		backoffDelay(100*time.Millisecond, 7, 0, 0, 2),
	}
	if len(slept) != 2 || slept[0] != want[0] || slept[1] != want[1] {
		t.Errorf("sleeps = %v, want %v", slept, want)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	// A fault that outlives the retry budget: the failure is reported
	// with its attempt count, and only Retries sleeps happened.
	activateFaults(t, "sim:err:times=10:transient")
	task, tr := retryTestTask(t)

	var slept int
	opts := Options{
		Parallel: 1, Retries: 2,
		Sleep: func(time.Duration) { slept++ },
	}
	out, stats, errs := RunCheckedStats(context.Background(), opts, []Task{task})
	if len(errs) != 1 {
		t.Fatalf("errs = %v, want exactly one", errs)
	}
	e := errs[0]
	if e.Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (1 run + 2 retries)", e.Attempts)
	}
	if !strings.Contains(e.Error(), "after 3 attempts") {
		t.Errorf("error %q does not report the attempts", e.Error())
	}
	if e.TraceName != tr.Name {
		t.Errorf("trace name = %q, want %q", e.TraceName, tr.Name)
	}
	var se *simerr.SimError
	if !errors.As(e.Err, &se) || se.Kind != simerr.KindInjected {
		t.Errorf("err = %v, want an injected SimError", e.Err)
	}
	if slept != 2 || stats[0].Retries != 2 {
		t.Errorf("slept %d, stats retries %d, want 2 and 2", slept, stats[0].Retries)
	}
	if out[0][0] != (core.Result{}) {
		t.Error("failed cell has a non-zero result")
	}
}

func TestPermanentFailureNotRetried(t *testing.T) {
	// A permanent injected error must fail on the first attempt even
	// with a generous retry budget.
	activateFaults(t, "sim:err:times=10")
	task, _ := retryTestTask(t)

	opts := Options{
		Parallel: 1, Retries: 5,
		Sleep: func(time.Duration) { t.Error("slept for a permanent failure") },
	}
	_, stats, errs := RunCheckedStats(context.Background(), opts, []Task{task})
	if len(errs) != 1 || errs[0].Attempts != 1 {
		t.Fatalf("errs = %v, want one first-attempt failure", errs)
	}
	if stats[0].Retries != 0 {
		t.Errorf("stats retries = %d, want 0", stats[0].Retries)
	}
}

func TestPanicNotRetried(t *testing.T) {
	activateFaults(t, "sim:panic:at=5")
	task, _ := retryTestTask(t)
	opts := Options{
		Parallel: 1, Retries: 5,
		Sleep: func(time.Duration) { t.Error("slept for a panic") },
	}
	_, _, errs := RunCheckedStats(context.Background(), opts, []Task{task})
	if len(errs) != 1 || errs[0].Attempts != 1 {
		t.Fatalf("errs = %v, want one first-attempt failure", errs)
	}
	if errs[0].Stack == nil {
		t.Error("panic failure lost its stack")
	}
	if !strings.Contains(errs[0].Err.Error(), "injected panic") {
		t.Errorf("err = %v, want the injected panic", errs[0].Err)
	}
}

func TestRetryStopsOnCancelledContext(t *testing.T) {
	activateFaults(t, "sim:err:times=100:transient")
	task, _ := retryTestTask(t)
	ctx, cancel := context.WithCancel(context.Background())
	opts := Options{
		Parallel: 1, Retries: 100,
		Sleep: func(time.Duration) { cancel() }, // context dies mid-backoff
	}
	_, stats, errs := RunCheckedStats(ctx, opts, []Task{task})
	if len(errs) != 1 {
		t.Fatalf("errs = %v, want one", errs)
	}
	if stats[0].Retries != 1 {
		t.Errorf("retries = %d, want 1 (the loop must stop once the context ends)", stats[0].Retries)
	}
}

func TestRetriesOffIsSeedBehavior(t *testing.T) {
	// With no faults and no retries, results must match a plain run.
	task, _ := retryTestTask(t)
	out, _, errs := RunCheckedStats(context.Background(), Options{Parallel: 1}, []Task{task})
	if len(errs) != 0 {
		t.Fatalf("healthy run failed: %v", errs)
	}
	ref := Run(1, []Task{task})
	if out[0][0] != ref[0][0] {
		t.Errorf("checked result %+v differs from plain run %+v", out[0][0], ref[0][0])
	}
}
