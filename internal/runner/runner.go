// Package runner fans independent simulation cells out across a
// bounded pool of worker goroutines.
//
// The paper's experiment grids are embarrassingly parallel: every
// (machine, configuration, trace) cell is independent of every other
// cell. core.Machine implementations, however, are stateful — one
// instance must never run on two goroutines at once — so the unit of
// work here is a *constructor*: each Task builds a fresh, private
// machine for its own run. Traces are shared read-only across all
// cells; their prepared decode cache initializes through sync.Once, so
// concurrent first use is safe.
//
// Scheduling is dynamic (workers claim the next cell from a shared
// counter) but the output is deterministic: results are stored by cell
// index, so the caller sees the same slice regardless of worker count
// or interleaving.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"

	"mfup/internal/core"
	"mfup/internal/trace"
)

// Task is one experiment cell: one machine configuration run over a
// set of traces.
type Task struct {
	// New constructs the machine for this cell. It is called exactly
	// once, on the worker goroutine that claims the cell, so the
	// machine it returns is private to that goroutine. The one
	// instance runs all of the cell's traces in order — Machine.Run
	// fully resets state between runs — which keeps the machine's
	// internal allocations amortized as in a serial sweep.
	New func() core.Machine

	// Traces drive the runs. A trace may be shared with any number of
	// other tasks, concurrently.
	Traces []*trace.Trace
}

// Workers normalizes a parallelism request: n itself when positive,
// otherwise GOMAXPROCS (the "use all cores" default).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Each calls fn(i) for every i in [0, n), with at most
// Workers(parallel) calls in flight. The assignment of indices to
// goroutines is nondeterministic; callers obtain deterministic output
// by having fn(i) write only to slot i of a preallocated result slice.
// With one worker, fn runs on the calling goroutine in index order.
// Each returns once every call has completed.
func Each(parallel, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(parallel)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Run executes every task on Workers(parallel) goroutines and returns
// the results in task order: out[i][j] is tasks[i] run on its j-th
// trace, regardless of how the cells were scheduled.
func Run(parallel int, tasks []Task) [][]core.Result {
	out := make([][]core.Result, len(tasks))
	Each(parallel, len(tasks), func(i int) {
		m := tasks[i].New()
		rs := make([]core.Result, len(tasks[i].Traces))
		for j, t := range tasks[i].Traces {
			rs[j] = m.Run(t)
		}
		out[i] = rs
	})
	return out
}
