// Package runner fans independent simulation cells out across a
// bounded pool of worker goroutines.
//
// The paper's experiment grids are embarrassingly parallel: every
// (machine, configuration, trace) cell is independent of every other
// cell. core.Machine implementations, however, are stateful — one
// instance must never run on two goroutines at once — so the unit of
// work here is a *constructor*: each Task builds a fresh, private
// machine for its own run. Traces are shared read-only across all
// cells; their prepared decode cache initializes through sync.Once, so
// concurrent first use is safe.
//
// Scheduling is dynamic (workers claim the next cell from a shared
// counter) but the output is deterministic: results are stored by cell
// index, so the caller sees the same slice regardless of worker count
// or interleaving.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mfup/internal/core"
	"mfup/internal/events"
	"mfup/internal/probe"
	"mfup/internal/trace"
)

// Task is one experiment cell: one machine configuration run over a
// set of traces.
type Task struct {
	// New constructs the machine for this cell. It is called exactly
	// once, on the worker goroutine that claims the cell, so the
	// machine it returns is private to that goroutine. The one
	// instance runs all of the cell's traces in order — Machine.Run
	// fully resets state between runs — which keeps the machine's
	// internal allocations amortized as in a serial sweep.
	New func() core.Machine

	// Traces drive the runs. A trace may be shared with any number of
	// other tasks, concurrently.
	Traces []*trace.Trace

	// Probe, when non-nil, is attached to the cell's machine before any
	// trace runs, so it observes every run of the cell in order. A task
	// runs entirely on the one goroutine that claims it, so an
	// unsynchronized accumulator (e.g. *probe.Counters) is safe here as
	// long as it is private to this task.
	Probe probe.Probe

	// Recorder, when non-nil, is attached to the cell's machine before
	// any trace runs, capturing per-instruction lifecycle events
	// (internal/events) for every run of the cell. The same ownership
	// rule as Probe applies: the recorder must be private to this task.
	Recorder *events.Recorder
}

// TaskStat is one task's execution telemetry, filled by
// RunCheckedStats: how long the cell took on the wall clock, how many
// simulated cycles its runs covered, and — when a Recorder was
// attached — how many events it kept and dropped.
type TaskStat struct {
	Wall          time.Duration // wall-clock time over the cell's runs
	Cycles        int64         // simulated cycles summed over the cell's runs
	Events        int64         // events recorded (0 without a Recorder)
	EventsDropped int64         // events dropped at the recorder's cap
	Retries       int64         // re-attempts of transiently failed runs
}

// Workers normalizes a parallelism request: n itself when positive,
// otherwise GOMAXPROCS (the "use all cores" default).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Each calls fn(i) for every i in [0, n), with at most
// Workers(parallel) calls in flight. The assignment of indices to
// goroutines is nondeterministic; callers obtain deterministic output
// by having fn(i) write only to slot i of a preallocated result slice.
// With one worker, fn runs on the calling goroutine in index order.
// Each returns once every call has completed.
func Each(parallel, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(parallel)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Run executes every task on Workers(parallel) goroutines and returns
// the results in task order: out[i][j] is tasks[i] run on its j-th
// trace, regardless of how the cells were scheduled. Any cell failure
// (panic or simulation error) panics with the first failure; use
// RunChecked to collect failures instead.
func Run(parallel int, tasks []Task) [][]core.Result {
	out, errs := RunChecked(context.Background(), Options{Parallel: parallel}, tasks)
	if len(errs) > 0 {
		panic(errs[0])
	}
	return out
}

// ErrSkipped marks a cell that never ran because the sweep was
// cancelled first (fail-fast after another cell's failure, or the
// caller's context ending).
var ErrSkipped = errors.New("cell skipped: sweep cancelled")

// CellError is one cell's failure: which task and trace, the machine
// and trace names when known, the underlying error, and — when the
// cell panicked — the goroutine stack at the point of the panic.
type CellError struct {
	Task      int    // index into the tasks slice
	Trace     int    // index into that task's Traces; -1 for construction failures
	Machine   string // machine name, "" if construction never succeeded
	TraceName string // trace name, "" for construction failures
	Err       error  // the failure; a recovered panic is wrapped
	Stack     []byte // goroutine stack if the cell panicked, else nil
	Attempts  int    // runs of this cell including retries; 0 reads as 1
}

// Error renders a one-line diagnostic naming the cell.
func (e *CellError) Error() string {
	suffix := ""
	if e.Attempts > 1 {
		suffix = fmt.Sprintf(" (after %d attempts)", e.Attempts)
	}
	switch {
	case e.Task < 0:
		// Not a cell at all: the sweep's Options were invalid.
		return e.Err.Error()
	case e.Trace < 0 && e.Machine == "":
		return fmt.Sprintf("task %d: constructing machine: %v%s", e.Task, e.Err, suffix)
	case e.TraceName != "":
		return fmt.Sprintf("task %d (%s) on %q: %v%s", e.Task, e.Machine, e.TraceName, e.Err, suffix)
	}
	return fmt.Sprintf("task %d (%s): %v%s", e.Task, e.Machine, e.Err, suffix)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *CellError) Unwrap() error { return e.Err }

// Options configures a checked sweep. The zero value runs on all
// cores with no limits, collecting every failure (keep-going).
type Options struct {
	// Parallel is the worker count; <= 0 means all cores.
	Parallel int

	// Limits bounds every cell's simulation (cycle budget, stall
	// watchdog, wall-clock deadline). Zero = unbounded, matching Run.
	Limits core.Limits

	// FailFast cancels the sweep after the first cell failure:
	// in-flight cells finish, unstarted cells are skipped and reported
	// with ErrSkipped. The default (keep-going) runs every cell and
	// collects all failures.
	FailFast bool

	// CellTimeout, when positive, gives each cell its own wall-clock
	// deadline (tighter of this and Limits.Deadline). With retries, the
	// window is re-anchored per attempt: a timed-out attempt does not
	// eat the next one's budget.
	CellTimeout time.Duration

	// Retries is how many times a transiently failed run (see
	// Transient) is re-attempted before its failure is reported. 0
	// disables retrying; permanent failures are never retried.
	Retries int

	// RetryBackoff is the base delay before the first retry; each
	// further retry doubles it (capped at 30s), jittered
	// deterministically into [d/2, d) from RetrySeed and the cell
	// coordinates. <= 0 means DefaultRetryBackoff.
	RetryBackoff time.Duration

	// RetrySeed feeds the deterministic jitter. Sweeps that must
	// reproduce exactly (the tables' contract) pass a fixed seed.
	RetrySeed int64

	// Sleep, when non-nil, replaces the real inter-attempt wait. Tests
	// inject a fake clock here so retry schedules are asserted without
	// real sleeps.
	Sleep func(time.Duration)
}

// Safe runs fn, converting a panic into an error (with the panic
// value's message); a panic with an error value is returned as that
// error. It exists for one-off cells outside the Task grid — e.g.
// table builders that call machines directly.
func Safe(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = e
			} else {
				err = fmt.Errorf("panic: %v", r)
			}
		}
	}()
	fn()
	return nil
}

// RunChecked executes every task like Run, but isolates failures: a
// cell that returns a simulation error or panics produces a CellError
// and a zero Result in its slot, while every other cell completes
// normally (unless opts.FailFast cancels them). Cancelling ctx stops
// the sweep the same way. Errors are reported sorted by (Task, Trace),
// deterministically at any worker count. len(out) == len(tasks) and
// len(out[i]) == len(tasks[i].Traces) always hold.
func RunChecked(ctx context.Context, opts Options, tasks []Task) ([][]core.Result, []*CellError) {
	out, _, errs := RunCheckedStats(ctx, opts, tasks)
	return out, errs
}

// RunCheckedStats is RunChecked with per-task telemetry: the third
// return value, indexed like tasks, reports each cell's wall-clock
// time, simulated cycle total, and recorder event counts. The
// telemetry is observational — results and errors are identical to
// RunChecked's.
//
// Structurally invalid Options (opts.Validate) run nothing: the
// single reported CellError carries coordinates (-1, -1) and unwraps
// to the *OptionError, and every result slot stays zero.
func RunCheckedStats(ctx context.Context, opts Options, tasks []Task) ([][]core.Result, []TaskStat, []*CellError) {
	out := make([][]core.Result, len(tasks))
	stats := make([]TaskStat, len(tasks))
	errsByTask := make([][]*CellError, len(tasks))

	if err := opts.Validate(); err != nil {
		for i := range tasks {
			out[i] = make([]core.Result, len(tasks[i].Traces))
		}
		return out, stats, []*CellError{optionsError(err)}
	}

	runCtx := ctx
	var cancel context.CancelCauseFunc
	if opts.FailFast {
		runCtx, cancel = context.WithCancelCause(ctx)
		defer cancel(nil)
	}

	Each(opts.Parallel, len(tasks), func(i int) {
		task := tasks[i]
		rs := make([]core.Result, len(task.Traces))
		out[i] = rs

		fail := func(j int, machine, traceName string, err error, stack []byte, attempts int) {
			errsByTask[i] = append(errsByTask[i], &CellError{
				Task: i, Trace: j, Machine: machine, TraceName: traceName,
				Err: err, Stack: stack, Attempts: attempts,
			})
			if cancel != nil {
				cancel(err)
			}
		}

		if runCtx.Err() != nil {
			for j := range task.Traces {
				fail(j, "", task.Traces[j].Name, ErrSkipped, nil, 0)
			}
			return
		}

		var m core.Machine
		if err := safeCall(func() { m = task.New() }); err != nil {
			fail(-1, "", "", err, stackOf(err), 0)
			return
		}
		if task.Probe != nil {
			m.SetProbe(task.Probe)
		}
		if task.Recorder != nil {
			m.SetRecorder(task.Recorder)
		}

		start := time.Now()
		for j, t := range task.Traces {
			if runCtx.Err() != nil {
				fail(j, m.Name(), t.Name, ErrSkipped, nil, 0)
				continue
			}
			// Run the trace, retrying transient failures up to
			// opts.Retries times with exponentially backed-off,
			// deterministically jittered delays. Each attempt gets a
			// fresh CellTimeout window — the attempt is what is bounded,
			// not the cell's lifetime across retries.
			var (
				r       core.Result
				lastErr error
				stack   []byte
				attempt int
			)
			for attempt = 1; ; attempt++ {
				lim := opts.Limits
				if opts.CellTimeout > 0 {
					d := time.Now().Add(opts.CellTimeout)
					if lim.Deadline.IsZero() || d.Before(lim.Deadline) {
						lim.Deadline = d
					}
				}
				var runErr error
				if err := safeCall(func() { r, runErr = m.RunChecked(t, lim) }); err != nil {
					lastErr, stack = err, stackOf(err)
				} else {
					lastErr, stack = runErr, nil
				}
				if lastErr == nil || attempt > opts.Retries ||
					!Transient(lastErr) || runCtx.Err() != nil {
					break
				}
				stats[i].Retries++
				opts.sleep(runCtx, backoffDelay(opts.RetryBackoff, opts.RetrySeed, i, j, attempt))
				if runCtx.Err() != nil {
					break
				}
			}
			if lastErr != nil {
				fail(j, m.Name(), t.Name, lastErr, stack, attempt)
				continue
			}
			rs[j] = r
			stats[i].Cycles += r.Cycles
		}
		stats[i].Wall = time.Since(start)
		if task.Recorder != nil {
			stats[i].Events = task.Recorder.Events()
			stats[i].EventsDropped = task.Recorder.Dropped()
		}
	})

	var errs []*CellError
	for _, es := range errsByTask {
		errs = append(errs, es...)
	}
	sort.Slice(errs, func(a, b int) bool {
		if errs[a].Task != errs[b].Task {
			return errs[a].Task < errs[b].Task
		}
		return errs[a].Trace < errs[b].Trace
	})
	return out, stats, errs
}

// panicError carries a recovered panic value together with the stack
// captured at the recovery point.
type panicError struct {
	value any
	stack []byte
}

func (e *panicError) Error() string { return fmt.Sprintf("panic: %v", e.value) }

// Unwrap exposes a panic with an error value (e.g. core.Run panicking
// with a *core.SimError) to errors.Is/As.
func (e *panicError) Unwrap() error {
	if err, ok := e.value.(error); ok {
		return err
	}
	return nil
}

// safeCall runs fn, converting a panic into a *panicError.
func safeCall(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicError{value: r, stack: debug.Stack()}
		}
	}()
	fn()
	return nil
}

// stackOf extracts the captured stack from a recovered-panic error.
func stackOf(err error) []byte {
	var pe *panicError
	if errors.As(err, &pe) {
		return pe.stack
	}
	return nil
}
