package runner

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mfup/internal/core"
	"mfup/internal/events"
	"mfup/internal/loops"
	"mfup/internal/probe"
	"mfup/internal/simerr"
	"mfup/internal/trace"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got < 1 {
		t.Errorf("Workers(0) = %d, want >= 1", got)
	}
	if got := Workers(-5); got != Workers(0) {
		t.Errorf("Workers(-5) = %d, want the default %d", got, Workers(0))
	}
}

// TestEachCoversEveryIndexOnce checks that Each visits each index in
// [0, n) exactly once at several worker counts, including more
// workers than work.
func TestEachCoversEveryIndexOnce(t *testing.T) {
	const n = 100
	for _, workers := range []int{1, 2, 7, n + 50} {
		var counts [n]atomic.Int64
		Each(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Errorf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
	called := false
	Each(4, 0, func(int) { called = true })
	if called {
		t.Error("Each with n=0 invoked fn")
	}
}

// TestRunDeterministic runs a real simulation grid serially and with
// many workers and requires identical results in identical order.
func TestRunDeterministic(t *testing.T) {
	var traces []*trace.Trace
	for _, k := range loops.ByClass(loops.Scalar) {
		traces = append(traces, k.SharedTrace())
	}
	var tasks []Task
	for _, cfg := range core.BaseConfigs() {
		tasks = append(tasks, Task{
			New:    func() core.Machine { return core.NewBasic(core.CRAYLike, cfg) },
			Traces: traces,
		})
	}
	serial := Run(1, tasks)
	parallel := Run(8, tasks)
	if len(serial) != len(tasks) || len(parallel) != len(tasks) {
		t.Fatalf("result lengths %d, %d; want %d", len(serial), len(parallel), len(tasks))
	}
	for i := range serial {
		if len(serial[i]) != len(traces) || len(parallel[i]) != len(traces) {
			t.Fatalf("task %d: cell lengths %d, %d; want %d", i, len(serial[i]), len(parallel[i]), len(traces))
		}
		for j := range serial[i] {
			if serial[i][j] != parallel[i][j] {
				t.Errorf("task %d trace %d: serial %+v != parallel %+v", i, j, serial[i][j], parallel[i][j])
			}
		}
	}
}

// panicMachine explodes either at construction or on a chosen trace.
type panicMachine struct {
	inner  core.Machine
	blowOn string // trace name that panics; "" = never
	errOn  string // trace name that returns an error; "" = never
}

func (p *panicMachine) Name() string { return "PanicMachine" }

func (p *panicMachine) Run(t *trace.Trace) core.Result { return p.inner.Run(t) }

func (p *panicMachine) SetProbe(pr probe.Probe) { p.inner.SetProbe(pr) }

func (p *panicMachine) SetRecorder(r *events.Recorder) { p.inner.SetRecorder(r) }

func (p *panicMachine) RunChecked(t *trace.Trace, lim core.Limits) (core.Result, error) {
	if t.Name == p.blowOn {
		panic("injected cell panic")
	}
	if t.Name == p.errOn {
		return core.Result{}, errors.New("injected cell error")
	}
	return p.inner.RunChecked(t, lim)
}

// TestRunCheckedIsolatesPanics: a panicking cell yields a CellError
// with a stack while every other cell completes with correct values.
func TestRunCheckedIsolatesPanics(t *testing.T) {
	var traces []*trace.Trace
	for _, k := range loops.ByClass(loops.Scalar) {
		traces = append(traces, k.SharedTrace())
	}
	bad := traces[1].Name
	mk := func() core.Machine {
		return &panicMachine{inner: core.NewBasic(core.CRAYLike, core.M11BR5), blowOn: bad}
	}
	healthy := func() core.Machine { return core.NewBasic(core.CRAYLike, core.M11BR5) }

	tasks := []Task{
		{New: mk, Traces: traces},
		{New: healthy, Traces: traces},
	}
	want := Run(1, []Task{{New: healthy, Traces: traces}})[0]

	for _, workers := range []int{1, 4} {
		out, errs := RunChecked(context.Background(), Options{Parallel: workers}, tasks)
		if len(errs) != 1 {
			t.Fatalf("workers=%d: %d errors, want 1: %v", workers, len(errs), errs)
		}
		e := errs[0]
		if e.Task != 0 || e.Trace != 1 || e.TraceName != bad {
			t.Errorf("workers=%d: error cell (%d,%d,%q), want (0,1,%q)", workers, e.Task, e.Trace, e.TraceName, bad)
		}
		if len(e.Stack) == 0 {
			t.Errorf("workers=%d: panic CellError carries no stack", workers)
		}
		if !strings.Contains(e.Error(), "injected cell panic") {
			t.Errorf("workers=%d: error %q does not name the panic", workers, e)
		}
		// Healthy cells of the failing task still computed.
		for j := range traces {
			if j == 1 {
				continue
			}
			if out[0][j] != want[j] {
				t.Errorf("workers=%d: task 0 trace %d corrupted: %+v != %+v", workers, j, out[0][j], want[j])
			}
		}
		// The healthy task is untouched.
		for j := range traces {
			if out[1][j] != want[j] {
				t.Errorf("workers=%d: task 1 trace %d corrupted: %+v != %+v", workers, j, out[1][j], want[j])
			}
		}
	}
}

// TestRunCheckedConstructionFailure: a constructor panic is reported
// as Trace == -1 and the whole task's results stay zero.
func TestRunCheckedConstructionFailure(t *testing.T) {
	traces := []*trace.Trace{loops.ByClass(loops.Scalar)[0].SharedTrace()}
	tasks := []Task{{New: func() core.Machine { panic("bad constructor") }, Traces: traces}}
	out, errs := RunChecked(context.Background(), Options{}, tasks)
	if len(errs) != 1 || errs[0].Trace != -1 {
		t.Fatalf("errs = %v, want one construction error with Trace -1", errs)
	}
	if len(out[0]) != 1 || out[0][0] != (core.Result{}) {
		t.Errorf("construction-failed task has non-zero results: %+v", out[0])
	}
}

// TestRunCheckedFailFast: with FailFast, cells scheduled after the
// failure are skipped and marked ErrSkipped; keep-going mode runs
// everything.
func TestRunCheckedFailFast(t *testing.T) {
	traces := []*trace.Trace{loops.ByClass(loops.Scalar)[0].SharedTrace()}
	bad := traces[0].Name
	var tasks []Task
	tasks = append(tasks, Task{
		New: func() core.Machine {
			return &panicMachine{inner: core.NewBasic(core.CRAYLike, core.M11BR5), errOn: bad}
		},
		Traces: traces,
	})
	for i := 0; i < 16; i++ {
		tasks = append(tasks, Task{
			New:    func() core.Machine { return core.NewBasic(core.CRAYLike, core.M11BR5) },
			Traces: traces,
		})
	}

	// Keep-going (default): exactly the one injected failure.
	_, errs := RunChecked(context.Background(), Options{Parallel: 1}, tasks)
	if len(errs) != 1 {
		t.Fatalf("keep-going: %d errors, want 1: %v", len(errs), errs)
	}

	// Fail-fast with one worker: everything after task 0 is skipped.
	_, errs = RunChecked(context.Background(), Options{Parallel: 1, FailFast: true}, tasks)
	if len(errs) != len(tasks) {
		t.Fatalf("fail-fast: %d errors, want %d", len(errs), len(tasks))
	}
	if !strings.Contains(errs[0].Error(), "injected cell error") {
		t.Errorf("fail-fast: first error %q is not the injected failure", errs[0])
	}
	for _, e := range errs[1:] {
		if !errors.Is(e, ErrSkipped) {
			t.Errorf("fail-fast: task %d error %v, want ErrSkipped", e.Task, e.Err)
		}
	}
}

// TestRunCheckedCancelledContext: a pre-cancelled context skips every
// cell.
func TestRunCheckedCancelledContext(t *testing.T) {
	traces := []*trace.Trace{loops.ByClass(loops.Scalar)[0].SharedTrace()}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tasks := []Task{{New: func() core.Machine { return core.NewBasic(core.CRAYLike, core.M11BR5) }, Traces: traces}}
	_, errs := RunChecked(ctx, Options{}, tasks)
	if len(errs) != 1 || !errors.Is(errs[0], ErrSkipped) {
		t.Fatalf("errs = %v, want one ErrSkipped", errs)
	}
}

// TestRunCheckedCellTimeout: an effectively-zero cell timeout fires
// the per-cell deadline on a real machine run.
func TestRunCheckedCellTimeout(t *testing.T) {
	traces := []*trace.Trace{loops.ByClass(loops.Scalar)[0].SharedTrace()}
	tasks := []Task{{New: func() core.Machine { return core.NewBasic(core.CRAYLike, core.M11BR5) }, Traces: traces}}
	_, errs := RunChecked(context.Background(), Options{CellTimeout: time.Nanosecond}, tasks)
	if len(errs) != 1 {
		t.Fatalf("errs = %v, want one deadline error", errs)
	}
	var serr *core.SimError
	if !errors.As(errs[0], &serr) || serr.Kind != simerr.KindDeadline {
		t.Errorf("error = %v, want KindDeadline *SimError", errs[0])
	}
}

// TestSafe converts panics to errors and passes errors through.
func TestSafe(t *testing.T) {
	if err := Safe(func() {}); err != nil {
		t.Errorf("Safe(no-op) = %v", err)
	}
	if err := Safe(func() { panic("boom") }); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("Safe(panic) = %v", err)
	}
	sentinel := errors.New("typed")
	if err := Safe(func() { panic(sentinel) }); !errors.Is(err, sentinel) {
		t.Errorf("Safe(panic(error)) = %v, want the error value", err)
	}
}

// TestRunCheckedStatsTelemetry: RunCheckedStats fills per-task
// wall-clock, cycle, and event telemetry, attaches recorders to the
// machines, and leaves the results identical to RunChecked's.
func TestRunCheckedStatsTelemetry(t *testing.T) {
	var traces []*trace.Trace
	for _, k := range loops.ByClass(loops.Scalar) {
		traces = append(traces, k.SharedTrace())
	}
	rec := events.NewRecorder(100)
	tasks := []Task{
		{New: func() core.Machine { return core.NewBasic(core.CRAYLike, core.M11BR5) }, Traces: traces, Recorder: rec},
		{New: func() core.Machine { return core.NewBasic(core.Simple, core.M11BR5) }, Traces: traces},
	}
	out, stats, errs := RunCheckedStats(context.Background(), Options{Parallel: 1}, tasks)
	if len(errs) != 0 {
		t.Fatalf("unexpected cell errors: %v", errs)
	}
	if len(stats) != len(tasks) {
		t.Fatalf("got %d stats, want %d", len(stats), len(tasks))
	}
	for i := range tasks {
		var cycles int64
		for _, r := range out[i] {
			cycles += r.Cycles
		}
		if stats[i].Cycles != cycles {
			t.Errorf("task %d: stat cycles %d, results sum to %d", i, stats[i].Cycles, cycles)
		}
		if stats[i].Wall < 0 {
			t.Errorf("task %d: negative wall time %v", i, stats[i].Wall)
		}
	}
	// The recorder task captured its runs, honored the 100-event cap,
	// and its drop count surfaced in the stats.
	if len(rec.Runs()) != len(traces) {
		t.Errorf("recorder holds %d runs, want %d", len(rec.Runs()), len(traces))
	}
	if stats[0].Events != rec.Events() || stats[0].EventsDropped != rec.Dropped() {
		t.Errorf("stat events %d/%d, recorder says %d/%d",
			stats[0].Events, stats[0].EventsDropped, rec.Events(), rec.Dropped())
	}
	if stats[0].Events == 0 || stats[0].EventsDropped == 0 {
		t.Errorf("expected events and drops under a 100-event cap, got %d/%d",
			stats[0].Events, stats[0].EventsDropped)
	}
	// The recorder-less task reports no event telemetry.
	if stats[1].Events != 0 || stats[1].EventsDropped != 0 {
		t.Errorf("bare task reports event telemetry %d/%d", stats[1].Events, stats[1].EventsDropped)
	}

	// RunChecked's delegation returns the same results.
	plain, perrs := RunChecked(context.Background(), Options{Parallel: 1}, []Task{
		{New: func() core.Machine { return core.NewBasic(core.CRAYLike, core.M11BR5) }, Traces: traces},
	})
	if len(perrs) != 0 {
		t.Fatalf("unexpected cell errors: %v", perrs)
	}
	for j := range plain[0] {
		if plain[0][j] != out[0][j] {
			t.Errorf("trace %d: RunChecked %+v != RunCheckedStats %+v", j, plain[0][j], out[0][j])
		}
	}
}
