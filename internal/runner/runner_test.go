package runner

import (
	"sync/atomic"
	"testing"

	"mfup/internal/core"
	"mfup/internal/loops"
	"mfup/internal/trace"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got < 1 {
		t.Errorf("Workers(0) = %d, want >= 1", got)
	}
	if got := Workers(-5); got != Workers(0) {
		t.Errorf("Workers(-5) = %d, want the default %d", got, Workers(0))
	}
}

// TestEachCoversEveryIndexOnce checks that Each visits each index in
// [0, n) exactly once at several worker counts, including more
// workers than work.
func TestEachCoversEveryIndexOnce(t *testing.T) {
	const n = 100
	for _, workers := range []int{1, 2, 7, n + 50} {
		var counts [n]atomic.Int64
		Each(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Errorf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
	called := false
	Each(4, 0, func(int) { called = true })
	if called {
		t.Error("Each with n=0 invoked fn")
	}
}

// TestRunDeterministic runs a real simulation grid serially and with
// many workers and requires identical results in identical order.
func TestRunDeterministic(t *testing.T) {
	var traces []*trace.Trace
	for _, k := range loops.ByClass(loops.Scalar) {
		traces = append(traces, k.SharedTrace())
	}
	var tasks []Task
	for _, cfg := range core.BaseConfigs() {
		tasks = append(tasks, Task{
			New:    func() core.Machine { return core.NewBasic(core.CRAYLike, cfg) },
			Traces: traces,
		})
	}
	serial := Run(1, tasks)
	parallel := Run(8, tasks)
	if len(serial) != len(tasks) || len(parallel) != len(tasks) {
		t.Fatalf("result lengths %d, %d; want %d", len(serial), len(parallel), len(tasks))
	}
	for i := range serial {
		if len(serial[i]) != len(traces) || len(parallel[i]) != len(traces) {
			t.Fatalf("task %d: cell lengths %d, %d; want %d", i, len(serial[i]), len(parallel[i]), len(traces))
		}
		for j := range serial[i] {
			if serial[i][j] != parallel[i][j] {
				t.Errorf("task %d trace %d: serial %+v != parallel %+v", i, j, serial[i][j], parallel[i][j])
			}
		}
	}
}
