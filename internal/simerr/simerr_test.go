package simerr

import (
	"strings"
	"testing"
	"time"
)

func TestErrorIsOneLine(t *testing.T) {
	e := &SimError{
		Kind: KindStall, Machine: "RUU(2)", Trace: "lfk05",
		Cycle: 1234, Instr: 56, Msg: "nothing issued",
		InFlight: []string{"seq 1 load", "seq 2 fadd"},
	}
	if strings.Contains(e.Error(), "\n") {
		t.Errorf("Error() must be one line, got %q", e.Error())
	}
	for _, want := range []string{"RUU(2)", "lfk05", "1234", "no forward progress", "2 in flight"} {
		if !strings.Contains(e.Error(), want) {
			t.Errorf("Error() = %q, missing %q", e.Error(), want)
		}
	}
	if !strings.Contains(e.Detail(), "seq 2 fadd") {
		t.Errorf("Detail() = %q, missing snapshot", e.Detail())
	}
}

func TestGuardBudget(t *testing.T) {
	g := NewGuard("M", "t", 100, 0, time.Time{})
	if err := g.Over(100, 0); err != nil {
		t.Errorf("at budget: unexpected %v", err)
	}
	err := g.Over(101, 7)
	if err == nil || err.Kind != KindCycleBudget || err.Cycle != 101 || err.Instr != 7 {
		t.Errorf("past budget: got %+v", err)
	}
}

func TestGuardStall(t *testing.T) {
	g := NewGuard("M", "t", 0, 10, time.Time{})
	g.Progress(5)
	if err := g.Stalled(15, 0, nil); err != nil {
		t.Errorf("within window: unexpected %v", err)
	}
	called := false
	err := g.Stalled(16, 3, func(max int) []string {
		called = true
		return []string{"a", "b"}
	})
	if err == nil || err.Kind != KindStall || !called || len(err.InFlight) != 2 {
		t.Errorf("stall: got %+v (snapshot called: %v)", err, called)
	}
}

func TestGuardDisabledChecksNothing(t *testing.T) {
	var g Guard // zero value: all checks off
	if g.Over(1<<40, 0) != nil || g.Stalled(1<<40, 0, nil) != nil || g.Tick(0, 0) != nil {
		t.Error("zero guard must not fire")
	}
}

func TestGuardDeadline(t *testing.T) {
	g := NewGuard("M", "t", 0, 0, time.Now().Add(-time.Second))
	var err *SimError
	for i := 0; i < pollStride+1 && err == nil; i++ {
		err = g.Tick(int64(i), int64(i))
	}
	if err == nil || err.Kind != KindDeadline {
		t.Errorf("expired deadline never fired: %+v", err)
	}
}
