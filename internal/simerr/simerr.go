// Package simerr defines the structured error produced by checked
// simulation runs, and the Guard that enforces run limits.
//
// Every machine model offers a RunChecked entry point that bounds a
// run three ways: a cycle budget (the simulated clock may not pass
// MaxCycles), a no-forward-progress watchdog (a cycle-stepped machine
// that neither issues, dispatches, completes, nor commits anything
// for StallCycles consecutive cycles is livelocked), and a wall-clock
// deadline (polled periodically, for sweeps with per-cell timeouts).
// All three failures surface as a *SimError naming the machine, the
// trace, and the cycle at which the run was cut off, plus — for
// stalls — a snapshot of the stalled in-flight instructions.
//
// The type lives in its own leaf package so that both internal/core
// and internal/ruu (which core wraps, and therefore cannot import
// core) report failures with the same error value.
package simerr

import (
	"fmt"
	"strings"
	"time"
)

// Kind classifies a simulation failure.
type Kind uint8

// The failure classes.
const (
	// KindCycleBudget: the simulated clock passed Limits.MaxCycles.
	KindCycleBudget Kind = iota
	// KindStall: the no-forward-progress watchdog fired — nothing
	// issued, dispatched, completed, or committed for StallCycles
	// consecutive cycles while instructions were still in flight.
	KindStall
	// KindDeadline: the wall-clock deadline passed mid-run.
	KindDeadline
	// KindBadTrace: the machine cannot simulate the trace at all
	// (for example, a vector trace handed to a scalar machine, or a
	// corrupted trace that fails validation).
	KindBadTrace
	// KindInjected: a deliberate failure scheduled by the
	// fault-injection layer (internal/faultinject) fired. Chaos runs
	// use it to exercise the same error paths genuine failures take.
	KindInjected
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindCycleBudget:
		return "cycle budget exceeded"
	case KindStall:
		return "no forward progress"
	case KindDeadline:
		return "deadline exceeded"
	case KindBadTrace:
		return "unsimulatable trace"
	case KindInjected:
		return "injected fault"
	}
	return fmt.Sprintf("simerr.Kind(%d)", uint8(k))
}

// SimError is a structured simulation failure.
type SimError struct {
	Kind    Kind
	Machine string // machine model name
	Trace   string // trace name
	Cycle   int64  // simulated cycle at which the run was cut off
	Instr   int64  // trace position reached, -1 when not meaningful
	Msg     string // optional kind-specific detail

	// Transient marks the failure as retryable: a re-run of the same
	// cell may succeed. Only injected faults set it today (a flaky
	// fault that heals after N attempts); the batch layer's retry
	// classification keys off it.
	Transient bool

	// InFlight is a snapshot of the stalled in-flight instructions
	// (stall errors only), newest-committed first, possibly truncated.
	InFlight []string
}

// Error renders the failure as a single line, the form the CLIs print.
func (e *SimError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: %s on %q: %s at cycle %d", e.Machine, e.Trace, e.Kind, e.Cycle)
	if e.Instr >= 0 {
		fmt.Fprintf(&b, " (instr %d)", e.Instr)
	}
	if e.Msg != "" {
		fmt.Fprintf(&b, ": %s", e.Msg)
	}
	if n := len(e.InFlight); n > 0 {
		fmt.Fprintf(&b, " [%d in flight]", n)
	}
	return b.String()
}

// Detail renders the failure with the in-flight snapshot, one
// instruction per line, for verbose diagnostics.
func (e *SimError) Detail() string {
	if len(e.InFlight) == 0 {
		return e.Error()
	}
	var b strings.Builder
	b.WriteString(e.Error())
	for _, s := range e.InFlight {
		b.WriteString("\n  in flight: ")
		b.WriteString(s)
	}
	return b.String()
}

// pollStride is how many Tick calls pass between wall-clock reads:
// deadline checks must not put a syscall on the simulation hot path.
const pollStride = 4096

// Guard enforces run limits for one simulation run. The zero value
// (all limits zero) checks nothing; construct one per run with
// NewGuard and drive it from the machine's main loop.
type Guard struct {
	Machine string
	Trace   string

	maxCycles   int64
	stallCycles int64
	deadline    time.Time
	timed       bool

	lastProgress int64
	poll         int

	// Fault-injection schedule (see Inject). armed is false outside
	// chaos runs, so the hot-path cost of the hooks is one branch.
	inj   InjectedFault
	ticks int64
	armed bool
}

// InjectedFault is a guard's fault-injection schedule: the Tick
// ordinals (1-based) at which deliberate failures fire. Zero fields
// are disarmed. The schedule is resolved once per run by the
// fault-injection layer and installed with Inject.
type InjectedFault struct {
	// PanicAt panics on that Tick, exercising the runner's per-cell
	// recover path with a genuine mid-run panic.
	PanicAt int64
	// StallAt stops the guard from recording forward progress from
	// that Tick on, so an armed StallCycles watchdog fires exactly as
	// it would for a real livelock. It has no effect on machines that
	// never call Progress/Stalled (their issue times are computed
	// directly; they cannot livelock).
	StallAt int64
	// ErrAt returns a KindInjected *SimError on that Tick.
	ErrAt int64
	// Transient marks the ErrAt failure retryable.
	Transient bool
}

// Inject installs a fault schedule for this run. Call it between
// NewGuard and the first Tick.
func (g *Guard) Inject(f InjectedFault) {
	g.inj = f
	g.armed = f.PanicAt > 0 || f.StallAt > 0 || f.ErrAt > 0
}

// injected advances the tick counter and fires any scheduled fault.
func (g *Guard) injected(cycle, instr int64) *SimError {
	g.ticks++
	if g.inj.PanicAt > 0 && g.ticks >= g.inj.PanicAt {
		panic(fmt.Sprintf("faultinject: injected panic in %s on %q at tick %d (cycle %d)",
			g.Machine, g.Trace, g.ticks, cycle))
	}
	if g.inj.ErrAt > 0 && g.ticks >= g.inj.ErrAt {
		e := g.fail(KindInjected, cycle, instr)
		e.Msg = fmt.Sprintf("scheduled at tick %d", g.inj.ErrAt)
		e.Transient = g.inj.Transient
		return e
	}
	return nil
}

// NewGuard builds a guard for one run of machine over trace. Zero
// maxCycles or stallCycles disable the respective check; a zero
// deadline disables wall-clock polling.
func NewGuard(machine, trace string, maxCycles, stallCycles int64, deadline time.Time) Guard {
	return Guard{
		Machine:     machine,
		Trace:       trace,
		maxCycles:   maxCycles,
		stallCycles: stallCycles,
		deadline:    deadline,
		timed:       !deadline.IsZero(),
		// Poll on the first Tick, then every pollStride: a short run
		// must still notice an already-expired deadline.
		poll: 1,
	}
}

// fail builds a SimError for this run.
func (g *Guard) fail(kind Kind, cycle, instr int64) *SimError {
	return &SimError{Kind: kind, Machine: g.Machine, Trace: g.Trace, Cycle: cycle, Instr: instr}
}

// Over checks the cycle budget against the latest event time (which
// must be nondecreasing across calls for the earliest-abort property).
func (g *Guard) Over(cycle, instr int64) *SimError {
	if g.maxCycles > 0 && cycle > g.maxCycles {
		e := g.fail(KindCycleBudget, cycle, instr)
		e.Msg = fmt.Sprintf("budget %d cycles", g.maxCycles)
		return e
	}
	return nil
}

// Progress records that the machine did something at cycle c — issued,
// dispatched, completed, or committed an instruction. An injected
// stall suppresses the recording, so the watchdog sees a machine that
// has genuinely stopped moving.
func (g *Guard) Progress(c int64) {
	if g.armed && g.inj.StallAt > 0 && g.ticks >= g.inj.StallAt {
		return
	}
	if c > g.lastProgress {
		g.lastProgress = c
	}
}

// Stalled checks the no-forward-progress watchdog at cycle c.
// snapshot, when non-nil, is called only on failure to capture up to
// max in-flight instructions for the error.
func (g *Guard) Stalled(c, instr int64, snapshot func(max int) []string) *SimError {
	if g.stallCycles <= 0 || c-g.lastProgress <= g.stallCycles {
		return nil
	}
	e := g.fail(KindStall, c, instr)
	e.Msg = fmt.Sprintf("nothing issued or completed for %d cycles (last progress at cycle %d)",
		g.stallCycles, g.lastProgress)
	if snapshot != nil {
		e.InFlight = snapshot(16)
	}
	return e
}

// Tick polls the wall-clock deadline. It reads the clock only once
// every pollStride calls, so it is cheap enough for per-cycle or
// per-instruction use. Tick is also the fault-injection clock: every
// machine's main loop calls it, so injected panics, errors, and
// stalls are scheduled in Tick ordinals.
func (g *Guard) Tick(cycle, instr int64) *SimError {
	if g.armed {
		if e := g.injected(cycle, instr); e != nil {
			return e
		}
	}
	if !g.timed {
		return nil
	}
	if g.poll--; g.poll > 0 {
		return nil
	}
	g.poll = pollStride
	if time.Now().After(g.deadline) {
		e := g.fail(KindDeadline, cycle, instr)
		e.Msg = "wall-clock deadline passed"
		return e
	}
	return nil
}
