// Package simerr defines the structured error produced by checked
// simulation runs, and the Guard that enforces run limits.
//
// Every machine model offers a RunChecked entry point that bounds a
// run three ways: a cycle budget (the simulated clock may not pass
// MaxCycles), a no-forward-progress watchdog (a cycle-stepped machine
// that neither issues, dispatches, completes, nor commits anything
// for StallCycles consecutive cycles is livelocked), and a wall-clock
// deadline (polled periodically, for sweeps with per-cell timeouts).
// All three failures surface as a *SimError naming the machine, the
// trace, and the cycle at which the run was cut off, plus — for
// stalls — a snapshot of the stalled in-flight instructions.
//
// The type lives in its own leaf package so that both internal/core
// and internal/ruu (which core wraps, and therefore cannot import
// core) report failures with the same error value.
package simerr

import (
	"fmt"
	"strings"
	"time"
)

// Kind classifies a simulation failure.
type Kind uint8

// The failure classes.
const (
	// KindCycleBudget: the simulated clock passed Limits.MaxCycles.
	KindCycleBudget Kind = iota
	// KindStall: the no-forward-progress watchdog fired — nothing
	// issued, dispatched, completed, or committed for StallCycles
	// consecutive cycles while instructions were still in flight.
	KindStall
	// KindDeadline: the wall-clock deadline passed mid-run.
	KindDeadline
	// KindBadTrace: the machine cannot simulate the trace at all
	// (for example, a vector trace handed to a scalar machine).
	KindBadTrace
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindCycleBudget:
		return "cycle budget exceeded"
	case KindStall:
		return "no forward progress"
	case KindDeadline:
		return "deadline exceeded"
	case KindBadTrace:
		return "unsimulatable trace"
	}
	return fmt.Sprintf("simerr.Kind(%d)", uint8(k))
}

// SimError is a structured simulation failure.
type SimError struct {
	Kind    Kind
	Machine string // machine model name
	Trace   string // trace name
	Cycle   int64  // simulated cycle at which the run was cut off
	Instr   int64  // trace position reached, -1 when not meaningful
	Msg     string // optional kind-specific detail

	// InFlight is a snapshot of the stalled in-flight instructions
	// (stall errors only), newest-committed first, possibly truncated.
	InFlight []string
}

// Error renders the failure as a single line, the form the CLIs print.
func (e *SimError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: %s on %q: %s at cycle %d", e.Machine, e.Trace, e.Kind, e.Cycle)
	if e.Instr >= 0 {
		fmt.Fprintf(&b, " (instr %d)", e.Instr)
	}
	if e.Msg != "" {
		fmt.Fprintf(&b, ": %s", e.Msg)
	}
	if n := len(e.InFlight); n > 0 {
		fmt.Fprintf(&b, " [%d in flight]", n)
	}
	return b.String()
}

// Detail renders the failure with the in-flight snapshot, one
// instruction per line, for verbose diagnostics.
func (e *SimError) Detail() string {
	if len(e.InFlight) == 0 {
		return e.Error()
	}
	var b strings.Builder
	b.WriteString(e.Error())
	for _, s := range e.InFlight {
		b.WriteString("\n  in flight: ")
		b.WriteString(s)
	}
	return b.String()
}

// pollStride is how many Tick calls pass between wall-clock reads:
// deadline checks must not put a syscall on the simulation hot path.
const pollStride = 4096

// Guard enforces run limits for one simulation run. The zero value
// (all limits zero) checks nothing; construct one per run with
// NewGuard and drive it from the machine's main loop.
type Guard struct {
	Machine string
	Trace   string

	maxCycles   int64
	stallCycles int64
	deadline    time.Time
	timed       bool

	lastProgress int64
	poll         int
}

// NewGuard builds a guard for one run of machine over trace. Zero
// maxCycles or stallCycles disable the respective check; a zero
// deadline disables wall-clock polling.
func NewGuard(machine, trace string, maxCycles, stallCycles int64, deadline time.Time) Guard {
	return Guard{
		Machine:     machine,
		Trace:       trace,
		maxCycles:   maxCycles,
		stallCycles: stallCycles,
		deadline:    deadline,
		timed:       !deadline.IsZero(),
		// Poll on the first Tick, then every pollStride: a short run
		// must still notice an already-expired deadline.
		poll: 1,
	}
}

// fail builds a SimError for this run.
func (g *Guard) fail(kind Kind, cycle, instr int64) *SimError {
	return &SimError{Kind: kind, Machine: g.Machine, Trace: g.Trace, Cycle: cycle, Instr: instr}
}

// Over checks the cycle budget against the latest event time (which
// must be nondecreasing across calls for the earliest-abort property).
func (g *Guard) Over(cycle, instr int64) *SimError {
	if g.maxCycles > 0 && cycle > g.maxCycles {
		e := g.fail(KindCycleBudget, cycle, instr)
		e.Msg = fmt.Sprintf("budget %d cycles", g.maxCycles)
		return e
	}
	return nil
}

// Progress records that the machine did something at cycle c — issued,
// dispatched, completed, or committed an instruction.
func (g *Guard) Progress(c int64) {
	if c > g.lastProgress {
		g.lastProgress = c
	}
}

// Stalled checks the no-forward-progress watchdog at cycle c.
// snapshot, when non-nil, is called only on failure to capture up to
// max in-flight instructions for the error.
func (g *Guard) Stalled(c, instr int64, snapshot func(max int) []string) *SimError {
	if g.stallCycles <= 0 || c-g.lastProgress <= g.stallCycles {
		return nil
	}
	e := g.fail(KindStall, c, instr)
	e.Msg = fmt.Sprintf("nothing issued or completed for %d cycles (last progress at cycle %d)",
		g.stallCycles, g.lastProgress)
	if snapshot != nil {
		e.InFlight = snapshot(16)
	}
	return e
}

// Tick polls the wall-clock deadline. It reads the clock only once
// every pollStride calls, so it is cheap enough for per-cycle or
// per-instruction use.
func (g *Guard) Tick(cycle, instr int64) *SimError {
	if !g.timed {
		return nil
	}
	if g.poll--; g.poll > 0 {
		return nil
	}
	g.poll = pollStride
	if time.Now().After(g.deadline) {
		e := g.fail(KindDeadline, cycle, instr)
		e.Msg = "wall-clock deadline passed"
		return e
	}
	return nil
}
