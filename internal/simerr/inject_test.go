package simerr

import (
	"strings"
	"testing"
	"time"
)

func TestGuardInjectError(t *testing.T) {
	g := NewGuard("M", "t", 0, 0, time.Time{})
	g.Inject(InjectedFault{ErrAt: 3, Transient: true})
	for i := 1; i <= 2; i++ {
		if err := g.Tick(int64(i), int64(i)); err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
	}
	err := g.Tick(3, 3)
	if err == nil {
		t.Fatal("tick 3: no injected error")
	}
	if err.Kind != KindInjected || !err.Transient || err.Cycle != 3 {
		t.Errorf("injected error = %+v", err)
	}
	if !strings.Contains(err.Error(), "injected fault") {
		t.Errorf("message %q does not name the kind", err.Error())
	}
}

func TestGuardInjectPanic(t *testing.T) {
	g := NewGuard("M", "t", 0, 0, time.Time{})
	g.Inject(InjectedFault{PanicAt: 2})
	if err := g.Tick(1, 1); err != nil {
		t.Fatalf("tick 1: %v", err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("tick 2 did not panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "faultinject: injected panic") {
			t.Errorf("panic value = %v", r)
		}
	}()
	g.Tick(2, 2)
}

func TestGuardInjectStall(t *testing.T) {
	g := NewGuard("M", "t", 0, 10, time.Time{})
	g.Inject(InjectedFault{StallAt: 5})
	// Before the stall point, progress is recorded normally.
	for c := int64(1); c <= 4; c++ {
		g.Tick(c, c)
		g.Progress(c)
		if err := g.Stalled(c, c, nil); err != nil {
			t.Fatalf("cycle %d: %v", c, err)
		}
	}
	// From tick 5 on, Progress is suppressed; the watchdog fires once
	// the window (10 cycles past the last recorded progress at 4)
	// elapses — exactly as for a genuine livelock.
	var got *SimError
	for c := int64(5); c <= 40 && got == nil; c++ {
		g.Tick(c, c)
		g.Progress(c) // suppressed
		got = g.Stalled(c, c, func(max int) []string { return []string{"stuck"} })
	}
	if got == nil {
		t.Fatal("watchdog never fired under an injected stall")
	}
	if got.Kind != KindStall || got.Cycle != 15 || len(got.InFlight) != 1 {
		t.Errorf("stall error = %+v, want KindStall at cycle 15 with snapshot", got)
	}
}

func TestGuardUnarmedZeroCost(t *testing.T) {
	// An unarmed guard must behave exactly as before injection existed.
	g := NewGuard("M", "t", 100, 0, time.Time{})
	for c := int64(1); c <= 50; c++ {
		if err := g.Tick(c, c); err != nil {
			t.Fatalf("tick %d: %v", c, err)
		}
	}
	if err := g.Over(101, 0); err == nil || err.Kind != KindCycleBudget {
		t.Errorf("Over = %v, want cycle budget failure", err)
	}
}
