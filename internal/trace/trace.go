// Package trace defines the dynamic instruction trace that drives the
// simulators, exactly as instruction traces drove the modified CRAY-1
// simulator in the paper. A trace records, for each dynamically
// executed instruction, everything a timing model needs: the
// functional unit, parcel count, register operands, and — for memory
// operations — the effective address.
package trace

import (
	"fmt"
	"sync"

	"mfup/internal/isa"
)

// Op is one dynamically executed instruction.
//
// Unused register fields must be set to isa.NoReg explicitly: the
// zero value of isa.Reg is A0, so a zero-valued Op does not denote
// "no operands". The emulator always populates every field; code that
// builds Ops by hand (tests, synthetic workloads) must do the same.
type Op struct {
	Seq     int64 // position in the dynamic stream, 0-based
	PC      int   // static instruction index in the program
	Code    isa.Opcode
	Unit    isa.Unit
	Parcels int8

	Dst  isa.Reg // destination register or isa.NoReg
	Src1 isa.Reg // first source or isa.NoReg
	Src2 isa.Reg // second source or isa.NoReg

	Addr  int64 // effective/base address, valid when Code.IsMemory()
	Taken bool  // branch outcome, valid when Code.IsBranch()

	// Vector extension fields.
	Stride int64 // element stride, valid when Code.IsVectorMemory()
	VLen   int16 // elements processed, valid when Code.IsVector()
}

// IsBranch reports whether the op is a control transfer.
func (o *Op) IsBranch() bool { return o.Code.IsBranch() }

// IsMemory reports whether the op uses the memory unit.
func (o *Op) IsMemory() bool { return o.Code.IsMemory() }

// Reads appends the registers the op reads to dst. Conditional
// branches read A0.
func (o *Op) Reads(dst []isa.Reg) []isa.Reg {
	if o.Src1.Valid() {
		dst = append(dst, o.Src1)
	}
	if o.Src2.Valid() {
		dst = append(dst, o.Src2)
	}
	if o.Code.IsConditional() {
		dst = append(dst, isa.A0)
	}
	return dst
}

// String renders the op for debugging.
func (o *Op) String() string {
	return fmt.Sprintf("#%d pc=%d %s dst=%s src=%s,%s unit=%s",
		o.Seq, o.PC, o.Code, o.Dst, o.Src1, o.Src2, o.Unit)
}

// Trace is the full dynamic instruction stream of one program run.
// The Ops slice must not be mutated after the first simulation run:
// machines share one trace read-only, along with its prepared decode
// cache.
type Trace struct {
	Name string
	Ops  []Op

	prepOnce sync.Once
	prep     *Prepared
}

// Len returns the number of dynamic instructions.
func (t *Trace) Len() int { return len(t.Ops) }

// Prepared returns the trace's decode cache, computing it on first
// use. The cache is shared: concurrent callers — machines running the
// same trace on different goroutines — receive the same immutable
// Prepared.
func (t *Trace) Prepared() *Prepared {
	t.prepOnce.Do(func() { t.prep = Prepare(t) })
	return t.prep
}

// Mix summarizes a trace's instruction mix: how the dynamic stream
// distributes over functional-unit classes. The paper's resource
// limit (§4) is computed directly from these counts.
type Mix struct {
	Total    int64
	ByUnit   [isa.NumUnits]int64
	Loads    int64
	Stores   int64
	Branches int64
	Taken    int64
	Parcels  int64
}

// ComputeMix tallies the instruction mix of t.
func (t *Trace) ComputeMix() Mix {
	var m Mix
	for i := range t.Ops {
		o := &t.Ops[i]
		m.Total++
		m.ByUnit[o.Unit]++
		m.Parcels += int64(o.Parcels)
		switch {
		case o.Code.IsLoad():
			m.Loads++
		case o.Code.IsStore():
			m.Stores++
		case o.IsBranch():
			m.Branches++
			if o.Taken {
				m.Taken++
			}
		}
	}
	return m
}

// Fraction returns the share of dynamic instructions executed by unit
// u, in [0,1]. It returns 0 for an empty trace.
func (m Mix) Fraction(u isa.Unit) float64 {
	if m.Total == 0 {
		return 0
	}
	return float64(m.ByUnit[u]) / float64(m.Total)
}

// BusiestUnit returns the unit class with the highest dynamic count
// and that count. Ties resolve to the lowest-numbered unit.
func (m Mix) BusiestUnit() (isa.Unit, int64) {
	best := isa.Unit(0)
	var n int64
	for u := 0; u < isa.NumUnits; u++ {
		if m.ByUnit[u] > n {
			best, n = isa.Unit(u), m.ByUnit[u]
		}
	}
	return best, n
}

// String renders the mix as a one-line summary.
func (m Mix) String() string {
	return fmt.Sprintf("total=%d mem=%.1f%% branch=%.1f%% float=%.1f%%",
		m.Total,
		100*m.Fraction(isa.Memory),
		100*m.Fraction(isa.Branch),
		100*(m.Fraction(isa.FloatAdd)+m.Fraction(isa.FloatMul)+m.Fraction(isa.Recip)))
}
