package trace_test

import (
	"testing"

	"mfup/internal/loops"
	"mfup/internal/trace"
)

// kernelPeriod returns the detected Period of Livermore kernel n's
// shared trace (nil when none is detectable).
func kernelPeriod(t *testing.T, n int) *trace.Period {
	t.Helper()
	k, err := loops.Get(n)
	if err != nil {
		t.Fatalf("kernel %d: %v", n, err)
	}
	prep := k.SharedTrace().Prepared()
	if prep.Err != nil {
		t.Fatalf("kernel %d: prepare: %v", n, prep.Err)
	}
	return prep.Period()
}

// TestPeriodDetectionPerKernel pins which Livermore traces expose a
// steady-state period. The loops with data-dependent control flow
// (LFK 13), data-dependent addressing (LFK 8), conditional bodies
// (LFK 6), or non-counted structure (LFK 2's recursive halving) must
// yield nil — they are exactly the traces the extrapolation engine
// falls back on.
func TestPeriodDetectionPerKernel(t *testing.T) {
	periodic := map[int]bool{
		1: true, 2: false, 3: true, 4: true, 5: true,
		6: false, 7: true, 8: false, 9: true, 10: true,
		11: true, 12: true, 13: false, 14: true,
	}
	for n := 1; n <= 14; n++ {
		pd := kernelPeriod(t, n)
		if got := pd != nil; got != periodic[n] {
			t.Errorf("LFK %d: period detected = %v, want %v", n, got, periodic[n])
			continue
		}
		if pd == nil {
			continue
		}
		if pd.Span <= 0 || pd.Windows < 2 || pd.Start < 0 {
			t.Errorf("LFK %d: implausible period %+v", n, pd)
		}
		if pd.Iterations() != pd.Windows {
			t.Errorf("LFK %d: Iterations() = %d, want Windows = %d", n, pd.Iterations(), pd.Windows)
		}
	}
}

// TestPeriodSliceStructure checks the reduced-trace constructor: a
// k-window slice holds the prologue, k-1 body windows verbatim, and
// the shifted final window plus epilogue; the full-width slice is the
// source trace op for op; out-of-range requests return nil.
func TestPeriodSliceStructure(t *testing.T) {
	k, err := loops.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	src := k.SharedTrace()
	pd := src.Prepared().Period()
	if pd == nil {
		t.Fatal("LFK 1: no period")
	}
	epilogue := len(src.Ops) - pd.Start - pd.Windows*pd.Span
	for _, kw := range []int{2, 3, 17, pd.Windows / 2, pd.Windows} {
		tr := pd.Slice(kw)
		if tr == nil {
			t.Fatalf("Slice(%d) = nil", kw)
		}
		want := pd.Start + kw*pd.Span + epilogue
		if len(tr.Ops) != want {
			t.Errorf("Slice(%d): %d ops, want %d", kw, len(tr.Ops), want)
		}
		if prep := tr.Prepared(); prep.Err != nil {
			t.Errorf("Slice(%d): reduced trace invalid: %v", kw, prep.Err)
		}
		for i, o := range tr.Ops {
			if o.Seq != int64(i) {
				t.Fatalf("Slice(%d): op %d has Seq %d", kw, i, o.Seq)
			}
		}
	}
	full := pd.Slice(pd.Windows)
	if len(full.Ops) != len(src.Ops) {
		t.Fatalf("full-width slice: %d ops, want %d", len(full.Ops), len(src.Ops))
	}
	for i := range full.Ops {
		if full.Ops[i] != src.Ops[i] {
			t.Fatalf("full-width slice differs from source at op %d: %+v vs %+v",
				i, full.Ops[i], src.Ops[i])
		}
	}
	for _, bad := range []int{-1, 0, 1, pd.Windows + 1} {
		if tr := pd.Slice(bad); tr != nil {
			t.Errorf("Slice(%d) = %d ops, want nil", bad, len(tr.Ops))
		}
	}
}

// TestPeriodSliceCached checks that repeated requests for the same
// width share one constructed trace: a table grid's many machines must
// not rebuild (or race on) the reduction.
func TestPeriodSliceCached(t *testing.T) {
	pd := kernelPeriod(t, 3)
	if pd == nil {
		t.Fatal("LFK 3: no period")
	}
	if a, b := pd.Slice(10), pd.Slice(10); a != b {
		t.Errorf("Slice(10) built two traces: %p vs %p", a, b)
	}
}

// TestPeriodTailIdentity pins the tail address-identity guard: the
// regular strided kernels survive reduction, while LFK 14's gather
// addressing must be rejected — its tail reads depend on history a
// reduced trace no longer carries.
func TestPeriodTailIdentity(t *testing.T) {
	if pd := kernelPeriod(t, 1); pd == nil || !pd.TailIdentityOK(20) {
		t.Errorf("LFK 1: TailIdentityOK(20) = false, want true")
	}
	pd := kernelPeriod(t, 14)
	if pd == nil {
		t.Fatal("LFK 14: no period")
	}
	ok := false
	for k := 2; k < pd.Windows; k++ {
		if !pd.TailIdentityOK(k) {
			ok = true
			break
		}
	}
	if !ok {
		t.Errorf("LFK 14: every reduction preserves tail identity, expected at least one failure")
	}
}

// TestPeriodBankSafe checks the bank-safety predicate's degenerate
// and self-consistency cases: one bank is always safe, and a stride
// set safe for 2^k banks is safe for every divisor.
func TestPeriodBankSafe(t *testing.T) {
	for _, n := range []int{1, 3, 5, 9, 12} {
		pd := kernelPeriod(t, n)
		if pd == nil {
			t.Fatalf("LFK %d: no period", n)
		}
		if !pd.BankSafe(1) {
			t.Errorf("LFK %d: BankSafe(1) = false", n)
		}
		if pd.BankSafe(16) && !pd.BankSafe(8) {
			t.Errorf("LFK %d: safe for 16 banks but not 8", n)
		}
		if pd.BankSafe(8) && !pd.BankSafe(2) {
			t.Errorf("LFK %d: safe for 8 banks but not 2", n)
		}
	}
}
