// Mutation fuzzing of the binary trace decode path. The package is
// external (trace_test) so the corpus can be seeded from the real
// Livermore kernel traces via internal/loops, which imports trace.
package trace_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"mfup/internal/faultinject"
	"mfup/internal/loops"
	"mfup/internal/trace"
)

// FuzzDecodeMutated: ReadBinary must never panic and never hand back
// a trace a timing model could crash on — for arbitrary input bytes,
// it either returns an error or a trace that passes full decode
// validation. The corpus is seeded three ways: healthy encodings of
// LLL kernel traces, seeded in-memory corruptions of them re-encoded
// (every faultinject mutation class), and the corrupted fixtures in
// testdata/ that the CLI error-path tests also use.
func FuzzDecodeMutated(f *testing.F) {
	for _, n := range []int{1, 3, 7} {
		k, err := loops.Get(n)
		if err != nil {
			f.Fatal(err)
		}
		t := k.SharedTrace()
		var buf bytes.Buffer
		if err := trace.WriteBinary(&buf, t); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		// The healthy prefix cut mid-record, and each mutation class
		// re-encoded: the exact corruption shapes the decoder exists
		// to reject.
		f.Add(buf.Bytes()[:buf.Len()*2/3])
		for m := 0; m < faultinject.NumMutations; m++ {
			var mbuf bytes.Buffer
			mt := faultinject.MutateTrace(t, faultinject.Mutation(m), int64(n))
			if err := trace.WriteBinary(&mbuf, mt); err != nil {
				f.Fatal(err)
			}
			f.Add(mbuf.Bytes())
		}
	}
	fixtures, err := filepath.Glob(filepath.Join("..", "..", "testdata", "corrupt_*.mfutrace"))
	if err != nil {
		f.Fatal(err)
	}
	for _, path := range fixtures {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := trace.ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decodes must satisfy every invariant the machines
		// assume (ReadBinary validates internally; verify the contract
		// from outside too).
		if verr := trace.Validate(decoded); verr != nil {
			t.Fatalf("decoded trace fails validation: %v", verr)
		}
		// And it must re-encode and decode back to the same stream.
		var buf bytes.Buffer
		if err := trace.WriteBinary(&buf, decoded); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		again, err := trace.ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if again.Name != decoded.Name || again.Len() != decoded.Len() {
			t.Fatalf("round trip changed the trace: %q/%d vs %q/%d",
				decoded.Name, decoded.Len(), again.Name, again.Len())
		}
		for i := range decoded.Ops {
			if again.Ops[i] != decoded.Ops[i] {
				t.Fatalf("round trip changed op %d", i)
			}
		}
	})
}
