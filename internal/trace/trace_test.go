package trace

import (
	"testing"

	"mfup/internal/isa"
)

func op(code isa.Opcode, dst, s1, s2 isa.Reg) Op {
	return Op{Code: code, Unit: code.Unit(), Parcels: int8(code.Parcels()), Dst: dst, Src1: s1, Src2: s2}
}

func TestComputeMix(t *testing.T) {
	tr := &Trace{Name: "mix", Ops: []Op{
		op(isa.OpLoadS, isa.S(1), isa.A(1), isa.NoReg),
		op(isa.OpStoreS, isa.NoReg, isa.A(1), isa.S(1)),
		op(isa.OpFAdd, isa.S(2), isa.S(1), isa.S(1)),
		op(isa.OpFMul, isa.S(3), isa.S(2), isa.S(2)),
		op(isa.OpAAdd, isa.A(2), isa.A(1), isa.A(1)),
		{Code: isa.OpJAN, Unit: isa.Branch, Parcels: 2, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg, Taken: true},
		{Code: isa.OpJ, Unit: isa.Branch, Parcels: 2, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg, Taken: false},
	}}
	m := tr.ComputeMix()
	if m.Total != 7 {
		t.Errorf("total = %d, want 7", m.Total)
	}
	if m.Loads != 1 || m.Stores != 1 {
		t.Errorf("loads=%d stores=%d, want 1,1", m.Loads, m.Stores)
	}
	if m.Branches != 2 || m.Taken != 1 {
		t.Errorf("branches=%d taken=%d, want 2,1", m.Branches, m.Taken)
	}
	if m.ByUnit[isa.Memory] != 2 || m.ByUnit[isa.FloatAdd] != 1 || m.ByUnit[isa.FloatMul] != 1 {
		t.Errorf("unit counts wrong: %v", m.ByUnit)
	}
	// Parcels: memory 2+2, floats 1+1, addradd 1, branches 2+2 = 11.
	if m.Parcels != 11 {
		t.Errorf("parcels = %d, want 11", m.Parcels)
	}
}

func TestMixFraction(t *testing.T) {
	tr := &Trace{Ops: []Op{
		op(isa.OpLoadS, isa.S(1), isa.A(1), isa.NoReg),
		op(isa.OpLoadS, isa.S(2), isa.A(1), isa.NoReg),
		op(isa.OpFAdd, isa.S(3), isa.S(1), isa.S(2)),
		op(isa.OpFAdd, isa.S(4), isa.S(3), isa.S(1)),
	}}
	m := tr.ComputeMix()
	if got := m.Fraction(isa.Memory); got != 0.5 {
		t.Errorf("memory fraction = %v, want 0.5", got)
	}
	var empty Mix
	if empty.Fraction(isa.Memory) != 0 {
		t.Error("empty mix fraction != 0")
	}
}

func TestBusiestUnit(t *testing.T) {
	tr := &Trace{Ops: []Op{
		op(isa.OpLoadS, isa.S(1), isa.A(1), isa.NoReg),
		op(isa.OpLoadS, isa.S(2), isa.A(1), isa.NoReg),
		op(isa.OpFAdd, isa.S(3), isa.S(1), isa.S(2)),
	}}
	u, n := tr.ComputeMix().BusiestUnit()
	if u != isa.Memory || n != 2 {
		t.Errorf("busiest = %s/%d, want Memory/2", u, n)
	}
}

func TestOpReads(t *testing.T) {
	var buf []isa.Reg
	cond := Op{Code: isa.OpJAZ, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg}
	got := cond.Reads(buf[:0])
	if len(got) != 1 || got[0] != isa.A0 {
		t.Errorf("conditional branch reads %v, want [A0]", got)
	}
	st := op(isa.OpStoreS, isa.NoReg, isa.A(3), isa.S(4))
	got = st.Reads(buf[:0])
	if len(got) != 2 || got[0] != isa.A(3) || got[1] != isa.S(4) {
		t.Errorf("store reads %v", got)
	}
}

func TestOpPredicates(t *testing.T) {
	b := Op{Code: isa.OpJ, Unit: isa.Branch}
	if !b.IsBranch() || b.IsMemory() {
		t.Error("branch misclassified")
	}
	l := op(isa.OpLoadA, isa.A(1), isa.A(2), isa.NoReg)
	if l.IsBranch() || !l.IsMemory() {
		t.Error("load misclassified")
	}
}

func TestLen(t *testing.T) {
	tr := &Trace{Ops: make([]Op, 5)}
	if tr.Len() != 5 {
		t.Errorf("Len = %d, want 5", tr.Len())
	}
}
