package trace

import (
	"strings"
	"testing"

	"mfup/internal/isa"
)

func TestValidateHealthy(t *testing.T) {
	tr := preparedTestTrace()
	if err := Validate(tr); err != nil {
		t.Fatalf("Validate(healthy) = %v", err)
	}
	if p := Prepare(tr); p.Err != nil {
		t.Fatalf("Prepare(healthy).Err = %v", p.Err)
	}
}

func TestValidateCorruptions(t *testing.T) {
	cases := []struct {
		name   string
		damage func(o *Op)
		want   string
	}{
		{"bad opcode", func(o *Op) { o.Code = isa.Opcode(250) }, "undefined opcode"},
		{"bad unit", func(o *Op) { o.Unit = isa.Unit(isa.NumUnits + 3) }, "functional unit"},
		{"negative parcels", func(o *Op) { o.Parcels = -1 }, "parcel count"},
		{"huge parcels", func(o *Op) { o.Parcels = 3 }, "parcel count"},
		{"bad dst", func(o *Op) { o.Dst = isa.Reg(isa.NumRegs) }, "destination register"},
		{"bad src1", func(o *Op) { o.Src1 = isa.Reg(999) }, "source register"},
		{"bad src2", func(o *Op) { o.Src2 = isa.Reg(-7) }, "source register"},
		{"bad vlen", func(o *Op) { o.VLen = isa.VecLen + 1 }, "vector length"},
	}
	for _, c := range cases {
		tr := preparedTestTrace()
		const at = 2
		c.damage(&tr.Ops[at])
		err := Validate(tr)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate = %v, want error containing %q", c.name, err, c.want)
			continue
		}
		p := Prepare(tr)
		if p.Err == nil || p.ErrIndex != at {
			t.Errorf("%s: Prepare.Err = %v at %d, want error at op %d", c.name, p.Err, p.ErrIndex, at)
		}
	}

	// A negative address is only invalid on memory ops.
	tr := preparedTestTrace()
	tr.Ops[0].Addr = -5 // ALU op: ignored
	if err := Validate(tr); err != nil {
		t.Errorf("negative addr on non-memory op rejected: %v", err)
	}
	tr.Ops[1].Addr = -5 // load: invalid
	if err := Validate(tr); err == nil || !strings.Contains(err.Error(), "negative address") {
		t.Errorf("negative addr on load: Validate = %v", err)
	}
}
