package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"mfup/internal/isa"
)

// Binary trace format. Traces cross process boundaries in two places —
// mfuasm -traceout exports a traced program, mfusim -tracein and
// mfulimits replay one — so the encoding must fail loudly on damage:
// a truncated file, a corrupted opcode, or a register index outside
// the architecture must come back as an error from ReadBinary (or,
// for in-range-but-inconsistent streams, from the validation pass),
// never as an index panic inside a timing model.
//
// Layout (all multi-byte values are varints, so the format is
// byte-order independent):
//
//	magic "MFUT", format version byte
//	uvarint name length, name bytes
//	uvarint op count
//	per op: uvarint PC; bytes Code, Unit; varint Parcels;
//	        varint Dst, Src1, Src2, Addr, Stride, VLen;
//	        flags byte (bit 0 = Taken)
//
// Seq is positional and not stored.

// binaryMagic identifies a binary trace stream.
const binaryMagic = "MFUT"

// binaryVersion is the current format version.
const binaryVersion = 1

// maxBinaryOps bounds the declared op count: a corrupted count field
// must not translate into an attempt to allocate petabytes. The cap
// is far above the longest Livermore trace (loop 14 vectorized is
// ~56k ops; the emulator's own step limit is 50M).
const maxBinaryOps = 1 << 27

// WriteBinary encodes t to w in the binary trace format.
func WriteBinary(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(binaryVersion); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(t.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.Ops))); err != nil {
		return err
	}
	for i := range t.Ops {
		o := &t.Ops[i]
		if err := putUvarint(uint64(o.PC)); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(o.Code)); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(o.Unit)); err != nil {
			return err
		}
		for _, v := range [...]int64{
			int64(o.Parcels), int64(o.Dst), int64(o.Src1), int64(o.Src2),
			o.Addr, o.Stride, int64(o.VLen),
		} {
			if err := putVarint(v); err != nil {
				return err
			}
		}
		var flags byte
		if o.Taken {
			flags |= 1
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a binary trace from r. Every way the stream can
// be damaged — truncation anywhere, a bad magic or version, a
// preposterous op count, values outside their field's range — returns
// an error; the successfully decoded trace additionally passes the
// decode-level validation (Validate), so a trace returned without
// error is safe to hand to any timing model.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", noEOF(err))
	}
	if string(magic[:4]) != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q (not a binary trace)", magic[:4])
	}
	if magic[4] != binaryVersion {
		return nil, fmt.Errorf("trace: unsupported format version %d (want %d)", magic[4], binaryVersion)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", noEOF(err))
	}
	if nameLen > 4096 {
		return nil, fmt.Errorf("trace: name length %d is preposterous", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", noEOF(err))
	}
	nops, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading op count: %w", noEOF(err))
	}
	if nops > maxBinaryOps {
		return nil, fmt.Errorf("trace: op count %d exceeds the format cap %d", nops, maxBinaryOps)
	}
	t := &Trace{Name: string(name)}
	// Grow incrementally rather than trusting the declared count with
	// one huge up-front allocation: a truncated stream then costs
	// memory proportional to its real length, not its claimed one.
	if nops < 1<<16 {
		t.Ops = make([]Op, 0, nops)
	}
	for i := uint64(0); i < nops; i++ {
		o, err := readOp(br, int64(i))
		if err != nil {
			return nil, fmt.Errorf("trace: op %d of %d: %w", i, nops, err)
		}
		t.Ops = append(t.Ops, o)
	}
	if err := Validate(t); err != nil {
		return nil, err
	}
	return t, nil
}

// readOp decodes one op record.
func readOp(br *bufio.Reader, seq int64) (Op, error) {
	var o Op
	o.Seq = seq
	pc, err := binary.ReadUvarint(br)
	if err != nil {
		return o, noEOF(err)
	}
	if pc > 1<<31 {
		return o, fmt.Errorf("pc %d is preposterous", pc)
	}
	o.PC = int(pc)
	code, err := br.ReadByte()
	if err != nil {
		return o, noEOF(err)
	}
	unit, err := br.ReadByte()
	if err != nil {
		return o, noEOF(err)
	}
	var fields [7]int64
	for f := range fields {
		fields[f], err = binary.ReadVarint(br)
		if err != nil {
			return o, noEOF(err)
		}
	}
	flags, err := br.ReadByte()
	if err != nil {
		return o, noEOF(err)
	}
	// Overflow checks before narrowing: a value that wraps its field
	// could slip past validation (parcels 256 would narrow to 0).
	const i16lo, i16hi = -1 << 15, 1<<15 - 1
	if v := fields[0]; v < -1<<7 || v > 1<<7-1 {
		return o, fmt.Errorf("parcels %d overflows its field", v)
	}
	for _, f := range [...]struct {
		name string
		v    int64
	}{{"dst", fields[1]}, {"src1", fields[2]},
		{"src2", fields[3]}, {"vlen", fields[6]}} {
		if f.v < i16lo || f.v > i16hi {
			return o, fmt.Errorf("%s %d overflows its field", f.name, f.v)
		}
	}
	o.Code = isa.Opcode(code)
	o.Unit = isa.Unit(unit)
	o.Parcels = int8(fields[0])
	o.Dst = isa.Reg(fields[1])
	o.Src1 = isa.Reg(fields[2])
	o.Src2 = isa.Reg(fields[3])
	o.Addr = fields[4]
	o.Stride = fields[5]
	o.VLen = int16(fields[6])
	o.Taken = flags&1 != 0
	if flags &^= 1; flags != 0 {
		return o, fmt.Errorf("unknown flag bits %#x", flags)
	}
	return o, nil
}

// noEOF converts a bare io.EOF into io.ErrUnexpectedEOF: inside a
// record, running out of bytes is truncation, not a clean end.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
