package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"mfup/internal/isa"
)

// binaryTestTrace exercises every field of the record format,
// including negative addresses' absence, strides, vector lengths, and
// both parcel sizes.
func binaryTestTrace() *Trace {
	return &Trace{
		Name: "binary-roundtrip",
		Ops: []Op{
			{Seq: 0, PC: 0, Code: isa.OpSAdd, Unit: isa.ScalarAdd, Parcels: 1, Dst: isa.S(1), Src1: isa.S(2), Src2: isa.S(3)},
			{Seq: 1, PC: 1, Code: isa.OpLoadS, Unit: isa.Memory, Parcels: 2, Dst: isa.S(4), Src1: isa.A(1), Src2: isa.NoReg, Addr: 1 << 40},
			{Seq: 2, PC: 2, Code: isa.OpJAZ, Unit: isa.Branch, Parcels: 2, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg, Taken: true},
			{Seq: 3, PC: 3, Code: isa.OpVLoad, Unit: isa.Memory, Parcels: 1, Dst: isa.V(0), Src1: isa.A(2), Src2: isa.NoReg, Addr: 512, Stride: -8, VLen: 64},
			{Seq: 4, PC: 4, Code: isa.OpVFMul, Unit: isa.FloatMul, Parcels: 1, Dst: isa.V(1), Src1: isa.V(0), Src2: isa.V(2), VLen: 17},
		},
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	orig := binaryTestTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name {
		t.Errorf("name = %q, want %q", got.Name, orig.Name)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), orig.Len())
	}
	for i := range orig.Ops {
		if got.Ops[i] != orig.Ops[i] {
			t.Errorf("op %d = %+v, want %+v", i, got.Ops[i], orig.Ops[i])
		}
	}
}

func TestBinaryTruncationEverywhere(t *testing.T) {
	// Cutting the encoding at every possible byte offset must yield a
	// structured error — mostly ErrUnexpectedEOF, never a panic, and
	// never a silently shortened trace.
	orig := binaryTestTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, orig); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	for cut := 0; cut < len(enc); cut++ {
		got, err := ReadBinary(bytes.NewReader(enc[:cut]))
		if err == nil {
			t.Fatalf("cut at %d of %d decoded successfully (%d ops)", cut, len(enc), got.Len())
		}
	}
	if _, err := ReadBinary(bytes.NewReader(enc[:20])); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("mid-stream cut error = %v, want ErrUnexpectedEOF in the chain", err)
	}
}

func TestBinaryRejects(t *testing.T) {
	healthy := func() []byte {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, binaryTestTrace()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cases := []struct {
		name   string
		damage func([]byte) []byte
		want   string
	}{
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, "bad magic"},
		{"bad version", func(b []byte) []byte { b[4] = 99; return b }, "version"},
		{"empty", func(b []byte) []byte { return nil }, "unexpected EOF"},
		{"preposterous name", func(b []byte) []byte {
			// Replace the name-length varint (offset 5) with 0xFFFF...
			return append(append(b[:5:5], 0xff, 0xff, 0xff, 0xff, 0x7f), b[6:]...)
		}, "preposterous"},
	}
	for _, c := range cases {
		_, err := ReadBinary(bytes.NewReader(c.damage(healthy())))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestBinaryRejectsInvalidOps(t *testing.T) {
	// WriteBinary encodes whatever it is given; ReadBinary must refuse
	// streams whose ops fail decode validation.
	bad := binaryTestTrace()
	bad.Ops[1].Unit = isa.Unit(isa.NumUnits + 2)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBinary(bytes.NewReader(buf.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "functional unit") {
		t.Errorf("invalid unit: err = %v", err)
	}
}
