package trace

import "sync"

// Period describes the steady-state loop structure of a trace: a
// prologue, a run of congruent loop-body windows, and an epilogue.
//
// The detector looks for the dynamic footprint of a counted loop: a
// taken backward branch whose instances partition the stream into
// equally sized windows that execute the same static instructions in
// the same order, with every memory operand advancing by a constant
// per-position address stride from one iteration to the next. That is
// exactly the structure the Livermore kernels present to the
// simulators, and it is what makes per-iteration machine behavior
// eventually periodic: once the pipeline reaches steady state, each
// window costs the same number of cycles as the last.
//
// A trace with data-dependent control flow (different window contents
// per iteration, as in LFK 13/14), data-dependent addressing, a
// triangular iteration space (LFK 2/6), or too few iterations has no
// Period; Prepared.Period returns nil and callers fall back to full
// simulation.
type Period struct {
	// Start is the index of the first loop-body window.
	Start int

	// Span is the number of ops in one iteration window.
	Span int

	// Windows is the number of body windows in the trace, including
	// the final fall-through iteration.
	Windows int

	// BranchPC is the static PC of the closing backward branch.
	BranchPC int

	// deltas[pos] is the constant per-iteration address stride of the
	// memory op at window position pos (0 for non-memory positions).
	deltas []int64

	// epiShift[i] is the address stride attributed to epilogue op i:
	// the stride of the final-window position whose address it reads,
	// or 0 when it touches prologue data or fresh addresses.
	epiShift []int64

	src *Prepared

	// slices caches constructed reduced traces by iteration count, so
	// the many machines of a table grid share one construction.
	mu     sync.Mutex
	slices map[int]*Trace
}

// Period returns the trace's steady-state loop structure, or nil when
// none is detectable. The analysis runs once per Prepared and is
// cached; like the decode itself it is safe to request from any
// number of concurrently running machines.
func (p *Prepared) Period() *Period {
	p.periodOnce.Do(func() { p.period = findPeriod(p) })
	return p.period
}

// maxPeriodCandidates bounds how many distinct backward-branch PCs
// the detector tries, most-frequent first: the principal loop branch
// dominates the anchor counts, and nested or irregular loops fail the
// uniform-spacing or congruence checks quickly.
const maxPeriodCandidates = 4

// findPeriod runs the detection over a decoded trace.
func findPeriod(p *Prepared) *Period {
	if p.Err != nil || len(p.Ops) == 0 {
		return nil
	}
	ops := p.Trace.Ops
	// Anchors: indices that begin a new iteration, i.e. the successor
	// of every taken branch whose target does not move forward.
	anchors := map[int][]int{}
	for i := 0; i+1 < len(ops); i++ {
		if p.Ops[i].Flags.Has(FlagBranch|FlagTaken) && ops[i+1].PC <= ops[i].PC {
			pc := ops[i].PC
			anchors[pc] = append(anchors[pc], i+1)
		}
	}
	// Try candidate branch PCs by descending anchor count.
	type cand struct {
		pc int
		as []int
	}
	cands := make([]cand, 0, len(anchors))
	for pc, as := range anchors {
		cands = append(cands, cand{pc, as})
	}
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && len(cands[j].as) > len(cands[j-1].as); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	if len(cands) > maxPeriodCandidates {
		cands = cands[:maxPeriodCandidates]
	}
	for _, c := range cands {
		if pd := tryCandidate(p, c.pc, c.as); pd != nil {
			return pd
		}
	}
	return nil
}

// tryCandidate checks whether the anchors of one backward branch PC
// induce a valid periodic structure and, if so, builds the Period.
func tryCandidate(p *Prepared, pc int, anchors []int) *Period {
	ops := p.Trace.Ops
	if len(anchors) < 2 {
		return nil
	}
	span := anchors[1] - anchors[0]
	if span <= 0 {
		return nil
	}
	for i := 1; i < len(anchors); i++ {
		if anchors[i]-anchors[i-1] != span {
			return nil // non-uniform spacing: nested or irregular loop
		}
	}
	start := anchors[0] - span
	if start < 0 {
		return nil
	}
	// The final iteration falls through its branch instead of taking
	// it, so it contributes no anchor; the body must still be complete.
	windows := len(anchors) + 1
	tail := start + (windows-1)*span
	if tail+span > len(ops) {
		return nil
	}
	// Congruence: every window executes the template's instructions,
	// and each memory position advances by a constant address stride.
	deltas := make([]int64, span)
	for pos := 0; pos < span; pos++ {
		base := &ops[start+pos]
		mem := base.Code.IsMemory()
		if mem && windows > 1 {
			deltas[pos] = ops[start+span+pos].Addr - base.Addr
		}
		for w := 1; w < windows; w++ {
			o := &ops[start+w*span+pos]
			if o.PC != base.PC || o.Code != base.Code || o.Unit != base.Unit ||
				o.Parcels != base.Parcels || o.Dst != base.Dst ||
				o.Src1 != base.Src1 || o.Src2 != base.Src2 ||
				o.Stride != base.Stride || o.VLen != base.VLen {
				return nil
			}
			if o.Taken != base.Taken {
				// Only the closing branch of the final window may
				// differ: it falls through where the others loop back.
				if w != windows-1 || pos != span-1 {
					return nil
				}
			}
			if mem && o.Addr != base.Addr+int64(w)*deltas[pos] {
				return nil
			}
		}
	}
	// Epilogue strides: an epilogue op that reads an address the final
	// window touched inherits that position's stride (it follows the
	// loop's data); any other address is treated as loop-invariant. A
	// final-window address reached with two different strides is
	// ambiguous — reject the structure rather than guess.
	finalAddr := map[int64]int64{}
	for pos := 0; pos < span; pos++ {
		if !ops[start+pos].Code.IsMemory() {
			continue
		}
		a := ops[tail+pos].Addr
		if d, seen := finalAddr[a]; seen && d != deltas[pos] {
			return nil
		}
		finalAddr[a] = deltas[pos]
	}
	epi := ops[tail+span:]
	epiShift := make([]int64, len(epi))
	for i := range epi {
		if epi[i].Code.IsMemory() {
			epiShift[i] = finalAddr[epi[i].Addr]
		}
	}
	return &Period{
		Start:    start,
		Span:     span,
		Windows:  windows,
		BranchPC: pc,
		deltas:   deltas,
		epiShift: epiShift,
		src:      p,
	}
}

// Iterations returns the number of body windows in the source trace.
func (pd *Period) Iterations() int { return pd.Windows }

// tailStart returns the index of the final body window.
func (pd *Period) tailStart() int { return pd.Start + (pd.Windows-1)*pd.Span }

// BankSafe reports whether reduced traces preserve bank assignment on
// a banks-way interleaved memory: removing iterations shifts the tail
// addresses by whole multiples of each position's stride, so the bank
// (address mod banks) survives exactly when every stride is a
// multiple of the bank count.
func (pd *Period) BankSafe(banks int) bool {
	if banks <= 1 {
		return true
	}
	b := int64(banks)
	for _, d := range pd.deltas {
		if d%b != 0 {
			return false
		}
	}
	for _, d := range pd.epiShift {
		if d%b != 0 {
			return false
		}
	}
	return true
}

// Slice returns a reduced trace with k body windows (2 <= k <=
// Windows): the prologue and first k-1 windows verbatim, then the
// source's final window and epilogue with every address pulled back
// by (Windows-k) strides so the reduced tail continues the address
// progression seamlessly. Slices are cached and shared; like any
// trace they are immutable once built.
func (pd *Period) Slice(k int) *Trace {
	if k < 2 || k > pd.Windows {
		return nil
	}
	pd.mu.Lock()
	defer pd.mu.Unlock()
	if t, ok := pd.slices[k]; ok {
		return t
	}
	src := pd.src.Trace.Ops
	tail := pd.tailStart()
	head := pd.Start + (k-1)*pd.Span
	shift := int64(pd.Windows - k)
	out := make([]Op, 0, head+len(src)-tail)
	out = append(out, src[:head]...)
	for i := tail; i < len(src); i++ {
		o := src[i]
		if pos := i - tail; pos < pd.Span {
			o.Addr -= shift * pd.deltas[pos]
		} else {
			o.Addr -= shift * pd.epiShift[pos-pd.Span]
		}
		out = append(out, o)
	}
	for i := range out {
		out[i].Seq = int64(i)
	}
	t := &Trace{Name: pd.src.Trace.Name, Ops: out}
	if pd.slices == nil {
		pd.slices = map[int]*Trace{}
	}
	pd.slices[k] = t
	return t
}

// TailIdentityOK verifies that the reduced trace with k windows
// reproduces the source's tail address-identity structure: for every
// memory op of the final window and epilogue, the backward distance
// to the previous op with the same address — the relation that drives
// store-to-load ordering and memory renaming — matches the source's,
// with distances beyond the reduced trace's history clamped (a
// dependence that far back is timing-inert in every machine model).
// It guards the epilogue stride attribution, which is heuristic where
// the body strides are proven.
func (pd *Period) TailIdentityOK(k int) bool {
	t := pd.Slice(k)
	if t == nil {
		return false
	}
	sliceTail := pd.Start + (k-1)*pd.Span
	cap64 := int64(sliceTail) // history available before the reduced tail
	a := tailIdentity(pd.src.Trace.Ops, pd.tailStart(), cap64)
	b := tailIdentity(t.Ops, sliceTail, cap64)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// tailIdentity computes the capped previous-occurrence distance of
// each memory op from index from on: how many ops back the same
// address was last touched, clamped to cap (also the value for "never").
func tailIdentity(ops []Op, from int, cap64 int64) []int64 {
	last := make(map[int64]int, 64)
	var sig []int64
	for i := range ops {
		if !ops[i].Code.IsMemory() {
			continue
		}
		if i >= from {
			d := cap64
			if j, ok := last[ops[i].Addr]; ok {
				if dd := int64(i - j); dd < d {
					d = dd
				}
			}
			sig = append(sig, d)
		}
		last[ops[i].Addr] = i
	}
	return sig
}
