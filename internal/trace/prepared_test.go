package trace

import (
	"sync"
	"testing"

	"mfup/internal/isa"
)

// preparedTestTrace is a small stream exercising every classification:
// an ALU op, a load, a store, a not-taken conditional branch, a taken
// unconditional branch, and a trailing op behind the taken branch.
func preparedTestTrace() *Trace {
	return &Trace{
		Name: "prepared-test",
		Ops: []Op{
			{Seq: 0, Code: isa.OpSAdd, Unit: isa.ScalarAdd, Dst: isa.S(1), Src1: isa.S(2), Src2: isa.S(3)},
			{Seq: 1, Code: isa.OpLoadS, Unit: isa.Memory, Dst: isa.S(4), Src1: isa.A(1), Src2: isa.NoReg, Addr: 64},
			{Seq: 2, Code: isa.OpStoreS, Unit: isa.Memory, Dst: isa.NoReg, Src1: isa.A(2), Src2: isa.S(4), Addr: 128},
			{Seq: 3, Code: isa.OpJAZ, Unit: isa.Branch, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg, Taken: false},
			{Seq: 4, Code: isa.OpJ, Unit: isa.Branch, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg, Taken: true},
			{Seq: 5, Code: isa.OpAAdd, Unit: isa.AddrAdd, Dst: isa.A(3), Src1: isa.A(4), Src2: isa.A(5)},
		},
	}
}

func TestPrepareFlags(t *testing.T) {
	p := Prepare(preparedTestTrace())
	want := []OpFlags{
		FlagHasDst,
		FlagMemory | FlagLoad | FlagHasDst,
		FlagMemory | FlagStore,
		FlagBranch | FlagConditional,
		FlagBranch | FlagTaken,
		FlagHasDst,
	}
	for i, w := range want {
		if got := p.Ops[i].Flags; got != w {
			t.Errorf("op %d: flags = %b, want %b", i, got, w)
		}
	}
	if p.FirstVector != -1 {
		t.Errorf("FirstVector = %d for a scalar trace, want -1", p.FirstVector)
	}
}

func TestPrepareAddrIDs(t *testing.T) {
	tr := preparedTestTrace()
	// A second load of address 64 must share the first one's id.
	tr.Ops = append(tr.Ops, Op{
		Seq: 6, Code: isa.OpLoadS, Unit: isa.Memory,
		Dst: isa.S(5), Src1: isa.A(1), Src2: isa.NoReg, Addr: 64,
	})
	p := Prepare(tr)
	if p.NumAddrs != 2 {
		t.Fatalf("NumAddrs = %d, want 2 (addresses 64 and 128)", p.NumAddrs)
	}
	wantIDs := []int32{-1, 0, 1, -1, -1, -1, 0}
	for i, w := range wantIDs {
		if got := p.Ops[i].AddrID; got != w {
			t.Errorf("op %d: AddrID = %d, want %d", i, got, w)
		}
	}
	for i := range p.Ops {
		if id := p.Ops[i].AddrID; id >= 0 && int(id) >= p.NumAddrs {
			t.Errorf("op %d: AddrID %d out of range [0,%d)", i, id, p.NumAddrs)
		}
	}
}

func TestPrepareReadsMatchOpReads(t *testing.T) {
	tr := preparedTestTrace()
	p := Prepare(tr)
	var buf [3]isa.Reg
	for i := range tr.Ops {
		want := tr.Ops[i].Reads(buf[:0])
		got := p.Ops[i].Reads()
		if len(got) != len(want) {
			t.Fatalf("op %d: %d reads, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Errorf("op %d read %d: %s, want %s", i, j, got[j], want[j])
			}
		}
	}
}

func TestPrepareFirstVector(t *testing.T) {
	tr := preparedTestTrace()
	tr.Ops = append(tr.Ops, Op{
		Seq: 6, Code: isa.OpVFAdd, Unit: isa.FloatAdd,
		Dst: isa.V(1), Src1: isa.V(2), Src2: isa.V(3), VLen: 64,
	})
	p := Prepare(tr)
	if p.FirstVector != 6 {
		t.Errorf("FirstVector = %d, want 6", p.FirstVector)
	}
	if !p.Ops[6].Flags.Has(FlagVector) {
		t.Error("vector op missing FlagVector")
	}
}

func TestPreparedWindow(t *testing.T) {
	p := Prepare(preparedTestTrace()) // taken branch at index 4, len 6
	cases := []struct{ pos, w, want int }{
		{0, 1, 1},  // capacity bounds the window
		{0, 4, 4},  // not-taken branch at 3 does not cut it short
		{0, 8, 5},  // ends just after the taken branch at 4
		{4, 8, 5},  // window starting on the taken branch holds only it
		{5, 8, 6},  // past the last taken branch: runs to the end
		{6, 8, 6},  // empty window at the end of the trace
	}
	for _, c := range cases {
		if got := p.Window(c.pos, c.w); got != c.want {
			t.Errorf("Window(%d, %d) = %d, want %d", c.pos, c.w, got, c.want)
		}
	}
}

// TestPreparedCachedAndConcurrent exercises the sync.Once cache:
// every concurrent caller must observe the same Prepared pointer.
func TestPreparedCachedAndConcurrent(t *testing.T) {
	tr := preparedTestTrace()
	const goroutines = 8
	got := make([]*Prepared, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			got[g] = tr.Prepared()
		}()
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if got[g] != got[0] {
			t.Fatalf("goroutine %d saw a different Prepared than goroutine 0", g)
		}
	}
	if got[0] != tr.Prepared() {
		t.Error("later Prepared() call returned a different cache")
	}
}
