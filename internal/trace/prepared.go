package trace

import (
	"fmt"
	"sync"

	"mfup/internal/isa"
)

// OpFlags is the decoded classification of one op: every predicate the
// machine models test per cycle, resolved once at preparation time so
// the hot simulation loops never consult the opcode tables.
type OpFlags uint16

// Classification bits.
const (
	FlagBranch      OpFlags = 1 << iota // control transfer
	FlagConditional                     // conditional branch (reads A0)
	FlagTaken                           // branch with a taken outcome
	FlagMemory                          // uses the memory unit
	FlagLoad                            // reads memory
	FlagStore                           // writes memory
	FlagVector                          // vector-extension instruction
	FlagHasDst                          // writes a register (Dst valid)
)

// Has reports whether all bits of x are set.
func (f OpFlags) Has(x OpFlags) bool { return f&x == x }

// maxReads is the largest possible read set: two source registers plus
// A0 for a conditional branch.
const maxReads = 3

// PreparedOp carries the decode-time facts about one op that the
// timing models would otherwise recompute every cycle they re-examine
// a stalled instruction.
type PreparedOp struct {
	reads  [maxReads]isa.Reg
	nreads uint8
	Flags  OpFlags

	// AddrID is a dense index over the trace's distinct memory
	// addresses (-1 for non-memory ops). Machines track per-address
	// state (store-to-load dependences, renamed memory instances) in
	// flat slices indexed by it instead of hashing Op.Addr every
	// access.
	AddrID int32
}

// Reads returns the op's read registers (sources plus A0 for a
// conditional branch). The slice aliases the prepared storage and must
// not be modified.
func (p *PreparedOp) Reads() []isa.Reg { return p.reads[:p.nreads] }

// Prepared is the one-time decode of a Trace: per-op read sets and
// classification flags, plus fetch-window hints. It is immutable after
// Prepare returns and therefore safe to share read-only across any
// number of concurrently running machines.
type Prepared struct {
	// Trace is the decoded trace.
	Trace *Trace

	// Ops holds one decoded entry per Trace.Ops element.
	Ops []PreparedOp

	// FirstVector is the index of the first vector instruction, or -1
	// if the trace is purely scalar. Scalar machines use it to reject
	// vector traces without rescanning the stream on every run.
	FirstVector int

	// NumAddrs is the number of distinct memory addresses in the
	// trace: AddrID values range over [0, NumAddrs).
	NumAddrs int

	// nextTaken[i] is the index of the first taken branch at or after
	// position i, or len(Ops) if there is none. It answers the
	// fetch-buffer question "where does the window starting at i end?"
	// without a scan.
	nextTaken []int32

	// periodOnce guards the lazily computed steady-state loop
	// structure (Period); like the decode itself, the analysis result
	// is immutable and shared.
	periodOnce sync.Once
	period     *Period

	// Err is non-nil when the trace failed validation: an undefined
	// opcode, a functional-unit or register index outside the dense
	// arrays the timing models key by it, a malformed parcel count, or
	// a vector length past the hardware's. ErrIndex is the position of
	// the first invalid op. Machines must refuse a trace with Err set
	// (they surface it as a KindBadTrace SimError) — running it would
	// index out of range deep inside a model.
	Err      error
	ErrIndex int
}

// validateOp checks the decode-level invariants every timing model
// assumes: a defined opcode, Unit within [0, NumUnits) (models index
// their functional-unit pools by it), registers either NoReg or in
// range (scoreboards are dense arrays over Reg), a parcel count of 1
// or 2 (the CRAY-1S instruction sizes), a nonnegative address for
// memory ops, and a vector length within the hardware's VecLen.
func validateOp(o *Op) error {
	switch {
	case !o.Code.Valid():
		return fmt.Errorf("undefined opcode %d", uint8(o.Code))
	case int(o.Unit) >= isa.NumUnits:
		return fmt.Errorf("functional unit %d out of range [0,%d)", uint8(o.Unit), isa.NumUnits)
	case o.Parcels < 0 || o.Parcels > 2:
		// 1 and 2 are the CRAY-1S instruction sizes; 0 is tolerated as
		// "unset" because synthetic traces (tests, workload generators)
		// omit the field and every model treats it as one parcel.
		return fmt.Errorf("parcel count %d out of range [0,2]", o.Parcels)
	case o.Dst != isa.NoReg && !o.Dst.Valid():
		return fmt.Errorf("destination register %d out of range [0,%d)", int(o.Dst), isa.NumRegs)
	case o.Src1 != isa.NoReg && !o.Src1.Valid():
		return fmt.Errorf("source register %d out of range [0,%d)", int(o.Src1), isa.NumRegs)
	case o.Src2 != isa.NoReg && !o.Src2.Valid():
		return fmt.Errorf("source register %d out of range [0,%d)", int(o.Src2), isa.NumRegs)
	case o.Code.IsMemory() && o.Addr < 0:
		return fmt.Errorf("negative address %d", o.Addr)
	case o.VLen < 0 || o.VLen > isa.VecLen:
		return fmt.Errorf("vector length %d out of range [0,%d]", o.VLen, isa.VecLen)
	}
	return nil
}

// Validate checks every op of t against the decode-level invariants
// and returns the first violation (nil for a healthy trace). It is
// the standalone form of the validation Prepare performs.
func Validate(t *Trace) error {
	for i := range t.Ops {
		if err := validateOp(&t.Ops[i]); err != nil {
			return fmt.Errorf("trace %q op %d: %w", t.Name, i, err)
		}
	}
	return nil
}

// Prepare decodes t. Callers that run a trace more than once should
// prefer Trace.Prepared, which caches the result.
func Prepare(t *Trace) *Prepared {
	p := &Prepared{
		Trace:       t,
		Ops:         make([]PreparedOp, len(t.Ops)),
		FirstVector: -1,
		nextTaken:   make([]int32, len(t.Ops)+1),
	}
	addrIDs := make(map[int64]int32)
	for i := range t.Ops {
		o := &t.Ops[i]
		if err := validateOp(o); err != nil {
			// Record the first violation and stop decoding: machines
			// check Err before touching Ops, so the partial decode is
			// never consumed.
			p.Err = fmt.Errorf("trace %q op %d: %w", t.Name, i, err)
			p.ErrIndex = i
			break
		}
		po := &p.Ops[i]
		po.AddrID = -1
		if o.Src1.Valid() {
			po.reads[po.nreads] = o.Src1
			po.nreads++
		}
		if o.Src2.Valid() {
			po.reads[po.nreads] = o.Src2
			po.nreads++
		}
		if o.Code.IsConditional() {
			po.reads[po.nreads] = isa.A0
			po.nreads++
			po.Flags |= FlagConditional
		}
		if o.Code.IsBranch() {
			po.Flags |= FlagBranch
			if o.Taken {
				po.Flags |= FlagTaken
			}
		}
		if o.Code.IsMemory() {
			po.Flags |= FlagMemory
			id, ok := addrIDs[o.Addr]
			if !ok {
				id = int32(len(addrIDs))
				addrIDs[o.Addr] = id
			}
			po.AddrID = id
		}
		if o.Code.IsLoad() {
			po.Flags |= FlagLoad
		}
		if o.Code.IsStore() {
			po.Flags |= FlagStore
		}
		if o.Code.IsVector() {
			po.Flags |= FlagVector
			if p.FirstVector < 0 {
				p.FirstVector = i
			}
		}
		if o.Dst.Valid() {
			po.Flags |= FlagHasDst
		}
	}
	p.NumAddrs = len(addrIDs)
	next := int32(len(t.Ops))
	p.nextTaken[len(t.Ops)] = next
	for i := len(t.Ops) - 1; i >= 0; i-- {
		if p.Ops[i].Flags.Has(FlagBranch | FlagTaken) {
			next = int32(i)
		}
		p.nextTaken[i] = next
	}
	return p
}

// Window returns the end (exclusive) of a fetch buffer of capacity w
// starting at pos: the buffer holds up to w ops but ends early just
// after a taken branch, whose fall-through ops are squashed.
func (p *Prepared) Window(pos, w int) int {
	end := pos + w
	if end > len(p.Ops) {
		end = len(p.Ops)
	}
	if nt := int(p.nextTaken[pos]); nt < end {
		end = nt + 1
	}
	return end
}
