package core

import (
	"strings"
	"testing"

	"mfup/internal/bus"
	"mfup/internal/isa"
	"mfup/internal/limits"
	"mfup/internal/loops"
	"mfup/internal/trace"
)

// limitsActual computes the §4 actual limit of a trace under cfg.
func limitsActual(tr *trace.Trace, cfg Config) float64 {
	return limits.Compute(tr, cfg.Latencies(), limits.Pure).Actual
}

// vop builds a vector trace op.
func (b *builder) vop(code isa.Opcode, dst, s1, s2 isa.Reg, vlen int16) *builder {
	return b.push(trace.Op{Code: code, Dst: dst, Src1: s1, Src2: s2, VLen: vlen})
}

func (b *builder) vload(dst isa.Reg, base int64, stride int64, vlen int16) *builder {
	return b.push(trace.Op{Code: isa.OpVLoad, Dst: dst, Src1: isa.A(1), Src2: isa.NoReg,
		Addr: base, Stride: stride, VLen: vlen})
}

func TestVectorSingleOp(t *testing.T) {
	// One 64-element FloatAdd: issue 0, first element at 6, last
	// element at 6+64 = 70.
	tr := new(builder).vop(isa.OpVFAdd, isa.V(1), isa.V(2), isa.V(3), 64).trace()
	if got := cycles(t, NewVector(M11BR5), tr); got != 70 {
		t.Errorf("vector add = %d cycles, want 70", got)
	}
}

func TestVectorChaining(t *testing.T) {
	// Load (64 elements, first at 11) chained into a multiply: the
	// multiply issues at 12 (chain slot), completes at 12+7+64 = 83.
	tr := new(builder).
		vload(isa.V(1), 100, 1, 64).
		vop(isa.OpVFMul, isa.V(2), isa.V(1), isa.V(1), 64).
		trace()
	if got := cycles(t, NewVector(M11BR5), tr); got != 83 {
		t.Errorf("chained multiply = %d cycles, want 83", got)
	}
}

func TestVectorUnitReservation(t *testing.T) {
	// Two independent 64-element adds share the one float adder: the
	// second cannot start until the first's 64 elements have entered
	// (cycle 64), finishing at 64+6+64 = 134.
	tr := new(builder).
		vop(isa.OpVFAdd, isa.V(1), isa.V(2), isa.V(3), 64).
		vop(isa.OpVFAdd, isa.V(4), isa.V(5), isa.V(6), 64).
		trace()
	if got := cycles(t, NewVector(M11BR5), tr); got != 134 {
		t.Errorf("unit reservation = %d cycles, want 134", got)
	}
	// Distinct units overlap: add and multiply together end at the
	// multiply's 1+7+64 = 72.
	tr2 := new(builder).
		vop(isa.OpVFAdd, isa.V(1), isa.V(2), isa.V(3), 64).
		vop(isa.OpVFMul, isa.V(4), isa.V(5), isa.V(6), 64).
		trace()
	if got := cycles(t, NewVector(M11BR5), tr2); got != 72 {
		t.Errorf("distinct units = %d cycles, want 72", got)
	}
}

func TestVectorWARBlocksRewrite(t *testing.T) {
	// V2 is read by the first add for 64 cycles; rewriting V2 must
	// wait until the readers are done (cycle 64), and finishes at
	// 64+7+64 = 135 — even though it uses a different unit.
	tr := new(builder).
		vop(isa.OpVFAdd, isa.V(1), isa.V(2), isa.V(3), 64).
		vop(isa.OpVFMul, isa.V(2), isa.V(4), isa.V(5), 64).
		trace()
	if got := cycles(t, NewVector(M11BR5), tr); got != 135 {
		t.Errorf("WAR on vector register = %d cycles, want 135", got)
	}
}

func TestVectorElementReadWaitsForFullVector(t *testing.T) {
	// MoveSV (element read) needs the full 64-element result (cycle
	// 70), completing at 71.
	tr := new(builder).
		vop(isa.OpVFAdd, isa.V(1), isa.V(2), isa.V(3), 64).
		vop(isa.OpMoveSV, isa.S(1), isa.V(1), isa.A(2), 0).
		trace()
	if got := cycles(t, NewVector(M11BR5), tr); got != 71 {
		t.Errorf("element read = %d cycles, want 71", got)
	}
}

func TestVectorScalarInterleave(t *testing.T) {
	// Scalar work on other units proceeds under a vector operation's
	// shadow; total time is the vector op's 70.
	tr := new(builder).
		vop(isa.OpVFAdd, isa.V(1), isa.V(2), isa.V(3), 64).
		op(isa.OpAAdd, isa.A(2), isa.A(3), isa.A(4)).
		op(isa.OpSImm, isa.S(1), isa.NoReg, isa.NoReg).
		trace()
	if got := cycles(t, NewVector(M11BR5), tr); got != 70 {
		t.Errorf("scalar under vector shadow = %d cycles, want 70", got)
	}
}

func TestVectorKernelsValidateAndBeatScalar(t *testing.T) {
	// The extension's headline: each vectorized kernel computes the
	// right answers (validated in Trace) and clearly beats the scalar
	// CRAY-like machine on the paper's base timing. The fully
	// elementwise kernels manage 3x or better; LFK 2 and 4, whose
	// codings keep a serial scalar portion (the cascade bookkeeping,
	// the in-order band reduction), must still win by 2x.
	for _, vk := range loops.VectorKernels() {
		sk, err := loops.Get(vk.Number)
		if err != nil {
			t.Fatal(err)
		}
		vtr, err := vk.Trace()
		if err != nil {
			t.Errorf("%s: %v", vk, err)
			continue
		}
		factor := int64(3)
		if vk.Number == 2 || vk.Number == 4 {
			factor = 2
		}
		vec := NewVector(M11BR5).Run(vtr)
		cray := NewBasic(CRAYLike, M11BR5).Run(sk.SharedTrace())
		if vec.Cycles*factor > cray.Cycles {
			t.Errorf("LFK %d: vector %d cycles vs scalar %d — less than %dx",
				vk.Number, vec.Cycles, cray.Cycles, factor)
		}
	}
}

func TestVectorVsSuperscalarCrossover(t *testing.T) {
	// The elementwise kernels favor the vector unit; the reduction
	// (LFK 3) is where a 4-unit RUU machine catches up — its serial
	// 64-lane reduction has no vector parallelism. This pins the
	// qualitative crossover.
	ruu := NewRUU(M11BR5.WithIssue(4, bus.BusN).WithRUU(100))
	vec := NewVector(M11BR5)

	k12, _ := loops.VectorKernel(12)
	s12, _ := loops.Get(12)
	if v, r := vec.Run(k12.MustTrace()).Cycles, ruu.Run(s12.SharedTrace()).Cycles; v >= r {
		t.Errorf("LFK 12: vector (%d) should beat the RUU machine (%d)", v, r)
	}

	k3, _ := loops.VectorKernel(3)
	s3, _ := loops.Get(3)
	if v, r := vec.Run(k3.MustTrace()).Cycles, ruu.Run(s3.SharedTrace()).Cycles; v <= r {
		t.Errorf("LFK 3: the RUU machine (%d) should beat the vector unit (%d) on a reduction", r, v)
	}
}

func TestScalarMachinesRejectVectorTraces(t *testing.T) {
	vtr := new(builder).vop(isa.OpVFAdd, isa.V(1), isa.V(2), isa.V(3), 64).trace()
	for _, m := range []Machine{
		NewBasic(CRAYLike, M11BR5),
		NewMultiIssue(M11BR5.WithIssue(2, bus.BusN)),
		NewMultiIssueOOO(M11BR5.WithIssue(2, bus.BusN)),
		NewRUU(M11BR5.WithIssue(2, bus.BusN).WithRUU(10)),
		NewScoreboard(M11BR5),
		NewTomasulo(M11BR5),
	} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("%s accepted a vector trace", m.Name())
					return
				}
				serr, ok := r.(*SimError)
				if !ok || !strings.Contains(serr.Error(), "scalar machine") {
					t.Errorf("%s: unexpected panic %v", m.Name(), r)
				}
			}()
			m.Run(vtr)
		}()
		// The checked path reports the same condition as an error.
		if _, err := m.RunChecked(vtr, Limits{}); err == nil {
			t.Errorf("%s: RunChecked accepted a vector trace", m.Name())
		}
	}
}

func TestVectorMachineRunsScalarTraces(t *testing.T) {
	// The vector machine's scalar path must agree with CRAY-like
	// issue rules on ordinary traces — spot-check a dependent chain.
	tr := new(builder).
		op(isa.OpFAdd, isa.S(1), isa.S(0), isa.S(0)).
		op(isa.OpFAdd, isa.S(2), isa.S(1), isa.S(1)).
		trace()
	if got := cycles(t, NewVector(M11BR5), tr); got != 12 {
		t.Errorf("scalar chain on vector machine = %d cycles, want 12", got)
	}
	// And on whole kernels it stays within a few percent of CRAYLike
	// (the models differ only in bus-less bookkeeping details).
	for _, k := range loops.All() {
		a := NewBasic(CRAYLike, M11BR5).Run(k.SharedTrace()).Cycles
		b := NewVector(M11BR5).Run(k.SharedTrace()).Cycles
		diff := float64(b-a) / float64(a)
		if diff > 0.05 || diff < -0.05 {
			t.Errorf("%s: vector machine scalar path differs from CRAY-like by %.1f%% (%d vs %d)",
				k, 100*diff, b, a)
		}
	}
}

func TestVectorMachineReusable(t *testing.T) {
	vk, _ := loops.VectorKernel(1)
	tr := vk.MustTrace()
	m := NewVector(M11BR5)
	if a, b := m.Run(tr).Cycles, m.Run(tr).Cycles; a != b {
		t.Errorf("reruns differ: %d vs %d", a, b)
	}
}

func TestVectorMachineRespectsLimits(t *testing.T) {
	// The chain-aware §4 bound is an upper bound for the vector
	// machine too.
	for _, vk := range loops.VectorKernels() {
		tr := vk.MustTrace()
		for _, cfg := range BaseConfigs() {
			lim := limitsActual(tr, cfg)
			r := NewVector(cfg).Run(tr)
			if got := r.IssueRate(); got > lim+1e-9 {
				t.Errorf("%s %s: vector machine rate %.4f exceeds limit %.4f",
					vk, cfg.Name(), got, lim)
			}
		}
	}
}
