package core

import (
	"mfup/internal/events"
	"mfup/internal/fu"
	"mfup/internal/probe"
	"mfup/internal/regfile"
	"mfup/internal/trace"
)

// scoreboard implements the first of §3.3's single-issue dependency
// resolution schemes: the CDC 6600 discipline. An instruction leaves
// the issue stage even when its operands are not yet available — it
// waits at its functional unit — so RAW hazards no longer block
// issue. A WAW hazard still does: the destination register is
// reserved at issue and a second writer may not issue until the first
// completes (the 6600 had no buffering for multiple register
// instances). Functional units remain CRAY-like (fully segmented,
// interleaved memory), per §3.3's framing.
//
// Branches behave as in the base machines: no prediction, the issue
// stage blocks for the branch execution time, and a conditional
// branch additionally waits for A0.
type scoreboard struct {
	cfg   Config
	pool  *fu.Pool
	sb    regfile.Scoreboard
	mem   memScoreboard
	probe probe.Probe
	rec   *events.Recorder
}

// NewScoreboard builds the CDC-6600-style single-issue machine of
// §3.3. It panics on an invalid configuration; NewScoreboardChecked
// is the error-returning form.
func NewScoreboard(cfg Config) Machine {
	m, err := NewScoreboardChecked(cfg)
	if err != nil {
		panic(err.Error())
	}
	return m
}

// NewScoreboardChecked builds the §3.3 scoreboard machine, validating
// the configuration instead of panicking.
func NewScoreboardChecked(cfg Config) (Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pool := cfg.newPool()
	pool.SegmentAll()
	return &scoreboard{cfg: cfg, pool: pool}, nil
}

func (m *scoreboard) Name() string { return "Scoreboard" }

func (m *scoreboard) SetProbe(p probe.Probe) { m.probe = p }

func (m *scoreboard) SetRecorder(r *events.Recorder) { m.rec = r }

func (m *scoreboard) Run(t *trace.Trace) Result { return runUnchecked(m, t) }

// RunChecked simulates t under the limits; issue times are computed
// directly, so only the cycle budget and deadline apply.
func (m *scoreboard) RunChecked(t *trace.Trace, lim Limits) (Result, error) {
	p := t.Prepared()
	if err := scalarOnly("Scoreboard", p); err != nil {
		return Result{}, err
	}
	m.pool.Reset()
	m.sb.Reset()
	m.mem.Reset(p.NumAddrs)
	g := newGuard("Scoreboard", t.Name, lim)

	var acct *probe.Account
	if m.probe != nil {
		m.probe.Begin("Scoreboard", t.Name, 1, 0)
		acct = probe.NewAccount(m.probe, 1)
	}
	if m.rec != nil {
		m.rec.Begin("Scoreboard", t.Name, 1)
	}

	var (
		nextIssue int64
		lastDone  int64
	)
	for i := range t.Ops {
		op := &t.Ops[i]
		po := &p.Ops[i]

		// Issue: one per cycle; WAW blocks, RAW does not. Any gap the
		// destination check opens is by construction a WAW stall — the
		// only hazard this issue discipline has left.
		e := nextIssue
		if po.Flags.Has(trace.FlagHasDst) {
			e = m.sb.EarliestFor(e, op.Dst) // destination reservation only
		}

		if po.Flags.Has(trace.FlagBranch) {
			// The branch reads A0 at the issue stage and blocks it
			// until resolution.
			s := e
			for _, r := range po.Reads() {
				if rdy := m.sb.ReadyAt(r); rdy > s {
					s = rdy
				}
			}
			done := s + int64(m.cfg.BranchLatency)
			nextIssue = done
			if acct != nil {
				acct.Issue(e, probe.ReasonWAW)
				// The A0 wait and the shadow both hold the issue stage
				// on the branch's behalf.
				acct.Advance(done, probe.ReasonBranch)
				m.probe.BranchResolve(done)
			}
			if m.rec != nil {
				m.rec.RecordIssue(op.Seq, e)
				m.rec.RecordBranchResolve(op.Seq, done)
			}
			if done > lastDone {
				lastDone = done
			}
			if err := g.Over(lastDone, int64(i)); err != nil {
				return Result{}, err
			}
			continue
		}

		// Execution begins at the unit once operands arrive.
		s := e
		for _, r := range po.Reads() {
			if rdy := m.sb.ReadyAt(r); rdy > s {
				s = rdy
			}
		}
		s = m.pool.EarliestAccept(op.Unit, s)
		if po.Flags.Has(trace.FlagLoad) {
			s = m.mem.EarliestLoad(po.AddrID, s)
		}
		done := m.pool.Accept(op.Unit, s)

		if po.Flags.Has(trace.FlagHasDst) {
			m.sb.SetReady(op.Dst, done)
		}
		if po.Flags.Has(trace.FlagStore) {
			m.mem.Store(po.AddrID, done)
		}
		if acct != nil {
			acct.Issue(e, probe.ReasonWAW)
			m.probe.Writeback(done, op.Unit, done-s)
		}
		if m.rec != nil {
			// The 6600 discipline: issue at e, execution from operand
			// arrival s, writeback at completion.
			m.rec.RecordIssue(op.Seq, e)
			m.rec.RecordExec(op.Seq, s, op.Unit, done-s)
			m.rec.RecordWriteback(op.Seq, done, op.Unit)
		}
		if done > lastDone {
			lastDone = done
		}
		if err := g.Over(lastDone, int64(i)); err != nil {
			return Result{}, err
		}
		if err := g.Tick(lastDone, int64(i)); err != nil {
			return Result{}, err
		}
		nextIssue = e + 1
	}
	if m.probe != nil {
		m.probe.End(lastDone)
	}
	if m.rec != nil {
		m.rec.End(lastDone)
	}
	return Result{
		Machine:      m.Name(),
		Trace:        t.Name,
		Instructions: int64(len(t.Ops)),
		Cycles:       lastDone,
	}, nil
}

// machineConfig exposes the configuration to the extrapolation engine.
func (m *scoreboard) machineConfig() Config { return m.cfg }
