package core

import (
	"sync"
	"testing"

	"mfup/internal/bus"
	"mfup/internal/loops"
)

// TestSharedTraceConcurrentMachines exercises the package's
// concurrency contract under the race detector: one Trace (and its
// prepared decode cache, initialized lazily by whichever machine gets
// there first) shared by many machine instances running concurrently.
// Every concurrent run must report the same cycle count as a serial
// run of the same model.
func TestSharedTraceConcurrentMachines(t *testing.T) {
	tr := loops.All()[0].SharedTrace()
	cfg := M11BR5
	makers := []func() Machine{
		func() Machine { return NewBasic(CRAYLike, cfg) },
		func() Machine { return NewMultiIssue(cfg.WithIssue(4, bus.BusN)) },
		func() Machine { return NewMultiIssueOOO(cfg.WithIssue(4, bus.Bus1)) },
		func() Machine { return NewScoreboard(cfg) },
		func() Machine { return NewTomasulo(cfg) },
		func() Machine { return NewRUU(cfg.WithIssue(2, bus.BusN).WithRUU(20)) },
	}
	want := make([]Result, len(makers))
	for i, mk := range makers {
		want[i] = mk().Run(tr)
	}

	const repeats = 4
	got := make([]Result, len(makers)*repeats)
	var wg sync.WaitGroup
	for rep := 0; rep < repeats; rep++ {
		for i, mk := range makers {
			wg.Add(1)
			go func() {
				defer wg.Done()
				got[rep*len(makers)+i] = mk().Run(tr)
			}()
		}
	}
	wg.Wait()

	for rep := 0; rep < repeats; rep++ {
		for i := range makers {
			g := got[rep*len(makers)+i]
			if g != want[i] {
				t.Errorf("machine %d rep %d: concurrent result %+v != serial %+v", i, rep, g, want[i])
			}
		}
	}
}

// TestMachineReusableAfterRun checks the other half of the contract:
// a single machine instance, used serially, is reusable — Run resets
// all state, so back-to-back runs agree.
func TestMachineReusableAfterRun(t *testing.T) {
	tr := loops.All()[0].SharedTrace()
	cfg := M5BR2
	machines := []Machine{
		NewBasic(Simple, cfg),
		NewMultiIssue(cfg.WithIssue(2, bus.BusN)),
		NewMultiIssueOOO(cfg.WithIssue(2, bus.BusN)),
		NewScoreboard(cfg),
		NewTomasulo(cfg),
		NewRUU(cfg.WithIssue(1, bus.BusN).WithRUU(10)),
	}
	for _, m := range machines {
		first := m.Run(tr)
		second := m.Run(tr)
		if first != second {
			t.Errorf("%s: repeated runs differ: %+v then %+v", m.Name(), first, second)
		}
	}
}
