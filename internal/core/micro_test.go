package core

import (
	"testing"

	"mfup/internal/bus"
	"mfup/internal/isa"
	"mfup/internal/loops"
	"mfup/internal/trace"
)

// builder assembles synthetic traces for exact-cycle tests.
type builder struct {
	ops []trace.Op
}

func (b *builder) push(op trace.Op) *builder {
	op.Seq = int64(len(b.ops))
	op.PC = len(b.ops)
	op.Unit = op.Code.Unit()
	op.Parcels = int8(op.Code.Parcels())
	b.ops = append(b.ops, op)
	return b
}

func (b *builder) op(code isa.Opcode, dst, s1, s2 isa.Reg) *builder {
	return b.push(trace.Op{Code: code, Dst: dst, Src1: s1, Src2: s2})
}

func (b *builder) branch(code isa.Opcode, taken bool) *builder {
	return b.push(trace.Op{Code: code, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg, Taken: taken})
}

func (b *builder) load(dst isa.Reg, addr int64) *builder {
	return b.push(trace.Op{Code: isa.OpLoadS, Dst: dst, Src1: isa.A(1), Src2: isa.NoReg, Addr: addr})
}

func (b *builder) store(base, data isa.Reg, addr int64) *builder {
	return b.push(trace.Op{Code: isa.OpStoreS, Dst: isa.NoReg, Src1: base, Src2: data, Addr: addr})
}

func (b *builder) trace() *trace.Trace { return &trace.Trace{Name: "micro", Ops: b.ops} }

func cycles(t *testing.T, m Machine, tr *trace.Trace) int64 {
	t.Helper()
	r := m.Run(tr)
	if r.Instructions != int64(len(tr.Ops)) {
		t.Fatalf("%s: counted %d instructions, trace has %d", m.Name(), r.Instructions, len(tr.Ops))
	}
	return r.Cycles
}

// ---------------------------------------------------------------------
// Single-issue machines (§3).

func TestCRAYLikeSingleOp(t *testing.T) {
	tr := new(builder).op(isa.OpFAdd, isa.S(1), isa.S(0), isa.S(0)).trace()
	if got := cycles(t, NewBasic(CRAYLike, M11BR5), tr); got != 6 {
		t.Errorf("one FloatAdd = %d cycles, want 6", got)
	}
}

func TestCRAYLikeSegmentedSameUnit(t *testing.T) {
	// Two independent FloatAdds: issue at 0 and 1, finish at 6 and 7.
	tr := new(builder).
		op(isa.OpFAdd, isa.S(1), isa.S(0), isa.S(0)).
		op(isa.OpFAdd, isa.S(2), isa.S(0), isa.S(0)).
		trace()
	if got := cycles(t, NewBasic(CRAYLike, M11BR5), tr); got != 7 {
		t.Errorf("two independent FloatAdds = %d cycles, want 7", got)
	}
}

func TestCRAYLikeRAWChain(t *testing.T) {
	// Dependent adds serialize on the 6-cycle latency: 0->6->12.
	tr := new(builder).
		op(isa.OpFAdd, isa.S(1), isa.S(0), isa.S(0)).
		op(isa.OpFAdd, isa.S(2), isa.S(1), isa.S(1)).
		trace()
	if got := cycles(t, NewBasic(CRAYLike, M11BR5), tr); got != 12 {
		t.Errorf("dependent FloatAdds = %d cycles, want 12", got)
	}
}

func TestCRAYLikeWAWBlocksIssue(t *testing.T) {
	// The transfer writes the register the add has reserved: it
	// cannot issue until the add's result arrives at cycle 6, and
	// completes at 7.
	tr := new(builder).
		op(isa.OpFAdd, isa.S(1), isa.S(0), isa.S(0)).
		op(isa.OpSImm, isa.S(1), isa.NoReg, isa.NoReg).
		trace()
	if got := cycles(t, NewBasic(CRAYLike, M11BR5), tr); got != 7 {
		t.Errorf("WAW pair = %d cycles, want 7", got)
	}
}

func TestNonSegmentedUnitBusy(t *testing.T) {
	// Same two independent FloatAdds, but the adder is not pipelined:
	// the second enters at 6 and finishes at 12.
	tr := new(builder).
		op(isa.OpFAdd, isa.S(1), isa.S(0), isa.S(0)).
		op(isa.OpFAdd, isa.S(2), isa.S(0), isa.S(0)).
		trace()
	if got := cycles(t, NewBasic(NonSegmented, M11BR5), tr); got != 12 {
		t.Errorf("NonSegmented FloatAdds = %d cycles, want 12", got)
	}
}

func TestMemoryInterleavingDifference(t *testing.T) {
	// Two independent loads. Serial memory: 11 + 11 = 22. Interleaved
	// (NonSegmented machine): second load starts at 1, finishes 12.
	tr := new(builder).load(isa.S(1), 100).load(isa.S(2), 200).trace()
	if got := cycles(t, NewBasic(SerialMemory, M11BR5), tr); got != 22 {
		t.Errorf("SerialMemory loads = %d cycles, want 22", got)
	}
	if got := cycles(t, NewBasic(NonSegmented, M11BR5), tr); got != 12 {
		t.Errorf("NonSegmented loads = %d cycles, want 12", got)
	}
}

func TestSimpleMachineExclusiveExecution(t *testing.T) {
	// The Simple machine never overlaps execution: a FloatAdd then an
	// independent transfer finish at 6 and 7 even though distinct
	// units are involved; the CRAY-like machine finishes the transfer
	// at cycle 2, inside the add's shadow.
	tr := new(builder).
		op(isa.OpFAdd, isa.S(1), isa.S(0), isa.S(0)).
		op(isa.OpSImm, isa.S(2), isa.NoReg, isa.NoReg).
		trace()
	if got := cycles(t, NewBasic(Simple, M11BR5), tr); got != 7 {
		t.Errorf("Simple = %d cycles, want 7", got)
	}
	if got := cycles(t, NewBasic(CRAYLike, M11BR5), tr); got != 6 {
		t.Errorf("CRAY-like = %d cycles, want 6", got)
	}
}

func TestBranchBlocksIssue(t *testing.T) {
	// An untaken branch with A0 ready holds the issue stage for the
	// branch time; the following add runs 5..11 (BR5) or 2..8 (BR2).
	tr := new(builder).
		branch(isa.OpJAN, false).
		op(isa.OpFAdd, isa.S(1), isa.S(0), isa.S(0)).
		trace()
	if got := cycles(t, NewBasic(CRAYLike, M11BR5), tr); got != 11 {
		t.Errorf("BR5 = %d cycles, want 11", got)
	}
	if got := cycles(t, NewBasic(CRAYLike, M11BR2), tr); got != 8 {
		t.Errorf("BR2 = %d cycles, want 8", got)
	}
}

func TestConditionalBranchWaitsForA0(t *testing.T) {
	// AddrAdd writes A0 at cycle 2; the branch issues then and blocks
	// until 7; the final add runs 7..13.
	tr := new(builder).
		op(isa.OpAAdd, isa.A0, isa.A(1), isa.A(2)).
		branch(isa.OpJAN, false).
		op(isa.OpFAdd, isa.S(1), isa.S(0), isa.S(0)).
		trace()
	if got := cycles(t, NewBasic(CRAYLike, M11BR5), tr); got != 13 {
		t.Errorf("cycles = %d, want 13", got)
	}
}

func TestUnconditionalBranchIgnoresA0(t *testing.T) {
	// OpJ does not read A0, so a pending A0 write does not delay it.
	tr := new(builder).
		op(isa.OpAAdd, isa.A0, isa.A(1), isa.A(2)). // A0 busy until 2
		branch(isa.OpJ, true).
		trace()
	// J issues at 1 (in-order, one per cycle), resolves at 6.
	if got := cycles(t, NewBasic(CRAYLike, M11BR5), tr); got != 6 {
		t.Errorf("cycles = %d, want 6", got)
	}
}

func TestMemoryLatencyConfig(t *testing.T) {
	tr := new(builder).load(isa.S(1), 10).trace()
	if got := cycles(t, NewBasic(CRAYLike, M11BR5), tr); got != 11 {
		t.Errorf("M11 load = %d cycles, want 11", got)
	}
	if got := cycles(t, NewBasic(CRAYLike, M5BR5), tr); got != 5 {
		t.Errorf("M5 load = %d cycles, want 5", got)
	}
}

// ---------------------------------------------------------------------
// Multiple issue, in-order (§5.1).

func TestMultiIssueSameCycle(t *testing.T) {
	// Distinct units, no dependencies, two stations: both issue at
	// cycle 0; cycles = FloatMul latency 7. One station: FMul at 0,
	// FAdd at 1 from the next buffer, finishing 7.
	tr := new(builder).
		op(isa.OpFMul, isa.S(1), isa.S(0), isa.S(0)).
		op(isa.OpFAdd, isa.S(2), isa.S(0), isa.S(0)).
		trace()
	two := cycles(t, NewMultiIssue(M11BR5.WithIssue(2, bus.BusN)), tr)
	if two != 7 {
		t.Errorf("2 stations = %d cycles, want 7", two)
	}
}

func TestMultiIssueDependentNotSameCycle(t *testing.T) {
	// The second op reads the first's result: same-cycle issue is
	// impossible; it waits for cycle 6 and completes at 13.
	tr := new(builder).
		op(isa.OpFAdd, isa.S(1), isa.S(0), isa.S(0)).
		op(isa.OpFMul, isa.S(2), isa.S(1), isa.S(1)).
		trace()
	if got := cycles(t, NewMultiIssue(M11BR5.WithIssue(2, bus.BusN)), tr); got != 13 {
		t.Errorf("dependent pair = %d cycles, want 13", got)
	}
}

func TestMultiIssueInOrderBlocking(t *testing.T) {
	// [blocked-by-RAW, independent]: the independent op must NOT
	// bypass the blocked one under sequential issue.
	tr := new(builder).
		op(isa.OpRecip, isa.S(1), isa.S(0), isa.NoReg). // done at 14
		op(isa.OpFMul, isa.S(2), isa.S(1), isa.S(1)).   // RAW: issues at 14
		op(isa.OpSImm, isa.S(3), isa.NoReg, isa.NoReg). // independent but behind
		trace()
	got := cycles(t, NewMultiIssue(M11BR5.WithIssue(3, bus.BusN)), tr)
	// Recip at 0 (done 14), FMul at 14 (done 21), SImm at 14 (same
	// cycle, station 2, done 15): total 21.
	if got != 21 {
		t.Errorf("in-order blocking = %d cycles, want 21", got)
	}
}

func TestMultiIssueBufferRefill(t *testing.T) {
	// Four independent ops in two unit classes, two stations: group
	// {FAdd, FMul} issues together at cycle 0; the buffer refills and
	// group {FAdd, FMul} issues at cycle 1; the last FMul completes at
	// 1 + 7 = 8.
	b := new(builder).
		op(isa.OpFAdd, isa.S(1), isa.S(0), isa.S(0)).
		op(isa.OpFMul, isa.S(2), isa.S(0), isa.S(0)).
		op(isa.OpFAdd, isa.S(3), isa.S(0), isa.S(0)).
		op(isa.OpFMul, isa.S(4), isa.S(0), isa.S(0))
	got := cycles(t, NewMultiIssue(M11BR5.WithIssue(2, bus.BusN)), b.trace())
	if got != 8 {
		t.Errorf("refill pattern = %d cycles, want 8", got)
	}
}

func TestMultiIssueOneUnitPerClass(t *testing.T) {
	// The machine has exactly one transfer unit; even with plenty of
	// issue stations, back-to-back transfers enter it one per cycle.
	b := new(builder)
	for i := 1; i <= 4; i++ {
		b.op(isa.OpSImm, isa.S(i), isa.NoReg, isa.NoReg)
	}
	got := cycles(t, NewMultiIssue(M11BR5.WithIssue(4, bus.BusN)), b.trace())
	if got != 4 { // issue 0,1,2,3; done 1,2,3,4
		t.Errorf("transfer stream = %d cycles, want 4", got)
	}
}

func TestMultiIssueTakenBranchEndsBuffer(t *testing.T) {
	// [FAdd, JAN taken, FAdd]: the taken branch truncates the buffer,
	// the next fetch waits for resolution at 0+5; last add runs 5..11.
	tr := new(builder).
		op(isa.OpFAdd, isa.S(1), isa.S(0), isa.S(0)).
		branch(isa.OpJAN, true).
		op(isa.OpFAdd, isa.S(2), isa.S(0), isa.S(0)).
		trace()
	if got := cycles(t, NewMultiIssue(M11BR5.WithIssue(8, bus.BusN)), tr); got != 11 {
		t.Errorf("taken branch = %d cycles, want 11", got)
	}
}

func TestMultiIssueUntakenBranchMidBuffer(t *testing.T) {
	// An untaken branch inside the buffer delays its successors until
	// resolution, but the buffer is not refetched.
	tr := new(builder).
		branch(isa.OpJAN, false).
		op(isa.OpSImm, isa.S(1), isa.NoReg, isa.NoReg).
		trace()
	// Branch at 0, resolution 5, transfer at 5, done 6.
	if got := cycles(t, NewMultiIssue(M11BR5.WithIssue(2, bus.BusN)), tr); got != 6 {
		t.Errorf("untaken branch = %d cycles, want 6", got)
	}
}

func TestMultiIssueResultBusConflict(t *testing.T) {
	// FMul at 0 completes at 7; FMul at 1 completes at 8; the FAdd
	// would issue at 1 and complete at 7 — colliding with the first
	// result on a single bus, and at 8 with the second, so it slides
	// to issue at 3 (done 9). With per-station busses there is no
	// conflict: FAdd issues at 1, cycles = 8.
	tr := new(builder).
		op(isa.OpFMul, isa.S(1), isa.S(0), isa.S(0)).
		op(isa.OpFMul, isa.S(2), isa.S(0), isa.S(0)).
		op(isa.OpFAdd, isa.S(3), isa.S(0), isa.S(0)).
		trace()
	oneBus := cycles(t, NewMultiIssue(M11BR5.WithIssue(3, bus.Bus1)), tr)
	nBus := cycles(t, NewMultiIssue(M11BR5.WithIssue(3, bus.BusN)), tr)
	if nBus != 8 {
		t.Errorf("N-Bus = %d cycles, want 8", nBus)
	}
	if oneBus != 9 {
		t.Errorf("1-Bus = %d cycles, want 9", oneBus)
	}
}

func TestStoresAndBranchesSkipResultBus(t *testing.T) {
	// A store and a branch produce no register result; on a 1-Bus
	// machine they must not occupy result slots. Two stores complete
	// at the same time as a load's result without conflict.
	tr := new(builder).
		push(trace.Op{Code: isa.OpStoreS, Dst: isa.NoReg, Src1: isa.A(1), Src2: isa.S(0), Addr: 1}).
		push(trace.Op{Code: isa.OpStoreS, Dst: isa.NoReg, Src1: isa.A(1), Src2: isa.S(0), Addr: 2}).
		trace()
	// Both stores pipeline through interleaved memory: 0..11, 1..12.
	if got := cycles(t, NewMultiIssue(M11BR5.WithIssue(2, bus.Bus1)), tr); got != 12 {
		t.Errorf("stores on 1-Bus = %d cycles, want 12", got)
	}
}

// ---------------------------------------------------------------------
// Multiple issue, out-of-order (§5.2).

func TestOOOBypassesBlockedInstruction(t *testing.T) {
	// [Recip (14), FMul dep on it, Load independent], one buffer of 3.
	// In-order: the load trails the FMul (issues at 14, done 25).
	// Out-of-order: the load issues at 0 and is long done; the FMul's
	// completion at 21 dominates.
	tr := new(builder).
		op(isa.OpRecip, isa.S(1), isa.S(0), isa.NoReg).
		op(isa.OpFMul, isa.S(2), isa.S(1), isa.S(1)).
		load(isa.S(3), 100).
		trace()
	inOrder := cycles(t, NewMultiIssue(M11BR5.WithIssue(3, bus.BusN)), tr)
	ooo := cycles(t, NewMultiIssueOOO(M11BR5.WithIssue(3, bus.BusN)), tr)
	if inOrder != 25 {
		t.Errorf("in-order = %d cycles, want 25", inOrder)
	}
	if ooo != 21 {
		t.Errorf("out-of-order = %d cycles, want 21", ooo)
	}
}

func TestOOORespectsWAWInBuffer(t *testing.T) {
	// [Recip S0 (from earlier group), FMul S2 <- S0, SImm S2]: the
	// transfer writes S2, which the earlier *unissued* FMul also
	// writes; it may not issue ahead of it.
	tr := new(builder).
		op(isa.OpRecip, isa.S(0), isa.S(4), isa.NoReg).
		op(isa.OpFMul, isa.S(2), isa.S(0), isa.S(0)).
		op(isa.OpSImm, isa.S(2), isa.NoReg, isa.NoReg).
		trace()
	// Group 1 = [Recip] (w=2 puts FMul in it too: use w=2 so groups
	// are [Recip, FMul], [SImm]? No: we want FMul and SImm in one
	// buffer. Use w=3: all in one buffer. Recip issues at 0 (done
	// 14); FMul RAW-waits until 14 (done 21); SImm WAW vs unissued
	// FMul until 14; at 14 FMul issues, SImm sees the scoreboard
	// reservation (21) and issues at 21, done 22.
	got := cycles(t, NewMultiIssueOOO(M11BR5.WithIssue(3, bus.BusN)), tr)
	if got != 22 {
		t.Errorf("WAW in buffer = %d cycles, want 22", got)
	}
}

func TestOOORespectsRAWInBuffer(t *testing.T) {
	// The consumer of an unissued producer must wait even if its own
	// resources are free.
	tr := new(builder).
		op(isa.OpRecip, isa.S(1), isa.S(0), isa.NoReg). // done 14
		op(isa.OpFAdd, isa.S(2), isa.S(1), isa.S(1)).   // needs S1
		trace()
	got := cycles(t, NewMultiIssueOOO(M11BR5.WithIssue(2, bus.BusN)), tr)
	if got != 20 { // 14 + 6
		t.Errorf("RAW in buffer = %d cycles, want 20", got)
	}
}

func TestOOONoIssuePastBranch(t *testing.T) {
	// No speculation: the op after an unresolved branch waits for
	// resolution even though it is independent.
	tr := new(builder).
		branch(isa.OpJAN, false).
		op(isa.OpSImm, isa.S(1), isa.NoReg, isa.NoReg).
		trace()
	got := cycles(t, NewMultiIssueOOO(M11BR5.WithIssue(2, bus.BusN)), tr)
	if got != 6 { // branch 0..5, transfer 5..6
		t.Errorf("op crossed a branch = %d cycles, want 6", got)
	}
}

func TestOOOBranchWaitsToBeOldest(t *testing.T) {
	// The branch may not issue (and resolve) before older unissued
	// instructions, or a taken branch would squash work that must
	// architecturally complete.
	tr := new(builder).
		op(isa.OpRecip, isa.S(1), isa.S(0), isa.NoReg). // issues 0, done 14
		op(isa.OpFAdd, isa.S(2), isa.S(1), isa.S(1)).   // issues 14
		branch(isa.OpJAN, true).                        // may not pass the FAdd
		trace()
	got := cycles(t, NewMultiIssueOOO(M11BR5.WithIssue(3, bus.BusN)), tr)
	// FAdd issues at 14; branch at 15, resolves 20; FAdd done 20.
	if got != 20 {
		t.Errorf("branch reorder = %d cycles, want 20", got)
	}
}

// ---------------------------------------------------------------------
// RUU machine (§5.3).

func TestRUURenamesWAW(t *testing.T) {
	// [Recip S1, SImm S1, FAdd S3 <- S1]: renaming lets the transfer
	// complete under the reciprocal's shadow and feeds the add the
	// *newer* instance; total time is the reciprocal's 15 cycles
	// (issue 0, dispatch 1, done 15), not a WAW-serialized chain.
	tr := new(builder).
		op(isa.OpRecip, isa.S(1), isa.S(0), isa.NoReg).
		op(isa.OpSImm, isa.S(1), isa.NoReg, isa.NoReg).
		op(isa.OpFAdd, isa.S(3), isa.S(1), isa.S(1)).
		trace()
	got := cycles(t, NewRUU(M11BR5.WithIssue(4, bus.BusN).WithRUU(8)), tr)
	if got != 15 {
		t.Errorf("RUU WAW = %d cycles, want 15", got)
	}
	// The CRAY-like machine, by contrast, WAW-blocks the transfer
	// until 14 and the add until 15, finishing at 21.
	if got := cycles(t, NewBasic(CRAYLike, M11BR5), tr); got != 21 {
		t.Errorf("CRAY-like WAW = %d cycles, want 21", got)
	}
}

func TestRUUBypassFeedsDependent(t *testing.T) {
	// Producer (transfer, done at 2) wakes the consumer, which
	// dispatches the same cycle the result returns and completes at 8.
	tr := new(builder).
		op(isa.OpSImm, isa.S(1), isa.NoReg, isa.NoReg).
		op(isa.OpFAdd, isa.S(2), isa.S(1), isa.S(1)).
		trace()
	got := cycles(t, NewRUU(M11BR5.WithIssue(2, bus.BusN).WithRUU(8)), tr)
	if got != 8 {
		t.Errorf("bypass chain = %d cycles, want 8", got)
	}
}

func TestRUUBranchReadsA0ThroughBypass(t *testing.T) {
	// AddrAdd -> A0 broadcasts at 3; the branch issues at 3 and
	// resolves at 8; the following transfer issues at 8, dispatches 9,
	// completes 10.
	tr := new(builder).
		op(isa.OpAAdd, isa.A0, isa.A(1), isa.A(2)).
		branch(isa.OpJAN, false).
		op(isa.OpSImm, isa.S(1), isa.NoReg, isa.NoReg).
		trace()
	got := cycles(t, NewRUU(M11BR5.WithIssue(2, bus.BusN).WithRUU(8)), tr)
	if got != 10 {
		t.Errorf("branch through RUU = %d cycles, want 10", got)
	}
}

func TestRUUFullStallsIssue(t *testing.T) {
	// With one slot, every instruction waits for its predecessor to
	// commit; with eight slots, the same independent transfers
	// pipeline. The trace is long enough that the difference is
	// unambiguous.
	b := new(builder)
	for i := 0; i < 8; i++ {
		b.op(isa.OpFAdd, isa.S(i%7), isa.S(7), isa.S(7))
	}
	tr := b.trace()
	tiny := cycles(t, NewRUU(M11BR5.WithIssue(1, bus.Bus1).WithRUU(1)), tr)
	roomy := cycles(t, NewRUU(M11BR5.WithIssue(1, bus.Bus1).WithRUU(8)), tr)
	if tiny <= roomy {
		t.Errorf("RUU size had no effect: size 1 = %d, size 8 = %d", tiny, roomy)
	}
}

func TestRUU1BusDispatchThroughput(t *testing.T) {
	// 20 independent ops spread over four unit classes: a 1-Bus RUU
	// dispatches one per cycle (>= 20 cycles); a 4-bank N-Bus RUU
	// dispatches up to four per cycle, one into each unit.
	b := new(builder)
	for i := 0; i < 5; i++ {
		b.op(isa.OpFAdd, isa.S(1+i%3), isa.S(0), isa.S(0))
		b.op(isa.OpFMul, isa.S(4+i%3), isa.S(0), isa.S(0))
		b.op(isa.OpAAdd, isa.A(1+i%3), isa.A(0), isa.A(0))
		b.op(isa.OpSAdd, isa.S(7), isa.S(0), isa.S(0))
	}
	tr := b.trace()
	one := cycles(t, NewRUU(M11BR5.WithIssue(4, bus.Bus1).WithRUU(40)), tr)
	four := cycles(t, NewRUU(M11BR5.WithIssue(4, bus.BusN).WithRUU(40)), tr)
	if one < 20 {
		t.Errorf("1-Bus dispatched faster than one per cycle: %d cycles for 20 ops", one)
	}
	if four*2 >= one {
		t.Errorf("N-Bus (%d cycles) not substantially faster than 1-Bus (%d cycles)", four, one)
	}
}

func TestRUUInstructionCountIncludesBranches(t *testing.T) {
	tr := new(builder).
		op(isa.OpSImm, isa.S(1), isa.NoReg, isa.NoReg).
		branch(isa.OpJ, true).
		op(isa.OpSImm, isa.S(2), isa.NoReg, isa.NoReg).
		trace()
	r := NewRUU(M11BR5.WithIssue(2, bus.BusN).WithRUU(8)).Run(tr)
	if r.Instructions != 3 {
		t.Errorf("instructions = %d, want 3", r.Instructions)
	}
}

// ---------------------------------------------------------------------
// Cross-machine and reuse properties.

func TestMachinesAreReusable(t *testing.T) {
	// Running the same machine twice must give identical results:
	// Run fully resets state.
	tr := new(builder).
		op(isa.OpFAdd, isa.S(1), isa.S(0), isa.S(0)).
		op(isa.OpFMul, isa.S(2), isa.S(1), isa.S(1)).
		branch(isa.OpJAN, false).
		load(isa.S(3), 100).
		trace()
	machines := []Machine{
		NewBasic(Simple, M11BR5),
		NewBasic(SerialMemory, M11BR5),
		NewBasic(NonSegmented, M11BR5),
		NewBasic(CRAYLike, M11BR5),
		NewMultiIssue(M11BR5.WithIssue(4, bus.Bus1)),
		NewMultiIssueOOO(M11BR5.WithIssue(4, bus.BusN)),
		NewRUU(M11BR5.WithIssue(2, bus.BusN).WithRUU(10)),
	}
	for _, m := range machines {
		a := m.Run(tr).Cycles
		b := m.Run(tr).Cycles
		if a != b {
			t.Errorf("%s: second run %d cycles, first %d", m.Name(), b, a)
		}
	}
}

func TestEmptyTraceRuns(t *testing.T) {
	tr := &trace.Trace{Name: "empty"}
	for _, m := range []Machine{
		NewBasic(CRAYLike, M11BR5),
		NewMultiIssue(M11BR5.WithIssue(2, bus.BusN)),
		NewMultiIssueOOO(M11BR5.WithIssue(2, bus.BusN)),
		NewRUU(M11BR5.WithIssue(2, bus.BusN).WithRUU(8)),
	} {
		r := m.Run(tr)
		if r.Instructions != 0 || r.Cycles != 0 {
			t.Errorf("%s on empty trace: %+v", m.Name(), r)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"basic zero memory":    func() { NewBasic(CRAYLike, Config{MemLatency: 0, BranchLatency: 5}) },
		"multi zero units":     func() { NewMultiIssue(Config{MemLatency: 11, BranchLatency: 5}) },
		"ooo zero units":       func() { NewMultiIssueOOO(Config{MemLatency: 11, BranchLatency: 5}) },
		"ruu undersized":       func() { NewRUU(Config{MemLatency: 11, BranchLatency: 5, IssueUnits: 4, RUUSize: 2}) },
		"ruu zero units":       func() { NewRUU(Config{MemLatency: 11, BranchLatency: 5, RUUSize: 8}) },
		"negative branch time": func() { NewBasic(Simple, Config{MemLatency: 11, BranchLatency: -1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestConfigNames(t *testing.T) {
	if M11BR5.Name() != "M11BR5" || M5BR2.Name() != "M5BR2" {
		t.Error("config names do not match the paper")
	}
	if len(BaseConfigs()) != 4 {
		t.Error("BaseConfigs should return the paper's 4 variations")
	}
}

func TestResultIssueRate(t *testing.T) {
	r := Result{Instructions: 10, Cycles: 40}
	if r.IssueRate() != 0.25 {
		t.Errorf("IssueRate = %v, want 0.25", r.IssueRate())
	}
	if (Result{}).IssueRate() != 0 {
		t.Error("zero result should have zero rate")
	}
}

func TestMemoryBankConflicts(t *testing.T) {
	// Two loads to addresses in the same bank (mod 4): with the ideal
	// interleaved memory they pipeline (cycles 12); with 4 banks the
	// second waits for the bank (issue 11, done 22). A load to a
	// different bank is unaffected.
	same := new(builder).load(isa.S(1), 100).load(isa.S(2), 104).trace()
	ideal := cycles(t, NewBasic(CRAYLike, M11BR5), same)
	banked := cycles(t, NewBasic(CRAYLike, M11BR5.WithMemBanks(4)), same)
	if ideal != 12 {
		t.Errorf("ideal = %d cycles, want 12", ideal)
	}
	if banked != 22 {
		t.Errorf("banked same-bank = %d cycles, want 22", banked)
	}
	other := new(builder).load(isa.S(1), 100).load(isa.S(2), 101).trace()
	if got := cycles(t, NewBasic(CRAYLike, M11BR5.WithMemBanks(4)), other); got != 12 {
		t.Errorf("banked different-bank = %d cycles, want 12", got)
	}
}

func TestMemoryBanksAcrossMachines(t *testing.T) {
	// On the single-issue machines (fixed issue order, no result-bus
	// scheduling) the bank model can only add cycles. The greedy
	// multiple-issue schedulers admit tiny Graham-type anomalies —
	// an added constraint occasionally improves the schedule — so for
	// them only near-monotonicity (no >2% speedup) is asserted.
	for _, k := range loops.All() {
		tr := k.SharedTrace()
		pairs := []struct {
			ideal, banked Machine
			strict        bool
		}{
			{NewBasic(CRAYLike, M11BR5), NewBasic(CRAYLike, M11BR5.WithMemBanks(4)), true},
			{NewBasic(NonSegmented, M11BR5), NewBasic(NonSegmented, M11BR5.WithMemBanks(4)), true},
			{NewMultiIssue(M11BR5.WithIssue(4, bus.BusN)), NewMultiIssue(M11BR5.WithIssue(4, bus.BusN).WithMemBanks(4)), false},
			{NewMultiIssueOOO(M11BR5.WithIssue(4, bus.BusN)), NewMultiIssueOOO(M11BR5.WithIssue(4, bus.BusN).WithMemBanks(4)), false},
			{NewRUU(M11BR5.WithIssue(2, bus.BusN).WithRUU(30)), NewRUU(M11BR5.WithIssue(2, bus.BusN).WithRUU(30).WithMemBanks(4)), false},
		}
		for _, p := range pairs {
			a := p.ideal.Run(tr).Cycles
			c := p.banked.Run(tr).Cycles
			if p.strict && c < a {
				t.Errorf("%s on %s: banked memory reduced cycles (%d -> %d)", k, p.ideal.Name(), a, c)
			}
			if !p.strict && float64(c) < 0.98*float64(a) {
				t.Errorf("%s on %s: banked memory reduced cycles beyond anomaly range (%d -> %d)",
					k, p.ideal.Name(), a, c)
			}
		}
	}
}
