package core

import (
	"fmt"
	"math"

	"mfup/internal/events"
	"mfup/internal/fu"
	"mfup/internal/isa"
	"mfup/internal/probe"
	"mfup/internal/trace"
)

// DefaultStations is the reservation-station count per functional
// unit for the Tomasulo machine when the configuration does not say
// otherwise. The IBM 360/91 floating-point unit had 2-3 stations per
// unit; 4 is a generous, round setting.
const DefaultStations = 4

// tomasulo implements the second §3.3 dependency-resolution scheme:
// the IBM 360/91 algorithm. A single issue unit places instructions
// into per-functional-unit reservation stations; register renaming
// through station tags removes both WAW and WAR hazards, so issue
// stalls only when the needed unit's stations are full or a branch is
// encountered. Results return over a single common data bus — one
// broadcast per cycle, the scheme's signature bottleneck — with full
// bypass: a broadcast value is usable the same cycle.
//
// Unlike the RUU, nothing commits in order (the 360/91 is the classic
// imprecise-interrupt design): a station frees as soon as its result
// has been broadcast.
type tomasulo struct {
	cfg      Config
	stations int
	pool     *fu.Pool

	inFlight [isa.NumUnits]int
	regTag   [isa.NumRegs]*tomEntry
	regReady [isa.NumRegs]int64
	memTag   []*tomEntry // by trace.PreparedOp.AddrID
	memReady []int64

	cdb     [64]int64 // self-invalidating per-cycle reservation ring
	pending []*tomEntry
	probe   probe.Probe
	rec     *events.Recorder
}

type tomEntry struct {
	op       *trace.Op
	flags    trace.OpFlags
	addrID   int32
	depCount int
	waiters  []*tomEntry
	readyAt  int64
	started  bool
	doneAt   int64 // result broadcast cycle; MaxInt64 until started
}

// NewTomasulo builds the §3.3 Tomasulo machine. cfg.RUUSize, when
// positive, sets the reservation stations per functional unit
// (total buffering is therefore RUUSize x the number of units);
// otherwise DefaultStations is used.
func NewTomasulo(cfg Config) Machine {
	m, err := NewTomasuloChecked(cfg)
	if err != nil {
		panic(err.Error())
	}
	return m
}

// NewTomasuloChecked builds the §3.3 Tomasulo machine, validating the
// configuration instead of panicking.
func NewTomasuloChecked(cfg Config) (Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	stations := cfg.RUUSize
	if stations <= 0 {
		stations = DefaultStations
	}
	pool := cfg.newPool()
	pool.SegmentAll()
	return &tomasulo{cfg: cfg, stations: stations, pool: pool}, nil
}

func (m *tomasulo) Name() string {
	return fmt.Sprintf("Tomasulo(%d stations/unit)", m.stations)
}

func (m *tomasulo) reset(numAddrs int) {
	m.pool.Reset()
	m.inFlight = [isa.NumUnits]int{}
	m.regTag = [isa.NumRegs]*tomEntry{}
	m.regReady = [isa.NumRegs]int64{}
	if cap(m.memTag) < numAddrs {
		m.memTag = make([]*tomEntry, numAddrs)
		m.memReady = make([]int64, numAddrs)
	} else {
		m.memTag = m.memTag[:numAddrs]
		m.memReady = m.memReady[:numAddrs]
		clear(m.memTag)
		clear(m.memReady)
	}
	m.cdb = [64]int64{}
	for i := range m.cdb {
		m.cdb[i] = -1
	}
	m.pending = m.pending[:0]
}

// cdbFree reports whether the common data bus is unreserved at cycle c.
func (m *tomasulo) cdbFree(c int64) bool { return m.cdb[c%64] != c }

func (m *tomasulo) cdbReserve(c int64) { m.cdb[c%64] = c }

func (m *tomasulo) Run(t *trace.Trace) Result { return runUnchecked(m, t) }

func (m *tomasulo) SetProbe(p probe.Probe) { m.probe = p }

func (m *tomasulo) SetRecorder(r *events.Recorder) { m.rec = r }

// snapshot formats up to max in-flight reservation-station entries
// for a stall diagnostic.
func (m *tomasulo) snapshot(max int) []string {
	var out []string
	for _, e := range m.pending {
		if len(out) == max {
			out = append(out, fmt.Sprintf("... and %d more", len(m.pending)-max))
			break
		}
		state := "waiting"
		if e.started {
			state = "executing"
		}
		out = append(out, fmt.Sprintf("%s [%s, deps %d, ready %d]", e.op, state, e.depCount, e.readyAt))
	}
	return out
}

// RunChecked simulates t under the limits. The machine steps cycle by
// cycle, so all three checks apply: cycle budget, stall watchdog, and
// wall-clock deadline.
func (m *tomasulo) RunChecked(t *trace.Trace, lim Limits) (Result, error) {
	p := t.Prepared()
	if err := scalarOnly(m.Name(), p); err != nil {
		return Result{}, err
	}
	m.reset(p.NumAddrs)
	g := newGuard(m.Name(), t.Name, lim)

	var (
		pos       int
		issueGate int64
		lastEvent int64
	)
	bump := func(c int64) {
		if c > lastEvent {
			lastEvent = c
		}
	}
	if m.probe != nil {
		// One issue slot per cycle; occupancy levels range over the
		// whole reservation-station pool.
		m.probe.Begin(m.Name(), t.Name, 1, m.stations*int(isa.NumUnits))
	}
	if m.rec != nil {
		m.rec.Begin(m.Name(), t.Name, 1)
	}

	for c := int64(0); pos < len(t.Ops) || len(m.pending) > 0; c++ {
		if err := g.Stalled(c, int64(pos), m.snapshot); err != nil {
			return Result{}, err
		}
		if err := g.Over(max(c, lastEvent), int64(pos)); err != nil {
			return Result{}, err
		}
		if err := g.Tick(c, int64(pos)); err != nil {
			return Result{}, err
		}
		if m.probe != nil {
			m.probe.Occupancy(len(m.pending), 1)
		}
		// 1. Broadcasts: entries whose results appear this cycle free
		// their stations and wake dependents (bypass: usable at c).
		keep := m.pending[:0]
		for _, e := range m.pending {
			if !e.started || e.doneAt != c {
				keep = append(keep, e)
				continue
			}
			if m.probe != nil {
				m.probe.Writeback(c, e.op.Unit, int64(m.pool.Latency(e.op.Unit)))
			}
			if m.rec != nil {
				// The broadcast both writes the result back and frees
				// the reservation station (the 360/91 has no in-order
				// commit; the release is the commit here).
				m.rec.RecordWriteback(e.op.Seq, c, e.op.Unit)
				m.rec.RecordCommit(e.op.Seq, c)
			}
			m.inFlight[e.op.Unit]--
			if e.op.Dst.Valid() && m.regTag[e.op.Dst] == e {
				m.regTag[e.op.Dst] = nil
				m.regReady[e.op.Dst] = c
			}
			if e.flags.Has(trace.FlagStore) && m.memTag[e.addrID] == e {
				m.memTag[e.addrID] = nil
				m.memReady[e.addrID] = c
			}
			for _, w := range e.waiters {
				w.depCount--
				if w.depCount == 0 && c > w.readyAt {
					w.readyAt = c
				}
			}
			e.waiters = nil
			bump(c)
			g.Progress(c)
		}
		m.pending = keep

		// 2. Begin execution: stations with ready operands start at
		// their unit, reserving a common-data-bus slot for their
		// completion. Oldest first (pending is in issue order).
		for _, e := range m.pending {
			if e.started || e.depCount > 0 || e.readyAt > c {
				continue
			}
			unit := e.op.Unit
			if m.pool.EarliestAccept(unit, c) > c {
				continue
			}
			done := c + int64(m.pool.Latency(unit))
			usesCDB := e.op.Dst.Valid()
			if usesCDB && !m.cdbFree(done) {
				continue // retry next cycle
			}
			m.pool.Accept(unit, c)
			if usesCDB {
				m.cdbReserve(done)
			}
			if m.rec != nil {
				m.rec.RecordExec(e.op.Seq, c, unit, done-c)
				if usesCDB {
					m.rec.RecordResultBus(e.op.Seq, done, 0)
				}
			}
			e.started = true
			e.doneAt = done
			bump(done)
			g.Progress(c)
		}

		// 3. Issue: one instruction per cycle into a reservation
		// station; stalls on a full station pool or a branch. When
		// probed, every cycle with instructions left to issue files its
		// slot: an Issue or exactly one attributed Stall. (Cycles after
		// the last issue are the drain, derived by the probe itself.)
		if pos < len(t.Ops) && c < issueGate {
			if m.probe != nil {
				m.probe.Stall(c, probe.ReasonBranch, 1)
			}
		}
		if c >= issueGate && pos < len(t.Ops) {
			op := &t.Ops[pos]
			po := &p.Ops[pos]
			if po.Flags.Has(trace.FlagBranch) {
				if m.cfg.PerfectBranches {
					if m.probe != nil {
						m.probe.Issue(c, 1)
						m.probe.BranchResolve(c)
					}
					if m.rec != nil {
						m.rec.RecordIssue(op.Seq, c)
						m.rec.RecordBranchResolve(op.Seq, c)
					}
					bump(c)
					g.Progress(c)
					pos++
				} else {
					stall := false
					a0 := int64(0)
					if po.Flags.Has(trace.FlagConditional) {
						if m.regTag[isa.A0] != nil {
							stall = true // A0 still in flight
						} else {
							a0 = m.regReady[isa.A0]
						}
					}
					if !stall && a0 <= c {
						issueGate = c + int64(m.cfg.BranchLatency)
						if m.probe != nil {
							m.probe.Issue(c, 1)
							m.probe.BranchResolve(issueGate)
						}
						if m.rec != nil {
							m.rec.RecordIssue(op.Seq, c)
							m.rec.RecordBranchResolve(op.Seq, issueGate)
						}
						bump(issueGate)
						g.Progress(c)
						pos++
					} else if m.probe != nil {
						// The branch owns the issue stage while its A0
						// condition is in flight.
						m.probe.Stall(c, probe.ReasonBranch, 1)
					}
				}
			} else if m.inFlight[op.Unit] < m.stations {
				if m.probe != nil {
					m.probe.Issue(c, 1)
				}
				if m.rec != nil {
					m.rec.RecordAlloc(op.Seq, c)
					m.rec.RecordIssue(op.Seq, c)
				}
				m.inFlight[op.Unit]++
				e := &tomEntry{op: op, flags: po.Flags, addrID: po.AddrID, doneAt: math.MaxInt64, readyAt: c + 1}
				pos++
				for _, r := range po.Reads() {
					if prod := m.regTag[r]; prod != nil {
						prod.waiters = append(prod.waiters, e)
						e.depCount++
					} else if m.regReady[r] > e.readyAt {
						e.readyAt = m.regReady[r]
					}
				}
				if po.Flags.Has(trace.FlagMemory) {
					if prod := m.memTag[po.AddrID]; prod != nil {
						prod.waiters = append(prod.waiters, e)
						e.depCount++
					} else if d := m.memReady[po.AddrID]; d > e.readyAt {
						e.readyAt = d
					}
				}
				if po.Flags.Has(trace.FlagHasDst) {
					m.regTag[op.Dst] = e
				}
				if po.Flags.Has(trace.FlagStore) {
					m.memTag[po.AddrID] = e
				}
				m.pending = append(m.pending, e)
				bump(c)
				g.Progress(c)
			} else if m.probe != nil {
				// No free reservation station on the needed unit.
				m.probe.Stall(c, probe.ReasonBufferFull, 1)
			}
		}
	}
	if m.probe != nil {
		m.probe.End(lastEvent)
	}
	if m.rec != nil {
		m.rec.End(lastEvent)
	}
	return Result{
		Machine:      m.Name(),
		Trace:        t.Name,
		Instructions: int64(len(t.Ops)),
		Cycles:       lastEvent,
	}, nil
}

// machineConfig exposes the configuration to the extrapolation engine.
func (m *tomasulo) machineConfig() Config { return m.cfg }
