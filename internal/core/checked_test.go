package core

import (
	"errors"
	"os"
	"testing"
	"time"

	"mfup/internal/asm"
	"mfup/internal/bus"
	"mfup/internal/emu"
	"mfup/internal/simerr"
	"mfup/internal/trace"
)

// livelockTrace loads, assembles, and traces the committed watchdog
// fixture: a loop whose iterations form one long serial dependence
// chain through memory (see testdata/livelock.cal).
func livelockTrace(t *testing.T) *trace.Trace {
	t.Helper()
	src, err := os.ReadFile("../../testdata/livelock.cal")
	if err != nil {
		t.Fatalf("reading fixture: %v", err)
	}
	p, err := asm.Assemble("livelock", string(src))
	if err != nil {
		t.Fatalf("assembling fixture: %v", err)
	}
	tr, err := emu.New(0).Run(p)
	if err != nil {
		t.Fatalf("tracing fixture: %v", err)
	}
	return tr
}

// everyMachine returns one instance of every machine model under cfg.
func everyMachine(cfg Config) []Machine {
	w := cfg.WithIssue(2, bus.BusN)
	return []Machine{
		NewBasic(Simple, cfg),
		NewBasic(SerialMemory, cfg),
		NewBasic(NonSegmented, cfg),
		NewBasic(CRAYLike, cfg),
		NewScoreboard(cfg),
		NewTomasulo(cfg),
		NewMultiIssue(w),
		NewMultiIssueOOO(w),
		NewRUU(w.WithRUU(10)),
		NewVector(cfg),
	}
}

// TestCycleBudgetFiresOnEveryMachine: the committed livelock fixture
// must terminate via the watchdog on every machine model, with a
// structured error naming the machine, the trace, and the cycle.
func TestCycleBudgetFiresOnEveryMachine(t *testing.T) {
	tr := livelockTrace(t)
	const budget = 500
	for _, m := range everyMachine(M11BR5) {
		_, err := m.RunChecked(tr, Limits{MaxCycles: budget})
		if err == nil {
			t.Errorf("%s: ran to completion under a %d-cycle budget", m.Name(), budget)
			continue
		}
		var serr *SimError
		if !errors.As(err, &serr) {
			t.Errorf("%s: error type %T, want *SimError", m.Name(), err)
			continue
		}
		if serr.Kind != simerr.KindCycleBudget {
			t.Errorf("%s: kind %v, want KindCycleBudget", m.Name(), serr.Kind)
		}
		if serr.Machine != m.Name() {
			t.Errorf("%s: error names machine %q", m.Name(), serr.Machine)
		}
		if serr.Trace != tr.Name {
			t.Errorf("%s: error names trace %q, want %q", m.Name(), serr.Trace, tr.Name)
		}
		if serr.Cycle <= budget {
			t.Errorf("%s: reported cycle %d, want > %d", m.Name(), serr.Cycle, budget)
		}
	}
}

// TestStallWatchdogFiresOnCycleSteppedMachines: under an enormous
// memory latency the cycle-stepped machines spin through empty cycles
// waiting for far-future completions; the no-forward-progress
// watchdog must cut them off with a snapshot of the stuck
// instructions.
func TestStallWatchdogFiresOnCycleSteppedMachines(t *testing.T) {
	tr := livelockTrace(t)
	cfg := Config{MemLatency: 1 << 26, BranchLatency: 5}
	w := cfg.WithIssue(2, bus.BusN)
	const stall = 10_000
	for _, m := range []Machine{
		NewTomasulo(cfg),
		NewMultiIssueOOO(w),
		NewRUU(w.WithRUU(10)),
	} {
		_, err := m.RunChecked(tr, Limits{StallCycles: stall})
		if err == nil {
			t.Errorf("%s: no stall under 2^26-cycle memory latency", m.Name())
			continue
		}
		var serr *SimError
		if !errors.As(err, &serr) {
			t.Errorf("%s: error type %T, want *SimError", m.Name(), err)
			continue
		}
		if serr.Kind != simerr.KindStall {
			t.Errorf("%s: kind %v, want KindStall (%v)", m.Name(), serr.Kind, serr)
		}
		if serr.Machine != m.Name() || serr.Trace != tr.Name {
			t.Errorf("%s: error names (%q, %q)", m.Name(), serr.Machine, serr.Trace)
		}
		if len(serr.InFlight) == 0 {
			t.Errorf("%s: stall error carries no in-flight snapshot", m.Name())
		}
	}
}

// TestDeadlineFires: an already-expired wall-clock deadline aborts a
// checked run with KindDeadline.
func TestDeadlineFires(t *testing.T) {
	tr := livelockTrace(t)
	m := NewBasic(CRAYLike, M11BR5)
	_, err := m.RunChecked(tr, Limits{Deadline: time.Now().Add(-time.Second)})
	var serr *SimError
	if !errors.As(err, &serr) || serr.Kind != simerr.KindDeadline {
		t.Fatalf("RunChecked with expired deadline = %v, want KindDeadline", err)
	}
}

// TestCheckedMatchesLegacyRun: with zero limits, RunChecked is
// exactly the legacy Run on every machine — same cycle counts, no
// error. This is the healthy-path byte-identity guarantee at the
// Result level.
func TestCheckedMatchesLegacyRun(t *testing.T) {
	tr := livelockTrace(t)
	for _, cfg := range BaseConfigs() {
		for _, m := range everyMachine(cfg) {
			want := m.Run(tr)
			got, err := m.RunChecked(tr, Limits{})
			if err != nil {
				t.Errorf("%s %s: RunChecked: %v", m.Name(), cfg.Name(), err)
				continue
			}
			if got != want {
				t.Errorf("%s %s: RunChecked %+v != Run %+v", m.Name(), cfg.Name(), got, want)
			}
			// The production defaults must not fire on a healthy run.
			got2, err := m.RunChecked(tr, DefaultLimits())
			if err != nil {
				t.Errorf("%s %s: DefaultLimits fired on a healthy run: %v", m.Name(), cfg.Name(), err)
			} else if got2 != want {
				t.Errorf("%s %s: DefaultLimits changed the result: %+v != %+v", m.Name(), cfg.Name(), got2, want)
			}
		}
	}
}

// TestCheckedConstructorsRejectBadConfigs: every checked constructor
// returns an error (instead of panicking) on an invalid
// configuration.
func TestCheckedConstructorsRejectBadConfigs(t *testing.T) {
	bad := Config{MemLatency: 0, BranchLatency: 5}
	zeroUnits := Config{MemLatency: 11, BranchLatency: 5, IssueUnits: 0}
	for name, build := range map[string]func() (Machine, error){
		"basic bad latency":   func() (Machine, error) { return NewBasicChecked(CRAYLike, bad) },
		"basic bad org":       func() (Machine, error) { return NewBasicChecked(Organization(99), M11BR5) },
		"scoreboard":          func() (Machine, error) { return NewScoreboardChecked(bad) },
		"tomasulo":            func() (Machine, error) { return NewTomasuloChecked(bad) },
		"multi zero units":    func() (Machine, error) { return NewMultiIssueChecked(zeroUnits) },
		"ooo zero units":      func() (Machine, error) { return NewMultiIssueOOOChecked(zeroUnits) },
		"ruu size < units":    func() (Machine, error) { return NewRUUChecked(M11BR5.WithIssue(4, bus.BusN).WithRUU(2)) },
		"vector bad latency":  func() (Machine, error) { return NewVectorChecked(bad) },
		"multi bad interlink": func() (Machine, error) { return NewMultiIssueChecked(M11BR5.WithIssue(2, bus.Kind(99))) },
	} {
		m, err := build()
		if err == nil {
			t.Errorf("%s: no error (got machine %v)", name, m.Name())
		}
	}
}
