package core

import (
	"fmt"

	"mfup/internal/events"
	"mfup/internal/probe"
	"mfup/internal/simerr"
	"mfup/internal/trace"
)

// Steady-state extrapolation: make per-loop simulation cost O(1) in
// the iteration count.
//
// Every Livermore trace is a short prologue, a long run of congruent
// loop-body windows, and an epilogue (internal/trace.Period). The
// machines are deterministic finite-state systems, so once the
// pipeline reaches steady state every further iteration costs exactly
// the same cycles and the same stall-attribution deltas as the last —
// simulating a billion of them recomputes one number a billion times.
//
// The Extrapolator wrapper exploits that without touching a machine's
// timing model. For a trace with B body windows it simulates a ladder
// of reduced traces holding k0, k0+1, ..., k0+S-1 windows (Period
// Slice; each run is a full prologue + tail, so end effects are
// included), then looks for a lag L such that growing the loop by L
// iterations always adds the same cycle count, the same issued/stall
// slot counts per reason, the same per-unit work, and the same
// occupancy histogram increments. A machine in steady state must show
// such a fixed per-iteration delta; finding one, the engine closes
// the run analytically:
//
//	result(B) = result(kref) + (B-kref)/L * (result(kref+L) - result(kref))
//
// with kref chosen congruent to B modulo L. The reference runs carry
// the simulated epilogue, so cycle counts, issue rates, and stall
// breakdowns are exact — bit-identical to full simulation — whenever
// the steady-state premise holds; the differential matrix test
// asserts exactly that across every machine and kernel. When no
// period or no fixed delta exists (data-dependent control flow,
// too few iterations, bank-hostile strides), the wrapper falls back
// to full simulation, so it is always safe to apply.
const (
	// The reference ladder is adaptive: most machines show a fixed
	// delta at lag 1 or 2, so a short ladder settles them cheaply; the
	// RUU's round-robin issue banks, ring-buffer result bus, and
	// wrap-around entry reuse can compose into much longer steady
	// periods — up to the order of the RUU size (lags of 18 and ~100
	// are observed) — which the extended stages cover when the trace
	// has enough iterations to sample them.
	extrapSamples    = 16
	extrapMaxLag     = 8
	extrapSamplesExt = 48
	extrapMaxLagExt  = 32
	extrapSamplesMax = 224
	extrapMaxLagMax  = 192

	// extrapMinPairs is the smallest number of confirming sample pairs
	// a lag must exhibit before the engine trusts it.
	extrapMinPairs = 8

	// extrapHorizonOps and extrapHorizonWindows size the warmup the
	// smallest reference run must contain before its tail: enough ops
	// to flush any in-flight window (the largest RUU holds 100
	// entries) and enough windows to retire any store-to-load distance
	// a machine could still observe (each window costs at least one
	// cycle; memory latency is at most 11).
	extrapHorizonOps     = 256
	extrapHorizonWindows = 16
)

// ExtrapolationStats reports what the engine did on the last run of
// an Extrapolator.
type ExtrapolationStats struct {
	// Engaged is true when the run was closed analytically; false
	// means the wrapper fell back to full simulation.
	Engaged bool

	// Reason explains a fallback ("" when Engaged).
	Reason string

	// Span and Lag are the detected ops-per-iteration and steady-state
	// period in iterations.
	Span, Lag int

	// Windows is the total body-window count accounted for, including
	// virtual iterations; Skipped of them were bridged analytically.
	Windows, Skipped int64

	// SimulatedOps counts the ops actually simulated across the
	// reference runs (the engine's entire per-machine cost).
	SimulatedOps int64

	// CyclesPerLag is the fixed cycle delta per Lag iterations.
	CyclesPerLag int64
}

// configured is implemented by every concrete machine in this
// package; the engine consults the configuration for bank-safety.
type configured interface{ machineConfig() Config }

// extrapWarmup returns the smallest reference-run window count k0 for
// a period of the given span: the full identity horizon must fit
// before the reduced trace's tail window.
func extrapWarmup(span int) int {
	return extrapHorizonWindows + (extrapHorizonOps+span-1)/span + 2
}

// CanExtrapolate reports whether t satisfies the machine-independent
// prerequisites of the extrapolation engine: a detectable steady-state
// period, enough iterations for the reference ladder, and reduced
// traces that preserve the tail's address-identity structure. A nil
// return does not guarantee engagement — a machine can still fall
// back (or, with virtual iterations, fail) for machine-dependent
// reasons such as a bank-hostile stride — but callers deciding
// whether a loop length beyond the materializable range is reachable
// should require it.
func CanExtrapolate(t *trace.Trace) error {
	prep := t.Prepared()
	if prep.Err != nil {
		return prep.Err
	}
	pd := prep.Period()
	if pd == nil {
		return fmt.Errorf("core: %s: no steady-state period detected", t.Name)
	}
	k0 := extrapWarmup(pd.Span)
	if need := k0 + extrapSamples + 1; pd.Iterations() < need {
		return fmt.Errorf("core: %s: too few iterations (%d, need %d)", t.Name, pd.Iterations(), need)
	}
	if !pd.TailIdentityOK(k0) {
		return fmt.Errorf("core: %s: a reduced trace does not preserve tail address identity", t.Name)
	}
	return nil
}

// Extrapolator wraps a Machine with the steady-state extrapolation
// engine. It is itself a Machine: Name, probes, and recorders pass
// through, results are bit-identical to the wrapped machine's, and
// runs the engine cannot close analytically fall back to a plain
// delegated run. Like the machines it wraps, an Extrapolator is
// reusable but not safe for concurrent use.
type Extrapolator struct {
	inner      Machine
	probe      probe.Probe
	rec        *events.Recorder
	extra      map[string]int64 // virtual iterations to add, by trace name
	bestEffort bool
	last       ExtrapolationStats
}

// Extrapolate wraps m with the steady-state extrapolation engine.
func Extrapolate(m Machine) *Extrapolator {
	if e, ok := m.(*Extrapolator); ok {
		return e
	}
	return &Extrapolator{inner: m}
}

// WithVirtual directs the engine to account for extra additional loop
// iterations beyond those materialized in the trace, keyed by trace
// name. Virtual iterations cost nothing to simulate — they are pure
// analytic extension — which is what makes n=1e9 affordable when the
// kernel's memory layout caps the buildable trace far lower. A run
// whose trace has virtual iterations but no detectable steady state
// fails with a structured error: there is nothing to fall back to.
func (e *Extrapolator) WithVirtual(extra map[string]int64) *Extrapolator {
	e.extra = extra
	return e
}

// BestEffort directs the engine to fall back to simulating just the
// materialized trace when virtual iterations cannot be extended
// analytically, instead of failing the run: the result then reflects
// only the materialized iterations (Stats reports the fallback).
// Issue rates are essentially independent of the iteration count in
// steady state, so a clamped run's rate is still representative;
// exact cycle totals are not, which is why the strict default errors.
func (e *Extrapolator) BestEffort() *Extrapolator {
	e.bestEffort = true
	return e
}

// Stats returns what the engine did on the most recent run.
func (e *Extrapolator) Stats() ExtrapolationStats { return e.last }

// Name reports the wrapped machine's name: results must be
// indistinguishable from the machine's own.
func (e *Extrapolator) Name() string { return e.inner.Name() }

// SetProbe attaches p to subsequent runs. During an engaged run the
// wrapped machine drives only the engine's internal reference
// counters; p receives the exact extrapolated totals instead.
func (e *Extrapolator) SetProbe(p probe.Probe) { e.probe = p }

// SetRecorder attaches r to subsequent runs. Lifecycle events exist
// only for simulated instructions, so an attached recorder disables
// extrapolation: every run falls back to full simulation and records
// the complete stream, exactly as on the bare machine.
func (e *Extrapolator) SetRecorder(r *events.Recorder) { e.rec = r }

// Run simulates t unbounded, panicking on failure, like any Machine.
func (e *Extrapolator) Run(t *trace.Trace) Result { return runUnchecked(e, t) }

// RunChecked simulates t under lim, extrapolating the steady-state
// middle of the loop when possible and falling back to a delegated
// full run otherwise.
func (e *Extrapolator) RunChecked(t *trace.Trace, lim Limits) (Result, error) {
	e.last = ExtrapolationStats{}
	extraIters := e.extra[t.Name]
	if r, err, done := e.tryExtrapolate(t, lim, extraIters); done {
		return r, err
	}
	if extraIters > 0 && !e.bestEffort {
		return Result{}, &simerr.SimError{
			Kind: simerr.KindBadTrace, Machine: e.inner.Name(), Trace: t.Name,
			Instr: -1,
			Msg: fmt.Sprintf("cannot extrapolate %d virtual iterations: %s",
				extraIters, e.last.Reason),
		}
	}
	e.inner.SetProbe(e.probe)
	e.inner.SetRecorder(e.rec)
	defer func() {
		e.inner.SetProbe(nil)
		e.inner.SetRecorder(nil)
	}()
	return e.inner.RunChecked(t, lim)
}

// tryExtrapolate attempts the analytic closure. done reports whether
// the run is finished (result or error); false means fall back, with
// the reason recorded in e.last.
func (e *Extrapolator) tryExtrapolate(t *trace.Trace, lim Limits, extraIters int64) (Result, error, bool) {
	fallback := func(reason string) (Result, error, bool) {
		e.last.Reason = reason
		return Result{}, nil, false
	}
	if e.rec != nil {
		return fallback("event recorder attached: every cycle must be simulated")
	}
	var uc *probe.Counters
	if e.probe != nil {
		c, ok := e.probe.(*probe.Counters)
		if !ok {
			return fallback("unsupported probe type")
		}
		uc = c
	}
	prep := t.Prepared()
	if prep.Err != nil {
		return fallback("invalid trace")
	}
	pd := prep.Period()
	if pd == nil {
		return fallback("no steady-state period detected")
	}
	e.last.Span = pd.Span
	// Warmup: the smallest reference run must hold the full identity
	// horizon before its tail window.
	k0 := extrapWarmup(pd.Span)
	windows := int64(pd.Iterations())
	if windows < int64(k0+extrapSamples+1) {
		return fallback(fmt.Sprintf("too few iterations (%d, need %d)", windows, k0+extrapSamples+1))
	}
	cm, ok := e.inner.(configured)
	if !ok {
		return fallback("machine does not expose its configuration")
	}
	if nb := cm.machineConfig().MemBanks; nb > 1 && !pd.BankSafe(nb) {
		return fallback(fmt.Sprintf("address strides not aligned to %d memory banks", nb))
	}
	if !pd.TailIdentityOK(k0) {
		return fallback("reduced trace does not preserve tail address identity")
	}
	// Reference ladder: simulate k0..k0+S-1 iterations, each run
	// observed by a fresh counter set.
	type sample struct {
		r Result
		c *probe.Counters
	}
	samples := make([]sample, 0, extrapSamplesExt)
	defer e.inner.SetProbe(nil)
	extendTo := func(n int) string {
		for i := len(samples); i < n; i++ {
			tr := pd.Slice(k0 + i)
			if tr == nil {
				return "reduced trace construction failed"
			}
			c := new(probe.Counters)
			e.inner.SetProbe(c)
			r, err := e.inner.RunChecked(tr, lim)
			if err != nil {
				return fmt.Sprintf("reference run (%d iterations) failed: %v", k0+i, err)
			}
			samples = append(samples, sample{r, c})
			e.last.SimulatedOps += int64(len(tr.Ops))
		}
		return ""
	}
	// findLag returns the smallest L in [lo, hi] for which every
	// L-apart pair of reference runs differs by one fixed observable
	// delta, or 0 if there is none. A lag is only trusted with at
	// least extrapMinPairs confirming pairs.
	findLag := func(lo, hi int) int {
		if max := len(samples) - extrapMinPairs; hi > max {
			hi = max
		}
		for l := lo; l <= hi; l++ {
			ok := samples[l].r.Cycles > samples[0].r.Cycles
			for i := 1; ok && i+l < len(samples); i++ {
				ok = samples[i+l].r.Cycles-samples[i].r.Cycles == samples[l].r.Cycles-samples[0].r.Cycles &&
					samples[i+l].r.Instructions-samples[i].r.Instructions == samples[l].r.Instructions-samples[0].r.Instructions &&
					probe.DeltaEqual(samples[0].c, samples[l].c, samples[i].c, samples[i+l].c)
			}
			if ok {
				return l
			}
		}
		return 0
	}
	stages := []struct{ samples, maxLag int }{
		{extrapSamples, extrapMaxLag},
		{extrapSamplesExt, extrapMaxLagExt},
		{extrapSamplesMax, extrapMaxLagMax},
	}
	lag := 0
	for _, st := range stages {
		// Later stages shrink to the iterations the trace has; the
		// first is guaranteed by the engagement check above. Re-search
		// from lag 1 each stage: a short lag can sit above an earlier
		// stage's pair-count ceiling, and re-checking the rest is cheap
		// next to one reference simulation.
		if n := int(windows) - k0 - 1; st.samples > n {
			st.samples = n
		}
		if st.samples > len(samples) {
			if reason := extendTo(st.samples); reason != "" {
				return fallback(reason)
			}
		}
		if lag = findLag(1, st.maxLag); lag != 0 {
			break
		}
	}
	if lag == 0 {
		return fallback("no fixed per-iteration delta within the sampled ladder")
	}
	// Close the run at the target window count from a reference
	// congruent to it modulo the lag.
	target := windows + extraIters
	ref := -1
	for i := len(samples) - 1 - lag; i >= 0; i-- {
		if (target-int64(k0+i))%int64(lag) == 0 {
			ref = i
			break
		}
	}
	if ref < 0 {
		return fallback("no reference run congruent to the target length")
	}
	lo, hi := &samples[ref], &samples[ref+lag]
	times := (target - int64(k0+ref)) / int64(lag)
	cycles := lo.r.Cycles + times*(hi.r.Cycles-lo.r.Cycles)
	instrs := lo.r.Instructions + times*(hi.r.Instructions-lo.r.Instructions)
	if extraIters == 0 && instrs != int64(len(t.Ops)) {
		return fallback("extrapolated instruction count disagrees with the trace")
	}
	// The skipped iterations still count against the cycle budget: a
	// full run past lim.MaxCycles must fail the same way here.
	g := simerr.NewGuard(e.inner.Name(), t.Name, lim.MaxCycles, lim.StallCycles, lim.Deadline)
	e.last.Engaged = true
	e.last.Lag = lag
	e.last.Windows = target
	e.last.Skipped = times * int64(lag)
	e.last.CyclesPerLag = hi.r.Cycles - lo.r.Cycles
	if err := g.Over(cycles, instrs); err != nil {
		return Result{}, err, true
	}
	if uc != nil {
		uc.AddExtrapolated(lo.c, hi.c, times)
	}
	return Result{
		Machine:      lo.r.Machine,
		Trace:        t.Name,
		Instructions: instrs,
		Cycles:       cycles,
	}, nil, true
}
