package core

import (
	"testing"

	"mfup/internal/bus"
	"mfup/internal/isa"
	"mfup/internal/loops"
	"mfup/internal/probe"
)

// countersFor runs b's trace on m twice — bare, then with a fresh
// Counters attached — and verifies the slot invariant plus that
// attaching the probe did not change the result.
func countersFor(t *testing.T, m Machine, b *builder) *probe.Counters {
	t.Helper()
	tr := b.trace()
	bare := m.Run(tr)
	var c probe.Counters
	m.SetProbe(&c)
	got := m.Run(tr)
	m.SetProbe(nil)
	if got != bare {
		t.Fatalf("%s: probed result %+v differs from unprobed %+v", m.Name(), got, bare)
	}
	if err := c.Check(); err != nil {
		t.Fatalf("%s: %v", m.Name(), err)
	}
	return &c
}

func TestProbeCRAYLikeRAWChain(t *testing.T) {
	// Dependent FloatAdds issue at 0 and 6, finish at 12: cycles 1-5
	// are RAW stalls, 7-11 the drain.
	b := new(builder).
		op(isa.OpFAdd, isa.S(1), isa.S(0), isa.S(0)).
		op(isa.OpFAdd, isa.S(2), isa.S(1), isa.S(1))
	c := countersFor(t, NewBasic(CRAYLike, M11BR5), b)
	if c.Issued != 2 || c.Slots != 12 {
		t.Fatalf("issued %d slots %d, want 2/12", c.Issued, c.Slots)
	}
	if c.Stalls[probe.ReasonRAW] != 5 || c.Stalls[probe.ReasonDrain] != 5 {
		t.Errorf("RAW %d drain %d, want 5/5 (breakdown: %s)",
			c.Stalls[probe.ReasonRAW], c.Stalls[probe.ReasonDrain], c)
	}
	if c.FU[isa.FloatAdd].Ops != 2 || c.FU[isa.FloatAdd].Busy != 12 {
		t.Errorf("FloatAdd stat %+v, want 2 ops / 12 busy", c.FU[isa.FloatAdd])
	}
}

func TestProbeCRAYLikeWAWPair(t *testing.T) {
	// The transfer rewrites the add's destination: blocked cycles 1-5
	// are WAW, and nothing drains (the transfer completes last, at 7).
	b := new(builder).
		op(isa.OpFAdd, isa.S(1), isa.S(0), isa.S(0)).
		op(isa.OpSImm, isa.S(1), isa.NoReg, isa.NoReg)
	c := countersFor(t, NewBasic(CRAYLike, M11BR5), b)
	if c.Stalls[probe.ReasonWAW] != 5 {
		t.Errorf("WAW stalls = %d, want 5 (breakdown: %s)", c.Stalls[probe.ReasonWAW], c)
	}
	if c.Stalls[probe.ReasonRAW] != 0 {
		t.Errorf("RAW stalls = %d, want 0", c.Stalls[probe.ReasonRAW])
	}
}

func TestProbeSimpleExclusiveIsStructural(t *testing.T) {
	// Two independent FloatAdds on the Simple machine: the second
	// waits out the first's entire execution — structural, not a
	// hazard. Issues at 0 and 6, done 12; no drain.
	b := new(builder).
		op(isa.OpFAdd, isa.S(1), isa.S(0), isa.S(0)).
		op(isa.OpFAdd, isa.S(2), isa.S(0), isa.S(0))
	c := countersFor(t, NewBasic(Simple, M11BR5), b)
	if c.Stalls[probe.ReasonStructFU] != 10 || c.Stalls[probe.ReasonDrain] != 0 {
		t.Errorf("structural %d drain %d, want 10/0 (breakdown: %s)",
			c.Stalls[probe.ReasonStructFU], c.Stalls[probe.ReasonDrain], c)
	}
}

func TestProbeBranchShadow(t *testing.T) {
	// A lone branch occupies its issue slot and shadows the next
	// brLat-1 cycles; BR5 gives 4 branch-stall slots and one
	// resolution.
	b := new(builder).branch(isa.OpJ, true)
	c := countersFor(t, NewBasic(CRAYLike, M11BR5), b)
	if c.Stalls[probe.ReasonBranch] != 4 {
		t.Errorf("branch stalls = %d, want 4 (breakdown: %s)", c.Stalls[probe.ReasonBranch], c)
	}
	if c.Branches != 1 {
		t.Errorf("branch resolutions = %d, want 1", c.Branches)
	}
}

func TestProbeScoreboardHidesRAW(t *testing.T) {
	// The CDC 6600 discipline issues past a RAW hazard (the wait moves
	// to the unit), so the dependent-add chain shows no issue-stage
	// RAW stalls — the lost cycles surface as drain instead.
	b := new(builder).
		op(isa.OpFAdd, isa.S(1), isa.S(0), isa.S(0)).
		op(isa.OpFAdd, isa.S(2), isa.S(1), isa.S(1))
	c := countersFor(t, NewScoreboard(M11BR5), b)
	if c.Stalls[probe.ReasonRAW] != 0 {
		t.Errorf("RAW stalls = %d, want 0 (breakdown: %s)", c.Stalls[probe.ReasonRAW], c)
	}
	if c.Stalls[probe.ReasonDrain] != 10 {
		t.Errorf("drain = %d, want 10 (breakdown: %s)", c.Stalls[probe.ReasonDrain], c)
	}

	// A WAW pair still blocks at issue.
	b = new(builder).
		op(isa.OpFAdd, isa.S(1), isa.S(0), isa.S(0)).
		op(isa.OpSImm, isa.S(1), isa.NoReg, isa.NoReg)
	c = countersFor(t, NewScoreboard(M11BR5), b)
	if c.Stalls[probe.ReasonWAW] == 0 {
		t.Errorf("WAW pair shows no WAW stalls (breakdown: %s)", c)
	}
}

func TestProbeResultBusContention(t *testing.T) {
	// An AddrMul and a FloatAdd — distinct units, both latency 6 — in
	// one 2-wide buffer: with a bus per station both issue at cycle 0;
	// with one shared bus their results would collide at cycle 6, so
	// the FloatAdd waits a cycle at issue.
	mk := func() *builder {
		return new(builder).
			op(isa.OpAMul, isa.A(2), isa.A(1), isa.A(1)).
			op(isa.OpFAdd, isa.S(2), isa.S(0), isa.S(0))
	}
	cn := countersFor(t, NewMultiIssue(M11BR5.WithIssue(2, bus.BusN)), mk())
	c1 := countersFor(t, NewMultiIssue(M11BR5.WithIssue(2, bus.Bus1)), mk())
	if cn.Stalls[probe.ReasonResultBus] != 0 {
		t.Errorf("N-Bus shows %d result-bus stalls, want 0 (breakdown: %s)",
			cn.Stalls[probe.ReasonResultBus], cn)
	}
	if c1.Stalls[probe.ReasonResultBus] == 0 {
		t.Errorf("1-Bus shows no result-bus stalls (breakdown: %s)", c1)
	}
}

// TestProbeInvariantAllMachines attaches a Counters to every machine
// model, runs every Livermore loop it accepts, and verifies both the
// slot-accounting invariant and that probing never changes the result.
func TestProbeInvariantAllMachines(t *testing.T) {
	machines := []func() Machine{
		func() Machine { return NewBasic(Simple, M11BR5) },
		func() Machine { return NewBasic(SerialMemory, M11BR5) },
		func() Machine { return NewBasic(NonSegmented, M5BR2) },
		func() Machine { return NewBasic(CRAYLike, M11BR5) },
		func() Machine { return NewScoreboard(M11BR5) },
		func() Machine { return NewTomasulo(M5BR5) },
		func() Machine { return NewMultiIssue(M11BR5.WithIssue(4, bus.BusN)) },
		func() Machine { return NewMultiIssue(M5BR2.WithIssue(3, bus.Bus1)) },
		func() Machine { return NewMultiIssueOOO(M11BR5.WithIssue(4, bus.BusN)) },
		func() Machine { return NewMultiIssueOOO(M5BR2.WithIssue(3, bus.Bus1)) },
		func() Machine { return NewRUU(M11BR5.WithIssue(2, bus.BusN).WithRUU(16)) },
		func() Machine { return NewRUU(M5BR5.WithIssue(4, bus.Bus1).WithRUU(30)) },
		func() Machine { return NewVector(M11BR5) },
		func() Machine { return NewBasic(CRAYLike, M11BR5.WithMemBanks(4)) },
		func() Machine { return NewMultiIssueOOO(M11BR5.WithIssue(4, bus.BusN).WithMemBanks(2)) },
	}
	for _, k := range loops.All() {
		tr := k.SharedTrace()
		for _, mk := range machines {
			m := mk()
			bare, err := m.RunChecked(tr, Limits{})
			if err != nil {
				continue // scalar machine rejecting a vector trace
			}
			var c probe.Counters
			m.SetProbe(&c)
			got, err := m.RunChecked(tr, Limits{})
			if err != nil {
				t.Fatalf("%s on %s: probed run failed: %v", m.Name(), tr.Name, err)
			}
			if got != bare {
				t.Errorf("%s on %s: probed result %+v != unprobed %+v", m.Name(), tr.Name, got, bare)
			}
			if err := c.Check(); err != nil {
				t.Errorf("%s on %s: %v", m.Name(), tr.Name, err)
			}
			if c.Issued != int64(len(tr.Ops)) {
				t.Errorf("%s on %s: issued %d of %d instructions", m.Name(), tr.Name, c.Issued, len(tr.Ops))
			}
		}
	}
}

// TestProbeAccumulatesOverLoops mirrors how the tables attach one
// Counters to a whole harmonic-mean cell.
func TestProbeAccumulatesOverLoops(t *testing.T) {
	m := NewBasic(CRAYLike, M11BR5)
	var c probe.Counters
	m.SetProbe(&c)
	runs := 0
	var cycles int64
	for _, k := range loops.ByClass(loops.Scalar) {
		r := m.Run(k.SharedTrace())
		cycles += r.Cycles
		runs++
	}
	if c.Runs != runs || c.Cycles != cycles {
		t.Fatalf("accumulated %d runs / %d cycles, want %d / %d", c.Runs, c.Cycles, runs, cycles)
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkProbeOverhead compares the nil-probe hot path against a
// run with Counters attached; CI greps the nil case to guard the
// zero-overhead contract (<2% vs the unprobed seed).
func BenchmarkProbeOverhead(b *testing.B) {
	k, err := loops.Get(1)
	if err != nil {
		b.Fatal(err)
	}
	tr := k.SharedTrace()
	b.Run("nil", func(b *testing.B) {
		m := NewMultiIssueOOO(M11BR5.WithIssue(4, bus.BusN))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Run(tr)
		}
	})
	b.Run("counters", func(b *testing.B) {
		m := NewMultiIssueOOO(M11BR5.WithIssue(4, bus.BusN))
		var c probe.Counters
		m.SetProbe(&c)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Run(tr)
		}
	})
}
