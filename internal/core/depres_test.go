package core

import (
	"testing"

	"mfup/internal/bus"
	"mfup/internal/isa"
	"mfup/internal/loops"
)

// Tests for the §3.3 single-issue dependency-resolution machines:
// the CDC-6600-style scoreboard and the Tomasulo machine.

func TestScoreboardIssuesPastRAW(t *testing.T) {
	// [Recip S1 (14 cycles), FMul needing S1, independent load]. The
	// CRAY-like machine blocks the load behind the FMul until cycle
	// 14 (load 15..26); the scoreboard issues the FMul at 1 (it waits
	// at the multiplier) and the load at 2 (done 13), so the FMul's
	// completion at 21 dominates.
	tr := new(builder).
		op(isa.OpRecip, isa.S(1), isa.S(0), isa.NoReg).
		op(isa.OpFMul, isa.S(2), isa.S(1), isa.S(1)).
		load(isa.S(3), 100).
		trace()
	if got := cycles(t, NewBasic(CRAYLike, M11BR5), tr); got != 26 {
		t.Errorf("CRAY-like = %d cycles, want 26", got)
	}
	if got := cycles(t, NewScoreboard(M11BR5), tr); got != 21 {
		t.Errorf("scoreboard = %d cycles, want 21", got)
	}
}

func TestScoreboardBlocksOnWAW(t *testing.T) {
	// [FAdd S1 (done 6), SImm S1, SImm S4]: the second writer of S1
	// may not issue until the first completes, and it drags the
	// independent transfer behind it: issue at 6 and 7, done 7 and 8.
	tr := new(builder).
		op(isa.OpFAdd, isa.S(1), isa.S(0), isa.S(0)).
		op(isa.OpSImm, isa.S(1), isa.NoReg, isa.NoReg).
		op(isa.OpSImm, isa.S(4), isa.NoReg, isa.NoReg).
		trace()
	if got := cycles(t, NewScoreboard(M11BR5), tr); got != 8 {
		t.Errorf("scoreboard WAW = %d cycles, want 8", got)
	}
	// Tomasulo renames: the transfers issue at 1 and 2, execute at 2
	// and 3; the FAdd's completion at 7 dominates.
	if got := cycles(t, NewTomasulo(M11BR5), tr); got != 7 {
		t.Errorf("Tomasulo WAW = %d cycles, want 7", got)
	}
}

func TestScoreboardBranchBehaviour(t *testing.T) {
	// Branch semantics are unchanged from the base machines: blocked
	// issue for the branch time, waiting on A0.
	tr := new(builder).
		op(isa.OpAAdd, isa.A0, isa.A(1), isa.A(2)).
		branch(isa.OpJAN, false).
		op(isa.OpSImm, isa.S(1), isa.NoReg, isa.NoReg).
		trace()
	// AAdd 0..2, branch issues 1 but waits for A0 (2), resolves 7,
	// transfer 7..8.
	if got := cycles(t, NewScoreboard(M11BR5), tr); got != 8 {
		t.Errorf("scoreboard branch = %d cycles, want 8", got)
	}
}

func TestScoreboardStoreLoadDependence(t *testing.T) {
	st := new(builder).
		store(isa.A(1), isa.S(0), 40).
		load(isa.S(2), 40).
		trace()
	// Store 0..11; dependent load waits: 11..22.
	if got := cycles(t, NewScoreboard(M11BR5), st); got != 22 {
		t.Errorf("scoreboard store->load = %d cycles, want 22", got)
	}
}

func TestTomasuloCDBContention(t *testing.T) {
	// FMul (issue 0, exec 1..8) and FAdd (issue 1, exec 2..8): both
	// results want the common data bus at cycle 8, so the FAdd delays
	// its start to 3 and completes at 9. The scoreboard has no shared
	// result bus: FAdd completes at 7.
	tr := new(builder).
		op(isa.OpFMul, isa.S(1), isa.S(0), isa.S(0)).
		op(isa.OpFAdd, isa.S(2), isa.S(0), isa.S(0)).
		trace()
	if got := cycles(t, NewTomasulo(M11BR5), tr); got != 9 {
		t.Errorf("Tomasulo CDB = %d cycles, want 9", got)
	}
	if got := cycles(t, NewScoreboard(M11BR5), tr); got != 7 {
		t.Errorf("scoreboard = %d cycles, want 7", got)
	}
}

func TestTomasuloStationFullStalls(t *testing.T) {
	// With one station per unit, a second FloatAdd waits for the
	// first's broadcast (7) before issuing: exec 8..14. With two
	// stations it issues at 1 and completes at 8.
	tr := new(builder).
		op(isa.OpFAdd, isa.S(1), isa.S(0), isa.S(0)).
		op(isa.OpFAdd, isa.S(2), isa.S(0), isa.S(0)).
		trace()
	if got := cycles(t, NewTomasulo(M11BR5.WithRUU(1)), tr); got != 14 {
		t.Errorf("1 station = %d cycles, want 14", got)
	}
	if got := cycles(t, NewTomasulo(M11BR5.WithRUU(2)), tr); got != 8 {
		t.Errorf("2 stations = %d cycles, want 8", got)
	}
}

func TestTomasuloBypassChain(t *testing.T) {
	// Producer broadcasts at 3 (issue 0, exec 1..2? transfer latency
	// 1: exec at 1, done 2); consumer issues 1, wakes at 2, execs 2,
	// done 8.
	tr := new(builder).
		op(isa.OpSImm, isa.S(1), isa.NoReg, isa.NoReg).
		op(isa.OpFAdd, isa.S(2), isa.S(1), isa.S(1)).
		trace()
	if got := cycles(t, NewTomasulo(M11BR5), tr); got != 8 {
		t.Errorf("bypass chain = %d cycles, want 8", got)
	}
}

func TestTomasuloBranchWaitsForA0InFlight(t *testing.T) {
	// A0's producer broadcasts at 3; the branch issues then, resolves
	// at 8; the transfer issues 8, execs 9, done 10.
	tr := new(builder).
		op(isa.OpAAdd, isa.A0, isa.A(1), isa.A(2)).
		branch(isa.OpJAN, false).
		op(isa.OpSImm, isa.S(1), isa.NoReg, isa.NoReg).
		trace()
	if got := cycles(t, NewTomasulo(M11BR5), tr); got != 10 {
		t.Errorf("Tomasulo branch = %d cycles, want 10", got)
	}
}

func TestDependencyResolutionOrdering(t *testing.T) {
	// §3.3's progression on every loop, aggregate: blocking issue <
	// scoreboard (RAW resolved) < Tomasulo (WAW too) <= RUU with a
	// large centralized buffer. Per-loop small inversions are possible
	// between Tomasulo and RUU (different buffer structures), so the
	// first two steps are per-loop and the last is aggregate.
	var sumTom, sumRUU float64
	for _, k := range loops.All() {
		cray := NewBasic(CRAYLike, M11BR5).Run(k.SharedTrace()).IssueRate()
		sb := NewScoreboard(M11BR5).Run(k.SharedTrace()).IssueRate()
		tom := NewTomasulo(M11BR5).Run(k.SharedTrace()).IssueRate()
		ruu := NewRUU(M11BR5.WithIssue(1, bus.BusN).WithRUU(50)).Run(k.SharedTrace()).IssueRate()
		if sb < cray-1e-9 {
			t.Errorf("%s: scoreboard (%.4f) below CRAY-like (%.4f)", k, sb, cray)
		}
		if tom < sb-1e-9 {
			t.Errorf("%s: Tomasulo (%.4f) below scoreboard (%.4f)", k, tom, sb)
		}
		sumTom += tom
		sumRUU += ruu
	}
	if sumRUU < sumTom {
		t.Errorf("RUU aggregate (%.3f) below Tomasulo aggregate (%.3f)", sumRUU, sumTom)
	}
}

func TestDepResMachinesReusable(t *testing.T) {
	tr := new(builder).
		op(isa.OpFAdd, isa.S(1), isa.S(0), isa.S(0)).
		branch(isa.OpJAN, false).
		load(isa.S(2), 7).
		trace()
	for _, m := range []Machine{NewScoreboard(M11BR5), NewTomasulo(M11BR5)} {
		if a, b := m.Run(tr).Cycles, m.Run(tr).Cycles; a != b {
			t.Errorf("%s: reruns differ (%d vs %d)", m.Name(), a, b)
		}
	}
}

func TestPerfectBranchesRemoveBranchStalls(t *testing.T) {
	// [JAN untaken, FAdd]: with perfect prediction the branch costs
	// one issue slot; the add issues at 1 and completes at 7, vs. 11
	// with the modeled 5-cycle branch.
	tr := new(builder).
		branch(isa.OpJAN, false).
		op(isa.OpFAdd, isa.S(1), isa.S(0), isa.S(0)).
		trace()
	if got := cycles(t, NewBasic(CRAYLike, M11BR5.WithPerfectBranches()), tr); got != 7 {
		t.Errorf("perfect branches = %d cycles, want 7", got)
	}
	// The A0 wait disappears too.
	tr3 := new(builder).
		op(isa.OpAAdd, isa.A0, isa.A(1), isa.A(2)).
		branch(isa.OpJAN, false).
		op(isa.OpSImm, isa.S(1), isa.NoReg, isa.NoReg).
		trace()
	// AAdd 0..2; branch issues at 1 without waiting for A0; transfer
	// at 2, done 3; the AAdd's completion at 2 < 3.
	if got := cycles(t, NewBasic(CRAYLike, M11BR5.WithPerfectBranches()), tr3); got != 3 {
		t.Errorf("perfect branches with A0 producer = %d cycles, want 3", got)
	}
}

func TestPerfectBranchesHelpEveryMachine(t *testing.T) {
	for _, k := range loops.All() {
		tr := k.SharedTrace()
		mks := []func(Config) Machine{
			func(c Config) Machine { return NewBasic(CRAYLike, c) },
			func(c Config) Machine { return NewMultiIssue(c.WithIssue(4, bus.BusN)) },
			func(c Config) Machine { return NewMultiIssueOOO(c.WithIssue(4, bus.BusN)) },
			func(c Config) Machine { return NewRUU(c.WithIssue(2, bus.BusN).WithRUU(40)) },
			NewScoreboard,
			NewTomasulo,
		}
		for i, mk := range mks {
			base := mk(M11BR5).Run(tr)
			ideal := mk(M11BR5.WithPerfectBranches()).Run(tr)
			// The greedy buffered machines admit small Graham-type
			// anomalies (see TestRUULargelyMonotoneInSize); the
			// blocking-issue machine does not.
			slack := 1.02
			if i == 0 {
				slack = 1.0
			}
			if float64(ideal.Cycles) > slack*float64(base.Cycles) {
				t.Errorf("%s on %s: perfect branches added cycles (%d -> %d)",
					k, base.Machine, base.Cycles, ideal.Cycles)
			}
			// On the blocking-issue base machine every loop is partly
			// branch-gated, so the gain must be real there. Machines
			// that already overlap past branches (or are bound by a
			// saturated unit, as the scoreboard is on LFK 14's
			// read-modify-write chains) may legitimately not move.
			if i == 0 && ideal.Cycles >= base.Cycles {
				t.Errorf("%s on %s: perfect branches changed nothing", k, base.Machine)
			}
		}
	}
}
