package core

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mfup/internal/bus"
	"mfup/internal/events"
	"mfup/internal/isa"
	"mfup/internal/loops"
	"mfup/internal/probe"
	"mfup/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace fixtures")

// traceMachines is the event-recording test matrix: every machine
// model, including the banked-memory and perfect-branch extensions.
func traceMachines() []func() Machine {
	return []func() Machine{
		func() Machine { return NewBasic(Simple, M11BR5) },
		func() Machine { return NewBasic(SerialMemory, M11BR5) },
		func() Machine { return NewBasic(NonSegmented, M5BR2) },
		func() Machine { return NewBasic(CRAYLike, M11BR5) },
		func() Machine { return NewBasic(CRAYLike, M11BR5.WithPerfectBranches()) },
		func() Machine { return NewBasic(CRAYLike, M11BR5.WithMemBanks(4)) },
		func() Machine { return NewScoreboard(M11BR5) },
		func() Machine { return NewTomasulo(M5BR5) },
		func() Machine { return NewMultiIssue(M11BR5.WithIssue(4, bus.BusN)) },
		func() Machine { return NewMultiIssue(M5BR2.WithIssue(3, bus.Bus1)) },
		func() Machine { return NewMultiIssueOOO(M11BR5.WithIssue(4, bus.BusN)) },
		func() Machine { return NewMultiIssueOOO(M5BR2.WithIssue(3, bus.Bus1)) },
		func() Machine { return NewMultiIssueOOO(M11BR5.WithIssue(4, bus.BusN).WithMemBanks(2)) },
		func() Machine { return NewRUU(M11BR5.WithIssue(2, bus.BusN).WithRUU(16)) },
		func() Machine { return NewRUU(M5BR5.WithIssue(4, bus.Bus1).WithRUU(30)) },
		func() Machine { return NewVector(M11BR5) },
	}
}

// TestTraceInvariantAllMachines runs every machine over every loop it
// accepts — bare, then with a recorder, then with recorder and probe
// together — and checks that recording never changes the result and
// that the recorded lifecycle is internally consistent: one issue per
// instruction, pipeline-ordered timestamps per instruction, and an
// event census that agrees with the probe's slot ledger.
func TestTraceInvariantAllMachines(t *testing.T) {
	for _, k := range loops.All() {
		tr := k.SharedTrace()
		for _, mk := range traceMachines() {
			m := mk()
			bare, err := m.RunChecked(tr, Limits{})
			if err != nil {
				continue // scalar machine rejecting a vector trace
			}
			rec := events.NewRecorder(0)
			m.SetRecorder(rec)
			got, err := m.RunChecked(tr, Limits{})
			if err != nil {
				t.Fatalf("%s on %s: recorded run failed: %v", m.Name(), tr.Name, err)
			}
			if got != bare {
				t.Errorf("%s on %s: recorded result %+v != bare %+v", m.Name(), tr.Name, got, bare)
			}
			runs := rec.Runs()
			if len(runs) != 1 {
				t.Fatalf("%s on %s: %d runs recorded, want 1", m.Name(), tr.Name, len(runs))
			}
			checkRunEvents(t, m.Name(), tr, &runs[0], bare)

			// Probe and recorder together: still the same result, and
			// the issue-event census matches the probe's ledger.
			var c probe.Counters
			m.SetProbe(&c)
			rec.Reset()
			both, err := m.RunChecked(tr, Limits{})
			m.SetProbe(nil)
			m.SetRecorder(nil)
			if err != nil {
				t.Fatalf("%s on %s: probed+recorded run failed: %v", m.Name(), tr.Name, err)
			}
			if both != bare {
				t.Errorf("%s on %s: probed+recorded result %+v != bare %+v", m.Name(), tr.Name, both, bare)
			}
			if err := c.Check(); err != nil {
				t.Errorf("%s on %s: %v", m.Name(), tr.Name, err)
			}
			if issues := countKind(&rec.Runs()[0], events.Issue); issues != c.Issued {
				t.Errorf("%s on %s: %d issue events vs probe ledger's %d issued",
					m.Name(), tr.Name, issues, c.Issued)
			}
			if resolves := countKind(&rec.Runs()[0], events.BranchResolve); resolves != c.Branches {
				t.Errorf("%s on %s: %d branch-resolve events vs probe's %d resolutions",
					m.Name(), tr.Name, resolves, c.Branches)
			}
		}
	}
}

func countKind(run *events.Run, k events.Kind) int64 {
	var n int64
	for _, ev := range run.Events {
		if ev.Kind == k {
			n++
		}
	}
	return n
}

// checkRunEvents verifies one uncapped run's internal consistency
// against the trace it recorded and the bare result.
func checkRunEvents(t *testing.T, machine string, tr *trace.Trace, run *events.Run, bare Result) {
	t.Helper()
	if run.Dropped != 0 {
		t.Fatalf("%s on %s: %d events dropped under the default cap", machine, tr.Name, run.Dropped)
	}
	if run.Machine != machine || run.Trace != tr.Name {
		t.Errorf("%s on %s: run labeled %q on %q", machine, tr.Name, run.Machine, run.Trace)
	}
	if run.Cycles != bare.Cycles {
		t.Errorf("%s on %s: run records %d cycles, result says %d", machine, tr.Name, run.Cycles, bare.Cycles)
	}

	type lifecycle struct {
		fetch, alloc, issue, exec, execEnd, bus, wb, resolve, commit int64
		issues                                                       int
	}
	perSeq := map[int64]*lifecycle{}
	get := func(seq int64) *lifecycle {
		lc, ok := perSeq[seq]
		if !ok {
			lc = &lifecycle{fetch: -1, alloc: -1, issue: -1, exec: -1, execEnd: -1, bus: -1, wb: -1, resolve: -1, commit: -1}
			perSeq[seq] = lc
		}
		return lc
	}
	for _, ev := range run.Events {
		if ev.Seq < 0 || ev.Seq >= int64(len(tr.Ops)) {
			t.Fatalf("%s on %s: event for nonexistent instruction #%d", machine, tr.Name, ev.Seq)
		}
		if ev.Cycle < 0 || ev.Cycle > bare.Cycles {
			t.Errorf("%s on %s: #%d %s at cycle %d outside [0, %d]",
				machine, tr.Name, ev.Seq, ev.Kind, ev.Cycle, bare.Cycles)
		}
		lc := get(ev.Seq)
		switch ev.Kind {
		case events.Fetch:
			lc.fetch = ev.Cycle
		case events.Alloc:
			lc.alloc = ev.Cycle
		case events.Issue:
			lc.issue = ev.Cycle
			lc.issues++
		case events.Exec:
			lc.exec, lc.execEnd = ev.Cycle, ev.Cycle+ev.Dur
		case events.ResultBus:
			lc.bus = ev.Cycle
		case events.Writeback:
			lc.wb = ev.Cycle
		case events.BranchResolve:
			lc.resolve = ev.Cycle
		case events.Commit:
			lc.commit = ev.Cycle
		}
	}

	for i := range tr.Ops {
		seq := tr.Ops[i].Seq
		lc, ok := perSeq[seq]
		if !ok || lc.issues == 0 {
			t.Fatalf("%s on %s: instruction #%d never issued in the event record", machine, tr.Name, seq)
		}
		if lc.issues != 1 {
			t.Errorf("%s on %s: #%d issued %d times", machine, tr.Name, seq, lc.issues)
		}
		ordered := func(what string, before, after int64) {
			if before >= 0 && after >= 0 && before > after {
				t.Errorf("%s on %s: #%d %s out of order (%d > %d)", machine, tr.Name, seq, what, before, after)
			}
		}
		ordered("fetch/issue", lc.fetch, lc.issue)
		ordered("alloc/issue", lc.alloc, lc.issue)
		ordered("issue/exec", lc.issue, lc.exec)
		ordered("exec/writeback", lc.exec, lc.wb)
		ordered("exec-end/writeback", lc.execEnd, lc.wb)
		ordered("issue/result-bus", lc.issue, lc.bus)
		ordered("writeback/commit", lc.wb, lc.commit)
	}
}

// TestTraceGoldenChromeCRAY locks the Perfetto/Chrome export format:
// a small deterministic kernel on the CRAY-like machine must encode
// byte-for-byte as the checked-in fixture. Regenerate with
// `go test ./internal/core -run TestTraceGoldenChromeCRAY -update`
// after a deliberate format change.
func TestTraceGoldenChromeCRAY(t *testing.T) {
	// A miniature loop body: load, dependent multiply-add chain, store,
	// loop branch — enough to exercise memory, two float units, and the
	// branch track.
	b := new(builder).
		load(isa.S(1), 8).
		op(isa.OpFMul, isa.S(2), isa.S(1), isa.S(1)).
		op(isa.OpFAdd, isa.S(3), isa.S(2), isa.S(1)).
		store(isa.A(1), isa.S(3), 16).
		op(isa.OpAAdd, isa.A(2), isa.A(2), isa.A(1)).
		branch(isa.OpJAN, true)
	tr := b.trace()
	tr.Name = "golden"

	m := NewBasic(CRAYLike, M11BR5)
	rec := events.NewRecorder(64)
	m.SetRecorder(rec)
	m.Run(tr)
	m.SetRecorder(nil)

	var out strings.Builder
	if err := events.WriteChrome(&out, rec); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_cray.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(out.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if out.String() != string(want) {
		t.Errorf("Chrome trace drifted from the golden fixture (regenerate with -update if deliberate)\ngot:\n%s\nwant:\n%s",
			out.String(), want)
	}
}

// BenchmarkTraceOverhead compares the nil-recorder hot path against a
// run with a recorder attached; CI greps the nil case to guard the
// zero-overhead contract, exactly as BenchmarkProbeOverhead does for
// the probe layer.
func BenchmarkTraceOverhead(b *testing.B) {
	k, err := loops.Get(1)
	if err != nil {
		b.Fatal(err)
	}
	tr := k.SharedTrace()
	b.Run("nil", func(b *testing.B) {
		m := NewMultiIssueOOO(M11BR5.WithIssue(4, bus.BusN))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Run(tr)
		}
	})
	b.Run("recorder", func(b *testing.B) {
		m := NewMultiIssueOOO(M11BR5.WithIssue(4, bus.BusN))
		rec := events.NewRecorder(0)
		m.SetRecorder(rec)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec.Reset()
			m.Run(tr)
		}
	})
}
