// Package core contains the paper's machine models: the cycle-level
// timing simulators whose instruction issue rates the study compares.
//
// All machines are trace driven. A dynamic instruction trace
// (internal/trace) fixes what executes; a machine model decides only
// *when* each instruction issues and completes, under its particular
// issue rules, functional-unit organization, memory organization, and
// result-bus interconnect. The machines are:
//
//   - Simple: two-stage serial machine; one instruction in execution
//     at a time (§3.1).
//   - SerialMemory: overlap across distinct functional units, but
//     every unit — including memory — handles one operation at a time
//     (§3.2).
//   - NonSegmented: like SerialMemory with an interleaved (pipelined)
//     memory; functional units remain unsegmented, as in the CDC 6600
//     (§3.2).
//   - CRAYLike: interleaved memory and fully segmented functional
//     units, as in the CRAY-1 (§3.2).
//   - MultiIssue: CRAY-like functional units with N issue stations
//     and strictly in-order issue (§5.1).
//   - MultiIssueOOO: N issue stations with out-of-order issue within
//     the instruction buffer (§5.2).
//   - RUU: N issue units with dependency resolution and register
//     renaming through a Register Update Unit (§5.3).
package core

import (
	"fmt"

	"mfup/internal/bus"
	"mfup/internal/events"
	"mfup/internal/fu"
	"mfup/internal/isa"
	"mfup/internal/probe"
	"mfup/internal/trace"
)

// Config carries the machine parameters the paper varies.
type Config struct {
	// MemLatency is the memory access time in cycles: 11 in the base
	// CRAY-1 model ("slow memory"), 5 with fast intermediate storage
	// ("fast memory").
	MemLatency int

	// BranchLatency is the branch execution time in cycles: 5 for the
	// CRAY-1S-style slow branch, 2 for the fast branch.
	BranchLatency int

	// IssueUnits is the number of issue stations/units for the
	// multiple-issue machines. Single-issue machines ignore it.
	IssueUnits int

	// Bus selects the result-bus interconnect for the multiple-issue
	// machines.
	Bus bus.Kind

	// RUUSize is the number of Register Update Unit entries for the
	// RUU machine.
	RUUSize int

	// PerfectBranches is an upper-bound ablation: branches are
	// predicted perfectly and never block the issue stage (the paper
	// deliberately models NO prediction — §2: "we have not
	// incorporated any type of guessing or branch prediction"). A
	// branch still occupies one issue slot. Use this to measure how
	// much of the remaining blockage is control dependences.
	PerfectBranches bool

	// MemBanks enables the banked interleaved-memory extension
	// (internal/mem): 0 models the paper's ideal interleaved memory;
	// B > 0 models B address-interleaved banks, each busy for the
	// access time of a request it serves. Ignored by machines whose
	// memory is serial anyway.
	MemBanks int

	// FULat overrides the fixed per-class functional-unit latencies
	// (internal/isa): entry u > 0 replaces unit u's latency; entry 0
	// keeps the CRAY-1 reference value. Memory and Branch entries must
	// stay zero — those latencies are MemLatency and BranchLatency.
	// The zero value therefore reproduces the paper's machines exactly.
	FULat [isa.NumUnits]int

	// FUCount replicates functional-unit classes: entry u > 1 gives
	// the machine that many identical copies of unit u sharing one
	// dispatch port; entries 0 and 1 both mean the base architecture's
	// single copy.
	FUCount [isa.NumUnits]int

	// BusCount sizes the crossbar interconnect's shared result-bus
	// capacity independently of the station count: 0 keeps the paper's
	// one-bus-per-station crossbar. Contradictory for BusN/Bus1, whose
	// bus counts are implied by the kind.
	BusCount int
}

// The paper's four machine variations: memory access time crossed
// with branch execution time.
var (
	M11BR5 = Config{MemLatency: 11, BranchLatency: 5}
	M11BR2 = Config{MemLatency: 11, BranchLatency: 2}
	M5BR5  = Config{MemLatency: 5, BranchLatency: 5}
	M5BR2  = Config{MemLatency: 5, BranchLatency: 2}
)

// BaseConfigs returns the paper's four variations in table order.
func BaseConfigs() []Config { return []Config{M11BR5, M11BR2, M5BR5, M5BR2} }

// Name returns the paper's name for the memory/branch combination,
// e.g. "M11BR5".
func (c Config) Name() string {
	return fmt.Sprintf("M%dBR%d", c.MemLatency, c.BranchLatency)
}

// Latencies returns the functional-unit latency table for this
// configuration: the CRAY-1 reference table with the memory and
// branch machine parameters applied, then any per-unit FULat
// overrides.
func (c Config) Latencies() isa.Latencies {
	l := isa.NewLatencies(c.MemLatency, c.BranchLatency)
	for u, cycles := range c.FULat {
		if cycles > 0 {
			l = l.WithOverride(isa.Unit(u), cycles)
		}
	}
	return l
}

// newPool builds the functional-unit pool for this configuration:
// the latency table plus any per-class replication. Segmentation is
// an organization property, so the caller sets it.
func (c Config) newPool() *fu.Pool {
	p := fu.NewPool(c.Latencies())
	for u, n := range c.FUCount {
		if n > 1 {
			p.SetCount(isa.Unit(u), n)
		}
	}
	return p
}

// newBusTracker builds the result-bus tracker for the multiple-issue
// machines: IssueUnits stations under the Bus organization, with
// BusCount shared crossbar buses (0 = one per station).
func (c Config) newBusTracker() (*bus.Tracker, error) {
	return bus.NewTrackerCheckedBuses(c.Bus, c.IssueUnits, c.BusCount)
}

// WithIssue returns c with the multiple-issue parameters set.
func (c Config) WithIssue(units int, kind bus.Kind) Config {
	c.IssueUnits = units
	c.Bus = kind
	return c
}

// WithRUU returns c with the RUU size set.
func (c Config) WithRUU(size int) Config {
	c.RUUSize = size
	return c
}

// WithPerfectBranches returns c with the ideal-branch-prediction
// ablation enabled.
func (c Config) WithPerfectBranches() Config {
	c.PerfectBranches = true
	return c
}

// WithMemBanks returns c with the banked-memory extension enabled.
func (c Config) WithMemBanks(banks int) Config {
	c.MemBanks = banks
	return c
}

// Validate reports whether the configuration is structurally
// possible. It is the error-returning form used by the checked
// constructors; the panicking constructors assert it via validate.
func (c Config) Validate() error {
	if c.MemLatency <= 0 {
		return fmt.Errorf("core: config %s: memory latency must be positive, got %d", c.Name(), c.MemLatency)
	}
	if c.BranchLatency <= 0 {
		return fmt.Errorf("core: config %s: branch latency must be positive, got %d", c.Name(), c.BranchLatency)
	}
	if c.IssueUnits < 0 {
		return fmt.Errorf("core: config %s: negative issue units %d", c.Name(), c.IssueUnits)
	}
	if c.RUUSize < 0 {
		return fmt.Errorf("core: config %s: negative RUU size %d", c.Name(), c.RUUSize)
	}
	if c.MemBanks < 0 {
		return fmt.Errorf("core: config %s: negative memory bank count %d", c.Name(), c.MemBanks)
	}
	if c.BusCount < 0 {
		return fmt.Errorf("core: config %s: negative result-bus count %d", c.Name(), c.BusCount)
	}
	for u := 0; u < isa.NumUnits; u++ {
		if c.FULat[u] < 0 {
			return fmt.Errorf("core: config %s: negative latency override %d for %s", c.Name(), c.FULat[u], isa.Unit(u))
		}
		if c.FULat[u] > 0 && (isa.Unit(u) == isa.Memory || isa.Unit(u) == isa.Branch) {
			return fmt.Errorf("core: config %s: %s latency is a machine parameter; set MemLatency/BranchLatency, not FULat", c.Name(), isa.Unit(u))
		}
		if c.FUCount[u] < 0 {
			return fmt.Errorf("core: config %s: negative copy count %d for %s", c.Name(), c.FUCount[u], isa.Unit(u))
		}
	}
	return nil
}

// validate panics on structurally impossible configurations; it is
// the compatibility wrapper the legacy constructors use.
func (c Config) validate() {
	if err := c.Validate(); err != nil {
		panic(err.Error())
	}
}

// Result reports one simulation run.
type Result struct {
	Machine      string
	Trace        string
	Instructions int64
	Cycles       int64
}

// IssueRate returns instructions issued per clock cycle, the paper's
// performance measure.
func (r Result) IssueRate() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// String renders the result compactly.
func (r Result) String() string {
	return fmt.Sprintf("%s on %s: %d instructions, %d cycles, %.2f/cycle",
		r.Machine, r.Trace, r.Instructions, r.Cycles, r.IssueRate())
}

// Machine is a timing model: it runs a trace and reports cycle
// counts. Implementations are single-use-at-a-time but reusable:
// Run and RunChecked fully reset internal state.
//
// RunChecked is the fault-tolerant entry point: the run is bounded by
// lim (cycle budget, no-forward-progress watchdog, wall-clock
// deadline) and every failure — including an unsimulatable trace —
// comes back as a *SimError rather than a panic. Run is the legacy
// unlimited form; it panics on unsimulatable traces and is kept as a
// thin wrapper over RunChecked with zero Limits.
//
// Concurrency contract: machines are stateful and NOT safe for
// concurrent use — one instance must never execute Run on two
// goroutines at once. To run cells of an experiment grid in parallel,
// construct a fresh machine per goroutine (internal/runner encodes
// this by taking constructors, not instances). Traces, by contrast,
// are shared freely: a Trace and its Prepared decode cache are
// immutable during simulation, so any number of machines may run the
// same trace concurrently.
// Observability contract: SetProbe attaches a probe (internal/probe)
// that the machine notifies of issues, attributed stalls, writebacks,
// and branch resolutions during subsequent runs; SetProbe(nil)
// detaches it. SetRecorder likewise attaches an event recorder
// (internal/events) capturing each instruction's lifecycle — fetch,
// buffer allocation, issue, functional-unit occupancy, result-bus
// acquisition, writeback, branch resolution, commit — with cycle
// timestamps; SetRecorder(nil) detaches it. Probe and recorder are
// independent: either, both, or neither may be attached. Neither ever
// changes timing — simulated cycle counts are identical observed and
// unobserved — and each nil default costs only a predicted-not-taken
// branch per event site (machines that duplicate their hot loop for
// observation fork once per run instead). Like the machine itself, an
// attached probe or recorder is driven from the running goroutine and
// must not be shared across concurrently running machines.
type Machine interface {
	Name() string
	Run(t *trace.Trace) Result
	RunChecked(t *trace.Trace, lim Limits) (Result, error)
	SetProbe(p probe.Probe)
	SetRecorder(r *events.Recorder)
}
