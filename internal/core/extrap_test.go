package core

import (
	"strings"
	"testing"

	"mfup/internal/events"
	"mfup/internal/isa"
	"mfup/internal/loops"
	"mfup/internal/probe"
	"mfup/internal/simerr"
	"mfup/internal/trace"
)

func kernelTrace(t *testing.T, n int) *trace.Trace {
	t.Helper()
	k, err := loops.Get(n)
	if err != nil {
		t.Fatalf("kernel %d: %v", n, err)
	}
	return k.SharedTrace()
}

// TestExtrapolatorEngages checks the engine on its bread-and-butter
// case: a strided kernel on the CRAY-like machine must engage, cost
// far fewer simulated ops than the trace holds, and return the exact
// full-simulation result. The kernel is scaled up because the
// reference ladder has a fixed cost (~10k ops): only beyond the paper
// default length does O(1) beat O(n).
func TestExtrapolatorEngages(t *testing.T) {
	k, err := loops.Scaled(1, 4000)
	if err != nil {
		t.Fatal(err)
	}
	tr := k.SharedTrace()
	bare := NewBasic(CRAYLike, M11BR5)
	want, err := bare.RunChecked(tr, DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	e := Extrapolate(NewBasic(CRAYLike, M11BR5))
	got, err := e.RunChecked(tr, DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("extrapolated %+v, full %+v", got, want)
	}
	s := e.Stats()
	if !s.Engaged {
		t.Fatalf("did not engage: %s", s.Reason)
	}
	if s.Lag < 1 || s.Span <= 0 || s.Skipped <= 0 || s.CyclesPerLag <= 0 {
		t.Errorf("implausible stats %+v", s)
	}
	if s.Windows != int64(tr.Prepared().Period().Windows) {
		t.Errorf("Windows = %d, want the trace's %d", s.Windows, tr.Prepared().Period().Windows)
	}
	if s.SimulatedOps >= int64(len(tr.Ops)) {
		t.Errorf("simulated %d ops, no cheaper than the %d-op trace", s.SimulatedOps, len(tr.Ops))
	}
}

// TestExtrapolatorIdempotentWrap checks that wrapping an Extrapolator
// returns it unchanged rather than stacking engines.
func TestExtrapolatorIdempotentWrap(t *testing.T) {
	e := Extrapolate(NewBasic(CRAYLike, M11BR5))
	if Extrapolate(e) != e {
		t.Error("double wrap built a second engine")
	}
}

// TestExtrapolatorFallbackNoPeriod checks the clean-fallback path on a
// trace with data-dependent control flow: same result as the bare
// machine, stats reporting why.
func TestExtrapolatorFallbackNoPeriod(t *testing.T) {
	tr := kernelTrace(t, 13)
	want, err := NewBasic(CRAYLike, M11BR5).RunChecked(tr, DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	e := Extrapolate(NewBasic(CRAYLike, M11BR5))
	got, err := e.RunChecked(tr, DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("fallback result %+v differs from bare %+v", got, want)
	}
	if s := e.Stats(); s.Engaged || !strings.Contains(s.Reason, "no steady-state period") {
		t.Errorf("stats = %+v, want period-detection fallback", s)
	}
}

// TestExtrapolatorFallbackRecorder checks that an attached event
// recorder forces full simulation — lifecycle events exist only for
// simulated instructions — and that the recorded stream is complete.
func TestExtrapolatorFallbackRecorder(t *testing.T) {
	tr := kernelTrace(t, 1)
	ref := events.NewRecorder(0)
	bare := NewBasic(CRAYLike, M11BR5)
	bare.SetRecorder(ref)
	if _, err := bare.RunChecked(tr, DefaultLimits()); err != nil {
		t.Fatal(err)
	}
	bare.SetRecorder(nil)

	rec := events.NewRecorder(0)
	e := Extrapolate(NewBasic(CRAYLike, M11BR5))
	e.SetRecorder(rec)
	if _, err := e.RunChecked(tr, DefaultLimits()); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Engaged || !strings.Contains(s.Reason, "recorder") {
		t.Errorf("stats = %+v, want recorder fallback", s)
	}
	if rec.Events() != ref.Events() {
		t.Errorf("recorded %d events through the wrapper, %d bare", rec.Events(), ref.Events())
	}
}

// countingProbe is a probe.Probe that is not a *probe.Counters: the
// engine cannot extrapolate through it and must fall back, still
// driving it for the full run.
type countingProbe struct{ issued int64 }

func (p *countingProbe) Begin(machine, trace string, width, capacity int) {}
func (p *countingProbe) Issue(cycle int64, n int64)                       { p.issued += n }
func (p *countingProbe) Stall(cycle int64, r probe.Reason, slots int64)   {}
func (p *countingProbe) Writeback(cycle int64, u isa.Unit, busy int64)    {}
func (p *countingProbe) BranchResolve(cycle int64)                        {}
func (p *countingProbe) Occupancy(level int, cycles int64)                {}
func (p *countingProbe) End(cycles int64)                                 {}

// TestExtrapolatorFallbackProbeType checks the unsupported-probe
// fallback: results unchanged, the caller's probe sees the whole run.
func TestExtrapolatorFallbackProbeType(t *testing.T) {
	tr := kernelTrace(t, 1)
	var p countingProbe
	e := Extrapolate(NewBasic(CRAYLike, M11BR5))
	e.SetProbe(&p)
	r, err := e.RunChecked(tr, DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Engaged || !strings.Contains(s.Reason, "probe") {
		t.Errorf("stats = %+v, want probe-type fallback", s)
	}
	if p.issued != r.Instructions {
		t.Errorf("probe saw %d issues, run reported %d instructions", p.issued, r.Instructions)
	}
}

// TestExtrapolatorBudget checks that skipped iterations still count
// against the cycle budget: a budget the full run would blow must
// fail the extrapolated run with the same structured error, even
// though the engine never simulates past it.
func TestExtrapolatorBudget(t *testing.T) {
	tr := kernelTrace(t, 1)
	full, err := NewBasic(CRAYLike, M11BR5).RunChecked(tr, DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	lim := DefaultLimits()
	lim.MaxCycles = full.Cycles - 1
	e := Extrapolate(NewBasic(CRAYLike, M11BR5))
	_, err = e.RunChecked(tr, lim)
	se, ok := err.(*SimError)
	if !ok || se.Kind != simerr.KindCycleBudget {
		t.Fatalf("err = %v, want cycle-budget SimError", err)
	}
	if !e.Stats().Engaged {
		t.Errorf("budget failure did not come from the engaged path: %s", e.Stats().Reason)
	}
	// One cycle of headroom and the same run must succeed exactly.
	lim.MaxCycles = full.Cycles
	got, err := e.RunChecked(tr, lim)
	if err != nil || got != full {
		t.Errorf("at the exact budget: %+v, %v; want %+v", got, err, full)
	}
}

// TestExtrapolatorVirtual checks virtual-iteration extension against
// ground truth: extrapolating LFK 1 from a 150-iteration trace to 200
// iterations must reproduce, bit for bit, the full simulation of the
// really-materialized 200-iteration trace — result and stall ledger.
func TestExtrapolatorVirtual(t *testing.T) {
	kSmall, err := loops.Scaled(1, 150)
	if err != nil {
		t.Fatal(err)
	}
	kBig, err := loops.Scaled(1, 200)
	if err != nil {
		t.Fatal(err)
	}
	vw, err := loops.VirtualWindows(kSmall, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{M11BR5, M5BR2} {
		bare := NewBasic(CRAYLike, cfg)
		var wantC probe.Counters
		bare.SetProbe(&wantC)
		want, err := bare.RunChecked(kBig.SharedTrace(), DefaultLimits())
		if err != nil {
			t.Fatal(err)
		}
		bare.SetProbe(nil)

		e := Extrapolate(NewBasic(CRAYLike, cfg)).
			WithVirtual(map[string]int64{kSmall.SharedTrace().Name: vw})
		var gotC probe.Counters
		e.SetProbe(&gotC)
		got, err := e.RunChecked(kSmall.SharedTrace(), DefaultLimits())
		if err != nil {
			t.Fatal(err)
		}
		if !e.Stats().Engaged {
			t.Fatalf("%s: virtual run fell back: %s", cfg.Name(), e.Stats().Reason)
		}
		if got.Cycles != want.Cycles || got.Instructions != want.Instructions {
			t.Errorf("%s: virtual %+v, materialized %+v", cfg.Name(), got, want)
		}
		if gotC.Issued != wantC.Issued || gotC.Slots != wantC.Slots || gotC.Stalls != wantC.Stalls {
			t.Errorf("%s: virtual counters diverge:\n got %v\nwant %v", cfg.Name(), gotC.String(), wantC.String())
		}
	}
}

// TestExtrapolatorVirtualStrict checks the strict contract: virtual
// iterations on a trace with no steady state are unreachable, and the
// run must fail with a structured error rather than silently
// simulating fewer iterations than asked.
func TestExtrapolatorVirtualStrict(t *testing.T) {
	tr := kernelTrace(t, 13) // no period
	e := Extrapolate(NewBasic(CRAYLike, M11BR5)).
		WithVirtual(map[string]int64{tr.Name: 1000})
	_, err := e.RunChecked(tr, DefaultLimits())
	se, ok := err.(*SimError)
	if !ok || se.Kind != simerr.KindBadTrace || !strings.Contains(se.Msg, "cannot extrapolate") {
		t.Fatalf("err = %v, want bad-trace SimError naming the virtual iterations", err)
	}
}

// TestExtrapolatorVirtualBestEffort checks the tables-mode softening:
// with BestEffort set, the same unreachable virtual run degrades to a
// full simulation of the materialized trace instead of failing.
func TestExtrapolatorVirtualBestEffort(t *testing.T) {
	tr := kernelTrace(t, 13)
	want, err := NewBasic(CRAYLike, M11BR5).RunChecked(tr, DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	e := Extrapolate(NewBasic(CRAYLike, M11BR5)).
		WithVirtual(map[string]int64{tr.Name: 1000}).BestEffort()
	got, err := e.RunChecked(tr, DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("best-effort %+v, bare %+v", got, want)
	}
	if e.Stats().Engaged {
		t.Error("best-effort run claims engagement")
	}
}

// TestCanExtrapolatePerKernel pins the machine-independent feasibility
// check across the Livermore set: the strided kernels qualify, and
// each excluded kernel is excluded for its documented reason.
func TestCanExtrapolatePerKernel(t *testing.T) {
	wantErr := map[int]string{
		2: "no steady-state period", 4: "too few iterations",
		6: "no steady-state period", 8: "no steady-state period",
		13: "no steady-state period", 14: "tail address identity",
	}
	for n := 1; n <= 14; n++ {
		err := CanExtrapolate(kernelTrace(t, n))
		if want, excluded := wantErr[n]; excluded {
			if err == nil || !strings.Contains(err.Error(), want) {
				t.Errorf("LFK %d: CanExtrapolate = %v, want error containing %q", n, err, want)
			}
		} else if err != nil {
			t.Errorf("LFK %d: CanExtrapolate = %v, want nil", n, err)
		}
	}
}
