package core

import (
	"time"

	"mfup/internal/faultinject"
	"mfup/internal/simerr"
	"mfup/internal/trace"
)

// SimError is the structured error every checked run reports; see
// internal/simerr for the full taxonomy.
type SimError = simerr.SimError

// Limits bounds a checked simulation run (Machine.RunChecked). The
// zero value checks nothing, which makes RunChecked with Limits{}
// behave exactly like the legacy Run.
//
// (Not to be confused with internal/limits, the paper's §4
// performance bounds — these are execution guards, not performance
// models.)
type Limits struct {
	// MaxCycles aborts the run once the simulated clock passes it.
	// 0 disables the budget.
	MaxCycles int64

	// StallCycles is the no-forward-progress watchdog: a cycle-stepped
	// machine that issues, dispatches, completes, and commits nothing
	// for this many consecutive cycles is declared livelocked. 0
	// disables the watchdog. Machines whose issue times are computed
	// directly (the single-issue models) cannot stall and ignore it.
	StallCycles int64

	// Deadline is a wall-clock bound, polled every few thousand
	// simulated events. The zero time disables it.
	Deadline time.Time
}

// DefaultStallCycles is the recommended watchdog window: far beyond
// any legitimate event gap (the largest gap a healthy run can see is
// one functional-unit latency), yet cheap to reach when a model bug
// or pathological configuration livelocks a machine.
const DefaultStallCycles = 1 << 20

// DefaultLimits returns the production defaults: no cycle budget, no
// deadline, the stall watchdog armed at DefaultStallCycles.
func DefaultLimits() Limits {
	return Limits{StallCycles: DefaultStallCycles}
}

// newGuard builds the limit enforcer for one run and, when fault
// injection is active, installs the run's injected-fault schedule.
// With injection off (the production default) the extra cost is one
// atomic pointer load per run.
func newGuard(machine, traceName string, lim Limits) simerr.Guard {
	g := simerr.NewGuard(machine, traceName, lim.MaxCycles, lim.StallCycles, lim.Deadline)
	if in := faultinject.Active(); in != nil {
		if panicAt, stallAt, errAt, transient, armed := in.SimFault(machine, traceName); armed {
			g.Inject(simerr.InjectedFault{
				PanicAt: panicAt, StallAt: stallAt, ErrAt: errAt, Transient: transient,
			})
		}
	}
	return g
}

// badTrace reports a BadTrace error when the trace failed decode
// validation — corrupted streams must be rejected before a timing
// model indexes out of its dense arrays. O(1) per run: validation
// happened once, in Prepare.
func badTrace(machine string, p *trace.Prepared) error {
	if p.Err == nil {
		return nil
	}
	return &simerr.SimError{
		Kind: simerr.KindBadTrace, Machine: machine, Trace: p.Trace.Name,
		Instr: int64(p.ErrIndex), Msg: p.Err.Error(),
	}
}

// scalarOnly reports a BadTrace error when the trace failed decode
// validation or when a scalar-only machine receives a vector trace;
// mixing the models would silently produce nonsense timing. The
// prepared trace already knows whether (and where) a vector
// instruction occurs, so the check is O(1) per run.
func scalarOnly(machine string, p *trace.Prepared) error {
	if err := badTrace(machine, p); err != nil {
		return err
	}
	if i := p.FirstVector; i >= 0 {
		return &simerr.SimError{
			Kind: simerr.KindBadTrace, Machine: machine, Trace: p.Trace.Name,
			Instr: int64(i),
			Msg: "scalar machine given vector instruction " +
				p.Trace.Ops[i].Code.String(),
		}
	}
	return nil
}

// runUnchecked adapts RunChecked to the legacy Run contract: with no
// limits the only possible failure is an unsimulatable trace, which
// the legacy API reported by panicking.
func runUnchecked(m Machine, t *trace.Trace) Result {
	r, err := m.RunChecked(t, Limits{})
	if err != nil {
		panic(err)
	}
	return r
}
