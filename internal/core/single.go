package core

import (
	"fmt"

	"mfup/internal/events"
	"mfup/internal/fu"
	"mfup/internal/isa"
	"mfup/internal/mem"
	"mfup/internal/probe"
	"mfup/internal/regfile"
	"mfup/internal/trace"
)

// singleIssue implements the four basic machine organizations of §3.
// They share one issue discipline — in-order, one instruction per
// cycle at most, blocking on RAW/WAW hazards and unit occupancy — and
// differ only in how much the execution stage can overlap:
//
//	Simple        no overlap: execution is exclusive
//	SerialMemory  overlap across distinct units; every unit serial
//	NonSegmented  as above, with interleaved (pipelined) memory
//	CRAYLike      interleaved memory and fully segmented units
type singleIssue struct {
	name      string
	cfg       Config
	exclusive bool // Simple machine: one instruction in execution

	pool  *fu.Pool
	sb    regfile.Scoreboard
	mem   memScoreboard
	banks *mem.Banks
	probe probe.Probe
	rec   *events.Recorder
}

// Organization selects one of the four basic machines of §3, in
// increasing order of execution overlap.
type Organization uint8

// The §3 machine organizations.
const (
	Simple Organization = iota
	SerialMemory
	NonSegmented
	CRAYLike
)

// String names the organization as Table 1 does.
func (o Organization) String() string {
	switch o {
	case Simple:
		return "Simple"
	case SerialMemory:
		return "SerialMemory"
	case NonSegmented:
		return "NonSegmented"
	case CRAYLike:
		return "CRAY-like"
	}
	return "Organization(?)"
}

// Organizations returns the §3 machines in Table 1 order.
func Organizations() []Organization {
	return []Organization{Simple, SerialMemory, NonSegmented, CRAYLike}
}

// NewBasic builds one of the four basic single-issue machines. It
// panics on an invalid configuration; NewBasicChecked is the
// error-returning form.
func NewBasic(o Organization, cfg Config) Machine {
	m, err := NewBasicChecked(o, cfg)
	if err != nil {
		panic(err.Error())
	}
	return m
}

// NewBasicChecked builds one of the four basic single-issue machines,
// validating the configuration instead of panicking.
func NewBasicChecked(o Organization, cfg Config) (Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if o > CRAYLike {
		return nil, fmt.Errorf("core: unknown organization %d", o)
	}
	pool := cfg.newPool()
	switch o {
	case Simple, SerialMemory:
		// Every unit serial. (For Simple the setting is moot: the
		// execution stage itself is exclusive.)
	case NonSegmented:
		pool.SetSegmented(isa.Memory, true)
	case CRAYLike:
		pool.SegmentAll()
	}
	banks := 0
	if o == NonSegmented || o == CRAYLike {
		banks = cfg.MemBanks // serial-memory machines have no banking to model
	}
	return &singleIssue{
		name:      o.String(),
		cfg:       cfg,
		exclusive: o == Simple,
		pool:      pool,
		banks:     mem.NewBanks(banks, cfg.MemLatency),
	}, nil
}

func (m *singleIssue) Name() string { return m.name }

func (m *singleIssue) SetProbe(p probe.Probe) { m.probe = p }

func (m *singleIssue) SetRecorder(r *events.Recorder) { m.rec = r }

func (m *singleIssue) Run(t *trace.Trace) Result { return runUnchecked(m, t) }

// RunChecked simulates t under the limits. Issue times are computed
// directly (the machine cannot stall), so only the cycle budget and
// deadline apply.
func (m *singleIssue) RunChecked(t *trace.Trace, lim Limits) (Result, error) {
	p := t.Prepared()
	if err := scalarOnly(m.name, p); err != nil {
		return Result{}, err
	}
	m.pool.Reset()
	m.sb.Reset()
	m.mem.Reset(p.NumAddrs)
	m.banks.Reset()
	g := newGuard(m.name, t.Name, lim)

	var acct *probe.Account
	if m.probe != nil {
		m.probe.Begin(m.name, t.Name, 1, 0)
		acct = probe.NewAccount(m.probe, 1)
	}
	if m.rec != nil {
		m.rec.Begin(m.name, t.Name, 1)
	}

	var (
		nextIssue int64 // earliest cycle the next instruction may issue
		lastDone  int64
	)
	for i := range t.Ops {
		op := &t.Ops[i]
		po := &p.Ops[i]
		isBranch := po.Flags.Has(trace.FlagBranch)

		e := nextIssue
		if !(isBranch && m.cfg.PerfectBranches) {
			e = m.sb.EarliestFor(e, op.Dst, po.Reads()...)
		}
		e = m.pool.EarliestAccept(op.Unit, e)
		if po.Flags.Has(trace.FlagLoad) {
			e = m.mem.EarliestLoad(po.AddrID, e)
		}
		if po.Flags.Has(trace.FlagMemory) {
			e = m.banks.EarliestAccept(op.Addr, e)
		}
		var reason probe.Reason
		if acct != nil {
			// Replayed before any resource is claimed below, so the
			// classification sees the same state the chain above did.
			reason = m.issueReason(op, po, isBranch, nextIssue)
		}
		var done int64
		if isBranch && m.cfg.PerfectBranches {
			// Verification happens off the critical path; the branch
			// is architecturally complete the cycle after issue.
			done = e + 1
		} else {
			done = m.pool.Accept(op.Unit, e)
		}
		if po.Flags.Has(trace.FlagMemory) {
			m.banks.Accept(op.Addr, e)
		}

		if po.Flags.Has(trace.FlagHasDst) {
			m.sb.SetReady(op.Dst, done)
		}
		if po.Flags.Has(trace.FlagStore) {
			m.mem.Store(po.AddrID, done)
		}
		if acct != nil {
			acct.Issue(e, reason)
			m.probe.Writeback(done, op.Unit, done-e)
		}
		if m.rec != nil {
			m.rec.RecordIssue(op.Seq, e)
			m.rec.RecordExec(op.Seq, e, op.Unit, done-e)
			m.rec.RecordWriteback(op.Seq, done, op.Unit)
		}
		if done > lastDone {
			lastDone = done
		}
		if err := g.Over(lastDone, int64(i)); err != nil {
			return Result{}, err
		}
		if err := g.Tick(lastDone, int64(i)); err != nil {
			return Result{}, err
		}

		switch {
		case isBranch && m.cfg.PerfectBranches:
			// Ablation: perfect prediction; the branch costs only its
			// issue slot.
			nextIssue = e + 1
			if acct != nil {
				m.probe.BranchResolve(done)
			}
			if m.rec != nil {
				m.rec.RecordBranchResolve(op.Seq, done)
			}
		case isBranch:
			// A branch blocks the issue stage for its full execution
			// time; the next instruction (fall-through or target)
			// issues no earlier than resolution.
			nextIssue = e + int64(m.cfg.BranchLatency)
			if acct != nil {
				acct.Advance(nextIssue, probe.ReasonBranch)
				m.probe.BranchResolve(nextIssue)
			}
			if m.rec != nil {
				m.rec.RecordBranchResolve(op.Seq, nextIssue)
			}
		case m.exclusive:
			// Simple machine: the next instruction sits in decode
			// until the execution stage drains.
			nextIssue = done
			if acct != nil {
				acct.Advance(done, probe.ReasonStructFU)
			}
		default:
			// One instruction per cycle. Unlike the real CRAY-1S, the
			// paper's base architecture issues every instruction —
			// 1-parcel or 2-parcel — in a single cycle when issue
			// conditions are favorable (§2); only branches hold the
			// issue stage longer.
			nextIssue = e + 1
		}
	}
	if m.probe != nil {
		m.probe.End(lastDone)
	}
	if m.rec != nil {
		m.rec.End(lastDone)
	}
	return Result{
		Machine:      m.name,
		Trace:        t.Name,
		Instructions: int64(len(t.Ops)),
		Cycles:       lastDone,
	}, nil
}

// issueReason replays the issue-constraint chain from e to name the
// binding constraint — the last one to strictly raise the issue
// cycle. Term for term it is the max-form that regfile.EarliestFor
// and the Earliest* helpers compute, called before any resource is
// claimed, so it reproduces the hot path's result exactly.
// Classification lives here, on the probed path only, so the hot
// path stays the seed computation.
func (m *singleIssue) issueReason(op *trace.Op, po *trace.PreparedOp, isBranch bool, e int64) probe.Reason {
	reason := probe.ReasonIssueWidth
	if !(isBranch && m.cfg.PerfectBranches) {
		for _, r := range po.Reads() {
			if r.Valid() {
				if rdy := m.sb.ReadyAt(r); rdy > e {
					e, reason = rdy, probe.ReasonRAW
				}
			}
		}
		if op.Dst.Valid() {
			if rdy := m.sb.ReadyAt(op.Dst); rdy > e {
				e, reason = rdy, probe.ReasonWAW
			}
		}
	}
	if fe := m.pool.EarliestAccept(op.Unit, e); fe > e {
		e, reason = fe, probe.ReasonStructFU
	}
	if po.Flags.Has(trace.FlagLoad) {
		if me := m.mem.EarliestLoad(po.AddrID, e); me > e {
			// Memory-carried true dependence: the load waits on the
			// store producing its word.
			e, reason = me, probe.ReasonRAW
		}
	}
	if po.Flags.Has(trace.FlagMemory) {
		if be := m.banks.EarliestAccept(op.Addr, e); be > e {
			reason = probe.ReasonMemBank
		}
	}
	return reason
}

// machineConfig exposes the configuration to the extrapolation engine.
func (m *singleIssue) machineConfig() Config { return m.cfg }
