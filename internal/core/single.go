package core

import (
	"fmt"

	"mfup/internal/fu"
	"mfup/internal/isa"
	"mfup/internal/mem"
	"mfup/internal/regfile"
	"mfup/internal/trace"
)

// singleIssue implements the four basic machine organizations of §3.
// They share one issue discipline — in-order, one instruction per
// cycle at most, blocking on RAW/WAW hazards and unit occupancy — and
// differ only in how much the execution stage can overlap:
//
//	Simple        no overlap: execution is exclusive
//	SerialMemory  overlap across distinct units; every unit serial
//	NonSegmented  as above, with interleaved (pipelined) memory
//	CRAYLike      interleaved memory and fully segmented units
type singleIssue struct {
	name      string
	cfg       Config
	exclusive bool // Simple machine: one instruction in execution

	pool  *fu.Pool
	sb    regfile.Scoreboard
	mem   memScoreboard
	banks *mem.Banks
}

// Organization selects one of the four basic machines of §3, in
// increasing order of execution overlap.
type Organization uint8

// The §3 machine organizations.
const (
	Simple Organization = iota
	SerialMemory
	NonSegmented
	CRAYLike
)

// String names the organization as Table 1 does.
func (o Organization) String() string {
	switch o {
	case Simple:
		return "Simple"
	case SerialMemory:
		return "SerialMemory"
	case NonSegmented:
		return "NonSegmented"
	case CRAYLike:
		return "CRAY-like"
	}
	return "Organization(?)"
}

// Organizations returns the §3 machines in Table 1 order.
func Organizations() []Organization {
	return []Organization{Simple, SerialMemory, NonSegmented, CRAYLike}
}

// NewBasic builds one of the four basic single-issue machines. It
// panics on an invalid configuration; NewBasicChecked is the
// error-returning form.
func NewBasic(o Organization, cfg Config) Machine {
	m, err := NewBasicChecked(o, cfg)
	if err != nil {
		panic(err.Error())
	}
	return m
}

// NewBasicChecked builds one of the four basic single-issue machines,
// validating the configuration instead of panicking.
func NewBasicChecked(o Organization, cfg Config) (Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if o > CRAYLike {
		return nil, fmt.Errorf("core: unknown organization %d", o)
	}
	pool := fu.NewPool(cfg.Latencies())
	switch o {
	case Simple, SerialMemory:
		// Every unit serial. (For Simple the setting is moot: the
		// execution stage itself is exclusive.)
	case NonSegmented:
		pool.SetSegmented(isa.Memory, true)
	case CRAYLike:
		pool.SegmentAll()
	}
	banks := 0
	if o == NonSegmented || o == CRAYLike {
		banks = cfg.MemBanks // serial-memory machines have no banking to model
	}
	return &singleIssue{
		name:      o.String(),
		cfg:       cfg,
		exclusive: o == Simple,
		pool:      pool,
		banks:     mem.NewBanks(banks, cfg.MemLatency),
	}, nil
}

func (m *singleIssue) Name() string { return m.name }

func (m *singleIssue) Run(t *trace.Trace) Result { return runUnchecked(m, t) }

// RunChecked simulates t under the limits. Issue times are computed
// directly (the machine cannot stall), so only the cycle budget and
// deadline apply.
func (m *singleIssue) RunChecked(t *trace.Trace, lim Limits) (Result, error) {
	p := t.Prepared()
	if err := scalarOnly(m.name, p); err != nil {
		return Result{}, err
	}
	m.pool.Reset()
	m.sb.Reset()
	m.mem.Reset(p.NumAddrs)
	m.banks.Reset()
	g := newGuard(m.name, t.Name, lim)

	var (
		nextIssue int64 // earliest cycle the next instruction may issue
		lastDone  int64
	)
	for i := range t.Ops {
		op := &t.Ops[i]
		po := &p.Ops[i]
		isBranch := po.Flags.Has(trace.FlagBranch)

		e := nextIssue
		if !(isBranch && m.cfg.PerfectBranches) {
			e = m.sb.EarliestFor(e, op.Dst, po.Reads()...)
		}
		e = m.pool.EarliestAccept(op.Unit, e)
		if po.Flags.Has(trace.FlagLoad) {
			e = m.mem.EarliestLoad(po.AddrID, e)
		}
		if po.Flags.Has(trace.FlagMemory) {
			e = m.banks.EarliestAccept(op.Addr, e)
		}
		var done int64
		if isBranch && m.cfg.PerfectBranches {
			// Verification happens off the critical path; the branch
			// is architecturally complete the cycle after issue.
			done = e + 1
		} else {
			done = m.pool.Accept(op.Unit, e)
		}
		if po.Flags.Has(trace.FlagMemory) {
			m.banks.Accept(op.Addr, e)
		}

		if po.Flags.Has(trace.FlagHasDst) {
			m.sb.SetReady(op.Dst, done)
		}
		if po.Flags.Has(trace.FlagStore) {
			m.mem.Store(po.AddrID, done)
		}
		if done > lastDone {
			lastDone = done
		}
		if err := g.Over(lastDone, int64(i)); err != nil {
			return Result{}, err
		}
		if err := g.Tick(lastDone, int64(i)); err != nil {
			return Result{}, err
		}

		switch {
		case isBranch && m.cfg.PerfectBranches:
			// Ablation: perfect prediction; the branch costs only its
			// issue slot.
			nextIssue = e + 1
		case isBranch:
			// A branch blocks the issue stage for its full execution
			// time; the next instruction (fall-through or target)
			// issues no earlier than resolution.
			nextIssue = e + int64(m.cfg.BranchLatency)
		case m.exclusive:
			// Simple machine: the next instruction sits in decode
			// until the execution stage drains.
			nextIssue = done
		default:
			// One instruction per cycle. Unlike the real CRAY-1S, the
			// paper's base architecture issues every instruction —
			// 1-parcel or 2-parcel — in a single cycle when issue
			// conditions are favorable (§2); only branches hold the
			// issue stage longer.
			nextIssue = e + 1
		}
	}
	return Result{
		Machine:      m.name,
		Trace:        t.Name,
		Instructions: int64(len(t.Ops)),
		Cycles:       lastDone,
	}, nil
}
