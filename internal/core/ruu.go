package core

import (
	"fmt"

	"mfup/internal/events"
	"mfup/internal/probe"
	"mfup/internal/ruu"
	"mfup/internal/trace"
)

// ruuMachine adapts the Register Update Unit simulator (§5.3,
// internal/ruu) to the Machine interface.
type ruuMachine struct {
	cfg Config
	sim *ruu.Simulator
}

// machineConfig exposes the configuration to the extrapolation engine.
func (m *ruuMachine) machineConfig() Config { return m.cfg }

// NewRUU builds the §5.3 machine: cfg.IssueUnits issue units over a
// cfg.RUUSize-entry Register Update Unit with the cfg.Bus
// interconnect (bus.BusN or bus.Bus1). It panics on an invalid
// configuration; NewRUUChecked is the error-returning form.
func NewRUU(cfg Config) Machine {
	m, err := NewRUUChecked(cfg)
	if err != nil {
		panic(err.Error())
	}
	return m
}

// NewRUUChecked builds the §5.3 machine, validating the configuration
// instead of panicking.
func NewRUUChecked(cfg Config) (Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.IssueUnits < 1 || cfg.RUUSize < cfg.IssueUnits {
		return nil, fmt.Errorf("core: RUU needs IssueUnits >= 1 and RUUSize >= IssueUnits, got %+v", cfg)
	}
	sim, err := ruu.NewChecked(ruu.Config{
		MemLatency:      cfg.MemLatency,
		BranchLatency:   cfg.BranchLatency,
		IssueUnits:      cfg.IssueUnits,
		Size:            cfg.RUUSize,
		Bus:             cfg.Bus,
		MemBanks:        cfg.MemBanks,
		PerfectBranches: cfg.PerfectBranches,
		FULat:           cfg.FULat,
		FUCount:         cfg.FUCount,
	})
	if err != nil {
		return nil, err
	}
	return &ruuMachine{cfg: cfg, sim: sim}, nil
}

func (m *ruuMachine) Name() string { return m.sim.Name() }

func (m *ruuMachine) SetProbe(p probe.Probe) { m.sim.SetProbe(p) }

func (m *ruuMachine) SetRecorder(r *events.Recorder) { m.sim.SetRecorder(r) }

func (m *ruuMachine) Run(t *trace.Trace) Result { return runUnchecked(m, t) }

// RunChecked simulates t under the limits, delegating to the RUU
// simulator's own checked entry point.
func (m *ruuMachine) RunChecked(t *trace.Trace, lim Limits) (Result, error) {
	if err := scalarOnly(m.Name(), t.Prepared()); err != nil {
		return Result{}, err
	}
	cycles, err := m.sim.RunChecked(t, ruu.Limits{
		MaxCycles:   lim.MaxCycles,
		StallCycles: lim.StallCycles,
		Deadline:    lim.Deadline,
	})
	if err != nil {
		return Result{}, err
	}
	return Result{
		Machine:      m.Name(),
		Trace:        t.Name,
		Instructions: int64(len(t.Ops)),
		Cycles:       cycles,
	}, nil
}
