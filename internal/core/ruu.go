package core

import (
	"fmt"

	"mfup/internal/ruu"
	"mfup/internal/trace"
)

// ruuMachine adapts the Register Update Unit simulator (§5.3,
// internal/ruu) to the Machine interface.
type ruuMachine struct {
	sim  *ruu.Simulator
	name string
}

// NewRUU builds the §5.3 machine: cfg.IssueUnits issue units over a
// cfg.RUUSize-entry Register Update Unit with the cfg.Bus
// interconnect (bus.BusN or bus.Bus1).
func NewRUU(cfg Config) Machine {
	cfg.validate()
	if cfg.IssueUnits < 1 || cfg.RUUSize < cfg.IssueUnits {
		panic(fmt.Sprintf("core: RUU needs IssueUnits >= 1 and RUUSize >= IssueUnits, got %+v", cfg))
	}
	sim := ruu.New(ruu.Config{
		MemLatency:      cfg.MemLatency,
		BranchLatency:   cfg.BranchLatency,
		IssueUnits:      cfg.IssueUnits,
		Size:            cfg.RUUSize,
		Bus:             cfg.Bus,
		MemBanks:        cfg.MemBanks,
		PerfectBranches: cfg.PerfectBranches,
	})
	return &ruuMachine{
		sim:  sim,
		name: fmt.Sprintf("RUU(%d units, %d entries, %s)", cfg.IssueUnits, cfg.RUUSize, cfg.Bus),
	}
}

func (m *ruuMachine) Name() string { return m.name }

func (m *ruuMachine) Run(t *trace.Trace) Result {
	rejectVector(m.name, t.Prepared())
	cycles := m.sim.Run(t)
	return Result{
		Machine:      m.name,
		Trace:        t.Name,
		Instructions: int64(len(t.Ops)),
		Cycles:       cycles,
	}
}
