package core_test

import (
	"testing"

	"mfup/internal/bus"
	"mfup/internal/core"
	"mfup/internal/limits"
	"mfup/internal/loops"
)

// rate runs m over kernel k's cached trace.
func rate(m core.Machine, k *loops.Kernel) float64 {
	return m.Run(k.SharedTrace()).IssueRate()
}

// TestOrganizationOrdering checks the paper's central §3 result on
// every loop and configuration: each step of added overlap — distinct
// units, interleaved memory, segmented units — never hurts.
func TestOrganizationOrdering(t *testing.T) {
	for _, k := range loops.All() {
		for _, cfg := range core.BaseConfigs() {
			var prev float64
			for _, org := range core.Organizations() {
				r := rate(core.NewBasic(org, cfg), k)
				if r < prev-1e-12 {
					t.Errorf("%s %s: %s rate %.4f < previous organization %.4f",
						k, cfg.Name(), org, r, prev)
				}
				prev = r
			}
		}
	}
}

// TestSingleIssueBelowOne: a single issue unit can never exceed one
// instruction per cycle.
func TestSingleIssueBelowOne(t *testing.T) {
	for _, k := range loops.All() {
		for _, org := range core.Organizations() {
			if r := rate(core.NewBasic(org, core.M5BR2), k); r > 1 {
				t.Errorf("%s on %s: issue rate %.3f > 1", k, org, r)
			}
		}
	}
}

// TestFasterMemoryNeverHurts and TestFasterBranchNeverHurts: the
// M/BR parameters only remove cycles.
func TestFasterMemoryNeverHurts(t *testing.T) {
	for _, k := range loops.All() {
		for _, org := range core.Organizations() {
			slow := rate(core.NewBasic(org, core.M11BR5), k)
			fast := rate(core.NewBasic(org, core.M5BR5), k)
			if fast < slow-1e-12 {
				t.Errorf("%s on %s: M5 rate %.4f < M11 rate %.4f", k, org, fast, slow)
			}
		}
	}
}

func TestFasterBranchNeverHurts(t *testing.T) {
	for _, k := range loops.All() {
		for _, org := range core.Organizations() {
			slow := rate(core.NewBasic(org, core.M11BR5), k)
			fast := rate(core.NewBasic(org, core.M11BR2), k)
			if fast < slow-1e-12 {
				t.Errorf("%s on %s: BR2 rate %.4f < BR5 rate %.4f", k, org, fast, slow)
			}
		}
	}
}

// TestMultiIssueOneStationMatchesCRAYLike: with one issue station and
// per-station busses, the §5.1 machine's only extra constraint over
// the CRAY-like machine is its single result bus, so it can be at
// most marginally slower and never faster.
func TestMultiIssueOneStationMatchesCRAYLike(t *testing.T) {
	for _, k := range loops.All() {
		base := rate(core.NewBasic(core.CRAYLike, core.M11BR5), k)
		multi := rate(core.NewMultiIssue(core.M11BR5.WithIssue(1, bus.BusN)), k)
		if multi > base+1e-12 {
			t.Errorf("%s: 1-station multi-issue (%.4f) beat the CRAY-like machine (%.4f)", k, multi, base)
		}
		if multi < 0.95*base {
			t.Errorf("%s: 1-station multi-issue (%.4f) much slower than CRAY-like (%.4f)", k, multi, base)
		}
	}
}

// TestMoreStationsHelp: eight in-order stations never lose to one.
func TestMoreStationsHelp(t *testing.T) {
	for _, k := range loops.All() {
		one := rate(core.NewMultiIssue(core.M11BR5.WithIssue(1, bus.BusN)), k)
		eight := rate(core.NewMultiIssue(core.M11BR5.WithIssue(8, bus.BusN)), k)
		if eight < one-1e-12 {
			t.Errorf("%s: 8 stations (%.4f) worse than 1 (%.4f)", k, eight, one)
		}
	}
}

// TestOOOAtLeastInOrder: on aggregate, out-of-order issue within the
// buffer should not lose to sequential issue. (Per-loop small
// regressions are possible from bus-slot scheduling order; allow a
// 2% slack per loop.)
func TestOOOAtLeastInOrder(t *testing.T) {
	for _, k := range loops.All() {
		for _, n := range []int{2, 4, 8} {
			in := rate(core.NewMultiIssue(core.M11BR5.WithIssue(n, bus.BusN)), k)
			ooo := rate(core.NewMultiIssueOOO(core.M11BR5.WithIssue(n, bus.BusN)), k)
			if ooo < 0.98*in {
				t.Errorf("%s N=%d: OOO rate %.4f below in-order %.4f", k, n, ooo, in)
			}
		}
	}
}

// TestRUUBeatsCRAYLike: §5.3's headline — dependency resolution with
// a reasonable RUU beats the plain CRAY-like machine on every loop.
func TestRUUBeatsCRAYLike(t *testing.T) {
	for _, k := range loops.All() {
		base := rate(core.NewBasic(core.CRAYLike, core.M11BR5), k)
		r := rate(core.NewRUU(core.M11BR5.WithIssue(1, bus.BusN).WithRUU(50)), k)
		if r <= base {
			t.Errorf("%s: RUU (%.4f) did not beat CRAY-like (%.4f)", k, r, base)
		}
	}
}

// TestRUULargelyMonotoneInSize: a bigger RUU helps overall — the
// paper's buffer-storage argument. Strict monotonicity does not hold:
// dispatch is greedy oldest-first, and like any greedy list schedule
// it exhibits small Graham-type anomalies where extra lookahead lets
// a non-critical operation reserve the unit or result-bus slot a
// critical one needed. Observed dips are under 5%; the trend from the
// smallest to the largest RUU must be clearly upward.
func TestRUULargelyMonotoneInSize(t *testing.T) {
	sizes := []int{10, 20, 30, 40, 50, 100}
	for _, k := range loops.All() {
		for _, n := range []int{1, 2, 4} {
			var prev float64
			var first, last float64
			for i, size := range sizes {
				r := rate(core.NewRUU(core.M11BR5.WithIssue(n, bus.BusN).WithRUU(size)), k)
				if r < 0.95*prev {
					t.Errorf("%s N=%d: RUU %d rate %.4f dips more than 5%% below %.4f",
						k, n, size, r, prev)
				}
				if i == 0 {
					first = r
				}
				last = r
				prev = r
			}
			if last < first {
				t.Errorf("%s N=%d: RUU 100 rate %.4f below RUU 10 rate %.4f", k, n, last, first)
			}
		}
	}
}

// TestRatesRespectDataflowLimit: no machine may beat the §4 actual
// limit of its own trace and configuration — the limit is an upper
// bound by construction.
func TestRatesRespectDataflowLimit(t *testing.T) {
	for _, k := range loops.All() {
		tr := k.SharedTrace()
		for _, cfg := range core.BaseConfigs() {
			lim := limits.Compute(tr, cfg.Latencies(), limits.Pure).Actual
			machines := []core.Machine{
				core.NewBasic(core.CRAYLike, cfg),
				core.NewMultiIssue(cfg.WithIssue(8, bus.BusN)),
				core.NewMultiIssueOOO(cfg.WithIssue(8, bus.BusN)),
				core.NewRUU(cfg.WithIssue(4, bus.BusN).WithRUU(100)),
			}
			for _, m := range machines {
				if r := rate(m, k); r > lim+1e-9 {
					t.Errorf("%s %s: %s rate %.4f exceeds dataflow limit %.4f",
						k, cfg.Name(), m.Name(), r, lim)
				}
			}
		}
	}
}

// TestXBarMatchesNBus: the paper reports the X-Bar results are
// "essentially the same" as N-Bus; with our station-binding they can
// differ only slightly.
func TestXBarMatchesNBus(t *testing.T) {
	for _, k := range loops.All() {
		for _, n := range []int{2, 4, 8} {
			nb := rate(core.NewMultiIssue(core.M11BR5.WithIssue(n, bus.BusN)), k)
			xb := rate(core.NewMultiIssue(core.M11BR5.WithIssue(n, bus.XBar)), k)
			if xb < nb-1e-12 {
				t.Errorf("%s N=%d: X-Bar (%.4f) worse than N-Bus (%.4f)", k, n, xb, nb)
			}
			if xb > 1.02*nb {
				t.Errorf("%s N=%d: X-Bar (%.4f) implausibly better than N-Bus (%.4f)", k, n, xb, nb)
			}
		}
	}
}

// TestSerialLimitTighterThanPure: forcing in-order WAW completion can
// only lengthen the critical path.
func TestSerialLimitTighterThanPure(t *testing.T) {
	for _, k := range loops.All() {
		tr := k.SharedTrace()
		for _, cfg := range core.BaseConfigs() {
			pure := limits.Compute(tr, cfg.Latencies(), limits.Pure)
			serial := limits.Compute(tr, cfg.Latencies(), limits.Serial)
			if serial.PseudoDataflow > pure.PseudoDataflow+1e-12 {
				t.Errorf("%s %s: serial limit %.4f above pure %.4f",
					k, cfg.Name(), serial.PseudoDataflow, pure.PseudoDataflow)
			}
		}
	}
}

// TestIssueRatesStableInN: issue rate is a steady-state property of
// the loop body; doubling each kernel's loop length moves its issue
// rate by less than 10% on representative machines. This licenses
// running the suite at reduced lengths (DESIGN.md §2).
func TestIssueRatesStableInN(t *testing.T) {
	double := map[int]int{
		1: 200, 2: 128, 3: 200, 4: 200, 5: 200, 6: 80, 7: 200,
		8: 100, 9: 200, 10: 200, 11: 200, 12: 200, 13: 200, 14: 200,
	}
	machines := []core.Machine{
		core.NewBasic(core.CRAYLike, core.M11BR5),
		core.NewRUU(core.M11BR5.WithIssue(2, bus.BusN).WithRUU(30)),
	}
	for _, k := range loops.All() {
		scaled, err := loops.Scaled(k.Number, double[k.Number])
		if err != nil {
			t.Fatalf("Scaled(%d): %v", k.Number, err)
		}
		st := scaled.MustTrace()
		for _, m := range machines {
			base := m.Run(k.SharedTrace()).IssueRate()
			big := m.Run(st).IssueRate()
			if rel := (big - base) / base; rel > 0.10 || rel < -0.10 {
				t.Errorf("%s on %s: rate moved %.1f%% when doubling loop length (%.4f -> %.4f)",
					k, m.Name(), 100*rel, base, big)
			}
		}
	}
}
