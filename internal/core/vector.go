package core

import (
	"mfup/internal/events"
	"mfup/internal/isa"
	"mfup/internal/probe"
	"mfup/internal/trace"
)

// vectorMachine is the vector-extension machine: the CRAY-like scalar
// machine of §3.2 plus a CRAY-1-style vector unit, so the
// vectorizable loops can be run the way the CRAY actually ran them
// and compared against the paper's multiple-issue scalar machines.
//
// Vector timing rules:
//
//   - A vector instruction of length L reserves its (segmented)
//     functional unit exclusively for L cycles: one element enters
//     per cycle. Scalar and vector operations share the same units,
//     the arrangement §3.2 attributes to the CRAY machines.
//   - The first result element appears after the unit latency;
//     element i at issue + latency + i.
//   - Chaining: a dependent vector instruction may issue one cycle
//     after its operand's first element arrives (the chain slot), and
//     then streams at the same one-element-per-cycle rate, so timing
//     stays consistent. A scalar read of a vector register (OpMoveSV)
//     and a rewrite of a register (WAW) wait for the full vector; a
//     rewrite also waits for in-flight readers (WAR matters once
//     registers are read over many cycles).
//   - Vector memory references stream through the interleaved memory
//     port at one element per cycle, first element after the memory
//     access time; bank conflicts are not modeled for vector strides
//     (the ideal interleaved memory of the paper).
//
// Scalar instructions follow the CRAY-like rules of §3, including
// branch blocking and store-to-load dependences. This is the only
// model that accepts vector traces; the scalar machines reject them
// with a BadTrace error.
type vectorMachine struct {
	cfg Config
	lat isa.Latencies // hoisted once; Config.Latencies rebuilds the table

	// Per-register timing state. For scalar registers the three
	// times coincide at instruction completion.
	readyRead   [isa.NumRegs]int64 // value readable/chainable
	fullDone    [isa.NumRegs]int64 // last element written
	readersDone [isa.NumRegs]int64 // in-flight readers finished

	lastAccept [isa.NumUnits]int64 // 1 op/cycle per segmented unit
	busyUntil  [isa.NumUnits]int64 // exclusive vector reservations

	mem memScoreboard // scalar store-to-load dependences

	probe probe.Probe
	rec   *events.Recorder
}

// NewVector builds the vector-extension machine. It panics on an
// invalid configuration; NewVectorChecked is the error-returning form.
func NewVector(cfg Config) Machine {
	m, err := NewVectorChecked(cfg)
	if err != nil {
		panic(err.Error())
	}
	return m
}

// NewVectorChecked builds the vector-extension machine, validating
// the configuration instead of panicking.
func NewVectorChecked(cfg Config) (Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &vectorMachine{cfg: cfg, lat: cfg.Latencies()}, nil
}

func (m *vectorMachine) Name() string { return "Vector" }

func (m *vectorMachine) SetProbe(p probe.Probe) { m.probe = p }

func (m *vectorMachine) SetRecorder(r *events.Recorder) { m.rec = r }

func (m *vectorMachine) reset(numAddrs int) {
	m.readyRead = [isa.NumRegs]int64{}
	m.fullDone = [isa.NumRegs]int64{}
	m.readersDone = [isa.NumRegs]int64{}
	m.lastAccept = [isa.NumUnits]int64{}
	m.busyUntil = [isa.NumUnits]int64{}
	m.mem.Reset(numAddrs)
	for u := range m.lastAccept {
		m.lastAccept[u] = -1
	}
}

// latency returns the unit latency under the machine configuration.
func (m *vectorMachine) latency(u isa.Unit) int64 {
	return int64(m.lat.Of(u))
}

func (m *vectorMachine) Run(t *trace.Trace) Result { return runUnchecked(m, t) }

// RunChecked simulates t under the limits; issue times are computed
// directly, so only the cycle budget and deadline apply.
func (m *vectorMachine) RunChecked(t *trace.Trace, lim Limits) (Result, error) {
	p := t.Prepared()
	if err := badTrace(m.Name(), p); err != nil {
		return Result{}, err
	}
	m.reset(p.NumAddrs)
	g := newGuard(m.Name(), t.Name, lim)

	var acct *probe.Account
	if m.probe != nil {
		m.probe.Begin(m.Name(), t.Name, 1, 0)
		acct = probe.NewAccount(m.probe, 1)
	}
	if m.rec != nil {
		m.rec.Begin(m.Name(), t.Name, 1)
	}

	var (
		nextIssue int64
		lastDone  int64
	)
	bump := func(c int64) {
		if c > lastDone {
			lastDone = c
		}
	}

	for i := range t.Ops {
		op := &t.Ops[i]
		po := &p.Ops[i]
		unit := op.Unit
		lat := m.latency(unit)

		// Issue conditions: one instruction per cycle; sources
		// readable, destination free of WAW and (for vectors) WAR;
		// unit accepting.
		e := nextIssue
		for _, r := range po.Reads() {
			if m.readyRead[r] > e {
				e = m.readyRead[r]
			}
		}
		if d := op.Dst; d.Valid() {
			if m.fullDone[d] > e {
				e = m.fullDone[d]
			}
			if m.readersDone[d] > e {
				e = m.readersDone[d]
			}
		}
		if m.busyUntil[unit] > e {
			e = m.busyUntil[unit]
		}
		if m.lastAccept[unit] >= e {
			e = m.lastAccept[unit] + 1
		}
		if po.Flags.Has(trace.FlagLoad) {
			e = m.mem.EarliestLoad(po.AddrID, e)
		}
		if op.Code == isa.OpMoveSV {
			// Reading an element requires the whole source vector,
			// not just its chain point.
			if fd := m.fullDone[op.Src1]; fd > e {
				e = fd
			}
		}
		var reason probe.Reason
		if acct != nil {
			// Replayed before any state updates below, so the
			// classification sees the same state the chain above did.
			reason = m.issueReason(op, po, unit, nextIssue)
		}

		switch {
		case op.Code.IsVector() && op.Code != isa.OpVLSet && op.Code != isa.OpMoveSV:
			l := int64(op.VLen)
			if l < 1 {
				l = 1 // a zero-length vector op still occupies issue
			}
			m.lastAccept[unit] = e
			m.busyUntil[unit] = e + l
			first := e + lat // first element available
			full := e + lat + l
			if d := op.Dst; d.Valid() {
				m.readyRead[d] = first + 1 // chain slot
				m.fullDone[d] = full
			}
			for _, r := range po.Reads() {
				if r.Class() == isa.ClassV {
					if done := e + l; done > m.readersDone[r] {
						m.readersDone[r] = done
					}
				}
			}
			if acct != nil {
				acct.Issue(e, reason)
				m.probe.Writeback(full, unit, full-e)
			}
			if m.rec != nil {
				// A vector op streams through its unit until the last
				// element is written.
				m.rec.RecordIssue(op.Seq, e)
				m.rec.RecordExec(op.Seq, e, unit, full-e)
				m.rec.RecordWriteback(op.Seq, full, unit)
			}
			bump(full)
			nextIssue = e + 1

		case po.Flags.Has(trace.FlagBranch):
			done := e + int64(m.cfg.BranchLatency)
			if m.cfg.PerfectBranches {
				done = e + 1
			}
			if acct != nil {
				acct.Issue(e, reason)
				acct.Advance(done, probe.ReasonBranch)
				m.probe.BranchResolve(done)
			}
			if m.rec != nil {
				m.rec.RecordIssue(op.Seq, e)
				m.rec.RecordBranchResolve(op.Seq, done)
			}
			bump(done)
			nextIssue = done

		default:
			// Scalar instructions, OpVLSet, and OpMoveSV: ordinary
			// single-result operations.
			m.lastAccept[unit] = e
			done := e + lat
			if d := op.Dst; d.Valid() {
				m.readyRead[d] = done
				m.fullDone[d] = done
				m.readersDone[d] = done
			}
			if po.Flags.Has(trace.FlagStore) {
				m.mem.Store(po.AddrID, done)
			}
			if acct != nil {
				acct.Issue(e, reason)
				m.probe.Writeback(done, unit, done-e)
			}
			if m.rec != nil {
				m.rec.RecordIssue(op.Seq, e)
				m.rec.RecordExec(op.Seq, e, unit, done-e)
				m.rec.RecordWriteback(op.Seq, done, unit)
			}
			bump(done)
			nextIssue = e + 1
		}
		if err := g.Over(lastDone, int64(i)); err != nil {
			return Result{}, err
		}
		if err := g.Tick(lastDone, int64(i)); err != nil {
			return Result{}, err
		}
	}
	if m.probe != nil {
		m.probe.End(lastDone)
	}
	if m.rec != nil {
		m.rec.End(lastDone)
	}
	return Result{
		Machine:      m.Name(),
		Trace:        t.Name,
		Instructions: int64(len(t.Ops)),
		Cycles:       lastDone,
	}, nil
}

// issueReason replays the issue-condition chain from e to name the
// binding constraint — the last one to strictly raise the issue
// cycle. Term for term it is the chain the hot path computes, called
// before any state is updated, so it reproduces the hot path's result
// exactly. Classification lives here, on the probed path only, so the
// hot path stays the seed computation. The WAR wait on in-flight
// readers is filed under WAW: both are the one-instance-per-register
// serialization the paper's register model imposes.
func (m *vectorMachine) issueReason(op *trace.Op, po *trace.PreparedOp, unit isa.Unit, e int64) probe.Reason {
	reason := probe.ReasonIssueWidth
	for _, r := range po.Reads() {
		if m.readyRead[r] > e {
			e, reason = m.readyRead[r], probe.ReasonRAW
		}
	}
	if d := op.Dst; d.Valid() {
		if m.fullDone[d] > e {
			e, reason = m.fullDone[d], probe.ReasonWAW
		}
		if m.readersDone[d] > e {
			e, reason = m.readersDone[d], probe.ReasonWAW
		}
	}
	if m.busyUntil[unit] > e {
		e, reason = m.busyUntil[unit], probe.ReasonStructFU
	}
	if m.lastAccept[unit] >= e {
		e, reason = m.lastAccept[unit]+1, probe.ReasonStructFU
	}
	if po.Flags.Has(trace.FlagLoad) {
		if me := m.mem.EarliestLoad(po.AddrID, e); me > e {
			e, reason = me, probe.ReasonRAW
		}
	}
	if op.Code == isa.OpMoveSV {
		if fd := m.fullDone[op.Src1]; fd > e {
			reason = probe.ReasonRAW
		}
	}
	return reason
}

// machineConfig exposes the configuration to the extrapolation engine.
func (m *vectorMachine) machineConfig() Config { return m.cfg }
