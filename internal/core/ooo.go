package core

import (
	"fmt"

	"mfup/internal/bus"
	"mfup/internal/events"
	"mfup/internal/fu"
	"mfup/internal/mem"
	"mfup/internal/probe"
	"mfup/internal/regfile"
	"mfup/internal/simerr"
	"mfup/internal/trace"
)

// multiIssueOOO implements §5.2: N issue stations with out-of-order
// issue within the instruction buffer.
//
// A blocked instruction no longer stops its successors: any
// instruction in the buffer may issue, provided it has no RAW or WAW
// hazard against an *earlier unissued* instruction in the buffer (a
// hazard against an issued instruction is simply a wait for its
// result). As in §5.1, the buffer refills only when empty, which the
// paper identifies as the source of the sawtooth in Tables 5 and 6.
//
// There is no speculation: a branch issues only once it is the oldest
// unissued instruction, and no younger instruction issues until the
// branch resolves.
type multiIssueOOO struct {
	cfg   Config
	pool  *fu.Pool
	sb    regfile.Scoreboard
	bt    *bus.Tracker
	mem   memScoreboard
	banks *mem.Banks
	probe probe.Probe
	rec   *events.Recorder
}

// NewMultiIssueOOO builds the §5.2 machine. It panics on an invalid
// configuration; NewMultiIssueOOOChecked is the error-returning form.
func NewMultiIssueOOO(cfg Config) Machine {
	m, err := NewMultiIssueOOOChecked(cfg)
	if err != nil {
		panic(err.Error())
	}
	return m
}

// NewMultiIssueOOOChecked builds the §5.2 machine, validating the
// configuration instead of panicking.
func NewMultiIssueOOOChecked(cfg Config) (Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.IssueUnits < 1 {
		return nil, fmt.Errorf("core: MultiIssueOOO needs IssueUnits >= 1, got %d", cfg.IssueUnits)
	}
	bt, err := cfg.newBusTracker()
	if err != nil {
		return nil, err
	}
	pool := cfg.newPool()
	pool.SegmentAll()
	return &multiIssueOOO{
		cfg:   cfg,
		pool:  pool,
		bt:    bt,
		banks: mem.NewBanks(cfg.MemBanks, cfg.MemLatency),
	}, nil
}

func (m *multiIssueOOO) Name() string {
	return fmt.Sprintf("MultiIssueOOO(%d,%s)", m.cfg.IssueUnits, m.cfg.Bus)
}

func (m *multiIssueOOO) Run(t *trace.Trace) Result { return runUnchecked(m, t) }

func (m *multiIssueOOO) SetProbe(p probe.Probe) { m.probe = p }

func (m *multiIssueOOO) SetRecorder(r *events.Recorder) { m.rec = r }

// RunChecked simulates t under the limits. The issue scan steps cycle
// by cycle within each instruction buffer, so the stall watchdog
// applies here: a buffer in which nothing can ever issue would
// otherwise spin the scan forever.
func (m *multiIssueOOO) RunChecked(t *trace.Trace, lim Limits) (Result, error) {
	p := t.Prepared()
	if err := scalarOnly(m.Name(), p); err != nil {
		return Result{}, err
	}
	m.pool.Reset()
	m.sb.Reset()
	m.bt.Reset()
	m.mem.Reset(p.NumAddrs)
	m.banks.Reset()
	g := newGuard(m.Name(), t.Name, lim)

	w := m.cfg.IssueUnits
	brLat := int64(m.cfg.BranchLatency)

	var (
		nextFetch int64
		lastDone  int64
		issuedAt  = make([]int64, w)
		issued    = make([]bool, w)
	)

	// reasons[i] is the stall reason recorded for the i-th buffer entry
	// during the current scan cycle; nil when unprobed. The machine is
	// cycle-stepped, so stalls are reported directly per cycle rather
	// than through a probe.Account.
	var reasons []probe.Reason
	if m.probe != nil {
		m.probe.Begin(m.Name(), t.Name, w, w)
		reasons = make([]probe.Reason, w)
	}
	if m.rec != nil {
		m.rec.Begin(m.Name(), t.Name, w)
	}

	pos := 0
	for pos < len(t.Ops) {
		end := p.Window(pos, w)
		size := end - pos
		for i := 0; i < size; i++ {
			issued[i] = false
		}

		var maxIssue int64
		if m.probe != nil || m.rec != nil {
			// The observed copy of the buffer scan lives in its own
			// method so this loop carries no attribution or event
			// bookkeeping.
			mi, ld, err := m.scanBufferObserved(t, p, &g, pos, size, nextFetch, issued, issuedAt, reasons, lastDone)
			if err != nil {
				return Result{}, err
			}
			maxIssue, lastDone = mi, ld
		} else {
			remaining := size
			maxIssue = nextFetch
			// brGate is the resolution time of the latest issued branch in
			// this buffer; instructions younger than that branch may not
			// issue earlier (no speculation).
			var brGate int64
			brGateIdx := -1 // buffer index of that branch

			for c := nextFetch; remaining > 0; c++ {
				if err := g.Stalled(c, int64(pos), func(max int) []string {
					var snap []string
					for i := 0; i < size && len(snap) < max; i++ {
						if !issued[i] {
							snap = append(snap, t.Ops[pos+i].String())
						}
					}
					return snap
				}); err != nil {
					return Result{}, err
				}
				if err := g.Over(c, int64(pos)); err != nil {
					return Result{}, err
				}
				if err := g.Tick(c, int64(pos)); err != nil {
					return Result{}, err
				}
				for i := 0; i < size; i++ {
					if issued[i] {
						continue
					}
					op := &t.Ops[pos+i]
					po := &p.Ops[pos+i]
					isBranch := po.Flags.Has(trace.FlagBranch)
					reads := po.Reads()

					if i > brGateIdx && brGate > c {
						// Waiting on an earlier branch's resolution; so is
						// everything younger.
						break
					}

					// Hazards against earlier unissued buffer entries.
					blocked := false
					for j := 0; j < i; j++ {
						if issued[j] {
							continue
						}
						pj := &t.Ops[pos+j]
						pf := p.Ops[pos+j].Flags
						if pf.Has(trace.FlagBranch) {
							// May not issue past an unissued branch.
							blocked = true
							break
						}
						if pf.Has(trace.FlagHasDst) {
							if op.Dst == pj.Dst { // WAW
								blocked = true
								break
							}
							for _, r := range reads { // RAW
								if r == pj.Dst {
									blocked = true
									break
								}
							}
							if blocked {
								break
							}
						}
						if pf.Has(trace.FlagStore) && po.Flags.Has(trace.FlagMemory) && op.Addr == pj.Addr {
							// Memory RAW/WAW: neither a load nor a store
							// may pass an unissued store to its address.
							blocked = true
							break
						}
					}
					if blocked {
						continue
					}
					if isBranch && i > 0 {
						// A branch issues only as the oldest unissued
						// instruction: everything before it must be gone.
						allOlder := true
						for j := 0; j < i; j++ {
							if !issued[j] {
								allOlder = false
								break
							}
						}
						if !allOlder {
							continue
						}
					}

					// Resource checks: everything must be satisfiable at
					// exactly cycle c, else the instruction waits.
					if !(isBranch && m.cfg.PerfectBranches) &&
						m.sb.EarliestFor(c, op.Dst, reads...) > c {
						continue
					}
					if m.pool.EarliestAccept(op.Unit, c) > c {
						continue
					}
					if po.Flags.Has(trace.FlagLoad) && m.mem.EarliestLoad(po.AddrID, c) > c {
						continue
					}
					if po.Flags.Has(trace.FlagMemory) && m.banks.EarliestAccept(op.Addr, c) > c {
						continue
					}
					if usesResultBus(op) && !m.bt.Free(i, c+int64(m.pool.Latency(op.Unit))) {
						continue
					}

					var done int64
					if isBranch && m.cfg.PerfectBranches {
						done = c + 1
					} else {
						done = m.pool.Accept(op.Unit, c)
					}
					if po.Flags.Has(trace.FlagMemory) {
						m.banks.Accept(op.Addr, c)
					}
					if usesResultBus(op) {
						m.bt.Reserve(i, done)
					}
					if po.Flags.Has(trace.FlagHasDst) {
						m.sb.SetReady(op.Dst, done)
					}
					if po.Flags.Has(trace.FlagStore) {
						m.mem.Store(po.AddrID, done)
					}
					issued[i] = true
					issuedAt[i] = c
					remaining--
					g.Progress(c)
					if c > maxIssue {
						maxIssue = c
					}
					if done > lastDone {
						lastDone = done
					}
					if err := g.Over(lastDone, int64(pos+i)); err != nil {
						return Result{}, err
					}
					if isBranch && !m.cfg.PerfectBranches {
						brGate = c + brLat
						brGateIdx = i
					}
				}
			}
		}

		// Refill only once the buffer is empty; a terminating branch
		// additionally delays the refetch until it resolves.
		nextFetch = maxIssue + 1
		if p.Ops[end-1].Flags.Has(trace.FlagBranch) && !m.cfg.PerfectBranches {
			if g := issuedAt[size-1] + brLat; g > nextFetch {
				nextFetch = g
			}
		}
		if m.probe != nil && end < len(t.Ops) && nextFetch > maxIssue+1 {
			// The terminating branch's shadow delays the refetch past
			// the empty-buffer point: whole cycles with no buffer to
			// scan, all of them the branch's fault. (After the final
			// buffer the remainder is drain, derived by Counters.)
			m.probe.Stall(maxIssue+1, probe.ReasonBranch, (nextFetch-maxIssue-1)*int64(w))
		}
		pos = end
	}
	if m.probe != nil {
		m.probe.End(lastDone)
	}
	if m.rec != nil {
		m.rec.End(lastDone)
	}
	return Result{
		Machine:      m.Name(),
		Trace:        t.Name,
		Instructions: int64(len(t.Ops)),
		Cycles:       lastDone,
	}, nil
}

// scanBufferObserved is the observed copy of the buffer scan in
// RunChecked, issuing entries cycle by cycle while filing every issue
// slot with the probe (an Issue, exactly one attributed Stall, or an
// idle station) and every lifecycle event with the recorder; either
// observer may be nil, not both — reasons is non-nil exactly when the
// probe is. The duplication is deliberate — the unobserved loop in
// RunChecked stays the seed computation with no attribution or event
// bookkeeping, which is what keeps the nil path at seed speed. Any
// timing change must be made to both copies; the probe and trace
// invariant tests compare their cycle counts across all machines and
// loops.
func (m *multiIssueOOO) scanBufferObserved(t *trace.Trace, p *trace.Prepared, g *simerr.Guard, pos, size int, nextFetch int64, issued []bool, issuedAt []int64, reasons []probe.Reason, lastDone int64) (int64, int64, error) {
	w := m.cfg.IssueUnits
	brLat := int64(m.cfg.BranchLatency)

	if m.rec != nil {
		// The whole buffer arrives together, at the refill cycle.
		for i := 0; i < size; i++ {
			m.rec.RecordFetch(t.Ops[pos+i].Seq, nextFetch, i)
		}
	}

	remaining := size
	maxIssue := nextFetch
	// brGate is the resolution time of the latest issued branch in
	// this buffer; instructions younger than that branch may not
	// issue earlier (no speculation).
	var brGate int64
	brGateIdx := -1 // buffer index of that branch

	for c := nextFetch; remaining > 0; c++ {
		if err := g.Stalled(c, int64(pos), func(max int) []string {
			var snap []string
			for i := 0; i < size && len(snap) < max; i++ {
				if !issued[i] {
					snap = append(snap, t.Ops[pos+i].String())
				}
			}
			return snap
		}); err != nil {
			return 0, 0, err
		}
		if err := g.Over(c, int64(pos)); err != nil {
			return 0, 0, err
		}
		if err := g.Tick(c, int64(pos)); err != nil {
			return 0, 0, err
		}
		remStart := remaining
		if m.probe != nil {
			m.probe.Occupancy(remaining, 1)
			// Default every unissued entry to a branch stall: the brGate
			// break below skips entries without visiting them, and those
			// wait on the issued branch.
			for i := 0; i < size; i++ {
				if !issued[i] {
					reasons[i] = probe.ReasonBranch
				}
			}
		}
		for i := 0; i < size; i++ {
			if issued[i] {
				continue
			}
			op := &t.Ops[pos+i]
			po := &p.Ops[pos+i]
			isBranch := po.Flags.Has(trace.FlagBranch)
			reads := po.Reads()

			if i > brGateIdx && brGate > c {
				// Waiting on an earlier branch's resolution; so is
				// everything younger.
				break
			}

			// Hazards against earlier unissued buffer entries.
			blocked := false
			for j := 0; j < i; j++ {
				if issued[j] {
					continue
				}
				pj := &t.Ops[pos+j]
				pf := p.Ops[pos+j].Flags
				if pf.Has(trace.FlagBranch) {
					// May not issue past an unissued branch.
					blocked = true
					break
				}
				if pf.Has(trace.FlagHasDst) {
					if op.Dst == pj.Dst { // WAW
						blocked = true
						break
					}
					for _, r := range reads { // RAW
						if r == pj.Dst {
							blocked = true
							break
						}
					}
					if blocked {
						break
					}
				}
				if pf.Has(trace.FlagStore) && po.Flags.Has(trace.FlagMemory) && op.Addr == pj.Addr {
					// Memory RAW/WAW: neither a load nor a store
					// may pass an unissued store to its address.
					blocked = true
					break
				}
			}
			if blocked {
				if reasons != nil {
					reasons[i] = m.hazardReason(t, p, pos, i, issued)
				}
				continue
			}
			if isBranch && i > 0 {
				// A branch issues only as the oldest unissued
				// instruction: everything before it must be gone.
				allOlder := true
				for j := 0; j < i; j++ {
					if !issued[j] {
						allOlder = false
						break
					}
				}
				if !allOlder {
					if reasons != nil {
						reasons[i] = probe.ReasonBranch
					}
					continue
				}
			}

			// Resource checks: everything must be satisfiable at
			// exactly cycle c, else the instruction waits.
			if !(isBranch && m.cfg.PerfectBranches) &&
				m.sb.EarliestFor(c, op.Dst, reads...) > c {
				// A waiting source is a RAW stall; otherwise the
				// reserved destination (WAW) held it back.
				if reasons != nil {
					reasons[i] = probe.ReasonWAW
					for _, r := range reads {
						if r.Valid() && m.sb.ReadyAt(r) > c {
							reasons[i] = probe.ReasonRAW
							break
						}
					}
				}
				continue
			}
			if m.pool.EarliestAccept(op.Unit, c) > c {
				if reasons != nil {
					reasons[i] = probe.ReasonStructFU
				}
				continue
			}
			if po.Flags.Has(trace.FlagLoad) && m.mem.EarliestLoad(po.AddrID, c) > c {
				if reasons != nil {
					reasons[i] = probe.ReasonRAW
				}
				continue
			}
			if po.Flags.Has(trace.FlagMemory) && m.banks.EarliestAccept(op.Addr, c) > c {
				if reasons != nil {
					reasons[i] = probe.ReasonMemBank
				}
				continue
			}
			if usesResultBus(op) && !m.bt.Free(i, c+int64(m.pool.Latency(op.Unit))) {
				if reasons != nil {
					reasons[i] = probe.ReasonResultBus
				}
				continue
			}

			var done int64
			if isBranch && m.cfg.PerfectBranches {
				done = c + 1
			} else {
				done = m.pool.Accept(op.Unit, c)
			}
			if po.Flags.Has(trace.FlagMemory) {
				m.banks.Accept(op.Addr, c)
			}
			if usesResultBus(op) {
				m.bt.Reserve(i, done)
			}
			if po.Flags.Has(trace.FlagHasDst) {
				m.sb.SetReady(op.Dst, done)
			}
			if po.Flags.Has(trace.FlagStore) {
				m.mem.Store(po.AddrID, done)
			}
			issued[i] = true
			issuedAt[i] = c
			remaining--
			if m.probe != nil {
				m.probe.Writeback(done, op.Unit, done-c)
				if isBranch {
					if m.cfg.PerfectBranches {
						m.probe.BranchResolve(done)
					} else {
						m.probe.BranchResolve(c + brLat)
					}
				}
			}
			if m.rec != nil {
				m.rec.RecordIssue(op.Seq, c)
				m.rec.RecordExec(op.Seq, c, op.Unit, done-c)
				if usesResultBus(op) {
					m.rec.RecordResultBus(op.Seq, done, i)
				}
				m.rec.RecordWriteback(op.Seq, done, op.Unit)
				if isBranch {
					if m.cfg.PerfectBranches {
						m.rec.RecordBranchResolve(op.Seq, done)
					} else {
						m.rec.RecordBranchResolve(op.Seq, c+brLat)
					}
				}
			}
			g.Progress(c)
			if c > maxIssue {
				maxIssue = c
			}
			if done > lastDone {
				lastDone = done
			}
			if err := g.Over(lastDone, int64(pos+i)); err != nil {
				return 0, 0, err
			}
			if isBranch && !m.cfg.PerfectBranches {
				brGate = c + brLat
				brGateIdx = i
			}
		}
		// Close the cycle's slot ledger: issues, one stall per
		// still-unissued entry, and the stations the short buffer
		// leaves empty.
		if m.probe != nil {
			issuedNow := remStart - remaining
			if issuedNow > 0 {
				m.probe.Issue(c, int64(issuedNow))
			}
			for i := 0; i < size; i++ {
				if !issued[i] {
					m.probe.Stall(c, reasons[i], 1)
				}
			}
			if idle := int64(w-issuedNow) - int64(remaining); idle > 0 {
				m.probe.Stall(c, probe.ReasonIssueWidth, idle)
			}
		}
	}
	return maxIssue, lastDone, nil
}

// hazardReason reruns entry i's buffer-hazard scan to name the first
// blocking dependence, mirroring the scan in scanBufferProbed term
// for term. Classification lives here so the scan itself carries no
// per-entry attribution state.
func (m *multiIssueOOO) hazardReason(t *trace.Trace, p *trace.Prepared, pos, i int, issued []bool) probe.Reason {
	op := &t.Ops[pos+i]
	po := &p.Ops[pos+i]
	reads := po.Reads()
	for j := 0; j < i; j++ {
		if issued[j] {
			continue
		}
		pj := &t.Ops[pos+j]
		pf := p.Ops[pos+j].Flags
		if pf.Has(trace.FlagBranch) {
			return probe.ReasonBranch
		}
		if pf.Has(trace.FlagHasDst) {
			if op.Dst == pj.Dst {
				return probe.ReasonWAW
			}
			for _, r := range reads {
				if r == pj.Dst {
					return probe.ReasonRAW
				}
			}
		}
		if pf.Has(trace.FlagStore) && po.Flags.Has(trace.FlagMemory) && op.Addr == pj.Addr {
			return probe.ReasonRAW
		}
	}
	return probe.ReasonRAW
}

// machineConfig exposes the configuration to the extrapolation engine.
func (m *multiIssueOOO) machineConfig() Config { return m.cfg }
