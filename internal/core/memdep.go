package core

// memScoreboard tracks memory-carried true dependences: the
// completion cycle of the most recent store to each address. A load
// may not issue before the store it depends on completes — the base
// machine has no store-to-load forwarding — and that matches the
// memory model of the §4 dataflow bounds, keeping "no machine beats
// its limit" a checkable invariant.
//
// Anti-dependences (load then store to the same address) are not
// timing constraints in any of the models, and output dependences
// between stores are already serialized by in-order issue in the
// machines that use this scoreboard.
type memScoreboard struct {
	storeDone map[int64]int64
}

// Reset clears all tracked stores.
func (m *memScoreboard) Reset() {
	if m.storeDone == nil {
		m.storeDone = make(map[int64]int64)
		return
	}
	clear(m.storeDone)
}

// EarliestLoad returns the earliest cycle >= t at which a load of
// addr may issue.
func (m *memScoreboard) EarliestLoad(addr, t int64) int64 {
	if d, ok := m.storeDone[addr]; ok && d > t {
		return d
	}
	return t
}

// Store records a store to addr completing at cycle done.
func (m *memScoreboard) Store(addr, done int64) {
	m.storeDone[addr] = done
}
