package core

// memScoreboard tracks memory-carried true dependences: the
// completion cycle of the most recent store to each address. A load
// may not issue before the store it depends on completes — the base
// machine has no store-to-load forwarding — and that matches the
// memory model of the §4 dataflow bounds, keeping "no machine beats
// its limit" a checkable invariant.
//
// Addresses are the dense per-trace ids of trace.PreparedOp.AddrID,
// so lookup is a slice index, not a hash.
//
// Anti-dependences (load then store to the same address) are not
// timing constraints in any of the models, and output dependences
// between stores are already serialized by in-order issue in the
// machines that use this scoreboard.
type memScoreboard struct {
	storeDone []int64 // by AddrID; 0 = no store pending
}

// Reset clears all tracked stores and sizes the table for a trace
// with numAddrs distinct addresses.
func (m *memScoreboard) Reset(numAddrs int) {
	if cap(m.storeDone) < numAddrs {
		m.storeDone = make([]int64, numAddrs)
		return
	}
	m.storeDone = m.storeDone[:numAddrs]
	clear(m.storeDone)
}

// EarliestLoad returns the earliest cycle >= t at which a load of
// address id may issue.
func (m *memScoreboard) EarliestLoad(id int32, t int64) int64 {
	if d := m.storeDone[id]; d > t {
		return d
	}
	return t
}

// Store records a store to address id completing at cycle done.
func (m *memScoreboard) Store(id int32, done int64) {
	m.storeDone[id] = done
}
