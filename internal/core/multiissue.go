package core

import (
	"fmt"

	"mfup/internal/bus"
	"mfup/internal/events"
	"mfup/internal/fu"
	"mfup/internal/mem"
	"mfup/internal/probe"
	"mfup/internal/regfile"
	"mfup/internal/simerr"
	"mfup/internal/trace"
)

// multiIssue implements §5.1: N issue stations with strictly
// sequential (in-order) instruction issue over CRAY-like functional
// units.
//
// The hardware fetches a block of N instructions into an instruction
// buffer; the issue stations examine the buffer in parallel, but if
// any instruction cannot issue, no later instruction may issue either.
// The buffer is refilled only after all of its instructions have
// issued — except that a taken branch abandons the rest of the buffer
// and refills from the target. Results return to the register file
// over the configured result-bus interconnect; an instruction whose
// result would find no free bus slot stalls at issue.
type multiIssue struct {
	cfg   Config
	pool  *fu.Pool
	sb    regfile.Scoreboard
	bt    *bus.Tracker
	mem   memScoreboard
	banks *mem.Banks
	probe probe.Probe
	rec   *events.Recorder
}

// NewMultiIssue builds the §5.1 machine: cfg.IssueUnits stations
// (>= 1), cfg.Bus interconnect, CRAY-like (fully segmented) units and
// interleaved memory. It panics on an invalid configuration;
// NewMultiIssueChecked is the error-returning form.
func NewMultiIssue(cfg Config) Machine {
	m, err := NewMultiIssueChecked(cfg)
	if err != nil {
		panic(err.Error())
	}
	return m
}

// NewMultiIssueChecked builds the §5.1 machine, validating the
// configuration instead of panicking.
func NewMultiIssueChecked(cfg Config) (Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.IssueUnits < 1 {
		return nil, fmt.Errorf("core: MultiIssue needs IssueUnits >= 1, got %d", cfg.IssueUnits)
	}
	bt, err := cfg.newBusTracker()
	if err != nil {
		return nil, err
	}
	pool := cfg.newPool()
	pool.SegmentAll()
	return &multiIssue{
		cfg:   cfg,
		pool:  pool,
		bt:    bt,
		banks: mem.NewBanks(cfg.MemBanks, cfg.MemLatency),
	}, nil
}

func (m *multiIssue) Name() string {
	return fmt.Sprintf("MultiIssue(%d,%s)", m.cfg.IssueUnits, m.cfg.Bus)
}

// usesResultBus reports whether an op delivers a register result over
// the interconnect. Branches and stores produce no register value.
func usesResultBus(op *trace.Op) bool { return op.Dst.Valid() }

func (m *multiIssue) Run(t *trace.Trace) Result { return runUnchecked(m, t) }

func (m *multiIssue) SetProbe(p probe.Probe) { m.probe = p }

func (m *multiIssue) SetRecorder(r *events.Recorder) { m.rec = r }

// RunChecked simulates t under the limits; issue times are computed
// directly, so only the cycle budget and deadline apply.
func (m *multiIssue) RunChecked(t *trace.Trace, lim Limits) (Result, error) {
	p := t.Prepared()
	if err := scalarOnly(m.Name(), p); err != nil {
		return Result{}, err
	}
	m.pool.Reset()
	m.sb.Reset()
	m.bt.Reset()
	m.mem.Reset(p.NumAddrs)
	m.banks.Reset()
	g := newGuard(m.Name(), t.Name, lim)

	if m.probe != nil || m.rec != nil {
		// The observed copy of the run lives in its own method so this
		// loop carries no attribution or event bookkeeping.
		return m.runCheckedObserved(t, p, &g)
	}

	w := m.cfg.IssueUnits
	brLat := int64(m.cfg.BranchLatency)

	var (
		nextFetch int64 // earliest issue cycle for the next buffer
		lastDone  int64
	)

	pos := 0
	for pos < len(t.Ops) {
		// Fetch a buffer: up to w ops, ending early at a taken branch
		// (the rest of the line is squashed and refetched from the
		// target).
		end := p.Window(pos, w)

		prev := nextFetch // in-order: issue times are nondecreasing
		for i := pos; i < end; i++ {
			op := &t.Ops[i]
			po := &p.Ops[i]
			isBranch := po.Flags.Has(trace.FlagBranch)
			station := i - pos

			e := prev
			if !(isBranch && m.cfg.PerfectBranches) {
				e = m.sb.EarliestFor(e, op.Dst, po.Reads()...)
			}
			e = m.pool.EarliestAccept(op.Unit, e)
			if po.Flags.Has(trace.FlagLoad) {
				e = m.mem.EarliestLoad(po.AddrID, e)
			}
			if po.Flags.Has(trace.FlagMemory) {
				e = m.banks.EarliestAccept(op.Addr, e)
			}
			if usesResultBus(op) {
				e = m.bt.EarliestIssue(station, e, m.pool.Latency(op.Unit))
			}
			var done int64
			if isBranch && m.cfg.PerfectBranches {
				done = e + 1
			} else {
				done = m.pool.Accept(op.Unit, e)
			}
			if po.Flags.Has(trace.FlagMemory) {
				m.banks.Accept(op.Addr, e)
			}
			if usesResultBus(op) {
				m.bt.Reserve(station, done)
			}
			if po.Flags.Has(trace.FlagHasDst) {
				m.sb.SetReady(op.Dst, done)
			}
			if po.Flags.Has(trace.FlagStore) {
				m.mem.Store(po.AddrID, done)
			}
			if done > lastDone {
				lastDone = done
			}
			if err := g.Over(lastDone, int64(i)); err != nil {
				return Result{}, err
			}
			if err := g.Tick(lastDone, int64(i)); err != nil {
				return Result{}, err
			}

			if isBranch && m.cfg.PerfectBranches {
				prev = e
				nextFetch = e + 1
			} else if isBranch {
				// No speculation: nothing issues — neither the rest
				// of this buffer nor the refill — until resolution.
				prev = e + brLat
				nextFetch = e + brLat
			} else {
				prev = e
				nextFetch = e + 1
			}
		}
		pos = end
	}
	return Result{
		Machine:      m.Name(),
		Trace:        t.Name,
		Instructions: int64(len(t.Ops)),
		Cycles:       lastDone,
	}, nil
}

// runCheckedObserved is the observed copy of the RunChecked loop,
// filing every issue with the attached probe and/or event recorder
// (either may be nil, not both). The duplication is deliberate — the
// unobserved loop stays the seed computation with no attribution or
// event bookkeeping, which is what keeps the nil path at seed speed.
// Any timing change must be made to both copies; the probe and trace
// invariant tests compare their cycle counts across all machines and
// loops.
func (m *multiIssue) runCheckedObserved(t *trace.Trace, p *trace.Prepared, g *simerr.Guard) (Result, error) {
	w := m.cfg.IssueUnits
	brLat := int64(m.cfg.BranchLatency)

	var acct *probe.Account
	if m.probe != nil {
		m.probe.Begin(m.Name(), t.Name, w, w)
		acct = probe.NewAccount(m.probe, w)
	}
	if m.rec != nil {
		m.rec.Begin(m.Name(), t.Name, w)
	}

	var (
		nextFetch int64 // earliest issue cycle for the next buffer
		lastDone  int64
	)

	pos := 0
	for pos < len(t.Ops) {
		// Fetch a buffer: up to w ops, ending early at a taken branch
		// (the rest of the line is squashed and refetched from the
		// target).
		end := p.Window(pos, w)
		if m.rec != nil {
			// The whole buffer arrives together, at the refill cycle.
			for i := pos; i < end; i++ {
				m.rec.RecordFetch(t.Ops[i].Seq, nextFetch, i-pos)
			}
		}

		prev := nextFetch // in-order: issue times are nondecreasing
		for i := pos; i < end; i++ {
			op := &t.Ops[i]
			po := &p.Ops[i]
			isBranch := po.Flags.Has(trace.FlagBranch)
			station := i - pos

			e := prev
			if !(isBranch && m.cfg.PerfectBranches) {
				e = m.sb.EarliestFor(e, op.Dst, po.Reads()...)
			}
			e = m.pool.EarliestAccept(op.Unit, e)
			if po.Flags.Has(trace.FlagLoad) {
				e = m.mem.EarliestLoad(po.AddrID, e)
			}
			if po.Flags.Has(trace.FlagMemory) {
				e = m.banks.EarliestAccept(op.Addr, e)
			}
			if usesResultBus(op) {
				e = m.bt.EarliestIssue(station, e, m.pool.Latency(op.Unit))
			}
			var reason probe.Reason
			if acct != nil {
				// Replayed before any resource is claimed below, so the
				// classification sees the same state the chain above did.
				reason = m.issueReason(op, po, isBranch, station, prev)
			}
			var done int64
			if isBranch && m.cfg.PerfectBranches {
				done = e + 1
			} else {
				done = m.pool.Accept(op.Unit, e)
			}
			if po.Flags.Has(trace.FlagMemory) {
				m.banks.Accept(op.Addr, e)
			}
			if usesResultBus(op) {
				m.bt.Reserve(station, done)
			}
			if po.Flags.Has(trace.FlagHasDst) {
				m.sb.SetReady(op.Dst, done)
			}
			if po.Flags.Has(trace.FlagStore) {
				m.mem.Store(po.AddrID, done)
			}
			if acct != nil {
				acct.Issue(e, reason)
				m.probe.Writeback(done, op.Unit, done-e)
			}
			if m.rec != nil {
				m.rec.RecordIssue(op.Seq, e)
				m.rec.RecordExec(op.Seq, e, op.Unit, done-e)
				if usesResultBus(op) {
					m.rec.RecordResultBus(op.Seq, done, station)
				}
				m.rec.RecordWriteback(op.Seq, done, op.Unit)
			}
			if done > lastDone {
				lastDone = done
			}
			if err := g.Over(lastDone, int64(i)); err != nil {
				return Result{}, err
			}
			if err := g.Tick(lastDone, int64(i)); err != nil {
				return Result{}, err
			}

			if isBranch && m.cfg.PerfectBranches {
				prev = e
				nextFetch = e + 1
				if m.probe != nil {
					m.probe.BranchResolve(done)
				}
				if m.rec != nil {
					m.rec.RecordBranchResolve(op.Seq, done)
				}
			} else if isBranch {
				// No speculation: nothing issues — neither the rest
				// of this buffer nor the refill — until resolution.
				prev = e + brLat
				nextFetch = e + brLat
				if acct != nil {
					acct.Advance(prev, probe.ReasonBranch)
					m.probe.BranchResolve(prev)
				}
				if m.rec != nil {
					m.rec.RecordBranchResolve(op.Seq, prev)
				}
			} else {
				prev = e
				nextFetch = e + 1
			}
		}
		pos = end
		if acct != nil && pos < len(t.Ops) {
			// The buffer refills only once drained: the stations left
			// idle until the refill arrives are width-limit slots, not
			// hazard stalls. (After the final buffer the remainder is
			// the drain, which Counters derives itself.)
			acct.Advance(nextFetch, probe.ReasonIssueWidth)
		}
	}
	if m.probe != nil {
		m.probe.End(lastDone)
	}
	if m.rec != nil {
		m.rec.End(lastDone)
	}
	return Result{
		Machine:      m.Name(),
		Trace:        t.Name,
		Instructions: int64(len(t.Ops)),
		Cycles:       lastDone,
	}, nil
}

// issueReason replays the issue-constraint chain from e to name the
// binding constraint — the last one to strictly raise the issue
// cycle. Term for term it is the max-form the Earliest* helpers
// compute, called before any resource is claimed, so it reproduces
// the hot path's result exactly. Classification lives here, on the
// probed path only, so the hot path stays the seed computation.
func (m *multiIssue) issueReason(op *trace.Op, po *trace.PreparedOp, isBranch bool, station int, e int64) probe.Reason {
	reason := probe.ReasonIssueWidth
	if !(isBranch && m.cfg.PerfectBranches) {
		for _, r := range po.Reads() {
			if r.Valid() {
				if rdy := m.sb.ReadyAt(r); rdy > e {
					e, reason = rdy, probe.ReasonRAW
				}
			}
		}
		if op.Dst.Valid() {
			if rdy := m.sb.ReadyAt(op.Dst); rdy > e {
				e, reason = rdy, probe.ReasonWAW
			}
		}
	}
	if fe := m.pool.EarliestAccept(op.Unit, e); fe > e {
		e, reason = fe, probe.ReasonStructFU
	}
	if po.Flags.Has(trace.FlagLoad) {
		if me := m.mem.EarliestLoad(po.AddrID, e); me > e {
			// Memory-carried true dependence: the load waits on the
			// store producing its word.
			e, reason = me, probe.ReasonRAW
		}
	}
	if po.Flags.Has(trace.FlagMemory) {
		if be := m.banks.EarliestAccept(op.Addr, e); be > e {
			e, reason = be, probe.ReasonMemBank
		}
	}
	if usesResultBus(op) {
		if be := m.bt.EarliestIssue(station, e, m.pool.Latency(op.Unit)); be > e {
			reason = probe.ReasonResultBus
		}
	}
	return reason
}

// machineConfig exposes the configuration to the extrapolation engine.
func (m *multiIssue) machineConfig() Config { return m.cfg }
