// Package bus models the result-bus interconnect between the outputs
// of the functional units and the register file (§5.1 of the paper).
//
// Three organizations are studied:
//
//   - XBar: N busses in a full crossbar; a result may return on any
//     free bus, so at most N results per cycle, regardless of which
//     issue station produced them.
//   - BusN: N busses, but the result of an instruction issued from
//     station i may use only bus i; station i therefore conflicts
//     only with its own earlier results.
//   - Bus1: a single result bus shared by everything; at most one
//     result per cycle machine-wide.
//
// An instruction reserves its result slot at issue time, for the
// cycle its result will appear; if the slot is taken, issue stalls.
package bus

import "fmt"

// Kind selects the interconnect organization.
type Kind uint8

// Interconnect kinds.
const (
	XBar Kind = iota // any of N busses
	BusN             // bus i dedicated to issue station i
	Bus1             // one bus for everything
)

// String names the organization as the paper's tables do.
func (k Kind) String() string {
	switch k {
	case XBar:
		return "X-Bar"
	case BusN:
		return "N-Bus"
	case Bus1:
		return "1-Bus"
	}
	return fmt.Sprintf("bus.Kind(%d)", uint8(k))
}

// window is the reservation horizon in cycles. Reservations are made
// at issue for at most maxLatency cycles ahead, so a modest power of
// two suffices.
const window = 64

// Tracker schedules result-bus reservations. It exploits monotonic
// time: a slot is identified by the absolute cycle stored in it, so
// stale entries from window wrap-around are self-invalidating.
type Tracker struct {
	kind  Kind
	n     int
	buses int // shared-cycle capacity for XBar; 1 for Bus1

	// shared[c%window] counts results on cycle c (XBar, Bus1).
	shared [window]slot
	// perStation[i][c%window] marks station i's bus busy on cycle c.
	perStation [][window]slot
}

type slot struct {
	cycle int64
	count int
}

// NewTracker builds a tracker for kind k with n issue stations. It
// panics on an invalid configuration; NewTrackerChecked is the
// error-returning form.
func NewTracker(k Kind, n int) *Tracker {
	t, err := NewTrackerChecked(k, n)
	if err != nil {
		panic(err.Error())
	}
	return t
}

// NewTrackerChecked builds a tracker for kind k with n issue
// stations, validating the configuration instead of panicking. The
// crossbar gets one bus per station, as in the paper; use
// NewTrackerCheckedBuses to decouple the two.
func NewTrackerChecked(k Kind, n int) (*Tracker, error) {
	return NewTrackerCheckedBuses(k, n, 0)
}

// NewTrackerCheckedBuses builds a tracker for kind k with stations
// issue stations and an explicit shared-bus count. buses == 0 keeps
// the paper's defaults (one bus per station for the crossbar); a
// positive count sizes the XBar's per-cycle result capacity
// independently of the station count, which is the design-space knob
// a sweep varies. BusN is per-station by definition and Bus1 has
// exactly one bus, so for those kinds a positive buses must restate
// the implied count — anything else is a configuration error, not a
// silent reinterpretation.
func NewTrackerCheckedBuses(k Kind, stations, buses int) (*Tracker, error) {
	if stations < 1 {
		return nil, fmt.Errorf("bus: need at least 1 station, got %d", stations)
	}
	if buses < 0 {
		return nil, fmt.Errorf("bus: negative bus count %d", buses)
	}
	if k > Bus1 {
		return nil, fmt.Errorf("bus: unknown interconnect kind %d", uint8(k))
	}
	t := &Tracker{kind: k, n: stations}
	switch k {
	case XBar:
		t.buses = buses
		if t.buses == 0 {
			t.buses = stations
		}
	case BusN:
		if buses != 0 && buses != stations {
			return nil, fmt.Errorf("bus: %s dedicates one bus per station; %d buses with %d stations is contradictory", k, buses, stations)
		}
		t.buses = stations
		t.perStation = make([][window]slot, stations)
	case Bus1:
		if buses > 1 {
			return nil, fmt.Errorf("bus: %s has exactly one bus, got %d", k, buses)
		}
		t.buses = 1
	}
	return t, nil
}

// Buses reports the tracker's result-bus count: per-cycle capacity
// for XBar, one per station for BusN, one for Bus1.
func (t *Tracker) Buses() int { return t.buses }

// Kind returns the tracker's organization.
func (t *Tracker) Kind() Kind { return t.kind }

// Reset clears all reservations.
func (t *Tracker) Reset() {
	t.shared = [window]slot{}
	for i := range t.perStation {
		t.perStation[i] = [window]slot{}
	}
}

// capacity returns how many results may share one cycle.
func (t *Tracker) capacity() int {
	switch t.kind {
	case XBar:
		return t.buses
	case Bus1:
		return 1
	}
	return 1 // BusN: capacity is per station
}

// Free reports whether station's bus can deliver a result on cycle c.
func (t *Tracker) Free(station int, c int64) bool {
	if t.kind == BusN {
		s := &t.perStation[station][c%window]
		return s.cycle != c || s.count == 0
	}
	s := &t.shared[c%window]
	return s.cycle != c || s.count < t.capacity()
}

// Reserve books station's bus for a result on cycle c. The caller
// must have checked Free.
func (t *Tracker) Reserve(station int, c int64) {
	var s *slot
	if t.kind == BusN {
		s = &t.perStation[station][c%window]
	} else {
		s = &t.shared[c%window]
	}
	if s.cycle != c {
		s.cycle = c
		s.count = 0
	}
	s.count++
}

// EarliestIssue returns the earliest cycle e >= issueAt such that a
// result produced by issuing at e (appearing at e+latency) finds a
// free slot on station's bus.
func (t *Tracker) EarliestIssue(station int, issueAt int64, latency int) int64 {
	e := issueAt
	for !t.Free(station, e+int64(latency)) {
		e++
	}
	return e
}
