package bus

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBus1SingleResultPerCycle(t *testing.T) {
	tr := NewTracker(Bus1, 4)
	if !tr.Free(0, 10) {
		t.Fatal("fresh tracker not free")
	}
	tr.Reserve(0, 10)
	if tr.Free(3, 10) {
		t.Error("1-Bus allowed two results in one cycle")
	}
	if !tr.Free(1, 11) {
		t.Error("adjacent cycle should be free")
	}
}

func TestXBarCapacityIsN(t *testing.T) {
	tr := NewTracker(XBar, 3)
	for i := 0; i < 3; i++ {
		if !tr.Free(i, 5) {
			t.Fatalf("X-Bar rejected result %d of 3", i+1)
		}
		tr.Reserve(i, 5)
	}
	if tr.Free(0, 5) {
		t.Error("X-Bar accepted a 4th result with 3 busses")
	}
}

func TestBusNPerStation(t *testing.T) {
	tr := NewTracker(BusN, 2)
	tr.Reserve(0, 7)
	if tr.Free(0, 7) {
		t.Error("station 0's bus double-booked")
	}
	if !tr.Free(1, 7) {
		t.Error("station 1's bus should be independent")
	}
}

func TestEarliestIssueSlides(t *testing.T) {
	tr := NewTracker(Bus1, 1)
	tr.Reserve(0, 10) // cycle 10 taken
	// An op issued at 3 with latency 7 would land on 10; it must slide
	// to issue at 4.
	if got := tr.EarliestIssue(0, 3, 7); got != 4 {
		t.Errorf("EarliestIssue = %d, want 4", got)
	}
	// With the slot free, the issue time passes through.
	if got := tr.EarliestIssue(0, 20, 7); got != 20 {
		t.Errorf("EarliestIssue = %d, want 20", got)
	}
}

func TestWindowWraparound(t *testing.T) {
	tr := NewTracker(Bus1, 1)
	tr.Reserve(0, 5)
	// Cycle 5+window maps to the same slot but is a different cycle;
	// the stale reservation must not block it.
	if !tr.Free(0, 5+window) {
		t.Error("stale reservation blocked a wrapped cycle")
	}
}

func TestReset(t *testing.T) {
	tr := NewTracker(BusN, 2)
	tr.Reserve(1, 3)
	tr.Reset()
	if !tr.Free(1, 3) {
		t.Error("Reset did not clear reservations")
	}
}

func TestKindString(t *testing.T) {
	if XBar.String() != "X-Bar" || BusN.String() != "N-Bus" || Bus1.String() != "1-Bus" {
		t.Error("Kind names do not match the paper's")
	}
}

func TestNewTrackerPanicsOnZeroStations(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTracker(Bus1, 0) did not panic")
		}
	}()
	NewTracker(Bus1, 0)
}

// Property: against a naive map-based model, the ring-buffer tracker
// gives identical Free answers under random monotonically-advancing
// reservation sequences (the usage pattern of the simulators).
func TestTrackerMatchesNaiveModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		kind := []Kind{XBar, BusN, Bus1}[rng.Intn(3)]
		n := 1 + rng.Intn(4)
		tr := NewTracker(kind, n)

		type key struct {
			station int
			cycle   int64
		}
		naiveShared := map[int64]int{}
		naivePer := map[key]int{}
		capacity := map[Kind]int{XBar: n, Bus1: 1, BusN: 1}[kind]

		now := int64(0)
		for i := 0; i < 200; i++ {
			now += int64(rng.Intn(3)) // time advances slowly
			st := rng.Intn(n)
			c := now + int64(rng.Intn(20)) // reserve within the horizon
			var naiveFree bool
			if kind == BusN {
				naiveFree = naivePer[key{st, c}] < capacity
			} else {
				naiveFree = naiveShared[c] < capacity
			}
			if got := tr.Free(st, c); got != naiveFree {
				t.Logf("kind=%s n=%d station=%d cycle=%d: Free=%v naive=%v", kind, n, st, c, got, naiveFree)
				return false
			}
			if naiveFree && rng.Intn(2) == 0 {
				tr.Reserve(st, c)
				if kind == BusN {
					naivePer[key{st, c}]++
				} else {
					naiveShared[c]++
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestXBarExplicitBusCount(t *testing.T) {
	// A 4-station crossbar with only 2 shared buses: two results may
	// share a cycle, a third must not.
	tr, err := NewTrackerCheckedBuses(XBar, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Buses() != 2 {
		t.Fatalf("Buses() = %d, want 2", tr.Buses())
	}
	tr.Reserve(0, 9)
	tr.Reserve(1, 9)
	if tr.Free(2, 9) {
		t.Error("third result admitted on a 2-bus crossbar cycle")
	}
	if !tr.Free(2, 10) {
		t.Error("next cycle not free")
	}
}

func TestBusCountDefaults(t *testing.T) {
	for _, tc := range []struct {
		kind  Kind
		buses int
	}{{XBar, 4}, {BusN, 4}, {Bus1, 1}} {
		tr, err := NewTrackerCheckedBuses(tc.kind, 4, 0)
		if err != nil {
			t.Fatalf("%s: %v", tc.kind, err)
		}
		if tr.Buses() != tc.buses {
			t.Errorf("%s: Buses() = %d, want %d", tc.kind, tr.Buses(), tc.buses)
		}
	}
}

func TestBusCountContradictionsRejected(t *testing.T) {
	if _, err := NewTrackerCheckedBuses(BusN, 4, 2); err == nil {
		t.Error("BusN with 2 buses for 4 stations accepted")
	}
	if _, err := NewTrackerCheckedBuses(Bus1, 4, 3); err == nil {
		t.Error("Bus1 with 3 buses accepted")
	}
	if _, err := NewTrackerCheckedBuses(XBar, 4, -1); err == nil {
		t.Error("negative bus count accepted")
	}
}
