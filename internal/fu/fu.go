// Package fu models the occupancy of the hardware functional units.
//
// The base machine has one unit of each class (internal/isa.Unit).
// A unit is either segmented (fully pipelined: it accepts a new
// operation every clock cycle, as in the CRAY-1) or non-segmented (it
// is busy for the full latency of each operation, as in the CDC
// 6600). The memory system is a "functional unit" here too: a serial
// memory is a non-segmented unit, an interleaved memory a segmented
// one. That is exactly the axis along which the paper's four basic
// machines differ.
package fu

import (
	"fmt"

	"mfup/internal/isa"
)

// Pool tracks when each functional-unit class can next accept an
// operation.
type Pool struct {
	lat       isa.Latencies
	segmented [isa.NumUnits]bool
	nextFree  [isa.NumUnits]int64
	// copies[u] holds per-copy next-free cycles when unit u is
	// replicated; nil (the default) keeps the single copy tracked in
	// nextFree, so the base machine's hot path stays scan-free and
	// cycle-identical to the unreplicated pool.
	copies [isa.NumUnits][]int64
}

// NewPool builds a pool with the given latency table. Segmentation
// defaults to non-segmented everywhere (use SetSegmented /
// SegmentAll); every class starts with one copy (use SetCount).
func NewPool(lat isa.Latencies) *Pool {
	return &Pool{lat: lat}
}

// SetCount replicates unit u into n identical copies sharing one
// dispatch port: an operation goes to whichever copy frees first.
// n < 1 panics; n == 1 restores the unreplicated fast path.
func (p *Pool) SetCount(u isa.Unit, n int) {
	if n < 1 {
		panic(fmt.Sprintf("fu: unit %s needs at least one copy, got %d", u, n))
	}
	if n == 1 {
		p.copies[u] = nil
		return
	}
	p.copies[u] = make([]int64, n)
}

// Count reports how many copies of unit u the pool has.
func (p *Pool) Count(u isa.Unit) int {
	if c := p.copies[u]; c != nil {
		return len(c)
	}
	return 1
}

// SetSegmented marks unit u as pipelined (true) or not (false).
func (p *Pool) SetSegmented(u isa.Unit, seg bool) { p.segmented[u] = seg }

// SegmentAll marks every unit pipelined.
func (p *Pool) SegmentAll() {
	for u := range p.segmented {
		p.segmented[u] = true
	}
}

// Segmented reports whether unit u is pipelined.
func (p *Pool) Segmented(u isa.Unit) bool { return p.segmented[u] }

// Latency returns the latency of unit u under this pool's table.
func (p *Pool) Latency(u isa.Unit) int { return p.lat.Of(u) }

// Reset marks every unit free at cycle 0.
func (p *Pool) Reset() {
	p.nextFree = [isa.NumUnits]int64{}
	for _, c := range p.copies {
		for i := range c {
			c[i] = 0
		}
	}
}

// EarliestAccept returns the earliest cycle >= t at which unit u can
// accept a new operation (on any copy, if replicated).
func (p *Pool) EarliestAccept(u isa.Unit, t int64) int64 {
	if c := p.copies[u]; c != nil {
		min := c[0]
		for _, f := range c[1:] {
			if f < min {
				min = f
			}
		}
		if min > t {
			return min
		}
		return t
	}
	if p.nextFree[u] > t {
		return p.nextFree[u]
	}
	return t
}

// Accept records that unit u starts an operation at cycle t and
// returns the completion cycle. A segmented unit (copy) can accept
// again at t+1, a non-segmented one at completion. With replication
// the operation claims the copy that frees first.
func (p *Pool) Accept(u isa.Unit, t int64) (done int64) {
	done = t + int64(p.lat.Of(u))
	next := done
	if p.segmented[u] {
		next = t + 1
	}
	if c := p.copies[u]; c != nil {
		best := 0
		for i, f := range c[1:] {
			if f < c[best] {
				best = i + 1
			}
		}
		c[best] = next
		return done
	}
	p.nextFree[u] = next
	return done
}
