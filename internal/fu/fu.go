// Package fu models the occupancy of the hardware functional units.
//
// The base machine has one unit of each class (internal/isa.Unit).
// A unit is either segmented (fully pipelined: it accepts a new
// operation every clock cycle, as in the CRAY-1) or non-segmented (it
// is busy for the full latency of each operation, as in the CDC
// 6600). The memory system is a "functional unit" here too: a serial
// memory is a non-segmented unit, an interleaved memory a segmented
// one. That is exactly the axis along which the paper's four basic
// machines differ.
package fu

import "mfup/internal/isa"

// Pool tracks when each functional-unit class can next accept an
// operation.
type Pool struct {
	lat       isa.Latencies
	segmented [isa.NumUnits]bool
	nextFree  [isa.NumUnits]int64
}

// NewPool builds a pool with the given latency table. Segmentation
// defaults to non-segmented everywhere; use SetSegmented /
// SegmentAll.
func NewPool(lat isa.Latencies) *Pool {
	return &Pool{lat: lat}
}

// SetSegmented marks unit u as pipelined (true) or not (false).
func (p *Pool) SetSegmented(u isa.Unit, seg bool) { p.segmented[u] = seg }

// SegmentAll marks every unit pipelined.
func (p *Pool) SegmentAll() {
	for u := range p.segmented {
		p.segmented[u] = true
	}
}

// Segmented reports whether unit u is pipelined.
func (p *Pool) Segmented(u isa.Unit) bool { return p.segmented[u] }

// Latency returns the latency of unit u under this pool's table.
func (p *Pool) Latency(u isa.Unit) int { return p.lat.Of(u) }

// Reset marks every unit free at cycle 0.
func (p *Pool) Reset() { p.nextFree = [isa.NumUnits]int64{} }

// EarliestAccept returns the earliest cycle >= t at which unit u can
// accept a new operation.
func (p *Pool) EarliestAccept(u isa.Unit, t int64) int64 {
	if p.nextFree[u] > t {
		return p.nextFree[u]
	}
	return t
}

// Accept records that unit u starts an operation at cycle t and
// returns the completion cycle. A segmented unit can accept again at
// t+1, a non-segmented one at completion.
func (p *Pool) Accept(u isa.Unit, t int64) (done int64) {
	done = t + int64(p.lat.Of(u))
	if p.segmented[u] {
		p.nextFree[u] = t + 1
	} else {
		p.nextFree[u] = done
	}
	return done
}
