package fu

import (
	"testing"

	"mfup/internal/isa"
)

func pool() *Pool { return NewPool(isa.NewLatencies(11, 5)) }

func TestNonSegmentedOccupiesFullLatency(t *testing.T) {
	p := pool() // non-segmented by default
	done := p.Accept(isa.FloatMul, 0)
	if done != 7 {
		t.Fatalf("FloatMul completion = %d, want 7", done)
	}
	if got := p.EarliestAccept(isa.FloatMul, 1); got != 7 {
		t.Errorf("non-segmented unit accepts at %d, want 7", got)
	}
	// A different unit is unaffected.
	if got := p.EarliestAccept(isa.FloatAdd, 1); got != 1 {
		t.Errorf("independent unit accepts at %d, want 1", got)
	}
}

func TestSegmentedAcceptsEveryCycle(t *testing.T) {
	p := pool()
	p.SetSegmented(isa.FloatMul, true)
	p.Accept(isa.FloatMul, 0)
	if got := p.EarliestAccept(isa.FloatMul, 0); got != 1 {
		t.Errorf("segmented unit accepts at %d, want 1", got)
	}
	// But never two in the same cycle.
	if got := p.EarliestAccept(isa.FloatMul, 0); got == 0 {
		t.Error("segmented unit accepted two operations in one cycle")
	}
}

func TestSegmentAll(t *testing.T) {
	p := pool()
	p.SegmentAll()
	for u := 0; u < isa.NumUnits; u++ {
		if !p.Segmented(isa.Unit(u)) {
			t.Errorf("unit %s not segmented after SegmentAll", isa.Unit(u))
		}
	}
}

func TestMemoryLatencyFollowsConfig(t *testing.T) {
	slow := NewPool(isa.NewLatencies(11, 5))
	fast := NewPool(isa.NewLatencies(5, 2))
	if slow.Accept(isa.Memory, 0) != 11 {
		t.Error("slow memory completion wrong")
	}
	if fast.Accept(isa.Memory, 0) != 5 {
		t.Error("fast memory completion wrong")
	}
	if slow.Latency(isa.Branch) != 5 || fast.Latency(isa.Branch) != 2 {
		t.Error("branch latency wrong")
	}
}

func TestReset(t *testing.T) {
	p := pool()
	p.Accept(isa.Memory, 0)
	p.Reset()
	if got := p.EarliestAccept(isa.Memory, 0); got != 0 {
		t.Errorf("after Reset, accepts at %d, want 0", got)
	}
}

func TestBackToBackNonSegmented(t *testing.T) {
	// Three sequential uses of a serial unit stack up end to end.
	p := pool()
	var at int64
	for i := 0; i < 3; i++ {
		at = p.EarliestAccept(isa.ScalarAdd, at)
		p.Accept(isa.ScalarAdd, at)
	}
	if at != 6 { // 0, 3, 6
		t.Errorf("third acceptance at %d, want 6", at)
	}
}

func TestReplicatedNonSegmented(t *testing.T) {
	// Two copies of a serial unit: two back-to-back ops run in
	// parallel, the third waits for the first copy to free.
	p := pool()
	p.SetCount(isa.ScalarAdd, 2) // 3-cycle serial adds
	if p.Count(isa.ScalarAdd) != 2 {
		t.Fatalf("Count = %d, want 2", p.Count(isa.ScalarAdd))
	}
	if at := p.EarliestAccept(isa.ScalarAdd, 0); at != 0 {
		t.Fatalf("first op accepts at %d, want 0", at)
	}
	p.Accept(isa.ScalarAdd, 0)
	if at := p.EarliestAccept(isa.ScalarAdd, 0); at != 0 {
		t.Fatalf("second copy busy at 0; accepts at %d", at)
	}
	p.Accept(isa.ScalarAdd, 0)
	if at := p.EarliestAccept(isa.ScalarAdd, 0); at != 3 {
		t.Fatalf("third op accepts at %d, want 3 (both copies busy)", at)
	}
}

func TestReplicatedSegmented(t *testing.T) {
	// Segmented copies each accept one op per cycle: with two copies,
	// two ops start at cycle 0 and a third at cycle 1.
	p := pool()
	p.SetCount(isa.FloatMul, 2)
	p.SetSegmented(isa.FloatMul, true)
	p.Accept(isa.FloatMul, 0)
	p.Accept(isa.FloatMul, 0)
	if at := p.EarliestAccept(isa.FloatMul, 0); at != 1 {
		t.Errorf("third op accepts at %d, want 1", at)
	}
}

func TestReplicatedReset(t *testing.T) {
	p := pool()
	p.SetCount(isa.ScalarAdd, 3)
	for i := 0; i < 3; i++ {
		p.Accept(isa.ScalarAdd, 0)
	}
	p.Reset()
	if at := p.EarliestAccept(isa.ScalarAdd, 0); at != 0 {
		t.Errorf("after Reset, accepts at %d, want 0", at)
	}
}

func TestSetCountOneRestoresFastPath(t *testing.T) {
	p := pool()
	p.SetCount(isa.ScalarAdd, 4)
	p.SetCount(isa.ScalarAdd, 1)
	if p.Count(isa.ScalarAdd) != 1 {
		t.Fatalf("Count = %d, want 1", p.Count(isa.ScalarAdd))
	}
	p.Accept(isa.ScalarAdd, 0)
	if at := p.EarliestAccept(isa.ScalarAdd, 0); at != 3 {
		t.Errorf("single serial copy accepts at %d, want 3", at)
	}
}

func TestSetCountPanicsBelowOne(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SetCount(0) did not panic")
		}
	}()
	pool().SetCount(isa.ScalarAdd, 0)
}
