package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"mfup/internal/atomicio"
	"mfup/internal/faultinject"
)

// Cache is the daemon's content-addressed result store: completed
// JobResult documents keyed by the SHA-256 of their canonical spec
// (see Key), held in memory and journaled to an append-only JSONL
// file so a restarted daemon serves warm results without recomputing
// — and serves them byte-identically, because what is journaled is
// the marshaled result bytes themselves, not a re-encodable struct.
//
// One line per result:
//
//	{"key":"9f86d08...","result":{"machine":"CRAY-like",...}}
//
// The journal borrows the whole crash-safety story of the table
// checkpoint (internal/tables): append-only writes through the
// "write.cache" fault-injection site, an exclusive advisory lock so a
// second daemon cannot interleave appends (it gets a structured
// *atomicio.LockError), and a torn-tail-tolerant reader — a kill -9
// mid-append loses at most the line being written, which the next
// daemon simply recomputes on demand. Failed jobs are never cached:
// failures are environmental (deadlines, injected faults) or
// permanent (handled by the circuit breaker), and neither belongs in
// a durable store keyed only by the job's observable inputs.
type Cache struct {
	path string

	mu      sync.Mutex
	f       *os.File // nil: memory-only (no journal path given)
	entries map[string]json.RawMessage
	loaded  int   // results read from an existing journal
	saved   int   // results appended by this process
	err     error // first write failure, sticky
}

// cacheLine is the JSONL wire form.
type cacheLine struct {
	Key    string          `json:"key"`
	Result json.RawMessage `json:"result"`
}

// OpenCache opens (creating if absent) the result journal at path and
// loads every complete line. An empty path yields a memory-only cache
// — warm within the process, cold across restarts. A torn final line
// is dropped and truncated away; a complete line that does not parse
// is an error, because serving from a journal that cannot be trusted
// would silently corrupt results.
func OpenCache(path string) (*Cache, error) {
	c := &Cache{path: path, entries: make(map[string]json.RawMessage)}
	if path == "" {
		return c, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	if err := atomicio.Lock(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cache: %w", err)
	}
	r := bufio.NewReader(f)
	var accepted int64 // offset past the last complete, valid line
	lineno := 0
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			break // empty tail or a torn append; drop it either way
		}
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("cache %s: %w", path, err)
		}
		lineno++
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) != 0 {
			var cl cacheLine
			if err := json.Unmarshal(trimmed, &cl); err != nil {
				f.Close()
				return nil, fmt.Errorf("cache %s line %d: %v", path, lineno, err)
			}
			if cl.Key == "" || len(cl.Result) == 0 {
				f.Close()
				return nil, fmt.Errorf("cache %s line %d: missing key or result", path, lineno)
			}
			// Last write wins, though duplicates only arise when an
			// earlier daemon raced a cache miss; the values are identical
			// by the determinism contract either way.
			c.entries[cl.Key] = cl.Result
		}
		accepted += int64(len(line))
	}
	if err := f.Truncate(accepted); err != nil {
		f.Close()
		return nil, fmt.Errorf("cache %s: %w", path, err)
	}
	if _, err := f.Seek(accepted, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("cache %s: %w", path, err)
	}
	c.f = f
	c.loaded = len(c.entries)
	return c, nil
}

// Get returns the stored result bytes for key, verbatim.
func (c *Cache) Get(key string) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.entries[key]
	return r, ok
}

// Put stores result under key and appends it to the journal. A write
// failure (injected or real) is sticky and reported by Close — but
// the entry still lands in memory, so the job it belongs to is served
// regardless: durability degrades before availability does.
func (c *Cache) Put(key string, result json.RawMessage) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[key]; dup {
		return
	}
	c.entries[key] = result
	if c.f == nil || c.err != nil {
		return
	}
	line, err := json.Marshal(cacheLine{Key: key, Result: result})
	if err != nil {
		c.err = err
		return
	}
	w := faultinject.WrapWriter("write.cache", c.f)
	if _, err := w.Write(append(line, '\n')); err != nil {
		c.err = fmt.Errorf("cache %s: %w", c.path, err)
		return
	}
	c.saved++
}

// Loaded reports how many results an existing journal contributed,
// and Saved how many this process appended.
func (c *Cache) Loaded() int { return c.loaded }

// Saved reports how many results this process appended.
func (c *Cache) Saved() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.saved
}

// Err returns the sticky write failure, if any, without closing.
func (c *Cache) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Flush makes the journal durable without closing it — the drain path
// flushes before the process exits.
func (c *Cache) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return c.err
	}
	if err := c.f.Sync(); err != nil && c.err == nil {
		c.err = fmt.Errorf("cache %s: %w", c.path, err)
	}
	return c.err
}

// Close syncs and closes the journal, returning the first write
// failure encountered over its lifetime (injected or real).
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return c.err
	}
	if serr := c.f.Sync(); serr != nil && c.err == nil {
		c.err = fmt.Errorf("cache %s: %w", c.path, serr)
	}
	if cerr := c.f.Close(); cerr != nil && c.err == nil {
		c.err = cerr
	}
	c.f = nil
	return c.err
}
