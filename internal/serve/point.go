package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"mfup/internal/core"
	"mfup/internal/dse"
	"mfup/internal/runner"
)

// The sweep-point job type: POST /v1/points takes one dse.PointSpec —
// a single machine definition over a sweep workload — and returns its
// simulated rate. It exists for the cluster router, which decomposes
// a sweep into points and dispatches each to the worker that owns its
// content key; but it is an ordinary job class, admitted through the
// same token bucket, bounded queue, and circuit breaker as the rest.
//
// The job key IS the dse point-journal key ("dse-point/v1:..."), so
// it can never collide with the hex job keys or the "sweep:"-prefixed
// sweep keys — and so the worker's flock'd point journal serves warm
// points to the cluster exactly as it serves them to local sweeps.
// POST is idempotent by content addressing: a router that re-issues a
// point after a lost reply gets the same bytes the first dispatch
// produced (or would have).

// pointResult is the wire form of a completed point. The rate is a
// hex float literal, which round-trips exactly — two workers that
// compute the same point marshal byte-identical documents, the
// invariant the cluster's corruption verdict checks.
type pointResult struct {
	Key  string `json:"key"`
	Rate string `json:"rate"`
}

// ParsePointResult decodes a pointResult document and its exact rate;
// the router uses it to fold worker replies back into a sweep report.
func ParsePointResult(raw []byte) (key string, rate float64, err error) {
	var pr pointResult
	if err := json.Unmarshal(raw, &pr); err != nil {
		return "", 0, fmt.Errorf("point result: %v", err)
	}
	rate, err = strconv.ParseFloat(pr.Rate, 64)
	if err != nil || pr.Key == "" || !(rate > 0) {
		return "", 0, fmt.Errorf("point result: bad document %.120s", raw)
	}
	return pr.Key, rate, nil
}

// handlePointSubmit admits one sweep point.
func (s *Server) handlePointSubmit(w http.ResponseWriter, r *http.Request) {
	s.stats.submitted.Add(1)
	s.stats.points.Add(1)
	if !s.gate(w) {
		return
	}

	var ps dse.PointSpec
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&ps); err != nil {
		s.stats.badSpec.Add(1)
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding point spec: %v", err), 0)
		return
	}
	c, err := ps.Canonicalize()
	if err != nil {
		s.stats.badSpec.Add(1)
		s.writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	key := c.Key()
	s.admit(w, r, &job{id: key, key: key, point: &c}, s.cfg.DefaultTimeout)
}

// runPoint executes one admitted point on a worker: the point journal
// first (a warm point costs a map lookup), then a checked simulation,
// then journal and cache appends so both the local sweep driver and a
// restarted daemon see the point warm.
func (s *Server) runPoint(j *job) {
	if s.sweepJ != nil {
		if rate, ok := s.sweepJ.Lookup(j.key); ok {
			s.finishPoint(j, rate)
			return
		}
	}
	rate, err := j.point.Run(s.workCtx, core.Limits{Deadline: j.deadline})
	if err != nil {
		transient := runner.Transient(err)
		s.breaker.Failure(j.key, !transient)
		s.log.Warn("point failed", "key", short(j.key), "err", err.Error(), "transient", transient)
		s.finish(j, nil, &jobError{Msg: err.Error(), Transient: transient})
		return
	}
	if s.sweepJ != nil {
		s.sweepJ.Record(j.key, rate)
	}
	s.finishPoint(j, rate)
}

// finishPoint marshals and publishes a point's rate.
func (s *Server) finishPoint(j *job, rate float64) {
	raw, err := json.Marshal(pointResult{Key: j.key, Rate: strconv.FormatFloat(rate, 'x', -1, 64)})
	if err != nil {
		s.breaker.Failure(j.key, true)
		s.finish(j, nil, &jobError{Msg: fmt.Sprintf("marshaling point result: %v", err)})
		return
	}
	s.cache.Put(j.key, raw)
	if cerr := s.cache.Err(); cerr != nil {
		s.log.Error("cache journal write failed; results no longer durable", "err", cerr.Error())
	}
	s.breaker.Success(j.key)
	s.finish(j, raw, nil)
}
