package serve

import (
	"math"
	"sync"
	"time"
)

// bucket is a token-bucket rate limiter with an injectable clock.
// Admission control exists so overload is *shed*, explicitly and
// early (HTTP 429 with a Retry-After the client can trust), instead
// of absorbed into an unbounded queue that converts overload into
// latency, memory growth, and eventually a crash.
type bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens replenished per second; <= 0 disables limiting
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
	now    func() time.Time
}

// newBucket builds a limiter admitting rate jobs/second with bursts
// of up to burst. rate <= 0 disables limiting entirely. A nil now
// uses the real clock; tests inject a fake one.
func newBucket(rate float64, burst int, now func() time.Time) *bucket {
	if now == nil {
		now = time.Now
	}
	b := &bucket{rate: rate, burst: float64(burst), now: now}
	if b.burst < 1 {
		b.burst = 1
	}
	b.tokens = b.burst // start full: a fresh daemon admits its burst
	b.last = now()
	return b
}

// take consumes one token if available. When the bucket is empty it
// refuses and reports how long until one token will have accrued —
// the Retry-After the handler sends back.
func (b *bucket) take() (ok bool, retryAfter time.Duration) {
	if b == nil || b.rate <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / b.rate // seconds until one whole token
	return false, time.Duration(math.Ceil(need * float64(time.Second)))
}

// RetryAfterSeconds renders a Retry-After header value: whole
// seconds, rounded up, never less than 1 — "retry immediately" is
// exactly the signal a shedding server must not send. The cluster
// router shares this arithmetic when it aggregates peer sheds.
func RetryAfterSeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}
