package serve

import (
	"encoding/json"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"mfup/internal/dse"
)

const pointDoc = `{"spec":{"kind":"ooo","width":2,"mem":11,"br":5}}`

func TestPointSubmitComputesAndReplays(t *testing.T) {
	_, hs := testServer(t, Config{Workers: 2})

	code, _, jr := post(t, hs.URL+"/v1/points?wait=1", pointDoc)
	if code != http.StatusOK || jr.Status != "done" {
		t.Fatalf("point submit: %d %+v", code, jr)
	}
	key, rate, err := ParsePointResult(jr.Result)
	if err != nil {
		t.Fatalf("ParsePointResult(%s): %v", jr.Result, err)
	}
	if !strings.HasPrefix(key, "dse-point/v1:") {
		t.Errorf("point key %q not in the dse point namespace", key)
	}
	if jr.ID != key {
		t.Errorf("envelope id %q != point key %q", jr.ID, key)
	}
	if !(rate > 0) {
		t.Errorf("rate %v not positive", rate)
	}

	// The hex-float wire rate round-trips exactly.
	var pr struct {
		Rate string `json:"rate"`
	}
	mustUnmarshal(t, jr.Result, &pr)
	if back, _ := strconv.ParseFloat(pr.Rate, 64); back != rate {
		t.Errorf("hex rate %q does not round-trip: %v vs %v", pr.Rate, back, rate)
	}

	// A respelled duplicate (defaults spelled out) is the same point:
	// cache hit, byte-identical bytes.
	respelled := `{"spec":{"kind":"ooo","width":2,"mem":11,"br":5},"loops":"scalar","scale":0}`
	code2, _, jr2 := post(t, hs.URL+"/v1/points?wait=1", respelled)
	if code2 != http.StatusOK || !jr2.Cached {
		t.Fatalf("respelled point not served from cache: %d %+v", code2, jr2)
	}
	if string(jr2.Result) != string(jr.Result) {
		t.Error("cached point result is not byte-identical")
	}
}

// The point rate is the same number the in-process sweep driver
// would record — the contract cluster sharding is built on.
func TestPointMatchesLocalSweepRate(t *testing.T) {
	_, hs := testServer(t, Config{Workers: 2})
	_, _, jr := post(t, hs.URL+"/v1/points?wait=1", pointDoc)
	key, rate, err := ParsePointResult(jr.Result)
	if err != nil {
		t.Fatal(err)
	}

	sw, err := dse.Parse([]byte(`{"base":{"kind":"ooo","width":2,"mem":11,"br":5}}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := dse.Run(t.Context(), sw, dse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 1 {
		t.Fatalf("reference sweep has %d points", len(rep.Points))
	}
	if rep.Points[0].Key != key {
		t.Errorf("point key %q != sweep point key %q (the shared journal scheme broke)", key, rep.Points[0].Key)
	}
	if rep.Points[0].Rate != rate {
		t.Errorf("point rate %v != sweep rate %v (must be bit-identical)", rate, rep.Points[0].Rate)
	}
}

// Points and the sweep journal: a computed point lands in the shared
// journal, and a restarted daemon over the same journal serves the
// whole sweep containing it without re-simulating that point.
func TestPointFeedsSweepJournal(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "points.jsonl")
	s1, hs := testServer(t, Config{Workers: 2, SweepJournalPath: journal})

	if code, _, jr := post(t, hs.URL+"/v1/points?wait=1", pointDoc); code != http.StatusOK || jr.Status != "done" {
		t.Fatalf("point submit: %d %+v", code, jr)
	}
	// Release the journal flock before the successor opens it.
	if err := s1.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}

	// Fresh daemon, same journal: the sweep whose only point this is
	// resolves entirely from the journal.
	_, hs2 := testServer(t, Config{Workers: 2, SweepJournalPath: journal})
	code, _, jr := post(t, hs2.URL+"/v1/sweeps?wait=1", `{"base":{"kind":"ooo","width":2,"mem":11,"br":5}}`)
	if code != http.StatusOK || jr.Status != "done" {
		t.Fatalf("sweep over warm journal: %d %+v", code, jr)
	}
	var rep dse.Report
	mustUnmarshal(t, jr.Result, &rep)
	if rep.FromJournal != 1 || rep.Simulated != 0 {
		t.Errorf("fromjournal=%d simulated=%d, want 1/0 — the point journal must be shared", rep.FromJournal, rep.Simulated)
	}
}

func TestPointBadSpecsRejected(t *testing.T) {
	s, hs := testServer(t, Config{Workers: 1})
	for _, doc := range []string{
		`{`,
		`{"spec":{"kind":"no-such-kind"}}`,
		`{"spec":{"kind":"vector"}}`, // outside the sweep space
		`{"spec":{"kind":"ooo"},"loops":"everything"}`,
		`{"spec":{"kind":"ooo"},"scale":-1}`,
	} {
		if code, _, _ := post(t, hs.URL+"/v1/points?wait=1", doc); code != http.StatusBadRequest {
			t.Errorf("point %s: status %d, want 400", doc, code)
		}
	}
	if got := s.Snapshot().BadSpec; got != 5 {
		t.Errorf("bad_spec = %d, want 5", got)
	}
	if got := s.Snapshot().Points; got != 5 {
		t.Errorf("points_submitted = %d, want 5", got)
	}
}

func TestParsePointResultRejectsGarbage(t *testing.T) {
	for _, raw := range []string{
		``,
		`{}`,
		`{"key":"k"}`,
		`{"key":"k","rate":"not-a-number"}`,
		`{"key":"k","rate":"-0x1p+1"}`, // non-positive
		`{"key":"","rate":"0x1p+1"}`,
	} {
		if _, _, err := ParsePointResult([]byte(raw)); err == nil {
			t.Errorf("ParsePointResult(%q) accepted garbage", raw)
		}
	}
	if key, rate, err := ParsePointResult([]byte(`{"key":"k","rate":"0x1.8p+1"}`)); err != nil || key != "k" || rate != 3 {
		t.Errorf("ParsePointResult round trip: %q %v %v", key, rate, err)
	}
}

// mustUnmarshal decodes JSON or fails the test.
func mustUnmarshal(t *testing.T, raw []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(raw, v); err != nil {
		t.Fatalf("unmarshaling %.120s: %v", raw, err)
	}
}
