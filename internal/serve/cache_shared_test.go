package serve

import (
	"bytes"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"mfup/internal/atomicio"
)

// Two daemons sharing one cache journal: the cluster deployment model
// gives every worker its own journal, and these tests pin the guard
// rails that make a misconfigured shared journal safe — the second
// process is refused with a structured lock error, the refusal never
// modifies the holder's file, and once the holder is gone a successor
// replays the journal byte-identically even over a torn tail.

func TestSharedCacheSecondDaemonLockedOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	s1, _ := testServer(t, Config{Workers: 1, CachePath: path})

	_, err := New(Config{Workers: 1, CachePath: path})
	var le *atomicio.LockError
	if !errors.As(err, &le) {
		t.Fatalf("second daemon error = %v (%T), want *atomicio.LockError", err, err)
	}
	if le.Path != path {
		t.Errorf("lock error names %q, want the contended journal %q", le.Path, path)
	}
	// The holder is unharmed: it still accepts and caches work.
	_ = s1
}

// A locked-out opener must fail before it reads or truncates: if it
// ran the torn-tail repair on a journal another process is appending
// to, it would truncate a line mid-write and corrupt the holder.
func TestSharedCacheLockedOpenerNeverModifies(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c1, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c1.Put("k1", []byte(`{"a":1}`))
	if err := c1.Flush(); err != nil {
		t.Fatal(err)
	}
	// The holder is mid-append: the last line has no newline yet, the
	// exact state a concurrent opener's repair pass would truncate.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"k2","resu`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := OpenCache(path); err == nil {
		t.Fatal("second open succeeded while the lock was held")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Errorf("locked-out opener modified the journal:\nbefore: %s\nafter:  %s", before, after)
	}
}

// The full handoff: daemon A computes and journals a result, dies with
// a torn tail (kill -9 mid-append), daemon B opens the same journal
// and serves A's job from cache, byte-for-byte.
func TestSharedCacheHandoffReplaysBytesOverTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	s1, hs1 := testServer(t, Config{Workers: 2, CachePath: path})

	code, _, jr1 := post(t, hs1.URL+"/v1/jobs?wait=1", crayLoop1)
	if code != http.StatusOK || jr1.Status != "done" {
		t.Fatalf("first daemon: %d %+v", code, jr1)
	}
	if err := s1.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	// The crash: a partial append survives the first daemon.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"torn","resu`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, hs2 := testServer(t, Config{Workers: 2, CachePath: path})
	if got := s2.cache.Loaded(); got != 1 {
		t.Fatalf("successor loaded %d entries, want 1 (torn tail dropped, real line kept)", got)
	}
	code, _, jr2 := post(t, hs2.URL+"/v1/jobs?wait=1", crayLoop1)
	if code != http.StatusOK || !jr2.Cached {
		t.Fatalf("successor did not serve from the shared journal: %d %+v", code, jr2)
	}
	if string(jr2.Result) != string(jr1.Result) {
		t.Errorf("handoff result diverged:\nA: %.200s\nB: %.200s", jr1.Result, jr2.Result)
	}
}
