package serve

import (
	"testing"
	"time"
)

// fakeClock is a hand-cranked time source for admission tests.
type fakeClock struct{ t time.Time }

// newFakeClock starts at the real current time: job deadlines derived
// from the fake clock are compared against the real clock inside the
// simulation guard, so a fixed past date would expire every job.
func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Now()}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBucketAdmitsBurstThenSheds(t *testing.T) {
	clk := newFakeClock()
	b := newBucket(1, 3, clk.now) // 1/s, burst 3

	for i := 0; i < 3; i++ {
		if ok, _ := b.take(); !ok {
			t.Fatalf("take %d refused within the burst", i)
		}
	}
	ok, retry := b.take()
	if ok {
		t.Fatal("fourth take admitted; burst is 3")
	}
	if retry <= 0 || retry > time.Second {
		t.Errorf("retryAfter = %v, want (0, 1s]", retry)
	}
}

func TestBucketReplenishes(t *testing.T) {
	clk := newFakeClock()
	b := newBucket(2, 1, clk.now) // 2/s, burst 1

	if ok, _ := b.take(); !ok {
		t.Fatal("initial take refused")
	}
	if ok, _ := b.take(); ok {
		t.Fatal("empty bucket admitted")
	}
	clk.advance(500 * time.Millisecond) // one token at 2/s
	if ok, _ := b.take(); !ok {
		t.Fatal("replenished token refused")
	}
	// Tokens cap at the burst: a long idle stretch does not bank an
	// unbounded burst.
	clk.advance(time.Hour)
	if ok, _ := b.take(); !ok {
		t.Fatal("take after idle refused")
	}
	if ok, _ := b.take(); ok {
		t.Fatal("idle time banked tokens beyond the burst")
	}
}

func TestBucketUnlimitedWhenRateZero(t *testing.T) {
	b := newBucket(0, 1, newFakeClock().now)
	for i := 0; i < 1000; i++ {
		if ok, _ := b.take(); !ok {
			t.Fatal("unlimited bucket refused")
		}
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	cases := map[time.Duration]int{
		0:                       1, // never "retry immediately"
		time.Millisecond:        1,
		time.Second:             1,
		1500 * time.Millisecond: 2,
		30 * time.Second:        30,
	}
	for d, want := range cases {
		if got := RetryAfterSeconds(d); got != want {
			t.Errorf("RetryAfterSeconds(%v) = %d, want %d", d, got, want)
		}
	}
}

// Truncation-to-zero regression at the boundary: every sub-second wait
// — down to a single nanosecond — must render Retry-After: 1, and a
// wait one tick past a whole second must round UP, never down. An
// integer division here once risked "Retry-After: 0", which tells a
// shed client to hammer the server immediately: the one signal a
// shedding server must never send.
func TestRetryAfterSecondsBoundary(t *testing.T) {
	cases := map[time.Duration]int{
		time.Nanosecond:               1,
		time.Second - time.Nanosecond: 1, // 999,999,999ns: sub-second stays 1
		time.Second + time.Nanosecond: 2, // rounds up, not down to 1
		2*time.Second - 1:             2,
		2 * time.Second:               2,
	}
	for d, want := range cases {
		got := RetryAfterSeconds(d)
		if got != want {
			t.Errorf("RetryAfterSeconds(%v) = %d, want %d", d, got, want)
		}
		if got < 1 {
			t.Errorf("RetryAfterSeconds(%v) = %d: rendered a zero Retry-After", d, got)
		}
	}
}
