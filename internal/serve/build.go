package serve

import (
	"fmt"

	"mfup/internal/asm"
	"mfup/internal/cli"
	"mfup/internal/core"
	"mfup/internal/emu"
	"mfup/internal/loops"
	"mfup/internal/runner"
	"mfup/internal/stats"
	"mfup/internal/trace"
)

// work is an executable form of a canonical job: a runner.Task plus
// the labels its per-trace results render under.
type work struct {
	task   runner.Task
	labels []string
}

// buildWork turns a canonical spec into a runnable task. It validates
// everything eagerly — machine construction, assembly, scaling — so a
// job that cannot possibly run fails here with a structured error
// instead of burning a worker slot; the runner's per-cell recover
// remains the backstop for model bugs.
//
// Extrapolation policy: the steady-state engine is bit-identical to
// full simulation by contract, so the service treats the spec's
// Extrapolate as a cost hint, not an observable: it engages when asked
// OR whenever the requested scale exceeds what a kernel's memory
// layout can materialize (the surplus iterations are then closed
// analytically). This is what lets Extrapolate stay out of the cache
// key without ever splitting a key between success and failure.
func buildWork(c JobSpec) (*work, error) {
	// Probe-construct the machine once so configuration errors surface
	// now, as *SpecError material; the task re-constructs privately.
	if _, err := c.Machine.newMachine(); err != nil {
		return nil, err
	}

	var (
		traces  []*trace.Trace
		labels  []string
		virtual = map[string]int64{}
		extrap  = c.Extrapolate
	)
	if c.Workload.Asm != "" {
		p, err := asm.Assemble("job.cal", c.Workload.Asm)
		if err != nil {
			return nil, &SpecError{Msg: err.Error()}
		}
		m := emu.New(0)
		if c.Workload.MaxSteps > 0 {
			m.StepLimit = c.Workload.MaxSteps
		}
		t, err := m.Run(p)
		if err != nil {
			return nil, &SpecError{Msg: err.Error()}
		}
		traces = append(traces, t)
		labels = append(labels, t.Name)
	} else {
		ks, err := cli.SelectLoops(c.Workload.Loops)
		if err != nil {
			return nil, &SpecError{Msg: err.Error()}
		}
		if c.Machine.Kind == "vector" {
			vks := make([]*loops.Kernel, 0, len(ks))
			for _, k := range ks {
				vk, err := loops.VectorKernel(k.Number)
				if err != nil {
					continue
				}
				vks = append(vks, vk)
			}
			ks = vks
		}
		if c.Scale > 0 {
			scaled := make([]*loops.Kernel, 0, len(ks))
			for _, k := range ks {
				sk, extra, err := loops.ForScale(k.Number, c.Scale)
				if err != nil {
					return nil, &SpecError{Msg: err.Error()}
				}
				if extra > 0 {
					// Scale beyond the memory layout: the analytic engine
					// must close the surplus, so it must be able to.
					if err := core.CanExtrapolate(sk.SharedTrace()); err != nil {
						return nil, specErrf("%s: scale %d needs analytic extension past %d iterations, but %v",
							sk, c.Scale, sk.N, err)
					}
					v, err := loops.VirtualWindows(sk, extra)
					if err != nil {
						return nil, &SpecError{Msg: err.Error()}
					}
					virtual[sk.SharedTrace().Name] = v
					extrap = true
				}
				scaled = append(scaled, sk)
			}
			ks = scaled
		}
		for _, k := range ks {
			traces = append(traces, k.SharedTrace())
			labels = append(labels, k.String())
		}
	}
	if len(traces) == 0 {
		return nil, specErrf("workload selects no traces")
	}

	spec := c // captured by value: the task must not alias caller state
	task := runner.Task{
		New: func() core.Machine {
			m, err := spec.Machine.newMachine()
			if err != nil {
				// Probe-construction above succeeded, so this cannot
				// happen; if it somehow does, the runner's per-cell
				// recover converts the panic into a CellError.
				panic(err)
			}
			if extrap {
				return core.Extrapolate(m).WithVirtual(virtual)
			}
			return m
		},
		Traces: traces,
	}
	return &work{task: task, labels: labels}, nil
}

// LoopResult is one trace's outcome inside a JobResult.
type LoopResult struct {
	Trace        string  `json:"trace"`
	Instructions int64   `json:"instructions"`
	Cycles       int64   `json:"cycles"`
	Rate         float64 `json:"rate"`
}

// JobResult is the service's result document: per-trace issue rates
// in kernel order plus their harmonic mean, exactly the quantities
// the paper's tables are built from. The daemon caches the *marshaled
// bytes* of this struct, so a warm hit is byte-identical to the run
// that produced it by construction.
type JobResult struct {
	Machine      string       `json:"machine"`
	Config       string       `json:"config"`
	Loops        []LoopResult `json:"loops"`
	HarmonicMean float64      `json:"harmonic_mean"`
}

// resultOf folds one task's per-trace results into the wire document.
// A non-positive rate is reported as the failure it is — it would
// poison the harmonic mean — mirroring the CLI tools.
func resultOf(c JobSpec, w *work, rs []core.Result) (*JobResult, error) {
	jr := &JobResult{Config: c.Machine.config().Name()}
	rates := make([]float64, 0, len(rs))
	for i, r := range rs {
		rate := r.IssueRate()
		if !(rate > 0) {
			return nil, fmt.Errorf("%s: non-positive issue rate %g (%d instructions in %d cycles)",
				w.labels[i], rate, r.Instructions, r.Cycles)
		}
		jr.Machine = r.Machine
		jr.Loops = append(jr.Loops, LoopResult{
			Trace:        w.labels[i],
			Instructions: r.Instructions,
			Cycles:       r.Cycles,
			Rate:         rate,
		})
		rates = append(rates, rate)
	}
	jr.HarmonicMean = stats.HarmonicMean(rates)
	return jr, nil
}
