package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mfup/internal/core"
	"mfup/internal/dse"
	"mfup/internal/faultinject"
	"mfup/internal/runner"
)

// Config parameterizes a Server. The zero value is usable: all cores,
// a 64-deep queue, no rate limit, a two-minute default job deadline,
// breaker at three strikes, memory-only cache.
type Config struct {
	Workers    int     // simulation workers; <= 0 means all cores
	QueueDepth int     // bounded job queue; <= 0 means 64
	Rate       float64 // admitted jobs/second; <= 0 disables rate limiting
	Burst      int     // token-bucket capacity; <= 0 means max(QueueDepth, 1)

	// DefaultTimeout is the per-job deadline when the spec does not
	// give one; MaxTimeout caps what a spec may ask for. The deadline
	// anchors at admission, so queue wait counts against it — an
	// accepted job is a promise with an expiry, not an IOU.
	DefaultTimeout time.Duration // <= 0 means 2m
	MaxTimeout     time.Duration // <= 0 means 10m

	// Retry policy for transiently failed runs, passed through to
	// runner.Options (exponential backoff, deterministic jitter).
	Retries      int
	RetryBackoff time.Duration
	RetrySeed    int64

	// Circuit breaker: after BreakerThreshold consecutive permanent
	// failures a job key is quarantined for BreakerCooldown.
	// Threshold < 0 disables the breaker; 0 means 3.
	BreakerThreshold int
	BreakerCooldown  time.Duration // <= 0 means 30s

	CachePath string // result journal; "" = memory-only

	// SweepJournalPath is the shared design-space-sweep point journal
	// (internal/dse). Points are content-addressed, so one journal
	// serves every sweep the daemon ever runs — an interrupted or
	// repeated sweep resumes from it. "" = memory-only sweeps.
	SweepJournalPath string

	Log *slog.Logger // nil discards

	now func() time.Time // test seam for admission/breaker clocks
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runner.Workers(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Burst <= 0 {
		c.Burst = c.QueueDepth
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.Log == nil {
		c.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// jobError is a failed job's outcome.
type jobError struct {
	Msg       string
	Transient bool
}

// job is one admitted unit of work — a single simulation job, a
// whole design-space sweep when sweep is non-nil, or one sweep point
// when point is non-nil. Waiters select on done; by the time it
// closes, exactly one of result and jerr is set and neither changes
// again.
type job struct {
	id       string         // public identifier echoed to clients
	key      string         // internal cache/dedupe/breaker key
	spec     JobSpec        // canonical (single-simulation jobs)
	sweep    *dse.SweepSpec // canonical sweep, when this job is one
	point    *dse.PointSpec // canonical sweep point, when this job is one
	deadline time.Time

	state  atomic.Int32 // 0 queued, 1 running
	done   chan struct{}
	result json.RawMessage
	jerr   *jobError
}

func (j *job) status() string {
	select {
	case <-j.done:
		if j.jerr != nil {
			return "failed"
		}
		return "done"
	default:
		if j.state.Load() == 1 {
			return "running"
		}
		return "queued"
	}
}

// Server is the mfud daemon's engine: admission control in front, a
// bounded queue and worker pool in the middle, the content-addressed
// cache behind, a circuit breaker across the failure path. It is an
// http.Handler factory (Handler) plus a lifecycle (Drain); the
// command wraps it in an http.Server.
type Server struct {
	cfg     Config
	log     *slog.Logger
	cache   *Cache
	sweepJ  *dse.Journal // shared sweep point journal; nil = memory-only
	bucket  *bucket
	breaker *Breaker

	mu       sync.Mutex
	draining bool
	queue    chan *job
	active   map[string]*job // queued or running, by key

	// recent holds finished-job outcomes for polling clients, bounded
	// FIFO: completed results live in the cache forever, but failures
	// are kept only recently — an unbounded failure log would be its
	// own resource leak under sustained chaos.
	recent    map[string]*job
	recentFIF []string

	wg         sync.WaitGroup
	workCtx    context.Context
	workCancel context.CancelFunc

	// runJob executes one job; tests stub it to model slow work
	// without dragging real simulations into scheduling tests.
	runJob func(*job)

	stats counters
}

// counters is the server's observability surface, all atomics.
type counters struct {
	submitted  atomic.Int64 // POSTs that reached admission
	sweeps     atomic.Int64 // of those, design-space sweep submissions
	points     atomic.Int64 // of those, sweep-point submissions (cluster shards)
	admitted   atomic.Int64 // jobs enqueued
	shedRate   atomic.Int64 // 429: token bucket empty
	shedQueue  atomic.Int64 // 429: queue full
	shedDrain  atomic.Int64 // 503: draining
	shedBreak  atomic.Int64 // 503: quarantined
	badSpec    atomic.Int64 // 400
	cacheHits  atomic.Int64
	deduped    atomic.Int64 // attached to an identical in-flight job
	completed  atomic.Int64
	failed     atomic.Int64
	retries    atomic.Int64 // runner-level re-attempts
	injected   atomic.Int64 // serve.* faults fired
	panics     atomic.Int64 // handler panics recovered
	writeFails atomic.Int64 // response-body write failures
}

const maxRecent = 1024

// New builds a Server, opens its cache journal, and starts its
// workers. Callers own the lifecycle: Drain (or Close) must run
// before process exit for the journal to be flushed cleanly.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	cache, err := OpenCache(cfg.CachePath)
	if err != nil {
		return nil, err
	}
	var sweepJ *dse.Journal
	if cfg.SweepJournalPath != "" {
		sweepJ, err = dse.OpenJournal(cfg.SweepJournalPath)
		if err != nil {
			cache.Close()
			return nil, err
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		log:        cfg.Log,
		cache:      cache,
		sweepJ:     sweepJ,
		bucket:     newBucket(cfg.Rate, cfg.Burst, cfg.now),
		breaker:    NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.now),
		queue:      make(chan *job, cfg.QueueDepth),
		active:     make(map[string]*job),
		recent:     make(map[string]*job),
		workCtx:    ctx,
		workCancel: cancel,
	}
	s.runJob = s.run
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	s.log.Info("serving", "workers", cfg.Workers, "queue", cfg.QueueDepth,
		"cache", cfg.CachePath, "warm", cache.Loaded())
	return s, nil
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		j.state.Store(1)
		s.mu.Lock()
		run := s.runJob // read under the lock: tests swap in stubs
		s.mu.Unlock()
		run(j)
	}
}

// run executes one job end to end: deadline check, workload build,
// checked simulation with retries, result folding, cache append,
// breaker bookkeeping.
func (s *Server) run(j *job) {
	if s.cfg.now().After(j.deadline) {
		// The job expired in the queue. That is load shedding after
		// admission — environmental, so the breaker does not count it.
		s.finish(j, nil, &jobError{Msg: "deadline exceeded before the job ran", Transient: true})
		return
	}
	if j.sweep != nil {
		s.runSweep(j)
		return
	}
	if j.point != nil {
		s.runPoint(j)
		return
	}
	w, err := buildWork(j.spec)
	if err != nil {
		// A spec that canonicalizes but cannot build (assembly errors,
		// impossible scale) fails deterministically: breaker material.
		s.breaker.Failure(j.key, true)
		s.finish(j, nil, &jobError{Msg: err.Error()})
		return
	}
	opts := runner.Options{
		Parallel: 1, // parallelism lives in the worker pool, not inside a job
		Limits: core.Limits{
			MaxCycles:   j.spec.Limits.MaxCycles,
			StallCycles: j.spec.Limits.StallCycles,
			Deadline:    j.deadline,
		},
		Retries:      s.cfg.Retries,
		RetryBackoff: s.cfg.RetryBackoff,
		RetrySeed:    s.cfg.RetrySeed,
	}
	out, stats, errs := runner.RunCheckedStats(s.workCtx, opts, []runner.Task{w.task})
	s.stats.retries.Add(stats[0].Retries)
	if len(errs) > 0 {
		e := errs[0]
		transient := runner.Transient(e.Err)
		s.breaker.Failure(j.key, !transient)
		s.log.Warn("job failed", "key", short(j.key), "err", e.Error(), "transient", transient)
		s.finish(j, nil, &jobError{Msg: e.Error(), Transient: transient})
		return
	}
	jr, err := resultOf(j.spec, w, out[0])
	if err != nil {
		s.breaker.Failure(j.key, true)
		s.finish(j, nil, &jobError{Msg: err.Error()})
		return
	}
	raw, err := json.Marshal(jr)
	if err != nil {
		s.breaker.Failure(j.key, true)
		s.finish(j, nil, &jobError{Msg: fmt.Sprintf("marshaling result: %v", err)})
		return
	}
	s.cache.Put(j.key, raw)
	if cerr := s.cache.Err(); cerr != nil {
		// Durability degraded, availability intact: the result is in
		// memory and still served; only the journal is wounded.
		s.log.Error("cache journal write failed; results no longer durable", "err", cerr.Error())
	}
	s.breaker.Success(j.key)
	s.finish(j, raw, nil)
}

// finish publishes a job's outcome and retires it from the active set
// into the bounded recent set.
func (s *Server) finish(j *job, result json.RawMessage, jerr *jobError) {
	j.result, j.jerr = result, jerr
	close(j.done)
	if jerr == nil {
		s.stats.completed.Add(1)
	} else {
		s.stats.failed.Add(1)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.active, j.key)
	if _, dup := s.recent[j.key]; !dup {
		s.recent[j.key] = j
		s.recentFIF = append(s.recentFIF, j.key)
		for len(s.recentFIF) > maxRecent {
			delete(s.recent, s.recentFIF[0])
			s.recentFIF = s.recentFIF[1:]
		}
	} else {
		s.recent[j.key] = j // refresh: newest outcome wins
	}
}

// Handler returns the daemon's routes behind a recovering middleware:
// a panicking handler (injected via serve.accept:panic, or a genuine
// bug) costs that request a 500, never the process.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{key}", s.handleGet)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	mux.HandleFunc("GET /v1/sweeps/{key}", s.handleSweepGet)
	mux.HandleFunc("POST /v1/points", s.handlePointSubmit)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.stats.panics.Add(1)
				s.log.Error("handler panic recovered", "url", r.URL.Path, "panic", fmt.Sprint(rec))
				// Best effort: if the handler already wrote, this fails
				// silently, which is all a half-written response allows.
				s.writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", rec), 0)
			}
		}()
		mux.ServeHTTP(w, r)
	})
}

// handleSubmit is the admission path: fault hook, drain gate, rate
// limit, spec canonicalization, cache, breaker, queue — each layer
// refusing as early and as cheaply as it can.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.stats.submitted.Add(1)
	if !s.gate(w) {
		return
	}

	var spec JobSpec
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&spec); err != nil {
		s.stats.badSpec.Add(1)
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding job spec: %v", err), 0)
		return
	}
	c, err := Canonicalize(spec)
	if err != nil {
		s.stats.badSpec.Add(1)
		s.writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	key := Key(c)
	timeout := s.cfg.DefaultTimeout
	if c.TimeoutMS > 0 {
		timeout = time.Duration(c.TimeoutMS) * time.Millisecond
	}
	s.admit(w, r, &job{id: key, key: key, spec: c}, timeout)
}

// gate is the front half of admission — the serve.accept fault hook,
// the drain check, and the token bucket — shared by every job class.
// It reports whether the request may proceed; refusals are already
// written.
func (s *Server) gate(w http.ResponseWriter) bool {
	// Deterministic chaos first, so injected faults exercise the full
	// response path exactly as a real defect here would.
	if kind, at, transient, armed := faultinject.Active().SiteFault("serve.accept"); armed {
		s.stats.injected.Add(1)
		switch kind {
		case faultinject.KindPanic:
			panic(&faultinject.Error{Site: "serve.accept"})
		case faultinject.KindStall:
			time.Sleep(time.Duration(at) * time.Millisecond)
		default: // KindError
			err := &faultinject.Error{Site: "serve.accept", Transient: transient}
			s.writeError(w, http.StatusInternalServerError, err.Error(), 0)
			return false
		}
	}

	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		s.stats.shedDrain.Add(1)
		s.writeError(w, http.StatusServiceUnavailable, "draining", time.Second)
		return false
	}
	if ok, retry := s.bucket.take(); !ok {
		s.stats.shedRate.Add(1)
		s.writeError(w, http.StatusTooManyRequests, "rate limit exceeded", retry)
		return false
	}
	return true
}

// admit is the back half of admission, shared by every job class:
// cache, breaker, drain re-check, queue, and the optional ?wait=1
// block. proto carries the job's identity and payload; admit caps the
// timeout and stamps the deadline.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, proto *job, timeout time.Duration) {
	if raw, ok := s.cache.Get(proto.key); ok {
		s.stats.cacheHits.Add(1)
		s.writeJob(w, http.StatusOK, jobResponse{ID: proto.id, Status: "done", Cached: true, Result: raw})
		return
	}
	if ok, retry := s.breaker.Allow(proto.key); !ok {
		s.stats.shedBreak.Add(1)
		s.writeError(w, http.StatusServiceUnavailable,
			"job quarantined after repeated permanent failures", retry)
		return
	}

	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		// A half-open probe slot claimed above must not die with this
		// refusal: no job will run, so give the slot back.
		s.breaker.Release(proto.key)
		s.stats.shedDrain.Add(1)
		s.writeError(w, http.StatusServiceUnavailable, "draining", time.Second)
		return
	}
	j, exists := s.active[proto.key]
	if exists {
		s.mu.Unlock()
		s.stats.deduped.Add(1)
	} else {
		j = proto
		j.deadline = s.cfg.now().Add(timeout)
		j.done = make(chan struct{})
		select {
		case s.queue <- j:
			s.active[j.key] = j
			s.mu.Unlock()
			s.stats.admitted.Add(1)
		default:
			s.mu.Unlock()
			s.breaker.Release(j.key)
			s.stats.shedQueue.Add(1)
			s.writeError(w, http.StatusTooManyRequests, "job queue full", time.Second)
			return
		}
	}

	if wait, _ := strconv.ParseBool(r.URL.Query().Get("wait")); wait {
		select {
		case <-j.done:
			s.writeFinished(w, j, false)
		case <-r.Context().Done():
			// The client hung up; the job keeps running — its result
			// lands in the cache for the retry this client will make.
		}
		return
	}
	s.writeJob(w, http.StatusAccepted, jobResponse{ID: j.id, Status: j.status()})
}

// handleGet serves job status and results by key: active jobs from
// the scheduler, completed ones from the cache (which survives
// restarts), failures from the bounded recent set.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	s.serveByKey(w, key, key)
}

// serveByKey answers a status query for any job class: id is the
// public identifier echoed back, key the internal cache/dedupe key.
func (s *Server) serveByKey(w http.ResponseWriter, id, key string) {
	s.mu.Lock()
	j, ok := s.active[key]
	if !ok {
		j, ok = s.recent[key]
	}
	s.mu.Unlock()
	if raw, hit := s.cache.Get(key); hit {
		s.stats.cacheHits.Add(1)
		s.writeJob(w, http.StatusOK, jobResponse{ID: id, Status: "done", Cached: true, Result: raw})
		return
	}
	if !ok {
		s.writeError(w, http.StatusNotFound, "unknown job", 0)
		return
	}
	select {
	case <-j.done:
		s.writeFinished(w, j, false)
	default:
		s.writeJob(w, http.StatusOK, jobResponse{ID: j.id, Status: j.status()})
	}
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	io.WriteString(w, "ready\n")
}

// Stats is the /v1/stats document.
type Stats struct {
	Submitted   int64 `json:"submitted"`
	Sweeps      int64 `json:"sweeps_submitted"`
	Points      int64 `json:"points_submitted"`
	Admitted    int64 `json:"admitted"`
	Deduped     int64 `json:"deduped"`
	CacheHits   int64 `json:"cache_hits"`
	Completed   int64 `json:"completed"`
	Failed      int64 `json:"failed"`
	Retries     int64 `json:"retries"`
	ShedRate    int64 `json:"shed_rate"`
	ShedQueue   int64 `json:"shed_queue"`
	ShedDrain   int64 `json:"shed_draining"`
	ShedBreaker int64 `json:"shed_quarantined"`
	BadSpec     int64 `json:"bad_spec"`
	Injected    int64 `json:"injected_faults"`
	Panics      int64 `json:"panics_recovered"`
	WriteFails  int64 `json:"response_write_failures"`
	QueueDepth  int   `json:"queue_depth"`
	Quarantined int   `json:"quarantined_keys"`
	CacheLoaded int   `json:"cache_loaded"`
	CacheSaved  int   `json:"cache_saved"`
}

// Snapshot reads the counters; exported for the load generator's
// final report as well as /v1/stats.
func (s *Server) Snapshot() Stats {
	return Stats{
		Submitted:   s.stats.submitted.Load(),
		Sweeps:      s.stats.sweeps.Load(),
		Points:      s.stats.points.Load(),
		Admitted:    s.stats.admitted.Load(),
		Deduped:     s.stats.deduped.Load(),
		CacheHits:   s.stats.cacheHits.Load(),
		Completed:   s.stats.completed.Load(),
		Failed:      s.stats.failed.Load(),
		Retries:     s.stats.retries.Load(),
		ShedRate:    s.stats.shedRate.Load(),
		ShedQueue:   s.stats.shedQueue.Load(),
		ShedDrain:   s.stats.shedDrain.Load(),
		ShedBreaker: s.stats.shedBreak.Load(),
		BadSpec:     s.stats.badSpec.Load(),
		Injected:    s.stats.injected.Load(),
		Panics:      s.stats.panics.Load(),
		WriteFails:  s.stats.writeFails.Load(),
		QueueDepth:  len(s.queue),
		Quarantined: s.breaker.Quarantined(),
		CacheLoaded: s.cache.Loaded(),
		CacheSaved:  s.cache.Saved(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Snapshot())
}

// Drain is the graceful shutdown: stop admitting (submissions get 503,
// /readyz flips), let queued and running jobs finish, then flush and
// close the journal. If ctx expires first, running jobs are cancelled
// (they fail with skip/cancel errors; nothing corrupts) and the
// journal still flushes whatever completed. Safe to call once.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	close(s.queue) // admission checks draining under the same lock, so no send can race this
	s.mu.Unlock()
	s.log.Info("draining", "queued", len(s.queue))

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		s.log.Warn("drain deadline reached; cancelling in-flight jobs")
		s.workCancel()
		<-done
	}
	s.workCancel()
	err := s.cache.Close()
	if s.sweepJ != nil {
		if jerr := s.sweepJ.Close(); jerr != nil && err == nil {
			err = jerr
		}
	}
	s.log.Info("drained", "completed", s.stats.completed.Load(),
		"failed", s.stats.failed.Load(), "journaled", s.cache.Saved())
	return err
}

// jobResponse is the wire envelope of every job-related reply. Result
// carries the cached bytes verbatim: two servings of the same key are
// byte-identical in this field by construction.
type jobResponse struct {
	ID        string          `json:"id"`
	Status    string          `json:"status"`
	Cached    bool            `json:"cached,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
	Error     string          `json:"error,omitempty"`
	Transient bool            `json:"transient,omitempty"`
}

func (s *Server) writeFinished(w http.ResponseWriter, j *job, cached bool) {
	if j.jerr != nil {
		s.writeJob(w, http.StatusOK, jobResponse{
			ID: j.id, Status: "failed", Error: j.jerr.Msg, Transient: j.jerr.Transient,
		})
		return
	}
	s.writeJob(w, http.StatusOK, jobResponse{ID: j.id, Status: "done", Cached: cached, Result: j.result})
}

func (s *Server) writeJob(w http.ResponseWriter, status int, resp jobResponse) {
	s.writeJSON(w, status, resp)
}

type errorResponse struct {
	Error      string `json:"error"`
	RetryAfter int    `json:"retry_after,omitempty"` // seconds, mirrors the header
}

// writeError sends a structured refusal; retry > 0 adds Retry-After,
// the contract that lets a shed client back off instead of hammering.
func (s *Server) writeError(w http.ResponseWriter, status int, msg string, retry time.Duration) {
	resp := errorResponse{Error: msg}
	if retry > 0 {
		resp.RetryAfter = RetryAfterSeconds(retry)
		w.Header().Set("Retry-After", strconv.Itoa(resp.RetryAfter))
	}
	s.writeJSON(w, status, resp)
}

// writeJSON marshals v and writes it through the serve.respond fault
// site, so the chaos harness can sever response bodies mid-write
// (werr) or truncate them (short) exactly as a dying connection
// would. A failed body write is logged and counted; the job outcome
// itself is unaffected — it is in the cache, and the client's retry
// hits it warm.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, "encoding response", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	out := faultinject.WrapWriter("serve.respond", w)
	if _, err := out.Write(append(b, '\n')); err != nil {
		s.stats.writeFails.Add(1)
		s.log.Warn("response write failed", "err", err.Error())
	}
}

// short abbreviates a content key for log lines.
func short(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}
