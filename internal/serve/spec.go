// Package serve is the simulation-as-a-service layer: a fault-tolerant
// HTTP/JSON job daemon over the simulator suite.
//
// Clients POST jobs — a machine specification, a workload (built-in
// Livermore loops or assembly source), simulation limits, and an
// optional loop-length scale — and poll or block for results. The
// paper's tables are pure functions of exactly these inputs, which
// makes the service an ideal deduplicating compute cache: every job
// spec canonicalizes to a content address (SHA-256), identical cells
// are computed once ever, and a restarted daemon serves warm results
// byte-identically from its journal.
//
// Robustness is layered end to end:
//
//   - admission control: a token-bucket rate limiter and a bounded
//     job queue shed load explicitly (429 + Retry-After) instead of
//     collapsing under it, and every accepted job carries a deadline
//     plumbed into the simulation guard (internal/simerr);
//   - fault containment: jobs run through runner.RunChecked (per-cell
//     recover, transient retry with backoff), and a circuit breaker
//     quarantines a (machine, workload) pair after repeated permanent
//     failures instead of re-burning cycles on it;
//   - durability: the content-addressed result cache appends to a
//     crash-safe JSONL journal (torn-tail tolerant, flock'd, written
//     through the "write.cache" fault-injection site);
//   - graceful lifecycle: /healthz and /readyz, SIGTERM drain (stop
//     admitting, finish in-flight jobs, flush the journal), and
//     serve.accept / serve.respond fault-injection sites so the chaos
//     harness can kill, stall, and corrupt the daemon deterministically.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"mfup/internal/bus"
	"mfup/internal/cli"
	"mfup/internal/core"
	"mfup/internal/loops"
	"mfup/internal/machdef"
)

// JobSpec is the wire form of one simulation job. The JSON field
// order of a submitted document never matters: specs are decoded into
// this struct and canonicalized before anything else looks at them.
type JobSpec struct {
	Machine  MachineSpec  `json:"machine"`
	Workload WorkloadSpec `json:"workload"`
	Limits   LimitsSpec   `json:"limits,omitempty"`

	// Scale rebuilds every selected kernel at this loop length instead
	// of the paper defaults (0 = defaults). Lengths beyond a kernel's
	// memory layout require Extrapolate.
	Scale int `json:"scale,omitempty"`

	// Extrapolate closes each loop's steady-state middle analytically.
	// It is a pure cost knob — the engine's results are bit-identical
	// to full simulation by contract — so it does NOT enter the cache
	// key: a job submitted with it hits the cache entry computed
	// without it, and vice versa.
	Extrapolate bool `json:"extrapolate,omitempty"`

	// TimeoutMS is the job's wall-clock deadline in milliseconds,
	// measured from admission (queue wait counts). 0 means the
	// server's default. Wall-clock limits shape whether a job fails,
	// never the values of a completed result, so the timeout does NOT
	// enter the cache key either.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// MachineSpec names a machine model and its configuration, in the
// same vocabulary as the mfusim flags.
type MachineSpec struct {
	// Kind: simple | serialmem | nonseg | cray | scoreboard |
	// tomasulo | multi | ooo | ruu | vector.
	Kind string `json:"kind"`

	Mem      int    `json:"mem,omitempty"`      // memory access cycles; default 11
	Br       int    `json:"br,omitempty"`       // branch execution cycles; default 5
	Units    int    `json:"units,omitempty"`    // issue units (multi, ooo, ruu); default 1
	Bus      string `json:"bus,omitempty"`      // nbus | 1bus | xbar (multi, ooo, ruu); default nbus
	RUU      int    `json:"ruu,omitempty"`      // RUU entries (ruu); default 50
	Stations int    `json:"stations,omitempty"` // stations per unit (tomasulo); default 4
}

// WorkloadSpec selects the traces the job runs: built-in Livermore
// loops, or one assembly program traced on the architectural emulator.
type WorkloadSpec struct {
	// Loops is a loop spec as the CLIs accept it: "all", "scalar",
	// "vector", or comma-separated kernel numbers. Default "all".
	Loops string `json:"loops,omitempty"`

	// Asm, when non-empty, is CRAY-like assembly source; it is
	// assembled and traced instead of the built-in loops. Mutually
	// exclusive with Loops.
	Asm string `json:"asm,omitempty"`

	// MaxSteps bounds the emulator when tracing Asm (0 = the emulator
	// default). A budget only decides whether tracing fails — an
	// exceeded budget is an error, not a shorter trace — so it does
	// NOT enter the cache key.
	MaxSteps int64 `json:"maxsteps,omitempty"`
}

// LimitsSpec bounds the simulation itself. Both limits change what a
// job observably produces (a blown budget fails the job), so both
// enter the cache key.
type LimitsSpec struct {
	MaxCycles   int64 `json:"maxcycles,omitempty"`   // simulated-cycle budget per trace; 0 = unlimited
	StallCycles int64 `json:"stallcycles,omitempty"` // no-forward-progress watchdog; 0 = off
}

// machineKinds enumerates the valid MachineSpec.Kind values and
// whether each takes the multiple-issue parameters.
var machineKinds = map[string]struct{ multi bool }{
	"simple":     {},
	"serialmem":  {},
	"nonseg":     {},
	"cray":       {},
	"scoreboard": {},
	"tomasulo":   {},
	"multi":      {multi: true},
	"ooo":        {multi: true},
	"ruu":        {multi: true},
	"vector":     {},
}

// SpecError is a structurally invalid job spec: the admission path
// maps it to HTTP 400.
type SpecError struct{ Msg string }

func (e *SpecError) Error() string { return "spec: " + e.Msg }

func specErrf(format string, args ...any) error {
	return &SpecError{Msg: fmt.Sprintf(format, args...)}
}

// Canonicalize validates spec and rewrites it into the one normal
// form that two semantically identical submissions share:
//
//   - names are lowercased and defaults are spelled out (mem 11, br 5,
//     loops "all" resolved to explicit kernel numbers, ...);
//   - parameters the chosen machine ignores are zeroed, so "a CRAY
//     with ruu:50" and "a CRAY" are the same spec;
//   - loop selections are resolved, deduplicated, and sorted — the
//     service renders per-loop results in kernel order, so "5,1" and
//     "1,5" are observably identical;
//   - cost and environment knobs that cannot change a completed
//     result (Extrapolate, TimeoutMS, MaxSteps) are preserved for
//     execution but excluded from the cache key.
//
// The canonical form is what Key hashes.
func Canonicalize(spec JobSpec) (JobSpec, error) {
	c := spec

	// Machine.
	c.Machine.Kind = strings.ToLower(strings.TrimSpace(c.Machine.Kind))
	kindInfo, ok := machineKinds[c.Machine.Kind]
	if !ok {
		return c, specErrf("unknown machine kind %q", spec.Machine.Kind)
	}
	if c.Machine.Mem == 0 {
		c.Machine.Mem = 11
	}
	if c.Machine.Br == 0 {
		c.Machine.Br = 5
	}
	if c.Machine.Mem < 1 || c.Machine.Br < 1 {
		return c, specErrf("machine latencies must be positive (mem %d, br %d)", c.Machine.Mem, c.Machine.Br)
	}
	if kindInfo.multi {
		if c.Machine.Units == 0 {
			c.Machine.Units = 1
		}
		if c.Machine.Units < 1 {
			return c, specErrf("units %d: need at least one issue unit", c.Machine.Units)
		}
		if c.Machine.Bus == "" {
			c.Machine.Bus = "nbus"
		}
		kind, err := cli.ParseBusKind(c.Machine.Bus)
		if err != nil {
			return c, &SpecError{Msg: err.Error()}
		}
		c.Machine.Bus = canonicalBusName(kind)
	} else {
		// Parameters this machine ignores must not split the cache.
		c.Machine.Units = 0
		c.Machine.Bus = ""
	}
	if c.Machine.Kind == "ruu" {
		if c.Machine.RUU == 0 {
			c.Machine.RUU = 50
		}
		if c.Machine.RUU < c.Machine.Units {
			return c, specErrf("ruu %d: need at least as many RUU entries as issue units (%d)", c.Machine.RUU, c.Machine.Units)
		}
	} else {
		c.Machine.RUU = 0
	}
	if c.Machine.Kind == "tomasulo" {
		if c.Machine.Stations == 0 {
			c.Machine.Stations = 4
		}
		if c.Machine.Stations < 1 {
			return c, specErrf("stations %d: need at least one reservation station per unit", c.Machine.Stations)
		}
	} else {
		c.Machine.Stations = 0
	}

	// Workload.
	c.Workload.Asm = spec.Workload.Asm
	if c.Workload.Asm != "" {
		if strings.TrimSpace(c.Workload.Loops) != "" {
			return c, specErrf("workload gives both loops and asm; pick one")
		}
		if c.Workload.MaxSteps < 0 {
			return c, specErrf("maxsteps %d is negative (0 = the emulator default)", c.Workload.MaxSteps)
		}
		if c.Machine.Kind == "vector" {
			return c, specErrf("the vector machine runs the built-in vector codings, not assembly sources")
		}
		c.Workload.Loops = ""
	} else {
		if c.Workload.Loops == "" {
			c.Workload.Loops = "all"
		}
		ks, err := cli.SelectLoops(c.Workload.Loops)
		if err != nil {
			return c, &SpecError{Msg: err.Error()}
		}
		if c.Machine.Kind == "vector" {
			// The vector machine runs the vectorized codings; kernels
			// without one drop out of the selection, as in mfusim.
			var vks []*loops.Kernel
			for _, k := range ks {
				if vk, err := loops.VectorKernel(k.Number); err == nil {
					vks = append(vks, vk)
				}
			}
			if len(vks) == 0 {
				return c, specErrf("no vector codings among the selected loops")
			}
			ks = vks
		}
		nums := make([]int, len(ks))
		for i, k := range ks {
			nums[i] = k.Number
		}
		sort.Ints(nums)
		parts := make([]string, len(nums))
		for i, n := range nums {
			parts[i] = strconv.Itoa(n)
		}
		c.Workload.Loops = strings.Join(parts, ",")
		c.Workload.MaxSteps = 0
	}

	// Scale.
	if c.Scale < 0 {
		return c, specErrf("scale %d is negative (0 = paper defaults)", c.Scale)
	}
	if c.Scale > 0 {
		if c.Machine.Kind == "vector" {
			return c, specErrf("scale does not apply to the vector machine: the vector codings are fixed at the paper lengths")
		}
		if c.Workload.Asm != "" {
			return c, specErrf("scale does not apply to assembly workloads")
		}
	}

	// Limits and deadline.
	if c.Limits.MaxCycles < 0 {
		return c, specErrf("maxcycles %d is negative (0 = unlimited)", c.Limits.MaxCycles)
	}
	if c.Limits.StallCycles < 0 {
		return c, specErrf("stallcycles %d is negative (0 = off)", c.Limits.StallCycles)
	}
	if c.TimeoutMS < 0 {
		return c, specErrf("timeout_ms %d is negative (0 = the server default)", c.TimeoutMS)
	}
	return c, nil
}

// canonicalBusName renders a parsed bus kind in the spelling the
// canonical spec uses.
func canonicalBusName(k bus.Kind) string {
	switch k {
	case bus.Bus1:
		return "1bus"
	case bus.XBar:
		return "xbar"
	default:
		return "nbus"
	}
}

// keySpec is the exact observable surface of a job: the fields whose
// values can change a *completed* result. Everything else — the
// extrapolation engine (bit-identical by contract), wall-clock
// timeouts, emulator step budgets (failure-shaping only) — stays out,
// so semantically identical jobs share one cache entry. The struct's
// field order fixes the hash preimage; changing it invalidates every
// cache on disk, so treat it like a file format.
type keySpec struct {
	Kind        string `json:"kind"`
	Mem         int    `json:"mem"`
	Br          int    `json:"br"`
	Units       int    `json:"units"`
	Bus         string `json:"bus"`
	RUU         int    `json:"ruu"`
	Stations    int    `json:"stations"`
	Loops       string `json:"loops"`
	AsmSHA      string `json:"asm,omitempty"` // hash of the exact source text
	Scale       int    `json:"scale"`
	MaxCycles   int64  `json:"maxcycles"`
	StallCycles int64  `json:"stallcycles"`
}

// Key returns the content address of a canonical spec: the SHA-256,
// in hex, of its observable fields. Call Canonicalize first — hashing
// a raw spec would split semantically identical jobs across entries.
func Key(c JobSpec) string {
	ks := keySpec{
		Kind:        c.Machine.Kind,
		Mem:         c.Machine.Mem,
		Br:          c.Machine.Br,
		Units:       c.Machine.Units,
		Bus:         c.Machine.Bus,
		RUU:         c.Machine.RUU,
		Stations:    c.Machine.Stations,
		Loops:       c.Workload.Loops,
		Scale:       c.Scale,
		MaxCycles:   c.Limits.MaxCycles,
		StallCycles: c.Limits.StallCycles,
	}
	if c.Workload.Asm != "" {
		src := sha256.Sum256([]byte(c.Workload.Asm))
		ks.AsmSHA = hex.EncodeToString(src[:])
	}
	b, err := json.Marshal(ks)
	if err != nil {
		// A struct of strings and ints cannot fail to marshal.
		panic(fmt.Sprintf("serve: marshaling key spec: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// machdefSpec translates the service's machine vocabulary into the
// declarative machine-definition layer (internal/machdef), which owns
// validation, canonicalization, and construction. The service spec is
// a strict subset of machdef's — Units is machdef's Width — so the
// translation is a field mapping, and canonicalizing it cannot fail
// on a spec that already passed Canonicalize above.
func (m MachineSpec) machdefSpec() (machdef.Spec, error) {
	s, err := machdef.Canonicalize(machdef.Spec{
		Kind:     m.Kind,
		Mem:      m.Mem,
		Br:       m.Br,
		Width:    m.Units,
		Bus:      m.Bus,
		RUU:      m.RUU,
		Stations: m.Stations,
	})
	if err != nil {
		return s, &SpecError{Msg: err.Error()}
	}
	return s, nil
}

// config assembles the core.Config of a canonical machine spec.
func (m MachineSpec) config() core.Config {
	s, err := m.machdefSpec()
	if err == nil {
		var cfg core.Config
		if cfg, err = s.Config(); err == nil {
			return cfg
		}
	}
	// Unreachable on a canonical spec; keep the old direct mapping as
	// the fallback so a labeling helper can never panic.
	return core.Config{MemLatency: m.Mem, BranchLatency: m.Br}
}

// newMachine constructs the machine of a canonical spec through the
// machdef layer. Construction errors surface as structured errors,
// never panics.
func (m MachineSpec) newMachine() (core.Machine, error) {
	s, err := m.machdefSpec()
	if err != nil {
		return nil, err
	}
	mach, err := s.New()
	if err != nil {
		return nil, &SpecError{Msg: err.Error()}
	}
	return mach, nil
}
