package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBreakerOpensAfterThresholdPermanentFailures(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(3, time.Minute, clk.now)

	for i := 0; i < 2; i++ {
		b.Failure("k", true)
		if ok, _ := b.Allow("k"); !ok {
			t.Fatalf("quarantined after %d failures; threshold is 3", i+1)
		}
	}
	b.Failure("k", true)
	ok, retry := b.Allow("k")
	if ok {
		t.Fatal("third permanent failure did not open the circuit")
	}
	if retry <= 0 || retry > time.Minute {
		t.Errorf("retryAfter = %v, want (0, 1m]", retry)
	}
	if b.Quarantined() != 1 {
		t.Errorf("quarantined() = %d, want 1", b.Quarantined())
	}
	// Other keys are unaffected: quarantine is per (machine, workload).
	if ok, _ := b.Allow("other"); !ok {
		t.Error("unrelated key quarantined")
	}
}

func TestBreakerIgnoresTransientFailures(t *testing.T) {
	b := NewBreaker(2, time.Minute, newFakeClock().now)
	for i := 0; i < 10; i++ {
		b.Failure("k", false)
	}
	if ok, _ := b.Allow("k"); !ok {
		t.Fatal("transient failures opened the circuit; they belong to the retry layer")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(1, time.Minute, clk.now)

	b.Failure("k", true)
	if ok, _ := b.Allow("k"); ok {
		t.Fatal("circuit not open")
	}
	clk.advance(time.Minute + time.Second)
	// Cooldown over: exactly one probe is admitted.
	if ok, _ := b.Allow("k"); !ok {
		t.Fatal("half-open probe refused after cooldown")
	}
	// The probe fails permanently: the circuit re-opens immediately.
	b.Failure("k", true)
	if ok, _ := b.Allow("k"); ok {
		t.Fatal("failed probe did not re-open the circuit")
	}

	// Next probe succeeds: history is forgotten.
	clk.advance(2 * time.Minute)
	if ok, _ := b.Allow("k"); !ok {
		t.Fatal("second probe refused")
	}
	b.Success("k")
	b.Failure("k", true) // threshold 1: one failure re-opens
	if ok, _ := b.Allow("k"); ok {
		t.Fatal("circuit should re-open at threshold after reset")
	}
}

// Exactly one probe per half-open window, under concurrency: when the
// cooldown expires, N goroutines race allow() and precisely one may
// win the probe slot — the rest are refused with a positive
// Retry-After. Admitting the whole herd would re-burn a worker slot
// per caller on a key that is probably still broken. Run with -race.
func TestBreakerHalfOpenSingleProbeUnderConcurrency(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(1, time.Minute, clk.now)
	for round := 0; round < 3; round++ {
		b.Failure("k", true)
		if ok, _ := b.Allow("k"); ok {
			t.Fatalf("round %d: circuit not open", round)
		}
		clk.advance(2 * time.Minute)

		const callers = 64
		var admitted atomic.Int64
		var start, done sync.WaitGroup
		start.Add(1)
		done.Add(callers)
		for i := 0; i < callers; i++ {
			go func() {
				defer done.Done()
				start.Wait()
				ok, retry := b.Allow("k")
				if ok {
					admitted.Add(1)
				} else if retry <= 0 {
					t.Error("refused probe racer got a non-positive Retry-After")
				}
			}()
		}
		start.Done()
		done.Wait()
		if n := admitted.Load(); n != 1 {
			t.Fatalf("round %d: %d probes admitted in one half-open window, want exactly 1", round, n)
		}
		// While the probe is outstanding, later arrivals are still refused.
		if ok, _ := b.Allow("k"); ok {
			t.Fatalf("round %d: second probe admitted before the first resolved", round)
		}
	}
}

// A probe that ends transiently — or an admission path that claimed
// the slot but could not enqueue the job (queue full, drain) — must
// release the slot, or the key would wedge half-open forever.
func TestBreakerProbeSlotReleased(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(1, time.Minute, clk.now)

	b.Failure("k", true)
	clk.advance(2 * time.Minute)
	if ok, _ := b.Allow("k"); !ok {
		t.Fatal("probe refused after cooldown")
	}
	if ok, _ := b.Allow("k"); ok {
		t.Fatal("second probe admitted while the first is outstanding")
	}
	// Transient outcome: slot freed, circuit still at threshold, next
	// caller probes.
	b.Failure("k", false)
	if ok, _ := b.Allow("k"); !ok {
		t.Fatal("transient probe outcome did not release the slot")
	}
	// Explicit release (queue-full path): same effect.
	b.Release("k")
	if ok, _ := b.Allow("k"); !ok {
		t.Fatal("release() did not free the probe slot")
	}
	// And the single-failure re-open still works after all that.
	b.Failure("k", true)
	if ok, _ := b.Allow("k"); ok {
		t.Fatal("permanent probe failure did not re-open the circuit")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(-1, time.Minute, newFakeClock().now)
	for i := 0; i < 5; i++ {
		b.Failure("k", true)
	}
	if ok, _ := b.Allow("k"); !ok {
		t.Fatal("disabled breaker quarantined a key")
	}
	if b.Quarantined() != 0 {
		t.Errorf("disabled breaker reports %d quarantined", b.Quarantined())
	}
}
