package serve

import (
	"testing"
	"time"
)

func TestBreakerOpensAfterThresholdPermanentFailures(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(3, time.Minute, clk.now)

	for i := 0; i < 2; i++ {
		b.failure("k", true)
		if ok, _ := b.allow("k"); !ok {
			t.Fatalf("quarantined after %d failures; threshold is 3", i+1)
		}
	}
	b.failure("k", true)
	ok, retry := b.allow("k")
	if ok {
		t.Fatal("third permanent failure did not open the circuit")
	}
	if retry <= 0 || retry > time.Minute {
		t.Errorf("retryAfter = %v, want (0, 1m]", retry)
	}
	if b.quarantined() != 1 {
		t.Errorf("quarantined() = %d, want 1", b.quarantined())
	}
	// Other keys are unaffected: quarantine is per (machine, workload).
	if ok, _ := b.allow("other"); !ok {
		t.Error("unrelated key quarantined")
	}
}

func TestBreakerIgnoresTransientFailures(t *testing.T) {
	b := newBreaker(2, time.Minute, newFakeClock().now)
	for i := 0; i < 10; i++ {
		b.failure("k", false)
	}
	if ok, _ := b.allow("k"); !ok {
		t.Fatal("transient failures opened the circuit; they belong to the retry layer")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(1, time.Minute, clk.now)

	b.failure("k", true)
	if ok, _ := b.allow("k"); ok {
		t.Fatal("circuit not open")
	}
	clk.advance(time.Minute + time.Second)
	// Cooldown over: exactly one probe is admitted.
	if ok, _ := b.allow("k"); !ok {
		t.Fatal("half-open probe refused after cooldown")
	}
	// The probe fails permanently: the circuit re-opens immediately.
	b.failure("k", true)
	if ok, _ := b.allow("k"); ok {
		t.Fatal("failed probe did not re-open the circuit")
	}

	// Next probe succeeds: history is forgotten.
	clk.advance(2 * time.Minute)
	if ok, _ := b.allow("k"); !ok {
		t.Fatal("second probe refused")
	}
	b.success("k")
	b.failure("k", true) // threshold 1: one failure re-opens
	if ok, _ := b.allow("k"); ok {
		t.Fatal("circuit should re-open at threshold after reset")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(-1, time.Minute, newFakeClock().now)
	for i := 0; i < 5; i++ {
		b.failure("k", true)
	}
	if ok, _ := b.allow("k"); !ok {
		t.Fatal("disabled breaker quarantined a key")
	}
	if b.quarantined() != 0 {
		t.Errorf("disabled breaker reports %d quarantined", b.quarantined())
	}
}
