package serve

import (
	"sync"
	"time"
)

// breaker is a per-key circuit breaker. The key is the job's content
// address, i.e. a (machine configuration, workload) pair: when that
// pair fails *permanently* — a simulation divergence, a model panic,
// a poisoned trace — re-running it reproduces the failure by
// determinism, so after threshold consecutive permanent failures the
// pair is quarantined and admission refuses it outright (HTTP 503
// with Retry-After) instead of burning worker slots re-proving the
// same defect.
//
// Transient failures (deadlines, injected blips) never count: the
// runner's retry/backoff layer owns those.
//
// After cooldown the circuit goes half-open: one probe job is
// admitted. Success closes the circuit and forgets the history; a
// further permanent failure re-opens it for another full cooldown.
type breaker struct {
	threshold int           // consecutive permanent failures to open; <= 0 disables
	cooldown  time.Duration // quarantine length
	now       func() time.Time

	mu      sync.Mutex
	entries map[string]*breakerEntry
}

type breakerEntry struct {
	fails     int       // consecutive permanent failures
	openUntil time.Time // zero: closed (or half-open probe outstanding)
}

// newBreaker builds a breaker; threshold <= 0 disables it. A nil now
// uses the real clock.
func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	if cooldown <= 0 {
		cooldown = 30 * time.Second
	}
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       now,
		entries:   make(map[string]*breakerEntry),
	}
}

// allow reports whether a job with this key may be admitted, and if
// not, how long until the quarantine lifts.
func (b *breaker) allow(key string) (ok bool, retryAfter time.Duration) {
	if b == nil || b.threshold <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[key]
	if e == nil || e.openUntil.IsZero() {
		return true, 0
	}
	if remaining := e.openUntil.Sub(b.now()); remaining > 0 {
		return false, remaining
	}
	// Cooldown over: go half-open. One probe runs; its outcome decides
	// whether the circuit closes or re-opens. fails stays at the
	// threshold so a single further permanent failure re-opens.
	e.openUntil = time.Time{}
	return true, 0
}

// success records a completed job: the key's failure history is
// forgotten and its circuit closes.
func (b *breaker) success(key string) {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.entries, key)
}

// failure records a failed job. Only permanent failures advance the
// circuit toward open; transient ones are the retry layer's business.
func (b *breaker) failure(key string, permanent bool) {
	if b == nil || b.threshold <= 0 || !permanent {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[key]
	if e == nil {
		e = &breakerEntry{}
		b.entries[key] = e
	}
	e.fails++
	if e.fails >= b.threshold {
		e.openUntil = b.now().Add(b.cooldown)
	}
}

// quarantined reports how many keys are currently quarantined.
func (b *breaker) quarantined() int {
	if b == nil || b.threshold <= 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	now := b.now()
	for _, e := range b.entries {
		if !e.openUntil.IsZero() && e.openUntil.After(now) {
			n++
		}
	}
	return n
}
