package serve

import (
	"sync"
	"time"
)

// Breaker is a per-key circuit breaker. The daemon keys it by a job's
// content address, i.e. a (machine configuration, workload) pair:
// when that pair fails *permanently* — a simulation divergence, a
// model panic, a poisoned trace — re-running it reproduces the
// failure by determinism, so after threshold consecutive permanent
// failures the pair is quarantined and admission refuses it outright
// (HTTP 503 with Retry-After) instead of burning worker slots
// re-proving the same defect. The cluster router (internal/cluster)
// reuses the same machine keyed by peer URL: there "permanent" means
// a transport-level dispatch failure (connect refused, dropped
// response, 5xx), and quarantine takes a flaky worker out of the
// rendezvous ranking until its cooldown probe succeeds.
//
// Transient failures (deadlines, injected blips) never count: the
// runner's retry/backoff layer owns those.
//
// After cooldown the circuit goes half-open: exactly ONE probe job is
// admitted per half-open window — concurrent submissions racing the
// transition are refused with Retry-After until the probe's outcome
// is known, never admitted as a thundering herd that would re-burn a
// worker slot per caller on a key that is probably still broken.
// Success closes the circuit and forgets the history; a further
// permanent failure re-opens it for another full cooldown; a
// transient outcome (or an admission path that could not enqueue the
// probe after all) releases the probe slot so the next caller may
// try.
type Breaker struct {
	threshold int           // consecutive permanent failures to open; <= 0 disables
	cooldown  time.Duration // quarantine length
	now       func() time.Time

	mu      sync.Mutex
	entries map[string]*breakerEntry
}

type breakerEntry struct {
	fails     int       // consecutive permanent failures
	openUntil time.Time // zero: closed or half-open
	probing   bool      // half-open with the single probe outstanding
}

// NewBreaker builds a breaker; threshold <= 0 disables it. A nil now
// uses the real clock.
func NewBreaker(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if now == nil {
		now = time.Now
	}
	if cooldown <= 0 {
		cooldown = 30 * time.Second
	}
	return &Breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       now,
		entries:   make(map[string]*breakerEntry),
	}
}

// Allow reports whether a job with this key may be admitted, and if
// not, how long until the quarantine lifts.
func (b *Breaker) Allow(key string) (ok bool, retryAfter time.Duration) {
	if b == nil || b.threshold <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[key]
	if e == nil {
		return true, 0
	}
	if e.openUntil.IsZero() {
		if e.probing {
			// Half-open with the probe in flight: exactly one caller per
			// window got through; everyone else backs off until the
			// probe's outcome closes or re-opens the circuit.
			return false, time.Second
		}
		return true, 0
	}
	if remaining := e.openUntil.Sub(b.now()); remaining > 0 {
		return false, remaining
	}
	// Cooldown over: go half-open. THIS caller is the single probe; its
	// outcome decides whether the circuit closes or re-opens. fails
	// stays at the threshold so a single further permanent failure
	// re-opens.
	e.openUntil = time.Time{}
	e.probing = true
	return true, 0
}

// Release gives back a half-open probe slot without recording an
// outcome: the admission path claimed the probe via Allow but could
// not actually start the job (queue full, drain began). The next
// submission may probe instead.
func (b *Breaker) Release(key string) {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if e := b.entries[key]; e != nil {
		e.probing = false
	}
}

// Success records a completed job: the key's failure history is
// forgotten and its circuit closes.
func (b *Breaker) Success(key string) {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.entries, key)
}

// Failure records a failed job. Only permanent failures advance the
// circuit toward open; transient ones are the retry layer's business —
// but either outcome ends an outstanding half-open probe, so a probe
// that dies transiently (deadline, injected blip) frees the slot for
// the next caller instead of wedging the key half-open forever.
func (b *Breaker) Failure(key string, permanent bool) {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[key]
	if e != nil {
		e.probing = false
	}
	if !permanent {
		return
	}
	if e == nil {
		e = &breakerEntry{}
		b.entries[key] = e
	}
	e.fails++
	if e.fails >= b.threshold {
		e.openUntil = b.now().Add(b.cooldown)
	}
}

// QuarantinedKey reports whether one key is currently quarantined,
// without claiming a half-open probe the way Allow would — the
// read-only form the cluster router's stats endpoint needs.
func (b *Breaker) QuarantinedKey(key string) bool {
	if b == nil || b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[key]
	return e != nil && !e.openUntil.IsZero() && e.openUntil.After(b.now())
}

// Quarantined reports how many keys are currently quarantined.
func (b *Breaker) Quarantined() int {
	if b == nil || b.threshold <= 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	now := b.now()
	for _, e := range b.entries {
		if !e.openUntil.IsZero() && e.openUntil.After(now) {
			n++
		}
	}
	return n
}
