package serve

import (
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"mfup/internal/loops"
)

// tinyProgram is a minimal valid assembly workload shared by the
// package's tests: five instructions, one load, one store.
const tinyProgram = `
    A1 = 64
    S1 = [A1]
    S2 = S1 +F S1
    S2 = S2 +F S1
    [A1 + 1] = S2
`

// mustKey canonicalizes and hashes, failing the test on spec errors.
func mustKey(t *testing.T, spec JobSpec) string {
	t.Helper()
	c, err := Canonicalize(spec)
	if err != nil {
		t.Fatalf("Canonicalize(%+v): %v", spec, err)
	}
	return Key(c)
}

// mustKeyJSON decodes a wire document and hashes it, the exact path a
// submitted job takes.
func mustKeyJSON(t *testing.T, doc string) string {
	t.Helper()
	var spec JobSpec
	if err := json.Unmarshal([]byte(doc), &spec); err != nil {
		t.Fatalf("decode %s: %v", doc, err)
	}
	return mustKey(t, spec)
}

// JSON field order is presentation, not meaning: the same job spelled
// in two orders must land on the same cache entry.
func TestKeyIgnoresFieldOrder(t *testing.T) {
	a := mustKeyJSON(t, `{"machine":{"kind":"cray","mem":11,"br":5},"workload":{"loops":"1,5"}}`)
	b := mustKeyJSON(t, `{"workload":{"loops":"1,5"},"machine":{"br":5,"mem":11,"kind":"cray"}}`)
	if a != b {
		t.Errorf("field order changed the key: %s vs %s", a, b)
	}
}

// Defaults spelled out and defaults omitted are the same job.
func TestKeyDefaultsSpelledVsOmitted(t *testing.T) {
	bare := mustKey(t, JobSpec{Machine: MachineSpec{Kind: "cray"}})
	spelled := mustKey(t, JobSpec{
		Machine:  MachineSpec{Kind: "CRAY", Mem: 11, Br: 5},
		Workload: WorkloadSpec{Loops: "all"},
	})
	if bare != spelled {
		t.Errorf("spelled-out defaults changed the key: %s vs %s", bare, spelled)
	}

	// "all" and the explicit full list, in any order, are the same
	// selection.
	var nums []string
	for _, k := range loops.All() {
		nums = append(nums, strconv.Itoa(k.Number))
	}
	// Reverse so this also exercises ordering, not just spelling.
	for i, j := 0, len(nums)-1; i < j; i, j = i+1, j-1 {
		nums[i], nums[j] = nums[j], nums[i]
	}
	explicit := mustKey(t, JobSpec{
		Machine:  MachineSpec{Kind: "cray"},
		Workload: WorkloadSpec{Loops: strings.Join(nums, ",")},
	})
	if bare != explicit {
		t.Errorf(`"all" and the explicit reversed list diverged: %s vs %s`, bare, explicit)
	}

	multiBare := mustKey(t, JobSpec{Machine: MachineSpec{Kind: "multi"}})
	multiSpelled := mustKey(t, JobSpec{Machine: MachineSpec{Kind: "multi", Units: 1, Bus: "nbus"}})
	if multiBare != multiSpelled {
		t.Errorf("spelled-out issue defaults changed the key: %s vs %s", multiBare, multiSpelled)
	}
}

// Loop list order is irrelevant: results render in kernel order
// either way, so "5,1" and "1,5" are observably the same job.
func TestKeyIgnoresLoopOrder(t *testing.T) {
	a := mustKey(t, JobSpec{Machine: MachineSpec{Kind: "cray"}, Workload: WorkloadSpec{Loops: "5,1"}})
	b := mustKey(t, JobSpec{Machine: MachineSpec{Kind: "cray"}, Workload: WorkloadSpec{Loops: "1,5"}})
	if a != b {
		t.Errorf("loop order changed the key: %s vs %s", a, b)
	}
	c := mustKey(t, JobSpec{Machine: MachineSpec{Kind: "cray"}, Workload: WorkloadSpec{Loops: "1,5,5"}})
	if a != c {
		t.Errorf("duplicate loop changed the key: %s vs %s", a, c)
	}
}

// Parameters the chosen machine ignores must not split the cache: a
// CRAY is a CRAY no matter what RUU size rides along in the document.
func TestKeyZeroesIrrelevantParameters(t *testing.T) {
	plain := mustKey(t, JobSpec{Machine: MachineSpec{Kind: "cray"}})
	decorated := mustKey(t, JobSpec{Machine: MachineSpec{Kind: "cray", Units: 4, Bus: "xbar", RUU: 50, Stations: 9}})
	if plain != decorated {
		t.Errorf("irrelevant parameters changed the key: %s vs %s", plain, decorated)
	}
}

// Cost and environment knobs — extrapolation, wall-clock timeout,
// emulator step budget — cannot change a completed result, so they
// must not change the key.
func TestKeyExcludesCostKnobs(t *testing.T) {
	base := JobSpec{Machine: MachineSpec{Kind: "cray"}, Workload: WorkloadSpec{Loops: "1"}}
	k := mustKey(t, base)

	withTimeout := base
	withTimeout.TimeoutMS = 30_000
	if got := mustKey(t, withTimeout); got != k {
		t.Errorf("timeout_ms changed the key")
	}

	withExtrap := base
	withExtrap.Extrapolate = true
	if got := mustKey(t, withExtrap); got != k {
		t.Errorf("extrapolate changed the key")
	}

	asmBase := JobSpec{Machine: MachineSpec{Kind: "cray"}, Workload: WorkloadSpec{Asm: tinyProgram}}
	asmSteps := asmBase
	asmSteps.Workload.MaxSteps = 1 << 20
	if mustKey(t, asmBase) != mustKey(t, asmSteps) {
		t.Errorf("maxsteps changed the key")
	}
}

// Every observable field must move the key: two jobs that can produce
// different results must never share a cache entry.
func TestKeyTracksObservableFields(t *testing.T) {
	base := JobSpec{Machine: MachineSpec{Kind: "ruu"}, Workload: WorkloadSpec{Loops: "1"}}
	seen := map[string]string{mustKey(t, base): "base"}
	variants := map[string]JobSpec{
		"mem":         {Machine: MachineSpec{Kind: "ruu", Mem: 5}, Workload: WorkloadSpec{Loops: "1"}},
		"br":          {Machine: MachineSpec{Kind: "ruu", Br: 2}, Workload: WorkloadSpec{Loops: "1"}},
		"units":       {Machine: MachineSpec{Kind: "ruu", Units: 4}, Workload: WorkloadSpec{Loops: "1"}},
		"bus":         {Machine: MachineSpec{Kind: "ruu", Bus: "xbar"}, Workload: WorkloadSpec{Loops: "1"}},
		"ruu":         {Machine: MachineSpec{Kind: "ruu", RUU: 8}, Workload: WorkloadSpec{Loops: "1"}},
		"kind":        {Machine: MachineSpec{Kind: "ooo"}, Workload: WorkloadSpec{Loops: "1"}},
		"loops":       {Machine: MachineSpec{Kind: "ruu"}, Workload: WorkloadSpec{Loops: "2"}},
		"scale":       {Machine: MachineSpec{Kind: "ruu"}, Workload: WorkloadSpec{Loops: "1"}, Scale: 50},
		"maxcycles":   {Machine: MachineSpec{Kind: "ruu"}, Workload: WorkloadSpec{Loops: "1"}, Limits: LimitsSpec{MaxCycles: 9999}},
		"stallcycles": {Machine: MachineSpec{Kind: "ruu"}, Workload: WorkloadSpec{Loops: "1"}, Limits: LimitsSpec{StallCycles: 512}},
	}
	for name, v := range variants {
		k := mustKey(t, v)
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %q collides with %q", name, prev)
		}
		seen[k] = name
	}
}

// Assembly workloads hash the exact source text.
func TestKeyHashesAsmSource(t *testing.T) {
	a := mustKey(t, JobSpec{Machine: MachineSpec{Kind: "cray"}, Workload: WorkloadSpec{Asm: tinyProgram}})
	same := mustKey(t, JobSpec{Machine: MachineSpec{Kind: "cray"}, Workload: WorkloadSpec{Asm: tinyProgram}})
	if a != same {
		t.Errorf("identical source produced different keys")
	}
	other := mustKey(t, JobSpec{Machine: MachineSpec{Kind: "cray"}, Workload: WorkloadSpec{Asm: tinyProgram + "\n"}})
	if a == other {
		t.Errorf("different source text shares a key")
	}
	loop := mustKey(t, JobSpec{Machine: MachineSpec{Kind: "cray"}, Workload: WorkloadSpec{Loops: "1"}})
	if a == loop {
		t.Errorf("asm and loop workloads share a key")
	}
}

// The vector machine resolves selections to its vector codings, so
// "all" and the explicit vectorizable list agree there too.
func TestKeyVectorSelection(t *testing.T) {
	all := mustKey(t, JobSpec{Machine: MachineSpec{Kind: "vector"}})
	var nums []string
	for _, k := range loops.VectorKernels() {
		nums = append(nums, strconv.Itoa(k.Number))
	}
	explicit := mustKey(t, JobSpec{
		Machine:  MachineSpec{Kind: "vector"},
		Workload: WorkloadSpec{Loops: strings.Join(nums, ",")},
	})
	if all != explicit {
		t.Errorf("vector 'all' and explicit codings diverged: %s vs %s", all, explicit)
	}
}

// Structurally invalid specs are refused with *SpecError, one per
// rejection rule.
func TestCanonicalizeRejections(t *testing.T) {
	cases := map[string]JobSpec{
		"unknown kind":      {Machine: MachineSpec{Kind: "dataflow"}},
		"negative mem":      {Machine: MachineSpec{Kind: "cray", Mem: -1}},
		"negative units":    {Machine: MachineSpec{Kind: "multi", Units: -2}},
		"bad bus":           {Machine: MachineSpec{Kind: "multi", Bus: "ring"}},
		"ruu under units":   {Machine: MachineSpec{Kind: "ruu", Units: 8, RUU: 2}},
		"loops and asm":     {Machine: MachineSpec{Kind: "cray"}, Workload: WorkloadSpec{Loops: "1", Asm: tinyProgram}},
		"bad loop spec":     {Machine: MachineSpec{Kind: "cray"}, Workload: WorkloadSpec{Loops: "1,,2"}},
		"unknown loop":      {Machine: MachineSpec{Kind: "cray"}, Workload: WorkloadSpec{Loops: "99"}},
		"negative scale":    {Machine: MachineSpec{Kind: "cray"}, Scale: -5},
		"vector scale":      {Machine: MachineSpec{Kind: "vector"}, Scale: 100},
		"vector asm":        {Machine: MachineSpec{Kind: "vector"}, Workload: WorkloadSpec{Asm: tinyProgram}},
		"asm scale":         {Machine: MachineSpec{Kind: "cray"}, Workload: WorkloadSpec{Asm: tinyProgram}, Scale: 100},
		"negative maxcyc":   {Machine: MachineSpec{Kind: "cray"}, Limits: LimitsSpec{MaxCycles: -1}},
		"negative stall":    {Machine: MachineSpec{Kind: "cray"}, Limits: LimitsSpec{StallCycles: -1}},
		"negative timeout":  {Machine: MachineSpec{Kind: "cray"}, TimeoutMS: -1},
		"negative maxsteps": {Machine: MachineSpec{Kind: "cray"}, Workload: WorkloadSpec{Asm: tinyProgram, MaxSteps: -1}},
	}
	for name, spec := range cases {
		if _, err := Canonicalize(spec); err == nil {
			t.Errorf("%s: accepted", name)
		} else if _, ok := err.(*SpecError); !ok {
			t.Errorf("%s: error %v (%T), want *SpecError", name, err, err)
		}
	}
}
