package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"mfup/internal/dse"
)

const smallSweep = `{
	"base": {"kind": "ooo", "mem": 11, "br": 5},
	"axes": {"width": [1, 2]}
}`

// A sweep submitted with ?wait=1 computes, caches under its content
// key, and replays byte-identically — in its own key namespace, so
// the single-job routes never see it.
func TestSweepSubmitWaitCachesAndReplays(t *testing.T) {
	_, hs := testServer(t, Config{Workers: 2})

	code, _, jr := post(t, hs.URL+"/v1/sweeps?wait=1", smallSweep)
	if code != http.StatusOK || jr.Status != "done" {
		t.Fatalf("sweep submit: %d %+v", code, jr)
	}
	if jr.Cached {
		t.Error("first sweep claims a cache hit")
	}
	var rep dse.Report
	if err := json.Unmarshal(jr.Result, &rep); err != nil {
		t.Fatalf("report %s: %v", jr.Result, err)
	}
	if rep.Deduped != 2 || rep.Simulated != 2 || len(rep.FrontierIdx) == 0 {
		t.Fatalf("report tallies: %+v", rep)
	}

	// Replay: warm, byte-identical.
	code2, _, jr2 := post(t, hs.URL+"/v1/sweeps?wait=1", smallSweep)
	if code2 != http.StatusOK || !jr2.Cached {
		t.Fatalf("second submit not served from cache: %d %+v", code2, jr2)
	}
	if string(jr2.Result) != string(jr.Result) {
		t.Error("cached sweep report is not byte-identical")
	}

	// GET by the sweep's content key.
	resp, err := http.Get(hs.URL + "/v1/sweeps/" + jr.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET sweep: %d", resp.StatusCode)
	}

	// The same key on the single-job route must miss: the namespaces
	// are disjoint by construction.
	resp2, err := http.Get(hs.URL + "/v1/jobs/" + jr.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("sweep key leaked into the job namespace: %d", resp2.StatusCode)
	}
}

// Structurally bad sweep specs are refused at admission with 400 —
// including grids over the expansion cap, which must never reach a
// worker.
func TestSweepBadSpecRejected(t *testing.T) {
	_, hs := testServer(t, Config{Workers: 1})
	for _, doc := range []string{
		`{"base": {"kind": "warp"}, "axes": {}}`,
		`{"base": {"kind": "ooo"}, "axes": {"threads": [1, 2]}}`,
		`{"base": {"kind": "ooo"}, "axes": {"width": {"from": 1, "to": 200}}, "maxpoints": 10}`,
	} {
		code, _, _ := post(t, hs.URL+"/v1/sweeps?wait=1", doc)
		if code != http.StatusBadRequest {
			t.Errorf("%s: got %d, want 400", doc, code)
		}
	}
}

// The shared sweep point journal survives a daemon restart: a second
// daemon serving the same sweep simulates nothing, even with a cold
// result cache.
func TestSweepJournalSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")

	s1, hs1 := testServer(t, Config{Workers: 2, SweepJournalPath: path})
	code, _, jr := post(t, hs1.URL+"/v1/sweeps?wait=1", smallSweep)
	if code != http.StatusOK || jr.Status != "done" {
		t.Fatalf("first daemon: %d %+v", code, jr)
	}
	hs1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	s2, hs2 := testServer(t, Config{Workers: 2, SweepJournalPath: path})
	defer func() { _ = s2 }()
	code2, _, jr2 := post(t, hs2.URL+"/v1/sweeps?wait=1", smallSweep)
	if code2 != http.StatusOK || jr2.Status != "done" {
		t.Fatalf("second daemon: %d %+v", code2, jr2)
	}
	if jr2.Cached {
		t.Fatal("second daemon has a cold result cache; the hit must come from the point journal")
	}
	var rep dse.Report
	if err := json.Unmarshal(jr2.Result, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Simulated != 0 || rep.FromJournal != 2 {
		t.Fatalf("restarted sweep simulated %d, journal-served %d; want 0 and 2", rep.Simulated, rep.FromJournal)
	}
}
