package serve

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"mfup/internal/atomicio"
	"mfup/internal/faultinject"
)

func TestCacheRoundTripBytesVerbatim(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	// Bytes chosen to be formatting-sensitive: a reserialization that
	// reorders keys or reformats floats would not survive this.
	want := []byte(`{"machine":"CRAY-like","harmonic_mean":0.3333333333333333}`)
	c.Put("k1", want)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Loaded() != 1 {
		t.Fatalf("loaded = %d, want 1", c2.Loaded())
	}
	got, ok := c2.Get("k1")
	if !ok || !bytes.Equal(got, want) {
		t.Errorf("Get = %s, %v; want the exact bytes %s", got, ok, want)
	}
	if _, ok := c2.Get("phantom"); ok {
		t.Error("phantom key found")
	}
}

func TestCacheSecondOpenerLockedOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = OpenCache(path)
	var le *atomicio.LockError
	if !errors.As(err, &le) {
		t.Fatalf("second open error = %v (%T), want *atomicio.LockError", err, err)
	}
}

func TestCacheTornTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("k1", []byte(`{"a":1}`))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// A kill -9 mid-append: a partial second record, no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"k2","resu`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c2, err := OpenCache(path)
	if err != nil {
		t.Fatalf("torn tail must be tolerated: %v", err)
	}
	if c2.Loaded() != 1 {
		t.Errorf("loaded = %d, want 1 (torn line dropped)", c2.Loaded())
	}
	// Appending over the truncated tail leaves a fully readable journal.
	c2.Put("k3", []byte(`{"b":2}`))
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	c3, err := OpenCache(path)
	if err != nil {
		t.Fatalf("journal unreadable after append-over-torn-tail: %v", err)
	}
	defer c3.Close()
	if c3.Loaded() != 2 {
		t.Errorf("loaded = %d, want 2", c3.Loaded())
	}
}

func TestCacheRejectsCorruptMiddle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	content := `{"key":"a","result":{"x":1}}` + "\nnot json\n" + `{"key":"b","result":{"x":2}}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCache(path); err == nil {
		t.Fatal("corrupt complete line accepted")
	}
}

func TestCacheInjectedWriteFailureDegradesNotCorrupts(t *testing.T) {
	plan, err := faultinject.ParsePlan("write.cache:werr", 1)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Activate(faultinject.New(plan))
	defer faultinject.Deactivate()

	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("k1", []byte(`{"a":1}`))
	// Availability survives the durability failure: the entry serves
	// from memory even though the journal write failed.
	if _, ok := c.Get("k1"); !ok {
		t.Error("entry lost after journal write failure")
	}
	err = c.Close()
	var fe *faultinject.Error
	if !errors.As(err, &fe) {
		t.Fatalf("Close error = %v, want the injected fault", err)
	}

	// The wounded journal must still be readable — degraded means
	// fewer entries, never corruption.
	faultinject.Deactivate()
	c2, err := OpenCache(path)
	if err != nil {
		t.Fatalf("journal unreadable after injected write failure: %v", err)
	}
	defer c2.Close()
	if c2.Loaded() != 0 {
		t.Errorf("loaded = %d, want 0 (the failed append must not half-land)", c2.Loaded())
	}
}

func TestCacheMemoryOnly(t *testing.T) {
	c, err := OpenCache("")
	if err != nil {
		t.Fatal(err)
	}
	c.Put("k", []byte(`{}`))
	if _, ok := c.Get("k"); !ok {
		t.Error("memory-only cache lost its entry")
	}
	if c.Saved() != 0 {
		t.Errorf("memory-only cache claims %d journaled entries", c.Saved())
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
