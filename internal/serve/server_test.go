package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mfup/internal/faultinject"
)

// testServer spins up a Server behind httptest and tears both down.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, hs
}

// post submits a job document and decodes the envelope.
func post(t *testing.T, url, doc string) (int, http.Header, jobResponse) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var jr jobResponse
	if len(body) > 0 {
		if err := json.Unmarshal(body, &jr); err != nil {
			t.Fatalf("decoding %q: %v", body, err)
		}
	}
	return resp.StatusCode, resp.Header, jr
}

const crayLoop1 = `{"machine":{"kind":"cray"},"workload":{"loops":"1"}}`

func TestSubmitWaitComputesCachesAndReplaysBytes(t *testing.T) {
	s, hs := testServer(t, Config{Workers: 2})

	code, _, jr := post(t, hs.URL+"/v1/jobs?wait=1", crayLoop1)
	if code != http.StatusOK || jr.Status != "done" {
		t.Fatalf("first submit: %d %+v", code, jr)
	}
	if jr.Cached {
		t.Error("first run claims a cache hit")
	}
	var res JobResult
	if err := json.Unmarshal(jr.Result, &res); err != nil {
		t.Fatalf("result %s: %v", jr.Result, err)
	}
	if len(res.Loops) != 1 || !(res.HarmonicMean > 0) {
		t.Fatalf("result %+v", res)
	}

	// Second submission: a warm hit with the very same result bytes.
	code2, _, jr2 := post(t, hs.URL+"/v1/jobs?wait=1", crayLoop1)
	if code2 != http.StatusOK || !jr2.Cached {
		t.Fatalf("second submit not served from cache: %d %+v", code2, jr2)
	}
	if !bytes.Equal(jr.Result, jr2.Result) {
		t.Errorf("warm result differs:\n%s\n%s", jr.Result, jr2.Result)
	}
	// A semantically identical spelling lands on the same entry.
	code3, _, jr3 := post(t, hs.URL+"/v1/jobs?wait=1",
		`{"workload":{"loops":"1"},"machine":{"br":5,"kind":"CRAY","mem":11},"timeout_ms":60000}`)
	if code3 != http.StatusOK || !jr3.Cached || !bytes.Equal(jr.Result, jr3.Result) {
		t.Errorf("respelled spec missed the cache: %d %+v", code3, jr3)
	}
	if got := s.Snapshot().CacheHits; got != 2 {
		t.Errorf("cache hits = %d, want 2", got)
	}
}

func TestAsyncSubmitAndPoll(t *testing.T) {
	_, hs := testServer(t, Config{Workers: 1})
	code, _, jr := post(t, hs.URL+"/v1/jobs", `{"machine":{"kind":"simple"},"workload":{"loops":"2"}}`)
	if code != http.StatusAccepted || jr.ID == "" {
		t.Fatalf("async submit: %d %+v", code, jr)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(hs.URL + "/v1/jobs/" + jr.ID)
		if err != nil {
			t.Fatal(err)
		}
		var got jobResponse
		err = json.NewDecoder(resp.Body).Decode(&got)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if got.Status == "done" {
			if len(got.Result) == 0 {
				t.Fatalf("done with no result: %+v", got)
			}
			break
		}
		if got.Status == "failed" {
			t.Fatalf("job failed: %s", got.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %q after 10s", got.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRestartServesWarmResultsByteIdentically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")

	s1, err := New(Config{Workers: 1, CachePath: path})
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(s1.Handler())
	code, _, jr := post(t, hs1.URL+"/v1/jobs?wait=1", crayLoop1)
	hs1.Close()
	if code != http.StatusOK || jr.Status != "done" {
		t.Fatalf("cold run: %d %+v", code, jr)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// A new daemon over the same journal serves the result without
	// computing, byte-identically.
	s2, hs2 := testServer(t, Config{Workers: 1, CachePath: path})
	resp, err := http.Get(hs2.URL + "/v1/jobs/" + jr.ID)
	if err != nil {
		t.Fatal(err)
	}
	var warm jobResponse
	if err := json.NewDecoder(resp.Body).Decode(&warm); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if warm.Status != "done" || !warm.Cached {
		t.Fatalf("warm GET: %+v", warm)
	}
	if !bytes.Equal(jr.Result, warm.Result) {
		t.Errorf("restarted daemon served different bytes:\n%s\n%s", jr.Result, warm.Result)
	}
	if s2.Snapshot().Admitted != 0 {
		t.Errorf("warm serving admitted %d jobs", s2.Snapshot().Admitted)
	}
}

func TestBadSpecRejected(t *testing.T) {
	s, hs := testServer(t, Config{Workers: 1})
	for _, doc := range []string{
		`not json`,
		`{"machine":{"kind":"dataflow"}}`,
		`{"machine":{"kind":"cray"},"workload":{"loops":"99"}}`,
	} {
		if code, _, _ := post(t, hs.URL+"/v1/jobs", doc); code != http.StatusBadRequest {
			t.Errorf("%q: status %d, want 400", doc, code)
		}
	}
	if got := s.Snapshot().BadSpec; got != 3 {
		t.Errorf("bad_spec = %d, want 3", got)
	}
}

func TestUnknownJob404(t *testing.T) {
	_, hs := testServer(t, Config{Workers: 1})
	resp, err := http.Get(hs.URL + "/v1/jobs/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
}

// setRunJob swaps the server's job executor under its lock, the same
// lock workers read it through.
func setRunJob(s *Server, fn func(*job)) {
	s.mu.Lock()
	s.runJob = fn
	s.mu.Unlock()
}

// blockingServer stubs job execution so scheduling tests control
// exactly when work finishes.
func blockingServer(t *testing.T, cfg Config) (*Server, *httptest.Server, chan struct{}) {
	t.Helper()
	release := make(chan struct{})
	s, hs := testServer(t, cfg)
	setRunJob(s, func(j *job) {
		<-release
		s.finish(j, json.RawMessage(`{"stub":true}`), nil)
	})
	t.Cleanup(func() {
		select {
		case <-release:
		default:
			close(release)
		}
	})
	return s, hs, release
}

func TestQueueFullSheds429WithRetryAfter(t *testing.T) {
	s, hs, release := blockingServer(t, Config{Workers: 1, QueueDepth: 1})

	// Job A occupies the worker, B the queue; C must be shed.
	docs := []string{
		`{"machine":{"kind":"cray"},"workload":{"loops":"1"}}`,
		`{"machine":{"kind":"cray"},"workload":{"loops":"2"}}`,
		`{"machine":{"kind":"cray"},"workload":{"loops":"3"}}`,
	}
	if code, _, _ := post(t, hs.URL+"/v1/jobs", docs[0]); code != http.StatusAccepted {
		t.Fatalf("job A: %d", code)
	}
	// Wait until A is actually claimed so B lands in the queue.
	waitFor(t, func() bool { return len(s.queue) == 0 })
	if code, _, _ := post(t, hs.URL+"/v1/jobs", docs[1]); code != http.StatusAccepted {
		t.Fatalf("job B: %d", code)
	}
	code, hdr, _ := post(t, hs.URL+"/v1/jobs", docs[2])
	if code != http.StatusTooManyRequests {
		t.Fatalf("job C: %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if got := s.Snapshot().ShedQueue; got != 1 {
		t.Errorf("shed_queue = %d, want 1", got)
	}
	close(release)
}

func TestRateLimitSheds429(t *testing.T) {
	clk := newFakeClock()
	s, hs := testServer(t, Config{Workers: 1, Rate: 1, Burst: 1, now: clk.now})

	if code, _, _ := post(t, hs.URL+"/v1/jobs?wait=1", crayLoop1); code != http.StatusOK {
		t.Fatal("first job refused within burst")
	}
	code, hdr, _ := post(t, hs.URL+"/v1/jobs", crayLoop1)
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	clk.advance(2 * time.Second)
	if code, _, _ := post(t, hs.URL+"/v1/jobs?wait=1", crayLoop1); code != http.StatusOK {
		t.Error("replenished token refused (and the cache should make it instant)")
	}
	if s.Snapshot().ShedRate != 1 {
		t.Errorf("shed_rate = %d, want 1", s.Snapshot().ShedRate)
	}
}

func TestDedupSharesInFlightJob(t *testing.T) {
	s, hs, release := blockingServer(t, Config{Workers: 1, QueueDepth: 4})
	if code, _, _ := post(t, hs.URL+"/v1/jobs", crayLoop1); code != http.StatusAccepted {
		t.Fatal("first submit refused")
	}
	if code, _, _ := post(t, hs.URL+"/v1/jobs", crayLoop1); code != http.StatusAccepted {
		t.Fatal("duplicate submit refused")
	}
	snap := s.Snapshot()
	if snap.Admitted != 1 || snap.Deduped != 1 {
		t.Errorf("admitted %d deduped %d, want 1 and 1", snap.Admitted, snap.Deduped)
	}
	close(release)
}

func TestDrainRefusesNewWorkAndFlips(t *testing.T) {
	s, hs := testServer(t, Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz after drain: %d, want 503", resp.StatusCode)
	}
	code, hdr, _ := post(t, hs.URL+"/v1/jobs", crayLoop1)
	if code != http.StatusServiceUnavailable {
		t.Errorf("submit after drain: %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("drain refusal without Retry-After")
	}
	// Health stays up: draining is not dead.
	resp, err = http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz after drain: %d, want 200", resp.StatusCode)
	}
	// Drain is idempotent.
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestDrainFinishesQueuedJobs(t *testing.T) {
	s, hs := testServer(t, Config{Workers: 1, CachePath: filepath.Join(t.TempDir(), "c.jsonl")})
	code, _, jr := post(t, hs.URL+"/v1/jobs", crayLoop1)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The queued job completed and was journaled before exit.
	if _, ok := s.cache.Get(jr.ID); !ok {
		t.Error("queued job not completed by drain")
	}
	if s.cache.Saved() != 1 {
		t.Errorf("journaled %d results, want 1", s.cache.Saved())
	}
}

func TestBreakerQuarantinesPermanentFailures(t *testing.T) {
	s, hs := testServer(t, Config{Workers: 1, BreakerThreshold: 2, BreakerCooldown: time.Hour})
	// Canonicalization accepts any assembly text; the build step then
	// fails deterministically — breaker material.
	doc := `{"machine":{"kind":"cray"},"workload":{"asm":"J nowhere"}}`
	for i := 0; i < 2; i++ {
		code, _, jr := post(t, hs.URL+"/v1/jobs?wait=1", doc)
		if code != http.StatusOK || jr.Status != "failed" {
			t.Fatalf("attempt %d: %d %+v", i, code, jr)
		}
		if jr.Transient {
			t.Fatalf("assembly failure reported transient: %+v", jr)
		}
	}
	code, hdr, jr := post(t, hs.URL+"/v1/jobs", doc)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("quarantine: %d %+v, want 503", code, jr)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("quarantine refusal without Retry-After")
	}
	if s.Snapshot().Quarantined != 1 {
		t.Errorf("quarantined_keys = %d, want 1", s.Snapshot().Quarantined)
	}
	// Healthy jobs are untouched by someone else's quarantine.
	if code, _, _ := post(t, hs.URL+"/v1/jobs?wait=1", crayLoop1); code != http.StatusOK {
		t.Error("healthy job refused while another key is quarantined")
	}
}

func TestDeadlineExpiresInQueue(t *testing.T) {
	release := make(chan struct{})
	s, hs := testServer(t, Config{Workers: 1, QueueDepth: 4})
	first := true
	setRunJob(s, func(j *job) {
		if first {
			first = false
			<-release
			s.finish(j, json.RawMessage(`{"stub":true}`), nil)
			return
		}
		s.run(j)
	})

	if code, _, _ := post(t, hs.URL+"/v1/jobs", crayLoop1); code != http.StatusAccepted {
		t.Fatal("blocker refused")
	}
	waitFor(t, func() bool { return len(s.queue) == 0 })
	// 20ms budget, spent in the queue behind the blocker.
	doc := `{"machine":{"kind":"cray"},"workload":{"loops":"2"},"timeout_ms":20}`
	code, _, jr := post(t, hs.URL+"/v1/jobs", doc)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	time.Sleep(50 * time.Millisecond)
	close(release)

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(hs.URL + "/v1/jobs/" + jr.ID)
		if err != nil {
			t.Fatal(err)
		}
		var got jobResponse
		err = json.NewDecoder(resp.Body).Decode(&got)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if got.Status == "failed" {
			if !got.Transient || !strings.Contains(got.Error, "deadline") {
				t.Fatalf("failure %+v, want transient deadline", got)
			}
			break
		}
		if got.Status == "done" {
			t.Fatal("expired job completed")
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %q", got.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServeAcceptFaultInjection(t *testing.T) {
	plan, err := faultinject.ParsePlan("serve.accept:err:times=1", 1)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Activate(faultinject.New(plan))
	defer faultinject.Deactivate()

	s, hs := testServer(t, Config{Workers: 1})
	code, _, _ := post(t, hs.URL+"/v1/jobs?wait=1", crayLoop1)
	if code != http.StatusInternalServerError {
		t.Fatalf("injected accept fault: %d, want 500", code)
	}
	// The fault healed (times=1): the daemon keeps serving.
	code, _, jr := post(t, hs.URL+"/v1/jobs?wait=1", crayLoop1)
	if code != http.StatusOK || jr.Status != "done" {
		t.Fatalf("post-fault submit: %d %+v", code, jr)
	}
	if s.Snapshot().Injected != 1 {
		t.Errorf("injected_faults = %d, want 1", s.Snapshot().Injected)
	}
}

func TestServeAcceptPanicContained(t *testing.T) {
	plan, err := faultinject.ParsePlan("serve.accept:panic:times=1", 1)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Activate(faultinject.New(plan))
	defer faultinject.Deactivate()

	s, hs := testServer(t, Config{Workers: 1})
	code, _, _ := post(t, hs.URL+"/v1/jobs?wait=1", crayLoop1)
	if code != http.StatusInternalServerError {
		t.Fatalf("injected panic: %d, want 500", code)
	}
	if s.Snapshot().Panics != 1 {
		t.Errorf("panics_recovered = %d, want 1", s.Snapshot().Panics)
	}
	code, _, jr := post(t, hs.URL+"/v1/jobs?wait=1", crayLoop1)
	if code != http.StatusOK || jr.Status != "done" {
		t.Fatalf("daemon wounded by contained panic: %d %+v", code, jr)
	}
}

func TestServeRespondFaultSeversBodyNotDaemon(t *testing.T) {
	plan, err := faultinject.ParsePlan("serve.respond:werr:at=1:times=1", 1)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Activate(faultinject.New(plan))
	defer faultinject.Deactivate()

	s, hs := testServer(t, Config{Workers: 1})
	resp, err := http.Post(hs.URL+"/v1/jobs?wait=1", "application/json", strings.NewReader(crayLoop1))
	if err == nil {
		// The status line may have gone out before the body died; the
		// body must be empty or truncated, never a complete document.
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var jr jobResponse
		if json.Unmarshal(body, &jr) == nil && jr.Status == "done" {
			t.Fatalf("severed response still delivered a full document: %s", body)
		}
	}
	waitFor(t, func() bool { return s.Snapshot().WriteFails == 1 })

	// The result was computed and cached despite the severed response:
	// the client's retry gets it warm and whole.
	code, _, jr := post(t, hs.URL+"/v1/jobs?wait=1", crayLoop1)
	if code != http.StatusOK || jr.Status != "done" || !jr.Cached {
		t.Fatalf("retry after severed response: %d %+v", code, jr)
	}
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, hs := testServer(t, Config{Workers: 1})
	post(t, hs.URL+"/v1/jobs?wait=1", crayLoop1)
	resp, err := http.Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Submitted != 1 || st.Completed != 1 {
		t.Errorf("stats %+v, want submitted=1 completed=1", st)
	}
}

// TestConcurrentMixedLoad drives many concurrent clients with a mixed
// healthy/overload workload; under -race this is the data-race net
// over the whole admission/execution/cache path.
func TestConcurrentMixedLoad(t *testing.T) {
	s, hs := testServer(t, Config{Workers: 2, QueueDepth: 4, Rate: 500, Burst: 10})
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			var err error
			for i := 0; i < 10; i++ {
				doc := fmt.Sprintf(`{"machine":{"kind":"cray"},"workload":{"loops":"%d"}}`, 1+(g+i)%3)
				resp, perr := http.Post(hs.URL+"/v1/jobs?wait=1", "application/json", strings.NewReader(doc))
				if perr != nil {
					err = perr
					break
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK, http.StatusAccepted, http.StatusTooManyRequests:
				default:
					err = fmt.Errorf("status %d", resp.StatusCode)
				}
			}
			done <- err
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
	snap := s.Snapshot()
	if snap.Completed == 0 {
		t.Error("no jobs completed under mixed load")
	}
}
