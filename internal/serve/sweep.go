package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"

	"mfup/internal/dse"
)

// The design-space sweep job type: POST /v1/sweeps takes an
// internal/dse sweep specification and runs the whole
// expand-price-prune-simulate pipeline as one admitted job, through
// the same token bucket, bounded queue, circuit breaker, and
// content-addressed result cache as single simulations. The sweep's
// content address is its canonical spec's key; the cached result is
// the full dse.Report JSON, so a repeated submission — or a GET by
// key after a restart — serves the frontier byte-identically without
// re-simulating a single point.
//
// Sweep cache keys carry a namespace prefix so a sweep and a
// single-simulation job can never collide in the cache, the active
// set, or the breaker, even though both address by SHA-256 hex.
const sweepKeyPrefix = "sweep:"

// handleSweepSubmit admits one design-space sweep. Sweeps are the
// heaviest job class the daemon runs, so they get the server's
// maximum deadline rather than the single-job default.
func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	s.stats.submitted.Add(1)
	s.stats.sweeps.Add(1)
	if !s.gate(w) {
		return
	}

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		s.stats.badSpec.Add(1)
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("reading sweep spec: %v", err), 0)
		return
	}
	sw, err := dse.Parse(body)
	if err != nil {
		s.stats.badSpec.Add(1)
		s.writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	// Expansion errors (over the point cap) are deterministic spec
	// defects; surface them at admission, not from a worker.
	if _, _, _, err := sw.Expand(); err != nil {
		s.stats.badSpec.Add(1)
		s.writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	id := sw.Key()
	s.admit(w, r, &job{id: id, key: sweepKeyPrefix + id, sweep: &sw}, s.cfg.MaxTimeout)
}

// handleSweepGet serves sweep status and reports by the sweep's
// content key, the same way /v1/jobs/{key} serves single jobs.
func (s *Server) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	s.serveByKey(w, key, sweepKeyPrefix+key)
}

// runSweep executes one admitted sweep end to end on a worker. The
// sweep borrows the whole worker pool for its points — it occupies
// one queue slot but is itself a batch — and journals every simulated
// point to the shared sweep journal, so even a sweep that dies at its
// deadline leaves its completed points resumable.
func (s *Server) runSweep(j *job) {
	ctx, cancel := context.WithDeadline(s.workCtx, j.deadline)
	defer cancel()
	rep, err := dse.Run(ctx, *j.sweep, dse.Options{
		Parallel: s.cfg.Workers,
		Journal:  s.sweepJ,
	})
	if s.sweepJ != nil {
		if jerr := s.sweepJ.Flush(); jerr != nil {
			s.log.Error("sweep journal write failed; points no longer durable", "err", jerr.Error())
		}
	}
	if err != nil {
		// Canonicalization and workload errors are deterministic:
		// breaker material.
		s.breaker.Failure(j.key, true)
		s.finish(j, nil, &jobError{Msg: err.Error()})
		return
	}
	if ctx.Err() != nil {
		// The deadline cut the sweep short. The report is partial, so
		// it must not be cached as the sweep's result — but the points
		// already simulated are in the journal, so a resubmission picks
		// up where this one stopped.
		s.breaker.Failure(j.key, false)
		s.finish(j, nil, &jobError{
			Msg:       fmt.Sprintf("sweep deadline exceeded after %d of %d points", rep.Simulated+rep.FromJournal, rep.Deduped-rep.Pruned),
			Transient: true,
		})
		return
	}
	if rep.Failed > 0 {
		s.breaker.Failure(j.key, true)
		s.finish(j, nil, &jobError{Msg: fmt.Sprintf("%d sweep points failed", rep.Failed)})
		return
	}
	raw, err := rep.JSON()
	if err != nil {
		s.breaker.Failure(j.key, true)
		s.finish(j, nil, &jobError{Msg: fmt.Sprintf("marshaling sweep report: %v", err)})
		return
	}
	s.cache.Put(j.key, raw)
	if cerr := s.cache.Err(); cerr != nil {
		s.log.Error("cache journal write failed; results no longer durable", "err", cerr.Error())
	}
	s.breaker.Success(j.key)
	s.log.Info("sweep complete", "key", short(j.id), "points", rep.Deduped,
		"pruned", rep.Pruned, "simulated", rep.Simulated, "journal", rep.FromJournal)
	s.finish(j, raw, nil)
}
