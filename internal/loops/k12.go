package loops

import (
	"fmt"

	"mfup/internal/emu"
)

// LFK 12 — first difference (vectorizable):
//
//	DO 12 k = 1,n
//	12 X(k)= Y(k+1) - Y(k)
//
// The shortest loop body in the suite: two loads, one floating
// subtract, one store, plus loop control.
func init() { registerBuilder(12, 100, 1, 4000, buildK12) }

func buildK12(n int) (*Kernel, string, error) {
	const (
		xB = 0x1000
		yB = 0x2000
	)
	g := newLCG(12)
	y := make([]float64, n+1)
	for i := range y {
		y[i] = g.float()
	}

	src := fmt.Sprintf(`
; LFK 12: first difference
    A1 = %d          ; &x[0]
    A2 = %d          ; &y[0]
    A7 = 1
    A0 = %d
loop:
    A0 = A0 - A7     ; decrement early so the branch test overlaps the body
    S1 = [A2 + 1]    ; y[k+1]
    S2 = [A2]        ; y[k]
    S1 = S1 -F S2
    [A1] = S1        ; x[k]
    A1 = A1 + A7
    A2 = A2 + A7
    JAN loop
`, xB, yB, n)

	k := &Kernel{
		Number: 12,
		Name:   "first difference",
		Class:  Vectorizable,
		N:      n,
		init: func(m *emu.Machine) {
			for i, f := range y {
				m.SetFloat(yB+int64(i), f)
			}
		},
		check: func(m *emu.Machine) error {
			x := make([]float64, n)
			for k := 0; k < n; k++ {
				x[k] = y[k+1] - y[k]
			}
			return checkFloats(m, "x", xB, x)
		},
	}
	return k, src, nil
}
