package loops

import (
	"fmt"

	"mfup/internal/asm"
	"mfup/internal/emu"
)

// Vector codings. The paper runs the vectorizable loops as scalar
// code on purpose — its subject is the scalar unit — but classifies
// them as vectorizable because a CRAY would run them in the vector
// unit. These hand-vectorized codings of representative kernels
// (LFK 1, 3, 7, 12) let the vector-extension machine (core.NewVector)
// be compared against the paper's multiple-issue scalar machines on
// the same computations.
//
// Each coding strip-mines the loop into 64-element sections (the
// CRAY-1 vector register length): full strips run at VL=64 and a
// final partial strip at VL=n mod 64. Elementwise kernels (1, 7, 12)
// compute bit-identical results to their scalar references; the
// inner-product kernel 3 accumulates 64 partial sums and reduces them
// serially at the end, so it carries its own reference with that
// association.

// vectorRegistry holds the vectorized kernel variants, keyed by
// kernel number.
var vectorRegistry = map[int]*Kernel{}

func registerVector(k *Kernel, source string) {
	if _, dup := vectorRegistry[k.Number]; dup {
		recordInitErr(fmt.Errorf("loops: duplicate vector kernel %d", k.Number))
		return
	}
	prog, err := asm.Assemble(fmt.Sprintf("lfk%02dv", k.Number), source)
	if err != nil {
		recordInitErr(fmt.Errorf("loops: vector kernel %d: %w", k.Number, err))
		return
	}
	k.prog = prog
	vectorRegistry[k.Number] = k
}

// VectorKernel returns the vectorized coding of kernel n, or an error
// if none exists (only a representative subset is vectorized).
func VectorKernel(n int) (*Kernel, error) {
	k, ok := vectorRegistry[n]
	if !ok {
		if err := InitErr(); err != nil {
			return nil, fmt.Errorf("loops: no vector coding for kernel %d (registration failures: %w)", n, err)
		}
		return nil, fmt.Errorf("loops: no vector coding for kernel %d (the scalar loops 5, 6, 11, 13, 14 have none)", n)
	}
	return k, nil
}

// VectorKernels returns all vectorized kernels in number order.
func VectorKernels() []*Kernel {
	var ks []*Kernel
	for _, n := range []int{1, 2, 3, 4, 7, 8, 9, 10, 12} {
		if k, ok := vectorRegistry[n]; ok {
			ks = append(ks, k)
		}
	}
	return ks
}

// stripLoop wraps a vector body in the standard strip-mining control
// structure. Pointer registers named in bumps advance by 64 per full
// strip; A4 counts remaining elements, A7 holds 64.
func stripLoop(body string, bumps ...string) string {
	s := `
loop:
    A0 = A4 + 0
    JAZ done
    A0 = A4 - 64
    JAM rest
    VL = A7
` + body
	for _, r := range bumps {
		s += fmt.Sprintf("    %s = %s + A7\n", r, r)
	}
	s += `    A4 = A4 - A7
    J loop
rest:
    VL = A4
` + body + `done:
`
	return s
}

// LFK 1, vector coding: x[k] = q + y[k]*(r*z[k+10] + t*z[k+11]).
func init() {
	const (
		n      = 100
		constB = 0x0100
		xB     = 0x1000
		yB     = 0x2000
		zB     = 0x3000
	)
	g := newLCG(1) // identical data to the scalar kernel 1
	q, r, t := g.float(), g.float(), g.float()
	y := make([]float64, n)
	z := make([]float64, n+11)
	for i := range y {
		y[i] = g.float()
	}
	for i := range z {
		z[i] = g.float()
	}

	body := `    A5 = A3 + 10
    V1 = [A5 : 1]
    A5 = A3 + 11
    V2 = [A5 : 1]
    V1 = S2 *F V1
    V2 = S3 *F V2
    V1 = V1 +F V2
    V3 = [A2 : 1]
    V1 = V3 *F V1
    V1 = S1 +F V1
    [A1 : 1] = V1
`
	src := fmt.Sprintf(`
; LFK 1, vectorized
    A6 = %d
    S1 = [A6 + 0]   ; q
    S2 = [A6 + 1]   ; r
    S3 = [A6 + 2]   ; t
    A1 = %d
    A2 = %d
    A3 = %d
    A4 = %d
    A7 = 64
%s`, constB, xB, yB, zB, n, stripLoop(body, "A1", "A2", "A3"))

	registerVector(&Kernel{
		Number: 1,
		Name:   "hydro fragment (vector)",
		Class:  Vectorizable,
		N:      n,
		init: func(m *emu.Machine) {
			m.SetFloat(constB+0, q)
			m.SetFloat(constB+1, r)
			m.SetFloat(constB+2, t)
			for i, v := range y {
				m.SetFloat(yB+int64(i), v)
			}
			for i, v := range z {
				m.SetFloat(zB+int64(i), v)
			}
		},
		check: func(m *emu.Machine) error {
			want := make([]float64, n)
			for k := 0; k < n; k++ {
				want[k] = q + y[k]*(r*z[k+10]+t*z[k+11])
			}
			return checkFloats(m, "x", xB, want)
		},
	}, src)
}

// LFK 3, vector coding: 64 partial sums, serial reduction.
func init() {
	const (
		n     = 100
		qB    = 0x0100
		zB    = 0x1000
		xB    = 0x2000
		zeroB = 0x3000 // 64 words of +0.0 (memory is zeroed)
	)
	g := newLCG(3)
	z := make([]float64, n)
	x := make([]float64, n)
	for i := range z {
		z[i] = g.float()
		x[i] = g.float()
	}

	body := `    V2 = [A1 : 1]
    V3 = [A2 : 1]
    V2 = V2 *F V3
    V1 = V1 +F V2
`
	src := fmt.Sprintf(`
; LFK 3, vectorized with partial sums
    A1 = %d         ; &z
    A2 = %d         ; &x
    A4 = %d
    A7 = 64
    A5 = %d         ; zero block
    VL = A7
    V1 = [A5 : 1]   ; partial sums = 0
%s
    ; "done" falls through to the serial reduction of V1.
    S1 = 0
    A3 = 0
    A6 = 1
    A0 = 64
rloop:
    A0 = A0 - A6
    S2 = V1 [ A3 ]
    S1 = S1 +F S2
    A3 = A3 + A6
    JAN rloop
    A5 = %d
    [A5] = S1
`, zB, xB, n, zeroB, stripLoop(body, "A1", "A2"), qB)

	registerVector(&Kernel{
		Number: 3,
		Name:   "inner product (vector)",
		Class:  Vectorizable,
		N:      n,
		init: func(m *emu.Machine) {
			for i := 0; i < n; i++ {
				m.SetFloat(zB+int64(i), z[i])
				m.SetFloat(xB+int64(i), x[i])
			}
		},
		check: func(m *emu.Machine) error {
			// Partial-sum association: lane i accumulates elements
			// i, i+64, ...; the reduction then sums lanes in order.
			var part [64]float64
			for k := 0; k < n; k++ {
				part[k%64] += z[k] * x[k]
			}
			q := 0.0
			for i := 0; i < 64; i++ {
				q += part[i]
			}
			return checkFloat(m.Float(qB), "q", q)
		},
	}, src)
}

// LFK 7, vector coding: elementwise equation of state.
func init() {
	const (
		n      = 100
		constB = 0x0100
		xB     = 0x1000
		yB     = 0x2000
		zB     = 0x3000
		uB     = 0x4000
	)
	g := newLCG(7)
	r, t := g.float(), g.float()
	y := make([]float64, n)
	z := make([]float64, n)
	u := make([]float64, n+6)
	for i := range u {
		u[i] = g.float()
	}
	for i := range y {
		y[i] = g.float()
		z[i] = g.float()
	}

	// Registers: A1=x, A2=y, A3=z; A4 is the strip counter, so the u
	// pointer lives in A6 (reloaded after the constant block is read).
	bodyU := `    V1 = [A2 : 1]
    V1 = S1 *F V1
    V2 = [A3 : 1]
    V1 = V2 +F V1
    V1 = S1 *F V1
    V2 = [A6 : 1]
    V1 = V2 +F V1
    A5 = A6 + 1
    V2 = [A5 : 1]
    V2 = S1 *F V2
    A5 = A6 + 2
    V3 = [A5 : 1]
    V2 = V3 +F V2
    V2 = S1 *F V2
    A5 = A6 + 3
    V3 = [A5 : 1]
    V2 = V3 +F V2
    A5 = A6 + 4
    V3 = [A5 : 1]
    V3 = S1 *F V3
    A5 = A6 + 5
    V4 = [A5 : 1]
    V3 = V4 +F V3
    V3 = S1 *F V3
    A5 = A6 + 6
    V4 = [A5 : 1]
    V3 = V4 +F V3
    V3 = S2 *F V3
    V2 = V2 +F V3
    V2 = S2 *F V2
    V1 = V1 +F V2
    [A1 : 1] = V1
`
	srcU := fmt.Sprintf(`
; LFK 7, vectorized
    A6 = %d
    S1 = [A6 + 0]   ; r
    S2 = [A6 + 1]   ; t
    A1 = %d
    A2 = %d
    A3 = %d
    A6 = %d         ; &u
    A4 = %d
    A7 = 64
%s`, constB, xB, yB, zB, uB, n, stripLoop(bodyU, "A1", "A2", "A3", "A6"))

	registerVector(&Kernel{
		Number: 7,
		Name:   "equation of state (vector)",
		Class:  Vectorizable,
		N:      n,
		init: func(m *emu.Machine) {
			m.SetFloat(constB+0, r)
			m.SetFloat(constB+1, t)
			for i, f := range u {
				m.SetFloat(uB+int64(i), f)
			}
			for i := 0; i < n; i++ {
				m.SetFloat(yB+int64(i), y[i])
				m.SetFloat(zB+int64(i), z[i])
			}
		},
		check: func(m *emu.Machine) error {
			want := make([]float64, n)
			for k := 0; k < n; k++ {
				term1 := u[k] + r*(z[k]+r*y[k])
				inner1 := u[k+3] + r*(u[k+2]+r*u[k+1])
				inner2 := u[k+6] + r*(u[k+5]+r*u[k+4])
				want[k] = term1 + t*(inner1+t*inner2)
			}
			return checkFloats(m, "x", xB, want)
		},
	}, srcU)
}

// LFK 12, vector coding: first difference.
func init() {
	const (
		n  = 100
		xB = 0x1000
		yB = 0x2000
	)
	g := newLCG(12)
	y := make([]float64, n+1)
	for i := range y {
		y[i] = g.float()
	}

	body := `    A5 = A2 + 1
    V1 = [A5 : 1]
    V2 = [A2 : 1]
    V1 = V1 -F V2
    [A1 : 1] = V1
`
	src := fmt.Sprintf(`
; LFK 12, vectorized
    A1 = %d
    A2 = %d
    A4 = %d
    A7 = 64
%s`, xB, yB, n, stripLoop(body, "A1", "A2"))

	registerVector(&Kernel{
		Number: 12,
		Name:   "first difference (vector)",
		Class:  Vectorizable,
		N:      n,
		init: func(m *emu.Machine) {
			for i, f := range y {
				m.SetFloat(yB+int64(i), f)
			}
		},
		check: func(m *emu.Machine) error {
			x := make([]float64, n)
			for k := 0; k < n; k++ {
				x[k] = y[k+1] - y[k]
			}
			return checkFloats(m, "x", xB, x)
		},
	}, src)
}
