package loops

import (
	"fmt"

	"mfup/internal/emu"
)

// LFK 11 — first sum (scalar):
//
//	X(1)= Y(1)
//	DO 11 k = 2,n
//	11 X(k)= X(k-1) + Y(k)
//
// A running-sum recurrence; the partial sum stays in a register.
func init() { registerBuilder(11, 100, 2, 4000, buildK11) }

func buildK11(n int) (*Kernel, string, error) {
	const (
		xB = 0x1000
		yB = 0x2000
	)
	g := newLCG(11)
	y := make([]float64, n)
	for i := range y {
		y[i] = g.float()
	}

	src := fmt.Sprintf(`
; LFK 11: first sum
    A1 = %d          ; &x[0]
    A2 = %d          ; &y[0]
    A7 = 1
    A0 = %d          ; n-1
    S1 = [A2]        ; y[0]
    [A1] = S1        ; x[0]
    A1 = A1 + A7
    A2 = A2 + A7
loop:
    A0 = A0 - A7     ; decrement early so the branch test overlaps the body
    S2 = [A2]        ; y[k]
    S1 = S1 +F S2    ; running sum
    [A1] = S1        ; x[k]
    A1 = A1 + A7
    A2 = A2 + A7
    JAN loop
`, xB, yB, n-1)

	k := &Kernel{
		Number: 11,
		Name:   "first sum",
		Class:  Scalar,
		N:      n,
		init: func(m *emu.Machine) {
			for i, f := range y {
				m.SetFloat(yB+int64(i), f)
			}
		},
		check: func(m *emu.Machine) error {
			x := make([]float64, n)
			x[0] = y[0]
			for k := 1; k < n; k++ {
				x[k] = x[k-1] + y[k]
			}
			return checkFloats(m, "x", xB, x)
		},
	}
	return k, src, nil
}
