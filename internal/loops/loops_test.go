package loops

import (
	"testing"

	"mfup/internal/isa"
)

// TestAllKernelsValidate is the suite's backbone: every kernel
// executes to completion and its memory/register results match the
// pure-Go reference bit for bit, validating the hand compilation and
// the emulator together.
func TestAllKernelsValidate(t *testing.T) {
	if len(All()) != 14 {
		t.Fatalf("registry has %d kernels, want 14", len(All()))
	}
	for _, k := range All() {
		if _, err := k.Trace(); err != nil {
			t.Errorf("%s: %v", k, err)
		}
	}
}

// TestClassificationMatchesPaper pins the paper's split: scalar loops
// {5, 6, 11, 13, 14}, vectorizable {1, 2, 3, 4, 7, 8, 9, 10, 12}.
func TestClassificationMatchesPaper(t *testing.T) {
	wantScalar := map[int]bool{5: true, 6: true, 11: true, 13: true, 14: true}
	for _, k := range All() {
		gotScalar := k.Class == Scalar
		if gotScalar != wantScalar[k.Number] {
			t.Errorf("LFK %d classified %s", k.Number, k.Class)
		}
	}
	if n := len(ByClass(Scalar)); n != 5 {
		t.Errorf("%d scalar loops, want 5", n)
	}
	if n := len(ByClass(Vectorizable)); n != 9 {
		t.Errorf("%d vectorizable loops, want 9", n)
	}
}

func TestGet(t *testing.T) {
	k, err := Get(7)
	if err != nil || k.Number != 7 {
		t.Errorf("Get(7) = %v, %v", k, err)
	}
	if _, err := Get(15); err == nil {
		t.Error("Get(15) did not fail")
	}
	if _, err := Get(0); err == nil {
		t.Error("Get(0) did not fail")
	}
}

// TestTraceDeterminism: two independent trace generations must be
// identical — all simulation results depend on it.
func TestTraceDeterminism(t *testing.T) {
	for _, k := range All() {
		a := k.MustTrace()
		b := k.MustTrace()
		if len(a.Ops) != len(b.Ops) {
			t.Errorf("%s: lengths differ: %d vs %d", k, len(a.Ops), len(b.Ops))
			continue
		}
		for i := range a.Ops {
			if a.Ops[i] != b.Ops[i] {
				t.Errorf("%s: op %d differs: %v vs %v", k, i, a.Ops[i], b.Ops[i])
				break
			}
		}
	}
}

func TestSharedTraceCaches(t *testing.T) {
	k, _ := Get(3)
	if k.SharedTrace() != k.SharedTrace() {
		t.Error("SharedTrace returned different pointers")
	}
}

// TestInstructionMixesPlausible: the kernels must look like compiled
// Livermore loops — substantial memory traffic, float work in the
// float-heavy kernels, exactly the loop-control branch density their
// structure implies.
func TestInstructionMixesPlausible(t *testing.T) {
	for _, k := range All() {
		mix := k.SharedTrace().ComputeMix()
		memFrac := mix.Fraction(isa.Memory)
		if memFrac < 0.15 || memFrac > 0.65 {
			t.Errorf("%s: memory fraction %.2f outside [0.15, 0.65]", k, memFrac)
		}
		brFrac := mix.Fraction(isa.Branch)
		if brFrac <= 0 || brFrac > 0.20 {
			t.Errorf("%s: branch fraction %.2f outside (0, 0.20]", k, brFrac)
		}
		if mix.Loads == 0 {
			t.Errorf("%s: no loads", k)
		}
	}
	// The float-heavy kernels really are float-heavy.
	for _, n := range []int{1, 7, 8, 9} {
		k, _ := Get(n)
		mix := k.SharedTrace().ComputeMix()
		ffrac := mix.Fraction(isa.FloatAdd) + mix.Fraction(isa.FloatMul)
		if ffrac < 0.3 {
			t.Errorf("%s: float fraction %.2f, want >= 0.3", k, ffrac)
		}
	}
}

// TestBranchBehaviour: every kernel is loop-closing-branch shaped:
// almost all branches taken (backward loop branches), with the last
// dynamic branch of each loop falling through.
func TestBranchBehaviour(t *testing.T) {
	for _, k := range All() {
		mix := k.SharedTrace().ComputeMix()
		if mix.Branches < 2 {
			t.Errorf("%s: only %d branches", k, mix.Branches)
			continue
		}
		takenFrac := float64(mix.Taken) / float64(mix.Branches)
		if takenFrac < 0.7 {
			t.Errorf("%s: taken fraction %.2f, want >= 0.7 for loop branches", k, takenFrac)
		}
	}
}

// TestProgramsAreValid: the assembled kernels pass structural
// validation (branch targets, operand shapes).
func TestProgramsAreValid(t *testing.T) {
	for _, k := range All() {
		if err := k.Program().Validate(); err != nil {
			t.Errorf("%s: %v", k, err)
		}
	}
}

// TestConditionalBranchesDecideOnA0: the base architecture's
// conditional branches test A0 only; the kernels must respect that.
func TestConditionalBranchesDecideOnA0(t *testing.T) {
	for _, k := range All() {
		for i, in := range k.Program().Code {
			if in.Op.IsConditional() {
				var buf []isa.Reg
				reads := in.Reads(buf)
				if len(reads) != 1 || reads[0] != isa.A0 {
					t.Errorf("%s: instruction %d: conditional branch reads %v", k, i, reads)
				}
			}
		}
	}
}

// TestKernelSizes: dynamic instruction counts are in the intended
// simulation regime (hundreds to thousands of instructions).
func TestKernelSizes(t *testing.T) {
	for _, k := range All() {
		n := k.SharedTrace().Len()
		if n < 300 || n > 50_000 {
			t.Errorf("%s: %d dynamic instructions outside [300, 50000]", k, n)
		}
	}
}

// TestStringForms exercises the display helpers.
func TestStringForms(t *testing.T) {
	k, _ := Get(5)
	if got := k.String(); got != "LFK 5 (tri-diagonal elimination)" {
		t.Errorf("String() = %q", got)
	}
	if Scalar.String() != "Scalar" || Vectorizable.String() != "Vectorizable" {
		t.Error("class names wrong")
	}
}

func TestLCGDeterministic(t *testing.T) {
	a, b := newLCG(42), newLCG(42)
	for i := 0; i < 100; i++ {
		if a.float() != b.float() {
			t.Fatal("lcg not deterministic")
		}
	}
	// Values stay inside the documented (0.5, 1.5) band.
	g := newLCG(7)
	for i := 0; i < 1000; i++ {
		v := g.float()
		if v <= 0.5 || v >= 1.5 {
			t.Fatalf("lcg value %v outside (0.5, 1.5)", v)
		}
	}
}

func TestFillFloats(t *testing.T) {
	k, _ := Get(1)
	m := k.NewMachine()
	g := newLCG(99)
	vals := fillFloats(m, g, 0x9000, 8)
	for i, v := range vals {
		if m.Float(0x9000+int64(i)) != v {
			t.Fatalf("fillFloats mismatch at %d", i)
		}
	}
}
