package loops

import (
	"fmt"

	"mfup/internal/emu"
)

// LFK 7 — equation of state fragment (vectorizable):
//
//	DO 7 k = 1,n
//	7  X(k) = U(k) + R*( Z(k) + R*Y(k) )
//	        + T*( U(k+3) + R*( U(k+2) + R*U(k+1) )
//	        + T*( U(k+6) + R*( U(k+5) + R*U(k+4) ) ) )
//
// The longest straight-line body among the vectorizable kernels:
// plenty of instruction-level parallelism within an iteration.
func init() { registerBuilder(7, 100, 1, 4000, buildK07) }

func buildK07(n int) (*Kernel, string, error) {
	const (
		constB = 0x0100 // r, t
		xB     = 0x1000
		yB     = 0x2000
		zB     = 0x3000
		uB     = 0x4000
	)
	g := newLCG(7)
	r, t := g.float(), g.float()
	y := make([]float64, n)
	z := make([]float64, n)
	u := make([]float64, n+6)
	for i := range u {
		u[i] = g.float()
	}
	for i := range y {
		y[i] = g.float()
		z[i] = g.float()
	}

	src := fmt.Sprintf(`
; LFK 7: equation of state fragment
    A6 = %d
    S1 = [A6 + 0]    ; r
    S2 = [A6 + 1]    ; t
    A1 = %d          ; &x[0]
    A2 = %d          ; &y[0]
    A3 = %d          ; &z[0]
    A4 = %d          ; &u[0]
    A7 = 1
    A0 = %d
loop:
    A0 = A0 - A7     ; decrement early so the branch test overlaps the body
    S3 = [A2]        ; y[k]
    S3 = S1 *F S3    ; r*y
    S4 = [A3]        ; z[k]
    S3 = S4 +F S3    ; z + r*y
    S3 = S1 *F S3    ; r*(z + r*y)
    S4 = [A4]        ; u[k]
    S3 = S4 +F S3    ; term1
    S5 = [A4 + 1]    ; u[k+1]
    S5 = S1 *F S5
    S6 = [A4 + 2]    ; u[k+2]
    S5 = S6 +F S5
    S5 = S1 *F S5
    S6 = [A4 + 3]    ; u[k+3]
    S5 = S6 +F S5    ; inner1
    S6 = [A4 + 4]    ; u[k+4]
    S6 = S1 *F S6
    S7 = [A4 + 5]    ; u[k+5]
    S6 = S7 +F S6
    S6 = S1 *F S6
    S7 = [A4 + 6]    ; u[k+6]
    S6 = S7 +F S6    ; inner2
    S6 = S2 *F S6    ; t*inner2
    S5 = S5 +F S6
    S5 = S2 *F S5    ; t*(inner1 + t*inner2)
    S3 = S3 +F S5
    [A1] = S3        ; x[k]
    A1 = A1 + A7
    A2 = A2 + A7
    A3 = A3 + A7
    A4 = A4 + A7
    JAN loop
`, constB, xB, yB, zB, uB, n)

	k := &Kernel{
		Number: 7,
		Name:   "equation of state",
		Class:  Vectorizable,
		N:      n,
		init: func(m *emu.Machine) {
			m.SetFloat(constB+0, r)
			m.SetFloat(constB+1, t)
			for i, f := range u {
				m.SetFloat(uB+int64(i), f)
			}
			for i := 0; i < n; i++ {
				m.SetFloat(yB+int64(i), y[i])
				m.SetFloat(zB+int64(i), z[i])
			}
		},
		check: func(m *emu.Machine) error {
			want := make([]float64, n)
			for k := 0; k < n; k++ {
				term1 := u[k] + r*(z[k]+r*y[k])
				inner1 := u[k+3] + r*(u[k+2]+r*u[k+1])
				inner2 := u[k+6] + r*(u[k+5]+r*u[k+4])
				want[k] = term1 + t*(inner1+t*inner2)
			}
			return checkFloats(m, "x", xB, want)
		},
	}
	return k, src, nil
}
