package loops

import (
	"fmt"

	"mfup/internal/emu"
)

// LFK 3 — inner product (vectorizable):
//
//	Q = 0.0
//	DO 3 k = 1,n
//	3  Q = Q + Z(k)*X(k)
func init() { registerBuilder(3, 100, 1, 4000, buildK03) }

func buildK03(n int) (*Kernel, string, error) {
	const (
		qB = 0x0100
		zB = 0x1000
		xB = 0x2000
	)
	g := newLCG(3)
	z := make([]float64, n)
	x := make([]float64, n)
	for i := range z {
		z[i] = g.float()
		x[i] = g.float()
	}

	src := fmt.Sprintf(`
; LFK 3: inner product
    A1 = %d          ; &z[0]
    A2 = %d          ; &x[0]
    A3 = %d          ; &q
    A7 = 1
    A0 = %d
    S1 = 0           ; q (integer 0 is also +0.0)
loop:
    A0 = A0 - A7     ; decrement early so the branch test overlaps the body
    S2 = [A1]        ; z[k]
    S3 = [A2]        ; x[k]
    S4 = S2 *F S3
    S1 = S1 +F S4
    A1 = A1 + A7
    A2 = A2 + A7
    JAN loop
    [A3] = S1
`, zB, xB, qB, n)

	k := &Kernel{
		Number: 3,
		Name:   "inner product",
		Class:  Vectorizable,
		N:      n,
		init: func(m *emu.Machine) {
			for i := 0; i < n; i++ {
				m.SetFloat(zB+int64(i), z[i])
				m.SetFloat(xB+int64(i), x[i])
			}
		},
		check: func(m *emu.Machine) error {
			q := 0.0
			for k := 0; k < n; k++ {
				q += z[k] * x[k]
			}
			return checkFloat(m.Float(qB), "q", q)
		},
	}
	return k, src, nil
}
