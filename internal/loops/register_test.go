package loops

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestInitErrNilForBuiltins: the shipped kernels must all register
// cleanly.
func TestInitErrNilForBuiltins(t *testing.T) {
	if err := InitErr(); err != nil {
		t.Fatalf("InitErr() = %v, want nil", err)
	}
}

// TestRegisterBuilderCollectsErrors exercises the init-path error
// handling: a failing builder is recorded in InitErr instead of
// panicking, the kernel stays out of the registry, and Get names the
// failure. Registry state is restored afterwards.
func TestRegisterBuilderCollectsErrors(t *testing.T) {
	const n = 99
	saved := initErr
	defer func() {
		initErr = saved
		delete(builders, n)
		delete(registry, n)
	}()

	boom := errors.New("boom")
	registerBuilder(n, 10, 1, 100, func(int) (*Kernel, string, error) {
		return nil, "", boom
	})
	if err := InitErr(); err == nil || !errors.Is(err, boom) {
		t.Fatalf("InitErr() = %v, want wrapped %v", err, boom)
	}
	if _, ok := registry[n]; ok {
		t.Error("failing kernel ended up in the registry")
	}
	if _, err := Get(n); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("Get(%d) = %v, want an error naming the init failure", n, err)
	}

	// A duplicate registration is also recorded, not a panic, and
	// must not clobber the original builder.
	registerBuilder(1, 10, 1, 100, func(int) (*Kernel, string, error) {
		return nil, "", fmt.Errorf("should never run")
	})
	if err := InitErr(); err == nil || !strings.Contains(err.Error(), "duplicate kernel 1") {
		t.Errorf("InitErr() after duplicate = %v, want duplicate-kernel error", err)
	}
	if k, err := Get(1); err != nil || k == nil {
		t.Errorf("Get(1) broken after duplicate registration: %v", err)
	}
}

// TestRegisterVectorCollectsErrors: a vector coding that fails to
// assemble is recorded, and VectorKernel surfaces the failure for
// missing kernels.
func TestRegisterVectorCollectsErrors(t *testing.T) {
	const n = 98
	saved := initErr
	defer func() {
		initErr = saved
		delete(vectorRegistry, n)
	}()

	registerVector(&Kernel{Number: n, Name: "bogus"}, "THIS IS NOT ASSEMBLY\n")
	if err := InitErr(); err == nil {
		t.Fatal("InitErr() = nil after unassemblable vector kernel")
	}
	if _, ok := vectorRegistry[n]; ok {
		t.Error("unassemblable vector kernel ended up in the registry")
	}
	if _, err := VectorKernel(n); err == nil || !strings.Contains(err.Error(), "registration failures") {
		t.Errorf("VectorKernel(%d) = %v, want an error naming the init failure", n, err)
	}
}
