package loops

import (
	"fmt"

	"mfup/internal/emu"
)

// LFK 13 — 2-D particle in cell (scalar):
//
//	DO 13 ip= 1,n
//	  i1= P(1,ip); j1= P(2,ip)                 (truncate to integer)
//	  i1= MOD2N(i1,64); j1= MOD2N(j1,64)
//	  P(3,ip)= P(3,ip) + B(i1,j1)
//	  P(4,ip)= P(4,ip) + C(i1,j1)
//	  P(1,ip)= P(1,ip) + P(3,ip)
//	  P(2,ip)= P(2,ip) + P(4,ip)
//	  i2= MOD2N(P(1,ip),64); j2= MOD2N(P(2,ip),64)
//	  P(1,ip)= P(1,ip) + Y(i2+32)
//	  P(2,ip)= P(2,ip) + Z(j2+32)
//	  i2= i2 + E(i2+32); j2= j2 + F(j2+32)
//	  H(i2,j2)= H(i2,j2) + 1.0
//
// The gather/scatter indirection and the float->int->mask->address
// sequences make this the least pipeline-friendly kernel: the CRAY
// has no integer-logical path in the A registers, so every MOD2N
// round-trips through the scalar unit (FIX, move, mask, move). H is
// treated as a flat array indexed i2 + 64*j2 in both the assembly and
// the reference.
func init() { registerBuilder(13, 100, 1, 1000, buildK13) }

func buildK13(n int) (*Kernel, string, error) {
	const (
		pB    = 0x1000 // 4 words per particle
		bB    = 0x2000 // 64x64
		cB    = 0x4000 // 64x64
		hB    = 0x6000 // flat, see above
		yB    = 0x8000
		zB    = 0x8100
		eB    = 0x8200
		fB    = 0x8300
		oneB  = 0x0100 // the constant 1.0
		hSize = 64*65 + 70
	)
	g := newLCG(13)
	p0 := make([]float64, 4*n)
	for ip := 0; ip < n; ip++ {
		p0[4*ip+0] = 10 + 20*g.float()
		p0[4*ip+1] = 10 + 20*g.float()
		p0[4*ip+2] = g.float()
		p0[4*ip+3] = g.float()
	}
	b := make([]float64, 64*64)
	c := make([]float64, 64*64)
	for i := range b {
		b[i] = g.float()
		c[i] = g.float()
	}
	y := make([]float64, 96)
	z := make([]float64, 96)
	e := make([]float64, 96)
	f := make([]float64, 96)
	for i := range y {
		y[i] = g.float()
		z[i] = g.float()
		e[i] = float64(1 + i%2) // integer-valued field offsets
		f[i] = float64(1 + (i/2)%2)
	}
	h0 := make([]float64, hSize)
	for i := range h0 {
		h0[i] = g.float()
	}

	src := fmt.Sprintf(`
; LFK 13: 2-D particle in cell
    A5 = %d          ; &one
    S4 = [A5]
    T0 = S4          ; 1.0
    S7 = 63          ; MOD2N mask
    A6 = 64          ; grid stride
    A1 = %d          ; particle pointer
    A7 = 1
    A0 = %d
loop:
    A0 = A0 - A7     ; decrement early so the branch test overlaps the body
    S1 = [A1 + 0]    ; p1
    S2 = [A1 + 1]    ; p2
    A2 = FIX S1
    A3 = FIX S2
    S3 = A2
    S3 = S3 & S7
    A2 = S3          ; i1
    S3 = A3
    S3 = S3 & S7
    A3 = S3          ; j1
    A4 = A3 * A6
    A4 = A4 + A2     ; i1 + 64*j1
    S3 = [A4 + %d]   ; b(i1,j1)
    S4 = [A4 + %d]   ; c(i1,j1)
    S5 = [A1 + 2]    ; p3
    S5 = S5 +F S3
    [A1 + 2] = S5
    S6 = [A1 + 3]    ; p4
    S6 = S6 +F S4
    [A1 + 3] = S6
    S1 = S1 +F S5    ; p1 += p3
    S2 = S2 +F S6    ; p2 += p4
    A2 = FIX S1
    A3 = FIX S2
    S3 = A2
    S3 = S3 & S7
    A2 = S3          ; i2
    S3 = A3
    S3 = S3 & S7
    A3 = S3          ; j2
    S3 = [A2 + %d]   ; y[i2+32]
    S1 = S1 +F S3
    [A1 + 0] = S1
    S3 = [A3 + %d]   ; z[j2+32]
    S2 = S2 +F S3
    [A1 + 1] = S2
    S3 = [A2 + %d]   ; e[i2+32]
    A4 = FIX S3
    A2 = A2 + A4     ; i2 += e
    S3 = [A3 + %d]   ; f[j2+32]
    A4 = FIX S3
    A3 = A3 + A4     ; j2 += f
    A4 = A3 * A6
    A4 = A4 + A2     ; i2 + 64*j2
    S3 = [A4 + %d]   ; h(i2,j2)
    S4 = T0
    S3 = S3 +F S4
    [A4 + %d] = S3
    A1 = A1 + 4
    JAN loop
`, oneB, pB, n, bB, cB, yB+32, zB+32, eB+32, fB+32, hB, hB)

	k := &Kernel{
		Number: 13,
		Name:   "2-D particle in cell",
		Class:  Scalar,
		N:      n,
		init: func(m *emu.Machine) {
			m.SetFloat(oneB, 1.0)
			for i, v := range p0 {
				m.SetFloat(pB+int64(i), v)
			}
			for i := range b {
				m.SetFloat(bB+int64(i), b[i])
				m.SetFloat(cB+int64(i), c[i])
			}
			for i := range y {
				m.SetFloat(yB+int64(i), y[i])
				m.SetFloat(zB+int64(i), z[i])
				m.SetFloat(eB+int64(i), e[i])
				m.SetFloat(fB+int64(i), f[i])
			}
			for i, v := range h0 {
				m.SetFloat(hB+int64(i), v)
			}
		},
		check: func(m *emu.Machine) error {
			p := append([]float64(nil), p0...)
			h := append([]float64(nil), h0...)
			for ip := 0; ip < n; ip++ {
				r := p[4*ip : 4*ip+4]
				i1 := int(r[0]) & 63
				j1 := int(r[1]) & 63
				r[2] += b[i1+64*j1]
				r[3] += c[i1+64*j1]
				r[0] += r[2]
				r[1] += r[3]
				i2 := int(r[0]) & 63
				j2 := int(r[1]) & 63
				r[0] += y[i2+32]
				r[1] += z[j2+32]
				i2 += int(e[i2+32])
				j2 += int(f[j2+32])
				h[i2+64*j2] += 1.0
			}
			if err := checkFloats(m, "p", pB, p); err != nil {
				return err
			}
			return checkFloats(m, "h", hB, h)
		},
	}
	return k, src, nil
}
