package loops

import (
	"fmt"

	"mfup/internal/emu"
)

// LFK 4 — banded linear equations (vectorizable):
//
//	m= (1001-7)/2
//	DO 444 k= 7,1001,m
//	   lw= k-6
//	   temp= X(k-1)
//	   DO 4 j= 5,n,5
//	      temp= temp - X(lw)*Y(j)
//	4     lw= lw+1
//	444 X(k-1)= Y(5)*temp
func init() { registerBuilder(4, 100, 5, 4000, buildK04) }

func buildK04(n int) (*Kernel, string, error) {
	if n%5 != 0 {
		return nil, "", fmt.Errorf("kernel 4 requires a multiple-of-five length, got %d", n)
	}
	const (
		m4 = (1001 - 7) / 2 // outer stride, 497
		xB = 0x1000
		yB = 0x2000
	)
	inner := n / 5        // inner trip count
	xSize := 1014 + inner // covers x[k-2] writes and the x[lw] band reads
	g := newLCG(4)
	x0 := make([]float64, xSize)
	y := make([]float64, n)
	for i := range x0 {
		x0[i] = g.float()
	}
	for i := range y {
		y[i] = g.float()
	}

	// Fortran k takes values 7, 504, 1001: three outer iterations.
	src := fmt.Sprintf(`
; LFK 4: banded linear equations
    A1 = 7           ; k
    A4 = 3           ; outer trip count
    A7 = 1
    A6 = %[2]d       ; &y[4]
    S5 = [A6]        ; y(5), invariant
outer:
    A2 = A1 + %[3]d  ; &x[lw] = &x[k-7]
    A3 = %[2]d       ; &y[4]  (j pointer)
    S1 = [A1 + %[4]d] ; temp = x[k-2]
    A0 = %[5]d       ; inner trip count
inner:
    A0 = A0 - A7     ; decrement early so the branch test overlaps the body
    S2 = [A2]        ; x[lw]
    S3 = [A3]        ; y[j]
    S2 = S2 *F S3
    S1 = S1 -F S2
    A2 = A2 + A7
    A3 = A3 + 5
    JAN inner
    S1 = S5 *F S1    ; y(5)*temp
    [A1 + %[4]d] = S1
    A1 = A1 + %[6]d  ; k += m
    A4 = A4 - A7
    A0 = A4 + 0
    JAN outer
`, xB, yB+4, xB-7, xB-2, inner, m4)

	k := &Kernel{
		Number: 4,
		Name:   "banded linear equations",
		Class:  Vectorizable,
		N:      n,
		init: func(m *emu.Machine) {
			for i, f := range x0 {
				m.SetFloat(xB+int64(i), f)
			}
			for i, f := range y {
				m.SetFloat(yB+int64(i), f)
			}
		},
		check: func(m *emu.Machine) error {
			x := append([]float64(nil), x0...)
			for k := 7; k <= 1001; k += m4 {
				lw := k - 7 // 0-based X(lw)
				temp := x[k-2]
				for j := 4; j < n; j += 5 {
					temp -= x[lw] * y[j]
					lw++
				}
				x[k-2] = y[4] * temp
			}
			return checkFloats(m, "x", xB, x)
		},
	}
	return k, src, nil
}
