package loops

import (
	"fmt"
	"strings"

	"mfup/internal/emu"
)

// LFK 10 — difference predictors (vectorizable):
//
//	DO 10 k= 1,n
//	   AR      =      CX(5,k)
//	   BR      = AR - PX(5,k)
//	   PX(5,k) = AR
//	   CR      = BR - PX(6,k)
//	   PX(6,k) = BR
//	   ...                       (cascades through PX(12,k))
//	   PX(14,k)= CR - PX(13,k)
//	   PX(13,k)= CR
//
// A serial difference cascade within each iteration; iterations are
// independent. Layout matches LFK 9: 25 columns per particle.
func init() { registerBuilder(10, 100, 1, 1100, buildK10) }

func buildK10(n int) (*Kernel, string, error) {
	const (
		cols = 25
		pxB  = 0x1000
		cxB  = 0x8000
	)
	g := newLCG(10)
	px0 := make([]float64, cols*n)
	cx := make([]float64, cols*n)
	for i := range px0 {
		px0[i] = g.float()
		cx[i] = g.float()
	}

	// The cascade alternates the "previous difference" between S1 and
	// S2. Stage j (0-based column) computes new = prev - px[j] and
	// stores px[j] = prev.
	var body strings.Builder
	body.WriteString("    S1 = [A2 + 4]    ; ar = cx(5,k)\n")
	prev, next := "S1", "S2"
	for j := 4; j <= 11; j++ {
		fmt.Fprintf(&body, "    S3 = [A1 + %d]\n    %s = %s -F S3\n    [A1 + %d] = %s\n",
			j, next, prev, j, prev)
		prev, next = next, prev
	}
	fmt.Fprintf(&body, "    S3 = [A1 + 12]   ; px(13,k)\n")
	fmt.Fprintf(&body, "    %s = %s -F S3\n", next, prev)
	fmt.Fprintf(&body, "    [A1 + 13] = %s   ; px(14,k)\n", next)
	fmt.Fprintf(&body, "    [A1 + 12] = %s   ; px(13,k)\n", prev)

	src := fmt.Sprintf(`
; LFK 10: difference predictors
    A1 = %d          ; &px[0][0]
    A2 = %d          ; &cx[0][0]
    A7 = 1
    A0 = %d
loop:
    A0 = A0 - A7     ; decrement early so the branch test overlaps the body
%s
    A1 = A1 + 25
    A2 = A2 + 25
    JAN loop
`, pxB, cxB, n, body.String())

	k := &Kernel{
		Number: 10,
		Name:   "difference predictors",
		Class:  Vectorizable,
		N:      n,
		init: func(m *emu.Machine) {
			for i := range px0 {
				m.SetFloat(pxB+int64(i), px0[i])
				m.SetFloat(cxB+int64(i), cx[i])
			}
		},
		check: func(m *emu.Machine) error {
			px := append([]float64(nil), px0...)
			for k := 0; k < n; k++ {
				r := px[k*cols : (k+1)*cols]
				prev := cx[k*cols+4]
				for j := 4; j <= 11; j++ {
					nxt := prev - r[j]
					r[j] = prev
					prev = nxt
				}
				r[13] = prev - r[12]
				r[12] = prev
			}
			return checkFloats(m, "px", pxB, px)
		},
	}
	return k, src, nil
}
