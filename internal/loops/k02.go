package loops

import (
	"fmt"

	"mfup/internal/emu"
)

// LFK 2 — ICCG excerpt, incomplete Cholesky conjugate gradient
// (vectorizable):
//
//	ii= n
//	ipntp= 0
//	222 ipnt= ipntp
//	    ipntp= ipntp+ii
//	    ii= ii/2
//	    i= ipntp+1
//	    DO 2 k= ipnt+2 ,ipntp ,2
//	       i= i+1
//	2      X(i)= X(k) - V(k)*X(k-1) - V(k+1)*X(k+1)
//	    IF( ii.GT.1) GO TO 222
//
// The cascade halves ii each pass, so n is a power of two here.
func init() { registerBuilder(2, 64, 4, 1024, buildK02) }

func buildK02(n int) (*Kernel, string, error) {
	if n&(n-1) != 0 {
		return nil, "", fmt.Errorf("kernel 2 requires a power-of-two length, got %d", n)
	}
	const (
		xB = 0x1000
		vB = 0x2000
	)
	size := 4 * n // generous bound on the index cascade
	g := newLCG(2)
	x0 := make([]float64, size)
	v := make([]float64, size)
	for i := range x0 {
		x0[i] = g.float()
	}
	for i := range v {
		v[i] = g.float()
	}

	src := fmt.Sprintf(`
; LFK 2: ICCG excerpt
    A1 = %[1]d       ; ii = n
    A3 = 0           ; ipntp (0-based index into x)
    A7 = 1
outer:
    A2 = A3 + 0      ; ipnt = ipntp
    A3 = A3 + A1     ; ipntp += ii
    S7 = A1          ; ii /= 2 (shift in the scalar unit)
    S7 = S7 >> 1
    A1 = S7
    A4 = A3 + %[2]d  ; &x[ipntp]  (i pointer, pre-incremented below)
    A5 = A2 + %[3]d  ; &x[ipnt+1] (k pointer)
    A6 = A2 + %[4]d  ; &v[ipnt+1]
    A0 = A1 + 0      ; inner trip count = new ii
inner:
    A0 = A0 - A7     ; decrement early so the branch test overlaps the body
    S1 = [A5]        ; x[k]
    S2 = [A5 - 1]    ; x[k-1]
    S3 = [A5 + 1]    ; x[k+1]
    S4 = [A6]        ; v[k]
    S5 = [A6 + 1]    ; v[k+1]
    S2 = S4 *F S2
    S3 = S5 *F S3
    S1 = S1 -F S2
    S1 = S1 -F S3
    A4 = A4 + A7     ; i++
    [A4] = S1        ; x[i]
    A5 = A5 + 2
    A6 = A6 + 2
    JAN inner
    A0 = A1 - A7     ; loop while ii > 1
    JAN outer
`, n, xB, xB+1, vB+1)

	k := &Kernel{
		Number: 2,
		Name:   "ICCG excerpt",
		Class:  Vectorizable,
		N:      n,
		init: func(m *emu.Machine) {
			for i, f := range x0 {
				m.SetFloat(xB+int64(i), f)
			}
			for i, f := range v {
				m.SetFloat(vB+int64(i), f)
			}
		},
		check: func(m *emu.Machine) error {
			x := append([]float64(nil), x0...)
			ii, ipntp := n, 0
			for {
				ipnt := ipntp
				ipntp += ii
				ii /= 2
				i := ipntp
				for k := ipnt + 1; k < ipntp; k += 2 {
					i++
					x[i] = x[k] - v[k]*x[k-1] - v[k+1]*x[k+1]
				}
				if ii <= 1 {
					break
				}
			}
			return checkFloats(m, "x", xB, x)
		},
	}
	return k, src, nil
}
