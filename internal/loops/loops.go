// Package loops provides the benchmark programs of the paper: the
// first 14 Lawrence Livermore Loops (McMahon's FORTRAN kernels),
// hand-compiled to the CRAY-like assembly language of internal/asm
// and executed as scalar code.
//
// Following the paper, the kernels are divided into the 5 scalar
// loops (5, 6, 11, 13, 14) and the 9 vectorizable loops (1, 2, 3, 4,
// 7, 8, 9, 10, 12); "vectorizable" refers to the parallelism inherent
// in the loop, not to the generated code — everything here is scalar.
//
// Each kernel carries a pure-Go reference implementation. The
// reference computes the same floating-point operations in the same
// association order as the assembly, so the emulated results must
// match bit for bit; Check enforces that, which validates both the
// hand compilation and the emulator.
package loops

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"mfup/internal/asm"
	"mfup/internal/emu"
	"mfup/internal/isa"
	"mfup/internal/trace"
)

// Class partitions the kernels as the paper does.
type Class uint8

// Kernel classes.
const (
	Scalar Class = iota
	Vectorizable
)

// String names the class as the paper does.
func (c Class) String() string {
	if c == Scalar {
		return "Scalar"
	}
	return "Vectorizable"
}

// Kernel is one Livermore loop: its program, its data, and its
// validation oracle.
type Kernel struct {
	Number int    // Livermore kernel number, 1-14
	Name   string // traditional kernel name
	Class  Class
	N      int // principal loop length

	prog *isa.Program

	// init lays out the kernel's input data in fresh machine memory.
	init func(m *emu.Machine)

	// check validates machine state after emulation against the
	// pure-Go reference computation.
	check func(m *emu.Machine) error

	traceOnce   sync.Once
	cachedTrace *trace.Trace
}

// Program returns the kernel's assembled program.
func (k *Kernel) Program() *isa.Program { return k.prog }

// String returns e.g. "LFK 5 (tri-diagonal elimination)".
func (k *Kernel) String() string {
	return fmt.Sprintf("LFK %d (%s)", k.Number, k.Name)
}

// NewMachine returns a fresh emulator machine with the kernel's input
// data laid out in memory.
func (k *Kernel) NewMachine() *emu.Machine {
	m := emu.New(0)
	k.init(m)
	return m
}

// Validate checks a machine's state against the kernel's reference
// results. Use it to verify that a transformed version of the
// kernel's program (for example, one reordered by internal/sched)
// still computes the right answers: run the transformed program on
// NewMachine() and call Validate on the result.
func (k *Kernel) Validate(m *emu.Machine) error {
	return k.check(m)
}

// Trace executes the kernel and returns its dynamic instruction
// trace, after validating the numeric results against the reference
// implementation. The trace is recomputed on every call; callers that
// need it repeatedly should cache it.
func (k *Kernel) Trace() (*trace.Trace, error) {
	m := k.NewMachine()
	t, err := m.Run(k.prog)
	if err != nil {
		return nil, fmt.Errorf("loops: %s: %w", k, err)
	}
	if err := k.check(m); err != nil {
		return nil, fmt.Errorf("loops: %s: validation: %w", k, err)
	}
	return t, nil
}

// MustTrace is Trace but panics on error; the built-in kernels are
// statically known-good, so an error is a bug in this repository.
func (k *Kernel) MustTrace() *trace.Trace {
	t, err := k.Trace()
	if err != nil {
		panic(err)
	}
	return t
}

// SharedTrace returns a lazily computed, cached trace of the kernel.
// The machine models never mutate traces, so one copy can drive any
// number of simulations; the table and benchmark harnesses use this
// to avoid re-emulating the kernels for every configuration.
func (k *Kernel) SharedTrace() *trace.Trace {
	k.traceOnce.Do(func() { k.cachedTrace = k.MustTrace() })
	return k.cachedTrace
}

// registry of all kernels, keyed by kernel number.
var registry = map[int]*Kernel{}

// builder constructs a kernel at loop length n; it returns the kernel
// (program not yet assembled), its assembly source, or an error for
// unsupported n.
type builder func(n int) (*Kernel, string, error)

// builders holds each kernel's constructor, its paper-default loop
// length, and the loop-length bounds its memory layout supports;
// Scaled rebuilds kernels at other lengths from these.
var builders = map[int]struct {
	defaultN   int
	minN, maxN int
	build      builder
}{}

// initErr accumulates kernel registration failures. Registration runs
// during package init, where a panic would take down any importer
// before main; failures are instead recorded here and surfaced by
// InitErr and by Get/VectorKernel lookups of the affected kernels.
var initErr error

// InitErr reports every failure encountered while registering the
// built-in kernels, or nil when all registered cleanly.
func InitErr() error { return initErr }

func recordInitErr(err error) { initErr = errors.Join(initErr, err) }

// registerBuilder installs a kernel builder with the loop-length
// bounds [minN, maxN] its memory layout supports, and registers the
// default-length instance. Called from each kernel file's init; a
// failure is recorded in InitErr rather than panicking, and the
// kernel is simply absent from the registry.
func registerBuilder(number, defaultN, minN, maxN int, b builder) {
	if _, dup := builders[number]; dup {
		recordInitErr(fmt.Errorf("loops: duplicate kernel %d", number))
		return
	}
	builders[number] = struct {
		defaultN   int
		minN, maxN int
		build      builder
	}{defaultN, minN, maxN, b}
	k, err := buildAt(number, defaultN)
	if err != nil {
		recordInitErr(err)
		return
	}
	registry[number] = k
}

// buildAt constructs kernel number at loop length n.
func buildAt(number, n int) (*Kernel, error) {
	b, ok := builders[number]
	if !ok {
		return nil, fmt.Errorf("loops: no kernel %d (have 1-14)", number)
	}
	if n < b.minN || n > b.maxN {
		return nil, fmt.Errorf("loops: kernel %d: loop length %d outside [%d, %d]",
			number, n, b.minN, b.maxN)
	}
	k, source, err := b.build(n)
	if err != nil {
		return nil, fmt.Errorf("loops: kernel %d: %w", number, err)
	}
	prog, err := asm.Assemble(fmt.Sprintf("lfk%02d", number), source)
	if err != nil {
		return nil, fmt.Errorf("loops: kernel %d: %w", number, err)
	}
	k.prog = prog
	return k, nil
}

// Scaled builds a fresh instance of kernel number with loop length n
// instead of the paper default. Loop length changes only the amount
// of data and the trip counts, never the loop body, so issue rates
// are expected to be nearly independent of n (a steady-state
// property); the test suite verifies that. Kernel 2 requires n to be
// a power of two; every kernel has a documented maximum tied to its
// memory layout.
func Scaled(number, n int) (*Kernel, error) {
	return buildAt(number, n)
}

// DefaultN returns the paper-default loop length of kernel number.
func DefaultN(number int) (int, error) {
	b, ok := builders[number]
	if !ok {
		return 0, fmt.Errorf("loops: no kernel %d (have 1-14)", number)
	}
	return b.defaultN, nil
}

// Bounds returns the loop-length range kernel number's memory layout
// supports. Some kernels constrain the length further (kernel 2 needs
// a power of two, kernel 4 a multiple of five); those are reported by
// Scaled, not here.
func Bounds(number int) (minN, maxN int, err error) {
	b, ok := builders[number]
	if !ok {
		return 0, 0, fmt.Errorf("loops: no kernel %d (have 1-14)", number)
	}
	return b.minN, b.maxN, nil
}

// maxScaleTries bounds ForScale's downward search for a buildable
// length. The largest gap between valid lengths of any kernel is 512
// (kernel 2's powers of two below 1024), so 1024 attempts always
// suffice.
const maxScaleTries = 1024

// ForScale builds kernel number for a requested loop length n,
// materializing the largest buildable length <= n: the layout maximum
// caps it, and kernel-specific constraints (kernel 2's power of two,
// kernel 4's multiple of five) are resolved by searching downward.
// extra is the iteration count left unmaterialized (zero when n was
// buildable as-is). Callers that can account for iterations
// analytically — the steady-state extrapolation engine, via
// VirtualWindows — pass extra on; others should treat extra > 0 as
// out of range.
func ForScale(number, n int) (k *Kernel, extra int64, err error) {
	b, ok := builders[number]
	if !ok {
		return nil, 0, fmt.Errorf("loops: no kernel %d (have 1-14)", number)
	}
	if n < b.minN {
		return nil, 0, fmt.Errorf("loops: kernel %d: loop length %d below minimum %d",
			number, n, b.minN)
	}
	mat := n
	if mat > b.maxN {
		mat = b.maxN
	}
	for try := 0; mat >= b.minN && try < maxScaleTries; mat, try = mat-1, try+1 {
		k, err = buildAt(number, mat)
		if err == nil {
			return k, int64(n - mat), nil
		}
	}
	return nil, 0, fmt.Errorf("loops: kernel %d: no buildable length <= %d: %w", number, n, err)
}

// VirtualWindows converts the unmaterialized remainder of a ForScale
// request into steady-state body windows for the extrapolation
// engine: the kernel's windows-per-iteration slope times extra. The
// window count of a counted loop is affine in its trip count, so the
// slope measured between k and a build a few iterations shorter is
// exact; kernels with no detectable steady state (data-dependent
// control flow) cannot be extended analytically and return an error.
func VirtualWindows(k *Kernel, extra int64) (int64, error) {
	if extra == 0 {
		return 0, nil
	}
	pd := k.SharedTrace().Prepared().Period()
	if pd == nil {
		return 0, fmt.Errorf("loops: %s: no steady-state period; cannot extend past %d materialized iterations", k, k.N)
	}
	for step := 1; step <= 8; step++ {
		prev, err := buildAt(k.Number, k.N-step)
		if err != nil {
			continue
		}
		pdPrev := prev.MustTrace().Prepared().Period()
		if pdPrev == nil || pdPrev.Span != pd.Span {
			break
		}
		dw := pd.Iterations() - pdPrev.Iterations()
		if dw <= 0 || dw%step != 0 {
			break
		}
		return extra * int64(dw/step), nil
	}
	return 0, fmt.Errorf("loops: %s: window slope not measurable; cannot extend past %d materialized iterations", k, k.N)
}

// Get returns kernel n (1-14), or an error for unknown numbers.
func Get(n int) (*Kernel, error) {
	k, ok := registry[n]
	if !ok {
		if initErr != nil {
			return nil, fmt.Errorf("loops: no kernel %d (registration failures: %w)", n, initErr)
		}
		return nil, fmt.Errorf("loops: no kernel %d (have 1-14)", n)
	}
	return k, nil
}

// All returns all 14 kernels in kernel-number order.
func All() []*Kernel {
	ks := make([]*Kernel, 0, len(registry))
	for _, k := range registry {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].Number < ks[j].Number })
	return ks
}

// ByClass returns the kernels of one class in kernel-number order.
// The paper's scalar set is {5, 6, 11, 13, 14}; the vectorizable set
// is {1, 2, 3, 4, 7, 8, 9, 10, 12}.
func ByClass(c Class) []*Kernel {
	var ks []*Kernel
	for _, k := range All() {
		if k.Class == c {
			ks = append(ks, k)
		}
	}
	return ks
}

// ---------------------------------------------------------------------
// Shared data-generation and validation helpers.

// lcg is a small deterministic linear congruential generator used to
// fill input arrays. Values are reproducible across runs so that
// traces — and therefore all simulation results — are deterministic.
type lcg struct{ state uint64 }

func newLCG(seed uint64) *lcg { return &lcg{state: seed*2862933555777941757 + 3037000493} }

func (g *lcg) next() uint64 {
	g.state = g.state*6364136223846793005 + 1442695040888963407
	return g.state
}

// float returns a deterministic value in (0.5, 1.5); the offset keeps
// products and sums well away from denormals and overflow across
// thousands of operations.
func (g *lcg) float() float64 {
	return 0.5 + float64(g.next()>>11)/(1<<53)
}

// fillFloats stores n generated floats at base and returns them.
func fillFloats(m *emu.Machine, g *lcg, base int64, n int) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = g.float()
		m.SetFloat(base+int64(i), vals[i])
	}
	return vals
}

// checkFloats compares n memory words at base against want, requiring
// bit-exact equality (the references replicate the assembly's
// operation order).
func checkFloats(m *emu.Machine, what string, base int64, want []float64) error {
	for i, w := range want {
		got := m.Float(base + int64(i))
		if math.Float64bits(got) != math.Float64bits(w) {
			return fmt.Errorf("%s[%d]: got %v, want %v", what, i, got, w)
		}
	}
	return nil
}

// checkFloat compares a single scalar result.
func checkFloat(got float64, what string, want float64) error {
	if math.Float64bits(got) != math.Float64bits(want) {
		return fmt.Errorf("%s: got %v, want %v", what, got, want)
	}
	return nil
}
